module gesp

go 1.22
