// Command gesp-lint is the multichecker driver for the project's custom
// static analyzers (see internal/analysis): structural and determinism
// invariants of the static-pivot pipeline that go vet cannot see. It
// runs per-package analyzers over every requested package and
// whole-program analyzers (hotalloc-ip, detclock-ip) once over the
// loaded package set with a shared call graph.
//
// Usage:
//
//	gesp-lint [-checks detclock,errdrop,...] [-tags taglist] [-json] [packages]
//
// Packages default to ./... relative to the enclosing module. With
// -json, diagnostics are emitted as a JSON array of objects with file,
// line, col, message, and analyzer fields (for CI annotation); the
// human-readable format is "file:line:col: message (analyzer)". The
// exit status is 1 when any diagnostic is reported, 2 on usage or load
// errors, matching go vet's convention.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gesp/internal/analysis"
	"gesp/internal/analysis/detclock"
	"gesp/internal/analysis/detclockip"
	"gesp/internal/analysis/errdrop"
	"gesp/internal/analysis/floatcmp"
	"gesp/internal/analysis/guardedby"
	"gesp/internal/analysis/hotalloc"
	"gesp/internal/analysis/hotallocip"
	"gesp/internal/analysis/mapiter"
)

var allPkg = []*analysis.Analyzer{
	detclock.Analyzer,
	errdrop.Analyzer,
	floatcmp.Analyzer,
	guardedby.Analyzer,
	hotalloc.Analyzer,
	mapiter.Analyzer,
}

var allProg = []*analysis.ProgramAnalyzer{
	detclockip.Analyzer,
	hotallocip.Analyzer,
}

// finding is one diagnostic in driver-neutral form, ready for either
// output format.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
}

func main() {
	checks := flag.String("checks", "", "comma-separated analyzers to run (default: all)")
	tags := flag.String("tags", "", "comma-separated build tags")
	asJSON := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gesp-lint [flags] [packages]\n\nAnalyzers:\n")
		for _, name := range analyzerNames() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", name, docOf(name))
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, name := range analyzerNames() {
			fmt.Printf("%-12s %s\n", name, docOf(name))
		}
		return
	}

	pkgEnabled, progEnabled, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gesp-lint:", err)
		os.Exit(2)
	}

	modDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gesp-lint:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(modDir, splitList(*tags))
	if err != nil {
		fmt.Fprintln(os.Stderr, "gesp-lint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gesp-lint:", err)
		os.Exit(2)
	}

	var findings []finding
	record := func(name string, diags []analysis.Diagnostic) {
		for _, d := range diags {
			pos := loader.Fset().Position(d.Pos)
			rel, rerr := filepath.Rel(modDir, pos.Filename)
			if rerr != nil {
				rel = pos.Filename
			}
			findings = append(findings, finding{
				File: rel, Line: pos.Line, Col: pos.Column,
				Message: d.Message, Analyzer: name,
			})
		}
	}

	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gesp-lint:", err)
			os.Exit(2)
		}
		for _, a := range pkgEnabled {
			diags, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gesp-lint:", err)
				os.Exit(2)
			}
			record(a.Name, diags)
		}
	}

	if len(progEnabled) > 0 {
		prog := analysis.NewProgram(loader.Fset(), loader.Loaded())
		for _, a := range progEnabled {
			diags, err := analysis.RunProgramAnalyzer(a, prog)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gesp-lint:", err)
				os.Exit(2)
			}
			record(a.Name, diags)
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "gesp-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "gesp-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func analyzerNames() []string {
	var names []string
	for _, a := range allPkg {
		names = append(names, a.Name)
	}
	for _, a := range allProg {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

func docOf(name string) string {
	for _, a := range allPkg {
		if a.Name == name {
			return a.Doc
		}
	}
	for _, a := range allProg {
		if a.Name == name {
			return a.Doc
		}
	}
	return ""
}

func selectAnalyzers(checks string) ([]*analysis.Analyzer, []*analysis.ProgramAnalyzer, error) {
	if checks == "" {
		return allPkg, allProg, nil
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range allPkg {
		byName[a.Name] = a
	}
	progByName := make(map[string]*analysis.ProgramAnalyzer)
	for _, a := range allProg {
		progByName[a.Name] = a
	}
	var pkgs []*analysis.Analyzer
	var progs []*analysis.ProgramAnalyzer
	for _, name := range splitList(checks) {
		switch {
		case byName[name] != nil:
			pkgs = append(pkgs, byName[name])
		case progByName[name] != nil:
			progs = append(progs, progByName[name])
		default:
			return nil, nil, fmt.Errorf("unknown analyzer %q (have %s)",
				name, strings.Join(analyzerNames(), ", "))
		}
	}
	return pkgs, progs, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
