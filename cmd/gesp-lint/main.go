// Command gesp-lint is the multichecker driver for the project's custom
// static analyzers (see internal/analysis): structural and determinism
// invariants of the static-pivot pipeline that go vet cannot see.
//
// Usage:
//
//	gesp-lint [-checks detclock,errdrop,hotalloc,mapiter,floatcmp] [-tags taglist] [packages]
//
// Packages default to ./... relative to the enclosing module. The exit
// status is 1 when any diagnostic is reported, 2 on usage or load
// errors, matching go vet's convention.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gesp/internal/analysis"
	"gesp/internal/analysis/detclock"
	"gesp/internal/analysis/errdrop"
	"gesp/internal/analysis/floatcmp"
	"gesp/internal/analysis/hotalloc"
	"gesp/internal/analysis/mapiter"
)

var all = []*analysis.Analyzer{
	detclock.Analyzer,
	errdrop.Analyzer,
	floatcmp.Analyzer,
	hotalloc.Analyzer,
	mapiter.Analyzer,
}

func main() {
	checks := flag.String("checks", "", "comma-separated analyzers to run (default: all)")
	tags := flag.String("tags", "", "comma-separated build tags")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gesp-lint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	enabled, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gesp-lint:", err)
		os.Exit(2)
	}

	modDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gesp-lint:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(modDir, splitList(*tags))
	if err != nil {
		fmt.Fprintln(os.Stderr, "gesp-lint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gesp-lint:", err)
		os.Exit(2)
	}

	found := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gesp-lint:", err)
			os.Exit(2)
		}
		for _, a := range enabled {
			diags, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gesp-lint:", err)
				os.Exit(2)
			}
			for _, d := range diags {
				pos := loader.Fset().Position(d.Pos)
				rel, rerr := filepath.Rel(modDir, pos.Filename)
				if rerr != nil {
					rel = pos.Filename
				}
				fmt.Printf("%s:%d:%d: %s (%s)\n", rel, pos.Line, pos.Column, d.Message, a.Name)
				found++
			}
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "gesp-lint: %d finding(s)\n", found)
		os.Exit(1)
	}
}

func selectAnalyzers(checks string) ([]*analysis.Analyzer, error) {
	if checks == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range splitList(checks) {
		a, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(byName))
			for n := range byName { //gesp:unordered
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
