// Command gesp-bench regenerates the tables and figures of "Making
// Sparse Gaussian Elimination Scalable by Static Pivoting" (Li & Demmel,
// SC 1998) on the synthetic testbed. See DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	gesp-bench -exp all                 # everything (slow)
//	gesp-bench -exp fig4 -scale 0.5     # one experiment, custom scale
//	gesp-bench -exp table3 -procs 4,16,64
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"gesp/internal/experiments"
	"gesp/internal/fleetha"
	"gesp/internal/fleetrpc"
)

// main renders benchmark reports to stdout; a failed terminal write has
// no recovery beyond the OS reporting it on exit.
//
//gesp:errok
func main() {
	// The fleetproc and ha experiments re-execute this binary as shard
	// or coordinator processes; in a child these serve and never return.
	fleetha.RunCoordinatorIfChild()
	fleetrpc.RunShardIfChild()
	log.SetFlags(0)
	log.SetPrefix("gesp-bench: ")
	var (
		exp      = flag.String("exp", "all", "experiment: all, serial (table1+fig2-6+nopivot), scaling (table2-5), table1, fig2, fig3, fig4, fig5, fig6, table2, table3, table4, table5, edag, pipeline, nopivot, blocksize, ordering, iterative, relax, redist, gridshape, parfactor, serve, fleet, fleetproc, ha, resilience, faults, kernels")
		scale    = flag.Float64("scale", 0.5, "matrix scale factor (1.0 = larger, slower)")
		procsF   = flag.String("procs", "4,8,16,32,64,128,256,512", "processor sweep for tables 3-5")
		p5       = flag.Int("p5", 64, "processor count for table 5 (paper: 64)")
		jsonOut  = flag.Bool("json", false, "emit the parfactor sweep as machine-readable JSON on stdout (matrix, variant, workers, wall_ns, simulated_ns, mflops) and exit")
		workersF = flag.String("workers", "1,2,4,8", "worker sweep for the parfactor experiment")
		matsF    = flag.String("matrices", "AF23560,BBMAT,EX11", "matrices for the parfactor experiment")

		serveClients  = flag.Int("serve-clients", 16, "closed-loop clients for the serve experiment")
		serveDuration = flag.Duration("serve-duration", time.Second, "measurement window per arm of the serve experiment")

		fleetWorkers  = flag.Int("fleet-workers", 16, "closed-loop workers for the fleet experiment")
		fleetDuration = flag.Duration("fleet-duration", time.Second, "measurement window per arm of the fleet experiment")
	)
	flag.Parse()

	workers, err := parseProcs(*workersF)
	if err != nil {
		log.Fatal(err)
	}
	parfactor := func() []experiments.ParFactorRow {
		rows, err := experiments.ParallelFactorSweep(splitNames(*matsF), *scale, workers)
		if err != nil {
			log.Fatal(err)
		}
		return rows
	}
	if *jsonOut {
		// Machine-readable mode: JSON rows only, suitable for a
		// BENCH_*.json perf trajectory (gesp-bench -json > BENCH_date.json).
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(parfactor()); err != nil {
			log.Fatal(err)
		}
		return
	}

	procs, err := parseProcs(*procsF)
	if err != nil {
		log.Fatal(err)
	}
	known := map[string]bool{
		"all": true, "serial": true, "scaling": true,
		"table1": true, "fig2": true, "fig3": true, "fig4": true, "fig5": true, "fig6": true,
		"table2": true, "table3": true, "table4": true, "table5": true,
		"edag": true, "pipeline": true, "nopivot": true, "blocksize": true,
		"ordering": true, "iterative": true, "relax": true, "redist": true, "gridshape": true,
		"parfactor": true, "serve": true, "fleet": true, "fleetproc": true, "ha": true, "resilience": true,
		"faults": true, "kernels": true,
	}
	if !known[*exp] {
		log.Fatalf("unknown experiment %q (see -h for the list)", *exp)
	}
	w := os.Stdout

	needSerial := map[string]bool{"all": true, "serial": true, "fig2": true, "fig3": true, "fig4": true, "fig5": true, "fig6": true}
	needScaling := map[string]bool{"all": true, "scaling": true, "table3": true, "table4": true, "table5": true}

	var serial []experiments.SerialRow
	if needSerial[*exp] {
		log.Printf("running serial testbed (53 matrices, scale %.2f)...", *scale)
		serial = experiments.RunSerial(*scale, true, true)
	}
	var scaling []experiments.ScalingRow
	if needScaling[*exp] {
		log.Printf("running distributed sweep (8 matrices x P=%v, scale %.2f)...", procs, *scale)
		experiments.Progress = log.Printf
		scaling, err = experiments.RunScaling(*scale, procs, true, true)
		if err != nil {
			log.Fatal(err)
		}
	}

	groups := map[string][]string{
		"serial":  {"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "nopivot"},
		"scaling": {"table2", "table3", "table4", "table5"},
	}
	section := func(name string, f func()) {
		run := *exp == "all" || *exp == name
		for _, member := range groups[*exp] {
			if member == name {
				run = true
			}
		}
		if run {
			f()
			fmt.Fprintln(w)
		}
	}
	section("table1", func() { experiments.PrintTable1(w, *scale) })
	section("fig2", func() { experiments.PrintFigure2(w, serial) })
	section("fig3", func() { experiments.PrintFigure3(w, serial) })
	section("fig4", func() { experiments.PrintFigure4(w, serial) })
	section("fig5", func() { experiments.PrintFigure5(w, serial) })
	section("fig6", func() { experiments.PrintFigure6(w, serial) })
	section("nopivot", func() { experiments.PrintNoPivot(w, *scale) })
	section("table2", func() { experiments.PrintTable2(w, *scale) })
	section("table3", func() { experiments.PrintTable3(w, scaling, procs) })
	section("table4", func() { experiments.PrintTable4(w, scaling, procs) })
	section("table5", func() { experiments.PrintTable5(w, scaling, procs, *p5) })
	section("edag", func() {
		r, err := experiments.EDAGAblation("AF23560", *scale, 32)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintAblation(w, "EDAG-pruned communication (paper: 16% fewer messages, AF23560, 32 PEs)", r)
	})
	section("pipeline", func() {
		r, err := experiments.PipelineAblation("AF23560", *scale, 64)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintAblation(w, "Pipelined factorization (paper: 10-40% faster on 64 PEs)", r)
	})
	section("blocksize", func() {
		res, err := experiments.BlockSizeAblation("AF23560", *scale, 16, []int{4, 8, 16, 24, 32, 64, 128})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w, "Maximum block size sweep (paper: 20-30 best on the T3E, 24 used):")
		fmt.Fprintf(w, "%8s %12s %10s\n", "maxSuper", "factor(s)", "avgSup")
		for _, r := range res {
			fmt.Fprintf(w, "%8d %12.4f %10.1f\n", r.MaxSuper, r.FactorTime, r.AvgSuper)
		}
	})
	section("ordering", func() {
		rows, err := experiments.OrderingAblation(
			[]string{"AF23560", "MEMPLUS", "SHERMAN4", "TWOTONE", "WANG4"}, *scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w, "Fill-reducing ordering comparison, nnz(L+U):")
		fmt.Fprintf(w, "%-10s %12s %12s %12s %12s %12s\n", "Matrix", "mmd-ata", "mmd-at+a", "rcm", "nd-ata", "natural")
		for _, r := range rows {
			fmt.Fprintf(w, "%-10s %12d %12d %12d %12d %12d\n",
				r.Name, r.Fill["mmd-ata"], r.Fill["mmd-at+a"], r.Fill["rcm"], r.Fill["nd-ata"], r.Fill["natural"])
		}
	})
	section("relax", func() {
		res, err := experiments.RelaxAblation("TWOTONE", *scale, 16, []int{0, 1, 2, 4, 8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w, "Supernode amalgamation sweep (paper 5: amalgamate small supernodes):")
		fmt.Fprintf(w, "%8s %10s %10s %12s\n", "relax", "avgSup", "#sup", "factor(s)")
		for _, r := range res {
			fmt.Fprintf(w, "%8d %10.2f %10d %12.4f\n", r.Relax, r.AvgSuper, r.NumSuper, r.FactorTime)
		}
	})
	section("gridshape", func() {
		rows, err := experiments.GridShapeAblation("AF23560", *scale, 16)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w, "Process-grid shape on 16 PEs (paper: 2-D beats the natural 1-D layout):")
		fmt.Fprintf(w, "%8s %12s %12s %14s %8s\n", "grid", "factor(s)", "solve(s)", "volume(bytes)", "B")
		for _, r := range rows {
			fmt.Fprintf(w, "%8s %12.4f %12.4f %14d %8.2f\n", r.Shape, r.FactorTime, r.SolveTime, r.Volume, r.Balance)
		}
	})
	section("redist", func() {
		rows, err := experiments.RedistAblation(*scale, 64)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w, "1-D to 2-D redistribution cost vs factorization (future-work input interface), P=64:")
		fmt.Fprintf(w, "%-10s %12s %12s %10s %12s\n", "Matrix", "redist(s)", "factor(s)", "msgs", "bytes")
		for _, r := range rows {
			fmt.Fprintf(w, "%-10s %12.4f %12.4f %10d %12d\n", r.Name, r.RedistTime, r.FactorTime, r.RedistMsgs, r.RedistBytes)
		}
	})
	section("parfactor", func() { experiments.PrintParFactor(w, parfactor()) })
	section("kernels", func() {
		rows, err := experiments.KernelAblation("AF23560", *scale, 8)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintKernels(w, rows)
		for _, r := range rows {
			if !r.BitOK {
				log.Fatalf("kernel mode %s broke bit-identity on engine %s", r.Mode, r.Engine)
			}
		}
	})
	section("serve", func() {
		rows, err := experiments.ServeAblation(*serveClients, *serveDuration, *scale)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintServe(w, rows)
	})
	section("fleet", func() {
		rows, err := experiments.FleetAblation(*fleetWorkers, *fleetDuration, *scale)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintFleet(w, rows)
	})
	section("fleetproc", func() {
		rows, err := experiments.FleetProcAblation(*fleetWorkers, *fleetDuration, *scale)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintFleetProc(w, rows)
	})
	section("ha", func() {
		rows, err := experiments.HAAblation(*fleetWorkers, *fleetDuration, *scale)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintHA(w, rows)
	})
	section("iterative", func() {
		rows, err := experiments.IterativeAblation(
			[]string{"AF23560", "MEMPLUS", "GEMAT11", "WEST2021", "SHERMAN4", "ONETONE1"}, *scale)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintIterative(w, rows)
	})
	section("resilience", func() {
		rows, err := experiments.ResilienceAblation(1)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintResilience(w, rows)
	})
	section("faults", func() {
		rows, err := experiments.FaultAblation(1, *scale)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintFaults(w, rows)
	})
}

func splitNames(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad processor count %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}
