// gesp-perfdiff compares two BENCH_*.json snapshots and exits nonzero
// when the new one regresses a hot-path entry: allocs/op increases
// always fail; ns/op beyond the tolerance (default 5%) fails unless
// -allocs-only is set. CI runs it allocs-only against the committed
// BENCH_0.json (wall time does not transfer between machines); the full
// gate is for same-machine pairs, e.g. `make bench` before and after a
// change.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gesp/internal/perf"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body: 0 = no regressions, 1 = regressions found,
// 2 = usage or read error. Report writes go to the terminal (or a test
// buffer); the exit code is the contract, a failed write has no
// recovery.
//
//gesp:errok
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gesp-perfdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tol := fs.Float64("tol", 0.05, "relative ns/op tolerance on hot-path entries")
	allocsOnly := fs.Bool("allocs-only", false, "gate only allocs/op and baseline coverage (machine-independent)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: gesp-perfdiff [-tol 0.05] [-allocs-only] OLD.json NEW.json")
		return 2
	}
	old, err := perf.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "gesp-perfdiff:", err)
		return 2
	}
	cur, err := perf.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "gesp-perfdiff:", err)
		return 2
	}
	regs := perf.Compare(old, cur, *tol, *allocsOnly)
	if len(regs) == 0 {
		mode := "full"
		if *allocsOnly {
			mode = "allocs-only"
		}
		fmt.Fprintf(stdout, "ok: no hot-path regressions (%s gate, tol %.1f%%, %d baseline entries)\n",
			mode, 100**tol, len(old.Entries))
		return 0
	}
	fmt.Fprintf(stdout, "FAIL: %d hot-path regression(s) vs %s:\n", len(regs), fs.Arg(0))
	for _, r := range regs {
		fmt.Fprintln(stdout, "  "+r.Detail)
	}
	return 1
}
