package main

import (
	"path/filepath"
	"strings"
	"testing"

	"gesp/internal/perf"
)

// TestExitsNonzeroOnSyntheticRegression covers the acceptance criterion
// end to end through the CLI body: a synthetic >5% hot-path slowdown
// must exit nonzero; the same pair passes allocs-only; a clean pair
// exits zero.
func TestExitsNonzeroOnSyntheticRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")

	mk := func(ns float64, allocs float64) *perf.File {
		return &perf.File{
			SchemaVersion: perf.SchemaVersion,
			Entries: []perf.Entry{
				{Name: "kernel/matmul/192x24x24", Class: "kernel", HotPath: true, NsPerOp: ns, AllocsPerOp: allocs},
			},
		}
	}
	if err := perf.WriteFile(oldPath, mk(1000, 0)); err != nil {
		t.Fatal(err)
	}
	if err := perf.WriteFile(newPath, mk(1100, 0)); err != nil { // +10%
		t.Fatal(err)
	}

	var out, errb strings.Builder
	if code := run([]string{oldPath, newPath}, &out, &errb); code != 1 {
		t.Fatalf("10%% regression exited %d, want 1 (out=%q err=%q)", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "ns/op 1000 -> 1100") {
		t.Fatalf("regression report missing detail: %q", out.String())
	}

	out.Reset()
	if code := run([]string{"-allocs-only", oldPath, newPath}, &out, &errb); code != 0 {
		t.Fatalf("allocs-only exited %d on a ns-only delta, want 0", code)
	}

	if err := perf.WriteFile(newPath, mk(1020, 0)); err != nil { // +2%
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{oldPath, newPath}, &out, &errb); code != 0 {
		t.Fatalf("2%% delta exited %d, want 0 (out=%q)", code, out.String())
	}

	if err := perf.WriteFile(newPath, mk(900, 1)); err != nil { // faster but allocating
		t.Fatal(err)
	}
	if code := run([]string{"-allocs-only", oldPath, newPath}, &out, &errb); code != 1 {
		t.Fatalf("alloc increase exited %d under allocs-only, want 1", code)
	}

	if code := run([]string{oldPath}, &out, &errb); code != 2 {
		t.Fatalf("missing argument exited %d, want 2", code)
	}
}
