// gesp-benchdump measures the kernel-campaign benchmark suite and
// writes a schema-versioned BENCH_<n>.json snapshot: micro-kernel
// timings at supernodal shapes, engine factorization rates, the batched
// solve, and the simulated distributed Mflops. `make bench` uses it to
// regenerate the committed BENCH_0.json baseline; CI uses -quick for a
// smoke snapshot that gesp-perfdiff gates allocs-only against the
// baseline.
package main

import (
	"flag"
	"fmt"
	"os"

	"gesp/internal/perf"
)

func main() {
	out := flag.String("o", "BENCH_0.json", "output snapshot path")
	scale := flag.Float64("scale", 1.0, "testbed matrix scale for the engine benchmarks")
	quick := flag.Bool("quick", false, "single-repetition smoke run (wiring and allocs, not stable timings)")
	flag.Parse()

	f, err := perf.Run(*scale, *quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gesp-benchdump:", err)
		os.Exit(1)
	}
	if err := perf.WriteFile(*out, f); err != nil {
		fmt.Fprintln(os.Stderr, "gesp-benchdump:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (schema %d, %s/%s, scale %g, quick=%v)\n",
		*out, f.SchemaVersion, f.GoVersion, f.GOARCH, f.Scale, f.Quick)
	fmt.Printf("%-40s %-7s %4s %14s %10s %10s\n", "name", "class", "hot", "ns/op", "allocs/op", "Mflops")
	for _, e := range f.Entries {
		hot := ""
		if e.HotPath {
			hot = "yes"
		}
		allocs := "-"
		if e.AllocsPerOp >= 0 {
			allocs = fmt.Sprintf("%.1f", e.AllocsPerOp)
		}
		mf := "-"
		if e.Mflops > 0 {
			mf = fmt.Sprintf("%.1f", e.Mflops)
		}
		fmt.Printf("%-40s %-7s %4s %14.0f %10s %10s\n", e.Name, e.Class, hot, e.NsPerOp, allocs, mf)
	}
}
