// Command matgen generates the synthetic testbed matrices and writes them
// in MatrixMarket format, so external tools can consume the same systems
// the experiments run on.
//
// Usage:
//
//	matgen -list
//	matgen -matrix TWOTONE -scale 1.0 -o twotone.mtx
//	matgen -all -dir ./matrices
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"gesp/internal/matgen"
	"gesp/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("matgen: ")
	var (
		list  = flag.Bool("list", false, "list the testbed matrices")
		name  = flag.String("matrix", "", "matrix to generate")
		all   = flag.Bool("all", false, "generate the whole 53-matrix testbed")
		scale = flag.Float64("scale", 0.5, "size scale")
		out   = flag.String("o", "", "output file (default: stdout)")
		dir   = flag.String("dir", ".", "output directory for -all")
	)
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-10s %-40s %s\n", "NAME", "DISCIPLINE", "ZERO-DIAG")
		for _, m := range matgen.Testbed() {
			fmt.Printf("%-10s %-40s %v\n", m.Name, m.Discipline, m.ZeroDiag)
		}
	case *all:
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, m := range matgen.Testbed() {
			path := filepath.Join(*dir, strings.ToLower(m.Name)+".mtx")
			if err := writeMatrix(m.Generate(*scale), path); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	case *name != "":
		m, ok := matgen.Lookup(*name)
		if !ok {
			log.Fatalf("unknown matrix %q (try -list)", *name)
		}
		a := m.Generate(*scale)
		if *out == "" {
			if err := sparse.WriteMatrixMarket(os.Stdout, a); err != nil {
				log.Fatal(err)
			}
			return
		}
		if err := writeMatrix(a, *out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (n=%d, nnz=%d)\n", *out, a.Rows, a.Nnz())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func writeMatrix(a *sparse.CSC, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sparse.WriteMatrixMarket(f, a); err != nil {
		// The write error is the one worth reporting.
		f.Close() //gesp:errok
		return err
	}
	// On a written file the close error matters: it is where buffered
	// write failures surface.
	return f.Close()
}
