// Command gesp-fleet runs a sharded GESP solve fleet in one of two
// modes.
//
// Default (in-process): N serve.Service shards behind a consistent-hash
// router, with hot-pattern replication, hedged solves against
// stragglers, per-tenant admission control, and graceful shard drain.
//
// -join (cross-process): no shards of its own — a fleetrpc coordinator
// over already-running gesp-serve processes, with health-checked
// membership, retry/backoff, a hedging budget, and degraded fallback:
//
//	gesp-serve -addr :9001 &
//	gesp-serve -addr :9002 &
//	gesp-fleet -join 127.0.0.1:9001,127.0.0.1:9002
//
// Both modes speak the same HTTP JSON API; tenants identify themselves
// with an X-Tenant header (in-process mode only).
//
//	POST /v1/matrix  {"n":N,"rows":[...],"cols":[...],"vals":[...]}
//	                 -> {"handle":"p….v….n…","n":N,"nnz":…,"shard":…}
//	POST /v1/solve   {"handle":"…","b":[...]}
//	                 -> {"x":[...]}
//	GET  /v1/stats   -> fleet.Stats (or fleetrpc.Stats) JSON
//	POST /v1/drain   {"shard":K}
//	                 -> {"drained":K}  (caches hand off; no refactorization)
//
// Load-generator mode (no server; closed-loop in-process benchmark):
//
//	gesp-fleet -load -shards 4 -workers 16 -duration 2s -drain-mid
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"gesp/internal/experiments"
	"gesp/internal/fleet"
	"gesp/internal/fleetha"
	"gesp/internal/fleetrpc"
	"gesp/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gesp-fleet: ")
	var (
		addr        = flag.String("addr", ":8743", "HTTP listen address")
		shards      = flag.Int("shards", 4, "number of in-process solve shards")
		vnodes      = flag.Int("vnodes", fleet.DefaultVNodes, "consistent-hash virtual nodes per shard")
		replication = flag.Int("replication", 2, "shards holding a hot pattern, owner included (<=1 disables)")
		hotThresh   = flag.Uint64("hot-threshold", 32, "solve count that promotes a pattern to replicated (0 disables)")
		hedgeDepth  = flag.Int64("hedge-queue-depth", 4, "hedge to the replica when the primary queue is this deep (0 disables)")
		hedgeP95    = flag.Duration("hedge-p95", 0, "hedge when the primary's observed p95 exceeds this (0 disables)")
		hedgeBudget = flag.Float64("hedge-budget", 0, "cap hedges at this fraction of routed traffic (0 = unlimited)")
		hedgeBurst  = flag.Float64("hedge-burst", 8, "hedge token-bucket capacity when -hedge-budget is set")
		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant admitted requests per second (0 = no admission control)")
		tenantBurst = flag.Float64("tenant-burst", 0, "per-tenant token-bucket burst")

		maxBatch = flag.Int("max-batch", 16, "per-shard max right-hand sides per batched sweep")
		maxDelay = flag.Duration("max-delay", 200*time.Microsecond, "per-shard max time a solve waits for its batch to fill")
		queueCap = flag.Int("queue-cap", 256, "per-shard per-factor solve queue bound")
		maxFac   = flag.Int("max-factors", 1024, "per-shard factor cache entry cap")
		noRefine = flag.Bool("no-refine", false, "skip iterative refinement on served solves")

		join       = flag.String("join", "", "cross-process mode: comma-separated gesp-serve shard addresses to coordinate over")
		probeEvery = flag.Duration("probe-interval", 50*time.Millisecond, "join: health-check period")
		hedgeAfter = flag.Duration("hedge-after", 100*time.Millisecond, "join: hedge to the replica when the primary hasn't answered in this long (0 disables)")
		reqTimeout = flag.Duration("request-timeout", 2*time.Second, "join: per-attempt solve deadline")
		degraded   = flag.Bool("degraded-fallback", true, "join: answer via a live shard's iterative path when every placement is down")

		haID        = flag.Int("ha-id", -1, "join+HA: this coordinator's id (index into -ha-peers; -1 disables HA)")
		haPeers     = flag.String("ha-peers", "", "join+HA: comma-separated coordinator addresses, one per replica, ours at index -ha-id")
		haLease     = flag.Duration("ha-lease", time.Second, "join+HA: leader lease; followers elect after this long without a heartbeat")
		haHeartbeat = flag.Duration("ha-heartbeat", 0, "join+HA: leader heartbeat period (0 = lease/4)")
		haSLO       = flag.Duration("ha-slo", 0, "join+HA: p999 latency SLO driving the replica controller (0 disables the controller)")

		loadMode = flag.Bool("load", false, "run the closed-loop load generator instead of serving HTTP")
		workers  = flag.Int("workers", 8, "load: concurrent closed-loop workers")
		duration = flag.Duration("duration", 2*time.Second, "load: measurement duration")
		patterns = flag.Int("patterns", 6, "load: distinct sparsity patterns")
		variants = flag.Int("variants", 4, "load: value variants per pattern")
		scale    = flag.Float64("scale", 0.3, "load: testbed matrix scale")
		zipfS    = flag.Float64("zipf", 1.2, "load: Zipf skew of the pattern popularity (>1)")
		diurnal  = flag.Bool("diurnal", true, "load: modulate worker count through burst phases")
		drainMid = flag.Bool("drain-mid", false, "load: drain the hottest pattern's home shard mid-run")
	)
	flag.Parse()

	if *join != "" {
		rcfg := fleetrpc.DefaultConfig(strings.Split(*join, ","))
		rcfg.Replication = *replication
		rcfg.VNodes = *vnodes
		rcfg.ProbeInterval = *probeEvery
		rcfg.HedgeAfter = *hedgeAfter
		rcfg.HedgeBudget = *hedgeBudget
		rcfg.HedgeBurst = *hedgeBurst
		rcfg.RequestTimeout = *reqTimeout
		rcfg.DegradedFallback = *degraded
		if *haID >= 0 {
			// HA mode: this process is one of N replicated coordinators
			// running leader election; only the lease holder owns a fleet.
			peers := strings.Split(*haPeers, ",")
			ncfg := fleetha.Config{
				ID:        *haID,
				Peers:     peers,
				Shards:    rcfg.Addrs,
				Lease:     *haLease,
				Heartbeat: *haHeartbeat,
				Fleet:     rcfg,
				Logf:      log.Printf,
			}
			if *haSLO > 0 {
				ncfg.Controller = &fleetha.ControllerConfig{SLO: *haSLO}
			}
			node, err := fleetha.NewNode(ncfg)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("HA coordinator %d/%d on %s over %d shards (lease %v, SLO %v)",
				*haID, len(peers), *addr, len(rcfg.Addrs), *haLease, *haSLO)
			log.Fatal(http.ListenAndServe(*addr, node.Mux()))
		}
		rf, err := fleetrpc.New(rcfg)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("coordinating %d remote shards on %s (replication %d, hedge after %v, budget %.2f)",
			len(rcfg.Addrs), *addr, rcfg.Replication, rcfg.HedgeAfter, rcfg.HedgeBudget)
		log.Fatal(http.ListenAndServe(*addr, remoteMux(rf)))
	}

	cfg := fleet.DefaultConfig()
	cfg.Shards = *shards
	cfg.VNodes = *vnodes
	cfg.ReplicationFactor = *replication
	cfg.HotThreshold = *hotThresh
	cfg.HedgeQueueDepth = *hedgeDepth
	cfg.HedgeP95 = *hedgeP95
	cfg.HedgeBudget = *hedgeBudget
	cfg.HedgeBurst = *hedgeBurst
	cfg.TenantRate = *tenantRate
	cfg.TenantBurst = *tenantBurst
	cfg.Service.MaxBatch = *maxBatch
	cfg.Service.MaxDelay = *maxDelay
	cfg.Service.QueueCap = *queueCap
	cfg.Service.MaxFactors = *maxFac
	if *noRefine {
		cfg.Service.Options.Refine = false
	}

	if *loadMode {
		res, err := experiments.RunFleetLoad(experiments.FleetLoadConfig{
			Fleet:    cfg,
			Workers:  *workers,
			Patterns: *patterns,
			Variants: *variants,
			Duration: *duration,
			Scale:    *scale,
			ZipfS:    *zipfS,
			Diurnal:  *diurnal,
			DrainMid: *drainMid,
		})
		if err != nil {
			log.Fatal(err)
		}
		printLoad(res)
		return
	}

	f := fleet.New(cfg)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/matrix", handleMatrix(f))
	mux.HandleFunc("POST /v1/solve", handleSolve(f))
	mux.HandleFunc("GET /v1/stats", handleStats(f))
	mux.HandleFunc("POST /v1/drain", handleDrain(f))
	log.Printf("listening on %s (%d shards, replication %d, hedge depth %d / p95 %v)",
		*addr, cfg.Shards, cfg.ReplicationFactor, cfg.HedgeQueueDepth, cfg.HedgeP95)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// printLoad renders the load-generator report; stdout write failures
// have no recovery beyond the OS reporting them on exit.
//
//gesp:errok
func printLoad(res *experiments.FleetLoadResult) {
	fmt.Printf("fleet load: %d shards, %d workers, %d systems, %v\n",
		res.ShardCount, res.Workers, res.Systems, res.Elapsed)
	fmt.Printf("  solves %d (%.0f/s)  shed %d  failed %d\n",
		res.Solves, res.Throughput, res.Shed, res.Failed)
	fmt.Printf("  p50 %v  p99 %v  p999 %v  hedge %.1f%%  heal %.1f%%\n",
		res.P50, res.P99, res.P999, 100*res.HedgeRate, 100*res.Stats.HealRate())
	fmt.Printf("  factor runs warm/final %d/%d\n", res.FactorRunsWarm, res.FactorRunsFinal)
	if res.DrainErr != "" {
		fmt.Printf("  DRAIN ERROR: %s\n", res.DrainErr)
	}
	fmt.Print(res.Stats.String())
}

// tenant extracts the per-tenant admission identity; absent headers
// share the default bucket.
func tenant(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

type matrixResponse struct {
	Handle string `json:"handle"`
	N      int    `json:"n"`
	Nnz    int    `json:"nnz"`
	Shard  int    `json:"shard"`
}

type drainRequest struct {
	Shard int `json:"shard"`
}

type drainResponse struct {
	Drained int `json:"drained"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}

// writeErr maps the fleet/serve error taxonomy onto HTTP. Quota and
// overload rejections carry a Retry-After so well-behaved tenants can
// pace themselves; the header speaks whole seconds, so sub-second
// hints round up (fleetrpc.SetRetryAfter), never down to the "retry
// immediately" zero the hint exists to prevent.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var qe *fleet.QuotaError
	var oe *serve.OverloadedError
	switch {
	case errors.As(err, &qe):
		status = http.StatusTooManyRequests
		fleetrpc.SetRetryAfter(w, qe.RetryAfter)
	case errors.As(err, &oe):
		status = http.StatusServiceUnavailable
		fleetrpc.SetRetryAfter(w, oe.RetryAfter)
	case errors.Is(err, serve.ErrOverloaded):
		status = http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrHandleExpired):
		status = http.StatusGone // resubmit the matrix
	case errors.Is(err, serve.ErrClosed), errors.Is(err, fleet.ErrNoShards),
		errors.Is(err, fleetrpc.ErrNoLiveShards):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func handleMatrix(f *fleet.Fleet) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req fleetrpc.MatrixRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, fmt.Errorf("bad matrix body: %w", err))
			return
		}
		a, err := fleetrpc.AssembleMatrix(req)
		if err != nil {
			writeErr(w, err)
			return
		}
		h, err := f.Submit(tenant(r), a)
		if err != nil {
			writeErr(w, err)
			return
		}
		owner := f.Ring().Owner(h.Key.Pattern)
		writeJSON(w, http.StatusOK, matrixResponse{Handle: h.String(), N: h.N, Nnz: a.Nnz(), Shard: owner})
	}
}

func handleSolve(f *fleet.Fleet) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req fleetrpc.SolveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, fmt.Errorf("bad solve body: %w", err))
			return
		}
		h, err := serve.ParseHandle(req.Handle)
		if err != nil {
			writeErr(w, err)
			return
		}
		x, err := f.SolveCtx(r.Context(), tenant(r), h, req.B)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, fleetrpc.SolveResponse{X: x})
	}
}

func handleStats(f *fleet.Fleet) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.Stats())
	}
}

func handleDrain(f *fleet.Fleet) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req drainRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, fmt.Errorf("bad drain body: %w", err))
			return
		}
		if err := f.Drain(req.Shard); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, drainResponse{Drained: req.Shard})
	}
}

// remoteMux serves the same API over a fleetrpc coordinator. Errors
// from remote shards pass their status (and Retry-After) through.
func remoteMux(f *fleetrpc.Fleet) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/matrix", func(w http.ResponseWriter, r *http.Request) {
		var req fleetrpc.MatrixRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeRemoteErr(w, fmt.Errorf("bad matrix body: %w", err))
			return
		}
		a, err := fleetrpc.AssembleMatrix(req)
		if err != nil {
			writeRemoteErr(w, err)
			return
		}
		h, err := f.SubmitCtx(r.Context(), a)
		if err != nil {
			writeRemoteErr(w, err)
			return
		}
		owner := f.Ring().Owner(h.Key.Pattern)
		writeJSON(w, http.StatusOK, matrixResponse{Handle: h.String(), N: h.N, Nnz: a.Nnz(), Shard: owner})
	})
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		var req fleetrpc.SolveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeRemoteErr(w, fmt.Errorf("bad solve body: %w", err))
			return
		}
		h, err := serve.ParseHandle(req.Handle)
		if err != nil {
			writeRemoteErr(w, err)
			return
		}
		x, err := f.SolveCtx(r.Context(), h, req.B)
		if err != nil {
			writeRemoteErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, fleetrpc.SolveResponse{X: x})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.Stats())
	})
	mux.HandleFunc("POST /v1/drain", func(w http.ResponseWriter, r *http.Request) {
		var req drainRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeRemoteErr(w, fmt.Errorf("bad drain body: %w", err))
			return
		}
		if err := f.Drain(r.Context(), req.Shard); err != nil {
			writeRemoteErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, drainResponse{Drained: req.Shard})
	})
	return mux
}

// writeRemoteErr maps coordinator errors: a shard's own HTTP error
// passes through with its status and Retry-After; coordinator-level
// conditions map like writeErr.
func writeRemoteErr(w http.ResponseWriter, err error) {
	var re *fleetrpc.RemoteError
	if errors.As(err, &re) {
		if re.RetryAfter > 0 {
			fleetrpc.SetRetryAfter(w, re.RetryAfter)
		}
		writeJSON(w, re.Status, errorResponse{Error: re.Msg})
		return
	}
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, fleetrpc.ErrNoLiveShards), errors.Is(err, fleetrpc.ErrUnreachable),
		errors.Is(err, serve.ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
