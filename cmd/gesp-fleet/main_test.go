package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"gesp/internal/fleet"
	"gesp/internal/fleetrpc"
	"gesp/internal/matgen"
	"gesp/internal/serve"
)

// TestWriteErrRetryAfterCeil: Retry-After speaks whole seconds, so
// sub-second hints must round UP to 1 — a zero would tell throttled
// clients to retry immediately, defeating the header's purpose.
func TestWriteErrRetryAfterCeil(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{50 * time.Millisecond, "1"},
		{999 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{4 * time.Second, "4"},
	}
	for _, c := range cases {
		w := httptest.NewRecorder()
		writeErr(w, &serve.OverloadedError{QueueDepth: 9, RetryAfter: c.d})
		if got := w.Header().Get("Retry-After"); got != c.want {
			t.Errorf("overload %v: Retry-After %q, want %q", c.d, got, c.want)
		}
		if w.Code != 503 {
			t.Errorf("overload %v: status %d, want 503", c.d, w.Code)
		}

		w = httptest.NewRecorder()
		writeErr(w, &fleet.QuotaError{Tenant: "t", RetryAfter: c.d})
		if got := w.Header().Get("Retry-After"); got != c.want {
			t.Errorf("quota %v: Retry-After %q, want %q", c.d, got, c.want)
		}
		if w.Code != 429 {
			t.Errorf("quota %v: status %d, want 429", c.d, w.Code)
		}
	}
}

// TestHandleSolveQuotaRetryAfter drives the real solve handler into a
// quota rejection and checks the response a throttled client sees:
// 429, a JSON error body, and a whole-second Retry-After ≥ 1 even
// though the underlying hint is sub-second jittered.
func TestHandleSolveQuotaRetryAfter(t *testing.T) {
	cfg := fleet.DefaultConfig()
	cfg.Shards = 1
	cfg.TenantRate = 0.001
	cfg.TenantBurst = 1
	f := fleet.New(cfg)
	defer f.Close()

	gen, ok := matgen.Lookup("SHERMAN4")
	if !ok {
		t.Fatal("testbed matrix SHERMAN4 missing")
	}
	a := gen.Generate(0.25)
	h, err := f.Submit("default", a) // spends the tenant's only token
	if err != nil {
		t.Fatal(err)
	}

	body, err := json.Marshal(fleetrpc.SolveRequest{Handle: h.String(), B: make([]float64, a.Rows)})
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	r := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(body))
	handleSolve(f)(w, r)

	if w.Code != 429 {
		t.Fatalf("status %d, want 429; body %s", w.Code, w.Body)
	}
	secs, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want a whole second count >= 1", w.Header().Get("Retry-After"))
	}
	var resp errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.Error == "" {
		t.Fatalf("error body %q: %v", w.Body, err)
	}
}
