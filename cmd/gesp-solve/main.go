// Command gesp-solve solves a sparse linear system A·x = b with the GESP
// algorithm (Gaussian elimination with static pivoting, Li & Demmel,
// SC 1998), either serially or on a simulated distributed machine.
//
// The matrix comes from a MatrixMarket file (-file) or from the built-in
// synthetic testbed (-matrix NAME). The right-hand side defaults to A·1,
// so the exact solution is a vector of ones and the reported error is
// meaningful.
//
// Usage:
//
//	gesp-solve -matrix AF23560
//	gesp-solve -file system.mtx -no-colscale -aggressive
//	gesp-solve -matrix TWOTONE -procs 64
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"gesp/internal/core"
	"gesp/internal/dist"
	"gesp/internal/matgen"
	"gesp/internal/ordering"
	"gesp/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gesp-solve: ")
	var (
		file       = flag.String("file", "", "MatrixMarket file to solve")
		name       = flag.String("matrix", "", "built-in testbed matrix name (e.g. AF23560)")
		scale      = flag.Float64("scale", 0.5, "scale for built-in matrices")
		procs      = flag.Int("procs", 0, "solve on a simulated distributed machine with this many processors")
		noEquil    = flag.Bool("no-equil", false, "disable equilibration (step 1a)")
		noRowPerm  = flag.Bool("no-rowperm", false, "disable the large-diagonal row permutation (step 1b)")
		noColScale = flag.Bool("no-colscale", false, "disable the matching's column scaling")
		noReplace  = flag.Bool("no-replace", false, "disable tiny-pivot replacement (step 3)")
		noRefine   = flag.Bool("no-refine", false, "disable iterative refinement (step 4)")
		aggressive = flag.Bool("aggressive", false, "aggressive pivot replacement with Sherman-Morrison-Woodbury recovery")
		extraPrec  = flag.Bool("extra-precision", false, "compensated residuals in refinement")
		ord        = flag.String("ordering", "mmd-ata", "fill-reducing ordering: mmd-ata, mmd-at+a, rcm, nd-ata, nd-at+a, natural")
		ferr       = flag.Bool("ferr", false, "estimate the componentwise forward error bound (expensive)")
		workers    = flag.Int("workers", 0, "shared-memory workers for the factorization and solves (0 = serial; >1 uses the DAG-scheduled parallel engine)")
	)
	flag.Parse()

	a, label, err := loadMatrix(*file, *name, *scale)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.Options{
		Equilibrate:      !*noEquil,
		RowPermute:       !*noRowPerm,
		ColScale:         !*noColScale,
		ReplaceTinyPivot: !*noReplace,
		AggressivePivot:  *aggressive,
		Refine:           !*noRefine,
		ExtraPrecision:   *extraPrec,
		Workers:          *workers,
	}
	switch *ord {
	case "mmd-ata":
		opts.Ordering = ordering.MinDegATA
	case "mmd-at+a":
		opts.Ordering = ordering.MinDegAPlusAT
	case "rcm":
		opts.Ordering = ordering.RCM
	case "nd-ata":
		opts.Ordering = ordering.NDATA
	case "nd-at+a":
		opts.Ordering = ordering.NDAPlusAT
	case "natural":
		opts.Ordering = ordering.Natural
	default:
		log.Fatalf("unknown ordering %q", *ord)
	}

	fmt.Printf("matrix %s: n=%d nnz=%d zero-diagonals=%d\n", label, a.Rows, a.Nnz(), a.ZeroDiagonals())
	b := matgen.OnesRHS(a)

	if *procs > 0 {
		s, err := core.NewAnalysis(a, opts)
		if err != nil {
			log.Fatal(err)
		}
		x, res, err := s.DistSolve(b, dist.Options{
			Procs: *procs, Pipeline: true, EDAGPrune: true, ReplaceTinyPivot: !*noReplace,
		})
		if err != nil {
			log.Fatal(err)
		}
		st := s.Stats()
		fmt.Printf("analysis : nnz(L+U)=%d flops=%d supernodes=%d (avg %.1f cols)\n",
			st.NnzLU, st.Flops, st.NumSuper, st.AvgSuper)
		fmt.Printf("grid     : %s (%d processors, simulated T3E-900)\n", res.Grid, *procs)
		fmt.Printf("factor   : %.4fs simulated, %.0f Mflops, B=%.2f, comm=%.0f%%, %d msgs\n",
			res.Factor.SimTime, res.Factor.Mflops, res.Factor.LoadBalance,
			100*res.Factor.CommFraction, res.Factor.Messages)
		fmt.Printf("solve    : %.4fs simulated, comm=%.0f%%\n", res.Solve.SimTime, 100*res.Solve.CommFraction)
		fmt.Printf("error    : %.3e (vs x_true = ones)\n", errToOnes(x))
		return
	}

	s, err := core.New(a, opts)
	if err != nil {
		log.Fatal(err)
	}
	x, err := s.Solve(b)
	if err != nil {
		log.Fatal(err)
	}
	st := s.Stats()
	fmt.Printf("analysis : nnz(L+U)=%d flops=%d supernodes=%d (avg %.1f cols)\n",
		st.NnzLU, st.Flops, st.NumSuper, st.AvgSuper)
	fmt.Printf("pivoting : %d tiny pivots replaced, reciprocal growth %.2e\n", st.TinyPivots, st.RecipGrowth)
	fmt.Printf("refine   : %d steps, berr=%.3e (converged=%v)\n", st.RefineSteps, st.Berr, st.Converged)
	fmt.Printf("times    : rowperm=%v order=%v symbolic=%v factor=%v solve=%v refine=%v\n",
		st.Times.RowPerm, st.Times.Order, st.Times.Symbolic, st.Times.Factor, st.Times.Solve, st.Times.Refine)
	fmt.Printf("error    : %.3e (vs x_true = ones)\n", errToOnes(x))
	if *ferr {
		fmt.Printf("ferr     : %.3e (componentwise forward error bound)\n", s.ForwardErrorBound(x, b))
		fmt.Printf("cond     : %.3e (1-norm condition estimate)\n", s.CondEst())
	}
}

func loadMatrix(file, name string, scale float64) (*sparse.CSC, string, error) {
	switch {
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, "", err
		}
		// Read-only file: a close failure loses nothing.
		defer f.Close() //gesp:errok
		// Harwell-Boeing by extension (.rua/.rsa/.hb), MatrixMarket else.
		lower := strings.ToLower(file)
		if strings.HasSuffix(lower, ".rua") || strings.HasSuffix(lower, ".rsa") || strings.HasSuffix(lower, ".hb") {
			a, err := sparse.ReadHarwellBoeing(f)
			return a, file, err
		}
		a, err := sparse.ReadMatrixMarket(f)
		return a, file, err
	case name != "":
		m, ok := matgen.Lookup(name)
		if !ok {
			return nil, "", fmt.Errorf("unknown testbed matrix %q (see gesp-bench -exp table1)", name)
		}
		return m.Generate(scale), name, nil
	default:
		return nil, "", fmt.Errorf("one of -file or -matrix is required")
	}
}

func errToOnes(x []float64) float64 {
	ones := make([]float64, len(x))
	for i := range ones {
		ones[i] = 1
	}
	return sparse.RelErrInf(x, ones)
}
