package main

import (
	"fmt"
	"strings"
	"time"

	"gesp/internal/experiments"
	"gesp/internal/serve"
)

// runLoad is the built-in closed-loop load generator: clients drive the
// in-process service as fast as responses come back (no think time), so
// the measured throughput is the service's, not a traffic model's. The
// system pool spans `patterns` sparsity patterns with `variants` value
// variants each — the same pool shape the serving caches are built for.
func runLoad(cfg serve.Config, clients int, duration time.Duration, patterns, variants int, scale float64) (string, error) {
	res, err := experiments.RunServeLoad(experiments.ServeLoadConfig{
		Service:  cfg,
		Clients:  clients,
		Patterns: patterns,
		Variants: variants,
		Duration: duration,
		Scale:    scale,
		Resubmit: 0.05,
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "closed-loop load: %d clients, %d systems (%d patterns x %d variants), %v\n",
		res.Clients, res.Systems, patterns, variants, duration)
	fmt.Fprintf(&b, "throughput %.0f solves/s  (%d solves, %d shed)\n", res.Throughput, res.Solves, res.Shed)
	fmt.Fprintf(&b, "latency p50 %v  p95 %v  p99 %v  mean batch %.2f\n",
		res.P50.Round(time.Microsecond), res.P95.Round(time.Microsecond),
		res.P99.Round(time.Microsecond), res.MeanBatch)
	fmt.Fprintf(&b, "\nservice counters:\n%s", res.Stats)
	return b.String(), nil
}
