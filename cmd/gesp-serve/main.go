// Command gesp-serve runs the GESP solve service: an HTTP JSON API over
// internal/serve's factor-caching, RHS-batching solver. Submit a matrix
// once, then solve as many right-hand sides against it as you like —
// pattern-identical resubmissions skip symbolic analysis, identical
// resubmissions skip factorization, and concurrent solves of one system
// coalesce into batched triangular sweeps.
//
// API:
//
//	POST /v1/matrix  {"n":N,"rows":[...],"cols":[...],"vals":[...]}
//	                 -> {"handle":"p….v….n…","n":N,"nnz":…}
//	POST /v1/solve   {"handle":"…","b":[...]}
//	                 -> {"x":[...]}
//	GET  /v1/stats   -> serve.Stats JSON
//
// Load-generator mode (no server; closed-loop in-process benchmark):
//
//	gesp-serve -load -clients 16 -duration 2s -patterns 3 -variants 4
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"gesp/internal/resilience"
	"gesp/internal/serve"
	"gesp/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gesp-serve: ")
	var (
		addr     = flag.String("addr", ":8742", "HTTP listen address")
		maxBatch = flag.Int("max-batch", 16, "max right-hand sides per batched sweep")
		maxDelay = flag.Duration("max-delay", 200*time.Microsecond, "max time a solve waits for its batch to fill")
		queueCap = flag.Int("queue-cap", 256, "per-factor solve queue bound (beyond it requests are shed)")
		maxFac   = flag.Int("max-factors", 1024, "factor cache entry cap")
		maxBytes = flag.Int64("max-factor-bytes", 1<<30, "factor cache memory budget (estimated bytes)")
		maxSym   = flag.Int("max-symbolic", 256, "symbolic (pattern) cache entry cap")
		noRefine = flag.Bool("no-refine", false, "skip iterative refinement on served solves (faster, berr not driven to eps)")

		resil        = flag.Bool("resilience", false, "run every solve through the numerical resilience ladder (escalates from static pivoting to GEPP on backward-error trouble)")
		rungDeadline = flag.Duration("rung-deadline", 0, "resilience: per-rung time budget (0 = unbounded)")
		solveTimeout = flag.Duration("solve-timeout", 0, "per-request solve deadline (0 = none)")
		degrade      = flag.Bool("degrade", false, "on overload, serve a degraded factor-preconditioned GMRES solve instead of shedding with 503")

		loadMode = flag.Bool("load", false, "run the closed-loop load generator instead of serving HTTP")
		clients  = flag.Int("clients", 8, "load: concurrent closed-loop clients")
		duration = flag.Duration("duration", 2*time.Second, "load: measurement duration")
		patterns = flag.Int("patterns", 3, "load: distinct sparsity patterns")
		variants = flag.Int("variants", 4, "load: value variants per pattern (same pattern, new numerics)")
		scale    = flag.Float64("scale", 0.3, "load: testbed matrix scale")
	)
	flag.Parse()

	cfg := serve.DefaultConfig()
	cfg.MaxBatch = *maxBatch
	cfg.MaxDelay = *maxDelay
	cfg.QueueCap = *queueCap
	cfg.MaxFactors = *maxFac
	cfg.MaxFactorBytes = *maxBytes
	cfg.MaxSymbolic = *maxSym
	if *noRefine {
		cfg.Options.Refine = false
	}
	if *resil {
		cfg.Options.Resilience = &resilience.Policy{RungDeadline: *rungDeadline}
	}
	cfg.SolveTimeout = *solveTimeout
	cfg.DegradeOnOverload = *degrade

	if *loadMode {
		rep, err := runLoad(cfg, *clients, *duration, *patterns, *variants, *scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep)
		return
	}

	svc := serve.New(cfg)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/matrix", handleMatrix(svc))
	mux.HandleFunc("POST /v1/solve", handleSolve(svc))
	mux.HandleFunc("GET /v1/stats", handleStats(svc))
	log.Printf("listening on %s (max-batch %d, max-delay %v)", *addr, cfg.MaxBatch, cfg.MaxDelay)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// matrixRequest is the POST /v1/matrix body: a triplet (COO) matrix.
// Duplicate (row, col) entries are summed, the usual assembly rule.
type matrixRequest struct {
	N    int       `json:"n"`
	Rows []int     `json:"rows"`
	Cols []int     `json:"cols"`
	Vals []float64 `json:"vals"`
}

type matrixResponse struct {
	Handle string `json:"handle"`
	N      int    `json:"n"`
	Nnz    int    `json:"nnz"`
}

type solveRequest struct {
	Handle string    `json:"handle"`
	B      []float64 `json:"b"`
}

type solveResponse struct {
	X []float64 `json:"x"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		status = http.StatusServiceUnavailable // retryable: back off
	case errors.Is(err, serve.ErrHandleExpired):
		status = http.StatusGone // resubmit the matrix
	case errors.Is(err, serve.ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout // solve deadline hit; retry or relax -solve-timeout
	case errors.Is(err, resilience.ErrNonFiniteRHS):
		status = http.StatusUnprocessableEntity // NaN/Inf in b; no rung can fix the input
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func handleMatrix(svc *serve.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req matrixRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, fmt.Errorf("bad matrix body: %w", err))
			return
		}
		a, err := assembleMatrix(req)
		if err != nil {
			writeErr(w, err)
			return
		}
		h, err := svc.Submit(a)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, matrixResponse{Handle: h.String(), N: h.N, Nnz: a.Nnz()})
	}
}

func assembleMatrix(req matrixRequest) (*sparse.CSC, error) {
	if req.N <= 0 {
		return nil, fmt.Errorf("matrix dimension %d, want positive", req.N)
	}
	if len(req.Rows) != len(req.Vals) || len(req.Cols) != len(req.Vals) {
		return nil, fmt.Errorf("triplet arrays disagree: %d rows, %d cols, %d vals",
			len(req.Rows), len(req.Cols), len(req.Vals))
	}
	t := sparse.NewTriplet(req.N, req.N)
	for k := range req.Vals {
		i, j := req.Rows[k], req.Cols[k]
		if i < 0 || i >= req.N || j < 0 || j >= req.N {
			return nil, fmt.Errorf("entry %d at (%d,%d) outside %dx%d", k, i, j, req.N, req.N)
		}
		t.Append(i, j, req.Vals[k])
	}
	return t.ToCSC(), nil
}

func handleSolve(svc *serve.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req solveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, fmt.Errorf("bad solve body: %w", err))
			return
		}
		h, err := serve.ParseHandle(req.Handle)
		if err != nil {
			writeErr(w, err)
			return
		}
		x, err := svc.SolveCtx(r.Context(), h, req.B)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, solveResponse{X: x})
	}
}

func handleStats(svc *serve.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	}
}
