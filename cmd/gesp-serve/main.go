// Command gesp-serve runs the GESP solve service: an HTTP JSON API over
// internal/serve's factor-caching, RHS-batching solver. Submit a matrix
// once, then solve as many right-hand sides against it as you like —
// pattern-identical resubmissions skip symbolic analysis, identical
// resubmissions skip factorization, and concurrent solves of one system
// coalesce into batched triangular sweeps.
//
// The wire format is internal/fleetrpc's, which makes every gesp-serve
// process a shard any fleetrpc coordinator (gesp-fleet -join) can
// route over, health-check, drain, and fail over from:
//
//	POST /v1/matrix    {"n":N,"rows":[...],"cols":[...],"vals":[...]}
//	                   -> {"handle":"p….v….n…","n":N,"nnz":…}
//	POST /v1/solve     {"handle":"…","b":[...]}
//	                   -> {"x":[...]}
//	GET  /v1/stats     -> serve.Stats JSON
//	GET  /v1/health    -> {"status":"ok"|"draining",...}
//	POST /v1/handoff   -> drain; returns the resident handles
//	POST /v1/degraded  -> iterative solve from a raw matrix
//
// Load-generator mode (no server; closed-loop in-process benchmark):
//
//	gesp-serve -load -clients 16 -duration 2s -patterns 3 -variants 4
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"gesp/internal/fleetrpc"
	"gesp/internal/resilience"
	"gesp/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gesp-serve: ")
	var (
		addr     = flag.String("addr", ":8742", "HTTP listen address")
		maxBatch = flag.Int("max-batch", 16, "max right-hand sides per batched sweep")
		maxDelay = flag.Duration("max-delay", 200*time.Microsecond, "max time a solve waits for its batch to fill")
		queueCap = flag.Int("queue-cap", 256, "per-factor solve queue bound (beyond it requests are shed)")
		maxFac   = flag.Int("max-factors", 1024, "factor cache entry cap")
		maxBytes = flag.Int64("max-factor-bytes", 1<<30, "factor cache memory budget (estimated bytes)")
		maxSym   = flag.Int("max-symbolic", 256, "symbolic (pattern) cache entry cap")
		noRefine = flag.Bool("no-refine", false, "skip iterative refinement on served solves (faster, berr not driven to eps)")

		resil        = flag.Bool("resilience", false, "run every solve through the numerical resilience ladder (escalates from static pivoting to GEPP on backward-error trouble)")
		rungDeadline = flag.Duration("rung-deadline", 0, "resilience: per-rung time budget (0 = unbounded)")
		solveTimeout = flag.Duration("solve-timeout", 0, "per-request solve deadline (0 = none)")
		degrade      = flag.Bool("degrade", false, "on overload, serve a degraded factor-preconditioned GMRES solve instead of shedding with 503")

		chaos = flag.Bool("chaos-delay", false, "accept POST /v1/chaos/delay to inject per-solve latency (testing/benchmarks only)")

		loadMode = flag.Bool("load", false, "run the closed-loop load generator instead of serving HTTP")
		clients  = flag.Int("clients", 8, "load: concurrent closed-loop clients")
		duration = flag.Duration("duration", 2*time.Second, "load: measurement duration")
		patterns = flag.Int("patterns", 3, "load: distinct sparsity patterns")
		variants = flag.Int("variants", 4, "load: value variants per pattern (same pattern, new numerics)")
		scale    = flag.Float64("scale", 0.3, "load: testbed matrix scale")
	)
	flag.Parse()

	cfg := serve.DefaultConfig()
	cfg.MaxBatch = *maxBatch
	cfg.MaxDelay = *maxDelay
	cfg.QueueCap = *queueCap
	cfg.MaxFactors = *maxFac
	cfg.MaxFactorBytes = *maxBytes
	cfg.MaxSymbolic = *maxSym
	if *noRefine {
		cfg.Options.Refine = false
	}
	if *resil {
		cfg.Options.Resilience = &resilience.Policy{RungDeadline: *rungDeadline}
	}
	cfg.SolveTimeout = *solveTimeout
	cfg.DegradeOnOverload = *degrade

	if *loadMode {
		rep, err := runLoad(cfg, *clients, *duration, *patterns, *variants, *scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep)
		return
	}

	srv := fleetrpc.NewServer(serve.New(cfg))
	var h http.Handler = srv.Mux()
	if *chaos {
		h = fleetrpc.WithChaosDelay(h)
	}
	log.Printf("listening on %s (max-batch %d, max-delay %v)", *addr, cfg.MaxBatch, cfg.MaxDelay)
	log.Fatal(http.ListenAndServe(*addr, h))
}
