// Quantum chemistry workload: the paper's Section 4 reports that the
// GESP software "is being used in a quantum chemistry application at
// Lawrence Berkeley National Laboratory, where a complex unsymmetric
// system of order 200,000 has been solved within 2 minutes". This example
// reproduces that workload class at laptop scale: a complex
// Green's-function system (σI − H) from a tight-binding Hamiltonian,
// solved by the complex GESP pipeline.
//
//	go run ./examples/quantumchem
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"gesp/internal/zsolver"
	"gesp/internal/zsparse"
)

func main() {
	rng := rand.New(rand.NewSource(1998))
	// Energy shift with a positive imaginary part (a broadening η), as in
	// linear-response calculations.
	sigma := complex(0.7, 0.9)
	a := zsparse.QuantumChem(16, 16, 12, sigma, rng)
	n := a.Rows
	fmt.Printf("Green's-function system (σI − H): n=%d nnz=%d complex unsymmetric\n", n, a.Nnz())

	want := make([]complex128, n)
	for i := range want {
		want[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b := make([]complex128, n)
	a.MatVec(b, want)

	t0 := time.Now()
	solver, err := zsolver.New(a, zsolver.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	factorTime := time.Since(t0)
	t0 = time.Now()
	x, err := solver.Solve(b)
	if err != nil {
		log.Fatal(err)
	}
	solveTime := time.Since(t0)

	st := solver.Stats()
	fmt.Printf("fill     : nnz(L+U) = %d (%.1fx), ~%.3g real flops\n",
		st.NnzLU, float64(st.NnzLU)/float64(st.NnzA), float64(st.Flops))
	fmt.Printf("times    : analysis+factor %v, solve+refine %v\n", factorTime, solveTime)
	fmt.Printf("refine   : %d steps, berr %.2e (converged=%v)\n", st.RefineSteps, st.Berr, st.Converged)
	fmt.Printf("error    : %.2e relative to the true solution\n", zsparse.RelErrInf(x, want))
	fmt.Println("\n(the paper's production run was order 200,000 on the T3E; the same")
	fmt.Println("pipeline here is limited only by single-machine memory)")
}
