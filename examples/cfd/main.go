// CFD workload: factor a 2-D convection-diffusion operator once, then
// solve a sequence of right-hand sides (a time-stepping loop), comparing
// GESP against partial-pivoting GEPP — the workload class (AF23560,
// BBMAT, EX11) that motivates the paper.
//
//	go run ./examples/cfd
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"gesp/internal/core"
	"gesp/internal/lu"
	"gesp/internal/matgen"
	"gesp/internal/sparse"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	// A 60x60 grid with strong convection: numerically unsymmetric, the
	// regime where symmetric solvers do not apply.
	a := matgen.ConvectionDiffusion2D(60, 60, 3.0, 1.0, rng)
	n := a.Rows
	fmt.Printf("2-D convection-diffusion: n=%d nnz=%d\n", n, a.Nnz())

	// One GESP analysis+factorization...
	t0 := time.Now()
	solver, err := core.New(a, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	factorTime := time.Since(t0)
	st := solver.Stats()
	fmt.Printf("GESP factorization: %v (nnz(L+U)=%d, %.2g flops)\n", factorTime, st.NnzLU, float64(st.Flops))

	// ...amortized over many time steps.
	const steps = 10
	var worst float64
	t0 = time.Now()
	for step := 0; step < steps; step++ {
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MatVec(b, want)
		x, err := solver.Solve(b)
		if err != nil {
			log.Fatal(err)
		}
		if e := sparse.RelErrInf(x, want); e > worst {
			worst = e
		}
	}
	solveTime := time.Since(t0)
	fmt.Printf("%d solves: %v total (%.1f%% of factorization each), worst error %.2e\n",
		steps, solveTime, 100*solveTime.Seconds()/float64(steps)/factorTime.Seconds(), worst)

	// Accuracy shoot-out against GEPP on the paper's b = A·1 setup.
	b := matgen.OnesRHS(a)
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	xGESP, err := solver.Solve(b)
	if err != nil {
		log.Fatal(err)
	}
	gepp, err := lu.GEPP(a)
	if err != nil {
		log.Fatal(err)
	}
	xGEPP := gepp.SolvePerm(b)
	fmt.Printf("accuracy: GESP %.2e vs GEPP %.2e (paper Figure 4: comparable, GESP often better)\n",
		sparse.RelErrInf(xGESP, ones), sparse.RelErrInf(xGEPP, ones))
}
