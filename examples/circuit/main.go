// Circuit simulation workload: a modified-nodal-analysis matrix whose
// voltage sources put structural zeros on the diagonal — the failure mode
// that makes plain no-pivoting elimination impossible (27 of the paper's
// 53 matrices) and that GESP's static pivoting handles. Also demonstrates
// the aggressive pivot replacement with Sherman–Morrison–Woodbury
// recovery from the paper's future-work section.
//
//	go run ./examples/circuit
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"gesp/internal/core"
	"gesp/internal/lu"
	"gesp/internal/matgen"
	"gesp/internal/ordering"
	"gesp/internal/sparse"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	a := matgen.Circuit(800, 5, 80, rng)
	a = matgen.EnsureFullRank(a, rng)
	// Put the source unknowns (structurally zero diagonals) first, as a
	// circuit netlist ordering plausibly would: plain elimination then
	// meets a zero pivot in column 0 immediately.
	n := a.Rows
	perm := make([]int, n)
	for i := 0; i < n; i++ {
		perm[i] = (i + 80) % n
	}
	a = a.PermuteSym(perm)
	fmt.Printf("MNA circuit matrix: n=%d nnz=%d zero-diagonals=%d\n", a.Rows, a.Nnz(), a.ZeroDiagonals())

	b := matgen.OnesRHS(a)
	ones := make([]float64, a.Rows)
	for i := range ones {
		ones[i] = 1
	}

	// 1. Plain no-pivoting elimination: breaks down on the zero diagonal.
	bare := core.Options{Ordering: ordering.Natural}
	if _, err := core.New(a, bare); err != nil {
		fmt.Printf("no pivoting            : FAILS (%v)\n", unwrapMsg(err))
	} else {
		fmt.Println("no pivoting            : survived (values filled the diagonal)")
	}

	// 2. Full GESP: the static pipeline handles it.
	solver, err := core.New(a, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	x, err := solver.Solve(b)
	if err != nil {
		log.Fatal(err)
	}
	st := solver.Stats()
	fmt.Printf("GESP                   : error %.2e, berr %.2e, %d refinement steps, %d tiny pivots\n",
		sparse.RelErrInf(x, ones), st.Berr, st.RefineSteps, st.TinyPivots)

	// 3. Aggressive pivot replacement + SMW recovery (future work §5).
	opts := core.DefaultOptions()
	opts.AggressivePivot = true
	solver2, err := core.New(a, opts)
	if err != nil {
		log.Fatal(err)
	}
	x2, err := solver2.Solve(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GESP + aggressive/SMW  : error %.2e, berr %.2e\n",
		sparse.RelErrInf(x2, ones), solver2.Stats().Berr)

	// 4. GEPP reference.
	if gepp, err := lu.GEPP(a); err == nil {
		xp := gepp.SolvePerm(b)
		fmt.Printf("GEPP (partial pivoting): error %.2e\n", sparse.RelErrInf(xp, ones))
	}
}

func unwrapMsg(err error) string {
	for {
		u := errors.Unwrap(err)
		if u == nil {
			return err.Error()
		}
		err = u
	}
}
