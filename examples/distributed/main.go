// Distributed solve: run the paper's Section 3 algorithms — 2-D
// block-cyclic LU factorization with pipelining and EDAG-pruned
// communication, plus the message-driven triangular solves — on a
// simulated T3E-900, sweeping the processor count to show the scaling
// behaviour of Tables 3 and 4.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"gesp/internal/core"
	"gesp/internal/dist"
	"gesp/internal/matgen"
	"gesp/internal/sparse"
)

func main() {
	m, _ := matgen.Lookup("WANG4")
	a := m.Generate(1.0)
	fmt.Printf("%s (%s): n=%d nnz=%d\n", m.Name, m.Discipline, a.Rows, a.Nnz())

	// Steps (1)-(2) and the symbolic analysis run once, serially — the
	// paper does the same ("we run steps (1) and (2) independently on
	// each processor").
	solver, err := core.NewAnalysis(a, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	st := solver.Stats()
	fmt.Printf("analysis: nnz(L+U)=%d, %.3g flops, %d supernodes (avg %.1f cols)\n\n",
		st.NnzLU, float64(st.Flops), st.NumSuper, st.AvgSuper)

	b := matgen.OnesRHS(a)
	ones := make([]float64, a.Rows)
	for i := range ones {
		ones[i] = 1
	}

	fmt.Printf("%6s %8s %12s %10s %8s %10s %12s %10s\n",
		"P", "grid", "factor(s)", "Mflops", "B", "comm", "solve(s)", "error")
	for _, p := range []int{1, 4, 16, 64, 256} {
		x, res, err := solver.DistSolve(b, dist.Options{
			Procs: p, Pipeline: true, EDAGPrune: true, ReplaceTinyPivot: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %8s %12.4f %10.0f %8.2f %9.0f%% %12.5f %10.2e\n",
			p, res.Grid.String(), res.Factor.SimTime, res.Factor.Mflops,
			res.Factor.LoadBalance, 100*res.Factor.CommFraction,
			res.Solve.SimTime, sparse.RelErrInf(x, ones))
	}
	fmt.Println("\n(simulated seconds on the modelled Cray T3E-900; static pivoting means")
	fmt.Println("the parallel algorithm computes the same factors as the serial one,")
	fmt.Println("independent of the processor count)")
}
