// Quickstart: assemble a small sparse system, solve it with GESP, and
// inspect the solver's diagnostics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gesp/internal/core"
	"gesp/internal/sparse"
)

func main() {
	// Assemble a 1-D convection-diffusion operator with a twist: zero the
	// first diagonal entry, which makes plain no-pivoting elimination
	// break down instantly. GESP's step (1) permutes a large entry onto
	// the diagonal and proceeds statically.
	const n = 100
	t := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		if i != 0 {
			t.Append(i, i, 2.5)
		}
		if i > 0 {
			t.Append(i, i-1, -1.5) // upwind convection
		}
		if i+1 < n {
			t.Append(i, i+1, -0.5)
		}
	}
	a := t.ToCSC()
	fmt.Printf("A: %dx%d, %d nonzeros, %d zero diagonal(s)\n", a.Rows, a.Cols, a.Nnz(), a.ZeroDiagonals())

	// Right-hand side for a known solution x_true = (1, 2, ..., n).
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i + 1)
	}
	b := make([]float64, n)
	a.MatVec(b, want)

	// Factor once with the paper's default pipeline...
	solver, err := core.New(a, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	// ...and solve (the factorization is reusable across right-hand sides).
	x, err := solver.Solve(b)
	if err != nil {
		log.Fatal(err)
	}

	st := solver.Stats()
	fmt.Printf("fill     : nnz(L+U) = %d (%.1fx of A)\n", st.NnzLU, float64(st.NnzLU)/float64(a.Nnz()))
	fmt.Printf("pivoting : %d tiny pivots replaced\n", st.TinyPivots)
	fmt.Printf("refine   : %d steps, backward error %.2e\n", st.RefineSteps, st.Berr)
	fmt.Printf("error    : %.2e relative to x_true\n", sparse.RelErrInf(x, want))
	fmt.Printf("cond est : %.2e\n", solver.CondEst())
}
