// Benchmarks regenerating the paper's tables and figures, one per
// artifact (see DESIGN.md's experiment index). Custom metrics are
// attached via b.ReportMetric so `go test -bench` output carries the
// reproduction headline numbers:
//
//	go test -bench=. -benchmem
//
// The full formatted tables come from `go run ./cmd/gesp-bench`.
package gesp_test

import (
	"fmt"
	"math/rand"
	"time"

	"testing"

	"gesp/internal/core"
	"gesp/internal/dist"
	"gesp/internal/experiments"
	"gesp/internal/faultsim"
	"gesp/internal/lu"
	"gesp/internal/matgen"
	"gesp/internal/resilience"
	"gesp/internal/serve"
	"gesp/internal/sparse"
	"gesp/internal/superlu"
	"gesp/internal/zsolver"
	"gesp/internal/zsparse"
)

// benchScale keeps the default `go test -bench` run fast; cmd/gesp-bench
// defaults to larger problems.
const benchScale = 0.25

func BenchmarkTable1Testbed(b *testing.B) {
	// Generation cost of the whole 53-matrix testbed.
	var nnz int
	for i := 0; i < b.N; i++ {
		nnz = 0
		for _, r := range experiments.Table1(benchScale) {
			nnz += r.Nnz
		}
	}
	b.ReportMetric(float64(nnz), "testbed-nnz")
}

func BenchmarkFigure2Characteristics(b *testing.B) {
	// Fill analysis (symbolic factorization) across the testbed.
	m, _ := matgen.Lookup("AF23560")
	a := m.Generate(benchScale)
	b.ResetTimer()
	var fill int
	for i := 0; i < b.N; i++ {
		s, err := core.NewAnalysis(a, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		fill = s.Stats().NnzLU
	}
	b.ReportMetric(float64(fill), "nnz(L+U)")
}

func BenchmarkFigure3Refinement(b *testing.B) {
	m, _ := matgen.Lookup("LHR14C")
	a := m.Generate(benchScale)
	rhs := matgen.OnesRHS(a)
	s, err := core.New(a, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.Stats().RefineSteps), "refine-steps")
	b.ReportMetric(s.Stats().Berr, "berr")
}

func BenchmarkFigure4ErrorVsGEPP(b *testing.B) {
	m, _ := matgen.Lookup("MEMPLUS")
	a := m.Generate(benchScale)
	rhs := matgen.OnesRHS(a)
	ones := make([]float64, a.Rows)
	for i := range ones {
		ones[i] = 1
	}
	var eGESP, eGEPP float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := core.New(a, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		x, err := s.Solve(rhs)
		if err != nil {
			b.Fatal(err)
		}
		eGESP = sparse.RelErrInf(x, ones)
		f, err := lu.GEPP(a)
		if err != nil {
			b.Fatal(err)
		}
		eGEPP = sparse.RelErrInf(f.SolvePerm(rhs), ones)
	}
	b.ReportMetric(eGESP, "err-gesp")
	b.ReportMetric(eGEPP, "err-gepp")
}

func BenchmarkFigure5Berr(b *testing.B) {
	m, _ := matgen.Lookup("TWOTONE")
	a := m.Generate(benchScale)
	rhs := matgen.OnesRHS(a)
	s, err := core.New(a, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s.Stats().Berr, "berr")
}

func BenchmarkFigure6StepCosts(b *testing.B) {
	// Relative cost of the GESP steps on one large-ish matrix.
	m, _ := matgen.Lookup("BBMAT")
	a := m.Generate(benchScale)
	rhs := matgen.OnesRHS(a)
	var st core.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := core.New(a, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Solve(rhs); err != nil {
			b.Fatal(err)
		}
		st = s.Stats()
	}
	if ft := st.Times.Factor.Seconds(); ft > 0 {
		b.ReportMetric(st.Times.RowPerm.Seconds()/ft, "rowperm/factor")
		b.ReportMetric(st.Times.Solve.Seconds()/ft, "solve/factor")
	}
}

func BenchmarkTable2Characteristics(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2(benchScale)
	}
	if len(rows) > 0 {
		b.ReportMetric(rows[0].StrSym, "strsym-af23560")
	}
}

func benchDistFactor(b *testing.B, name string, procs int) {
	m, _ := matgen.Lookup(name)
	a := m.Generate(benchScale)
	s, err := core.NewAnalysis(a, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	rhs := matgen.OnesRHS(a)
	var res *dist.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err = s.DistSolve(rhs, dist.Options{
			Procs: procs, Pipeline: true, EDAGPrune: true, ReplaceTinyPivot: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Factor.SimTime*1000, "factor-sim-ms")
	b.ReportMetric(res.Factor.Mflops, "sim-Mflops")
	b.ReportMetric(res.Solve.SimTime*1000, "solve-sim-ms")
	b.ReportMetric(res.Factor.LoadBalance, "B")
	b.ReportMetric(res.Factor.CommFraction, "comm-frac")
}

func BenchmarkTable3ParallelLU(b *testing.B)    { benchDistFactor(b, "WANG4", 16) }
func BenchmarkTable4ParallelSolve(b *testing.B) { benchDistFactor(b, "EX11", 16) }
func BenchmarkTable5LoadBalance(b *testing.B)   { benchDistFactor(b, "TWOTONE", 16) }

func BenchmarkEDAGPruningAblation(b *testing.B) {
	var r experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.EDAGAblation("AF23560", benchScale, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.BaseMessages-r.OnMessages), "msgs-saved")
}

func BenchmarkPipelineAblation(b *testing.B) {
	var r experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.PipelineAblation("AF23560", benchScale, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	if r.BaseTime > 0 {
		b.ReportMetric(100*(r.BaseTime-r.OnTime)/r.BaseTime, "speedup-%")
	}
}

func BenchmarkNoPivotFailures(b *testing.B) {
	var failed int
	for i := 0; i < b.N; i++ {
		failed = 0
		for _, r := range experiments.RunNoPivot(benchScale) {
			if r.Failed {
				failed++
			}
		}
	}
	b.ReportMetric(float64(failed), "breakdowns")
}

// Kernel-level benchmarks of the substrates.

func BenchmarkSerialGESPFactor(b *testing.B) {
	m, _ := matgen.Lookup("AF23560")
	a := m.Generate(benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.New(a, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialGEPPFactor(b *testing.B) {
	m, _ := matgen.Lookup("AF23560")
	a := m.Generate(benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lu.GEPP(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMC64Matching(b *testing.B) {
	m, _ := matgen.Lookup("TWOTONE")
	a := m.Generate(benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := core.NewAnalysis(a, core.Options{RowPermute: true, ColScale: true})
		if err != nil {
			b.Fatal(err)
		}
		_ = s
	}
}

// Extension benchmarks (paper §5 future-work features).

func BenchmarkDenseTailSwitch(b *testing.B) {
	// Compare plain sparse factorization against the dense-tail switch on
	// a matrix with a genuinely dense trailing block.
	m, _ := matgen.Lookup("PSMIGR_1")
	a := m.Generate(benchScale)
	s, err := core.NewAnalysis(a, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	ap, sym := s.PermutedMatrix(), s.Symbolic()
	b.ResetTimer()
	var tail int
	for i := 0; i < b.N; i++ {
		_, tail, err = lu.FactorizeDenseTail(ap, sym, lu.Options{ReplaceTinyPivot: true}, 0.5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sym.N-tail), "dense-tail-cols")
}

func BenchmarkLevelScheduledSolve(b *testing.B) {
	m, _ := matgen.Lookup("AF23560")
	a := m.Generate(benchScale)
	s, err := core.New(a, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	f := s.Factors()
	ls := f.NewLevelSchedule()
	fwd, bwd := ls.NumLevels()
	rhs := matgen.OnesRHS(s.PermutedMatrix())
	x := make([]float64, a.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(x, rhs)
		f.ParallelSolve(ls, x, 4)
	}
	b.ReportMetric(float64(fwd), "fwd-levels")
	b.ReportMetric(float64(bwd), "bwd-levels")
}

func BenchmarkILUGMRESWithMC64(b *testing.B) {
	var rows []experiments.IterativeRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.IterativeAblation([]string{"GEMAT11"}, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		b.ReportMetric(float64(rows[0].MC64Iters), "gmres-iters-mc64")
	}
}

func BenchmarkDistTriangularSolveOnly(b *testing.B) {
	// Table 4's kernel in isolation: message-driven solves at P=16.
	m, _ := matgen.Lookup("MEMPLUS")
	a := m.Generate(benchScale)
	s, err := core.NewAnalysis(a, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	rhs := matgen.OnesRHS(a)
	var res *dist.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err = s.DistSolve(rhs, dist.Options{Procs: 16, Pipeline: true, EDAGPrune: true, ReplaceTinyPivot: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Solve.SimTime*1000, "solve-sim-ms")
	b.ReportMetric(res.Solve.CommFraction, "solve-comm-frac")
}

func BenchmarkComplexQuantumChem(b *testing.B) {
	// The paper's §4 application workload: complex unsymmetric
	// Green's-function system via the complex GESP pipeline.
	rng := rand.New(rand.NewSource(1998))
	a := zsparse.QuantumChem(8, 8, 6, complex(0.7, 0.9), rng)
	want := make([]complex128, a.Rows)
	for i := range want {
		want[i] = complex(1, -1)
	}
	rhs := make([]complex128, a.Rows)
	a.MatVec(rhs, want)
	b.ResetTimer()
	var berr float64
	for i := 0; i < b.N; i++ {
		s, err := zsolver.New(a, zsolver.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Solve(rhs); err != nil {
			b.Fatal(err)
		}
		berr = s.Stats().Berr
	}
	b.ReportMetric(berr, "berr")
}

func BenchmarkParallelFactorSpeedup(b *testing.B) {
	// The DAG-scheduled shared-memory engine vs the serial blocked engine
	// on the largest testbed matrix, sweeping worker counts. The
	// speedup-vs-serial metric is wall-clock of dist.FactorizeBlocked
	// divided by wall-clock of superlu.FactorizeParallel; on a
	// single-core machine it degenerates to the scheduler's overhead
	// ratio.
	m, _ := matgen.Lookup("BBMAT")
	a := m.Generate(benchScale)
	s, err := core.NewAnalysis(a, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	ap, sym := s.PermutedMatrix(), s.Symbolic()
	opts := lu.Options{ReplaceTinyPivot: true}

	// Serial blocked baseline: best of three.
	serialNs := int64(0)
	for r := 0; r < 3; r++ {
		t0 := time.Now()
		if _, _, err := dist.FactorizeBlocked(ap, sym, opts); err != nil {
			b.Fatal(err)
		}
		if ns := time.Since(t0).Nanoseconds(); serialNs == 0 || ns < serialNs {
			serialNs = ns
		}
	}
	b.ReportMetric(float64(serialNs)/1e6, "serial-blocked-ms")

	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := superlu.FactorizeParallel(ap, sym, opts, w); err != nil {
					b.Fatal(err)
				}
			}
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if perOp > 0 {
				b.ReportMetric(float64(serialNs)/perOp, "speedup-vs-serial")
			}
		})
	}
}

func BenchmarkServeThroughput(b *testing.B) {
	// The serving-layer closed loop: 8 clients hammering factor-cached
	// solves through the RHS batcher. Each iteration is one fixed-length
	// measurement window, so the headline metric is solves/s rather than
	// ns/op. Refinement off to isolate the batched triangular sweeps.
	cfg := serve.DefaultConfig()
	cfg.MaxDelay = 0 // rely on natural backlog coalescing, not timers
	cfg.Options.Refine = false
	var last *experiments.ServeLoadResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunServeLoad(experiments.ServeLoadConfig{
			Service:  cfg,
			Clients:  8,
			Patterns: 2,
			Variants: 3,
			Duration: 200 * time.Millisecond,
			Scale:    benchScale,
			Resubmit: 0.05,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.Throughput, "solves/s")
		b.ReportMetric(last.MeanBatch, "mean-batch")
		b.ReportMetric(serve.HitRate(last.Stats.FactorHits, last.Stats.FactorMisses), "factor-hit-rate")
	}
}

func BenchmarkSupernodalVsColumnFactor(b *testing.B) {
	// The SuperLU-style blocked engine vs the scalar column kernel on the
	// same static structure (the paper's uniprocessor-performance theme).
	m, _ := matgen.Lookup("EX11")
	a := m.Generate(benchScale)
	s, err := core.NewAnalysis(a, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	ap, sym := s.PermutedMatrix(), s.Symbolic()
	b.Run("column", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lu.Factorize(ap, sym, lu.Options{ReplaceTinyPivot: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("supernodal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := superlu.Factorize(ap, sym, lu.Options{ReplaceTinyPivot: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkResilienceLadder(b *testing.B) {
	// The resilience ladder's two cost regimes: the guarded happy path
	// (rung 0, must be indistinguishable from plain solve+refine) and a
	// full escalation to the GEPP refactorization rung. The gap between
	// the two is the price of the safety contract when it actually fires.
	m, _ := matgen.Lookup("SHERMAN4")
	a := m.Generate(benchScale)
	want := make([]float64, a.Rows)
	for i := range want {
		want[i] = 1
	}
	rhs := make([]float64, a.Rows)
	a.MatVec(rhs, want)

	opts := core.DefaultOptions()
	opts.Resilience = &resilience.Policy{}
	b.Run("rung0", func(b *testing.B) {
		s, err := core.New(a, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Solve(rhs); err != nil {
				b.Fatal(err)
			}
		}
		st := s.Stats()
		b.ReportMetric(float64(st.Escalations), "escalations")
	})
	b.Run("escalate-gepp", func(b *testing.B) {
		inj := faultsim.New(1)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s, err := core.New(a, opts)
			if err != nil {
				b.Fatal(err)
			}
			inj.CorruptFactors(s.Factors(), 3)
			b.StartTimer()
			if _, err := s.Solve(rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
