package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMatrixMarket writes a in MatrixMarket coordinate format
// ("%%MatrixMarket matrix coordinate real general") with 1-based indices.
func WriteMatrixMarket(w io.Writer, a *CSC) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n", a.Rows, a.Cols, a.Nnz()); err != nil {
		return err
	}
	for j := 0; j < a.Cols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", a.RowInd[k]+1, j+1, a.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate file (real, general or
// symmetric; symmetric inputs are expanded to full storage).
func ReadMatrixMarket(r io.Reader) (*CSC, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	symmetric := false
	// Header line.
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket input")
	}
	header := strings.ToLower(sc.Text())
	if !strings.HasPrefix(header, "%%matrixmarket") {
		return nil, fmt.Errorf("sparse: missing MatrixMarket header")
	}
	if !strings.Contains(header, "coordinate") {
		return nil, fmt.Errorf("sparse: only coordinate format supported")
	}
	if strings.Contains(header, "complex") || strings.Contains(header, "pattern") {
		return nil, fmt.Errorf("sparse: only real-valued matrices supported")
	}
	if strings.Contains(header, "symmetric") {
		symmetric = true
	}
	// Size line, skipping comments.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %v", line, err)
		}
		break
	}
	if rows < 0 || cols < 0 || nnz < 0 || rows > 1<<28 || cols > 1<<28 || nnz > 1<<30 {
		return nil, fmt.Errorf("sparse: implausible dimensions %d %d %d", rows, cols, nnz)
	}
	t := NewTriplet(rows, cols)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 3 {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		i, err1 := strconv.Atoi(f[0])
		j, err2 := strconv.Atoi(f[1])
		v, err3 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of range %dx%d", i, j, rows, cols)
		}
		t.Append(i-1, j-1, v)
		if symmetric && i != j {
			t.Append(j-1, i-1, v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read != nnz {
		return nil, fmt.Errorf("sparse: expected %d entries, found %d", nnz, read)
	}
	return t.ToCSC(), nil
}
