package sparse

import "math"

// PatternHash returns a 64-bit structural fingerprint of a's sparsity
// pattern, independent of the stored values. Two matrices with identical
// (Rows, Cols, ColPtr, RowInd) — the canonical CSC pattern, since row
// indices are sorted and unique within each column — hash equal; the
// values play no part. The serving layer keys its symbolic-analysis
// cache on this hash: the whole premise of static pivoting is that the
// elimination structure depends only on the pattern, so symbolic work is
// reusable across every matrix sharing a fingerprint.
//
// The hash is FNV-1a over the dimensions, the column lengths and the row
// indices, each mixed in as 8 little-endian bytes. It is deterministic
// across runs and platforms. Collisions are possible in principle
// (probability ~2⁻⁶⁴ per pair); callers that cannot tolerate them must
// compare patterns explicitly.
func PatternHash(a *CSC) uint64 {
	h := fnvOffset
	h = fnvMix(h, uint64(a.Rows))
	h = fnvMix(h, uint64(a.Cols))
	for j := 0; j < a.Cols; j++ {
		h = fnvMix(h, uint64(a.ColPtr[j+1]-a.ColPtr[j]))
	}
	for _, i := range a.RowInd[:a.Nnz()] {
		h = fnvMix(h, uint64(i))
	}
	return h
}

// ValueHash returns a 64-bit fingerprint of a's stored values (their
// IEEE-754 bit patterns, in storage order), complementing PatternHash:
// the pair (PatternHash, ValueHash) identifies a matrix up to hash
// collision. The serving layer keys numeric factors on the pair. Note
// that two CSCs holding equal values under different patterns can hash
// equal here — ValueHash is only meaningful alongside PatternHash.
func ValueHash(a *CSC) uint64 {
	h := fnvOffset
	for _, v := range a.Val[:a.Nnz()] {
		h = fnvMix(h, math.Float64bits(v))
	}
	return h
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a state byte by byte.
func fnvMix(h, v uint64) uint64 {
	for b := 0; b < 8; b++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}
