package sparse

// Pattern is a symmetric sparsity structure given as an adjacency list in
// compressed form: the neighbours of vertex j are Ind[Ptr[j]:Ptr[j+1]],
// sorted ascending, never containing j itself.
type Pattern struct {
	N   int
	Ptr []int
	Ind []int
}

// Nnz reports the number of stored (directed) adjacency entries.
func (p *Pattern) Nnz() int { return p.Ptr[p.N] }

// PatternAPlusAT returns the adjacency structure of A + Aᵀ with the
// diagonal removed, used for fill-reducing ordering of nearly symmetric
// matrices.
func PatternAPlusAT(a *CSC) *Pattern {
	n := a.Cols
	at := a.Transpose()
	ptr := make([]int, n+1)
	// First pass: count the merged degree of each column.
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	count := func(j int, dst []int) int {
		c := 0
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			i := a.RowInd[k]
			if i != j && mark[i] != j {
				mark[i] = j
				if dst != nil {
					dst[c] = i
				}
				c++
			}
		}
		for k := at.ColPtr[j]; k < at.ColPtr[j+1]; k++ {
			i := at.RowInd[k]
			if i != j && mark[i] != j {
				mark[i] = j
				if dst != nil {
					dst[c] = i
				}
				c++
			}
		}
		return c
	}
	for j := 0; j < n; j++ {
		ptr[j+1] = ptr[j] + count(j, nil)
	}
	ind := make([]int, ptr[n])
	for i := range mark {
		mark[i] = -1
	}
	for j := 0; j < n; j++ {
		c := count(j, ind[ptr[j]:])
		insertionSortInts(ind[ptr[j] : ptr[j]+c])
	}
	return &Pattern{N: n, Ptr: ptr, Ind: ind}
}

// PatternATA returns the adjacency structure of AᵀA with the diagonal
// removed: columns j and k are adjacent iff they share a nonzero row in A.
// This is the graph GESP orders with minimum degree to bound fill for any
// row permutation.
func PatternATA(a *CSC) *Pattern {
	n := a.Cols
	at := a.Transpose() // rows of A as columns
	ptr := make([]int, n+1)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	// Column j of AᵀA has nonzeros at all columns k sharing any row i with
	// column j of A.
	count := func(j int, dst []int) int {
		c := 0
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			i := a.RowInd[k]
			for kk := at.ColPtr[i]; kk < at.ColPtr[i+1]; kk++ {
				col := at.RowInd[kk]
				if col != j && mark[col] != j {
					mark[col] = j
					if dst != nil {
						dst[c] = col
					}
					c++
				}
			}
		}
		return c
	}
	for j := 0; j < n; j++ {
		ptr[j+1] = ptr[j] + count(j, nil)
	}
	ind := make([]int, ptr[n])
	for i := range mark {
		mark[i] = -1
	}
	for j := 0; j < n; j++ {
		c := count(j, ind[ptr[j]:])
		insertionSortInts(ind[ptr[j] : ptr[j]+c])
	}
	return &Pattern{N: n, Ptr: ptr, Ind: ind}
}

func insertionSortInts(s []int) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// Symmetry holds the structural and numeric symmetry fractions reported in
// the paper's Table 2.
type Symmetry struct {
	// Str is the fraction of off-diagonal nonzeros matched by a nonzero in
	// the symmetric location ("StrSym").
	Str float64
	// Num is the fraction of off-diagonal nonzeros matched by an equal
	// value in the symmetric location ("NumSym").
	Num float64
}

// SymmetryOf computes structural and numeric symmetry fractions of a
// square matrix. A matrix with no off-diagonal entries reports 1 for both.
func SymmetryOf(a *CSC) Symmetry {
	at := a.Transpose()
	total, strMatch, numMatch := 0, 0, 0
	for j := 0; j < a.Cols; j++ {
		ka, kt := a.ColPtr[j], at.ColPtr[j]
		ea, et := a.ColPtr[j+1], at.ColPtr[j+1]
		for ka < ea {
			i := a.RowInd[ka]
			if i == j {
				ka++
				continue
			}
			total++
			for kt < et && at.RowInd[kt] < i {
				kt++
			}
			if kt < et && at.RowInd[kt] == i {
				strMatch++
				// Numeric symmetry counts entries with A(i,j) exactly
				// equal to A(j,i), the Harwell-Boeing statistic.
				//gesp:floateq
				if at.Val[kt] == a.Val[ka] {
					numMatch++
				}
			}
			ka++
		}
	}
	if total == 0 {
		return Symmetry{Str: 1, Num: 1}
	}
	return Symmetry{
		Str: float64(strMatch) / float64(total),
		Num: float64(numMatch) / float64(total),
	}
}
