package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Harwell–Boeing format support. The paper's testbed comes from the
// Harwell–Boeing collection, whose native exchange format is a
// Fortran-era fixed-column layout: a 4–5 line header describing card
// counts and formats, then column pointers, row indices, and values laid
// out in fixed-width fields. This file implements reading and writing of
// assembled real matrices (RUA/RSA types).

// hbFormat describes one Fortran edit descriptor like (10I8) or (4E20.12).
type hbFormat struct {
	perLine int
	width   int
}

func parseHBFormat(s string) (hbFormat, error) {
	t := strings.ToUpper(strings.TrimSpace(s))
	t = strings.TrimPrefix(t, "(")
	t = strings.TrimSuffix(t, ")")
	// Accept forms like 10I8, 4E20.12, 1P4E20.12, 5E15.8, 26I3.
	t = strings.TrimPrefix(t, "1P") // scale factor: irrelevant for parsing
	sep := strings.IndexAny(t, "IEDFG")
	if sep < 0 {
		return hbFormat{}, fmt.Errorf("sparse: unsupported HB format %q", s)
	}
	count := 1
	if sep > 0 {
		c, err := strconv.Atoi(t[:sep])
		if err != nil {
			return hbFormat{}, fmt.Errorf("sparse: bad HB repeat count in %q", s)
		}
		count = c
	}
	rest := t[sep+1:]
	if dot := strings.Index(rest, "."); dot >= 0 {
		rest = rest[:dot]
	}
	width, err := strconv.Atoi(rest)
	if err != nil {
		return hbFormat{}, fmt.Errorf("sparse: bad HB field width in %q", s)
	}
	return hbFormat{perLine: count, width: width}, nil
}

// hbFieldReader yields fixed-width fields from consecutive lines.
type hbFieldReader struct {
	sc     *bufio.Scanner
	format hbFormat
	line   string
	pos    int
	inLine int
}

func (r *hbFieldReader) next() (string, error) {
	for {
		if r.line != "" && r.pos+r.width() <= len(r.line) && r.inLine < r.format.perLine {
			f := strings.TrimSpace(r.line[r.pos : r.pos+r.width()])
			r.pos += r.width()
			r.inLine++
			if f != "" {
				return f, nil
			}
			continue
		}
		// Partial trailing field on the line.
		if r.line != "" && r.pos < len(r.line) && r.inLine < r.format.perLine {
			f := strings.TrimSpace(r.line[r.pos:])
			r.pos = len(r.line)
			r.inLine++
			if f != "" {
				return f, nil
			}
			continue
		}
		if !r.sc.Scan() {
			if err := r.sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		r.line = r.sc.Text()
		r.pos = 0
		r.inLine = 0
	}
}

func (r *hbFieldReader) width() int { return r.format.width }

// ReadHarwellBoeing parses an assembled real Harwell–Boeing matrix (types
// RUA, RSA; symmetric input is expanded to full storage).
func ReadHarwellBoeing(rd io.Reader) (*CSC, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	readLine := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}
	if _, err := readLine(); err != nil { // title + key
		return nil, fmt.Errorf("sparse: HB header: %w", err)
	}
	counts, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("sparse: HB card counts: %w", err)
	}
	cf := strings.Fields(counts)
	if len(cf) < 4 {
		return nil, fmt.Errorf("sparse: bad HB card-count line %q", counts)
	}
	rhscrd := 0
	if len(cf) >= 5 {
		// Optional fifth field; absent or malformed means no RHS cards.
		rhscrd, _ = strconv.Atoi(cf[4]) //gesp:errok
	}
	typeLine, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("sparse: HB type line: %w", err)
	}
	tf := strings.Fields(typeLine)
	if len(tf) < 4 {
		return nil, fmt.Errorf("sparse: bad HB type line %q", typeLine)
	}
	mxtype := strings.ToUpper(tf[0])
	if len(mxtype) != 3 || mxtype[0] != 'R' || mxtype[2] != 'A' {
		return nil, fmt.Errorf("sparse: unsupported HB matrix type %q (want R_A)", mxtype)
	}
	symmetric := mxtype[1] == 'S'
	rows, err1 := strconv.Atoi(tf[1])
	cols, err2 := strconv.Atoi(tf[2])
	nnz, err3 := strconv.Atoi(tf[3])
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, fmt.Errorf("sparse: bad HB dimensions in %q", typeLine)
	}
	if rows < 0 || cols < 0 || nnz < 0 || rows > 1<<28 || cols > 1<<28 || nnz > 1<<30 {
		return nil, fmt.Errorf("sparse: implausible HB dimensions %d %d %d", rows, cols, nnz)
	}
	fmtLine, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("sparse: HB format line: %w", err)
	}
	ptrFmtStr, indFmtStr, valFmtStr, err := splitHBFormats(fmtLine)
	if err != nil {
		return nil, err
	}
	ptrFmt, err := parseHBFormat(ptrFmtStr)
	if err != nil {
		return nil, err
	}
	indFmt, err := parseHBFormat(indFmtStr)
	if err != nil {
		return nil, err
	}
	valFmt, err := parseHBFormat(valFmtStr)
	if err != nil {
		return nil, err
	}
	if rhscrd > 0 {
		if _, err := readLine(); err != nil { // RHS format line: skipped
			return nil, fmt.Errorf("sparse: HB rhs line: %w", err)
		}
	}

	colPtr := make([]int, cols+1)
	fr := &hbFieldReader{sc: sc, format: ptrFmt}
	for i := range colPtr {
		f, err := fr.next()
		if err != nil {
			return nil, fmt.Errorf("sparse: HB pointers: %w", err)
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("sparse: HB pointer %q", f)
		}
		colPtr[i] = v - 1 // 1-based
	}
	rowInd := make([]int, nnz)
	fr = &hbFieldReader{sc: sc, format: indFmt}
	for i := range rowInd {
		f, err := fr.next()
		if err != nil {
			return nil, fmt.Errorf("sparse: HB indices: %w", err)
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("sparse: HB index %q", f)
		}
		rowInd[i] = v - 1
	}
	vals := make([]float64, nnz)
	fr = &hbFieldReader{sc: sc, format: valFmt}
	for i := range vals {
		f, err := fr.next()
		if err != nil {
			return nil, fmt.Errorf("sparse: HB values: %w", err)
		}
		// Fortran prints exponents as D; Go wants E.
		f = strings.ReplaceAll(strings.ReplaceAll(f, "D", "E"), "d", "e")
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("sparse: HB value %q", f)
		}
		vals[i] = v
	}

	t := NewTriplet(rows, cols)
	for j := 0; j < cols; j++ {
		for k := colPtr[j]; k < colPtr[j+1]; k++ {
			if k < 0 || k >= nnz {
				return nil, fmt.Errorf("sparse: HB pointer out of range in column %d", j)
			}
			i := rowInd[k]
			if i < 0 || i >= rows {
				return nil, fmt.Errorf("sparse: HB row index %d out of range", i+1)
			}
			t.Append(i, j, vals[k])
			if symmetric && i != j {
				t.Append(j, i, vals[k])
			}
		}
	}
	return t.ToCSC(), nil
}

func splitHBFormats(line string) (ptr, ind, val string, err error) {
	// Formats are parenthesized groups laid out in fixed columns; parsing
	// by parenthesis groups is more robust than column slicing.
	var groups []string
	depth, start := 0, -1
	for i, c := range line {
		switch c {
		case '(':
			if depth == 0 {
				start = i
			}
			depth++
		case ')':
			depth--
			if depth == 0 && start >= 0 {
				groups = append(groups, line[start:i+1])
			}
		}
	}
	if len(groups) < 3 {
		return "", "", "", fmt.Errorf("sparse: bad HB format line %q", line)
	}
	return groups[0], groups[1], groups[2], nil
}

// WriteHarwellBoeing writes a in Harwell–Boeing RUA format with the given
// title and key (both trimmed/padded to the fixed header fields). The
// per-card write errors are deliberately unchecked: bufio.Writer is
// error-sticky, so the first failure is what the final Flush returns.
//
//gesp:errok
func WriteHarwellBoeing(w io.Writer, a *CSC, title, key string) error {
	bw := bufio.NewWriter(w)
	nnz := a.Nnz()
	perPtr, perInd, perVal := 10, 10, 4
	ptrLines := (a.Cols + 1 + perPtr - 1) / perPtr
	indLines := (nnz + perInd - 1) / perInd
	valLines := (nnz + perVal - 1) / perVal
	if nnz == 0 {
		indLines, valLines = 0, 0
	}
	total := ptrLines + indLines + valLines

	fmt.Fprintf(bw, "%-72.72s%-8.8s\n", title, key)
	fmt.Fprintf(bw, "%14d%14d%14d%14d%14d\n", total, ptrLines, indLines, valLines, 0)
	fmt.Fprintf(bw, "%-14.14s%14d%14d%14d%14d\n", "RUA", a.Rows, a.Cols, nnz, 0)
	fmt.Fprintf(bw, "%-16.16s%-16.16s%-20.20s%-20.20s\n", "(10I8)", "(10I8)", "(4E20.12)", "(4E20.12)")

	writeInts := func(vals []int, per int) {
		for i, v := range vals {
			fmt.Fprintf(bw, "%8d", v+1) // 1-based
			if (i+1)%per == 0 || i == len(vals)-1 {
				fmt.Fprintln(bw)
			}
		}
	}
	writeInts(a.ColPtr, perPtr)
	if nnz > 0 {
		writeInts(a.RowInd, perInd)
		for i, v := range a.Val {
			fmt.Fprintf(bw, "%20.12E", v)
			if (i+1)%perVal == 0 || i == nnz-1 {
				fmt.Fprintln(bw)
			}
		}
	}
	return bw.Flush()
}
