package sparse

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestHarwellBoeingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(40)
		a := randomCSC(rng, n, 0.15)
		var buf bytes.Buffer
		if err := WriteHarwellBoeing(&buf, a, "round trip test matrix", "TEST0001"); err != nil {
			t.Fatal(err)
		}
		b, err := ReadHarwellBoeing(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v\n", trial, err)
		}
		if b.Rows != a.Rows || b.Cols != a.Cols || b.Nnz() != a.Nnz() {
			t.Fatalf("trial %d: shape changed: %dx%d nnz=%d", trial, b.Rows, b.Cols, b.Nnz())
		}
		da, db := a.Dense(), b.Dense()
		for i := range da {
			for j := range da[i] {
				if math.Abs(da[i][j]-db[i][j]) > 1e-11*math.Abs(da[i][j])+1e-300 {
					t.Fatalf("trial %d: value changed at (%d,%d): %g vs %g", trial, i, j, da[i][j], db[i][j])
				}
			}
		}
	}
}

func TestHarwellBoeingFixture(t *testing.T) {
	// Hand-written RSA fixture with Fortran D exponents (symmetric: must
	// expand), in the classic fixed-column layout.
	fixture := "symmetric fixture                                                       FIX00001\n" +
		"             3             1             1             1             0\n" +
		"RSA                        3             3             4             0\n" +
		"(10I8)          (10I8)          (4D20.12)           (4D20.12)          \n" +
		"       1       3       4       5\n" +
		"       1       2       2       3\n" +
		"  0.200000000000D+01 -0.100000000000D+01  0.300000000000D+01  0.400000000000D+01\n"
	a, err := ReadHarwellBoeing(strings.NewReader(fixture))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 3 || a.Cols != 3 {
		t.Fatalf("shape %dx%d", a.Rows, a.Cols)
	}
	if a.At(0, 0) != 2 {
		t.Errorf("(0,0) = %g, want 2", a.At(0, 0))
	}
	if a.At(1, 0) != -1 || a.At(0, 1) != -1 {
		t.Errorf("symmetric entry not expanded: %g / %g", a.At(1, 0), a.At(0, 1))
	}
	if a.At(1, 1) != 3 || a.At(2, 2) != 4 {
		t.Errorf("diagonal wrong: %g %g", a.At(1, 1), a.At(2, 2))
	}
	if a.Nnz() != 5 {
		t.Errorf("nnz = %d, want 5 after expansion", a.Nnz())
	}
}

func TestHarwellBoeingRejectsUnsupported(t *testing.T) {
	bad := "complex matrix                                                          BAD00001\n" +
		"             3             1             1             1             0\n" +
		"CUA                        2             2             1             0\n" +
		"(10I8)          (10I8)          (4E20.12)           (4E20.12)          \n"
	if _, err := ReadHarwellBoeing(strings.NewReader(bad)); err == nil {
		t.Error("complex HB type accepted")
	}
	if _, err := ReadHarwellBoeing(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestParseHBFormat(t *testing.T) {
	cases := []struct {
		in      string
		per, w  int
		wantErr bool
	}{
		{"(10I8)", 10, 8, false},
		{"(4E20.12)", 4, 20, false},
		{"(1P4E20.12)", 4, 20, false},
		{"(26I3)", 26, 3, false},
		{"(E25.16)", 1, 25, false},
		{"(10F8.2)", 10, 8, false},
		{"(bogus)", 0, 0, true},
	}
	for _, c := range cases {
		f, err := parseHBFormat(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("%s: expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", c.in, err)
			continue
		}
		if f.perLine != c.per || f.width != c.w {
			t.Errorf("%s: got %+v, want per=%d width=%d", c.in, f, c.per, c.w)
		}
	}
}
