package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// The format parsers must never panic on malformed input — they guard a
// CLI that reads user files. Run with `go test -fuzz=FuzzReadMatrixMarket`
// to explore; the seed corpus runs in normal test mode.

func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 2 -3e4\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 0.5\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 2 2\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n999999999999 2 2\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 3 1.0\n")
	f.Add("")
	f.Add("%%MatrixMarket\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 nan\n")
	f.Fuzz(func(t *testing.T, in string) {
		a, err := ReadMatrixMarket(strings.NewReader(in))
		if err != nil {
			return
		}
		// Whatever parses must satisfy the CSC invariants.
		if err := a.Check(); err != nil {
			t.Fatalf("parsed matrix violates invariants: %v", err)
		}
		// And must round-trip.
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, a); err != nil {
			t.Fatalf("round-trip write failed: %v", err)
		}
		if _, err := ReadMatrixMarket(&buf); err != nil {
			t.Fatalf("round-trip read failed: %v", err)
		}
	})
}

func FuzzReadHarwellBoeing(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteHarwellBoeing(&buf, Identity(3), "seed", "SEED"); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("title                                                                   KEY00001\n" +
		"             3             1             1             1             0\n" +
		"RUA                        2             2             1             0\n" +
		"(10I8)          (10I8)          (4E20.12)           (4E20.12)          \n" +
		"       1       2       2\n       1\n  0.1E+01\n")
	f.Add("")
	f.Add("x\n")
	f.Add("t K\n1 1 1 1\nCUA 2 2 1\n(10I8) (10I8) (4E20.12)\n")
	f.Fuzz(func(t *testing.T, in string) {
		a, err := ReadHarwellBoeing(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := a.Check(); err != nil {
			t.Fatalf("parsed HB matrix violates invariants: %v", err)
		}
	})
}
