package sparse

import "fmt"

// IdentityPerm returns the identity permutation of length n.
func IdentityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// CheckPerm verifies that p is a permutation of {0, …, n-1}.
func CheckPerm(p []int, n int) error {
	if len(p) != n {
		return fmt.Errorf("sparse: permutation length %d, want %d", len(p), n)
	}
	seen := make([]bool, n)
	for i, v := range p {
		if v < 0 || v >= n {
			return fmt.Errorf("sparse: permutation entry p[%d]=%d out of range", i, v)
		}
		if seen[v] {
			return fmt.Errorf("sparse: permutation value %d repeated", v)
		}
		seen[v] = true
	}
	return nil
}

// InversePerm returns q with q[p[i]] = i.
func InversePerm(p []int) []int {
	q := make([]int, len(p))
	for i, v := range p {
		q[v] = i
	}
	return q
}

// ComposePerm returns the permutation r = q∘p, i.e. r[i] = q[p[i]]
// (apply p first, then q).
func ComposePerm(q, p []int) []int {
	r := make([]int, len(p))
	for i, v := range p {
		r[i] = q[v]
	}
	return r
}

// PermuteVec returns y with y[p[i]] = x[i] (p maps old index to new index).
func PermuteVec(p []int, x []float64) []float64 {
	y := make([]float64, len(x))
	for i, v := range p {
		y[v] = x[i]
	}
	return y
}

// UnpermuteVec returns y with y[i] = x[p[i]], the inverse of PermuteVec.
func UnpermuteVec(p []int, x []float64) []float64 {
	y := make([]float64, len(x))
	for i, v := range p {
		y[i] = x[v]
	}
	return y
}
