package sparse

import (
	"math/rand"
	"testing"
)

// cscOf builds a CSC from (i, j, v) triples for terse test fixtures.
func cscOf(rows, cols int, entries [][3]float64) *CSC {
	t := NewTriplet(rows, cols)
	for _, e := range entries {
		t.Append(int(e[0]), int(e[1]), e[2])
	}
	return t.ToCSC()
}

func TestPatternHashValueIndependent(t *testing.T) {
	a := cscOf(3, 3, [][3]float64{{0, 0, 1}, {1, 0, -2}, {1, 1, 3}, {2, 2, 4}, {0, 2, 5}})
	b := a.Clone()
	for k := range b.Val {
		b.Val[k] = float64(100 + k)
	}
	if PatternHash(a) != PatternHash(b) {
		t.Fatal("PatternHash changed when only values changed")
	}
	if ValueHash(a) == ValueHash(b) {
		t.Fatal("ValueHash collided across different values")
	}
	if ValueHash(a) != ValueHash(a.Clone()) {
		t.Fatal("ValueHash not deterministic on a clone")
	}
}

// TestPatternHashCollisions feeds a family of deliberately confusable
// patterns — same nnz redistributed, transposes, diagonal shifts, a
// column-boundary move, dimension-only changes — and requires all
// fingerprints to be pairwise distinct.
func TestPatternHashCollisions(t *testing.T) {
	mats := map[string]*CSC{
		"diag3":      Identity(3),
		"diag4":      Identity(4),
		"lower":      cscOf(3, 3, [][3]float64{{0, 0, 1}, {1, 0, 1}, {2, 1, 1}}),
		"upper":      cscOf(3, 3, [][3]float64{{0, 0, 1}, {0, 1, 1}, {1, 2, 1}}), // transpose of lower
		"firstcol":   cscOf(3, 3, [][3]float64{{0, 0, 1}, {1, 0, 1}, {2, 0, 1}}),
		"lastcol":    cscOf(3, 3, [][3]float64{{0, 2, 1}, {1, 2, 1}, {2, 2, 1}}),
		"boundary-a": cscOf(2, 2, [][3]float64{{0, 0, 1}, {1, 0, 1}}),
		"boundary-b": cscOf(2, 2, [][3]float64{{0, 0, 1}, {0, 1, 1}}),
		"boundary-c": cscOf(2, 2, [][3]float64{{1, 0, 1}, {0, 1, 1}}),
		"tall":       cscOf(4, 2, [][3]float64{{0, 0, 1}, {3, 1, 1}}),
		"wide":       cscOf(2, 4, [][3]float64{{0, 0, 1}, {1, 3, 1}}),
		"empty2":     cscOf(2, 2, nil),
		"empty3":     cscOf(3, 3, nil),
	}
	seen := map[uint64]string{}
	for _, name := range []string{
		"diag3", "diag4", "lower", "upper", "firstcol", "lastcol",
		"boundary-a", "boundary-b", "boundary-c", "tall", "wide", "empty2", "empty3",
	} {
		h := PatternHash(mats[name])
		if prev, dup := seen[h]; dup {
			t.Fatalf("PatternHash collision: %q and %q both hash to %#x", prev, name, h)
		}
		seen[h] = name
	}
}

func TestPatternHashDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := NewTriplet(40, 40)
	for k := 0; k < 300; k++ {
		tr.Append(rng.Intn(40), rng.Intn(40), rng.NormFloat64())
	}
	a := tr.ToCSC()
	h := PatternHash(a)
	for r := 0; r < 5; r++ {
		if PatternHash(a) != h {
			t.Fatal("PatternHash not stable across calls")
		}
	}
	if PatternHash(a.Clone()) != h {
		t.Fatal("PatternHash differs on a deep clone")
	}
}

// FuzzPatternHash drives randomly-shaped triplet matrices through the
// fingerprint and checks the contract: value-independent, clone-stable,
// and sensitive to any single structural mutation.
func FuzzPatternHash(f *testing.F) {
	f.Add(int64(1), 5, 12)
	f.Add(int64(2), 1, 0)
	f.Add(int64(3), 17, 60)
	f.Add(int64(99), 8, 8)
	f.Fuzz(func(t *testing.T, seed int64, n, nnz int) {
		if n < 1 || n > 64 || nnz < 0 || nnz > 512 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		tr := NewTriplet(n, n)
		for k := 0; k < nnz; k++ {
			tr.Append(rng.Intn(n), rng.Intn(n), 1+rng.Float64())
		}
		a := tr.ToCSC()
		h := PatternHash(a)

		// Value-independent: rewrite every value, hash must not move.
		b := a.Clone()
		for k := range b.Val {
			b.Val[k] = rng.NormFloat64()
		}
		if PatternHash(b) != h {
			t.Fatalf("hash depends on values: %#x vs %#x", PatternHash(b), h)
		}

		// Structural sensitivity: move one entry to a row not already
		// present in its column; the fingerprint must change.
		if a.Nnz() > 0 {
			c := a.Clone()
			j := 0
			for c.ColPtr[j+1] == c.ColPtr[j] {
				j++
			}
			k := c.ColPtr[j]
			present := make(map[int]bool)
			for q := c.ColPtr[j]; q < c.ColPtr[j+1]; q++ {
				present[c.RowInd[q]] = true
			}
			moved := false
			for i := 0; i < n; i++ {
				if !present[i] {
					c.RowInd[k] = i
					moved = true
					break
				}
			}
			if moved {
				// Restore sortedness within the column.
				insertionSortInts(c.RowInd[c.ColPtr[j]:c.ColPtr[j+1]])
				if PatternHash(c) == h {
					t.Fatal("hash unchanged after moving a structural entry")
				}
			}
		}
	})
}
