package sparse

import (
	"fmt"
	"math"
)

// MatVec computes y = A*x. y must have length a.Rows and x length a.Cols.
func (a *CSC) MatVec(y, x []float64) {
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < a.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			y[a.RowInd[k]] += a.Val[k] * xj
		}
	}
}

// MatTVec computes y = Aᵀ*x. y must have length a.Cols and x length a.Rows.
func (a *CSC) MatTVec(y, x []float64) {
	for j := 0; j < a.Cols; j++ {
		s := 0.0
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			s += a.Val[k] * x[a.RowInd[k]]
		}
		y[j] = s
	}
}

// AbsMatVec computes y = |A|*x for nonnegative x, used by the componentwise
// backward-error and forward-error bounds of iterative refinement.
func (a *CSC) AbsMatVec(y, x []float64) {
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < a.Cols; j++ {
		xj := x[j]
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			y[a.RowInd[k]] += math.Abs(a.Val[k]) * xj
		}
	}
}

// Residual computes r = b - A*x.
func (a *CSC) Residual(r, b, x []float64) {
	a.MatVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
}

// Norm1 returns the matrix 1-norm (maximum absolute column sum).
func (a *CSC) Norm1() float64 {
	best := 0.0
	for j := 0; j < a.Cols; j++ {
		s := 0.0
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			s += math.Abs(a.Val[k])
		}
		if s > best {
			best = s
		}
	}
	return best
}

// NormInf returns the matrix infinity-norm (maximum absolute row sum).
func (a *CSC) NormInf() float64 {
	rowSum := make([]float64, a.Rows)
	for k, i := range a.RowInd {
		rowSum[i] += math.Abs(a.Val[k])
	}
	best := 0.0
	for _, s := range rowSum {
		if s > best {
			best = s
		}
	}
	return best
}

// MaxAbs returns the largest entry magnitude.
func (a *CSC) MaxAbs() float64 {
	best := 0.0
	for _, v := range a.Val {
		if av := math.Abs(v); av > best {
			best = av
		}
	}
	return best
}

// Diagonal returns the main diagonal as a dense vector (zeros where no
// entry is stored).
func (a *CSC) Diagonal() []float64 {
	n := a.Cols
	if a.Rows < n {
		n = a.Rows
	}
	d := make([]float64, n)
	for j := 0; j < n; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if a.RowInd[k] == j {
				d[j] = a.Val[k]
				break
			}
		}
	}
	return d
}

// ZeroDiagonals counts the structurally or numerically zero entries on the
// main diagonal.
func (a *CSC) ZeroDiagonals() int {
	count := 0
	for _, v := range a.Diagonal() {
		if v == 0 {
			count++
		}
	}
	return count
}

// ScaleRowsCols overwrites A with Dr*A*Dc for diagonal scalings given as
// dense vectors. Either may be nil, meaning identity.
func (a *CSC) ScaleRowsCols(dr, dc []float64) {
	for j := 0; j < a.Cols; j++ {
		cj := 1.0
		if dc != nil {
			cj = dc[j]
		}
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			ri := 1.0
			if dr != nil {
				ri = dr[a.RowInd[k]]
			}
			a.Val[k] *= ri * cj
		}
	}
}

// PermuteRows returns Pr*A where row i of A becomes row perm[i] of the
// result — i.e. perm maps old row index to new row index.
func (a *CSC) PermuteRows(perm []int) *CSC {
	if err := CheckPerm(perm, a.Rows); err != nil {
		panic(fmt.Sprintf("sparse: PermuteRows: %v", err))
	}
	b := &CSC{Rows: a.Rows, Cols: a.Cols, ColPtr: append([]int(nil), a.ColPtr...)}
	b.RowInd = make([]int, a.Nnz())
	b.Val = make([]float64, a.Nnz())
	for j := 0; j < a.Cols; j++ {
		lo, hi := a.ColPtr[j], a.ColPtr[j+1]
		for k := lo; k < hi; k++ {
			b.RowInd[k] = perm[a.RowInd[k]]
			b.Val[k] = a.Val[k]
		}
		seg := colSorter{b.RowInd[lo:hi], b.Val[lo:hi]}
		sortSeg(seg)
	}
	return b
}

// PermuteCols returns A*Pcᵀ where column j of A becomes column perm[j] of
// the result — i.e. perm maps old column index to new column index.
func (a *CSC) PermuteCols(perm []int) *CSC {
	if err := CheckPerm(perm, a.Cols); err != nil {
		panic(fmt.Sprintf("sparse: PermuteCols: %v", err))
	}
	b := &CSC{Rows: a.Rows, Cols: a.Cols, ColPtr: make([]int, a.Cols+1)}
	b.RowInd = make([]int, a.Nnz())
	b.Val = make([]float64, a.Nnz())
	inv := InversePerm(perm)
	p := 0
	for jn := 0; jn < a.Cols; jn++ {
		jo := inv[jn] // old column landing at new position jn
		for k := a.ColPtr[jo]; k < a.ColPtr[jo+1]; k++ {
			b.RowInd[p] = a.RowInd[k]
			b.Val[p] = a.Val[k]
			p++
		}
		b.ColPtr[jn+1] = p
	}
	return b
}

// PermuteSym returns P*A*Pᵀ for a square matrix, applying perm to both rows
// and columns (old index -> new index). This is the operation GESP uses to
// apply the fill-reducing ordering while keeping the matched diagonal.
func (a *CSC) PermuteSym(perm []int) *CSC {
	if a.Rows != a.Cols {
		panic("sparse: PermuteSym on non-square matrix")
	}
	return a.PermuteRows(perm).PermuteCols(perm)
}

func sortSeg(s colSorter) {
	// Insertion sort: permuted columns are mostly short; avoids the
	// interface-dispatch overhead of sort.Sort dominating profiles.
	for i := 1; i < len(s.ri); i++ {
		r, v := s.ri[i], s.vv[i]
		j := i - 1
		for j >= 0 && s.ri[j] > r {
			s.ri[j+1] = s.ri[j]
			s.vv[j+1] = s.vv[j]
			j--
		}
		s.ri[j+1] = r
		s.vv[j+1] = v
	}
}

// VecNormInf returns max_i |x[i]|.
func VecNormInf(x []float64) float64 {
	best := 0.0
	for _, v := range x {
		if av := math.Abs(v); av > best {
			best = av
		}
	}
	return best
}

// VecNorm1 returns sum_i |x[i]|.
func VecNorm1(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// RelErrInf returns ||x - y||_inf / ||y||_inf, the error metric of the
// paper's Figure 4 (with y the true solution).
func RelErrInf(x, y []float64) float64 {
	num, den := 0.0, 0.0
	for i := range x {
		if d := math.Abs(x[i] - y[i]); d > num {
			num = d
		}
		if a := math.Abs(y[i]); a > den {
			den = a
		}
	}
	if den == 0 {
		return num
	}
	return num / den
}
