package sparse

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCSC builds a random n-by-n matrix with the given expected density
// and a full diagonal, for property tests.
func randomCSC(rng *rand.Rand, n int, density float64) *CSC {
	t := NewTriplet(n, n)
	for j := 0; j < n; j++ {
		t.Append(j, j, 1+rng.Float64())
		for i := 0; i < n; i++ {
			if i != j && rng.Float64() < density {
				t.Append(i, j, rng.NormFloat64())
			}
		}
	}
	return t.ToCSC()
}

func TestTripletToCSC(t *testing.T) {
	tr := NewTriplet(3, 3)
	tr.Append(2, 0, 1)
	tr.Append(0, 0, 2)
	tr.Append(0, 0, 3) // duplicate: summed
	tr.Append(1, 2, 4)
	a := tr.ToCSC()
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	if got := a.At(0, 0); got != 5 {
		t.Errorf("At(0,0) = %g, want 5 (duplicates summed)", got)
	}
	if got := a.At(2, 0); got != 1 {
		t.Errorf("At(2,0) = %g, want 1", got)
	}
	if got := a.At(1, 2); got != 4 {
		t.Errorf("At(1,2) = %g, want 4", got)
	}
	if got := a.At(1, 1); got != 0 {
		t.Errorf("At(1,1) = %g, want 0 for missing entry", got)
	}
	if a.Nnz() != 3 {
		t.Errorf("Nnz = %d, want 3", a.Nnz())
	}
}

func TestTripletAppendPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Append out of range did not panic")
		}
	}()
	NewTriplet(2, 2).Append(2, 0, 1)
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomCSC(rng, 25, 0.15)
	att := a.Transpose().Transpose()
	if err := att.Check(); err != nil {
		t.Fatal(err)
	}
	da, db := a.Dense(), att.Dense()
	for i := range da {
		for j := range da[i] {
			if da[i][j] != db[i][j] {
				t.Fatalf("(Aᵀ)ᵀ differs from A at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomCSC(rng, 17, 0.2)
	at := a.Transpose()
	if err := at.Check(); err != nil {
		t.Fatal(err)
	}
	d := a.Dense()
	dt := at.Dense()
	for i := 0; i < 17; i++ {
		for j := 0; j < 17; j++ {
			if d[i][j] != dt[j][i] {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomCSC(rng, 30, 0.1)
	x := make([]float64, 30)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 30)
	a.MatVec(y, x)
	d := a.Dense()
	for i := range y {
		want := 0.0
		for j := range x {
			want += d[i][j] * x[j]
		}
		if math.Abs(y[i]-want) > 1e-12*math.Abs(want)+1e-12 {
			t.Fatalf("MatVec row %d = %g, want %g", i, y[i], want)
		}
	}
}

func TestMatTVecIsTransposeMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomCSC(rng, 20, 0.2)
	x := make([]float64, 20)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, 20)
	y2 := make([]float64, 20)
	a.MatTVec(y1, x)
	a.Transpose().MatVec(y2, x)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("MatTVec differs from Transpose().MatVec at %d: %g vs %g", i, y1[i], y2[i])
		}
	}
}

func TestNorms(t *testing.T) {
	a := FromDense([][]float64{
		{1, -2, 0},
		{0, 3, -4},
		{5, 0, 0},
	})
	if got := a.Norm1(); got != 6 {
		t.Errorf("Norm1 = %g, want 6", got)
	}
	if got := a.NormInf(); got != 7 {
		t.Errorf("NormInf = %g, want 7", got)
	}
	if got := a.MaxAbs(); got != 5 {
		t.Errorf("MaxAbs = %g, want 5", got)
	}
}

func TestDiagonalAndZeroDiagonals(t *testing.T) {
	a := FromDense([][]float64{
		{2, 1, 0},
		{1, 0, 1},
		{0, 1, 3},
	})
	d := a.Diagonal()
	if d[0] != 2 || d[1] != 0 || d[2] != 3 {
		t.Errorf("Diagonal = %v, want [2 0 3]", d)
	}
	if got := a.ZeroDiagonals(); got != 1 {
		t.Errorf("ZeroDiagonals = %d, want 1", got)
	}
}

func TestScaleRowsCols(t *testing.T) {
	a := FromDense([][]float64{{2, 4}, {6, 8}})
	a.ScaleRowsCols([]float64{0.5, 2}, []float64{1, 0.25})
	want := [][]float64{{1, 0.5}, {12, 4}}
	got := a.Dense()
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("scaled (%d,%d) = %g, want %g", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestPermuteRowsColsSym(t *testing.T) {
	a := FromDense([][]float64{
		{1, 2, 0},
		{0, 3, 4},
		{5, 0, 6},
	})
	p := []int{2, 0, 1} // old index -> new index
	pr := a.PermuteRows(p)
	if err := pr.Check(); err != nil {
		t.Fatal(err)
	}
	d := pr.Dense()
	orig := a.Dense()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if d[p[i]][j] != orig[i][j] {
				t.Fatalf("PermuteRows: entry (%d,%d) misplaced", i, j)
			}
		}
	}
	pc := a.PermuteCols(p)
	if err := pc.Check(); err != nil {
		t.Fatal(err)
	}
	d = pc.Dense()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if d[i][p[j]] != orig[i][j] {
				t.Fatalf("PermuteCols: entry (%d,%d) misplaced", i, j)
			}
		}
	}
	ps := a.PermuteSym(p)
	d = ps.Dense()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if d[p[i]][p[j]] != orig[i][j] {
				t.Fatalf("PermuteSym: entry (%d,%d) misplaced", i, j)
			}
		}
	}
}

func TestPermRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		a := randomCSC(rng, n, 0.2)
		p := rng.Perm(n)
		back := a.PermuteSym(p).PermuteSym(InversePerm(p))
		da, db := a.Dense(), back.Dense()
		for i := range da {
			for j := range da[i] {
				if da[i][j] != db[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPermHelpers(t *testing.T) {
	p := []int{2, 0, 3, 1}
	if err := CheckPerm(p, 4); err != nil {
		t.Fatal(err)
	}
	if err := CheckPerm([]int{0, 0, 1, 2}, 4); err == nil {
		t.Error("CheckPerm accepted repeated value")
	}
	if err := CheckPerm([]int{0, 1}, 4); err == nil {
		t.Error("CheckPerm accepted wrong length")
	}
	inv := InversePerm(p)
	for i := range p {
		if inv[p[i]] != i {
			t.Fatalf("InversePerm broken at %d", i)
		}
	}
	id := ComposePerm(inv, p)
	for i, v := range id {
		if v != i {
			t.Fatalf("ComposePerm(inv,p) not identity at %d", i)
		}
	}
	x := []float64{10, 20, 30, 40}
	y := PermuteVec(p, x)
	for i := range x {
		if y[p[i]] != x[i] {
			t.Fatalf("PermuteVec misplaced index %d", i)
		}
	}
	z := UnpermuteVec(p, y)
	for i := range x {
		if z[i] != x[i] {
			t.Fatalf("UnpermuteVec not inverse of PermuteVec at %d", i)
		}
	}
}

func TestPermuteVecUnpermuteVecProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		p := rng.Perm(n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
		}
		z := UnpermuteVec(p, PermuteVec(p, x))
		for i := range x {
			if z[i] != x[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSymmetryOf(t *testing.T) {
	sym := FromDense([][]float64{
		{1, 2, 0},
		{2, 1, 3},
		{0, 3, 1},
	})
	s := SymmetryOf(sym)
	if s.Str != 1 || s.Num != 1 {
		t.Errorf("symmetric matrix: got %+v, want Str=Num=1", s)
	}
	// One-directional entry: (0,1) has no partner; values differ at (1,2).
	asym := FromDense([][]float64{
		{1, 5, 0},
		{0, 1, 3},
		{0, 4, 1},
	})
	s = SymmetryOf(asym)
	if s.Str != 2.0/3.0 {
		t.Errorf("StrSym = %g, want 2/3", s.Str)
	}
	if s.Num != 0 {
		t.Errorf("NumSym = %g, want 0", s.Num)
	}
}

func TestPatternAPlusAT(t *testing.T) {
	a := FromDense([][]float64{
		{1, 2, 0},
		{0, 1, 0},
		{4, 0, 1},
	})
	p := PatternAPlusAT(a)
	adj := func(j int) []int { return p.Ind[p.Ptr[j]:p.Ptr[j+1]] }
	want := [][]int{{1, 2}, {0}, {0}}
	for j := range want {
		got := adj(j)
		if len(got) != len(want[j]) {
			t.Fatalf("vertex %d: adjacency %v, want %v", j, got, want[j])
		}
		for i := range got {
			if got[i] != want[j][i] {
				t.Fatalf("vertex %d: adjacency %v, want %v", j, got, want[j])
			}
		}
	}
}

func TestPatternATA(t *testing.T) {
	// Columns 0 and 2 share row 1; columns 0 and 1 share row 0.
	a := FromDense([][]float64{
		{1, 1, 0},
		{1, 0, 1},
		{0, 0, 1},
	})
	p := PatternATA(a)
	adj := func(j int) []int { return p.Ind[p.Ptr[j]:p.Ptr[j+1]] }
	want := [][]int{{1, 2}, {0}, {0}}
	for j := range want {
		got := adj(j)
		if len(got) != len(want[j]) {
			t.Fatalf("vertex %d: adjacency %v, want %v", j, got, want[j])
		}
		for i := range got {
			if got[i] != want[j][i] {
				t.Fatalf("vertex %d: adjacency %v, want %v", j, got, want[j])
			}
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomCSC(rng, 12, 0.25)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows != a.Rows || b.Cols != a.Cols || b.Nnz() != a.Nnz() {
		t.Fatalf("round trip changed shape: %dx%d nnz %d", b.Rows, b.Cols, b.Nnz())
	}
	da, db := a.Dense(), b.Dense()
	for i := range da {
		for j := range da[i] {
			if da[i][j] != db[i][j] {
				t.Fatalf("round trip changed value at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatrixMarketSymmetricExpansion(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 4
1 1 2.0
2 1 -1.0
3 2 5.0
3 3 1.0
`
	a, err := ReadMatrixMarket(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != -1 || a.At(1, 0) != -1 {
		t.Error("symmetric entry not mirrored")
	}
	if a.At(1, 2) != 5 || a.At(2, 1) != 5 {
		t.Error("symmetric entry not mirrored")
	}
	if a.Nnz() != 6 {
		t.Errorf("expanded nnz = %d, want 6", a.Nnz())
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n",
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(bytes.NewBufferString(in)); err == nil {
			t.Errorf("case %d: expected error, got none", i)
		}
	}
}

func TestResidualAndRelErr(t *testing.T) {
	a := FromDense([][]float64{{2, 0}, {0, 4}})
	x := []float64{1, 1}
	b := []float64{2, 4}
	r := make([]float64, 2)
	a.Residual(r, b, x)
	if r[0] != 0 || r[1] != 0 {
		t.Errorf("residual of exact solution = %v, want zeros", r)
	}
	if got := RelErrInf([]float64{1.1, 1}, []float64{1, 1}); math.Abs(got-0.1) > 1e-15 {
		t.Errorf("RelErrInf = %g, want 0.1", got)
	}
}

func TestAbsMatVec(t *testing.T) {
	a := FromDense([][]float64{{-1, 2}, {3, -4}})
	y := make([]float64, 2)
	a.AbsMatVec(y, []float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("AbsMatVec = %v, want [3 7]", y)
	}
}

func TestIdentityAndClone(t *testing.T) {
	a := Identity(4)
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	b.Val[0] = 9
	if a.Val[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	a := Identity(3)
	a.RowInd[1] = 0 // duplicate row 0 in column 1? no: column 1 has row 0 < fine but unsorted vs... it's the only entry
	// Make column 1 contain a row index equal to column 0's: still legal.
	// Corrupt with out-of-range index instead.
	a.RowInd[2] = 5
	if err := a.Check(); err == nil {
		t.Error("Check accepted out-of-range row index")
	}
	b := Identity(3)
	b.ColPtr[1] = 3 // non-monotone
	if err := b.Check(); err == nil {
		t.Error("Check accepted non-monotone ColPtr")
	}
}
