//go:build gespcheck

package sparse_test

import (
	"strings"
	"testing"

	"gesp/internal/sparse"
)

// mustPanicWith runs f and asserts it panics with a gespcheck message
// containing substr.
func mustPanicWith(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("checked build did not catch the corruption (want panic containing %q)", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.HasPrefix(msg, "gespcheck:") || !strings.Contains(msg, substr) {
			t.Fatalf("panic = %v, want gespcheck message containing %q", r, substr)
		}
	}()
	f()
}

func arrowMatrix(n int) *sparse.CSC {
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		d[i][i] = 4
	}
	for i := 0; i < n; i++ {
		d[i][n-1] = 1
		d[n-1][i] = 1
	}
	return sparse.FromDense(d)
}

func TestCheckedCatchesUnsortedColumn(t *testing.T) {
	a := arrowMatrix(6)
	// Swap two row indices within the last (dense) column: the column
	// is no longer sorted ascending.
	lo := a.ColPtr[a.Cols-1]
	a.RowInd[lo], a.RowInd[lo+1] = a.RowInd[lo+1], a.RowInd[lo]
	mustPanicWith(t, "unsorted", func() { a.Transpose() })
}

func TestCheckedCatchesBrokenColPtr(t *testing.T) {
	a := arrowMatrix(6)
	a.ColPtr[3] = a.ColPtr[2] - 1 // non-monotone pointers
	mustPanicWith(t, "not monotone", func() { a.Transpose() })
}

func TestCheckedCatchesOutOfRangeRow(t *testing.T) {
	a := arrowMatrix(6)
	a.RowInd[0] = a.Rows + 3
	mustPanicWith(t, "out of range", func() { a.Transpose() })
}

func TestCheckedAcceptsValidMatrix(t *testing.T) {
	a := arrowMatrix(6)
	if got := a.Transpose().Transpose(); got.Nnz() != a.Nnz() {
		t.Fatalf("round-trip changed nnz: %d != %d", got.Nnz(), a.Nnz())
	}
}
