// Package sparse provides the sparse-matrix kernel used throughout the GESP
// solver: compressed sparse column (CSC) storage, a triplet builder,
// transposition, permutation, pattern algebra (A+Aᵀ, AᵀA), matrix-vector
// products, norms, symmetry statistics, and Matrix-Market-style I/O.
//
// Conventions: matrices are square unless stated otherwise, indices are
// 0-based, and row indices within each CSC column are sorted ascending with
// no duplicates.
package sparse

import (
	"errors"
	"fmt"
	"sort"

	"gesp/internal/check"
)

// CSC is a sparse matrix in compressed sparse column format.
//
// Column j occupies RowInd[ColPtr[j]:ColPtr[j+1]] and the parallel slice of
// Val. Row indices within a column are sorted ascending and unique.
type CSC struct {
	Rows, Cols int
	ColPtr     []int // length Cols+1
	RowInd     []int // length Nnz
	Val        []float64
}

// Nnz reports the number of stored entries (including explicit zeros).
func (a *CSC) Nnz() int { return a.ColPtr[a.Cols] }

// Clone returns a deep copy of a.
func (a *CSC) Clone() *CSC {
	b := &CSC{
		Rows:   a.Rows,
		Cols:   a.Cols,
		ColPtr: append([]int(nil), a.ColPtr...),
		RowInd: append([]int(nil), a.RowInd...),
		Val:    append([]float64(nil), a.Val...),
	}
	return b
}

// At returns the value at (i, j), or 0 if no entry is stored there.
// It is O(log nnz(col j)) and intended for tests and small matrices.
func (a *CSC) At(i, j int) float64 {
	lo, hi := a.ColPtr[j], a.ColPtr[j+1]
	k := lo + sort.SearchInts(a.RowInd[lo:hi], i)
	if k < hi && a.RowInd[k] == i {
		return a.Val[k]
	}
	return 0
}

// Check validates the structural invariants of the CSC format.
func (a *CSC) Check() error {
	if a.Rows < 0 || a.Cols < 0 {
		return fmt.Errorf("sparse: negative dimension %dx%d", a.Rows, a.Cols)
	}
	if len(a.ColPtr) != a.Cols+1 {
		return fmt.Errorf("sparse: ColPtr length %d, want %d", len(a.ColPtr), a.Cols+1)
	}
	if a.ColPtr[0] != 0 {
		return errors.New("sparse: ColPtr[0] != 0")
	}
	for j := 0; j < a.Cols; j++ {
		if a.ColPtr[j] > a.ColPtr[j+1] {
			return fmt.Errorf("sparse: ColPtr not monotone at column %d", j)
		}
		prev := -1
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			i := a.RowInd[k]
			if i < 0 || i >= a.Rows {
				return fmt.Errorf("sparse: row index %d out of range in column %d", i, j)
			}
			if i <= prev {
				return fmt.Errorf("sparse: unsorted or duplicate row index %d in column %d", i, j)
			}
			prev = i
		}
	}
	if len(a.RowInd) != a.Nnz() || len(a.Val) != a.Nnz() {
		return fmt.Errorf("sparse: RowInd/Val length %d/%d, want %d", len(a.RowInd), len(a.Val), a.Nnz())
	}
	return nil
}

// Triplet accumulates (row, col, value) entries for conversion into CSC.
// Duplicate coordinates are summed during conversion.
type Triplet struct {
	Rows, Cols int
	rows, cols []int
	vals       []float64
}

// NewTriplet returns an empty triplet builder for an r-by-c matrix.
func NewTriplet(r, c int) *Triplet {
	return &Triplet{Rows: r, Cols: c}
}

// Append adds entry (i, j) = v. It panics on out-of-range coordinates,
// which are programming errors in generators rather than data errors.
func (t *Triplet) Append(i, j int, v float64) {
	if i < 0 || i >= t.Rows || j < 0 || j >= t.Cols {
		panic(fmt.Sprintf("sparse: triplet entry (%d,%d) out of range %dx%d", i, j, t.Rows, t.Cols))
	}
	t.rows = append(t.rows, i)
	t.cols = append(t.cols, j)
	t.vals = append(t.vals, v)
}

// Len reports the number of accumulated entries (duplicates included).
func (t *Triplet) Len() int { return len(t.vals) }

// ToCSC converts the accumulated triplets to CSC form, summing duplicates.
// Entries that sum exactly to zero are kept (explicit zeros matter for
// static symbolic analysis).
func (t *Triplet) ToCSC() *CSC {
	nz := len(t.vals)
	colCount := make([]int, t.Cols+1)
	for _, j := range t.cols {
		colCount[j+1]++
	}
	for j := 0; j < t.Cols; j++ {
		colCount[j+1] += colCount[j]
	}
	// Bucket by column.
	ri := make([]int, nz)
	vv := make([]float64, nz)
	next := append([]int(nil), colCount...)
	for k := 0; k < nz; k++ {
		p := next[t.cols[k]]
		next[t.cols[k]]++
		ri[p] = t.rows[k]
		vv[p] = t.vals[k]
	}
	// Sort each column by row and merge duplicates.
	a := &CSC{Rows: t.Rows, Cols: t.Cols, ColPtr: make([]int, t.Cols+1)}
	a.RowInd = make([]int, 0, nz)
	a.Val = make([]float64, 0, nz)
	for j := 0; j < t.Cols; j++ {
		lo, hi := colCount[j], colCount[j+1]
		seg := colSorter{ri[lo:hi], vv[lo:hi]}
		sort.Sort(seg)
		for k := lo; k < hi; {
			i := ri[k]
			s := 0.0
			for k < hi && ri[k] == i {
				s += vv[k]
				k++
			}
			a.RowInd = append(a.RowInd, i)
			a.Val = append(a.Val, s)
		}
		a.ColPtr[j+1] = len(a.RowInd)
	}
	if check.Enabled {
		check.Must(a.Check())
	}
	return a
}

type colSorter struct {
	ri []int
	vv []float64
}

func (s colSorter) Len() int           { return len(s.ri) }
func (s colSorter) Less(i, j int) bool { return s.ri[i] < s.ri[j] }
func (s colSorter) Swap(i, j int) {
	s.ri[i], s.ri[j] = s.ri[j], s.ri[i]
	s.vv[i], s.vv[j] = s.vv[j], s.vv[i]
}

// Transpose returns Aᵀ in CSC form (equivalently, A in CSR form).
func (a *CSC) Transpose() *CSC {
	if check.Enabled {
		check.Must(a.Check())
	}
	t := &CSC{Rows: a.Cols, Cols: a.Rows, ColPtr: make([]int, a.Rows+1)}
	nz := a.Nnz()
	t.RowInd = make([]int, nz)
	t.Val = make([]float64, nz)
	for k := 0; k < nz; k++ {
		t.ColPtr[a.RowInd[k]+1]++
	}
	for i := 0; i < a.Rows; i++ {
		t.ColPtr[i+1] += t.ColPtr[i]
	}
	next := append([]int(nil), t.ColPtr...)
	for j := 0; j < a.Cols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			i := a.RowInd[k]
			p := next[i]
			next[i]++
			t.RowInd[p] = j
			t.Val[p] = a.Val[k]
		}
	}
	return t // columns are produced in ascending row order, so sorted
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *CSC {
	a := &CSC{Rows: n, Cols: n, ColPtr: make([]int, n+1), RowInd: make([]int, n), Val: make([]float64, n)}
	for j := 0; j < n; j++ {
		a.ColPtr[j+1] = j + 1
		a.RowInd[j] = j
		a.Val[j] = 1
	}
	return a
}

// Dense expands a into a dense row-major matrix; for tests on small inputs.
func (a *CSC) Dense() [][]float64 {
	d := make([][]float64, a.Rows)
	for i := range d {
		d[i] = make([]float64, a.Cols)
	}
	for j := 0; j < a.Cols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			d[a.RowInd[k]][j] = a.Val[k]
		}
	}
	return d
}

// FromDense builds a CSC matrix from a dense row-major matrix, dropping
// exact zeros.
func FromDense(d [][]float64) *CSC {
	r := len(d)
	c := 0
	if r > 0 {
		c = len(d[0])
	}
	t := NewTriplet(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if d[i][j] != 0 {
				t.Append(i, j, d[i][j])
			}
		}
	}
	return t.ToCSC()
}
