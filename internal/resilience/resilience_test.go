package resilience

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"gesp/internal/faultsim"
	"gesp/internal/lu"
	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

// factor runs the static-pivot pipeline the ladder sits behind.
func factor(t *testing.T, a *sparse.CSC) *lu.Factors {
	t.Helper()
	sym, err := symbolic.Factorize(a, symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := lu.Factorize(a, sym, lu.Options{ReplaceTinyPivot: true})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func rhsFor(a *sparse.CSC) (x, b []float64) {
	n := a.Rows
	x = make([]float64, n)
	for i := range x {
		x[i] = 1 + float64(i%5)/7
	}
	b = make([]float64, n)
	a.MatVec(b, x)
	return x, b
}

// Rung 0: a healthy system stays on the static rung.
func TestRung0HappyPath(t *testing.T) {
	a := faultsim.New(11).WellConditioned(60, 0.1)
	f := factor(t, a)
	l := NewLadder(a, f, nil, Policy{})
	_, b := rhsFor(a)
	x := make([]float64, a.Rows)
	tr, err := l.Solve(context.Background(), x, b)
	if err != nil {
		t.Fatalf("healthy solve failed: %v (trace %s)", err, tr)
	}
	if !tr.Converged || tr.FinalRung != RungStatic {
		t.Fatalf("healthy solve escalated: %s", tr)
	}
	if len(tr.Steps) != 1 {
		t.Fatalf("healthy solve recorded %d steps, want 1: %s", len(tr.Steps), tr)
	}
	if tr.FinalBerr > l.Tol() {
		t.Fatalf("berr %g above tolerance %g", tr.FinalBerr, l.Tol())
	}
	if tr.Escalated() || tr.FallbackCost() != 0 {
		t.Fatalf("happy path reported escalation: %s", tr)
	}
}

// The acceptance gate: rung 0 must not allocate.
func TestRung0SolveAllocatesNothing(t *testing.T) {
	a := faultsim.New(11).WellConditioned(60, 0.1)
	f := factor(t, a)
	l := NewLadder(a, f, nil, Policy{})
	_, b := rhsFor(a)
	x := make([]float64, a.Rows)
	ctx := context.Background()
	if _, err := l.Solve(ctx, x, b); err != nil { // warm up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := l.Solve(ctx, x, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("happy-path solve allocates %.1f objects per run, want 0", allocs)
	}
}

// Rung 1: factors mildly stale relative to the watched matrix. The
// refinement contraction sits in (1/2, 1): the paper's halving test on
// rung 0 gives up, patient extra-precision refinement converges.
func TestRung1ExtraPrecisionRecoversSlowContraction(t *testing.T) {
	in := faultsim.New(23)
	base := in.WellConditioned(60, 0.1)
	f := factor(t, base)
	cur := in.PerturbValues(base, 0.20)
	l := NewLadder(cur, f, nil, Policy{})
	_, b := rhsFor(cur)
	x := make([]float64, cur.Rows)
	tr, err := l.Solve(context.Background(), x, b)
	if err != nil {
		t.Fatalf("solve failed: %v (trace %s)", err, tr)
	}
	if tr.FinalRung != RungExtraPrecision {
		t.Fatalf("final rung %s, want %s: %s", tr.FinalRung, RungExtraPrecision, tr)
	}
	if got := tr.Steps[1].Trigger; got != TriggerStall && got != TriggerDiverge {
		t.Fatalf("rung 1 entered on %s, want stall/diverge: %s", got, tr)
	}
	if !tr.Converged || tr.FinalBerr > l.Tol() {
		t.Fatalf("rung 1 did not recover: %s", tr)
	}
}

// Rung 2: a near-singular leading pivot defeats the sqrt(eps)·‖A‖
// replacement — the perturbed factorization is ill-conditioned, plain
// and patient refinement both crawl at contraction ≈ 1 − γ/t, and only
// SMW recovery of the true system reaches tolerance.
func TestRung2SMWRecoversPerturbedPivots(t *testing.T) {
	a := faultsim.New(7).NearSingular(40, 1e-10)
	f := factor(t, a)
	if f.TinyPivots == 0 {
		t.Fatal("scenario did not trigger pivot replacement")
	}
	l := NewLadder(a, f, nil, Policy{})
	_, b := rhsFor(a)
	x := make([]float64, a.Rows)
	tr, err := l.Solve(context.Background(), x, b)
	if err != nil {
		t.Fatalf("solve failed: %v (trace %s)", err, tr)
	}
	if tr.FinalRung != RungSMW {
		t.Fatalf("final rung %s, want %s: %s", tr.FinalRung, RungSMW, tr)
	}
	if !tr.Converged || tr.FinalBerr > l.Tol() {
		t.Fatalf("SMW did not recover: %s", tr)
	}
	// Rungs 0 and 1 must both have genuinely tried and failed.
	if len(tr.Steps) != 3 || tr.Steps[0].Rung != RungStatic || tr.Steps[1].Rung != RungExtraPrecision {
		t.Fatalf("unexpected climb: %s", tr)
	}
}

// Rung 3: adversarial value drift under a cached pattern makes the
// stale factors diverge as a refinement solver (contraction > 1) while
// still working as a GMRES preconditioner. No pivot was modified, so
// the SMW rung is skipped.
func TestRung3GMRESWithStalePreconditioner(t *testing.T) {
	in := faultsim.New(31)
	base := in.WellConditioned(40, 0.1)
	f := factor(t, base)
	if f.TinyPivots != 0 {
		t.Fatal("base factorization unexpectedly replaced pivots")
	}
	cur := in.PerturbValues(base, 1.5)
	l := NewLadder(cur, f, nil, Policy{})
	_, b := rhsFor(cur)
	x := make([]float64, cur.Rows)
	tr, err := l.Solve(context.Background(), x, b)
	if err != nil {
		t.Fatalf("solve failed: %v (trace %s)", err, tr)
	}
	if tr.FinalRung != RungIterative {
		t.Fatalf("final rung %s, want %s: %s", tr.FinalRung, RungIterative, tr)
	}
	if !tr.Converged || tr.FinalBerr > l.Tol() {
		t.Fatalf("GMRES did not recover: %s", tr)
	}
	var smwStep *Step
	for i := range tr.Steps {
		if tr.Steps[i].Rung == RungSMW {
			smwStep = &tr.Steps[i]
		}
	}
	if smwStep == nil || !smwStep.Skipped {
		t.Fatalf("SMW rung should have been skipped (no pivot mods): %s", tr)
	}
}

// Rung 4: NaN-corrupted factors poison every rung that reuses them;
// only the partial-pivoting refactorization recovers.
func TestRung4GEPPRecoversCorruptFactors(t *testing.T) {
	in := faultsim.New(17)
	a := in.WellConditioned(50, 0.1)
	f := factor(t, a)
	in.CorruptFactors(f, 3)
	l := NewLadder(a, f, nil, Policy{})
	_, b := rhsFor(a)
	x := make([]float64, a.Rows)
	tr, err := l.Solve(context.Background(), x, b)
	if err != nil {
		t.Fatalf("solve failed: %v (trace %s)", err, tr)
	}
	if tr.FinalRung != RungGEPP {
		t.Fatalf("final rung %s, want %s: %s", tr.FinalRung, RungGEPP, tr)
	}
	if !tr.Converged || tr.FinalBerr > l.Tol() {
		t.Fatalf("GEPP did not recover: %s", tr)
	}
	if tr.Steps[0].Trigger != TriggerNone || tr.Steps[0].Rung != RungStatic {
		t.Fatalf("climb should start at the static rung: %s", tr)
	}
	// The corrupted factors must have been detected as non-finite on the
	// way up, not merely inaccurate.
	sawNonFinite := false
	for _, s := range tr.Steps {
		if s.Trigger == TriggerNonFinite {
			sawNonFinite = true
		}
	}
	if !sawNonFinite {
		t.Fatalf("no rung reported non-finite arithmetic: %s", tr)
	}
}

// VerifyFactors short-circuits the climb: a fingerprint mismatch jumps
// straight to refactorization without burning time on poisoned rungs.
func TestVerifyFactorsJumpsToGEPP(t *testing.T) {
	in := faultsim.New(17)
	a := in.WellConditioned(50, 0.1)
	f := factor(t, a)
	l := NewLadder(a, f, nil, Policy{VerifyFactors: true})
	in.CorruptFactors(f, 2) // corrupt AFTER the ladder recorded the fingerprint
	_, b := rhsFor(a)
	x := make([]float64, a.Rows)
	tr, err := l.Solve(context.Background(), x, b)
	if err != nil {
		t.Fatalf("solve failed: %v (trace %s)", err, tr)
	}
	if len(tr.Steps) != 1 || tr.Steps[0].Rung != RungGEPP {
		t.Fatalf("want a single direct GEPP step, got %s", tr)
	}
	if tr.Steps[0].Trigger != TriggerCorruptFactors {
		t.Fatalf("trigger %s, want %s", tr.Steps[0].Trigger, TriggerCorruptFactors)
	}
	if !tr.Converged {
		t.Fatalf("did not recover: %s", tr)
	}
}

// A poisoned right-hand side fails fast: no rung can launder NaN.
func TestNonFiniteRHSFailsFast(t *testing.T) {
	a := faultsim.New(3).WellConditioned(30, 0.1)
	f := factor(t, a)
	l := NewLadder(a, f, nil, Policy{})
	for _, nan := range []bool{true, false} {
		_, b := rhsFor(a)
		faultsim.New(5).PoisonRHS(b, 2, nan)
		x := make([]float64, a.Rows)
		tr, err := l.Solve(context.Background(), x, b)
		if !errors.Is(err, ErrNonFiniteRHS) {
			t.Fatalf("nan=%v: err = %v, want ErrNonFiniteRHS", nan, err)
		}
		if len(tr.Steps) != 0 {
			t.Fatalf("nan=%v: rungs ran on a poisoned RHS: %s", nan, tr)
		}
	}
}

// MaxRung caps the climb and surfaces ErrUnrecovered with the trace.
func TestMaxRungCapsTheClimb(t *testing.T) {
	a := faultsim.New(7).NearSingular(40, 1e-10)
	f := factor(t, a)
	l := NewLadder(a, f, nil, Policy{MaxRung: RungExtraPrecision})
	_, b := rhsFor(a)
	x := make([]float64, a.Rows)
	tr, err := l.Solve(context.Background(), x, b)
	if !errors.Is(err, ErrUnrecovered) {
		t.Fatalf("err = %v, want ErrUnrecovered", err)
	}
	if tr.Converged || tr.FinalRung != RungExtraPrecision {
		t.Fatalf("capped climb ended at %s converged=%v", tr.FinalRung, tr.Converged)
	}
}

// Per-rung deadlines bound each rung's work and are recorded as the
// escalation trigger.
func TestRungDeadlineTriggersEscalation(t *testing.T) {
	in := faultsim.New(23)
	base := in.WellConditioned(60, 0.1)
	f := factor(t, base)
	cur := in.PerturbValues(base, 0.20)
	l := NewLadder(cur, f, nil, Policy{MaxRung: RungExtraPrecision, RungDeadline: time.Nanosecond})
	_, b := rhsFor(cur)
	x := make([]float64, cur.Rows)
	start := time.Now()
	tr, err := l.Solve(context.Background(), x, b)
	if !errors.Is(err, ErrUnrecovered) {
		t.Fatalf("err = %v, want ErrUnrecovered", err)
	}
	for _, s := range tr.Steps[1:] {
		if s.Trigger != TriggerDeadline {
			t.Fatalf("step %s entered on %s, want deadline: %s", s.Rung, s.Trigger, tr)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadlined solve took %v", elapsed)
	}
}

// Context cancellation aborts the climb between rungs.
func TestContextCancellationAborts(t *testing.T) {
	a := faultsim.New(11).WellConditioned(30, 0.1)
	f := factor(t, a)
	l := NewLadder(a, f, nil, Policy{})
	_, b := rhsFor(a)
	x := make([]float64, a.Rows)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.Solve(ctx, x, b); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// OnTrace observes every solve, escalated or not.
func TestOnTraceObservesEverySolve(t *testing.T) {
	a := faultsim.New(11).WellConditioned(30, 0.1)
	f := factor(t, a)
	traces := 0
	var l *Ladder
	l = NewLadder(a, f, nil, Policy{OnTrace: func(e *Escalation) {
		traces++
		if e != l.LastTrace() {
			t.Error("OnTrace got a different trace than LastTrace")
		}
	}})
	_, b := rhsFor(a)
	x := make([]float64, a.Rows)
	for i := 0; i < 3; i++ {
		if _, err := l.Solve(context.Background(), x, b); err != nil {
			t.Fatal(err)
		}
	}
	if traces != 3 {
		t.Fatalf("OnTrace fired %d times, want 3", traces)
	}
}

// Refine escalates a caller-provided iterate the same way Solve does.
func TestRefineEntryPoint(t *testing.T) {
	a := faultsim.New(11).WellConditioned(30, 0.1)
	f := factor(t, a)
	l := NewLadder(a, f, nil, Policy{})
	want, b := rhsFor(a)
	x := append([]float64(nil), b...)
	f.Solve(x) // the "batched sweep" the caller already did
	tr, err := l.Refine(context.Background(), x, b)
	if err != nil || !tr.Converged {
		t.Fatalf("refine failed: %v (%s)", err, tr)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}
