// Package resilience turns GESP's "no pivoting + iterative refinement"
// bet into a bounded-risk contract. The paper's own safety argument is
// an escalation story: static pivoting is safe *because* the
// componentwise backward error is watched and, when refinement cannot
// repair the damage, progressively stronger (and more expensive)
// recovery mechanisms exist — recover the true system from the recorded
// pivot perturbations (Sherman–Morrison–Woodbury), use the stale LU as
// a preconditioner for an iterative method, or give up on static
// pivoting and refactor with partial pivoting. This package wires those
// rungs, all of which already exist in the codebase, into one
// policy-driven ladder:
//
//	rung 0  static-pivot solve + berr-driven refinement (the paper)
//	rung 1  patient refinement with extra-precision residuals
//	rung 2  SMW recovery of the unperturbed system (needs PivotMods)
//	rung 3  GMRES preconditioned by the (possibly stale) LU factors
//	rung 4  Gilbert–Peierls partial-pivoting refactorization
//
// Each rung is gated by a berr tolerance, a stall/divergence detector
// and an optional per-rung deadline; every solve carries a structured
// Escalation trace recording which rungs ran, why each was entered, and
// what it cost. The happy path — rung 0 converging, the overwhelmingly
// common case per the paper's Figure 3 — allocates nothing beyond the
// ladder's reusable scratch.
//
// The ladder operates in the solver's internal coordinates: the matrix
// it watches is the permuted, scaled system that was factored
// (core.Solver wires it up behind Options.Resilience).
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"gesp/internal/krylov"
	"gesp/internal/lu"
	"gesp/internal/refine"
	"gesp/internal/sparse"
)

// Rung identifies one level of the escalation ladder.
type Rung int

const (
	// RungStatic is the paper's pipeline: static-pivot factors plus
	// berr-driven iterative refinement.
	RungStatic Rung = iota
	// RungExtraPrecision retries refinement with compensated-precision
	// residuals and a patient stall rule (only bail when berr stops
	// decreasing), recovering slow geometric convergence that rung 0's
	// halving test abandons.
	RungExtraPrecision
	// RungSMW solves the true, unperturbed system through the
	// Sherman–Morrison–Woodbury correction built from the recorded
	// tiny-pivot modifications. Skipped when no pivot was perturbed.
	RungSMW
	// RungIterative runs GMRES preconditioned by the existing (possibly
	// stale or perturbed) LU factors — a Krylov method converges where
	// stationary refinement diverges.
	RungIterative
	// RungGEPP abandons static pivoting: refactor with Gilbert–Peierls
	// partial pivoting and solve against the fresh factors.
	RungGEPP
	// NumRungs is the ladder height.
	NumRungs
)

var rungNames = [NumRungs]string{"static", "extraprec", "smw", "gmres", "gepp"}

// String returns the rung's short name.
func (r Rung) String() string {
	if r < 0 || r >= NumRungs {
		return fmt.Sprintf("rung(%d)", int(r))
	}
	return rungNames[r]
}

// Trigger says why the ladder entered a rung (or, for the final trace
// entry, why the rung below gave up).
type Trigger int

const (
	// TriggerNone marks the first rung of a solve.
	TriggerNone Trigger = iota
	// TriggerBerrAboveTol: the rung below exhausted its iteration
	// budget with berr still above tolerance.
	TriggerBerrAboveTol
	// TriggerStall: berr stopped improving above tolerance.
	TriggerStall
	// TriggerDiverge: berr grew between iterations.
	TriggerDiverge
	// TriggerNonFinite: the iterate or its berr became NaN/Inf.
	TriggerNonFinite
	// TriggerDeadline: the rung hit its per-rung deadline.
	TriggerDeadline
	// TriggerCorruptFactors: the factor fingerprint no longer matches
	// the one recorded at factorization (Policy.VerifyFactors); the
	// ladder jumps straight to the refactorization rung.
	TriggerCorruptFactors
)

var triggerNames = [...]string{"none", "berr>tol", "stall", "diverge", "nonfinite", "deadline", "corrupt-factors"}

// String returns the trigger's short name.
func (t Trigger) String() string {
	if t < 0 || int(t) >= len(triggerNames) {
		return fmt.Sprintf("trigger(%d)", int(t))
	}
	return triggerNames[t]
}

// Step records one rung's attempt within a solve.
type Step struct {
	Rung    Rung
	Trigger Trigger // why the ladder entered this rung
	// Skipped marks a rung that could not run (no pivot modifications
	// for SMW, singular capacitance, GEPP breakdown); BerrAfter then
	// repeats BerrBefore.
	Skipped    bool
	BerrBefore float64
	BerrAfter  float64
	Iterations int // refinement or Krylov iterations spent
	Cost       time.Duration
}

// Escalation is the structured trace attached to every resilient
// solve: which rungs ran, in order, and where the solve ended. The
// pointer returned by Ladder.Solve refers to ladder-owned storage and
// is valid until the next solve on that ladder.
type Escalation struct {
	Steps     []Step
	FinalRung Rung
	FinalBerr float64
	Converged bool
	Total     time.Duration
}

// FallbackCost is the time spent above rung 0 — the price of this
// solve's escalation, zero on the happy path.
func (e *Escalation) FallbackCost() time.Duration {
	var d time.Duration
	for _, s := range e.Steps {
		if s.Rung > RungStatic {
			d += s.Cost
		}
	}
	return d
}

// Escalated reports whether the solve climbed above rung 0.
func (e *Escalation) Escalated() bool { return e.FinalRung > RungStatic }

// String formats the trace as a one-line escalation history.
func (e *Escalation) String() string {
	var b strings.Builder
	for i, s := range e.Steps {
		if i > 0 {
			fmt.Fprintf(&b, " -> ")
		}
		fmt.Fprintf(&b, "%s", s.Rung)
		if s.Trigger != TriggerNone {
			fmt.Fprintf(&b, "[%s]", s.Trigger)
		}
		if s.Skipped {
			b.WriteString("(skipped)")
		} else {
			fmt.Fprintf(&b, " berr %.2e->%.2e (%d it, %v)", s.BerrBefore, s.BerrAfter, s.Iterations, s.Cost)
		}
	}
	fmt.Fprintf(&b, "; final %s berr %.2e converged=%v", e.FinalRung, e.FinalBerr, e.Converged)
	return b.String()
}

// Policy tunes the ladder. The zero value is the recommended default:
// sqrt(eps) tolerance, the full ladder, no per-rung deadline.
type Policy struct {
	// BerrTol is the componentwise backward error every rung must reach
	// to stop the climb; 0 means sqrt(eps) (~1.5e-8), the scale at
	// which the paper's tiny-pivot perturbations live.
	BerrTol float64
	// MaxRung caps the climb; 0 means the full ladder (RungGEPP). To
	// disable escalation entirely, run without a ladder.
	MaxRung Rung
	// MaxRefine bounds rung 0's refinement iterations; 0 means 10.
	MaxRefine int
	// PatientRefine bounds the refinement iterations of rungs 1, 2 and
	// 4, which use the patient stall rule; 0 means 60.
	PatientRefine int
	// RungDeadline is each rung's wall-clock budget; a rung that
	// exceeds it is abandoned and the ladder climbs. 0 means none.
	RungDeadline time.Duration
	// GMRES tunes rung 3; zero fields mean Tol 1e-12, MaxIter 500,
	// Restart 60. Cancel is overwritten by the ladder to honor the
	// solve's context and the per-rung deadline.
	GMRES krylov.Options
	// VerifyFactors re-fingerprints the factor values before every
	// solve and jumps straight to RungGEPP on a mismatch — the
	// factor-cache corruption defense. Costs one O(nnz(L+U)) pass per
	// solve.
	VerifyFactors bool
	// OnTrace, when non-nil, observes every completed solve's trace
	// (including non-escalated ones). The pointee is reused by the next
	// solve; copy what must outlive the callback.
	OnTrace func(*Escalation)
}

// Ladder escalation errors.
var (
	// ErrNonFiniteRHS reports NaN or Inf in the right-hand side: no
	// rung can recover a poisoned input, so the ladder fails fast
	// instead of climbing.
	ErrNonFiniteRHS = errors.New("resilience: right-hand side contains NaN or Inf")
	// ErrUnrecovered reports the ladder exhausted every permitted rung
	// with berr still above tolerance. The Escalation trace says what
	// was tried.
	ErrUnrecovered = errors.New("resilience: escalation ladder exhausted without reaching tolerance")
)

// Ladder is the per-factorization escalation engine. It owns reusable
// scratch sized to the system, so one Ladder serves many solves with
// zero allocations on the non-escalated path; it is NOT safe for
// concurrent use (the serving layer serializes solves per factor).
type Ladder struct {
	a   *sparse.CSC
	fac *lu.Factors
	sys refine.System
	pol Policy

	tol     float64
	maxRung Rung
	fp      uint64 // factor fingerprint at build time (VerifyFactors)

	// Escalation machinery built on first use, cached across solves.
	smw      refine.System
	smwErr   error
	smwBuilt bool
	gepp     *geppSystem
	geppErr  error

	// Scratch. r doubles as the refinement correction; sum/comp carry
	// the compensated residual.
	r, absx, den []float64
	sum, comp    []float64

	steps [NumRungs]Step
	trace Escalation
}

// NewLadder builds a ladder for the (permuted, scaled) system a whose
// static-pivot factors are fac. sys is the solver rung 0 refines with —
// usually fac itself, or a level-scheduled / SMW-wrapped system; nil
// means fac.
func NewLadder(a *sparse.CSC, fac *lu.Factors, sys refine.System, pol Policy) *Ladder {
	if sys == nil {
		sys = fac
	}
	l := &Ladder{a: a, fac: fac, sys: sys, pol: pol}
	l.tol = pol.BerrTol
	if l.tol <= 0 {
		l.tol = math.Sqrt(lu.Eps)
	}
	l.maxRung = pol.MaxRung
	if l.maxRung <= 0 || l.maxRung >= NumRungs {
		l.maxRung = RungGEPP
	}
	if pol.VerifyFactors && fac != nil {
		l.fp = fac.Fingerprint()
	}
	n := a.Rows
	l.r = make([]float64, n)
	l.absx = make([]float64, n)
	l.den = make([]float64, n)
	l.sum = make([]float64, n)
	l.comp = make([]float64, n)
	return l
}

// Tol returns the ladder's effective berr tolerance.
func (l *Ladder) Tol() float64 { return l.tol }

// LastTrace returns the trace of the most recent solve (ladder-owned;
// overwritten by the next solve).
func (l *Ladder) LastTrace() *Escalation { return &l.trace }

// Solve computes x ≈ A⁻¹b through the ladder: the rung-0 static solve
// first, then escalation as triggered. x and b must have length n; x is
// overwritten. The returned trace is ladder-owned and valid until the
// next solve.
func (l *Ladder) Solve(ctx context.Context, x, b []float64) (*Escalation, error) {
	return l.run(ctx, x, b, true)
}

// Refine is Solve for a caller that already holds an initial solution
// in x (e.g. one vector of a batched triangular sweep): rung 0 starts
// with refinement of x rather than a fresh solve.
func (l *Ladder) Refine(ctx context.Context, x, b []float64) (*Escalation, error) {
	return l.run(ctx, x, b, false)
}

func (l *Ladder) run(ctx context.Context, x, b []float64, fresh bool) (*Escalation, error) {
	t0 := time.Now()
	l.trace = Escalation{Steps: l.steps[:0], FinalBerr: math.Inf(1)}
	if !finiteVec(b) {
		return l.finish(t0, ErrNonFiniteRHS)
	}

	start, trigger := RungStatic, TriggerNone
	if l.pol.VerifyFactors && l.fac != nil && l.fac.Fingerprint() != l.fp {
		// The numeric factors changed underneath us: every rung that
		// reuses them is compromised, so go straight to refactorization.
		start, trigger = RungGEPP, TriggerCorruptFactors
	} else if fresh {
		copy(x, b)
		l.sys.Solve(x)
	}

	berrCur := math.Inf(1)
	for rung := start; rung <= l.maxRung; rung++ {
		if err := ctx.Err(); err != nil {
			return l.finish(t0, err)
		}
		rt0 := time.Now()
		var deadline time.Time
		if l.pol.RungDeadline > 0 {
			deadline = rt0.Add(l.pol.RungDeadline)
		}
		res := l.runRung(ctx, rung, x, b, deadline)
		step := Step{
			Rung:       rung,
			Trigger:    trigger,
			Skipped:    res.skipped,
			BerrBefore: res.before,
			BerrAfter:  res.berr,
			Iterations: res.iters,
			Cost:       time.Since(rt0),
		}
		if res.skipped {
			step.BerrBefore, step.BerrAfter = berrCur, berrCur
		}
		l.trace.Steps = append(l.trace.Steps, step)
		l.trace.FinalRung = rung
		if !res.skipped {
			berrCur = res.berr
			l.trace.FinalBerr = res.berr
			if res.berr <= l.tol {
				l.trace.Converged = true
				return l.finish(t0, nil)
			}
			trigger = res.trig
		}
		// A skipped rung keeps the previous trigger: the next rung is
		// still answering the last real failure.
	}
	return l.finish(t0, fmt.Errorf("%w: berr %.3e after rung %s", ErrUnrecovered, l.trace.FinalBerr, l.trace.FinalRung))
}

func (l *Ladder) finish(t0 time.Time, err error) (*Escalation, error) {
	l.trace.Total = time.Since(t0)
	if l.pol.OnTrace != nil {
		l.pol.OnTrace(&l.trace)
	}
	return &l.trace, err
}

// rungResult is one rung attempt's outcome.
type rungResult struct {
	before  float64 // berr on entry (after the rung's own initial solve)
	berr    float64
	iters   int
	trig    Trigger // why the rung gave up (meaningless on success)
	skipped bool
}

func (l *Ladder) runRung(ctx context.Context, rung Rung, x, b []float64, deadline time.Time) rungResult {
	switch rung {
	case RungStatic:
		return l.refineLoop(ctx, l.sys, x, b, false, false, l.maxRefine0(), deadline)
	case RungExtraPrecision:
		if !finiteVec(x) {
			// A non-finite iterate cannot be refined; restart from the
			// static solve (if the factors are poisoned this stays
			// non-finite and the loop exits immediately).
			copy(x, b)
			l.sys.Solve(x)
		}
		return l.refineLoop(ctx, l.sys, x, b, true, true, l.maxRefinePatient(), deadline)
	case RungSMW:
		sys := l.smwSystem()
		if sys == nil {
			return rungResult{skipped: true}
		}
		copy(x, b)
		sys.Solve(x)
		return l.refineLoop(ctx, sys, x, b, true, true, l.maxRefinePatient(), deadline)
	case RungIterative:
		return l.runIterative(ctx, x, b, deadline)
	case RungGEPP:
		g := l.geppSystem()
		if g == nil {
			return rungResult{skipped: true}
		}
		copy(x, b)
		g.Solve(x)
		return l.refineLoop(ctx, g, x, b, true, true, l.maxRefinePatient(), deadline)
	}
	return rungResult{skipped: true}
}

func (l *Ladder) maxRefine0() int {
	if l.pol.MaxRefine > 0 {
		return l.pol.MaxRefine
	}
	return 10
}

func (l *Ladder) maxRefinePatient() int {
	if l.pol.PatientRefine > 0 {
		return l.pol.PatientRefine
	}
	return 60
}

// refineLoop is the ladder's allocation-free refinement kernel,
// mirroring refine.Refine but with ladder-owned scratch, an optional
// compensated residual, per-rung deadlines and two stall rules: the
// paper's halving test (patient=false), or the patient rule that only
// bails when berr stops decreasing at all (patient=true).
func (l *Ladder) refineLoop(ctx context.Context, sys refine.System, x, b []float64, extra, patient bool, maxIter int, deadline time.Time) rungResult {
	be := l.berr(x, b, extra)
	res := rungResult{before: be, berr: be}
	if !isFinite(be) {
		res.trig = TriggerNonFinite
		return res
	}
	if be <= lu.Eps {
		return res
	}
	prev := be
	for res.iters < maxIter {
		if ctx.Err() != nil || (!deadline.IsZero() && time.Now().After(deadline)) {
			res.trig = TriggerDeadline
			return res
		}
		// l.r still holds the residual of the current x.
		sys.Solve(l.r)
		for i := range x {
			x[i] += l.r[i]
		}
		res.iters++
		be = l.berr(x, b, extra)
		res.berr = be
		if !isFinite(be) {
			res.trig = TriggerNonFinite
			return res
		}
		if be <= lu.Eps {
			return res
		}
		if patient {
			if be >= prev {
				if be > prev {
					res.trig = TriggerDiverge
				} else {
					res.trig = TriggerStall
				}
				return res
			}
		} else if be > prev/2 {
			// The paper's second termination test: berr failed to halve.
			if be > prev {
				res.trig = TriggerDiverge
			} else {
				res.trig = TriggerStall
			}
			return res
		}
		prev = be
	}
	res.trig = TriggerBerrAboveTol
	return res
}

// runIterative is rung 3: GMRES on the watched system, preconditioned
// by whatever rung 0 solves with (the stale or perturbed LU).
func (l *Ladder) runIterative(ctx context.Context, x, b []float64, deadline time.Time) rungResult {
	res := rungResult{before: l.berr(x, b, true)}
	opts := l.pol.GMRES
	if opts.Tol == 0 {
		opts.Tol = 1e-12
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = 500
	}
	if opts.Restart == 0 {
		opts.Restart = 60
	}
	opts.Cancel = func() bool {
		return ctx.Err() != nil || (!deadline.IsZero() && time.Now().After(deadline))
	}
	if !finiteVec(x) {
		for i := range x {
			x[i] = 0
		}
	}
	_, st := krylov.GMRES(l.a, preconditioner{l.sys}, x, b, opts)
	res.iters = st.Iterations
	be := l.berr(x, b, true)
	res.berr = be
	switch {
	case st.Canceled:
		res.trig = TriggerDeadline
	case !isFinite(be):
		res.trig = TriggerNonFinite
	default:
		res.trig = TriggerBerrAboveTol
	}
	return res
}

// smwSystem lazily builds (and caches) the Sherman–Morrison–Woodbury
// recovery of the true system; nil means the rung is unavailable — no
// recorded pivot modifications, poisoned factors, or a singular
// capacitance matrix (the true system itself is numerically singular).
func (l *Ladder) smwSystem() refine.System {
	if !l.smwBuilt {
		l.smwBuilt = true
		switch {
		case l.fac == nil || len(l.fac.PivotMods) == 0:
			l.smwErr = errors.New("resilience: no pivot modifications recorded")
		case l.fac.NonFinite():
			l.smwErr = errors.New("resilience: factors are non-finite")
		default:
			smw, err := refine.NewSMWSolver(l.fac)
			if err != nil {
				l.smwErr = err
			} else {
				l.smw = smw
			}
		}
	}
	return l.smw
}

// geppSystem lazily refactors the watched matrix with partial pivoting;
// nil means GEPP itself broke down (structural singularity).
func (l *Ladder) geppSystem() *geppSystem {
	if l.gepp == nil && l.geppErr == nil {
		f, err := lu.GEPP(l.a)
		if err != nil {
			l.geppErr = err
		} else {
			l.gepp = newGEPPSystem(f)
		}
	}
	return l.gepp
}

// GEPPError returns the cached rung-4 refactorization failure, if any.
func (l *Ladder) GEPPError() error { return l.geppErr }

// berr computes the componentwise backward error of x, leaving the
// residual in l.r (the refinement loop reuses it as the correction).
// extra selects the compensated-precision residual.
func (l *Ladder) berr(x, b []float64, extra bool) float64 {
	if extra {
		l.compResidual(b, x)
	} else {
		l.a.Residual(l.r, b, x)
	}
	for i, v := range x {
		l.absx[i] = math.Abs(v)
	}
	l.a.AbsMatVec(l.den, l.absx)
	be := 0.0
	for i := range b {
		d := l.den[i] + math.Abs(b[i])
		ri := math.Abs(l.r[i])
		// NaN compares false against everything, so a poisoned row would
		// silently skip both cases below and masquerade as berr 0.
		if math.IsNaN(d) || math.IsNaN(ri) {
			return math.NaN()
		}
		switch {
		case d > 0:
			if q := ri / d; q > be {
				be = q
			}
		case ri > 0:
			return math.Inf(1)
		}
	}
	return be
}

// compResidual computes l.r = b - A·x with FMA-based error-free
// transformations (the compensated scheme of refine.residual), using
// ladder scratch.
func (l *Ladder) compResidual(b, x []float64) {
	a := l.a
	for i := range l.sum {
		l.sum[i] = 0
		l.comp[i] = 0
	}
	for j := 0; j < a.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			i := a.RowInd[k]
			p := a.Val[k] * xj
			e := math.FMA(a.Val[k], xj, -p)
			s := l.sum[i] + p
			bv := s - l.sum[i]
			err := (l.sum[i] - (s - bv)) + (p - bv)
			l.sum[i] = s
			l.comp[i] += err + e
		}
	}
	for i := range b {
		l.r[i] = (b[i] - l.sum[i]) - l.comp[i]
	}
}

// preconditioner adapts a refine.System to krylov.Preconditioner.
type preconditioner struct{ sys refine.System }

func (p preconditioner) Apply(x []float64) { p.sys.Solve(x) }

// geppSystem adapts partial-pivoting factors (whose rows live in pivot
// order) to the refine.System interface in original row coordinates.
type geppSystem struct {
	f       *lu.GEPPFactors
	scratch []float64
}

func newGEPPSystem(f *lu.GEPPFactors) *geppSystem {
	return &geppSystem{f: f, scratch: make([]float64, len(f.RowPerm))}
}

// Solve overwrites x with A⁻¹x: permute into pivot order, then the
// triangular solves.
func (g *geppSystem) Solve(x []float64) {
	for i, v := range x {
		g.scratch[g.f.RowPerm[i]] = v
	}
	copy(x, g.scratch)
	g.f.Solve(x)
}

// SolveT overwrites x with A⁻ᵀx = Pᵀ·(LU)⁻ᵀ·x.
func (g *geppSystem) SolveT(x []float64) {
	g.f.SolveT(x)
	for i := range x {
		g.scratch[i] = x[g.f.RowPerm[i]]
	}
	copy(x, g.scratch)
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func finiteVec(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
