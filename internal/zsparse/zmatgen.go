package zsparse

import (
	"math"
	"math/rand"
)

// QuantumChem synthesizes the paper's §4 application workload: a complex
// unsymmetric system of the Green's-function form (σI − H), where H is a
// tight-binding Hamiltonian on an nx×ny×nz lattice with complex hopping
// terms and σ a complex energy shift (nonzero imaginary part, as in
// linear-response quantum chemistry). The system is unsymmetric because
// forward and backward hoppings carry conjugate-asymmetric phases.
func QuantumChem(nx, ny, nz int, sigma complex128, rng *rand.Rand) *CSC {
	n := nx * ny * nz
	t := NewTriplet(n, n)
	id := func(i, j, k int) int { return (i*ny+j)*nz + k }
	hop := func() complex128 {
		phase := 2 * math.Pi * rng.Float64()
		mag := 0.8 + 0.4*rng.Float64()
		return complex(mag*math.Cos(phase), mag*math.Sin(phase))
	}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				c := id(i, j, k)
				onsite := complex(4*rng.Float64()-2, 0)
				t.Append(c, c, sigma-onsite)
				couple := func(o int) {
					h := hop()
					t.Append(c, o, -h)
					// Asymmetric reverse hopping (breaks Hermitian
					// symmetry, keeping the system genuinely unsymmetric).
					t.Append(o, c, -h*complex(1, 0.1*rng.NormFloat64()))
				}
				if i+1 < nx {
					couple(id(i+1, j, k))
				}
				if j+1 < ny {
					couple(id(i, j+1, k))
				}
				if k+1 < nz {
					couple(id(i, j, k+1))
				}
			}
		}
	}
	return t.ToCSC()
}
