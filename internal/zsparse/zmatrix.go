// Package zsparse provides the complex128 sparse-matrix kernel for the
// complex GESP solver. The paper's flagship application — a quantum
// chemistry code at LBNL — solves complex unsymmetric systems ("a complex
// unsymmetric system of order 200,000 has been solved within 2 minutes");
// this package and internal/zsolver reproduce that capability.
//
// The structural machinery (matching, ordering, symbolic factorization)
// is shared with the real-valued solver through Magnitude, which shadows
// a complex matrix by the real matrix of entry moduli.
package zsparse

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"gesp/internal/sparse"
)

// CSC is a complex sparse matrix in compressed sparse column form, with
// the same invariants as sparse.CSC.
type CSC struct {
	Rows, Cols int
	ColPtr     []int
	RowInd     []int
	Val        []complex128
}

// Nnz reports the number of stored entries.
func (a *CSC) Nnz() int { return a.ColPtr[a.Cols] }

// Clone returns a deep copy.
func (a *CSC) Clone() *CSC {
	return &CSC{
		Rows:   a.Rows,
		Cols:   a.Cols,
		ColPtr: append([]int(nil), a.ColPtr...),
		RowInd: append([]int(nil), a.RowInd...),
		Val:    append([]complex128(nil), a.Val...),
	}
}

// At returns the entry at (i, j) or 0.
func (a *CSC) At(i, j int) complex128 {
	lo, hi := a.ColPtr[j], a.ColPtr[j+1]
	k := lo + sort.SearchInts(a.RowInd[lo:hi], i)
	if k < hi && a.RowInd[k] == i {
		return a.Val[k]
	}
	return 0
}

// Triplet accumulates complex entries; duplicates sum on conversion.
type Triplet struct {
	Rows, Cols int
	rows, cols []int
	vals       []complex128
}

// NewTriplet returns an empty builder.
func NewTriplet(r, c int) *Triplet { return &Triplet{Rows: r, Cols: c} }

// Append adds entry (i, j) = v.
func (t *Triplet) Append(i, j int, v complex128) {
	if i < 0 || i >= t.Rows || j < 0 || j >= t.Cols {
		panic(fmt.Sprintf("zsparse: entry (%d,%d) out of range %dx%d", i, j, t.Rows, t.Cols))
	}
	t.rows = append(t.rows, i)
	t.cols = append(t.cols, j)
	t.vals = append(t.vals, v)
}

// ToCSC converts to CSC form, summing duplicates.
func (t *Triplet) ToCSC() *CSC {
	nz := len(t.vals)
	count := make([]int, t.Cols+1)
	for _, j := range t.cols {
		count[j+1]++
	}
	for j := 0; j < t.Cols; j++ {
		count[j+1] += count[j]
	}
	ri := make([]int, nz)
	vv := make([]complex128, nz)
	next := append([]int(nil), count...)
	for k := 0; k < nz; k++ {
		p := next[t.cols[k]]
		next[t.cols[k]]++
		ri[p] = t.rows[k]
		vv[p] = t.vals[k]
	}
	a := &CSC{Rows: t.Rows, Cols: t.Cols, ColPtr: make([]int, t.Cols+1)}
	type iv struct {
		i int
		v complex128
	}
	for j := 0; j < t.Cols; j++ {
		lo, hi := count[j], count[j+1]
		seg := make([]iv, hi-lo)
		for k := lo; k < hi; k++ {
			seg[k-lo] = iv{ri[k], vv[k]}
		}
		sort.Slice(seg, func(a, b int) bool { return seg[a].i < seg[b].i })
		for k := 0; k < len(seg); {
			i := seg[k].i
			var s complex128
			for k < len(seg) && seg[k].i == i {
				s += seg[k].v
				k++
			}
			a.RowInd = append(a.RowInd, i)
			a.Val = append(a.Val, s)
		}
		a.ColPtr[j+1] = len(a.RowInd)
	}
	return a
}

// Magnitude returns the real matrix of entry moduli |a_ij|, sharing the
// sparsity structure: the bridge that lets the complex solver reuse the
// real equilibration, matching, ordering and symbolic analysis.
func (a *CSC) Magnitude() *sparse.CSC {
	m := &sparse.CSC{
		Rows:   a.Rows,
		Cols:   a.Cols,
		ColPtr: append([]int(nil), a.ColPtr...),
		RowInd: append([]int(nil), a.RowInd...),
		Val:    make([]float64, a.Nnz()),
	}
	for k, v := range a.Val {
		m.Val[k] = cmplx.Abs(v)
	}
	return m
}

// MatVec computes y = A·x.
func (a *CSC) MatVec(y []complex128, x []complex128) {
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < a.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			y[a.RowInd[k]] += a.Val[k] * xj
		}
	}
}

// Residual computes r = b − A·x.
func (a *CSC) Residual(r, b, x []complex128) {
	a.MatVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
}

// AbsMatVec computes y = |A|·x for real nonnegative x (berr denominator).
func (a *CSC) AbsMatVec(y []float64, x []float64) {
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < a.Cols; j++ {
		xj := x[j]
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			y[a.RowInd[k]] += cmplx.Abs(a.Val[k]) * xj
		}
	}
}

// Norm1 returns the 1-norm.
func (a *CSC) Norm1() float64 {
	best := 0.0
	for j := 0; j < a.Cols; j++ {
		s := 0.0
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			s += cmplx.Abs(a.Val[k])
		}
		if s > best {
			best = s
		}
	}
	return best
}

// ScaleRowsCols overwrites A with Dr·A·Dc for real diagonal scalings.
func (a *CSC) ScaleRowsCols(dr, dc []float64) {
	for j := 0; j < a.Cols; j++ {
		cj := 1.0
		if dc != nil {
			cj = dc[j]
		}
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			ri := 1.0
			if dr != nil {
				ri = dr[a.RowInd[k]]
			}
			a.Val[k] *= complex(ri*cj, 0)
		}
	}
}

// PermuteRows returns Pr·A (perm maps old row to new row).
func (a *CSC) PermuteRows(perm []int) *CSC {
	b := &CSC{Rows: a.Rows, Cols: a.Cols, ColPtr: append([]int(nil), a.ColPtr...)}
	b.RowInd = make([]int, a.Nnz())
	b.Val = make([]complex128, a.Nnz())
	for j := 0; j < a.Cols; j++ {
		lo, hi := a.ColPtr[j], a.ColPtr[j+1]
		for k := lo; k < hi; k++ {
			b.RowInd[k] = perm[a.RowInd[k]]
			b.Val[k] = a.Val[k]
		}
		// Insertion sort within the column.
		for x := lo + 1; x < hi; x++ {
			r, v := b.RowInd[x], b.Val[x]
			y := x - 1
			for y >= lo && b.RowInd[y] > r {
				b.RowInd[y+1] = b.RowInd[y]
				b.Val[y+1] = b.Val[y]
				y--
			}
			b.RowInd[y+1] = r
			b.Val[y+1] = v
		}
	}
	return b
}

// PermuteCols returns A·Pcᵀ (perm maps old column to new column).
func (a *CSC) PermuteCols(perm []int) *CSC {
	b := &CSC{Rows: a.Rows, Cols: a.Cols, ColPtr: make([]int, a.Cols+1)}
	b.RowInd = make([]int, a.Nnz())
	b.Val = make([]complex128, a.Nnz())
	inv := sparse.InversePerm(perm)
	p := 0
	for jn := 0; jn < a.Cols; jn++ {
		jo := inv[jn]
		for k := a.ColPtr[jo]; k < a.ColPtr[jo+1]; k++ {
			b.RowInd[p] = a.RowInd[k]
			b.Val[p] = a.Val[k]
			p++
		}
		b.ColPtr[jn+1] = p
	}
	return b
}

// PermuteSym returns P·A·Pᵀ.
func (a *CSC) PermuteSym(perm []int) *CSC {
	return a.PermuteRows(perm).PermuteCols(perm)
}

// RelErrInf returns ‖x−y‖∞/‖y‖∞ with complex moduli.
func RelErrInf(x, y []complex128) float64 {
	num, den := 0.0, 0.0
	for i := range x {
		if d := cmplx.Abs(x[i] - y[i]); d > num {
			num = d
		}
		if a := cmplx.Abs(y[i]); a > den {
			den = a
		}
	}
	if den == 0 {
		return num
	}
	return num / den
}

// VecNormInf returns max |x_i|.
func VecNormInf(x []complex128) float64 {
	best := 0.0
	for _, v := range x {
		if a := cmplx.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// Berr computes the componentwise backward error of x for A·x = b.
func Berr(a *CSC, x, b []complex128) float64 {
	n := len(b)
	r := make([]complex128, n)
	a.Residual(r, b, x)
	absx := make([]float64, n)
	for i, v := range x {
		absx[i] = cmplx.Abs(v)
	}
	den := make([]float64, n)
	a.AbsMatVec(den, absx)
	berr := 0.0
	for i := 0; i < n; i++ {
		d := den[i] + cmplx.Abs(b[i])
		ri := cmplx.Abs(r[i])
		switch {
		case d > 0:
			if q := ri / d; q > berr {
				berr = q
			}
		case ri > 0:
			return math.Inf(1)
		}
	}
	return berr
}
