package zsparse

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"gesp/internal/sparse"
)

func randomZ(rng *rand.Rand, n int, density float64) *CSC {
	t := NewTriplet(n, n)
	for j := 0; j < n; j++ {
		t.Append(j, j, complex(2+rng.Float64(), rng.Float64()))
		for i := 0; i < n; i++ {
			if i != j && rng.Float64() < density {
				t.Append(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
			}
		}
	}
	return t.ToCSC()
}

func TestTripletDuplicatesSum(t *testing.T) {
	tr := NewTriplet(2, 2)
	tr.Append(0, 0, complex(1, 2))
	tr.Append(0, 0, complex(3, -1))
	tr.Append(1, 1, complex(0, 1))
	a := tr.ToCSC()
	if got := a.At(0, 0); got != complex(4, 1) {
		t.Errorf("At(0,0) = %v, want (4+1i)", got)
	}
	if a.Nnz() != 2 {
		t.Errorf("nnz = %d", a.Nnz())
	}
}

func TestMatVecResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomZ(rng, 20, 0.2)
	x := make([]complex128, 20)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b := make([]complex128, 20)
	a.MatVec(b, x)
	r := make([]complex128, 20)
	a.Residual(r, b, x)
	for i := range r {
		if cmplx.Abs(r[i]) > 1e-12 {
			t.Fatalf("residual of exact product nonzero at %d: %v", i, r[i])
		}
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		a := randomZ(rng, n, 0.2)
		p := rng.Perm(n)
		back := a.PermuteSym(p).PermuteSym(sparse.InversePerm(p))
		if back.Nnz() != a.Nnz() {
			return false
		}
		for j := 0; j < n; j++ {
			for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
				if back.At(a.RowInd[k], j) != a.Val[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestScaleRowsCols(t *testing.T) {
	tr := NewTriplet(2, 2)
	tr.Append(0, 0, complex(2, 2))
	tr.Append(1, 1, complex(4, 0))
	a := tr.ToCSC()
	a.ScaleRowsCols([]float64{0.5, 2}, []float64{1, 0.25})
	if got := a.At(0, 0); got != complex(1, 1) {
		t.Errorf("(0,0) = %v", got)
	}
	if got := a.At(1, 1); got != complex(2, 0) {
		t.Errorf("(1,1) = %v", got)
	}
}

func TestNorm1(t *testing.T) {
	tr := NewTriplet(2, 2)
	tr.Append(0, 0, complex(3, 4)) // |.| = 5
	tr.Append(1, 0, complex(0, 2))
	tr.Append(1, 1, complex(1, 0))
	a := tr.ToCSC()
	if got := a.Norm1(); got != 7 {
		t.Errorf("Norm1 = %g, want 7", got)
	}
}

func TestQuantumChemProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := QuantumChem(5, 4, 3, complex(0.5, 1), rng)
	if a.Rows != 60 {
		t.Fatalf("n = %d", a.Rows)
	}
	// Full diagonal (σ − onsite never vanishes with Im σ > 0).
	for j := 0; j < a.Cols; j++ {
		if a.At(j, j) == 0 {
			t.Fatalf("zero diagonal at %d", j)
		}
		if imag(a.At(j, j)) == 0 {
			t.Fatalf("diagonal %d lost the complex shift", j)
		}
	}
	// Unsymmetric values.
	asym := false
	for j := 0; j < a.Cols && !asym; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			i := a.RowInd[k]
			if i != j && a.At(j, i) != a.Val[k] {
				asym = true
				break
			}
		}
	}
	if !asym {
		t.Error("quantum chemistry matrix came out symmetric")
	}
}

func TestRelErrAndNormInf(t *testing.T) {
	x := []complex128{complex(1, 0), complex(0, 2)}
	y := []complex128{complex(1, 0), complex(0, 1)}
	if got := VecNormInf(x); got != 2 {
		t.Errorf("VecNormInf = %g", got)
	}
	if got := RelErrInf(x, y); got != 1 {
		t.Errorf("RelErrInf = %g, want 1 (|2i-1i|/|1|)", got)
	}
}
