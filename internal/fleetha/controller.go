package fleetha

import (
	"fmt"
	"time"
)

// The SLO controller closes the loop the ROADMAP left open: the fleet
// already publishes a p999 latency histogram, heal rate, hedge spend,
// and per-shard queue depth; this turns them into replica promotions
// and shard scaling. It is a pure state machine — Step consumes one
// window of signals and returns the decisions for that window — so a
// recorded signal trace replays to the identical decision sequence
// (Replay), and the no-flap guarantee is a property of the code, not
// of timing: hysteresis (breach at SLO, clear at ClearFraction·SLO)
// plus streak thresholds plus a cooldown counted in windows mean at
// most one direction change per cooldown window.

// ControllerConfig parameterizes the SLO control loop.
type ControllerConfig struct {
	// SLO is the p999 latency target; a window whose windowed p999
	// exceeds it counts toward a breach.
	SLO time.Duration `json:"slo_ns"`
	// Window is how often the leader samples signals and steps the
	// controller (wall period of one window; the controller itself only
	// counts windows). 0 takes 250ms.
	Window time.Duration `json:"window_ns,omitempty"`
	// ClearFraction sets the clear threshold at ClearFraction·SLO —
	// the hysteresis band: between ClearFraction·SLO and SLO the
	// controller holds its position. 0 takes 0.5.
	ClearFraction float64 `json:"clear_fraction,omitempty"`
	// BreachAfter/ClearAfter are the consecutive-window streaks
	// required before acting (0 takes 2). A single bad window is noise;
	// a streak is a trend.
	BreachAfter int `json:"breach_after,omitempty"`
	ClearAfter  int `json:"clear_after,omitempty"`
	// CooldownWindows is the post-action freeze: after any promote,
	// demote, spawn, or drain the controller holds for this many
	// windows so the action's effect can reach the histogram before
	// the next decision. 0 takes 4.
	CooldownWindows int `json:"cooldown_windows,omitempty"`
	// MaxBoost caps the per-pattern extra replicas a breach can add
	// (0 takes 2; the fleet additionally caps total width at its
	// replication ceiling).
	MaxBoost int `json:"max_boost,omitempty"`
	// HotK is how many top patterns are promotion candidates (0 takes 2).
	HotK int `json:"hot_k,omitempty"`
	// SpawnQueueDepth escalates from replica promotion to shard
	// spawning: when the deepest shard queue reaches it during a
	// breach and every hot pattern is already at MaxBoost, the
	// controller asks the Scaler for a new shard. 0 disables spawning.
	SpawnQueueDepth int64 `json:"spawn_queue_depth,omitempty"`
	// MaxShards bounds spawning (0 disables spawning too).
	MaxShards int `json:"max_shards,omitempty"`
	// MinWindowSamples gates decisions on statistical weight: windows
	// with fewer samples neither breach nor clear (0 takes 20). An
	// idle fleet must not demote its way out of a provisioned state on
	// no evidence.
	MinWindowSamples uint64 `json:"min_window_samples,omitempty"`
}

func (c ControllerConfig) fill() ControllerConfig {
	if c.Window <= 0 {
		c.Window = 250 * time.Millisecond
	}
	if c.ClearFraction <= 0 || c.ClearFraction >= 1 {
		c.ClearFraction = 0.5
	}
	if c.BreachAfter <= 0 {
		c.BreachAfter = 2
	}
	if c.ClearAfter <= 0 {
		c.ClearAfter = 2
	}
	if c.CooldownWindows <= 0 {
		c.CooldownWindows = 4
	}
	if c.MaxBoost <= 0 {
		c.MaxBoost = 2
	}
	if c.HotK <= 0 {
		c.HotK = 2
	}
	if c.MinWindowSamples == 0 {
		c.MinWindowSamples = 20
	}
	return c
}

// Signals is one window's observation of the fleet — windowed deltas,
// not cumulative counters, so each Step judges only what happened
// since the last one.
type Signals struct {
	// P999 is the windowed 99.9th percentile solve latency; Samples the
	// solve count in the window.
	P999    time.Duration `json:"p999_ns"`
	Samples uint64        `json:"samples"`
	// HealRate is evictions-healed per routed solve in the window;
	// HedgeDenied the hedge launches the budget refused.
	HealRate    float64 `json:"heal_rate"`
	HedgeDenied uint64  `json:"hedge_denied"`
	// QueueDepth is the deepest per-shard queue the prober saw.
	QueueDepth int64 `json:"queue_depth"`
	// HotPatterns are the top routed patterns (descending); Boosted the
	// patterns currently promoted; Shards the live shard count.
	HotPatterns []uint64 `json:"hot_patterns,omitempty"`
	Boosted     []uint64 `json:"boosted,omitempty"`
	Shards      int      `json:"shards"`
}

// Action is one controller verb.
type Action string

const (
	ActPromote Action = "promote" // widen a hot pattern's placement by one replica
	ActDemote  Action = "demote"  // restore a pattern to configured replication
	ActSpawn   Action = "spawn"   // add a shard process
	ActDrain   Action = "drain"   // drain a controller-spawned shard
)

// Decision is one structured trace record: everything needed to audit
// or replay the controller's behavior.
type Decision struct {
	Window  int           `json:"window"`
	Action  Action        `json:"action"`
	Pattern uint64        `json:"pattern,omitempty"` // promote/demote target
	Boost   int           `json:"boost,omitempty"`   // promote: resulting extra replicas
	ShardID int           `json:"shard_id,omitempty"`
	P999    time.Duration `json:"p999_ns"`
	Reason  string        `json:"reason"`
}

// Controller is the SLO state machine. Not safe for concurrent use —
// the leader's control loop is its only caller.
type Controller struct {
	cfg ControllerConfig

	window       int
	breachStreak int
	clearStreak  int
	cooldown     int
	// boosts mirrors the promotions this controller has made
	// (pattern -> extra replicas) so demotion unwinds exactly what
	// promotion wound, newest first.
	boosts map[uint64]int
	// promoteOrder remembers promotion order for LIFO demotion.
	promoteOrder []uint64
	// spawned counts controller-added shards still live. It is bumped
	// by NoteSpawned — i.e. only after the apply layer actually spawned
	// and registered the shard — not when the Spawn decision is emitted,
	// so a failed spawn cannot leave the model ahead of reality (which
	// would turn later clear windows into no-op drains, each burning a
	// full cooldown).
	spawned int
}

// NewController builds a controller; cfg.SLO must be positive.
func NewController(cfg ControllerConfig) *Controller {
	return &Controller{cfg: cfg.fill(), boosts: make(map[uint64]int)}
}

// Step advances one window and returns the decisions (usually zero or
// one; a breach escalation can both promote and note the escalation).
// Pure over its inputs and prior Steps: no clocks, no randomness.
func (c *Controller) Step(sig Signals) []Decision {
	c.window++
	significant := sig.Samples >= c.cfg.MinWindowSamples
	breached := significant && sig.P999 > c.cfg.SLO
	cleared := significant && float64(sig.P999) <= c.cfg.ClearFraction*float64(c.cfg.SLO)
	switch {
	case breached:
		c.breachStreak++
		c.clearStreak = 0
	case cleared:
		c.clearStreak++
		c.breachStreak = 0
	default:
		// hysteresis band or too few samples: hold position, decay both
		// streaks so stale momentum can't trigger an action later
		c.breachStreak = 0
		c.clearStreak = 0
	}
	if c.cooldown > 0 {
		c.cooldown--
		return nil
	}
	if c.breachStreak >= c.cfg.BreachAfter {
		d := c.escalate(sig)
		c.breachStreak = 0
		if d != nil {
			c.cooldown = c.cfg.CooldownWindows
			return []Decision{*d}
		}
		return nil
	}
	if c.clearStreak >= c.cfg.ClearAfter {
		d := c.relax(sig)
		c.clearStreak = 0
		if d != nil {
			c.cooldown = c.cfg.CooldownWindows
			return []Decision{*d}
		}
		return nil
	}
	return nil
}

// escalate picks the cheapest remedy not yet exhausted: widen the
// hottest under-boosted pattern, then — when every candidate is at
// MaxBoost and the queues say the fleet is saturated rather than
// skewed — add a shard.
func (c *Controller) escalate(sig Signals) *Decision {
	k := c.cfg.HotK
	if k > len(sig.HotPatterns) {
		k = len(sig.HotPatterns)
	}
	for i := 0; i < k; i++ {
		p := sig.HotPatterns[i]
		if c.boosts[p] >= c.cfg.MaxBoost {
			continue
		}
		if c.boosts[p] == 0 {
			c.promoteOrder = append(c.promoteOrder, p)
		}
		c.boosts[p]++
		return &Decision{
			Window:  c.window,
			Action:  ActPromote,
			Pattern: p,
			Boost:   c.boosts[p],
			P999:    sig.P999,
			Reason:  fmt.Sprintf("p999 %v > SLO %v for %d windows; widening hottest pattern to +%d", sig.P999, c.cfg.SLO, c.cfg.BreachAfter, c.boosts[p]),
		}
	}
	if c.cfg.SpawnQueueDepth > 0 && c.cfg.MaxShards > 0 &&
		sig.QueueDepth >= c.cfg.SpawnQueueDepth && sig.Shards < c.cfg.MaxShards {
		return &Decision{
			Window: c.window,
			Action: ActSpawn,
			P999:   sig.P999,
			Reason: fmt.Sprintf("p999 %v > SLO %v with queue depth %d >= %d and every hot pattern at max boost; adding a shard", sig.P999, c.cfg.SLO, sig.QueueDepth, c.cfg.SpawnQueueDepth),
		}
	}
	return nil
}

// relax unwinds the newest remedy: drain the newest spawned shard
// first (it holds the least history), then demote promotions LIFO.
func (c *Controller) relax(sig Signals) *Decision {
	if c.spawned > 0 {
		c.spawned--
		return &Decision{
			Window: c.window,
			Action: ActDrain,
			P999:   sig.P999,
			Reason: fmt.Sprintf("p999 %v <= %.0f%% of SLO for %d windows; draining newest controller shard", sig.P999, 100*c.cfg.ClearFraction, c.cfg.ClearAfter),
		}
	}
	for i := len(c.promoteOrder) - 1; i >= 0; i-- {
		p := c.promoteOrder[i]
		if c.boosts[p] == 0 {
			continue
		}
		delete(c.boosts, p)
		c.promoteOrder = c.promoteOrder[:i]
		return &Decision{
			Window:  c.window,
			Action:  ActDemote,
			Pattern: p,
			P999:    sig.P999,
			Reason:  fmt.Sprintf("p999 %v <= %.0f%% of SLO for %d windows; restoring pattern to configured replication", sig.P999, 100*c.cfg.ClearFraction, c.cfg.ClearAfter),
		}
	}
	return nil
}

// Window reports how many windows have been stepped.
func (c *Controller) Window() int { return c.window }

// NoteSpawned confirms a Spawn decision took effect: the apply layer
// calls it after the Scaler produced a shard and the fleet registered
// it. A Spawn whose apply failed is never noted, so the controller's
// next breach window re-decides instead of believing in a shard that
// does not exist — and its clear windows demote promotions rather
// than emitting drains with nothing to drain.
func (c *Controller) NoteSpawned() { c.spawned++ }

// Replay runs a fresh controller over a recorded signal trace and
// returns the full decision sequence — byte-for-byte what the live
// controller decided, because Step is pure. This is the audit story:
// persist the Signals, reproduce the Decisions. Replay assumes every
// Spawn decision was applied successfully (it notes them itself); a
// live run whose spawn failed diverges from that point, visibly, in
// the absence of the corresponding drain.
func Replay(cfg ControllerConfig, trace []Signals) []Decision {
	c := NewController(cfg)
	var out []Decision
	for _, sig := range trace {
		for _, d := range c.Step(sig) {
			if d.Action == ActSpawn {
				c.NoteSpawned()
			}
			out = append(out, d)
		}
	}
	return out
}
