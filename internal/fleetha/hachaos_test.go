// Process-level HA chaos tests: real coordinator and shard processes,
// real SIGKILL. The external test package breaks the faultsim →
// fleetha import cycle, and TestMain's two re-exec hooks let this test
// binary become either child kind.
package fleetha_test

import (
	"context"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gesp/internal/faultsim"
	"gesp/internal/fleetha"
	"gesp/internal/fleetrpc"
	"gesp/internal/matgen"
	"gesp/internal/serve"
	"gesp/internal/sparse"
)

func TestMain(m *testing.M) {
	fleetha.RunCoordinatorIfChild()
	fleetrpc.RunShardIfChild()
	os.Exit(m.Run())
}

type haSystem struct {
	a    *sparse.CSC
	b    []float64
	want []float64
	h    serve.Handle
}

// haChaosCluster spawns real shard and coordinator processes, wires
// the topology, and returns both proc sets plus an HA client aimed at
// every coordinator.
func haChaosCluster(t *testing.T, nShards, nCoords int, template fleetha.ConfigureRequest) (*faultsim.ProcSet, *faultsim.ProcSet, *fleetha.Client) {
	t.Helper()
	shards, err := fleetrpc.SpawnShards(nShards, fleetrpc.ShardConf{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shards.Close)
	coords, err := fleetha.SpawnCoordinators(nCoords)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coords.Close)

	template.Shards = shards.Addrs()
	if err := fleetha.ConfigureCoordinators(coords.Addrs(), template); err != nil {
		t.Fatal(err)
	}
	cli, err := fleetha.NewClient(fleetha.ClientConfig{
		Coordinators:   coords.Addrs(),
		Retry:          fleetrpc.Backoff{Attempts: 12, Base: 10 * time.Millisecond, Max: 250 * time.Millisecond},
		AttemptTimeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return shards, coords, cli
}

// awaitLeader polls coordinator statuses until one claims leadership,
// returning its index in addrs.
func awaitLeader(t *testing.T, cli *fleetha.Client, addrs []string, timeout time.Duration) int {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for i, addr := range addrs {
			ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
			st, err := cli.Status(ctx, addr)
			cancel()
			if err == nil && st.Role == fleetha.RoleLeader {
				return i
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no coordinator claimed leadership")
	return -1
}

// awaitLeaderExcept is awaitLeader skipping a (killed) index.
func awaitLeaderExcept(t *testing.T, cli *fleetha.Client, addrs []string, skip int, timeout time.Duration) int {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for i, addr := range addrs {
			if i == skip {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
			st, err := cli.Status(ctx, addr)
			cancel()
			if err == nil && st.Role == fleetha.RoleLeader {
				return i
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no surviving coordinator took over")
	return -1
}

// submitSystems pushes the named testbed systems through the HA client
// and warms each factor cache with one solve.
func submitSystems(t *testing.T, cli *fleetha.Client, names []string) []haSystem {
	t.Helper()
	ctx := context.Background()
	var pool []haSystem
	for _, name := range names {
		gen, ok := matgen.Lookup(name)
		if !ok {
			t.Fatalf("testbed matrix %s missing", name)
		}
		a := gen.Generate(0.25)
		want := make([]float64, a.Rows)
		for i := range want {
			want[i] = 1
		}
		b := make([]float64, a.Rows)
		a.MatVec(b, want)
		h, err := cli.Submit(ctx, a)
		if err != nil {
			t.Fatalf("%s submit: %v", name, err)
		}
		if _, err := cli.Solve(ctx, h, b); err != nil {
			t.Fatalf("%s warm solve: %v", name, err)
		}
		pool = append(pool, haSystem{a: a, b: b, want: want, h: h})
	}
	return pool
}

// haHammer runs closed-loop solvers through the HA client until stop
// closes, counting solves and recording the first error.
func haHammer(cli *fleetha.Client, pool []haSystem, workers int, stop chan struct{}) (*sync.WaitGroup, *atomic.Uint64, *atomic.Value) {
	var wg sync.WaitGroup
	var solves atomic.Uint64
	var firstErr atomic.Value
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				sys := pool[rng.Intn(len(pool))]
				ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
				_, err := cli.Solve(ctx, sys.h, sys.b)
				cancel()
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				solves.Add(1)
			}
		}(int64(4000 + w))
	}
	return &wg, &solves, &firstErr
}

// TestHALeaderKill is the acceptance chaos test for coordinator HA:
// SIGKILL the leader coordinator under load. The survivors must elect
// a replacement holding every registry entry, and the client's
// redirect-and-retry ladder must absorb the gap with zero visible
// failures.
func TestHALeaderKill(t *testing.T) {
	if testing.Short() {
		t.Skip("process chaos: skipped in -short")
	}
	_, coords, cli := haChaosCluster(t, 3, 3, fleetha.ConfigureRequest{
		LeaseMS:     200,
		HeartbeatMS: 50,
		Replication: 2,
	})
	addrs := coords.Addrs()
	leader := awaitLeader(t, cli, addrs, 10*time.Second)
	pool := submitSystems(t, cli, []string{"SHERMAN4", "GEMAT11"})

	ctx := context.Background()
	stCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	preStatus, err := cli.Status(stCtx, addrs[leader])
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if preStatus.RegistryLen != len(pool) {
		t.Fatalf("leader registry has %d entries before kill, want %d", preStatus.RegistryLen, len(pool))
	}

	stop := make(chan struct{})
	wg, solves, firstErr := haHammer(cli, pool, 4, stop)
	time.Sleep(200 * time.Millisecond)

	killAt := time.Now()
	if err := coords.Procs[leader].Kill(); err != nil {
		t.Fatal(err)
	}
	next := awaitLeaderExcept(t, cli, addrs, leader, 15*time.Second)
	failover := time.Since(killAt)

	time.Sleep(300 * time.Millisecond) // keep hammering the new leader
	close(stop)
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		t.Fatalf("client-visible failure across leader SIGKILL: %v", err)
	}
	if solves.Load() == 0 {
		t.Fatal("load loop never solved")
	}
	t.Logf("failover: node %d -> node %d in %v (%d solves under load)", leader, next, failover, solves.Load())

	// zero lost registry entries: the new leader holds every handle...
	stCtx, cancel = context.WithTimeout(ctx, 2*time.Second)
	postStatus, err := cli.Status(stCtx, addrs[next])
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if postStatus.RegistryLen != len(pool) {
		t.Fatalf("registry lost entries across failover: %d, want %d", postStatus.RegistryLen, len(pool))
	}
	if postStatus.Term <= preStatus.Term {
		t.Fatalf("takeover term %d not above killed leader's term %d", postStatus.Term, preStatus.Term)
	}
	// ...and every pre-kill handle still solves correctly.
	for _, sys := range pool {
		x, err := cli.Solve(ctx, sys.h, sys.b)
		if err != nil {
			t.Fatalf("post-failover solve: %v", err)
		}
		if e := sparse.RelErrInf(x, sys.want); e > 2e-3 {
			t.Fatalf("post-failover solution error %g", e)
		}
	}
	if failover > 10*time.Second {
		t.Fatalf("failover detection took %v", failover)
	}
}

// TestHASLOBreach drives the SLO controller end to end: a straggling
// shard pushes p999 over the SLO, the leader's controller must promote
// a hot pattern within the cooldown budget, and once the straggle
// clears it must demote — with the whole decision trace obeying the
// no-flap bound.
func TestHASLOBreach(t *testing.T) {
	if testing.Short() {
		t.Skip("process chaos: skipped in -short")
	}
	// SLO/clear margins sized for -race and power-of-two histogram
	// buckets, as in TestHAControllerSpawn below.
	ctrl := &fleetha.ControllerConfig{
		SLO:              70 * time.Millisecond,
		Window:           150 * time.Millisecond,
		ClearFraction:    0.5,
		BreachAfter:      2,
		ClearAfter:       2,
		CooldownWindows:  2,
		MaxBoost:         1,
		HotK:             1,
		MinWindowSamples: 5,
	}
	shards, coords, cli := haChaosCluster(t, 3, 1, fleetha.ConfigureRequest{
		LeaseMS:      200,
		HeartbeatMS:  50,
		Replication:  1, // promotion is what enables hedge/failover here
		HedgeAfterMS: 20,
		Controller:   ctrl,
	})
	awaitLeader(t, cli, coords.Addrs(), 10*time.Second)
	pool := submitSystems(t, cli, []string{"SHERMAN4"})

	stop := make(chan struct{})
	wg, _, firstErr := haHammer(cli, pool, 4, stop)
	time.Sleep(300 * time.Millisecond) // baseline traffic, below the SLO

	// straggle every shard: with replication 1 the owner is always slow,
	// so p999 must breach regardless of placement
	ctx := context.Background()
	for _, addr := range shards.Addrs() {
		sc := fleetrpc.NewClient(addr)
		if err := sc.SetChaosDelay(ctx, 100); err != nil {
			t.Fatal(err)
		}
	}
	breachAt := time.Now()
	// promote must land within the cooldown budget: BreachAfter windows
	// to trip plus one cooldown of slack
	budget := time.Duration(ctrl.BreachAfter+ctrl.CooldownWindows+2) * ctrl.Window * 4
	var promoted bool
	for time.Since(breachAt) < budget {
		tr, err := cli.Trace(ctx)
		if err == nil {
			for _, d := range tr.Decisions {
				if d.Action == fleetha.ActPromote {
					promoted = true
				}
			}
		}
		if promoted {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !promoted {
		tr, _ := cli.Trace(ctx)
		t.Fatalf("no promote within %v of the breach; trace: %+v", budget, tr.Decisions)
	}
	t.Logf("promoted %v after breach injection", time.Since(breachAt))

	// clear the straggle; the controller must demote once p999 falls
	for _, addr := range shards.Addrs() {
		sc := fleetrpc.NewClient(addr)
		if err := sc.SetChaosDelay(ctx, 0); err != nil {
			t.Fatal(err)
		}
	}
	clearAt := time.Now()
	var demoted bool
	for time.Since(clearAt) < 2*budget {
		tr, err := cli.Trace(ctx)
		if err == nil {
			for _, d := range tr.Decisions {
				if d.Action == fleetha.ActDemote {
					demoted = true
				}
			}
		}
		if demoted {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		t.Fatalf("client-visible failure during SLO breach: %v", err)
	}
	if !demoted {
		tr, _ := cli.Trace(ctx)
		t.Fatalf("no demote within %v of the clear; trace: %+v", 2*budget, tr.Decisions)
	}
	t.Logf("demoted %v after clear", time.Since(clearAt))

	// no flapping: consecutive opposite-direction decisions must be at
	// least a cooldown apart in window counts
	tr, err := cli.Trace(ctx)
	if err != nil {
		t.Fatal(err)
	}
	dir := func(a fleetha.Action) int {
		switch a {
		case fleetha.ActPromote, fleetha.ActSpawn:
			return +1
		case fleetha.ActDemote, fleetha.ActDrain:
			return -1
		}
		return 0
	}
	ds := tr.Decisions
	for i := 1; i < len(ds); i++ {
		if dir(ds[i].Action) != dir(ds[i-1].Action) {
			if gap := ds[i].Window - ds[i-1].Window; gap <= ctrl.CooldownWindows {
				t.Fatalf("controller flapped: %s@w%d then %s@w%d (gap %d <= cooldown %d)",
					ds[i-1].Action, ds[i-1].Window, ds[i].Action, ds[i].Window, gap, ctrl.CooldownWindows)
			}
		}
	}
}

// TestHAControllerSpawn exercises the scale-out path in-process: a
// leader node with a real SpawnShards-backed Scaler must spawn a shard
// when queues stay deep at max boost, and drain it when the breach
// clears. The parent owns the proc set, so no grandchildren leak.
func TestHAControllerSpawn(t *testing.T) {
	if testing.Short() {
		t.Skip("process chaos: skipped in -short")
	}
	shards, err := fleetrpc.SpawnShards(2, fleetrpc.ShardConf{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shards.Close)

	scaler := &procScaler{}
	t.Cleanup(scaler.close)
	fcfg := fleetrpc.DefaultConfig(shards.Addrs())
	fcfg.ProbeInterval = 20 * time.Millisecond
	node, err := fleetha.NewNode(fleetha.Config{
		ID:        0,
		Peers:     []string{"127.0.0.1:0"}, // self only; no live peers
		Shards:    shards.Addrs(),
		Lease:     100 * time.Millisecond,
		Heartbeat: 25 * time.Millisecond,
		Fleet:     fcfg,
		Scaler:    scaler,
		// Wide SLO margins: under -race a genuine solve can cost tens of
		// ms, and the latency histogram's power-of-two buckets mean the
		// post-clear p999 lands on 16.4ms or 32.8ms — the clear threshold
		// (SLO/2 = 35ms) must sit above both.
		Controller: &fleetha.ControllerConfig{
			SLO:              70 * time.Millisecond,
			Window:           120 * time.Millisecond,
			BreachAfter:      1,
			ClearAfter:       1,
			CooldownWindows:  1,
			MaxBoost:         1,
			HotK:             1,
			SpawnQueueDepth:  1, // any queue at max boost escalates
			MaxShards:        3,
			MinWindowSamples: 1,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)

	deadline := time.Now().Add(5 * time.Second)
	for node.Role() != fleetha.Leader {
		if time.Now().After(deadline) {
			t.Fatal("single node never led")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx := context.Background()
	for _, addr := range shards.Addrs() {
		if err := fleetrpc.NewClient(addr).SetChaosDelay(ctx, 100); err != nil {
			t.Fatal(err)
		}
	}
	gen, _ := matgen.Lookup("SHERMAN4")
	a := gen.Generate(0.25)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	wire, err := fleetrpc.WireMatrix(a), error(nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := node.SubmitWire(ctx, wire)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
				node.Solve(sctx, h, b) //gesp:errok — load generator; failures surface via trace assertions
				cancel()
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()

	deadline = time.Now().Add(20 * time.Second)
	for {
		var spawned bool
		for _, d := range node.Trace() {
			if d.Action == fleetha.ActSpawn {
				spawned = true
			}
		}
		if spawned {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("controller never spawned; trace: %+v", node.Trace())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// clear the straggle → controller must eventually drain the spawn
	for _, addr := range shards.Addrs() {
		if err := fleetrpc.NewClient(addr).SetChaosDelay(ctx, 0); err != nil {
			t.Fatal(err)
		}
	}
	deadline = time.Now().Add(20 * time.Second)
	for {
		var drained bool
		for _, d := range node.Trace() {
			if d.Action == fleetha.ActDrain {
				drained = true
			}
		}
		if drained {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("controller never drained; trace: %+v", node.Trace())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// procScaler is a Scaler backed by real shard child processes, owned
// by the test parent.
type procScaler struct {
	mu   sync.Mutex
	sets []*faultsim.ProcSet
}

func (s *procScaler) Spawn() (string, error) {
	set, err := fleetrpc.SpawnShards(1, fleetrpc.ShardConf{})
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.sets = append(s.sets, set)
	s.mu.Unlock()
	return set.Addrs()[0], nil
}

func (s *procScaler) Drain(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, set := range s.sets {
		if len(set.Addrs()) == 1 && set.Addrs()[0] == addr {
			set.Close()
			s.sets = append(s.sets[:i], s.sets[i+1:]...)
			return nil
		}
	}
	return nil
}

func (s *procScaler) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, set := range s.sets {
		set.Close()
	}
	s.sets = nil
}
