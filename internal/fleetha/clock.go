// Package fleetha replicates the cross-process coordinator: N
// gesp-fleet nodes run a deterministic lease-based leader election
// over the same HTTP wire the shards speak, the leader streams its
// matrix registry, membership view, and ring generation to followers,
// and an SLO controller on the leader turns the fleet's published
// latency/heal/queue signals into replica promotions and shard
// scaling under hysteresis and cooldown. A SIGKILL'd leader fails
// over to the lowest-id survivor with zero lost handles and zero
// client-visible errors — the client follows 307 leader redirects and
// retries through the election with the fleetrpc backoff.
package fleetha

import (
	"sync"
	"time"
)

// Clock abstracts the node's time source: lease-expiry decisions go
// through it so election unit tests can drive the state machine with a
// manual clock instead of sleeping through real leases. Production
// nodes use WallClock.
type Clock interface {
	Now() time.Time
}

// WallClock is the real time source.
type WallClock struct{}

// Now returns the wall time.
//
//gesp:wallclock — the production HA node runs on real time by design
func (WallClock) Now() time.Time { return time.Now() }

// ManualClock is a test clock: time moves only when Advance is called.
type ManualClock struct {
	mu sync.Mutex
	//gesp:guardedby:mu
	t time.Time
}

// NewManualClock starts a manual clock at t.
func NewManualClock(t time.Time) *ManualClock {
	return &ManualClock{t: t}
}

// Now returns the clock's current position.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}
