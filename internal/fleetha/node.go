package fleetha

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"gesp/internal/fleet"
	"gesp/internal/fleetrpc"
	"gesp/internal/serve"
)

// Election design: deterministic bully-with-lease. Every node knows
// the full coordinator list (ids = indexes). The leader streams
// jittered heartbeats; a follower whose lease expires probes every
// peer's /ha/v1/status — if any *lower-id* peer answers, it defers
// (the lower id will claim, or already has); if none does, it claims
// leadership at term max(seen)+1. The term is the fencing token:
// followers reject replication from any term below their own, a
// deposed leader steps down the moment any response shows a higher
// term, and equal-term collisions (two nodes electing in the same
// lease window) resolve toward the lower id. Lowest live id always
// wins — no randomized votes, so the failover target is predictable
// and the election needs exactly one probe round.
//
// Durability: the leader acks a client submit only after a majority
// of the coordinator set holds the registry entry — itself plus
// floor(N/2) followers — and a claimant completes its election only
// after reading (and unioning) the replicas of enough peers that its
// read set intersects every possible write set: itself plus
// ceil(N/2)-1 peers. Any acked entry therefore lives on at least one
// node the winner read, whichever follower wins — the lowest live id
// never takes over with a registry missing an acked handle, even when
// the ack landed on a different follower. Solves are idempotent and
// stateless, so a stale leader serving one last solve is harmless;
// the fencing protects the registry and membership view. The price is
// availability: with fewer than a majority of coordinators reachable,
// submits fail retryably and takeovers wait (lone-node and two-node
// deployments degenerate gracefully — the only follower holds every
// acked entry, so it may claim alone).

// Scaler provisions shard processes for the SLO controller. Spawn
// returns the new shard's address; Drain retires one previously
// spawned at addr (called after the fleet has drained it from the
// ring).
type Scaler interface {
	Spawn() (addr string, err error)
	Drain(addr string) error
}

// Role is a node's election position.
type Role int32

const (
	Follower Role = iota
	Leader
)

func (r Role) String() string {
	if r == Leader {
		return RoleLeader
	}
	return RoleFollower
}

// Config parameterizes one coordinator node.
type Config struct {
	// ID is this node's index in Peers.
	ID int
	// Peers is the full coordinator address list, every node the same
	// order — ids are indexes.
	Peers []string
	// Shards is the initial shard address list (the leader's fleet
	// membership; followers learn the live view from the stream).
	Shards []string
	// Lease is how long a follower tolerates heartbeat silence before
	// probing for an election (0 takes 1s). Failover detection latency
	// is roughly one lease plus one probe round.
	Lease time.Duration
	// Heartbeat is the leader's replication cadence (0 takes Lease/4,
	// and is clamped to at most Lease/3 so a healthy leader can always
	// refresh the lease with margin).
	Heartbeat time.Duration
	// Fleet is the template for the leader's shard coordinator; Addrs,
	// SeedRegistry, and DeadMembers are overwritten at takeover.
	Fleet fleetrpc.Config
	// Controller, when non-nil, runs the SLO control loop on the leader.
	Controller *ControllerConfig
	// Scaler backs the controller's spawn/drain decisions; nil disables
	// them (promote/demote still run).
	Scaler Scaler
	// Clock is the node's time source (WallClock when nil).
	Clock Clock
	// Seed drives election jitter; 0 takes ID+1 so co-started nodes
	// still draw different schedules.
	Seed int64
	// Logf, when set, receives one line per election event (takeover,
	// step-down, deposition) and controller decision.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Lease <= 0 {
		c.Lease = time.Second
	}
	if c.Heartbeat <= 0 || c.Heartbeat > c.Lease/3 {
		c.Heartbeat = c.Lease / 4
	}
	if c.Clock == nil {
		c.Clock = WallClock{}
	}
	if c.Seed == 0 {
		c.Seed = int64(c.ID) + 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// peerRepl is the leader's per-follower replication bookkeeping.
type peerRepl struct {
	// acked holds the handles this follower has confirmed; entries not
	// in it ride the next heartbeat.
	acked map[string]bool
	// needFull forces a snapshot on the next contact (set at takeover —
	// a new leader cannot know what its predecessor streamed where).
	needFull bool
}

// Node is one replicated coordinator.
type Node struct {
	cfg Config
	clk Clock

	mu sync.Mutex
	//gesp:guardedby:mu
	role Role
	//gesp:guardedby:mu
	term uint64
	//gesp:guardedby:mu
	leaderID int
	//gesp:guardedby:mu
	leaderAddr string
	//gesp:guardedby:mu
	lastBeat time.Time
	//gesp:guardedby:mu
	fleet *fleetrpc.Fleet
	//gesp:guardedby:mu
	repl map[int]*peerRepl
	//gesp:guardedby:mu
	seq uint64
	//gesp:guardedby:mu
	rng *rand.Rand
	//gesp:guardedby:mu
	trace []Decision
	//gesp:guardedby:mu
	ctrl *Controller
	//gesp:guardedby:mu
	lastCtrl time.Time
	//gesp:guardedby:mu
	prevLatCounts [fleet.LatBuckets]uint64
	//gesp:guardedby:mu
	prevLatTotal uint64
	//gesp:guardedby:mu
	prevStats fleetrpc.Stats
	//gesp:guardedby:mu
	spawnedShards []spawnedShard

	state *replState
	peers []*haPeer // nil at own index

	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup
}

// haPeer is one fellow coordinator.
type haPeer struct {
	id   int
	addr string
	hc   *http.Client
}

// spawnedShard records one controller-spawned shard by the member id
// AddMember assigned it — drains go by id, not by address, because
// member ids are append-only while an OS-recycled port can make a new
// shard reuse a dead member's address.
type spawnedShard struct {
	id   int
	addr string
}

// submitAcksNeeded is how many follower acks a submit requires before
// the client is acked: floor(N/2), which with the leader itself makes
// a majority of the coordinator set.
func (n *Node) submitAcksNeeded() int {
	return len(n.cfg.Peers) / 2
}

// electionReadsNeeded is how many peer replicas (besides our own) a
// claimant must fetch and union before taking over: the read set
// {self + fetched} must intersect every write set {old leader +
// floor(N/2) followers}, which needs ceil(N/2) reads total.
func (n *Node) electionReadsNeeded() int {
	return (len(n.cfg.Peers)+1)/2 - 1
}

// NewNode builds and starts a coordinator node. Every node starts as
// a follower with a fresh lease; the lowest live id claims leadership
// one lease later (or immediately adopts an existing leader's first
// heartbeat).
func NewNode(cfg Config) (*Node, error) {
	if cfg.ID < 0 || cfg.ID >= len(cfg.Peers) {
		return nil, fmt.Errorf("fleetha: node id %d outside peer list of %d", cfg.ID, len(cfg.Peers))
	}
	cfg.fill()
	n := &Node{
		cfg:      cfg,
		clk:      cfg.Clock,
		leaderID: -1,
		state:    newReplState(cfg.Shards),
		repl:     make(map[int]*peerRepl),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		stop:     make(chan struct{}),
	}
	n.lastBeat = n.clk.Now()
	n.peers = make([]*haPeer, len(cfg.Peers))
	for i, addr := range cfg.Peers {
		if i == cfg.ID {
			continue
		}
		n.peers[i] = &haPeer{id: i, addr: addr, hc: newPooledHTTPClient()}
	}
	n.wg.Add(1)
	go n.run()
	return n, nil
}

// Close stops the node, closing its fleet if it was leading.
func (n *Node) Close() {
	n.stopped.Do(func() { close(n.stop) })
	n.wg.Wait()
	n.mu.Lock()
	f := n.fleet
	n.fleet = nil
	n.mu.Unlock()
	if f != nil {
		f.Close()
	}
}

// run is the node's single control goroutine: lease checks as
// follower, heartbeat/replication broadcasts and controller windows as
// leader. Ticks are jittered so co-started nodes drift apart.
func (n *Node) run() {
	defer n.wg.Done()
	t := time.NewTimer(n.tickWait())
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.tick()
			t.Reset(n.tickWait())
		}
	}
}

func (n *Node) tickWait() time.Duration {
	n.mu.Lock()
	u := n.rng.Float64()
	n.mu.Unlock()
	base := n.cfg.Heartbeat
	return time.Duration(float64(base) * (0.8 + 0.4*u))
}

// tick runs one control step.
func (n *Node) tick() {
	n.mu.Lock()
	role := n.role
	now := n.clk.Now()
	leaseExpired := role == Follower && now.Sub(n.lastBeat) > n.leaseJitteredLocked()
	n.mu.Unlock()
	switch {
	case role == Leader:
		n.broadcastReplicate(nil)
		n.controllerTick(now)
	case leaseExpired:
		n.runElection(now)
	}
}

// leaseJitteredLocked widens the lease by up to +30% from the seeded
// source so co-expiring followers don't probe in lockstep.
//
//gesp:holds:n.mu
func (n *Node) leaseJitteredLocked() time.Duration {
	return time.Duration(float64(n.cfg.Lease) * (1 + 0.3*n.rng.Float64()))
}

// runElection probes every peer; any reachable lower id means defer,
// none means claim — but only after reading a quorum of peer replicas
// and unioning them into our own (see the durability comment above):
// the winner must hold every handle any follower acked, not just the
// ones the old leader happened to stream to *us*.
func (n *Node) runElection(now time.Time) {
	type probeRes struct {
		id int
		st StatusResponse
		ok bool
	}
	results := make(chan probeRes, len(n.peers))
	probes := 0
	for _, p := range n.peers {
		if p == nil {
			continue
		}
		probes++
		go func(p *haPeer) {
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.Lease/2)
			defer cancel()
			var st StatusResponse
			err := haDo(ctx, p.hc, p.addr, http.MethodGet, "/ha/v1/status", nil, &st)
			results <- probeRes{id: p.id, st: st, ok: err == nil}
		}(p)
	}
	var maxTerm uint64
	lowerAlive := false
	leaderSeen := -1
	leaderAddr := ""
	var leaderTerm uint64
	var reachable []int
	for i := 0; i < probes; i++ {
		r := <-results
		if !r.ok {
			continue
		}
		reachable = append(reachable, r.id)
		if r.st.Term > maxTerm {
			maxTerm = r.st.Term
		}
		if r.id < n.cfg.ID {
			lowerAlive = true
		}
		// a status is self-describing: a peer claiming leadership names
		// itself. A mismatched or out-of-range id is a misconfigured peer
		// — ignore its claim rather than index Peers with it and panic.
		if r.st.Role == RoleLeader && r.st.ID == r.id && r.st.Term >= leaderTerm {
			leaderSeen, leaderAddr, leaderTerm = r.id, n.cfg.Peers[r.id], r.st.Term
		}
	}
	n.mu.Lock()
	if n.role != Follower {
		n.mu.Unlock()
		return
	}
	if n.term > maxTerm {
		maxTerm = n.term
	}
	if lowerAlive || leaderSeen >= 0 {
		// a lower id is alive (it will claim, or already leads) or some
		// peer is leading: extend the lease and adopt what we learned
		n.lastBeat = n.clk.Now()
		if leaderSeen >= 0 && leaderTerm >= n.term {
			n.term = leaderTerm
			n.leaderID = leaderSeen
			n.leaderAddr = leaderAddr
		}
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	if !n.readQuorum(reachable) {
		// fewer than a quorum of replicas readable: an acked entry could
		// live only on an unreachable peer, so taking over now could
		// violate the durability contract. Extend the lease and retry.
		n.cfg.Logf("fleetha node %d: deferring takeover: %d/%d peer replicas readable, need %d",
			n.cfg.ID, len(reachable), probes, n.electionReadsNeeded())
		n.mu.Lock()
		n.lastBeat = n.clk.Now()
		n.mu.Unlock()
		return
	}
	n.becomeLeader(maxTerm+1, now)
}

// readQuorum fetches and unions the exported replicas of the probed
// peers, reporting whether enough succeeded that our merged state is
// guaranteed to cover every majority-acked entry.
func (n *Node) readQuorum(reachable []int) bool {
	need := n.electionReadsNeeded()
	if need == 0 {
		return true
	}
	ch := make(chan bool, len(reachable))
	launched := 0
	for _, id := range reachable {
		p := n.peers[id]
		if p == nil {
			continue
		}
		launched++
		go func(p *haPeer) {
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.Lease/2)
			defer cancel()
			var st StateResponse
			if err := haDo(ctx, p.hc, p.addr, http.MethodGet, "/ha/v1/state", nil, &st); err != nil {
				ch <- false
				return
			}
			n.state.mergeRemote(st)
			ch <- true
		}(p)
	}
	fetched := 0
	for i := 0; i < launched; i++ {
		if <-ch {
			fetched++
		}
	}
	return fetched >= need
}

// becomeLeader builds a fleet seeded with the replicated registry and
// membership view, claims the term, and announces with a full
// snapshot broadcast. The snapshot and the role flip are made atomic
// by the replState generation: a replicate from a still-live old
// leader that lands (and is acked) between the snapshot and the flip
// bumps the generation, and the flip is retried from a fresher
// snapshot — so no entry can be acked to the old leader yet missing
// from the new leader's seeded fleet. The retry window is one fleet
// construction (no network), so a live old leader cannot starve it;
// once the flip lands, its next batch is term-fenced and un-acked.
func (n *Node) becomeLeader(term uint64, now time.Time) {
	for {
		registry, shards, dead, gen := n.state.snapshot()
		fcfg := n.cfg.Fleet
		fcfg.Addrs = shards
		fcfg.SeedRegistry = registry
		fcfg.DeadMembers = dead
		if fcfg.Seed == 0 {
			fcfg.Seed = n.cfg.Seed
		}
		fl, err := fleetrpc.New(fcfg)
		if err != nil {
			n.cfg.Logf("fleetha node %d: cannot take leadership: %v", n.cfg.ID, err)
			n.mu.Lock()
			n.lastBeat = n.clk.Now()
			n.mu.Unlock()
			return
		}
		n.mu.Lock()
		if n.role == Leader || n.term >= term {
			// lost a race with an incoming higher-term heartbeat
			n.mu.Unlock()
			fl.Close()
			return
		}
		if n.state.generation() != gen {
			// an entry was replicated to us (and acked to the old leader)
			// while the fleet was building; rebuild from a fresh snapshot
			n.mu.Unlock()
			fl.Close()
			continue
		}
		n.role = Leader
		n.term = term
		n.leaderID = n.cfg.ID
		n.leaderAddr = n.cfg.Peers[n.cfg.ID]
		n.fleet = fl
		for _, p := range n.peers {
			if p != nil {
				n.repl[p.id] = &peerRepl{acked: make(map[string]bool), needFull: true}
			}
		}
		if n.ctrl == nil && n.cfg.Controller != nil {
			cc := *n.cfg.Controller
			if n.cfg.Scaler == nil {
				// no Scaler: a Spawn decision could never be applied, so
				// never emit one — promotion/demotion remain available
				cc.SpawnQueueDepth, cc.MaxShards = 0, 0
			}
			n.ctrl = NewController(cc)
		}
		n.lastCtrl = now
		n.prevLatCounts, n.prevLatTotal = fl.LatSnapshot()
		n.prevStats = fl.Stats()
		n.mu.Unlock()
		n.cfg.Logf("fleetha node %d: leading at term %d (%d seeded handles, %d shards, %d dead)",
			n.cfg.ID, term, len(registry), len(shards), len(dead))
		n.broadcastReplicate(nil)
		return
	}
}

// stepDown demotes a deposed leader: the fleet's registry and
// membership fold back into the replica state (nothing newer than the
// last stream is lost locally) and the fleet closes.
func (n *Node) stepDown(newTerm uint64, newLeaderID int) {
	n.mu.Lock()
	if n.role != Leader {
		if newTerm > n.term {
			n.term = newTerm
		}
		n.mu.Unlock()
		return
	}
	fl := n.fleet
	n.fleet = nil
	n.role = Follower
	n.term = newTerm
	n.leaderID = newLeaderID
	if newLeaderID >= 0 && newLeaderID < len(n.cfg.Peers) {
		n.leaderAddr = n.cfg.Peers[newLeaderID]
	} else {
		n.leaderAddr = ""
	}
	n.lastBeat = n.clk.Now()
	n.mu.Unlock()
	if fl != nil {
		n.state.mergeFromFleet(fl.Registry(), fl.Addrs(), fl.DeadIDs())
		fl.Close()
	}
	n.cfg.Logf("fleetha node %d: stepping down to term %d (leader %d)", n.cfg.ID, newTerm, newLeaderID)
}

// buildReplicate assembles one peer's batch under mu: full snapshot on
// first contact, un-acked entries after. extra (a just-submitted
// entry) rides along regardless.
func (n *Node) buildReplicate(p *haPeer, extra []RegistryEntry) (ReplicateRequest, []string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != Leader || n.fleet == nil {
		return ReplicateRequest{}, nil, false
	}
	pr := n.repl[p.id]
	if pr == nil {
		pr = &peerRepl{acked: make(map[string]bool), needFull: true}
		n.repl[p.id] = pr
	}
	n.seq++
	req := ReplicateRequest{
		Term:       n.term,
		LeaderID:   n.cfg.ID,
		LeaderAddr: n.cfg.Peers[n.cfg.ID],
		Seq:        n.seq,
		Full:       pr.needFull,
		Shards:     n.fleet.Addrs(),
		Dead:       n.fleet.DeadIDs(),
		Epoch:      n.seq,
		RingGen:    n.fleet.RingGen(),
	}
	var sent []string
	reg := n.fleet.Registry()
	//gesp:unordered — entries are keyed by handle on the receiver; batch order is irrelevant
	for h, w := range reg {
		hs := h.String()
		if pr.needFull || !pr.acked[hs] {
			req.Entries = append(req.Entries, RegistryEntry{Handle: hs, Matrix: w})
			sent = append(sent, hs)
		}
	}
	for _, e := range extra {
		if !pr.acked[e.Handle] {
			req.Entries = append(req.Entries, e)
			sent = append(sent, e.Handle)
		}
	}
	return req, sent, true
}

// broadcastReplicate streams one batch to every peer and returns how
// many acked. A response carrying a higher term — or an equal term
// from a lower id — deposes this leader on the spot.
func (n *Node) broadcastReplicate(extra []RegistryEntry) (acks int) {
	type res struct {
		p    *haPeer
		sent []string
		resp ReplicateResponse
		err  error
	}
	var live []*haPeer
	for _, p := range n.peers {
		if p != nil {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return 0
	}
	ch := make(chan res, len(live))
	launched := 0
	for _, p := range live {
		req, sent, ok := n.buildReplicate(p, extra)
		if !ok {
			break
		}
		launched++
		go func(p *haPeer, req ReplicateRequest, sent []string) {
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.Lease/2)
			defer cancel()
			var resp ReplicateResponse
			err := haDo(ctx, p.hc, p.addr, http.MethodPost, "/ha/v1/replicate", req, &resp)
			ch <- res{p: p, sent: sent, resp: resp, err: err}
		}(p, req, sent)
	}
	for i := 0; i < launched; i++ {
		r := <-ch
		if r.err != nil {
			continue
		}
		n.mu.Lock()
		myTerm := n.term
		n.mu.Unlock()
		if !r.resp.OK {
			if r.resp.Term > myTerm || (r.resp.Term == myTerm && r.p.id < n.cfg.ID) {
				// fenced: a newer (or lower-id same-term) leader exists
				n.stepDown(r.resp.Term, -1)
			}
			continue
		}
		acks++
		n.mu.Lock()
		if pr := n.repl[r.p.id]; pr != nil {
			pr.needFull = false
			for _, hs := range r.sent {
				pr.acked[hs] = true
			}
		}
		n.mu.Unlock()
	}
	return acks
}

// handleReplicate is the follower side of the stream: term fencing,
// then state application. The fence check and the apply hold n.mu
// together: a batch must not slip in between becomeLeader's snapshot
// generation check and its role flip, or the old leader would ack a
// submit whose entry the new leader's fleet never saw. (Lock order is
// always n.mu → state.mu; no path takes them reversed.)
func (n *Node) handleReplicate(req ReplicateRequest) ReplicateResponse {
	n.mu.Lock()
	switch {
	case req.Term < n.term:
		resp := ReplicateResponse{OK: false, Term: n.term}
		n.mu.Unlock()
		return resp
	case req.Term == n.term && n.role == Leader && req.LeaderID > n.cfg.ID:
		// equal-term collision, we are the lower id: reject; the sender
		// steps down on seeing our id
		resp := ReplicateResponse{OK: false, Term: n.term}
		n.mu.Unlock()
		return resp
	case n.role == Leader:
		// deposed by a higher term (or an equal-term lower id)
		n.mu.Unlock()
		n.stepDown(req.Term, req.LeaderID)
		n.mu.Lock()
		if req.Term < n.term {
			// the world moved while we were stepping down
			resp := ReplicateResponse{OK: false, Term: n.term}
			n.mu.Unlock()
			return resp
		}
	}
	n.term = req.Term
	n.leaderID = req.LeaderID
	n.leaderAddr = req.LeaderAddr
	n.lastBeat = n.clk.Now()
	applied, err := n.state.apply(req)
	n.mu.Unlock()
	if err != nil {
		return ReplicateResponse{OK: false, Term: req.Term, AppliedSeq: applied}
	}
	return ReplicateResponse{OK: true, Term: req.Term, AppliedSeq: applied}
}

// Status snapshots the node's election view.
func (n *Node) Status() StatusResponse {
	n.mu.Lock()
	st := StatusResponse{
		ID:       n.cfg.ID,
		Term:     n.term,
		Role:     n.role.String(),
		LeaderID: n.leaderID,
	}
	if n.leaderID >= 0 && n.leaderID < len(n.cfg.Peers) {
		st.LeaderAddr = n.cfg.Peers[n.leaderID]
	}
	fl := n.fleet
	n.mu.Unlock()
	if fl != nil {
		st.RegistryLen = fl.RegistryLen()
		st.RingGen = fl.RingGen()
		n.mu.Lock()
		st.AppliedSeq = n.seq
		st.Epoch = n.seq
		n.mu.Unlock()
	} else {
		st.AppliedSeq, st.RegistryLen, st.Epoch, st.RingGen = n.state.stats()
	}
	return st
}

// ExportState dumps the node's replica — the live fleet view when
// leading, the replicated state otherwise — for a peer's read-quorum
// fetch during its election.
func (n *Node) ExportState() StateResponse {
	n.mu.Lock()
	fl := n.fleet
	term := n.term
	seq := n.seq
	n.mu.Unlock()
	var st StateResponse
	if fl != nil {
		reg := fl.Registry()
		st = StateResponse{
			AppliedSeq: seq,
			Shards:     fl.Addrs(),
			Dead:       fl.DeadIDs(),
			Epoch:      seq,
			RingGen:    fl.RingGen(),
		}
		st.Entries = make([]RegistryEntry, 0, len(reg))
		//gesp:unordered — entries are keyed by handle on the receiver; export order is irrelevant
		for h, w := range reg {
			st.Entries = append(st.Entries, RegistryEntry{Handle: h.String(), Matrix: w})
		}
	} else {
		st = n.state.export()
	}
	st.ID, st.Term = n.cfg.ID, term
	return st
}

// Role reports the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Term reports the node's current term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// Fleet exposes the leader's shard coordinator (nil on followers).
func (n *Node) Fleet() *fleetrpc.Fleet {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fleet
}

// Trace snapshots the controller decision log.
func (n *Node) Trace() []Decision {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]Decision(nil), n.trace...)
}

// RegistryLen reports the replicated (follower) or live (leader)
// registry size.
func (n *Node) RegistryLen() int {
	n.mu.Lock()
	fl := n.fleet
	n.mu.Unlock()
	if fl != nil {
		return fl.RegistryLen()
	}
	_, l, _, _ := n.state.stats()
	return l
}

// errNotLeader marks a request that must go to the leader.
var errNotLeader = errors.New("fleetha: not the leader")

// leaderFleet returns the fleet if this node leads, or the redirect
// target.
func (n *Node) leaderFleet() (*fleetrpc.Fleet, string, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == Leader && n.fleet != nil {
		return n.fleet, "", nil
	}
	return nil, n.leaderAddr, errNotLeader
}

// SubmitWire registers a matrix on the leading node: factor on the
// shards, then replicate the registry entry to floor(N/2) followers —
// a majority of the coordinator set counting the leader — before
// acking. Paired with the election's read-quorum, this is the
// durability contract that makes leader SIGKILL lose nothing: every
// possible winner's read set intersects the entry's write set.
func (n *Node) SubmitWire(ctx context.Context, wire fleetrpc.MatrixRequest) (serve.Handle, error) {
	fl, _, err := n.leaderFleet()
	if err != nil {
		return serve.Handle{}, err
	}
	a, err := fleetrpc.AssembleMatrix(wire)
	if err != nil {
		return serve.Handle{}, err
	}
	h, err := fl.SubmitCtx(ctx, a)
	if err != nil {
		return serve.Handle{}, err
	}
	if need := n.submitAcksNeeded(); need > 0 {
		acks := n.broadcastReplicate([]RegistryEntry{{Handle: h.String(), Matrix: wire}})
		if acks < need {
			n.mu.Lock()
			stillLeading := n.role == Leader
			n.mu.Unlock()
			if !stillLeading {
				return serve.Handle{}, errNotLeader
			}
			return serve.Handle{}, &fleetrpc.RemoteError{
				Status: http.StatusServiceUnavailable,
				Msg: fmt.Sprintf("fleetha: %d of %d required follower acks for the registry entry; retry",
					acks, need),
			}
		}
	}
	return h, nil
}

// Solve routes one right-hand side through the leading node's fleet.
func (n *Node) Solve(ctx context.Context, h serve.Handle, b []float64) ([]float64, error) {
	fl, _, err := n.leaderFleet()
	if err != nil {
		return nil, err
	}
	return fl.SolveCtx(ctx, h, b)
}
