package fleetha

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"gesp/internal/fleetrpc"
	"gesp/internal/serve"
	"gesp/internal/sparse"
)

// newPooledHTTPClient builds an HTTP client with its own cloned
// transport, so closing one peer's idle sockets never touches
// another's pool.
func newPooledHTTPClient() *http.Client {
	cli := &http.Client{
		// HA calls follow redirects by hand — a replicate must never be
		// silently re-routed.
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	if t, ok := http.DefaultTransport.(*http.Transport); ok {
		cli.Transport = t.Clone()
	}
	return cli
}

// haDo posts (or gets) one JSON request to addr+path and decodes the
// response, with the fleetrpc error taxonomy: non-200 decodes into
// *fleetrpc.RemoteError, transport failures wrap ErrUnreachable.
func haDo(ctx context.Context, hc *http.Client, addr, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("fleetha: marshal %s body: %w", path, err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, "http://"+addr+path, body)
	if err != nil {
		return fmt.Errorf("fleetha: build %s request: %w", path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := hc.Do(req)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return fmt.Errorf("%w: %s: %v", fleetrpc.ErrUnreachable, addr, err)
	}
	//gesp:errok — close of a fully-read (or error) response body; nothing to recover
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		re := &fleetrpc.RemoteError{Status: resp.StatusCode}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, perr := strconv.Atoi(ra); perr == nil && secs > 0 {
				re.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		var eres fleetrpc.ErrorResponse
		if derr := json.NewDecoder(resp.Body).Decode(&eres); derr == nil && eres.Error != "" {
			re.Msg = eres.Error
		} else {
			re.Msg = resp.Status
		}
		return re
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("%w: %s: bad response body: %v", fleetrpc.ErrUnreachable, addr, err)
	}
	return nil
}

// Client is the coordinator-fleet client: it knows every coordinator
// address, caches which one leads, follows 307/leader-hint redirects,
// and fails over with the fleetrpc backoff when the leader dies
// mid-election. A request issued the instant the leader is SIGKILL'd
// retries through the election and lands on the successor — the
// caller sees latency, never an error, as long as the retry budget
// covers the lease.
type Client struct {
	coords []string
	retry  fleetrpc.Backoff
	// timeout bounds one attempt against one coordinator.
	timeout time.Duration

	mu sync.Mutex
	//gesp:guardedby:mu
	leader string // cached leader address ("" = unknown)
	//gesp:guardedby:mu
	failStreak int // consecutive failed attempts; reset on any success
	//gesp:guardedby:mu
	rng *rand.Rand

	hc *http.Client
}

// ClientConfig parameterizes the HA client.
type ClientConfig struct {
	// Coordinators is the full coordinator address list.
	Coordinators []string
	// Retry is the per-request backoff ladder. The zero value takes a
	// failover-tuned default: more attempts than the shard client so a
	// request issued mid-election survives a full lease.
	Retry fleetrpc.Backoff
	// AttemptTimeout bounds one attempt (2s when 0).
	AttemptTimeout time.Duration
	// Seed drives the retry jitter (0 takes 1).
	Seed int64
}

// NewClient builds an HA client over the coordinator list.
func NewClient(cfg ClientConfig) (*Client, error) {
	if len(cfg.Coordinators) == 0 {
		return nil, fmt.Errorf("fleetha: no coordinator addresses")
	}
	if cfg.Retry.Attempts == 0 {
		cfg.Retry = fleetrpc.Backoff{Attempts: 10, Base: 20 * time.Millisecond, Max: 300 * time.Millisecond}
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Client{
		coords:  append([]string(nil), cfg.Coordinators...),
		retry:   cfg.Retry,
		timeout: cfg.AttemptTimeout,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		hc:      newPooledHTTPClient(),
	}, nil
}

// targets returns the attempt order: cached leader first, then every
// coordinator (the leader again among them — a duplicate cheap try
// beats a miss).
func (c *Client) targets() []string {
	c.mu.Lock()
	leader := c.leader
	c.mu.Unlock()
	out := make([]string, 0, len(c.coords)+1)
	if leader != "" {
		out = append(out, leader)
	}
	out = append(out, c.coords...)
	return out
}

// noteSuccess caches the leader and resets the failure streak — the
// backoff-reset satellite's client-side half: a coordinator fleet
// that just recovered answers the next transient error at Base delay,
// not Max.
func (c *Client) noteSuccess(leader string) {
	c.mu.Lock()
	c.leader = leader
	c.failStreak = 0
	c.mu.Unlock()
}

func (c *Client) noteFailure() {
	c.mu.Lock()
	c.failStreak++
	c.mu.Unlock()
}

// do runs one logical request through leader discovery, redirect
// following, and the retry ladder.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var lastErr error
	for attempt := 0; attempt < c.retry.Attempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, attempt-1, fleetrpc.RetryAfterHint(lastErr)); err != nil {
				return err
			}
		}
		for _, addr := range c.targets() {
			actx, cancel := context.WithTimeout(ctx, c.timeout)
			err := c.doOnce(actx, addr, method, path, in, out)
			cancel()
			if err == nil {
				return nil
			}
			lastErr = err
			if !fleetrpc.Retryable(err) && !isRedirectMiss(err) {
				return err
			}
			if ctx.Err() != nil {
				return lastErr
			}
		}
		c.noteFailure()
	}
	return lastErr
}

// redirectMissError marks a redirect pointing at a node that is not
// (or no longer) the leader — retryable: the election is converging.
type redirectMissError struct{ to string }

func (e *redirectMissError) Error() string {
	return "fleetha: redirected to " + e.to + " which is not leading"
}

func isRedirectMiss(err error) bool {
	var rm *redirectMissError
	return errors.As(err, &rm)
}

// doOnce issues one attempt against one coordinator, following at
// most one redirect hop (the follower's 307 to the leader).
func (c *Client) doOnce(ctx context.Context, addr, method, path string, in, out any) error {
	hop := addr
	for redirects := 0; redirects < 2; redirects++ {
		status, location, err := c.raw(ctx, hop, method, path, in, out)
		if err != nil {
			return err
		}
		if status == http.StatusTemporaryRedirect {
			if location == "" || location == hop {
				return &redirectMissError{to: hop}
			}
			hop = location
			continue
		}
		c.noteSuccess(hop)
		return nil
	}
	return &redirectMissError{to: hop}
}

// raw performs one HTTP round trip; a 307 comes back as (status,
// leader-addr) instead of an error so doOnce can hop.
func (c *Client) raw(ctx context.Context, addr, method, path string, in, out any) (status int, location string, err error) {
	var body io.Reader
	if in != nil {
		buf, merr := json.Marshal(in)
		if merr != nil {
			return 0, "", fmt.Errorf("fleetha: marshal %s body: %w", path, merr)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, "http://"+addr+path, body)
	if err != nil {
		return 0, "", fmt.Errorf("fleetha: build %s request: %w", path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return 0, "", cerr
		}
		return 0, "", fmt.Errorf("%w: %s: %v", fleetrpc.ErrUnreachable, addr, err)
	}
	//gesp:errok — close of a fully-read (or error) response body; nothing to recover
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTemporaryRedirect {
		return resp.StatusCode, resp.Header.Get(LeaderHintHeader), nil
	}
	if resp.StatusCode != http.StatusOK {
		re := &fleetrpc.RemoteError{Status: resp.StatusCode}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, perr := strconv.Atoi(ra); perr == nil && secs > 0 {
				re.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		var eres fleetrpc.ErrorResponse
		if derr := json.NewDecoder(resp.Body).Decode(&eres); derr == nil && eres.Error != "" {
			re.Msg = eres.Error
		} else {
			re.Msg = resp.Status
		}
		return resp.StatusCode, "", re
	}
	if out != nil {
		if derr := json.NewDecoder(resp.Body).Decode(out); derr != nil {
			return resp.StatusCode, "", fmt.Errorf("%w: %s: bad response body: %v", fleetrpc.ErrUnreachable, addr, derr)
		}
	}
	return resp.StatusCode, "", nil
}

// sleep waits out one retry step, folding the failure streak into the
// schedule exactly like the shard coordinator does.
func (c *Client) sleep(ctx context.Context, attempt int, retryAfter time.Duration) error {
	c.mu.Lock()
	u := c.rng.Float64()
	streak := c.failStreak
	c.mu.Unlock()
	if streak > 4 {
		streak = 4
	}
	// The streak and the attempt index measure the same outage from two
	// clocks; charge the larger, not the sum, so a fresh request after
	// a long outage still starts near the ceiling while a mid-request
	// retry isn't double-billed.
	eff := attempt
	if streak > eff {
		eff = streak
	}
	w := c.retry.Wait(eff, u, retryAfter)
	t := time.NewTimer(w)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit registers a matrix with the coordinator fleet.
func (c *Client) Submit(ctx context.Context, a *sparse.CSC) (serve.Handle, error) {
	var res fleetrpc.MatrixResponse
	if err := c.do(ctx, http.MethodPost, "/v1/matrix", fleetrpc.WireMatrix(a), &res); err != nil {
		return serve.Handle{}, err
	}
	return serve.ParseHandle(res.Handle)
}

// Solve routes one right-hand side.
func (c *Client) Solve(ctx context.Context, h serve.Handle, b []float64) ([]float64, error) {
	var res fleetrpc.SolveResponse
	if err := c.do(ctx, http.MethodPost, "/v1/solve", fleetrpc.SolveRequest{Handle: h.String(), B: b}, &res); err != nil {
		return nil, err
	}
	if len(res.X) != h.N {
		return nil, fmt.Errorf("%w: solution length %d, want %d", fleetrpc.ErrUnreachable, len(res.X), h.N)
	}
	return res.X, nil
}

// Stats fetches the leader's coordinator stats.
func (c *Client) Stats(ctx context.Context) (fleetrpc.Stats, error) {
	var res fleetrpc.Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &res)
	return res, err
}

// Status fetches one coordinator's election view directly (no
// redirect — status is answered by every node).
func (c *Client) Status(ctx context.Context, addr string) (StatusResponse, error) {
	var res StatusResponse
	err := haDo(ctx, c.hc, addr, http.MethodGet, "/ha/v1/status", nil, &res)
	return res, err
}

// Trace fetches the leader's controller decision log.
func (c *Client) Trace(ctx context.Context) (TraceResponse, error) {
	var res TraceResponse
	err := c.do(ctx, http.MethodGet, "/ha/v1/trace", nil, &res)
	return res, err
}

// Leader returns the cached leader address ("" when unknown).
func (c *Client) Leader() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leader
}
