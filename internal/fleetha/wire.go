package fleetha

import (
	"time"

	"gesp/internal/fleetrpc"
)

// The HA wire format rides the same HTTP+JSON transport as the shard
// protocol, under /ha/v1/. Three verbs: status (election probes and
// operator introspection), replicate (heartbeat + registry stream,
// one endpoint — a heartbeat is a replicate with no entries), and
// trace (the controller's decision log). Client-facing solve traffic
// uses the existing /v1/ shard-protocol paths on every node, with
// followers answering 307 redirects to the leader.

// RoleFollower/RoleLeader are the status wire values.
const (
	RoleFollower = "follower"
	RoleLeader   = "leader"
)

// StatusResponse is one node's election view — what peers read when
// deciding whether to defer, and what operators read to find the
// leader.
type StatusResponse struct {
	ID         int    `json:"id"`
	Term       uint64 `json:"term"`
	Role       string `json:"role"`
	LeaderID   int    `json:"leader_id"` // -1 when unknown
	LeaderAddr string `json:"leader_addr,omitempty"`
	// AppliedSeq is the follower's replication high-water mark;
	// RegistryLen its replicated handle count. On the leader these
	// describe its live fleet.
	AppliedSeq  uint64 `json:"applied_seq"`
	RegistryLen int    `json:"registry_len"`
	// Epoch is the membership epoch (monotonic per topology change) and
	// RingGen the leader's placement generation at last stream.
	Epoch   uint64 `json:"epoch"`
	RingGen uint64 `json:"ring_gen"`
}

// RegistryEntry is one replicated handle: the wire matrix under its
// serve handle, exactly what a takeover leader needs to seed its
// fleet's registry.
type RegistryEntry struct {
	Handle string                 `json:"handle"`
	Matrix fleetrpc.MatrixRequest `json:"matrix"`
}

// ReplicateRequest is the leader→follower stream: term-fenced
// heartbeat, registry entries the follower hasn't acked, and the
// leader's membership view. Full marks a snapshot (first contact each
// term): the follower replaces its registry instead of merging.
type ReplicateRequest struct {
	Term       uint64 `json:"term"`
	LeaderID   int    `json:"leader_id"`
	LeaderAddr string `json:"leader_addr"`
	// Seq is the leader's replication sequence for this batch; acks
	// carry it back so the leader knows the follower's high-water mark.
	Seq     uint64          `json:"seq"`
	Full    bool            `json:"full,omitempty"`
	Entries []RegistryEntry `json:"entries,omitempty"`
	// Shards/Dead/Epoch/RingGen are the leader's membership view: the
	// shard address list (ids = indexes), the dead ids, the epoch that
	// versions this view, and the leader's ring generation.
	Shards  []string `json:"shards"`
	Dead    []int    `json:"dead,omitempty"`
	Epoch   uint64   `json:"epoch"`
	RingGen uint64   `json:"ring_gen"`
}

// ReplicateResponse acks (or fences) a replicate. OK false with a
// higher Term is the deposition signal: the sender is a stale leader
// and must step down.
type ReplicateResponse struct {
	OK         bool   `json:"ok"`
	Term       uint64 `json:"term"`
	AppliedSeq uint64 `json:"applied_seq"`
}

// StateResponse is one node's exported replica — what an electing
// follower reads from every reachable peer (the read-quorum) so the
// union of a write-quorum ack and a read-quorum fetch always covers
// every acked handle, whichever follower wins the election.
type StateResponse struct {
	ID         int             `json:"id"`
	Term       uint64          `json:"term"`
	AppliedSeq uint64          `json:"applied_seq"`
	Entries    []RegistryEntry `json:"entries,omitempty"`
	Shards     []string        `json:"shards,omitempty"`
	Dead       []int           `json:"dead,omitempty"`
	Epoch      uint64          `json:"epoch"`
	RingGen    uint64          `json:"ring_gen"`
}

// TraceResponse is the controller's decision log.
type TraceResponse struct {
	Decisions []Decision `json:"decisions"`
}

// ConfigureRequest boots a spawned coordinator child: the re-exec
// payload only says "you are a coordinator"; the parent posts the full
// topology here once every child has announced its address (a child
// cannot know its peers' ports before they exist).
type ConfigureRequest struct {
	ID     int      `json:"id"`
	Peers  []string `json:"peers"` // all coordinator addrs, index = id
	Shards []string `json:"shards"`
	// LeaseMS/HeartbeatMS set the election timing (milliseconds on the
	// wire to keep the JSON obvious).
	LeaseMS     int64 `json:"lease_ms"`
	HeartbeatMS int64 `json:"heartbeat_ms"`
	Seed        int64 `json:"seed"`
	// Replication/HedgeAfterMS tune the leader's fleet; zero keeps the
	// fleetrpc defaults.
	Replication  int   `json:"replication,omitempty"`
	HedgeAfterMS int64 `json:"hedge_after_ms,omitempty"`
	// Controller, when non-nil, runs the SLO controller on the leader.
	Controller *ControllerConfig `json:"controller,omitempty"`
}

// lease and heartbeat convert the wire milliseconds.
func (c ConfigureRequest) lease() time.Duration {
	return time.Duration(c.LeaseMS) * time.Millisecond
}

func (c ConfigureRequest) heartbeat() time.Duration {
	return time.Duration(c.HeartbeatMS) * time.Millisecond
}
