package fleetha

import (
	"reflect"
	"testing"
	"time"
)

func ctrlConfig() ControllerConfig {
	return ControllerConfig{
		SLO:              50 * time.Millisecond,
		ClearFraction:    0.5,
		BreachAfter:      2,
		ClearAfter:       2,
		CooldownWindows:  3,
		MaxBoost:         2,
		HotK:             2,
		SpawnQueueDepth:  8,
		MaxShards:        4,
		MinWindowSamples: 10,
	}
}

func breachSig(p999 time.Duration) Signals {
	return Signals{P999: p999, Samples: 100, HotPatterns: []uint64{0xAA, 0xBB}, Shards: 2}
}

// TestControllerConvergence walks the acceptance scenario: a
// straggler breaches p999 → promote within the cooldown budget →
// breach clears → demote. The whole trajectory must hold the no-flap
// bound: at most one direction change per cooldown window.
func TestControllerConvergence(t *testing.T) {
	cfg := ctrlConfig()
	c := NewController(cfg)
	var all []Decision

	// two breach windows → exactly one promotion
	for i := 0; i < cfg.BreachAfter; i++ {
		all = append(all, c.Step(breachSig(80*time.Millisecond))...)
	}
	if len(all) != 1 || all[0].Action != ActPromote || all[0].Pattern != 0xAA {
		t.Fatalf("after breach streak: decisions %+v, want one promote of hottest", all)
	}
	if all[0].Boost != 1 {
		t.Fatalf("first promote boost = %d, want 1", all[0].Boost)
	}

	// continued breach inside the cooldown: silence, by design
	for i := 0; i < cfg.CooldownWindows; i++ {
		if ds := c.Step(breachSig(80 * time.Millisecond)); len(ds) != 0 {
			t.Fatalf("decision inside cooldown: %+v", ds)
		}
	}

	// the breach streak survived the cooldown, so the next window out
	// of it escalates the same pattern one step further
	second := c.Step(breachSig(80 * time.Millisecond))
	if len(second) != 1 || second[0].Action != ActPromote || second[0].Pattern != 0xAA || second[0].Boost != 2 {
		t.Fatalf("second escalation: %+v, want promote 0xAA to boost 2", second)
	}
	all = append(all, second...)

	// hysteresis-band windows drain the cooldown without feeding either
	// streak, then the breach clears: after ClearAfter clear windows,
	// one demote of the promoted pattern
	band := breachSig(35 * time.Millisecond)
	for i := 0; i < cfg.CooldownWindows; i++ {
		if ds := c.Step(band); len(ds) != 0 {
			t.Fatalf("decision in band during cooldown: %+v", ds)
		}
	}
	clear := breachSig(10 * time.Millisecond) // below ClearFraction*SLO
	var downs []Decision
	for i := 0; i < 20 && len(downs) < 1; i++ {
		downs = append(downs, c.Step(clear)...)
	}
	if len(downs) != 1 || downs[0].Action != ActDemote || downs[0].Pattern != 0xAA {
		t.Fatalf("after clear streak: %+v, want demote of 0xAA", downs)
	}
	all = append(all, downs...)

	assertNoFlap(t, all, cfg.CooldownWindows)
}

// assertNoFlap checks ≤1 direction change per cooldown window: any
// two consecutive decisions in opposite directions must be at least
// CooldownWindows windows apart.
func assertNoFlap(t *testing.T, ds []Decision, cooldown int) {
	t.Helper()
	dir := func(a Action) int {
		switch a {
		case ActPromote, ActSpawn:
			return +1
		case ActDemote, ActDrain:
			return -1
		}
		return 0
	}
	for i := 1; i < len(ds); i++ {
		if dir(ds[i].Action) != dir(ds[i-1].Action) {
			if gap := ds[i].Window - ds[i-1].Window; gap <= cooldown {
				t.Fatalf("flap: %s@w%d then %s@w%d (gap %d <= cooldown %d)",
					ds[i-1].Action, ds[i-1].Window, ds[i].Action, ds[i].Window, gap, cooldown)
			}
		}
	}
}

// stepNoting steps the controller and, like the live apply layer on a
// successful spawn, confirms any Spawn decision with NoteSpawned.
func stepNoting(c *Controller, sig Signals) []Decision {
	ds := c.Step(sig)
	for _, d := range ds {
		if d.Action == ActSpawn {
			c.NoteSpawned()
		}
	}
	return ds
}

// TestControllerEscalatesToSpawn: when every hot pattern is at
// MaxBoost and queues are deep, the next breach spawns a shard; when
// the breach clears, the drain comes before any demote (LIFO).
func TestControllerEscalatesToSpawn(t *testing.T) {
	cfg := ctrlConfig()
	c := NewController(cfg)
	sig := breachSig(80 * time.Millisecond)
	sig.QueueDepth = 20
	var got []Decision
	for i := 0; i < 60 && countAction(got, ActSpawn) == 0; i++ {
		got = append(got, stepNoting(c, sig)...)
	}
	if countAction(got, ActSpawn) != 1 {
		t.Fatalf("no spawn after sustained breach at max boost: %+v", got)
	}
	// both hot patterns must have been fully boosted first
	if n := countAction(got, ActPromote); n != 2*cfg.MaxBoost {
		t.Fatalf("spawn before exhausting boosts: %d promotes, want %d", n, 2*cfg.MaxBoost)
	}
	// clear: first relax must be the drain
	clear := breachSig(10 * time.Millisecond)
	var downs []Decision
	for i := 0; i < 60 && len(downs) == 0; i++ {
		downs = append(downs, c.Step(clear)...)
	}
	if len(downs) == 0 || downs[0].Action != ActDrain {
		t.Fatalf("first relax = %+v, want drain", downs)
	}
	assertNoFlap(t, append(got, downs...), cfg.CooldownWindows)
}

// TestControllerSpawnFailureNotCounted: a Spawn decision whose apply
// failed (no NoteSpawned) must not enter the controller's model — the
// first relax after the clear must demote a promotion, not emit a
// drain against a shard that never existed.
func TestControllerSpawnFailureNotCounted(t *testing.T) {
	cfg := ctrlConfig()
	c := NewController(cfg)
	sig := breachSig(80 * time.Millisecond)
	sig.QueueDepth = 20
	var got []Decision
	// breach to the spawn decision, but never confirm it — the apply
	// layer's Scaler failed
	for i := 0; i < 60 && countAction(got, ActSpawn) == 0; i++ {
		got = append(got, c.Step(sig)...)
	}
	if countAction(got, ActSpawn) != 1 {
		t.Fatalf("no spawn decision emitted: %+v", got)
	}
	clear := breachSig(10 * time.Millisecond)
	var downs []Decision
	for i := 0; i < 60 && len(downs) == 0; i++ {
		downs = append(downs, c.Step(clear)...)
	}
	if len(downs) == 0 {
		t.Fatal("no relax decision after the clear")
	}
	if downs[0].Action != ActDemote {
		t.Fatalf("first relax = %s, want demote (a failed spawn must not be drained)", downs[0].Action)
	}
}

func countAction(ds []Decision, a Action) int {
	n := 0
	for _, d := range ds {
		if d.Action == a {
			n++
		}
	}
	return n
}

// TestControllerHysteresisBand: p999 between ClearFraction·SLO and
// SLO must neither promote nor demote, and must break streaks — the
// no-flap property's middle ground.
func TestControllerHysteresisBand(t *testing.T) {
	cfg := ctrlConfig()
	c := NewController(cfg)
	band := breachSig(35 * time.Millisecond) // 0.5*50ms < 35ms < 50ms
	for i := 0; i < 30; i++ {
		if ds := c.Step(band); len(ds) != 0 {
			t.Fatalf("decision in hysteresis band: %+v", ds)
		}
	}
	// one breach window, then band: streak must have been broken
	c.Step(breachSig(80 * time.Millisecond))
	c.Step(band)
	if ds := c.Step(breachSig(80 * time.Millisecond)); len(ds) != 0 {
		t.Fatalf("band did not break the breach streak: %+v", ds)
	}
}

// TestControllerIgnoresThinWindows: a breach-looking window with too
// few samples is noise, not signal.
func TestControllerIgnoresThinWindows(t *testing.T) {
	cfg := ctrlConfig()
	c := NewController(cfg)
	thin := breachSig(500 * time.Millisecond)
	thin.Samples = 3
	for i := 0; i < 30; i++ {
		if ds := c.Step(thin); len(ds) != 0 {
			t.Fatalf("decision on %d samples: %+v", thin.Samples, ds)
		}
	}
}

// TestControllerReplay: Step is pure, so replaying a recorded signal
// trace reproduces the decision log exactly.
func TestControllerReplay(t *testing.T) {
	cfg := ctrlConfig()
	var trace []Signals
	for i := 0; i < 12; i++ {
		trace = append(trace, breachSig(80*time.Millisecond))
	}
	for i := 0; i < 12; i++ {
		trace = append(trace, breachSig(10*time.Millisecond))
	}
	live := NewController(cfg)
	var liveDs []Decision
	for _, s := range trace {
		liveDs = append(liveDs, live.Step(s)...)
	}
	if len(liveDs) == 0 {
		t.Fatal("trace produced no decisions; test is vacuous")
	}
	replayed := Replay(cfg, trace)
	if !reflect.DeepEqual(liveDs, replayed) {
		t.Fatalf("replay diverged:\nlive:   %+v\nreplay: %+v", liveDs, replayed)
	}
}
