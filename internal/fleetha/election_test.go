package fleetha

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gesp/internal/fleetrpc"
	"gesp/internal/matgen"
	"gesp/internal/serve"
	"gesp/internal/sparse"
)

const testScale = 0.25

func testbedSystem(t testing.TB, name string, valueSeed int64) (*sparse.CSC, []float64, []float64) {
	t.Helper()
	m, ok := matgen.Lookup(name)
	if !ok {
		t.Fatalf("testbed matrix %s missing", name)
	}
	a := m.Generate(testScale)
	if valueSeed != 0 {
		rng := rand.New(rand.NewSource(valueSeed))
		for k := range a.Val {
			a.Val[k] *= 1 + 0.1*rng.NormFloat64()
		}
	}
	want := make([]float64, a.Rows)
	for i := range want {
		want[i] = 1
	}
	b := make([]float64, a.Rows)
	a.MatVec(b, want)
	return a, b, want
}

func checkSolution(t *testing.T, x, want []float64) {
	t.Helper()
	if e := sparse.RelErrInf(x, want); e > 2e-3 {
		t.Fatalf("solution error %g", e)
	}
}

// testShardServers starts n in-process shard servers (the same mux
// the child processes serve, chaos-delay wrapper included).
func testShardServers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		svc := serve.New(serve.DefaultConfig())
		ts := httptest.NewServer(fleetrpc.WithChaosDelay(fleetrpc.NewServer(svc).Mux()))
		t.Cleanup(ts.Close)
		addrs[i] = strings.TrimPrefix(ts.URL, "http://")
	}
	return addrs
}

// haCluster is an in-process coordinator cluster: real HTTP between
// nodes, closable per node to simulate coordinator death.
type haCluster struct {
	nodes   []*Node
	servers []*httptest.Server
	addrs   []string
}

// startCluster boots n coordinators over the given shards. Nodes are
// created after every server exists (a node must know all peer
// addresses), with a handler indirection covering the gap.
func startCluster(t *testing.T, n int, shards []string, mut func(id int, cfg *Config)) *haCluster {
	t.Helper()
	c := &haCluster{nodes: make([]*Node, n), servers: make([]*httptest.Server, n), addrs: make([]string, n)}
	handlers := make([]atomic.Pointer[http.Handler], n)
	for i := 0; i < n; i++ {
		i := i
		notReady := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusServiceUnavailable)
		}))
		handlers[i].Store(&notReady)
		c.servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			(*handlers[i].Load()).ServeHTTP(w, r)
		}))
		c.addrs[i] = strings.TrimPrefix(c.servers[i].URL, "http://")
	}
	for i := 0; i < n; i++ {
		fcfg := fleetrpc.DefaultConfig(shards)
		fcfg.ProbeInterval = 20 * time.Millisecond
		fcfg.Retry = fleetrpc.Backoff{Attempts: 3, Base: 5 * time.Millisecond, Max: 40 * time.Millisecond}
		cfg := Config{
			ID:        i,
			Peers:     c.addrs,
			Shards:    shards,
			Lease:     150 * time.Millisecond,
			Heartbeat: 40 * time.Millisecond,
			Fleet:     fcfg,
			Logf:      t.Logf,
		}
		if mut != nil {
			mut(i, &cfg)
		}
		node, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.nodes[i] = node
		h := http.Handler(node.Mux())
		handlers[i].Store(&h)
	}
	t.Cleanup(func() {
		for i := range c.nodes {
			if c.nodes[i] != nil {
				c.nodes[i].Close()
			}
			c.servers[i].Close()
		}
	})
	return c
}

// killNode simulates coordinator death in-process: stop serving HTTP,
// then stop the node's loops. Peers see connection refused — the same
// signal a SIGKILL produces.
func (c *haCluster) killNode(i int) {
	c.servers[i].Close()
	c.nodes[i].Close()
	c.nodes[i] = nil
}

// waitLeader polls until some live node reports leading, returning
// its index.
func (c *haCluster) waitLeader(t *testing.T, timeout time.Duration) int {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for i, n := range c.nodes {
			if n != nil && n.Role() == Leader {
				return i
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no leader elected")
	return -1
}

// TestElectionLowestIDWins: from a cold start the lowest id claims,
// every follower learns the leader, and exactly one node leads.
func TestElectionLowestIDWins(t *testing.T) {
	shards := testShardServers(t, 2)
	c := startCluster(t, 3, shards, nil)
	leader := c.waitLeader(t, 3*time.Second)
	if leader != 0 {
		t.Fatalf("leader = node %d, want node 0 (lowest id)", leader)
	}
	// followers converge on the leader within a few heartbeats
	deadline := time.Now().Add(2 * time.Second)
	for _, i := range []int{1, 2} {
		for {
			st := c.nodes[i].Status()
			if st.Role == RoleFollower && st.LeaderID == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never learned the leader: %+v", i, st)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	leaders := 0
	for _, n := range c.nodes {
		if n.Role() == Leader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d concurrent leaders", leaders)
	}
}

// TestFailoverPreservesRegistry: handles submitted before the leader
// dies must solve after the failover — zero lost registry entries,
// served by the next-lowest id at a higher term.
func TestFailoverPreservesRegistry(t *testing.T) {
	shards := testShardServers(t, 2)
	c := startCluster(t, 3, shards, nil)
	if got := c.waitLeader(t, 3*time.Second); got != 0 {
		t.Fatalf("initial leader = %d", got)
	}
	oldTerm := c.nodes[0].Term()

	cli, err := NewClient(ClientConfig{Coordinators: c.addrs})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a, b, want := testbedSystem(t, "SHERMAN4", 1)
	h, err := cli.Submit(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := cli.Solve(ctx, h, b)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, x, want)

	// the followers must hold the entry before we kill the leader —
	// Submit's ack already guarantees ≥1 does; check replication state
	if n := c.nodes[1].RegistryLen() + c.nodes[2].RegistryLen(); n == 0 {
		t.Fatal("no follower holds the registry entry despite the submit ack")
	}

	c.killNode(0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if c.nodes[1].Role() == Leader {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node 1 never took over; status: %+v", c.nodes[1].Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if newTerm := c.nodes[1].Term(); newTerm <= oldTerm {
		t.Fatalf("takeover term %d not above old term %d", newTerm, oldTerm)
	}
	if n := c.nodes[1].RegistryLen(); n != 1 {
		t.Fatalf("takeover leader registry has %d entries, want 1", n)
	}
	// the pre-kill handle must solve through the new leader
	x2, err := cli.Solve(ctx, h, b)
	if err != nil {
		t.Fatalf("solve after failover: %v", err)
	}
	checkSolution(t, x2, want)
}

// TestTakeoverUnionsFollowerRegistries is the asymmetric-replication
// durability regression: an entry the old leader replicated to only
// the *higher-id* follower must survive a takeover by the lower-id
// follower — the claimant's read-quorum fetch must union the peer's
// registry before it seeds its fleet. Without the read quorum, node 1
// would win on id alone with an empty registry and its Full snapshot
// broadcast would erase the entry fleet-wide.
func TestTakeoverUnionsFollowerRegistries(t *testing.T) {
	shards := testShardServers(t, 2)
	c := startCluster(t, 3, shards, func(id int, cfg *Config) {
		// node 1 is the only node that can start an election; 0 and 2
		// hold their (huge) leases so the test controls the sequence
		cfg.Heartbeat = 50 * time.Millisecond
		if id == 1 {
			cfg.Lease = 300 * time.Millisecond
		} else {
			cfg.Lease = time.Hour
		}
	})

	// factor a real system on the shards through a throwaway direct
	// fleet, so the injected registry entry carries the true handle and
	// the shards already hold its factors
	a, b, want := testbedSystem(t, "SHERMAN4", 1)
	fcfg := fleetrpc.DefaultConfig(shards)
	fcfg.ProbeInterval = 20 * time.Millisecond
	direct, err := fleetrpc.New(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := direct.Submit(a)
	direct.Close()
	if err != nil {
		t.Fatal(err)
	}
	wire := fleetrpc.WireMatrix(a)

	// simulate the dying leader's asymmetric stream: the entry reached
	// only follower 2; follower 1 saw just a heartbeat at the same term
	if resp := c.nodes[2].handleReplicate(ReplicateRequest{
		Term: 5, LeaderID: 0, LeaderAddr: c.addrs[0], Shards: shards,
		Entries: []RegistryEntry{{Handle: h.String(), Matrix: wire}},
	}); !resp.OK {
		t.Fatalf("injected replicate rejected: %+v", resp)
	}
	if resp := c.nodes[1].handleReplicate(ReplicateRequest{
		Term: 5, LeaderID: 0, LeaderAddr: c.addrs[0], Shards: shards,
	}); !resp.OK {
		t.Fatalf("injected heartbeat rejected: %+v", resp)
	}
	if n := c.nodes[1].RegistryLen(); n != 0 {
		t.Fatalf("follower 1 holds %d entries before takeover, want 0 (test premise)", n)
	}

	// the leader dies; follower 1 (lowest live id, but missing the
	// entry) must take over WITH the entry, by reading follower 2
	c.killNode(0)
	deadline := time.Now().Add(5 * time.Second)
	for c.nodes[1].Role() != Leader {
		if time.Now().After(deadline) {
			t.Fatalf("node 1 never took over; status: %+v", c.nodes[1].Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if term := c.nodes[1].Term(); term <= 5 {
		t.Fatalf("takeover term %d not above injected term 5", term)
	}
	if n := c.nodes[1].RegistryLen(); n != 1 {
		t.Fatalf("takeover leader registry has %d entries, want 1 — acked entry lost", n)
	}
	// and the handle must actually solve through the new leader
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	x, err := c.nodes[1].Solve(ctx, h, b)
	if err != nil {
		t.Fatalf("solve of the unioned handle: %v", err)
	}
	checkSolution(t, x, want)
}

// TestFollowerRedirects: a request aimed at a follower must land on
// the leader via the 307 hop, and the client must cache the leader.
func TestFollowerRedirects(t *testing.T) {
	shards := testShardServers(t, 2)
	c := startCluster(t, 2, shards, nil)
	c.waitLeader(t, 3*time.Second)

	// aim only at the follower: the client's coordinator list is just
	// node 1
	cli, err := NewClient(ClientConfig{Coordinators: []string{c.addrs[1]}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a, b, want := testbedSystem(t, "JPWH_991", 1)
	h, err := cli.Submit(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := cli.Solve(ctx, h, b)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, x, want)
	if cli.Leader() != c.addrs[0] {
		t.Fatalf("client cached leader %q, want %q", cli.Leader(), c.addrs[0])
	}
}

// TestReplicateFencing: the term is a fencing token — a follower
// rejects lower-term replication, and an equal-term collision resolves
// toward the lower id.
func TestReplicateFencing(t *testing.T) {
	shards := testShardServers(t, 1)
	c := startCluster(t, 2, shards, func(_ int, cfg *Config) {
		cfg.Lease = time.Hour // no spontaneous elections; this test drives by hand
	})
	n0 := c.nodes[0]

	resp := n0.handleReplicate(ReplicateRequest{Term: 7, LeaderID: 1, LeaderAddr: c.addrs[1], Shards: shards})
	if !resp.OK || resp.Term != 7 {
		t.Fatalf("heartbeat at term 7 rejected: %+v", resp)
	}
	if resp = n0.handleReplicate(ReplicateRequest{Term: 6, LeaderID: 1}); resp.OK || resp.Term != 7 {
		t.Fatalf("stale term 6 not fenced: %+v", resp)
	}
	if got := n0.Status(); got.LeaderID != 1 || got.Term != 7 {
		t.Fatalf("status after fencing: %+v", got)
	}
}

// TestManualClockLease: with a manual clock the lease never expires on
// its own — elections are driven purely by advancing time, which is
// what keeps the election state machine testable without sleeps.
func TestManualClockLease(t *testing.T) {
	clk := NewManualClock(time.Unix(1000, 0))
	shards := testShardServers(t, 1)
	fcfg := fleetrpc.DefaultConfig(shards)
	fcfg.ProbeInterval = 20 * time.Millisecond
	// single node: no peers to probe, so expiry leads immediately
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")
	n, err := NewNode(Config{
		ID: 0, Peers: []string{addr}, Shards: shards,
		Lease: 100 * time.Millisecond, Heartbeat: 10 * time.Millisecond,
		Fleet: fcfg, Clock: clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	time.Sleep(150 * time.Millisecond) // many wall ticks, zero clock movement
	if n.Role() != Follower {
		t.Fatal("node took leadership without the manual clock moving")
	}
	clk.Advance(500 * time.Millisecond)
	deadline := time.Now().Add(3 * time.Second)
	for n.Role() != Leader {
		if time.Now().After(deadline) {
			t.Fatal("node never led after the clock advanced past the lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
