package fleetha

import (
	"context"
	"time"

	"gesp/internal/fleet"
)

// The leader-side half of the SLO controller: every Window, gather
// one Signals sample from the fleet's published telemetry (windowed
// histogram delta, stats deltas, prober queue gauges — zero extra
// HTTP), step the pure controller, and apply whatever it decided.
// Decisions append to the node's structured trace, served at
// /ha/v1/trace.

// controllerTick runs at most one controller window per call; the
// node's tick loop calls it every heartbeat and the window gate keeps
// the cadence.
func (n *Node) controllerTick(now time.Time) {
	n.mu.Lock()
	ctrl := n.ctrl
	fl := n.fleet
	if ctrl == nil || fl == nil || now.Sub(n.lastCtrl) < ctrl.cfg.Window {
		n.mu.Unlock()
		return
	}
	n.lastCtrl = now
	prevCounts, prevTotal := n.prevLatCounts, n.prevLatTotal
	prevStats := n.prevStats
	n.mu.Unlock()

	counts, total := fl.LatSnapshot()
	stats := fl.Stats()
	win := fleet.WindowSince(counts, total, prevCounts, prevTotal)
	routedDelta := stats.Routed - prevStats.Routed
	healDelta := stats.Resubmits - prevStats.Resubmits
	healRate := 0.0
	if routedDelta > 0 {
		healRate = float64(healDelta) / float64(routedDelta)
	}
	liveShards := 0
	for _, m := range stats.Members {
		if m.State != StateDeadName {
			liveShards++
		}
	}
	sig := Signals{
		P999:        win.Quantile(0.999),
		Samples:     win.Total,
		HealRate:    healRate,
		HedgeDenied: stats.HedgeDenied - prevStats.HedgeDenied,
		QueueDepth:  fl.MaxQueueDepth(),
		HotPatterns: fl.HotPatterns(ctrl.cfg.HotK),
		Boosted:     fl.Boosted(),
		Shards:      liveShards,
	}

	n.mu.Lock()
	n.prevLatCounts, n.prevLatTotal = counts, total
	n.prevStats = stats
	decisions := ctrl.Step(sig)
	n.mu.Unlock()

	for _, d := range decisions {
		n.applyDecision(d)
		n.mu.Lock()
		n.trace = append(n.trace, d)
		n.mu.Unlock()
		n.cfg.Logf("fleetha node %d: window %d %s: %s", n.cfg.ID, d.Window, d.Action, d.Reason)
	}
}

// StateDeadName is the dead member state's wire name (avoids importing
// the fleetrpc constant's String round-trip at every signal gather).
const StateDeadName = "dead"

// applyDecision executes one controller verb against the fleet and
// scaler.
func (n *Node) applyDecision(d Decision) {
	n.mu.Lock()
	fl := n.fleet
	n.mu.Unlock()
	if fl == nil {
		return
	}
	switch d.Action {
	case ActPromote:
		fl.PromotePattern(d.Pattern, d.Boost)
	case ActDemote:
		fl.DemotePattern(d.Pattern)
	case ActSpawn:
		if n.cfg.Scaler == nil {
			// unreachable when the leader gated the controller's spawn
			// knobs on Scaler presence, but a replayed/injected decision
			// must still not corrupt the model
			n.cfg.Logf("fleetha node %d: spawn decision with no scaler; skipped", n.cfg.ID)
			return
		}
		addr, err := n.cfg.Scaler.Spawn()
		if err != nil {
			n.cfg.Logf("fleetha node %d: spawn failed: %v", n.cfg.ID, err)
			return
		}
		id, err := fl.AddMember(addr)
		if err != nil {
			n.cfg.Logf("fleetha node %d: add member %s failed: %v", n.cfg.ID, addr, err)
			return
		}
		// confirm only now: the controller's spawned count must track
		// shards that exist, not spawn attempts
		n.mu.Lock()
		n.spawnedShards = append(n.spawnedShards, spawnedShard{id: id, addr: addr})
		if n.ctrl != nil {
			n.ctrl.NoteSpawned()
		}
		n.mu.Unlock()
	case ActDrain:
		if n.cfg.Scaler == nil {
			return
		}
		n.mu.Lock()
		if len(n.spawnedShards) == 0 {
			n.mu.Unlock()
			return
		}
		sh := n.spawnedShards[len(n.spawnedShards)-1]
		n.spawnedShards = n.spawnedShards[:len(n.spawnedShards)-1]
		n.mu.Unlock()
		// drain by the member id AddMember assigned, not by address:
		// ids are append-only, while an OS-recycled port can make this
		// shard share an address with a long-dead member — an address
		// search would match the stale entry and leave the live shard
		// in the ring while the Scaler kills its process.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := fl.Drain(ctx, sh.id); err != nil {
			n.cfg.Logf("fleetha node %d: drain member %d failed: %v", n.cfg.ID, sh.id, err)
		}
		cancel()
		if err := n.cfg.Scaler.Drain(sh.addr); err != nil {
			n.cfg.Logf("fleetha node %d: scaler drain %s failed: %v", n.cfg.ID, sh.addr, err)
		}
	}
}
