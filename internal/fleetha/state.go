package fleetha

import (
	"sync"

	"gesp/internal/fleetrpc"
	"gesp/internal/serve"
)

// replState is a follower's replica of the leader's durable state: the
// registry of every acked handle plus the membership view. On
// takeover it becomes the new leader's fleetrpc seed — which is the
// whole point: the registry must not die with the coordinator.
type replState struct {
	mu sync.Mutex
	//gesp:guardedby:mu
	registry map[serve.Handle]fleetrpc.MatrixRequest
	//gesp:guardedby:mu
	shards []string
	//gesp:guardedby:mu
	dead []int
	//gesp:guardedby:mu
	epoch uint64
	//gesp:guardedby:mu
	ringGen uint64
	//gesp:guardedby:mu
	appliedSeq uint64
}

func newReplState(shards []string) *replState {
	return &replState{
		registry: make(map[serve.Handle]fleetrpc.MatrixRequest),
		shards:   append([]string(nil), shards...),
	}
}

// apply merges one replicate batch. Term fencing happened upstream —
// by the time state applies, the sender is the accepted leader.
func (s *replState) apply(req ReplicateRequest) (appliedSeq uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Full {
		s.registry = make(map[serve.Handle]fleetrpc.MatrixRequest, len(req.Entries))
	}
	for _, e := range req.Entries {
		h, perr := serve.ParseHandle(e.Handle)
		if perr != nil {
			return s.appliedSeq, perr
		}
		s.registry[h] = e.Matrix
	}
	if len(req.Shards) > 0 {
		s.shards = append(s.shards[:0], req.Shards...)
	}
	s.dead = append(s.dead[:0], req.Dead...)
	if req.Epoch > s.epoch {
		s.epoch = req.Epoch
	}
	if req.RingGen > s.ringGen {
		s.ringGen = req.RingGen
	}
	if req.Seq > s.appliedSeq {
		s.appliedSeq = req.Seq
	}
	return s.appliedSeq, nil
}

// snapshot copies the replica for a takeover: the registry seeds the
// new leader's fleet, the shard/dead lists rebuild its membership.
func (s *replState) snapshot() (registry map[serve.Handle]fleetrpc.MatrixRequest, shards []string, dead []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	registry = make(map[serve.Handle]fleetrpc.MatrixRequest, len(s.registry))
	//gesp:unordered — map copy; the seeded fleet re-sorts its own views
	for h, w := range s.registry {
		registry[h] = w
	}
	return registry, append([]string(nil), s.shards...), append([]int(nil), s.dead...)
}

// mergeFromFleet folds a deposed leader's fleet view back into the
// replica: registry entries union in, membership is replaced.
func (s *replState) mergeFromFleet(registry map[serve.Handle]fleetrpc.MatrixRequest, shards []string, dead []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//gesp:unordered — map union; last-writer-wins per key, keys disjointly owned
	for h, w := range registry {
		s.registry[h] = w
	}
	s.shards = append(s.shards[:0], shards...)
	s.dead = append(s.dead[:0], dead...)
}

func (s *replState) stats() (appliedSeq uint64, registryLen int, epoch, ringGen uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appliedSeq, len(s.registry), s.epoch, s.ringGen
}
