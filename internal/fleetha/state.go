package fleetha

import (
	"sync"

	"gesp/internal/fleetrpc"
	"gesp/internal/serve"
)

// replState is a follower's replica of the leader's durable state: the
// registry of every acked handle plus the membership view. On
// takeover it becomes the new leader's fleetrpc seed — which is the
// whole point: the registry must not die with the coordinator.
type replState struct {
	mu sync.Mutex
	//gesp:guardedby:mu
	registry map[serve.Handle]fleetrpc.MatrixRequest
	//gesp:guardedby:mu
	shards []string
	//gesp:guardedby:mu
	dead []int
	//gesp:guardedby:mu
	epoch uint64
	//gesp:guardedby:mu
	ringGen uint64
	//gesp:guardedby:mu
	appliedSeq uint64
	// gen counts registry mutations. A takeover snapshots (registry,
	// gen), builds its fleet, and flips to leader only if gen is still
	// the snapshot's — otherwise an entry applied (and acked to the old
	// leader) mid-build would be acked-but-unseeded. Heartbeats with no
	// entries do not bump it, so a still-streaming old leader cannot
	// livelock a takeover.
	//gesp:guardedby:mu
	gen uint64
}

func newReplState(shards []string) *replState {
	return &replState{
		registry: make(map[serve.Handle]fleetrpc.MatrixRequest),
		shards:   append([]string(nil), shards...),
	}
}

// apply merges one replicate batch. Term fencing happened upstream —
// by the time state applies, the sender is the accepted leader.
func (s *replState) apply(req ReplicateRequest) (appliedSeq uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Full {
		s.registry = make(map[serve.Handle]fleetrpc.MatrixRequest, len(req.Entries))
		s.gen++
	}
	for _, e := range req.Entries {
		h, perr := serve.ParseHandle(e.Handle)
		if perr != nil {
			return s.appliedSeq, perr
		}
		s.registry[h] = e.Matrix
		s.gen++
	}
	if len(req.Shards) > 0 {
		s.shards = append(s.shards[:0], req.Shards...)
	}
	s.dead = append(s.dead[:0], req.Dead...)
	if req.Epoch > s.epoch {
		s.epoch = req.Epoch
	}
	if req.RingGen > s.ringGen {
		s.ringGen = req.RingGen
	}
	if req.Seq > s.appliedSeq {
		s.appliedSeq = req.Seq
	}
	return s.appliedSeq, nil
}

// snapshot copies the replica for a takeover: the registry seeds the
// new leader's fleet, the shard/dead lists rebuild its membership, and
// gen lets the caller detect entries applied after the copy.
func (s *replState) snapshot() (registry map[serve.Handle]fleetrpc.MatrixRequest, shards []string, dead []int, gen uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	registry = make(map[serve.Handle]fleetrpc.MatrixRequest, len(s.registry))
	//gesp:unordered — map copy; the seeded fleet re-sorts its own views
	for h, w := range s.registry {
		registry[h] = w
	}
	return registry, append([]string(nil), s.shards...), append([]int(nil), s.dead...), s.gen
}

// generation reads the registry mutation counter.
func (s *replState) generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// mergeFromFleet folds a deposed leader's fleet view back into the
// replica: registry entries union in, membership is replaced.
func (s *replState) mergeFromFleet(registry map[serve.Handle]fleetrpc.MatrixRequest, shards []string, dead []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//gesp:unordered — map union; last-writer-wins per key, keys disjointly owned
	for h, w := range registry {
		s.registry[h] = w
	}
	s.shards = append(s.shards[:0], shards...)
	s.dead = append(s.dead[:0], dead...)
	s.gen++
}

// mergeRemote unions a peer's exported replica into this one — the
// election's read-quorum step. Registry entries union in (a handle the
// old leader acked to only one follower must survive whichever
// follower wins); membership is adopted wholesale from the peer with
// the higher replication high-water mark, since it heard the old
// leader last.
func (s *replState) mergeRemote(st StateResponse) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range st.Entries {
		h, err := serve.ParseHandle(e.Handle)
		if err != nil {
			continue //gesp:errok — a malformed remote entry cannot be seeded; skip it rather than reject the rest
		}
		if _, ok := s.registry[h]; !ok {
			s.registry[h] = e.Matrix
			s.gen++
		}
	}
	if st.AppliedSeq > s.appliedSeq {
		s.appliedSeq = st.AppliedSeq
		if len(st.Shards) > 0 {
			s.shards = append(s.shards[:0], st.Shards...)
		}
		s.dead = append(s.dead[:0], st.Dead...)
	}
	if st.Epoch > s.epoch {
		s.epoch = st.Epoch
	}
	if st.RingGen > s.ringGen {
		s.ringGen = st.RingGen
	}
}

// export dumps the replica for a peer's read-quorum fetch.
func (s *replState) export() StateResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StateResponse{
		AppliedSeq: s.appliedSeq,
		Shards:     append([]string(nil), s.shards...),
		Dead:       append([]int(nil), s.dead...),
		Epoch:      s.epoch,
		RingGen:    s.ringGen,
	}
	st.Entries = make([]RegistryEntry, 0, len(s.registry))
	//gesp:unordered — entries are keyed by handle on the receiver; export order is irrelevant
	for h, w := range s.registry {
		st.Entries = append(st.Entries, RegistryEntry{Handle: h.String(), Matrix: w})
	}
	return st
}

func (s *replState) stats() (appliedSeq uint64, registryLen int, epoch, ringGen uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appliedSeq, len(s.registry), s.epoch, s.ringGen
}
