package fleetha

import (
	"context"
	"encoding/json"
	"errors"
	"log"
	"net/http"

	"gesp/internal/fleetrpc"
	"gesp/internal/serve"
)

// Every node serves the same mux: the client-facing shard-protocol
// paths (/v1/matrix, /v1/solve, /v1/stats) answered by the leader and
// 307-redirected by followers, plus the HA control plane under
// /ha/v1/. The redirect carries the leader address both as an
// absolute Location (net/http re-POSTs a 307 body automatically) and
// an X-Gesp-Leader hint for clients that follow by hand.

// LeaderHintHeader names the redirect hint header.
const LeaderHintHeader = "X-Gesp-Leader"

// Mux builds the node's HTTP handler.
func (n *Node) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/matrix", n.handleMatrix)
	mux.HandleFunc("/v1/solve", n.handleSolve)
	mux.HandleFunc("/v1/stats", n.handleStats)
	mux.HandleFunc("/ha/v1/status", n.handleStatus)
	mux.HandleFunc("/ha/v1/state", n.handleState)
	mux.HandleFunc("/ha/v1/replicate", n.handleReplicateHTTP)
	mux.HandleFunc("/ha/v1/trace", n.handleTrace)
	return mux
}

func haWriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("fleetha: encode response: %v", err)
	}
}

// redirectOr503 answers a request this follower cannot serve: 307 to
// the leader when one is known, 503 (retryable) through the election.
func (n *Node) redirectOr503(w http.ResponseWriter, r *http.Request, leaderAddr string) {
	if leaderAddr != "" && leaderAddr != n.cfg.Peers[n.cfg.ID] {
		w.Header().Set(LeaderHintHeader, leaderAddr)
		w.Header().Set("Location", "http://"+leaderAddr+r.URL.Path)
		w.WriteHeader(http.StatusTemporaryRedirect)
		return
	}
	haWriteJSON(w, http.StatusServiceUnavailable, fleetrpc.ErrorResponse{Error: "fleetha: no leader elected yet; retry"})
}

// writeErr maps node errors onto the shard protocol's status taxonomy
// so fleetrpc.Retryable classifies them unchanged.
func (n *Node) writeErr(w http.ResponseWriter, err error) {
	var re *fleetrpc.RemoteError
	switch {
	case errors.As(err, &re):
		if re.RetryAfter > 0 {
			fleetrpc.SetRetryAfter(w, re.RetryAfter)
		}
		haWriteJSON(w, re.Status, fleetrpc.ErrorResponse{Error: re.Msg})
	case errors.Is(err, fleetrpc.ErrNoLiveShards),
		errors.Is(err, fleetrpc.ErrUnreachable),
		errors.Is(err, serve.ErrClosed),
		errors.Is(err, context.DeadlineExceeded):
		haWriteJSON(w, http.StatusServiceUnavailable, fleetrpc.ErrorResponse{Error: err.Error()})
	default:
		haWriteJSON(w, http.StatusBadRequest, fleetrpc.ErrorResponse{Error: err.Error()})
	}
}

func (n *Node) handleMatrix(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		haWriteJSON(w, http.StatusMethodNotAllowed, fleetrpc.ErrorResponse{Error: "POST only"})
		return
	}
	var req fleetrpc.MatrixRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		haWriteJSON(w, http.StatusBadRequest, fleetrpc.ErrorResponse{Error: "bad matrix body: " + err.Error()})
		return
	}
	h, err := n.SubmitWire(r.Context(), req)
	if errors.Is(err, errNotLeader) {
		//gesp:errok — not-leader already established; only the hint address matters, and an empty one 503s
		_, leaderAddr, _ := n.leaderFleet()
		n.redirectOr503(w, r, leaderAddr)
		return
	}
	if err != nil {
		n.writeErr(w, err)
		return
	}
	haWriteJSON(w, http.StatusOK, fleetrpc.MatrixResponse{Handle: h.String(), N: h.N})
}

func (n *Node) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		haWriteJSON(w, http.StatusMethodNotAllowed, fleetrpc.ErrorResponse{Error: "POST only"})
		return
	}
	var req fleetrpc.SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		haWriteJSON(w, http.StatusBadRequest, fleetrpc.ErrorResponse{Error: "bad solve body: " + err.Error()})
		return
	}
	h, err := serve.ParseHandle(req.Handle)
	if err != nil {
		haWriteJSON(w, http.StatusBadRequest, fleetrpc.ErrorResponse{Error: err.Error()})
		return
	}
	x, err := n.Solve(r.Context(), h, req.B)
	if errors.Is(err, errNotLeader) {
		//gesp:errok — not-leader already established; only the hint address matters, and an empty one 503s
		_, leaderAddr, _ := n.leaderFleet()
		n.redirectOr503(w, r, leaderAddr)
		return
	}
	if err != nil {
		n.writeErr(w, err)
		return
	}
	haWriteJSON(w, http.StatusOK, fleetrpc.SolveResponse{X: x})
}

func (n *Node) handleStats(w http.ResponseWriter, r *http.Request) {
	fl, leaderAddr, err := n.leaderFleet()
	if err != nil {
		n.redirectOr503(w, r, leaderAddr)
		return
	}
	haWriteJSON(w, http.StatusOK, fl.Stats())
}

func (n *Node) handleStatus(w http.ResponseWriter, _ *http.Request) {
	haWriteJSON(w, http.StatusOK, n.Status())
}

func (n *Node) handleState(w http.ResponseWriter, _ *http.Request) {
	haWriteJSON(w, http.StatusOK, n.ExportState())
}

func (n *Node) handleReplicateHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		haWriteJSON(w, http.StatusMethodNotAllowed, fleetrpc.ErrorResponse{Error: "POST only"})
		return
	}
	var req ReplicateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		haWriteJSON(w, http.StatusBadRequest, fleetrpc.ErrorResponse{Error: "bad replicate body: " + err.Error()})
		return
	}
	haWriteJSON(w, http.StatusOK, n.handleReplicate(req))
}

func (n *Node) handleTrace(w http.ResponseWriter, _ *http.Request) {
	haWriteJSON(w, http.StatusOK, TraceResponse{Decisions: n.Trace()})
}
