package fleetha

// Coordinator-process side of the chaos harness: SpawnCoordinators
// re-executes the current binary as idle coordinator children, and
// ConfigureCoordinators posts each one its identity and the full
// topology once every child has announced an address — a child cannot
// know its peers' ports before those peers exist, so configuration is
// a second phase, not part of the spawn payload. After configure the
// child swaps its HTTP handler from the boot mux to the node's real
// mux atomically and runs until killed. RunCoordinatorIfChild claims
// only payloads tagged with its kind, so the same TestMain (or main)
// hooks both shard and coordinator children:
//
//	fleetha.RunCoordinatorIfChild()
//	fleetrpc.RunShardIfChild()

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"gesp/internal/faultsim"
	"gesp/internal/fleetrpc"
)

// ChildKindCoordinator tags a re-exec payload as an HA coordinator.
const ChildKindCoordinator = "coordinator"

// coordPayload is the (tiny) spawn payload; everything topological
// arrives later via /ha/v1/configure.
type coordPayload struct {
	Kind string `json:"kind"`
}

// RunCoordinatorIfChild is the re-exec hook for coordinator children:
// call it before fleetrpc.RunShardIfChild in TestMain or main. In the
// parent — or a child of another kind — it returns immediately.
func RunCoordinatorIfChild() {
	raw, ok := faultsim.ChildPayload()
	if !ok {
		return
	}
	if fleetrpc.ChildKind(raw) != ChildKindCoordinator {
		return
	}
	if err := runCoordinator(); err != nil {
		fmt.Fprintf(os.Stderr, "chaos coordinator: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

func runCoordinator() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	// handler starts as the boot mux (configure + a not-ready status)
	// and is swapped to the node's mux once configured.
	var handler atomic.Pointer[http.Handler]
	var node atomic.Pointer[Node]
	boot := http.NewServeMux()
	boot.HandleFunc("/ha/v1/configure", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			haWriteJSON(w, http.StatusMethodNotAllowed, fleetrpc.ErrorResponse{Error: "POST only"})
			return
		}
		var req ConfigureRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			haWriteJSON(w, http.StatusBadRequest, fleetrpc.ErrorResponse{Error: "bad configure body: " + err.Error()})
			return
		}
		if node.Load() != nil {
			haWriteJSON(w, http.StatusConflict, fleetrpc.ErrorResponse{Error: "already configured"})
			return
		}
		n, err := newConfiguredNode(req)
		if err != nil {
			haWriteJSON(w, http.StatusBadRequest, fleetrpc.ErrorResponse{Error: err.Error()})
			return
		}
		node.Store(n)
		real := http.Handler(n.Mux())
		handler.Store(&real)
		haWriteJSON(w, http.StatusOK, struct{}{})
	})
	boot.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		haWriteJSON(w, http.StatusServiceUnavailable, fleetrpc.ErrorResponse{Error: "coordinator not configured yet"})
	})
	bootH := http.Handler(boot)
	handler.Store(&bootH)
	faultsim.AnnounceReady(ln.Addr().String())
	return http.Serve(ln, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*handler.Load()).ServeHTTP(w, r)
	}))
}

// newConfiguredNode builds a node from the wire topology.
func newConfiguredNode(req ConfigureRequest) (*Node, error) {
	fcfg := fleetrpc.DefaultConfig(req.Shards)
	if req.Replication > 0 {
		fcfg.Replication = req.Replication
	}
	if req.HedgeAfterMS > 0 {
		fcfg.HedgeAfter = time.Duration(req.HedgeAfterMS) * time.Millisecond
	}
	cfg := Config{
		ID:         req.ID,
		Peers:      req.Peers,
		Shards:     req.Shards,
		Lease:      req.lease(),
		Heartbeat:  req.heartbeat(),
		Fleet:      fcfg,
		Controller: req.Controller,
		Seed:       req.Seed,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	return NewNode(cfg)
}

// SpawnCoordinators re-executes the current binary n times as idle
// coordinator children and waits for each to announce its address.
// Configure them with ConfigureCoordinators before use.
func SpawnCoordinators(n int) (*faultsim.ProcSet, error) {
	payload, err := json.Marshal(coordPayload{Kind: ChildKindCoordinator})
	if err != nil {
		return nil, fmt.Errorf("fleetha: encode coordinator payload: %w", err)
	}
	return faultsim.SpawnProcs(n, string(payload))
}

// ConfigureCoordinators posts the full topology to every spawned
// coordinator: peer i gets id i. The template's ID is overwritten per
// child; Peers is set to addrs.
func ConfigureCoordinators(addrs []string, template ConfigureRequest) error {
	hc := newPooledHTTPClient()
	for i, addr := range addrs {
		req := template
		req.ID = i
		req.Peers = addrs
		if req.Seed == 0 {
			req.Seed = int64(i) + 1
		} else {
			req.Seed += int64(i)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := haDo(ctx, hc, addr, http.MethodPost, "/ha/v1/configure", req, nil)
		cancel()
		if err != nil {
			return fmt.Errorf("fleetha: configure coordinator %d at %s: %w", i, addr, err)
		}
	}
	return nil
}
