package faultsim

import (
	"math"
	"testing"

	"gesp/internal/lu"
	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

func TestInjectorIsDeterministic(t *testing.T) {
	a := New(42).NearSingular(30, 1e-10)
	b := New(42).NearSingular(30, 1e-10)
	if sparse.PatternHash(a) != sparse.PatternHash(b) {
		t.Fatal("same seed produced different patterns")
	}
	for k := range a.Val {
		if a.Val[k] != b.Val[k] {
			t.Fatalf("same seed produced different values at %d: %g vs %g", k, a.Val[k], b.Val[k])
		}
	}
	c := New(43).NearSingular(30, 1e-10)
	same := sparse.PatternHash(a) == sparse.PatternHash(c)
	if same {
		for k := range a.Val {
			if a.Val[k] != c.Val[k] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestWellConditionedFactorsCleanly(t *testing.T) {
	a := New(1).WellConditioned(50, 0.1)
	sym, err := symbolic.Factorize(a, symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := lu.Factorize(a, sym, lu.Options{ReplaceTinyPivot: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.TinyPivots != 0 {
		t.Errorf("well-conditioned base needed %d pivot replacements, want 0", f.TinyPivots)
	}
}

func TestNearSingularDefeatsStaticPivoting(t *testing.T) {
	// The engineered pivot must fall below the replacement threshold, so
	// the factorization records at least one modification.
	a := New(7).NearSingular(40, 1e-10)
	sym, err := symbolic.Factorize(a, symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := lu.Factorize(a, sym, lu.Options{ReplaceTinyPivot: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.TinyPivots == 0 {
		t.Fatal("NearSingular factored without pivot replacement; the fault is not firing")
	}
	if len(f.PivotMods) == 0 {
		t.Fatal("pivot replacement recorded no PivotMods")
	}
}

func TestPerturbValuesPreservesPattern(t *testing.T) {
	in := New(3)
	a := in.WellConditioned(30, 0.2)
	p := in.PerturbValues(a, 0.5)
	if sparse.PatternHash(a) != sparse.PatternHash(p) {
		t.Fatal("perturbation changed the sparsity pattern")
	}
	changed := 0
	for k := range a.Val {
		if a.Val[k] != p.Val[k] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("perturbation changed no values")
	}
	for k := range a.Val {
		if a.Val[k] != p.Val[k] && a.Val[k] == 0 {
			t.Fatal("perturbation invented a value on a structural zero")
		}
	}
}

func TestPoisonRHS(t *testing.T) {
	b := make([]float64, 20)
	idx := New(5).PoisonRHS(b, 3, true)
	if len(idx) != 3 {
		t.Fatalf("poisoned %d entries, want 3", len(idx))
	}
	nans := 0
	for _, v := range b {
		if math.IsNaN(v) {
			nans++
		}
	}
	if nans != 3 {
		t.Fatalf("found %d NaNs, want 3", nans)
	}
	b2 := make([]float64, 20)
	New(5).PoisonRHS(b2, 2, false)
	infs := 0
	for _, v := range b2 {
		if math.IsInf(v, 0) {
			infs++
		}
	}
	if infs != 2 {
		t.Fatalf("found %d Infs, want 2", infs)
	}
}

func TestCorruptFactorsChangesFingerprint(t *testing.T) {
	a := New(9).WellConditioned(40, 0.1)
	sym, _ := symbolic.Factorize(a, symbolic.Options{})
	f, err := lu.Factorize(a, sym, lu.Options{ReplaceTinyPivot: true})
	if err != nil {
		t.Fatal(err)
	}
	before := f.Fingerprint()
	if f.NonFinite() {
		t.Fatal("factors non-finite before corruption")
	}
	if n := New(9).CorruptFactors(f, 3); n == 0 {
		t.Fatal("corruption flipped no values")
	}
	if f.Fingerprint() == before {
		t.Fatal("fingerprint unchanged by corruption")
	}
	if !f.NonFinite() {
		t.Fatal("NonFinite missed the injected NaNs")
	}
}
