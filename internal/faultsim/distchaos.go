package faultsim

import (
	"time"

	"gesp/internal/mpisim"
)

// Chaos builds deterministic mpisim fault plans — the distributed
// counterpart of the numeric injectors above. Every Build returns a
// fresh plan (one-shot state unshared), so a builder reproduces the
// same chaos schedule run after run: the repeatability the chaos suite
// enforces. Share one *plan* across the worlds of a checkpoint/restart
// lineage; share one *builder* across independent runs you want
// identical.
type Chaos struct {
	seed     int64
	jitter   float64
	dup      float64
	drop     float64
	maxDrops int
	deadline float64
	backstop time.Duration
	faults   []mpisim.RankFault
}

// NewChaos returns a chaos builder whose plans are a pure function of
// seed and the builder calls made.
func NewChaos(seed int64) *Chaos { return &Chaos{seed: seed} }

// Kill schedules rank's death at virtual time at.
func (c *Chaos) Kill(rank int, at float64) *Chaos {
	c.faults = append(c.faults, mpisim.RankFault{Rank: rank, At: at})
	return c
}

// Stall schedules a stall of dur virtual seconds on rank at time at. A
// dur below the watchdog deadline is a survivable hiccup; at or above
// it, the rank counts as dead.
func (c *Chaos) Stall(rank int, at, dur float64) *Chaos {
	c.faults = append(c.faults, mpisim.RankFault{Rank: rank, At: at, Stall: dur})
	return c
}

// Jitter sets the maximum extra per-message virtual latency.
func (c *Chaos) Jitter(max float64) *Chaos { c.jitter = max; return c }

// Duplicate sets the probability a send is delivered twice.
func (c *Chaos) Duplicate(prob float64) *Chaos { c.dup = prob; return c }

// Drop sets the probability a send is lost, with a total budget of
// dropped messages (budget <= 0 means 1).
func (c *Chaos) Drop(prob float64, budget int) *Chaos {
	c.drop, c.maxDrops = prob, budget
	return c
}

// Watchdog overrides the detection deadline charged in virtual time.
func (c *Chaos) Watchdog(deadline float64) *Chaos { c.deadline = deadline; return c }

// WallBackstop arms the real-time safety net on built plans.
func (c *Chaos) WallBackstop(d time.Duration) *Chaos { c.backstop = d; return c }

// Build materializes a fresh fault plan.
func (c *Chaos) Build() *mpisim.FaultPlan {
	return &mpisim.FaultPlan{
		Seed:             c.seed,
		DelayJitter:      c.jitter,
		DupProb:          c.dup,
		DropProb:         c.drop,
		MaxDrops:         c.maxDrops,
		RankFaults:       append([]mpisim.RankFault(nil), c.faults...),
		WatchdogDeadline: c.deadline,
		WallBackstop:     c.backstop,
	}
}
