package faultsim

import (
	"net"
	"os"
	"testing"
	"time"
)

// TestMain doubles as the child entry point: a spawned child serves a
// trivial one-byte TCP responder — the harness is generic, so its own
// test needs no solver stack at all.
func TestMain(m *testing.M) {
	if payload, ok := ChildPayload(); ok {
		runPingChild(payload)
	}
	os.Exit(m.Run())
}

// runPingChild listens on loopback, announces readiness, and answers
// every connection with one byte of the payload.
//
//gesp:wallclock — child-process server loop: real sockets
func runPingChild(payload string) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		os.Exit(1)
	}
	AnnounceReady(ln.Addr().String())
	for {
		conn, err := ln.Accept()
		if err != nil {
			os.Exit(1)
		}
		//gesp:errok — best-effort reply; the parent side asserts
		_, _ = conn.Write([]byte(payload[:1]))
		//gesp:errok — close of a one-shot connection
		_ = conn.Close()
	}
}

// ping dials the child and reads its one-byte answer.
//
//gesp:wallclock — real network round trip with a deadline
func ping(addr string, timeout time.Duration) error {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	//gesp:errok — close of a one-shot connection
	defer conn.Close()
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	return err
}

// TestSpawnAndKillProcs exercises the harness itself: spawned children
// announce real addresses and answer, SIGSTOP freezes them
// mid-connection, SIGCONT thaws them, and SIGKILL ends them for good.
func TestSpawnAndKillProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("process chaos harness: skipped in -short")
	}
	procs, err := SpawnProcs(2, "x")
	if err != nil {
		t.Fatal(err)
	}
	defer procs.Close()
	if len(procs.Addrs()) != 2 {
		t.Fatalf("addrs: %v", procs.Addrs())
	}
	for i, addr := range procs.Addrs() {
		if err := ping(addr, 5*time.Second); err != nil {
			t.Fatalf("child %d never answered: %v", i, err)
		}
	}

	// Stopped: the socket's backlog may still accept, but no reply
	// comes until SIGCONT.
	if err := procs.Procs[0].Stop(); err != nil {
		t.Fatal(err)
	}
	if err := ping(procs.Procs[0].Addr, 100*time.Millisecond); err == nil {
		t.Fatal("a SIGSTOPped child answered")
	}
	if err := procs.Procs[0].Cont(); err != nil {
		t.Fatal(err)
	}
	if err := ping(procs.Procs[0].Addr, 5*time.Second); err != nil {
		t.Fatalf("child after SIGCONT: %v", err)
	}

	// Killed: connections fail, Kill reports success, and a second
	// Kill of the reaped child must merely not panic.
	if err := procs.Procs[0].Kill(); err != nil {
		t.Fatal(err)
	}
	if err := ping(procs.Procs[0].Addr, 100*time.Millisecond); err == nil {
		t.Fatal("a SIGKILLed child answered")
	}
	//gesp:errok — a second Kill of a reaped process may error by platform
	_ = procs.Procs[0].Kill()

	// The sibling is unaffected.
	if err := ping(procs.Procs[1].Addr, 5*time.Second); err != nil {
		t.Fatalf("sibling child: %v", err)
	}
}
