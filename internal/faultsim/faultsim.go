// Package faultsim is a deterministic fault injector for the numerical
// resilience ladder. Every generator is driven by a seedable PRNG so a
// failing chaos run reproduces from its seed alone, and each fault is
// engineered to defeat a specific layer of the GESP safety story:
//
//   - NearSingular builds a matrix whose near-singularity funnels
//     through a pivot far below the sqrt(eps)·‖A‖ replacement
//     threshold, so static pivoting's perturbed factorization is
//     ill-conditioned and plain refinement stalls (the SMW rung's
//     raison d'être);
//   - PerturbValues simulates the serving layer's stale-analysis
//     hazard — new values under a cached pattern — at an adversarial
//     amplitude chosen by the caller;
//   - IllConditioned ramps the diagonal across a chosen condition
//     number, stressing refinement and the condition estimator;
//   - PoisonRHS plants NaN/Inf in a right-hand side;
//   - CorruptFactors flips stored factor values to NaN, the in-memory
//     factor-cache corruption that fingerprint verification catches.
package faultsim

import (
	"math"
	"math/rand"

	"gesp/internal/lu"
	"gesp/internal/sparse"
)

// Injector is a seeded fault source. The zero value is not usable; get
// one from New. Injectors are not safe for concurrent use — give each
// goroutine its own (derive per-goroutine seeds from one master seed).
type Injector struct {
	seed int64
	rng  *rand.Rand
}

// New returns an injector whose entire output is a pure function of
// seed.
func New(seed int64) *Injector {
	return &Injector{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Seed returns the injector's seed, for failure reports.
func (in *Injector) Seed() int64 { return in.seed }

// WellConditioned returns an n×n strictly diagonally dominant sparse
// matrix with ~density off-diagonal fill: the matrix every ladder test
// starts from, guaranteed to factor without pivot replacement.
func (in *Injector) WellConditioned(n int, density float64) *sparse.CSC {
	t := sparse.NewTriplet(n, n)
	for j := 0; j < n; j++ {
		t.Append(j, j, 4+in.rng.Float64())
		for i := 0; i < n; i++ {
			if i != j && in.rng.Float64() < density {
				t.Append(i, j, 0.5*in.rng.NormFloat64())
			}
		}
	}
	return t.ToCSC()
}

// NearSingular embeds a nearly decoupled unknown in a well-conditioned
// host: row and column k (= 1) carry only the diagonal gamma and
// couplings of the same magnitude to the neighbors, so σ_min(A) ~ gamma
// while ‖A‖ stays O(1). Factored without pivoting, column k's pivot is
// exactly gamma; with gamma far below sqrt(eps)·‖A‖ the static-pivot
// replacement fires and the perturbed matrix Ā has a singular value at
// the replacement threshold t, making cond(Ā) ~ 1/t ~ 10⁷ and the
// refinement contraction factor ‖Ā⁻¹(Ā−A)‖ ≈ 1 − gamma/t ≈ 1: rung 0
// stalls, patient refinement crawls, and only SMW recovery of the true
// system (or stronger) reaches sqrt(eps) backward error.
func (in *Injector) NearSingular(n int, gamma float64) *sparse.CSC {
	const k = 1
	host := in.WellConditioned(n, 0.15)
	t := sparse.NewTriplet(n, n)
	for j := 0; j < host.Cols; j++ {
		for p := host.ColPtr[j]; p < host.ColPtr[j+1]; p++ {
			i := host.RowInd[p]
			if i == k || j == k {
				continue
			}
			t.Append(i, j, host.Val[p])
		}
	}
	t.Append(k, k, gamma)
	t.Append(k+1, k, gamma) // keep row/col k coupled, at the same tiny scale
	t.Append(k, k+1, gamma)
	return t.ToCSC()
}

// IllConditioned returns an n×n upper-bidiagonal-plus-diagonal matrix
// whose diagonal ramps geometrically from 1 down to 1/cond, giving a
// condition number of order cond with no tiny-pivot replacement (every
// pivot equals its diagonal, and the smallest stays above the threshold
// for cond ≲ 1/sqrt(eps)).
func (in *Injector) IllConditioned(n int, cond float64) *sparse.CSC {
	t := sparse.NewTriplet(n, n)
	for j := 0; j < n; j++ {
		d := math.Pow(cond, -float64(j)/float64(max(n-1, 1)))
		t.Append(j, j, d)
		if j+1 < n {
			t.Append(j, j+1, 0.5*d*in.rng.Float64())
		}
	}
	return t.ToCSC()
}

// PerturbValues returns a copy of a with every stored value scaled by
// (1 + rel·g), g standard normal — the same sparsity pattern
// (sparse.PatternHash-identical) with adversarially moved values. Small
// rel models benign value drift under a cached analysis; rel ≳ 1 makes
// stale factors useless as a refinement solver (contraction > 1) while
// still serviceable as a Krylov preconditioner.
func (in *Injector) PerturbValues(a *sparse.CSC, rel float64) *sparse.CSC {
	b := a.Clone()
	for i := range b.Val {
		b.Val[i] *= 1 + rel*in.rng.NormFloat64()
	}
	return b
}

// PoisonRHS overwrites count entries of b at injector-chosen positions:
// NaN when nan is true, +Inf otherwise. It returns the poisoned indices.
func (in *Injector) PoisonRHS(b []float64, count int, nan bool) []int {
	v := math.Inf(1)
	if nan {
		v = math.NaN()
	}
	idx := in.rng.Perm(len(b))[:min(count, len(b))]
	for _, i := range idx {
		b[i] = v
	}
	return idx
}

// CorruptFactors overwrites count stored L values (and one U value, so
// both triangles are hit) with NaN — the in-memory factor-cache
// corruption fault. The factors' fingerprint necessarily changes; the
// count actually flipped is returned.
func (in *Injector) CorruptFactors(f *lu.Factors, count int) int {
	flipped := 0
	if len(f.LVal) > 0 {
		for _, i := range in.rng.Perm(len(f.LVal)) {
			if flipped >= count {
				break
			}
			f.LVal[i] = math.NaN()
			flipped++
		}
	}
	if len(f.UVal) > 0 && flipped < count+1 {
		f.UVal[in.rng.Intn(len(f.UVal))] = math.NaN()
		flipped++
	}
	return flipped
}
