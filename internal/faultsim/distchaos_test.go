package faultsim

import (
	"testing"
	"time"

	"gesp/internal/mpisim"
)

// A builder must reproduce the same schedule on every Build, with no
// one-shot state shared between the built plans — that is the property
// the checkpoint/restart lineage and the repeatability suite lean on.
func TestChaosBuildRepeatable(t *testing.T) {
	c := NewChaos(7).
		Kill(2, 1e-3).
		Stall(0, 2e-3, 5e-4).
		Jitter(1e-5).
		Duplicate(0.25).
		Drop(0.1, 3).
		Watchdog(4e-3).
		WallBackstop(time.Second)

	p1, p2 := c.Build(), c.Build()
	if p1 == p2 {
		t.Fatal("Build returned the same plan twice; one-shot state would be shared")
	}
	eq := func(a, b *mpisim.FaultPlan) bool {
		if a.Seed != b.Seed || a.DelayJitter != b.DelayJitter ||
			a.DupProb != b.DupProb || a.DropProb != b.DropProb ||
			a.MaxDrops != b.MaxDrops || a.WatchdogDeadline != b.WatchdogDeadline ||
			a.WallBackstop != b.WallBackstop || len(a.RankFaults) != len(b.RankFaults) {
			return false
		}
		for i := range a.RankFaults {
			if a.RankFaults[i] != b.RankFaults[i] {
				return false
			}
		}
		return true
	}
	if !eq(p1, p2) {
		t.Fatalf("plans from one builder differ:\n%+v\n%+v", p1, p2)
	}

	// Later builder mutations must not leak into already-built plans.
	c.Kill(3, 9e-3)
	if len(p1.RankFaults) != 2 {
		t.Fatalf("built plan saw a later builder mutation: %+v", p1.RankFaults)
	}
	p3 := c.Build()
	if len(p3.RankFaults) != 3 {
		t.Fatalf("builder lost a fault: %+v", p3.RankFaults)
	}
}
