package faultsim

// Process-level chaos: a generic re-exec harness that turns any test
// binary or benchmark runner into a set of real child processes it can
// SIGKILL, SIGSTOP, and SIGCONT mid-load. The numerical injectors in
// this package attack the solver's math; this file attacks the process
// boundary.
//
// Pattern: the parent re-executes its own binary with GESP_CHAOS_CHILD
// set to an opaque payload; the child's entry point (a TestMain or a
// command main) notices the variable via ChildPayload, starts whatever
// server the payload describes, reports its address with
// AnnounceReady, and never returns. The parent scans stdout for the
// ready line. No helper binaries to build, no PATH assumptions — the
// chaos tests are ordinary `go test` runs.
//
// The harness is deliberately ignorant of what the child serves: the
// payload is an opaque string and the child's run function lives with
// the server it starts (fleetrpc.RunShardIfChild wires the solve-shard
// child). That one-way ignorance is what keeps faultsim importable
// from every engine's test suite without cycles.
//
// Everything here is real wall-clock, real processes, real signals —
// the opposite of the package's deterministic injectors — so every
// function carries the //gesp:wallclock opt-out from the detclock rule
// that governs this package.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"
)

// childEnv is the environment variable whose presence marks a process
// as a spawned child; its value is the opaque payload passed to
// SpawnProcs.
const childEnv = "GESP_CHAOS_CHILD"

// readyPrefix precedes the child's listen address on stdout.
const readyPrefix = "GESP_CHAOS_READY "

// ChildPayload reports whether this process is a spawned child and, if
// so, the payload its parent passed to SpawnProcs. Call it first thing
// in TestMain or main.
func ChildPayload() (string, bool) {
	raw, ok := os.LookupEnv(childEnv)
	return raw, ok
}

// AnnounceReady prints the ready line the parent is scanning for. The
// child must call it exactly once, after its listener is accepting.
//
//gesp:wallclock — flushes the real stdout pipe to the parent
func AnnounceReady(addr string) {
	fmt.Printf("%s%s\n", readyPrefix, addr)
	//gesp:errok — best-effort flush; a failure surfaces as the parent's readiness timeout
	_ = os.Stdout.Sync()
}

// Proc is one live child process.
type Proc struct {
	Addr string
	cmd  *exec.Cmd

	waitOnce sync.Once
	waitErr  error
}

// Kill sends SIGKILL — the ungraceful death: no handoff, no goodbye,
// in-flight requests die with their TCP connections. The child's
// "signal: killed" exit status is the intended outcome, not an error.
//
//gesp:wallclock — real process signal
func (p *Proc) Kill() error {
	if err := p.cmd.Process.Kill(); err != nil {
		return err
	}
	//gesp:errok — a SIGKILLed child always reports a non-nil exit status
	_ = p.Wait()
	return nil
}

// Stop sends SIGSTOP: the process freezes but its sockets stay open,
// so connects succeed and requests hang — the closest a single machine
// gets to a network partition or a wedged peer.
//
//gesp:wallclock — real process signal
func (p *Proc) Stop() error { return p.cmd.Process.Signal(syscall.SIGSTOP) }

// Cont sends SIGCONT, ending a Stop.
//
//gesp:wallclock — real process signal
func (p *Proc) Cont() error { return p.cmd.Process.Signal(syscall.SIGCONT) }

// Wait reaps the process (idempotent).
//
//gesp:wallclock — blocks on real process exit
func (p *Proc) Wait() error {
	p.waitOnce.Do(func() { p.waitErr = p.cmd.Wait() })
	return p.waitErr
}

// ProcSet is a spawned child fleet.
type ProcSet struct {
	Procs []*Proc
}

// Addrs lists the children's announced addresses, spawn order.
func (s *ProcSet) Addrs() []string {
	addrs := make([]string, len(s.Procs))
	for i, p := range s.Procs {
		addrs[i] = p.Addr
	}
	return addrs
}

// Close SIGKILLs and reaps every child still running. Safe to defer
// unconditionally — already-dead children are already reaped.
//
//gesp:wallclock — real process teardown
func (s *ProcSet) Close() {
	for _, p := range s.Procs {
		//gesp:errok — teardown of possibly already-dead processes; nothing to do about failures
		_ = p.cmd.Process.Kill()
		//gesp:errok — killed processes report non-nil exit by design
		_ = p.Wait()
	}
}

// SpawnProcs re-executes the current binary n times with the payload
// in the environment and waits for each child to announce its address.
//
//gesp:wallclock — real process spawn with a host readiness deadline
func SpawnProcs(n int, payload string) (*ProcSet, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("chaos: resolve own binary: %w", err)
	}
	set := &ProcSet{}
	for i := 0; i < n; i++ {
		p, serr := spawnProc(exe, payload)
		if serr != nil {
			set.Close()
			return nil, fmt.Errorf("chaos: child %d: %w", i, serr)
		}
		set.Procs = append(set.Procs, p)
	}
	return set, nil
}

// readyTimeout bounds how long a child may take to print its address.
// Generous: CI machines under load can take seconds to exec a large
// test binary.
const readyTimeout = 30 * time.Second

//gesp:wallclock — real process spawn with a host readiness deadline
func spawnProc(exe, payload string) (*Proc, error) {
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), childEnv+"="+payload)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, readyPrefix) {
				addrCh <- strings.TrimSpace(strings.TrimPrefix(line, readyPrefix))
				// Keep draining so the child never blocks on a full pipe.
				//gesp:errok — discarding the child's remaining stdout; errors just end the drain
				_, _ = io.Copy(io.Discard, stdout)
				return
			}
		}
		if serr := sc.Err(); serr != nil {
			errCh <- serr
			return
		}
		errCh <- fmt.Errorf("child exited before reporting an address")
	}()
	select {
	case addr := <-addrCh:
		return &Proc{Addr: addr, cmd: cmd}, nil
	case rerr := <-errCh:
		//gesp:errok — the child is already broken; Kill is cleanup
		_ = cmd.Process.Kill()
		//gesp:errok — reaping a deliberately killed child
		_ = cmd.Wait()
		return nil, rerr
	case <-time.After(readyTimeout):
		//gesp:errok — the child is wedged; Kill is cleanup
		_ = cmd.Process.Kill()
		//gesp:errok — reaping a deliberately killed child
		_ = cmd.Wait()
		return nil, fmt.Errorf("child did not report an address within %v", readyTimeout)
	}
}
