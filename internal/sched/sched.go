// Package sched implements the shared-memory parallel supernodal GESP
// factorization. Because static pivoting fixes the elimination
// structure before any numerics run, the complete task dependency DAG —
// which panel factors, panel solves and Schur updates exist, and which
// must precede which — is derived once from the symbolic result, then
// executed by a pool of workers with atomic dependency counters: a task
// becomes ready the instant its last predecessor retires, with no
// global barriers. This is the shared-memory counterpart of the
// simulated distributed engine (internal/mpisim) and of the
// level-scheduled triangular solves (lu.LevelSchedule): all three
// exploit the same property of GESP, a schedule knowable a priori.
//
// The task graph per supernode K:
//
//	factor(K)     — dense LU of the diagonal block K (no pivoting);
//	                waits for every Schur update targeting (K,K).
//	lsolve(K,I)   — L(I,K) = A(I,K)·U(K,K)⁻¹ for each off-diagonal L
//	                block; waits for factor(K) and updates to (I,K).
//	usolve(K,J)   — U(K,J) = L(K,K)⁻¹·A(K,J); waits for factor(K) and
//	                updates to (K,J).
//	urow(K)       — zero-work milestone: all usolve(K,·) done.
//	update(K,I)   — target(I,J) -= L(I,K)·U(K,J) for every J of panel K
//	                (one task per L-block row, fused across targets for
//	                scheduling granularity); waits for lsolve(K,I) and
//	                urow(K).
//
// Concurrent update tasks from different panels K may race on the same
// target block; a per-target-block mutex (keyed by the grid's dense
// block id) serializes them. Each worker owns a dist.UpdateScratch so
// the update hot path never allocates. Ready factor tasks are seeded
// deepest-subtree-first using the supernodal elimination forest
// (symbolic.SupHeights), approximating critical-path-first scheduling.
package sched

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"gesp/internal/check"
	"gesp/internal/dist"
	"gesp/internal/lu"
	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

type taskKind uint8

const (
	taskFactor taskKind = iota
	taskLSolve
	taskUSolve
	taskURow // milestone: every usolve of the panel retired
	taskUpdate
)

// updTarget is one destination of a fused row-update task: the U
// operand index within the panel and the target block with its lock id.
type updTarget struct {
	ui  int
	tgt *dist.Block
	id  int
}

// task is one node of the dependency DAG. deps counts outstanding
// predecessors; the worker that decrements it to zero enqueues the task.
type task struct {
	kind    taskKind
	k       int // panel (supernode) index
	idx     int // L/U block index within panel k
	deps    atomic.Int32
	succ    []*task
	targets []updTarget // update tasks only
}

// succArena carves the tasks' successor lists from shared chunks
// instead of one heap allocation per task: the DAG build touches every
// block of the static structure, and per-task slice headers plus
// allocator bookkeeping dominated its profile. Carves are three-index
// slices (len 0, fixed cap), so an append past the carve can never
// bleed into a neighbour; a full chunk is simply replaced by a larger
// one (previous carves keep the old backing array alive).
type succArena struct {
	buf []*task
	off int
}

func (a *succArena) carve(n int) []*task {
	if a.off+n > len(a.buf) {
		a.buf = make([]*task, 2*len(a.buf)+n)
		a.off = 0
	}
	s := a.buf[a.off : a.off : a.off+n]
	a.off += n
	return s
}

// graph is the fully materialized task DAG over a block grid.
type graph struct {
	st      *dist.Structure
	grid    *dist.BlockGrid
	factor  []*task
	lsolve  [][]*task
	usolve  [][]*task
	total   int
	initial []*task // zero-dependency tasks, critical path first
}

// consumer returns the task that reads block (i, j) as its own input:
// the factor of a diagonal block, or the panel solve of an off-diagonal
// one. Every update targeting (i, j) precedes it.
func (g *graph) consumer(i, j int) *task {
	switch {
	case i == j:
		return g.factor[i]
	case i > j:
		lbs := g.st.LBlocks[j]
		p := sort.Search(len(lbs), func(q int) bool { return lbs[q].I >= i })
		if p < len(lbs) && lbs[p].I == i {
			return g.lsolve[j][p]
		}
	default:
		ubs := g.st.UBlocks[i]
		p := sort.Search(len(ubs), func(q int) bool { return ubs[q].J >= j })
		if p < len(ubs) && ubs[p].J == j {
			return g.usolve[i][p]
		}
	}
	panic("sched: update targets a block outside the static structure")
}

// buildGraph derives the task DAG from the static block structure.
func buildGraph(st *dist.Structure, grid *dist.BlockGrid, sym *symbolic.Result) *graph {
	ns := st.N
	g := &graph{
		st:     st,
		grid:   grid,
		factor: make([]*task, ns),
		lsolve: make([][]*task, ns),
		usolve: make([][]*task, ns),
	}
	// Slab-allocate the fixed-population task kinds: one factor per
	// supernode, one solve per off-diagonal block.
	nL, nU := 0, 0
	for k := 0; k < ns; k++ {
		nL += len(st.LBlocks[k])
		nU += len(st.UBlocks[k])
	}
	slab := make([]task, ns+nL+nU)
	next := 0
	alloc := func(kind taskKind, k, idx int) *task {
		t := &slab[next]
		next++
		t.kind, t.k, t.idx = kind, k, idx
		return t
	}
	// Successor lists come from the shared arena, seeded with the exact
	// fixed-population demand (factor fan-out plus one slot per panel
	// solve); update-task lists carve from the same chunks as they are
	// sized below.
	sa := succArena{buf: make([]*task, 2*(nL+nU)+ns)}
	for k := 0; k < ns; k++ {
		g.factor[k] = alloc(taskFactor, k, 0)
		g.factor[k].succ = sa.carve(len(st.LBlocks[k]) + len(st.UBlocks[k]))
		g.lsolve[k] = make([]*task, len(st.LBlocks[k]))
		for i := range st.LBlocks[k] {
			t := alloc(taskLSolve, k, i)
			t.deps.Store(1) // factor(k)
			t.succ = sa.carve(1) // at most its fused update task
			g.lsolve[k][i] = t
			g.factor[k].succ = append(g.factor[k].succ, t)
		}
		g.usolve[k] = make([]*task, len(st.UBlocks[k]))
		for j := range st.UBlocks[k] {
			t := alloc(taskUSolve, k, j)
			t.deps.Store(1)
			t.succ = sa.carve(1) // at most the urow milestone
			g.usolve[k][j] = t
			g.factor[k].succ = append(g.factor[k].succ, t)
		}
	}
	g.total = ns + nL + nU
	// Update tasks, fused per L-block row: update(k, li) applies the
	// whole crossing L(I,K)·U(K,·) once lsolve(k,li) and every usolve of
	// the panel (the urow milestone) are done. Fusing keeps the task
	// count — and so the scheduling overhead — proportional to the
	// number of blocks, not to the number of block pairs. Targets absent
	// from the static fill carry only structural-zero contributions from
	// relaxed-supernode padding and are dropped at build time. Tasks and
	// their target lists live in shared slabs to keep the build off the
	// allocator's hot path.
	nMile, nUpd := 0, 0
	for k := 0; k < ns; k++ {
		if len(st.LBlocks[k]) > 0 && len(st.UBlocks[k]) > 0 {
			nMile++
			nUpd += len(st.LBlocks[k])
		}
	}
	updSlab := make([]task, nMile+nUpd)
	nextUpd := 0
	tgtSlab := make([]updTarget, 0, nUpd*4)
	for k := 0; k < ns; k++ {
		if len(st.LBlocks[k]) == 0 || len(st.UBlocks[k]) == 0 {
			continue
		}
		urow := &updSlab[nextUpd]
		nextUpd++
		urow.kind, urow.k = taskURow, k
		urow.deps.Store(int32(len(g.usolve[k])))
		urow.succ = sa.carve(len(st.LBlocks[k]))
		for _, ut := range g.usolve[k] {
			ut.succ = append(ut.succ, urow)
		}
		g.total++
		for li, lb := range st.LBlocks[k] {
			base := len(tgtSlab)
			for ui, ub := range st.UBlocks[k] {
				if tgt, id := grid.Target(lb.I, ub.J); tgt != nil {
					tgtSlab = append(tgtSlab, updTarget{ui: ui, tgt: tgt, id: id})
				}
			}
			targets := tgtSlab[base:len(tgtSlab):len(tgtSlab)]
			if len(targets) == 0 {
				continue
			}
			t := &updSlab[nextUpd]
			nextUpd++
			t.kind, t.k, t.idx, t.targets = taskUpdate, k, li, targets
			t.deps.Store(2) // lsolve(k,li) and urow(k)
			t.succ = sa.carve(len(targets))
			g.lsolve[k][li].succ = append(g.lsolve[k][li].succ, t)
			urow.succ = append(urow.succ, t)
			for _, ut := range targets {
				cons := g.consumer(lb.I, st.UBlocks[k][ut.ui].J)
				cons.deps.Add(1)
				t.succ = append(t.succ, cons)
			}
			g.total++
		}
	}
	// Seed: every task whose dependency count is already zero (factor
	// tasks of supernodes receiving no updates — the etree leaves),
	// ordered deepest subtree first so long chains start early.
	heights := sym.SupHeights()
	for k := 0; k < ns; k++ {
		if g.factor[k].deps.Load() == 0 {
			g.initial = append(g.initial, g.factor[k])
		}
	}
	sort.SliceStable(g.initial, func(a, b int) bool {
		return heights[g.initial[a].k] > heights[g.initial[b].k]
	})
	if check.Enabled {
		check.Must(g.audit())
	}
	return g
}

// Factorize runs the blocked right-looking GESP factorization over the
// static structure on a pool of workers (0 or negative means
// runtime.GOMAXPROCS). The schedule is the dependency DAG itself rather
// than the serial panel order, so independent subtrees of the
// supernodal elimination forest factor concurrently; the numeric result
// matches dist.FactorizeBlocked up to the rounding reordering of
// commuted Schur-update sums. Returns the factored blocks and the
// number of replaced tiny pivots.
func Factorize(a *sparse.CSC, sym *symbolic.Result, opts lu.Options, workers int) (*dist.BlockSet, int, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	st := dist.BuildStructure(sym)
	grid := dist.NewGrid(st)
	grid.Scatter(a)
	if st.N == 0 {
		return dist.NewBlockSet(grid), 0, nil
	}
	thresh := opts.Threshold
	if thresh == 0 {
		thresh = math.Sqrt(lu.Eps) * a.Norm1()
	}
	g := buildGraph(st, grid, sym)

	// The queue is buffered to hold every task, so sends never block and
	// the worker loop is a plain channel receive. On a zero-pivot failure
	// the abort flag makes the remaining tasks no-ops: they still flow
	// through the dependency bookkeeping, so `remaining` reaches zero and
	// the queue closes on every path.
	queue := make(chan *task, g.total)
	var closeQueue sync.Once
	var remaining atomic.Int64
	remaining.Store(int64(g.total))
	var tiny atomic.Int64
	var aborted atomic.Bool
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		aborted.Store(true)
	}
	locks := make([]sync.Mutex, grid.NumBlocks())

	run := func(t *task, ws *dist.UpdateScratch) {
		if !aborted.Load() {
			switch t.kind {
			case taskFactor:
				diag := grid.Diag[t.k]
				nt, _, ok := diag.FactorDiag(thresh, opts.ReplaceTinyPivot)
				if !ok {
					fail(fmt.Errorf("sched: supernode %d: %w", t.k, lu.ErrZeroPivot))
				} else if nt > 0 {
					tiny.Add(int64(nt))
				}
			case taskLSolve:
				grid.L[t.k][t.idx].SolveUFromRight(grid.Diag[t.k])
			case taskUSolve:
				grid.U[t.k][t.idx].SolveLFromLeft(grid.Diag[t.k])
			case taskURow:
				// Milestone: bookkeeping only.
			case taskUpdate:
				l := grid.L[t.k][t.idx]
				for _, ut := range t.targets {
					u := grid.U[t.k][ut.ui]
					locks[ut.id].Lock()
					ut.tgt.RankBUpdateInto(l, u, ws)
					locks[ut.id].Unlock()
				}
			}
		}
		for _, s := range t.succ {
			if s.deps.Add(-1) == 0 {
				queue <- s
			}
		}
		if remaining.Add(-1) == 0 {
			closeQueue.Do(func() { close(queue) })
		}
	}

	for _, t := range g.initial {
		queue <- t
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ws dist.UpdateScratch
			for t := range queue {
				run(t, &ws)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, int(tiny.Load()), firstErr
	}
	return dist.NewBlockSet(grid), int(tiny.Load()), nil
}
