package sched_test

import (
	"math"
	"math/rand"
	"testing"

	"gesp/internal/core"
	"gesp/internal/lu"
	"gesp/internal/matgen"
	"gesp/internal/sched"
	"gesp/internal/sparse"
	"gesp/internal/superlu"
	"gesp/internal/symbolic"
)

var workerSweep = []int{1, 2, 4, 8}

// maxAbsFactors returns the largest magnitude over both factor arrays,
// the scale for componentwise comparisons.
func maxAbsFactors(f *lu.Factors) float64 {
	m := 0.0
	for _, v := range f.LVal {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	for _, v := range f.UVal {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// assertFactorsClose compares two factorizations componentwise. The
// parallel schedule commutes Schur-update sums, so the factors agree to
// a rounding-level tolerance rather than bitwise.
func assertFactorsClose(t *testing.T, label string, ref, got *lu.Factors) {
	t.Helper()
	tol := 1e-8 * (1 + maxAbsFactors(ref))
	for q := range ref.LVal {
		if d := math.Abs(ref.LVal[q] - got.LVal[q]); d > tol {
			t.Fatalf("%s: L diverges by %g at %d (tol %g)", label, d, q, tol)
		}
	}
	for p := range ref.UVal {
		if d := math.Abs(ref.UVal[p] - got.UVal[p]); d > tol {
			t.Fatalf("%s: U diverges by %g at %d (tol %g)", label, d, p, tol)
		}
	}
	if ref.TinyPivots != got.TinyPivots {
		t.Fatalf("%s: tiny pivots %d, reference %d", label, got.TinyPivots, ref.TinyPivots)
	}
}

// TestParallelMatchesScalarOnTestbed is the golden test: across testbed
// matrices run through the full GESP preprocessing, the DAG-scheduled
// factors must match the scalar left-looking reference componentwise
// for every worker count.
func TestParallelMatchesScalarOnTestbed(t *testing.T) {
	names := []string{"AF23560", "MEMPLUS", "SHERMAN4", "TWOTONE", "WANG4", "EX11"}
	scale := 0.12
	if testing.Short() {
		names = []string{"SHERMAN4", "MEMPLUS"}
		scale = 0.06
	}
	for _, name := range names {
		m, ok := matgen.Lookup(name)
		if !ok {
			t.Fatalf("unknown testbed matrix %s", name)
		}
		a := m.Generate(scale)
		s, err := core.NewAnalysis(a, core.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: analysis: %v", name, err)
		}
		ap, sym := s.PermutedMatrix(), s.Symbolic()
		opts := lu.Options{ReplaceTinyPivot: true}
		ref, err := lu.Factorize(ap, sym, opts)
		if err != nil {
			t.Fatalf("%s: scalar reference: %v", name, err)
		}
		for _, w := range workerSweep {
			got, err := superlu.FactorizeParallel(ap, sym, opts, w)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			assertFactorsClose(t, name, ref, got)
			// The factors must actually solve the system.
			want := make([]float64, ap.Rows)
			for i := range want {
				want[i] = 1
			}
			b := make([]float64, ap.Rows)
			ap.MatVec(b, want)
			got.Solve(b)
			if e := sparse.RelErrInf(b, want); e > 1e-6 {
				t.Fatalf("%s workers=%d: solve error %g", name, w, e)
			}
		}
	}
}

// TestParallelSmallRace is the -short-friendly test meant to run under
// `go test -race`: a modest random system factored repeatedly with
// several workers, exercising the per-target-block locking and the
// atomic dependency counters.
func TestParallelSmallRace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		n := 120 + 40*trial
		tr := sparse.NewTriplet(n, n)
		for j := 0; j < n; j++ {
			tr.Append(j, j, 4+rng.Float64())
			for i := 0; i < n; i++ {
				if i != j && rng.Float64() < 0.05 {
					tr.Append(i, j, rng.NormFloat64())
				}
			}
		}
		a := tr.ToCSC()
		sym, err := symbolic.Factorize(a, symbolic.Options{MaxSuper: 6})
		if err != nil {
			t.Fatal(err)
		}
		opts := lu.Options{ReplaceTinyPivot: true}
		ref, err := lu.Factorize(a, sym, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4} {
			got, err := superlu.FactorizeParallel(a, sym, opts, w)
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, w, err)
			}
			assertFactorsClose(t, "random", ref, got)
		}
	}
}

// TestDefaultWorkerCount exercises the workers<=0 GOMAXPROCS path.
func TestDefaultWorkerCount(t *testing.T) {
	m, _ := matgen.Lookup("SHERMAN4")
	a := m.Generate(0.06)
	s, err := core.NewAnalysis(a, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sched.Factorize(s.PermutedMatrix(), s.Symbolic(), lu.Options{ReplaceTinyPivot: true}, 0); err != nil {
		t.Fatal(err)
	}
}

// TestZeroPivotPropagates: a structurally singular pivot with
// replacement disabled must surface lu.ErrZeroPivot, not hang the pool.
func TestZeroPivotPropagates(t *testing.T) {
	tr := sparse.NewTriplet(2, 2)
	tr.Append(0, 1, 1)
	tr.Append(1, 0, 1)
	tr.Append(0, 0, 0)
	tr.Append(1, 1, 0)
	a := tr.ToCSC()
	sym, err := symbolic.Factorize(a, symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		if _, err := superlu.FactorizeParallel(a, sym, lu.Options{}, w); err == nil {
			t.Errorf("workers=%d: zero pivot accepted without replacement", w)
		}
	}
	f, err := superlu.FactorizeParallel(a, sym, lu.Options{ReplaceTinyPivot: true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.TinyPivots == 0 {
		t.Error("tiny pivots not counted")
	}
}
