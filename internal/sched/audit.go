package sched

import (
	"fmt"

	"gesp/internal/check"
)

// kindNames labels tasks in audit failures.
var kindNames = [...]string{
	taskFactor: "factor",
	taskLSolve: "lsolve",
	taskUSolve: "usolve",
	taskURow:   "urow",
	taskUpdate: "update",
}

// tasks enumerates every node of the DAG: the statically allocated
// factor/lsolve/usolve tasks plus the urow/update tasks discovered
// through successor edges.
func (g *graph) tasks() []*task {
	idx := make(map[*task]int)
	var all []*task
	add := func(t *task) {
		if _, ok := idx[t]; !ok {
			idx[t] = len(all)
			all = append(all, t)
		}
	}
	for k := range g.factor {
		add(g.factor[k])
		for _, t := range g.lsolve[k] {
			add(t)
		}
		for _, t := range g.usolve[k] {
			add(t)
		}
	}
	for q := 0; q < len(all); q++ { // BFS closure over succ edges
		for _, s := range all[q].succ {
			add(s)
		}
	}
	return all
}

// audit verifies the two properties the lock-free scheduler relies on:
// every task's atomic dependency counter equals its in-degree in the
// successor graph (a mismatch deadlocks the pool or runs a task before
// its inputs are ready — a race), and the graph is acyclic (a cycle
// deadlocks the run with tasks that can never become ready). It must be
// called on a freshly built graph, before any counter is decremented.
func (g *graph) audit() error {
	all := g.tasks()
	if len(all) != g.total {
		return fmt.Errorf("sched: task DAG has %d reachable tasks, bookkeeping says %d", len(all), g.total)
	}
	idx := make(map[*task]int, len(all))
	for i, t := range all {
		idx[t] = i
	}
	indeg := make([]int, len(all))
	for _, t := range all {
		for _, s := range t.succ {
			indeg[idx[s]]++
		}
	}
	for i, t := range all {
		if int32(indeg[i]) != t.deps.Load() {
			return fmt.Errorf("sched: %s(%d,%d) dependency counter is %d, but %d predecessor edges exist",
				kindNames[t.kind], t.k, t.idx, t.deps.Load(), indeg[i])
		}
	}
	return check.AcyclicDAG(len(all), func(u int) []int {
		succ := make([]int, len(all[u].succ))
		for j, s := range all[u].succ {
			succ[j] = idx[s]
		}
		return succ
	})
}
