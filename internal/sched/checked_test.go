//go:build gespcheck

package sched

import (
	"strings"
	"testing"

	"gesp/internal/dist"
	"gesp/internal/lu"
	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

// arrowMatrix builds an n×n arrow matrix: dense last row and column, so
// every supernode has off-diagonal panels and Schur-update tasks.
func arrowMatrix(n int) *sparse.CSC {
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		d[i][i] = 4
	}
	for i := 0; i < n; i++ {
		d[i][n-1] = 1
		d[n-1][i] = 1
	}
	return sparse.FromDense(d)
}

// buildTestGraph constructs the task DAG of a small arrow matrix, whose
// dense last row/column guarantees off-diagonal panels and Schur-update
// tasks in every supernode.
func buildTestGraph(t *testing.T) *graph {
	t.Helper()
	a := arrowMatrix(12)
	sym, err := symbolic.Factorize(a, symbolic.Options{MaxSuper: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := dist.BuildStructure(sym)
	grid := dist.NewGrid(st)
	grid.Scatter(a)
	return buildGraph(st, grid, sym)
}

func TestAuditAcceptsFreshGraph(t *testing.T) {
	g := buildTestGraph(t)
	if err := g.audit(); err != nil {
		t.Fatalf("audit rejected a freshly built DAG: %v", err)
	}
}

func TestAuditDetectsCycle(t *testing.T) {
	g := buildTestGraph(t)
	// Close a cycle: make a successor of factor(0) point back at it,
	// keeping the dependency counter consistent with the extra edge so
	// only the acyclicity audit can object.
	f0 := g.factor[0]
	if len(f0.succ) == 0 {
		t.Fatal("test graph has no successor edges to corrupt")
	}
	back := f0.succ[0]
	back.succ = append(back.succ, f0)
	f0.deps.Add(1)
	err := g.audit()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("audit = %v, want cycle detection", err)
	}
}

func TestAuditDetectsCounterMismatch(t *testing.T) {
	g := buildTestGraph(t)
	// A dependency counter that exceeds the real in-degree would
	// deadlock the worker pool: the task never becomes ready.
	g.factor[len(g.factor)-1].deps.Add(3)
	err := g.audit()
	if err == nil || !strings.Contains(err.Error(), "dependency counter") {
		t.Fatalf("audit = %v, want dependency-counter mismatch", err)
	}
}

func TestFactorizeRunsUnderCheckedBuild(t *testing.T) {
	a := arrowMatrix(12)
	sym, err := symbolic.Factorize(a, symbolic.Options{MaxSuper: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Factorize(a, sym, lu.Options{ReplaceTinyPivot: true}, 2); err != nil {
		t.Fatal(err)
	}
}
