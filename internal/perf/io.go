package perf

import (
	"encoding/json"
	"fmt"
	"os"
)

// WriteFile writes the snapshot as indented JSON (stable field order,
// trailing newline, so committed baselines diff cleanly).
func WriteFile(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: encode %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a snapshot, refusing schema mismatches.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("perf: parse %s: %w", path, err)
	}
	if f.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("perf: %s has schema %d, this build reads %d",
			path, f.SchemaVersion, SchemaVersion)
	}
	return &f, nil
}
