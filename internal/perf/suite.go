package perf

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"gesp/internal/core"
	"gesp/internal/dist"
	"gesp/internal/fleet"
	"gesp/internal/kernels"
	"gesp/internal/lu"
	"gesp/internal/matgen"
	"gesp/internal/superlu"
)

// Matrix is the testbed matrix the engine benchmarks run on: mid-sized,
// no zero diagonal, representative supernode widths.
const Matrix = "AF23560"

// bench describes one measurement: fn performs iters operations.
type bench struct {
	name    string
	class   string
	hot     bool
	measAll bool // measure allocs/op (hot kernels carry the zero-alloc guarantee)
	flops   float64
	iters   int
	fn      func()
}

// Run measures the suite and returns the snapshot. quick trims the
// repetition counts to smoke-test levels (CI wiring checks, not stable
// timings — quick snapshots still gate allocs, which don't need reps).
func Run(scale float64, quick bool) (*File, error) {
	reps, minTime := 5, 100*time.Millisecond
	if quick {
		reps, minTime = 1, 0
	}

	m, ok := matgen.Lookup(Matrix)
	if !ok {
		return nil, fmt.Errorf("perf: unknown testbed matrix %q", Matrix)
	}
	a := m.Generate(scale)
	s, err := core.NewAnalysis(a, core.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("perf: analysis: %w", err)
	}
	ap, sym := s.PermutedMatrix(), s.Symbolic()
	opts := lu.Options{ReplaceTinyPivot: true}
	f, err := lu.Factorize(ap, sym, opts)
	if err != nil {
		return nil, fmt.Errorf("perf: factorize: %w", err)
	}

	benches, err := kernelBenches()
	if err != nil {
		return nil, err
	}

	// Batched multi-RHS solve on the real factors.
	const nrhs = 8
	n := sym.N
	x := make([]float64, n*nrhs)
	rng := rand.New(rand.NewSource(7))
	solveFlops := float64(2*(len(f.LVal)+len(f.UVal))) * nrhs
	benches = append(benches, bench{
		name: "solve/multi/" + Matrix, class: "solve", hot: true, measAll: true,
		flops: solveFlops, iters: 1,
		fn: func() {
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			f.SolveMulti(x, nrhs)
		},
	})

	// Engines. The serial engines are deterministic single-thread work,
	// so their timings gate; the DAG-parallel engine is recorded for the
	// trajectory only.
	engFlops := float64(sym.Flops)
	benches = append(benches,
		bench{name: "engine/scalar-serial/" + Matrix, class: "engine", hot: true,
			flops: engFlops, iters: 1,
			fn: checked(func() error { _, err := lu.Factorize(ap, sym, opts); return err })},
		bench{name: "engine/blocked-serial/" + Matrix, class: "engine", hot: true,
			flops: engFlops, iters: 1,
			fn: checked(func() error { _, err := superlu.Factorize(ap, sym, opts); return err })},
		bench{name: "engine/dag-parallel/" + Matrix, class: "engine", hot: false,
			flops: engFlops, iters: 1,
			fn: checked(func() error { _, err := superlu.FactorizeParallel(ap, sym, opts, 0); return err })},
	)

	// Fleet routing: the consistent-hash lookup sits on every routed
	// solve, so its zero-alloc guarantee is gated; the end-to-end warm
	// solve through the router is recorded for the trajectory.
	ring := fleet.NewRing([]int{0, 1, 2, 3, 4, 5, 6, 7}, 0)
	keys := make([]uint64, 1024)
	k := uint64(0x9e3779b97f4a7c15)
	for i := range keys {
		k ^= k << 13
		k ^= k >> 7
		k ^= k << 17
		keys[i] = k
	}
	ringSink := 0
	benches = append(benches, bench{
		name: "fleet/ring-owner/8shards", class: "fleet", hot: true, measAll: true,
		iters: len(keys),
		fn: func() {
			for _, key := range keys {
				ringSink += ring.Owner(key)
			}
		},
	})

	fcfg := fleet.DefaultConfig()
	fcfg.Service.Options.Refine = false
	fcfg.Service.MaxDelay = 0
	fl := fleet.New(fcfg)
	defer fl.Close()
	fh, err := fl.Submit("perf", a)
	if err != nil {
		return nil, fmt.Errorf("perf: fleet submit: %w", err)
	}
	fb := matgen.OnesRHS(a)
	if _, err := fl.Solve("perf", fh, fb); err != nil {
		return nil, fmt.Errorf("perf: fleet warm solve: %w", err)
	}
	benches = append(benches, bench{
		name: "fleet/solve-warm/" + Matrix, class: "fleet", hot: false,
		flops: float64(2 * (len(f.LVal) + len(f.UVal))), iters: 1,
		fn: checked(func() error { _, err := fl.Solve("perf", fh, fb); return err }),
	})

	out := &File{
		SchemaVersion: SchemaVersion,
		GoVersion:     runtime.Version(),
		GOARCH:        runtime.GOARCH,
		Scale:         scale,
		Quick:         quick,
	}
	for _, b := range benches {
		out.Entries = append(out.Entries, measure(b, reps, minTime))
	}

	// Simulated distributed engine: the virtual-clock Mflops is the
	// paper-facing number; wall time is recorded but not gated.
	rhs := matgen.OnesRHS(ap)
	t0 := time.Now()
	res, err := dist.Solve(ap, sym, rhs, dist.Options{
		Procs: 8, Pipeline: true, EDAGPrune: true, ReplaceTinyPivot: true,
	})
	if err != nil {
		return nil, fmt.Errorf("perf: mpisim: %w", err)
	}
	out.Entries = append(out.Entries, Entry{
		Name: "sim/mpisim-p8/" + Matrix, Class: "sim", HotPath: false,
		NsPerOp: float64(time.Since(t0).Nanoseconds()), AllocsPerOp: -1,
		FlopsPerOp: engFlops, Mflops: res.Factor.Mflops,
	})
	if ringSink == -1 {
		return nil, fmt.Errorf("perf: impossible ring owner sum")
	}
	return out, nil
}

// kernelBenches builds the micro-kernel measurements at the supernodal
// shapes the engines feed them: maxSuper = 24 wide panels, row strips
// around the update tile.
func kernelBenches() ([]bench, error) {
	rng := rand.New(rand.NewSource(3))
	const mm, nn, kk = 192, 24, 24
	aV := randSlice(rng, mm*kk)
	bV := randSlice(rng, kk*nn)
	p := make([]float64, mm*nn)
	d := randSlice(rng, nn*nn)
	for i := 0; i < nn; i++ {
		d[i*nn+i] = 2 + float64(i%3)
	}
	panel := randSlice(rng, mm*nn)
	upanel := randSlice(rng, nn*nn)
	diagV := randSlice(rng, nn*nn)

	w := make([]float64, 4096)
	ind := make([]int, 256)
	for i := range ind {
		ind[i] = i * 16
	}
	val := randSlice(rng, len(ind))

	// A dist block pair for the full Schur-update path.
	rows := make([]int, mm)
	for i := range rows {
		rows[i] = i
	}
	kcols := make([]int, kk)
	for i := range kcols {
		kcols[i] = 10000 + i
	}
	ucols := make([]int, nn)
	for i := range ucols {
		ucols[i] = 20000 + i
	}
	lBlk := dist.NewBlock(rows, kcols)
	uBlk := dist.NewBlock(kcols, ucols)
	tBlk := dist.NewBlock(rows, ucols)
	copy(lBlk.Val, randSlice(rng, len(lBlk.Val)))
	copy(uBlk.Val, randSlice(rng, len(uBlk.Val)))
	var ws dist.UpdateScratch

	return []bench{
		{name: fmt.Sprintf("kernel/matmul/%dx%dx%d", mm, nn, kk), class: "kernel",
			hot: true, measAll: true, flops: 2 * mm * nn * kk, iters: 4,
			fn: func() {
				for r := 0; r < 4; r++ {
					kernels.MatMul(p, aV, bV, mm, nn, kk)
				}
			}},
		{name: fmt.Sprintf("kernel/trsm-upper-right/%dx%d", mm, nn), class: "kernel",
			hot: true, measAll: true, flops: mm * nn * nn, iters: 4,
			fn: func() {
				for r := 0; r < 4; r++ {
					kernels.TrsmUpperRight(panel, mm, nn, d, nn)
				}
			}},
		{name: fmt.Sprintf("kernel/trsm-lower-left/%dx%d", nn, nn), class: "kernel",
			hot: true, measAll: true, flops: nn * nn * nn, iters: 16,
			fn: func() {
				for r := 0; r < 16; r++ {
					kernels.TrsmLowerUnitLeft(upanel, nn, nn, d, nn)
				}
			}},
		{name: fmt.Sprintf("kernel/factor-diag/%d", nn), class: "kernel",
			hot: true, measAll: true, flops: 2.0 / 3 * nn * nn * nn, iters: 16,
			fn: func() {
				for r := 0; r < 16; r++ {
					for k := 0; k < nn; k++ {
						kernels.Rank1Trailing(diagV, nn, k)
					}
				}
			}},
		{name: fmt.Sprintf("kernel/spaxpy/%d", len(ind)), class: "kernel",
			hot: true, measAll: true, flops: 2 * float64(len(ind)), iters: 256,
			fn: func() {
				for r := 0; r < 256; r++ {
					kernels.SpAxpy(w, ind, val, 0.5)
				}
			}},
		{name: fmt.Sprintf("kernel/rankbupdate/%dx%dx%d", mm, nn, kk), class: "kernel",
			hot: true, measAll: true, flops: 2 * mm * nn * kk, iters: 4,
			fn: func() {
				for r := 0; r < 4; r++ {
					tBlk.RankBUpdateInto(lBlk, uBlk, &ws)
				}
			}},
	}, nil
}

// checked wraps a timed engine run whose failure mode was already
// exercised by the setup factorization on the identical inputs; a rerun
// failing differently would mean nondeterminism the test suite would
// catch, so the benchmark loop panics rather than propagating.
func checked(fn func() error) func() {
	return func() {
		if err := fn(); err != nil {
			panic(err)
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
		if i%5 == 0 {
			s[i] = 0
		}
	}
	return s
}

// measure times one bench: the best per-op time over at least reps runs
// spanning at least minTime, plus allocs/op when the bench carries the
// zero-alloc guarantee.
func measure(b bench, reps int, minTime time.Duration) Entry {
	b.fn() // warm caches, scratch high-water marks, one-time growth
	e := Entry{Name: b.name, Class: b.class, HotPath: b.hot, AllocsPerOp: -1, FlopsPerOp: b.flops}
	best := time.Duration(0)
	start := time.Now()
	for r := 0; r < reps || time.Since(start) < minTime; r++ {
		t0 := time.Now()
		b.fn()
		if d := time.Since(t0); best == 0 || d < best {
			best = d
		}
	}
	e.NsPerOp = float64(best.Nanoseconds()) / float64(b.iters)
	if b.measAll {
		e.AllocsPerOp = testing.AllocsPerRun(3, b.fn) / float64(b.iters)
	}
	if e.NsPerOp > 0 && b.flops > 0 {
		e.Mflops = b.flops / (e.NsPerOp / 1e9) / 1e6
	}
	return e
}
