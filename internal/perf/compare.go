package perf

import (
	"fmt"
	"sort"
)

// Regression is one gate violation found by Compare.
type Regression struct {
	Name string
	Kind string // "ns_per_op" | "allocs_per_op" | "missing"
	Old  float64
	New  float64
	// Detail is a rendered one-line description.
	Detail string
}

// Compare gates the new snapshot against the old baseline and returns
// every violation, sorted by entry name:
//
//   - a hot-path entry present in old but absent from new (coverage: a
//     renamed or dropped benchmark must move the baseline explicitly);
//   - any increase of allocs/op on a hot-path entry (machine-independent,
//     checked even in allocsOnly mode);
//   - ns/op above old·(1+tol) on a hot-path entry, unless allocsOnly is
//     set (wall time is only comparable between same-machine snapshots).
//
// Entries new in the snapshot but absent from the baseline are not
// violations — they are the normal way coverage grows.
func Compare(old, new *File, tol float64, allocsOnly bool) []Regression {
	newBy := make(map[string]Entry, len(new.Entries))
	for _, e := range new.Entries {
		newBy[e.Name] = e
	}
	var regs []Regression
	for _, o := range old.Entries {
		if !o.HotPath {
			continue
		}
		n, ok := newBy[o.Name]
		if !ok {
			regs = append(regs, Regression{
				Name: o.Name, Kind: "missing",
				Detail: fmt.Sprintf("%s: hot-path baseline entry missing from new snapshot", o.Name),
			})
			continue
		}
		if o.AllocsPerOp >= 0 && n.AllocsPerOp > o.AllocsPerOp {
			regs = append(regs, Regression{
				Name: o.Name, Kind: "allocs_per_op", Old: o.AllocsPerOp, New: n.AllocsPerOp,
				Detail: fmt.Sprintf("%s: allocs/op %.1f -> %.1f", o.Name, o.AllocsPerOp, n.AllocsPerOp),
			})
		}
		if !allocsOnly && o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*(1+tol) {
			regs = append(regs, Regression{
				Name: o.Name, Kind: "ns_per_op", Old: o.NsPerOp, New: n.NsPerOp,
				Detail: fmt.Sprintf("%s: ns/op %.0f -> %.0f (+%.1f%%, tolerance %.1f%%)",
					o.Name, o.NsPerOp, n.NsPerOp, 100*(n.NsPerOp/o.NsPerOp-1), 100*tol),
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Kind < regs[j].Kind
	})
	return regs
}
