// Package perf is the kernel campaign's measurement and regression-gate
// infrastructure: a schema-versioned benchmark snapshot (BENCH_<n>.json),
// a suite that measures the micro-kernels and the factorization engines,
// and a comparator that gates hot-path regressions.
//
// Gate policy (see DESIGN.md "Kernel campaign & perf gate"): allocs/op
// on hot-path entries is machine-independent and deterministic, so any
// increase fails everywhere, including CI. ns/op is gated at a relative
// tolerance (default 5%) but only means something for two snapshots
// taken on the same machine — CI therefore runs the comparator in
// allocs-only mode against the committed BENCH_0.json, while the full
// ns gate backs same-machine before/after comparisons (make bench on a
// dev box, gesp-perfdiff old new).
package perf

// SchemaVersion identifies the BENCH_*.json layout. Bump on any
// incompatible change; the reader refuses mismatched files so the
// comparator never silently diffs across layouts.
const SchemaVersion = 1

// File is one benchmark snapshot.
type File struct {
	SchemaVersion int     `json:"schema_version"`
	GoVersion     string  `json:"go_version"`
	GOARCH        string  `json:"goarch"`
	Scale         float64 `json:"scale"` // testbed matrix scale the engines ran at
	Quick         bool    `json:"quick"` // reduced-iteration smoke snapshot
	Entries       []Entry `json:"entries"`
}

// Entry is one measurement.
//
// HotPath marks entries whose regression fails the gate: the
// deterministic single-threaded measurements (kernel micro-benchmarks,
// the serial engines, the batched solve). Concurrency-scheduled
// measurements (dag-parallel) are recorded for trajectory but never
// gated — their wall time is scheduler noise.
type Entry struct {
	Name    string `json:"name"`
	Class   string `json:"class"` // "kernel" | "engine" | "solve" | "sim"
	HotPath bool   `json:"hot_path"`

	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is -1 when allocations were not measured for this
	// entry (engine-class runs allocate by design; only hot kernels
	// carry the zero-alloc guarantee).
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`

	// FlopsPerOp is the arithmetic work of one operation when known;
	// Mflops = FlopsPerOp / (NsPerOp/1e9) / 1e6. For class "sim" the
	// Mflops is the simulated (virtual-clock) rate per engine.
	FlopsPerOp float64 `json:"flops_per_op,omitempty"`
	Mflops     float64 `json:"mflops,omitempty"`
}
