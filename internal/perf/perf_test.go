package perf

import (
	"path/filepath"
	"testing"
)

func baseline() *File {
	return &File{
		SchemaVersion: SchemaVersion,
		GoVersion:     "go0.0",
		Entries: []Entry{
			{Name: "kernel/matmul/192x24x24", Class: "kernel", HotPath: true, NsPerOp: 1000, AllocsPerOp: 0},
			{Name: "engine/scalar-serial/AF23560", Class: "engine", HotPath: true, NsPerOp: 500000, AllocsPerOp: -1},
			{Name: "engine/dag-parallel/AF23560", Class: "engine", HotPath: false, NsPerOp: 200000, AllocsPerOp: -1},
		},
	}
}

// TestCompareGatesSyntheticRegression is the acceptance check for the
// 5% gate: a synthetic >5% ns/op slowdown on a hot-path entry must be
// reported, a 4% one must not, and non-hot entries never gate.
func TestCompareGatesSyntheticRegression(t *testing.T) {
	old := baseline()

	within := baseline()
	within.Entries[0].NsPerOp = 1040   // +4%: inside tolerance
	within.Entries[2].NsPerOp = 900000 // +350% on a non-hot entry: ignored
	if regs := Compare(old, within, 0.05, false); len(regs) != 0 {
		t.Fatalf("within-tolerance snapshot flagged: %+v", regs)
	}

	slow := baseline()
	slow.Entries[0].NsPerOp = 1060 // +6%: over the 5% gate
	regs := Compare(old, slow, 0.05, false)
	if len(regs) != 1 || regs[0].Kind != "ns_per_op" || regs[0].Name != "kernel/matmul/192x24x24" {
		t.Fatalf("6%% regression not gated: %+v", regs)
	}
	// The same snapshot passes in allocs-only mode (CI on a different
	// machine must not fail on wall time).
	if regs := Compare(old, slow, 0.05, true); len(regs) != 0 {
		t.Fatalf("allocs-only mode gated on ns/op: %+v", regs)
	}
}

func TestCompareGatesAllocsAndCoverage(t *testing.T) {
	old := baseline()

	leak := baseline()
	leak.Entries[0].AllocsPerOp = 2
	regs := Compare(old, leak, 0.05, true)
	if len(regs) != 1 || regs[0].Kind != "allocs_per_op" {
		t.Fatalf("alloc increase not gated in allocs-only mode: %+v", regs)
	}

	missing := baseline()
	missing.Entries = missing.Entries[1:] // drop the hot kernel entry
	regs = Compare(old, missing, 0.05, true)
	if len(regs) != 1 || regs[0].Kind != "missing" {
		t.Fatalf("dropped hot-path entry not gated: %+v", regs)
	}

	// Unmeasured allocs (-1 sentinel) never gate.
	unmeasured := baseline()
	unmeasured.Entries[1].NsPerOp = 500001
	if regs := Compare(old, unmeasured, 0.05, true); len(regs) != 0 {
		t.Fatalf("-1 alloc sentinel gated: %+v", regs)
	}
}

func TestFileRoundTripAndSchemaGuard(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	f := baseline()
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(f.Entries) || got.Entries[0] != f.Entries[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}

	f.SchemaVersion = SchemaVersion + 1
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

// TestSuiteQuickRun smoke-tests the measurement suite end to end at a
// tiny scale: every expected entry present, hot kernels alloc-free.
func TestSuiteQuickRun(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run factors the testbed matrix")
	}
	f, err := Run(0.15, true)
	if err != nil {
		t.Fatal(err)
	}
	if f.SchemaVersion != SchemaVersion || !f.Quick {
		t.Fatalf("bad snapshot header: %+v", f)
	}
	classes := map[string]int{}
	for _, e := range f.Entries {
		classes[e.Class]++
		if e.NsPerOp <= 0 {
			t.Errorf("%s: non-positive ns/op %v", e.Name, e.NsPerOp)
		}
		if e.Class == "kernel" && e.AllocsPerOp != 0 {
			t.Errorf("%s: hot kernel reports %v allocs/op", e.Name, e.AllocsPerOp)
		}
	}
	for _, c := range []string{"kernel", "engine", "solve", "sim"} {
		if classes[c] == 0 {
			t.Errorf("no %q entries in suite output", c)
		}
	}
}
