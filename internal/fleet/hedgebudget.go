package fleet

import "sync"

// HedgeBudget caps duplicated hedge work at a fraction of routed
// traffic: every routed request accrues `rate` tokens (a rate of 0.1
// means at most ~10% of traffic may be hedged in steady state), and
// launching one hedge spends one whole token. The bucket starts full at
// `burst` so a cold fleet can still hedge its first stragglers, but a
// straggler storm cannot double fleet load — once the bucket is dry,
// requests fall back to the unhedged path and the denial is counted.
//
// A nil *HedgeBudget, or one built with rate <= 0, is the unlimited
// budget: Accrue is a no-op and TryStake always grants. Both routers
// (the in-process Fleet and the cross-process fleetrpc.Fleet) share
// this type, so the ablation tables report hedge spend in the same
// units everywhere.
//
// The mutex makes the accrue/stake arithmetic atomic without
// allocating, which keeps the fleet/solve-warm hot path on its
// zero-allocation budget.
type HedgeBudget struct {
	rate  float64 // tokens accrued per routed request; <=0 means unlimited
	burst float64 // bucket capacity (and the cold-start balance)

	mu sync.Mutex
	//gesp:guardedby:mu
	tokens float64
	//gesp:guardedby:mu
	staked uint64 // hedges granted
	//gesp:guardedby:mu
	denied uint64 // hedges refused because the bucket was dry
}

// NewHedgeBudget builds a bucket granting at most ~rate hedges per
// routed request, with bursts of up to burst back-to-back hedges
// (burst < 1 is raised to 1 so a granted budget can always stake at
// least one token). rate <= 0 returns an unlimited budget.
func NewHedgeBudget(rate, burst float64) *HedgeBudget {
	if rate <= 0 {
		return &HedgeBudget{}
	}
	if burst < 1 {
		burst = 1
	}
	return &HedgeBudget{rate: rate, burst: burst, tokens: burst}
}

// limited reports whether the budget actually constrains hedging.
func (hb *HedgeBudget) limited() bool { return hb != nil && hb.rate > 0 }

// Accrue credits one routed request's worth of hedge allowance.
func (hb *HedgeBudget) Accrue() {
	if !hb.limited() {
		return
	}
	hb.mu.Lock()
	hb.tokens += hb.rate
	if hb.tokens > hb.burst {
		hb.tokens = hb.burst
	}
	hb.mu.Unlock()
}

// TryStake spends one token to launch a hedge. It returns false — and
// counts the denial — when the bucket is dry; an unlimited budget
// always grants.
func (hb *HedgeBudget) TryStake() bool {
	if !hb.limited() {
		return true
	}
	hb.mu.Lock()
	defer hb.mu.Unlock()
	if hb.tokens >= 1 {
		hb.tokens--
		hb.staked++
		return true
	}
	hb.denied++
	return false
}

// Counts snapshots the grant/denial counters (both zero for an
// unlimited budget, which never refuses and never needs accounting).
func (hb *HedgeBudget) Counts() (staked, denied uint64) {
	if !hb.limited() {
		return 0, 0
	}
	hb.mu.Lock()
	defer hb.mu.Unlock()
	return hb.staked, hb.denied
}
