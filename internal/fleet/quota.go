package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrOverQuota is the admission-control rejection class. The error
// actually returned is a *QuotaError carrying the tenant and a
// retry-after hint; errors.Is against this sentinel matches it.
//
// Quota rejections are deliberately typed apart from serve's
// ErrOverloaded: an overloaded shard is a per-shard condition worth
// retrying on a replica, while a quota rejection follows the tenant to
// every shard — retrying elsewhere only burns router work.
var ErrOverQuota = errors.New("fleet: tenant over quota")

// QuotaError is the typed admission rejection.
type QuotaError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("fleet: tenant %q over quota, retry after %v", e.Tenant, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverQuota) true for the typed error.
func (e *QuotaError) Is(target error) bool { return target == ErrOverQuota }

// quotas is the per-tenant token-bucket table: each tenant accrues
// rate tokens/second up to burst; a request spends one token or is
// rejected with the time until the next token accrues. Buckets are
// created on first sight of a tenant.
type quotas struct {
	rate  float64 // tokens per second; <=0 disables admission control
	burst float64

	mu sync.Mutex
	//gesp:guardedby:mu
	buckets map[string]*bucket
	// rng jitters rejection waits; seeded deterministically so quota
	// behavior reproduces, guarded because rand.Rand is not
	// concurrency-safe.
	//gesp:guardedby:mu
	rng *rand.Rand
}

// retryJitter is the jitter band added to a quota rejection's
// RetryAfter: up to +50% of the base wait. Without it, every client of
// a throttled tenant computes the identical wait and retries in
// lockstep, re-forming the same thundering herd one refill later.
const retryJitter = 0.5

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotas(rate, burst float64) *quotas {
	if burst < 1 {
		burst = 1
	}
	return &quotas{
		rate:    rate,
		burst:   burst,
		buckets: make(map[string]*bucket),
		rng:     rand.New(rand.NewSource(1)),
	}
}

// admit spends one of tenant's tokens at time now. When the bucket is
// empty it returns false and a jittered wait at least as long as the
// time until one token has accrued (never exactly the same twice, so
// rejected clients don't retry in lockstep).
func (q *quotas) admit(tenant string, now time.Time) (bool, time.Duration) {
	if q.rate <= 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[tenant]
	if !ok {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / q.rate * float64(time.Second))
	wait += time.Duration(retryJitter * q.rng.Float64() * float64(wait))
	return false, wait
}
