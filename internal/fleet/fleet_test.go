package fleet

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gesp/internal/matgen"
	"gesp/internal/serve"
	"gesp/internal/sparse"
)

const testScale = 0.25

type system struct {
	a    *sparse.CSC
	b    []float64
	want []float64
}

func testbedSystem(t testing.TB, name string, valueSeed int64) system {
	t.Helper()
	m, ok := matgen.Lookup(name)
	if !ok {
		t.Fatalf("testbed matrix %s missing", name)
	}
	a := m.Generate(testScale)
	if valueSeed != 0 {
		rng := rand.New(rand.NewSource(valueSeed))
		for k := range a.Val {
			a.Val[k] *= 1 + 0.1*rng.NormFloat64()
		}
	}
	want := make([]float64, a.Rows)
	for i := range want {
		want[i] = 1
	}
	b := make([]float64, a.Rows)
	a.MatVec(b, want)
	return system{a: a, b: b, want: want}
}

func checkSolution(t *testing.T, x, want []float64) {
	t.Helper()
	if e := sparse.RelErrInf(x, want); e > 2e-3 {
		t.Fatalf("fleet solution error %g", e)
	}
}

// quietConfig is a fleet with every optional policy off: no
// replication, no hedging, no quotas — routing and drain only.
func quietConfig(shards int) Config {
	cfg := DefaultConfig()
	cfg.Shards = shards
	cfg.ReplicationFactor = 1
	cfg.HotThreshold = 0
	cfg.HedgeQueueDepth = 0
	cfg.HedgeP95 = 0
	return cfg
}

// TestFleetRoutingCorrectness: submits land on the pattern's ring
// owner, solves are correct, and nothing runs anywhere else.
func TestFleetRoutingCorrectness(t *testing.T) {
	f := New(quietConfig(4))
	defer f.Close()

	names := []string{"SHERMAN4", "GEMAT11", "WEST2021"}
	for _, name := range names {
		sys := testbedSystem(t, name, 0)
		h, err := f.Submit("tenant-a", sys.a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		x, err := f.Solve("tenant-a", h, sys.b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkSolution(t, x, sys.want)

		owner := f.Ring().Owner(sparse.PatternHash(sys.a))
		st := f.Stats()
		for _, sh := range st.Shards {
			if sh.ID == owner && sh.Serve.Submits == 0 {
				t.Fatalf("%s: owner shard %d never saw the submit", name, owner)
			}
		}
	}
	st := f.Stats()
	var solves uint64
	for _, sh := range st.Shards {
		solves += sh.Solves
	}
	if solves != uint64(len(names)) || st.Routed != uint64(len(names)) {
		t.Fatalf("solve accounting: %d shard solves, %d routed, want %d", solves, st.Routed, len(names))
	}
	if st.Failed != 0 {
		t.Fatalf("%d failed requests on a healthy fleet", st.Failed)
	}
}

// TestFleetReplicationSharesSymbolic: Replicate populates the ring
// successor from the owner's exported symbolic donor — the replica
// performs zero symbolic analyses of its own.
func TestFleetReplicationSharesSymbolic(t *testing.T) {
	cfg := quietConfig(3)
	cfg.ReplicationFactor = 2
	f := New(cfg)
	defer f.Close()

	sys := testbedSystem(t, "SHERMAN4", 0)
	h, err := f.Submit("t", sys.a)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Replicate(h); err != nil {
		t.Fatal(err)
	}
	var buf [maxReplication]int
	n := f.Ring().ReplicasInto(buf[:2], h.Key.Pattern)
	if n != 2 {
		t.Fatalf("placement size %d, want 2", n)
	}
	replica := f.shards[buf[1]]
	rst := replica.svc.Stats()
	if rst.SymbolicImports != 1 {
		t.Fatalf("replica symbolic imports = %d, want 1 (donor handoff)", rst.SymbolicImports)
	}
	if rst.SymbolicMisses != 0 {
		t.Fatalf("replica re-analyzed the pattern (%d symbolic misses); the donor must be shared", rst.SymbolicMisses)
	}
	if f.Stats().Promoted != 1 {
		t.Fatalf("promoted counter = %d, want 1", f.Stats().Promoted)
	}
	// Replication is idempotent at the placement level.
	if err := f.Replicate(h); err != nil {
		t.Fatal(err)
	}
}

// TestFleetHedgingBeatsStraggler: with the home shard stragglered and
// the pattern replicated, the p95 trigger hedges follow-up solves and
// the healthy replica wins them.
func TestFleetHedgingBeatsStraggler(t *testing.T) {
	cfg := quietConfig(3)
	cfg.ReplicationFactor = 2
	cfg.HedgeP95 = time.Millisecond
	f := New(cfg)
	defer f.Close()

	sys := testbedSystem(t, "SHERMAN4", 0)
	h, err := f.Submit("t", sys.a)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Replicate(h); err != nil {
		t.Fatal(err)
	}
	owner := f.Ring().Owner(h.Key.Pattern)
	f.cfg.Straggler = func(id int) time.Duration {
		if id == owner {
			return 10 * time.Millisecond
		}
		return 0
	}
	for i := 0; i < 8; i++ {
		x, err := f.Solve("t", h, sys.b)
		if err != nil {
			t.Fatal(err)
		}
		checkSolution(t, x, sys.want)
	}
	st := f.Stats()
	if st.Hedged == 0 {
		t.Fatalf("p95 %v over a 10ms straggler never hedged: %+v", cfg.HedgeP95, st)
	}
	if st.HedgeWins == 0 {
		t.Fatalf("healthy replica never beat the stragglered primary: %+v", st)
	}
}

// TestFleetQuota: a tenant over its token budget is rejected with the
// typed QuotaError while other tenants sail through.
func TestFleetQuota(t *testing.T) {
	cfg := quietConfig(1)
	cfg.TenantRate = 0.001 // effectively no refill within the test
	cfg.TenantBurst = 3
	f := New(cfg)
	defer f.Close()

	sys := testbedSystem(t, "SHERMAN4", 0)
	h, err := f.Submit("greedy", sys.a) // token 1
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // tokens 2, 3
		if _, err := f.Solve("greedy", h, sys.b); err != nil {
			t.Fatalf("solve %d within budget: %v", i, err)
		}
	}
	_, err = f.Solve("greedy", h, sys.b)
	if !errors.Is(err, ErrOverQuota) {
		t.Fatalf("over-budget solve: %v, want ErrOverQuota", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Tenant != "greedy" || qe.RetryAfter <= 0 {
		t.Fatalf("quota rejection payload: %+v", qe)
	}
	if _, err := f.Solve("frugal", h, sys.b); err != nil {
		t.Fatalf("other tenant must be unaffected: %v", err)
	}
	if f.Stats().QuotaDenied == 0 {
		t.Fatal("quotaDenied counter never moved")
	}
}

// TestFleetEvictionHeal: factors evicted under cache pressure are
// re-factored from the fleet registry on the next solve instead of
// surfacing ErrHandleExpired to the caller.
func TestFleetEvictionHeal(t *testing.T) {
	cfg := quietConfig(1)
	cfg.Service.MaxFactors = 1
	f := New(cfg)
	defer f.Close()

	sysA := testbedSystem(t, "SHERMAN4", 0)
	sysB := testbedSystem(t, "GEMAT11", 0)
	hA, err := f.Submit("t", sysA.a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit("t", sysB.a); err != nil { // evicts A's factors
		t.Fatal(err)
	}
	x, err := f.Solve("t", hA, sysA.b)
	if err != nil {
		t.Fatalf("evicted handle must heal, got %v", err)
	}
	checkSolution(t, x, sysA.want)
	if f.Stats().Resubmits == 0 {
		t.Fatal("heal never counted a resubmit")
	}
}

// TestFleetDrainZeroFailureZeroRefactor is the drain acceptance test:
// under concurrent load, draining a shard loses no request and — the
// cache-handoff guarantee — causes zero new numeric factorizations.
func TestFleetDrainZeroFailureZeroRefactor(t *testing.T) {
	f := New(quietConfig(4))
	defer f.Close()

	names := []string{"SHERMAN4", "GEMAT11", "WEST2021"}
	type entry struct {
		sys system
		h   serve.Handle
	}
	var pool []entry
	for _, name := range names {
		for v := int64(0); v < 2; v++ {
			sys := testbedSystem(t, name, v)
			h, err := f.Submit("t", sys.a)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Solve("t", h, sys.b); err != nil { // warm every factor
				t.Fatal(err)
			}
			pool = append(pool, entry{sys, h})
		}
	}
	runsWarm := f.Stats().FactorPhaseRuns()
	if runsWarm == 0 {
		t.Fatal("warmup ran no factorizations?")
	}
	target := f.Ring().Owner(pool[0].h.Key.Pattern)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := pool[rng.Intn(len(pool))]
				if _, err := f.Solve("t", e.h, e.sys.b); err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
			}
		}(int64(100 + c))
	}
	time.Sleep(20 * time.Millisecond) // let the load reach steady state
	if err := f.Drain(target); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // keep hammering the post-drain ring
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("request failed across the drain: %v", err)
	}

	// Every pattern must still solve, on the shrunken ring, without a
	// single new factorization: the drained shard's factors moved.
	for _, e := range pool {
		x, err := f.Solve("t", e.h, e.sys.b)
		if err != nil {
			t.Fatal(err)
		}
		checkSolution(t, x, e.sys.want)
	}
	st := f.Stats()
	if runs := st.FactorPhaseRuns(); runs != runsWarm {
		t.Fatalf("drain refactored: %d factor runs post-drain, %d at warmup", runs, runsWarm)
	}
	if st.Drains != 1 || st.HandoffFactor == 0 {
		t.Fatalf("drain accounting: drains=%d handoffFactors=%d", st.Drains, st.HandoffFactor)
	}
	if st.Failed != 0 {
		t.Fatalf("%d failed requests during drain, want 0", st.Failed)
	}
	for _, sh := range st.Shards {
		if sh.ID == target {
			if sh.Alive {
				t.Fatal("drained shard still marked alive")
			}
			if sh.QueueLen != 0 {
				t.Fatalf("drained shard still holds %d queued requests", sh.QueueLen)
			}
		}
	}
	// A second drain of the same shard must refuse.
	if err := f.Drain(target); err == nil {
		t.Fatal("double drain must error")
	}
}

// TestFleetCloseRejects: a closed fleet rejects new work cleanly.
func TestFleetCloseRejects(t *testing.T) {
	f := New(quietConfig(2))
	sys := testbedSystem(t, "SHERMAN4", 0)
	h, err := f.Submit("t", sys.a)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := f.Solve("t", h, sys.b); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("solve on closed fleet: %v, want ErrClosed", err)
	}
	if _, err := f.Submit("t", sys.a); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("submit on closed fleet: %v, want ErrClosed", err)
	}
	f.Close() // idempotent
}
