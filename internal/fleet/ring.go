// Package fleet shards the solve service: N in-process serve.Server
// nodes behind a router that consistent-hashes sparse.PatternHash
// fingerprints, so every sparsity pattern has a home shard whose
// two-level cache (symbolic analysis, numeric factors) stays hot for
// it. On top of placement the fleet layers the policies a
// million-user deployment needs:
//
//   - replication factor ≥2 for hot patterns, promoted by a popularity
//     tracker (the replica factors from the home shard's exported
//     symbolic donor — no re-analysis);
//   - hedged solves: when the primary's queue is deep or its observed
//     p95 is above threshold, the request races primary and replica,
//     first response wins and the loser is cancelled through the
//     ctx-aware batcher;
//   - per-tenant token-bucket admission control (quota rejections are
//     typed apart from shard overload: overload is worth a replica
//     retry, quota exhaustion follows the tenant everywhere);
//   - graceful drain + rebalance: a leaving shard's caches are handed
//     off to the new owners under the post-drain ring instead of
//     cold-restarting, so already-factored patterns never refactor.
package fleet

// Ring is an immutable consistent-hash ring over shard ids: each shard
// contributes VNodes points, a key is owned by the first point
// clockwise from the key's position. Immutability is the concurrency
// story — membership changes build a new Ring and atomically swap the
// pointer, so the lookup path takes no lock and performs no
// allocation.
//
// Placement churn is the consistent-hashing invariant: adding or
// removing one shard moves only the keys whose nearest point belonged
// to that shard, ~1/N of the space (tested in ring_test.go).
type Ring struct {
	// hashes are the sorted vnode points; owners[i] is the shard owning
	// points (hashes[i-1], hashes[i]]. Ties on the point value are
	// broken toward the lower shard id, deterministically.
	hashes []uint64
	owners []int
	// shards are the member ids, ascending.
	shards []int
}

// DefaultVNodes is the virtual-node count per shard: enough that the
// largest shard's share of the key space stays within a few percent of
// 1/N, cheap enough that ring rebuilds are trivial.
const DefaultVNodes = 128

// NewRing builds a ring over the given shard ids (order irrelevant,
// duplicates ignored) with vnodes points per shard (<=0 takes
// DefaultVNodes). A ring over zero shards is valid; its lookups return
// -1.
func NewRing(shards []int, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[int]bool, len(shards))
	members := make([]int, 0, len(shards))
	for _, s := range shards {
		if !seen[s] {
			seen[s] = true
			members = append(members, s)
		}
	}
	sortInts(members)
	r := &Ring{
		hashes: make([]uint64, 0, len(members)*vnodes),
		owners: make([]int, 0, len(members)*vnodes),
		shards: members,
	}
	for _, s := range members {
		for v := 0; v < vnodes; v++ {
			r.hashes = append(r.hashes, vnodeHash(s, v))
			r.owners = append(r.owners, s)
		}
	}
	// Sort points by (hash, owner): the owner tiebreak makes placement
	// on colliding points deterministic (lowest shard id wins).
	sortRing(r.hashes, r.owners)
	return r
}

// Shards returns the member ids, ascending. The slice is the ring's
// own — callers must not mutate it.
func (r *Ring) Shards() []int { return r.shards }

// Owner returns the shard owning key: the owner of the first vnode
// point at or clockwise-after key, wrapping at the top. Returns -1 on
// an empty ring.
//
//gesp:hotpath
func (r *Ring) Owner(key uint64) int {
	if len(r.hashes) == 0 {
		return -1
	}
	i := r.search(key)
	if i == len(r.hashes) {
		i = 0 // wrap: key is past the last point
	}
	return r.owners[i]
}

// ReplicasInto writes the placement for key — the owner followed by
// the next distinct shards walking clockwise — into dst and returns
// how many entries it wrote: min(len(dst), number of shards). dst[0]
// is always Owner(key). The walk is how consistent hashing picks
// replicas: the successor shards on the ring, so a shard's departure
// promotes exactly its ring successors.
//
//gesp:hotpath
func (r *Ring) ReplicasInto(dst []int, key uint64) int {
	if len(r.hashes) == 0 || len(dst) == 0 {
		return 0
	}
	want := len(dst)
	if want > len(r.shards) {
		want = len(r.shards)
	}
	n := 0
	start := r.search(key)
	if start == len(r.hashes) {
		start = 0
	}
	for step := 0; step < len(r.hashes) && n < want; step++ {
		i := start + step
		if i >= len(r.hashes) {
			i -= len(r.hashes)
		}
		s := r.owners[i]
		dup := false
		for j := 0; j < n; j++ {
			if dst[j] == s {
				dup = true
				break
			}
		}
		if !dup {
			dst[n] = s
			n++
		}
	}
	return n
}

// search returns the first index with hashes[i] >= key, or len(hashes).
// Hand-rolled binary search keeps the lookup path closure-free (the
// hotpath contract forbids the sort.Search func literal).
//
//gesp:hotpath
func (r *Ring) search(key uint64) int {
	lo, hi := 0, len(r.hashes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.hashes[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// vnodeHash spreads shard s's v-th virtual node over the key space
// with the same FNV-1a mixing sparse.PatternHash uses, so vnode points
// and pattern fingerprints live in one well-mixed 64-bit space.
func vnodeHash(s, v int) uint64 {
	h := fnvOffset
	h = fnvMix(h, uint64(s)+0x9e3779b97f4a7c15)
	h = fnvMix(h, uint64(v)+0x6a09e667f3bcc909)
	return h
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a state byte by byte
// (mirrors sparse.fnvMix; kept local so the router has no dependency
// on the matrix packages).
func fnvMix(h, v uint64) uint64 {
	for b := 0; b < 8; b++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// sortInts is insertion sort: member lists are tiny and this keeps the
// ring free of sort.Slice closures.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// sortRing co-sorts the (hash, owner) point arrays by hash, then owner.
func sortRing(hashes []uint64, owners []int) {
	for i := 1; i < len(hashes); i++ {
		for j := i; j > 0 && less(hashes[j], owners[j], hashes[j-1], owners[j-1]); j-- {
			hashes[j], hashes[j-1] = hashes[j-1], hashes[j]
			owners[j], owners[j-1] = owners[j-1], owners[j]
		}
	}
}

func less(h1 uint64, o1 int, h2 uint64, o2 int) bool {
	if h1 != h2 {
		return h1 < h2
	}
	return o1 < o2
}
