package fleet

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gesp/internal/serve"
)

// TestQuotaRetryAfterJitter: repeated rejections of one starved tenant
// must not hand every client the identical wait — identical waits
// re-form the rejected herd one refill later.
func TestQuotaRetryAfterJitter(t *testing.T) {
	q := newQuotas(0.001, 1)
	now := time.Now()
	if ok, _ := q.admit("t", now); !ok {
		t.Fatal("first token must admit")
	}
	waits := make(map[time.Duration]bool)
	var min time.Duration
	for i := 0; i < 8; i++ {
		ok, wait := q.admit("t", now)
		if ok {
			t.Fatalf("admit %d: bucket must stay empty", i)
		}
		if wait <= 0 {
			t.Fatalf("admit %d: non-positive RetryAfter %v", i, wait)
		}
		if min == 0 || wait < min {
			min = wait
		}
		waits[wait] = true
	}
	if len(waits) < 2 {
		t.Fatalf("8 rejections produced identical RetryAfter %v — jitter is dead", min)
	}
	// The jitter only ever widens: every wait covers at least the time
	// until one token accrues.
	base := time.Duration(1 / 0.001 * float64(time.Second))
	if min < base {
		t.Fatalf("jittered wait %v below the %v refill floor", min, base)
	}
}

// TestFleetQuotaErrorsJittered is the same property observed through
// the public API: back-to-back QuotaErrors for one tenant carry
// distinct RetryAfter hints.
func TestFleetQuotaErrorsJittered(t *testing.T) {
	cfg := quietConfig(1)
	cfg.TenantRate = 0.001
	cfg.TenantBurst = 1
	f := New(cfg)
	defer f.Close()

	sys := testbedSystem(t, "SHERMAN4", 0)
	h, err := f.Submit("greedy", sys.a) // spends the only token
	if err != nil {
		t.Fatal(err)
	}
	hints := make(map[time.Duration]bool)
	for i := 0; i < 6; i++ {
		_, err := f.Solve("greedy", h, sys.b)
		var qe *QuotaError
		if !errors.As(err, &qe) {
			t.Fatalf("solve %d: %v, want QuotaError", i, err)
		}
		if qe.RetryAfter <= 0 {
			t.Fatalf("solve %d: RetryAfter %v", i, qe.RetryAfter)
		}
		hints[qe.RetryAfter] = true
	}
	if len(hints) < 2 {
		t.Fatal("6 QuotaErrors carried the identical RetryAfter — clients would retry in lockstep")
	}
}

// TestHedgeBudgetBucket covers the token arithmetic: burst bounds the
// cold-start grants, accrual refills at rate, denials are counted, and
// the nil/unlimited budget never refuses.
func TestHedgeBudgetBucket(t *testing.T) {
	hb := NewHedgeBudget(0.5, 2)
	if !hb.TryStake() || !hb.TryStake() {
		t.Fatal("burst of 2 must grant 2 cold hedges")
	}
	if hb.TryStake() {
		t.Fatal("dry bucket granted a 3rd hedge")
	}
	hb.Accrue() // +0.5: still dry
	if hb.TryStake() {
		t.Fatal("half a token granted a hedge")
	}
	hb.Accrue() // +0.5: one whole token
	if !hb.TryStake() {
		t.Fatal("accrued token refused")
	}
	staked, denied := hb.Counts()
	if staked != 3 || denied != 2 {
		t.Fatalf("counts staked=%d denied=%d, want 3/2", staked, denied)
	}
	// Accrual never overfills past burst.
	for i := 0; i < 100; i++ {
		hb.Accrue()
	}
	grants := 0
	for hb.TryStake() {
		grants++
	}
	if grants != 2 {
		t.Fatalf("overfilled bucket granted %d, want the burst cap 2", grants)
	}

	var unlimited *HedgeBudget
	unlimited.Accrue()
	if !unlimited.TryStake() {
		t.Fatal("nil budget must always grant")
	}
	free := NewHedgeBudget(0, 5)
	for i := 0; i < 50; i++ {
		if !free.TryStake() {
			t.Fatal("rate<=0 budget must be unlimited")
		}
	}
	if s, d := free.Counts(); s != 0 || d != 0 {
		t.Fatalf("unlimited budget keeps no accounts, got %d/%d", s, d)
	}
}

// TestFleetDrainRacesSubmitSolveHeal races Drain against concurrent
// Submits and Solves. The ample subtest proves the cache handoff:
// identical resubmissions and post-drain solves cause zero new numeric
// factorizations. The eviction-storm subtest forces the
// ErrHandleExpired heal path throughout and proves it still loses no
// request across the drain's ring swap.
func TestFleetDrainRacesSubmitSolveHeal(t *testing.T) {
	names := []string{"SHERMAN4", "GEMAT11", "WEST2021"}

	run := func(t *testing.T, cfg Config, wantRefactors bool) {
		f := New(cfg)
		defer f.Close()

		type entry struct {
			sys system
			h   serve.Handle
		}
		var pool []entry
		for _, name := range names {
			for v := int64(0); v < 2; v++ {
				sys := testbedSystem(t, name, v)
				h, err := f.Submit("t", sys.a)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Solve("t", h, sys.b); err != nil {
					t.Fatal(err)
				}
				pool = append(pool, entry{sys, h})
			}
		}
		runsWarm := f.Stats().FactorPhaseRuns()
		target := f.Ring().Owner(pool[0].h.Key.Pattern)

		stop := make(chan struct{})
		errc := make(chan error, 64)
		var wg sync.WaitGroup
		for c := 0; c < 6; c++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for {
					select {
					case <-stop:
						return
					default:
					}
					e := pool[rng.Intn(len(pool))]
					var err error
					if rng.Intn(4) == 0 {
						// Identical resubmission: must ride the value-hit
						// fast path, never refactor, and never fail across
						// the ring swap.
						_, err = f.Submit("t", e.sys.a)
					} else {
						_, err = f.Solve("t", e.h, e.sys.b)
					}
					if err != nil {
						select {
						case errc <- err:
						default:
						}
						return
					}
				}
			}(int64(7 + c))
		}
		time.Sleep(15 * time.Millisecond)
		if err := f.Drain(target); err != nil {
			t.Fatal(err)
		}
		time.Sleep(15 * time.Millisecond)
		close(stop)
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatalf("request failed across the drain: %v", err)
		}

		st := f.Stats()
		if st.Failed != 0 {
			t.Fatalf("%d failed requests during drain, want 0", st.Failed)
		}
		runs := st.FactorPhaseRuns()
		if !wantRefactors && runs != runsWarm {
			t.Fatalf("drain refactored: %d factor runs post-drain, %d at warmup", runs, runsWarm)
		}
		if wantRefactors && st.Resubmits == 0 {
			t.Fatal("eviction storm never exercised the heal path")
		}
	}

	t.Run("ample-cache-zero-refactor", func(t *testing.T) {
		run(t, quietConfig(4), false)
	})
	t.Run("eviction-storm-heals", func(t *testing.T) {
		cfg := quietConfig(4)
		// Two factor slots per shard against six live systems: most
		// solves find their factors evicted and must heal via resubmit.
		cfg.Service.MaxFactors = 2
		run(t, cfg, true)
	})
}
