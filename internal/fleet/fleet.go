package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gesp/internal/serve"
	"gesp/internal/sparse"
)

// ErrNoShards means every shard is drained or the fleet is closed.
var ErrNoShards = errors.New("fleet: no live shards")

// maxReplication caps how many placements a single pattern can have:
// the owner plus up to three replicas. Placement buffers live on the
// stack at this size, keeping the routing path allocation-free.
const maxReplication = 4

// Config parameterizes a fleet.
type Config struct {
	// Shards is the number of in-process serve.Service nodes.
	Shards int
	// VNodes is the consistent-hash points per shard (DefaultVNodes
	// when <=0).
	VNodes int
	// Service configures every shard's serve layer.
	Service serve.Config
	// ReplicationFactor is how many shards hold a hot pattern (owner
	// included). <=1 disables replication; capped at maxReplication.
	ReplicationFactor int
	// HotThreshold is the solve count at which a pattern is promoted
	// to replicated. <=0 disables popularity promotion (Replicate can
	// still be called explicitly).
	HotThreshold uint64
	// HedgeQueueDepth: hedge a solve to the replica when the primary's
	// queue is at least this deep. <=0 disables the depth trigger.
	HedgeQueueDepth int64
	// HedgeP95: hedge when the primary's observed p95 exceeds this.
	// <=0 disables the latency trigger.
	HedgeP95 time.Duration
	// HedgeBudget caps hedge launches at this fraction of routed
	// traffic (0.1 = at most ~10% of requests may be hedged in steady
	// state). <=0 leaves hedging unlimited — the pre-budget behavior.
	HedgeBudget float64
	// HedgeBurst is the hedge token bucket's capacity: how many
	// back-to-back hedges a full bucket allows before the per-request
	// accrual becomes the limit. <1 is raised to 1 when a budget is set.
	HedgeBurst float64
	// TenantRate/TenantBurst are the per-tenant token-bucket admission
	// parameters. Rate<=0 disables admission control.
	TenantRate  float64
	TenantBurst float64
	// Straggler, when non-nil, injects an artificial pre-solve delay
	// per shard id — the experiment hook for tail-latency studies.
	Straggler func(shard int) time.Duration
}

// DefaultConfig is a 4-shard fleet with replication and hedging on.
func DefaultConfig() Config {
	return Config{
		Shards:            4,
		VNodes:            DefaultVNodes,
		Service:           serve.DefaultConfig(),
		ReplicationFactor: 2,
		HotThreshold:      32,
		HedgeQueueDepth:   4,
		HedgeP95:          0, // depth trigger only, by default
		TenantRate:        0, // admission control off
		TenantBurst:       0,
	}
}

// shard is one serve.Service node plus the router's per-shard state.
type shard struct {
	id     int
	svc    *serve.Service
	alive  atomic.Bool
	solves atomic.Uint64
	lat    LatHist
}

// Fleet routes solve traffic over a set of serve.Service shards by
// consistent-hashing each system's sparsity-pattern fingerprint. See
// the package comment for the policy layers (replication, hedging,
// quotas, drain).
type Fleet struct {
	cfg    Config
	shards []*shard
	quotas *quotas
	hedge  *HedgeBudget
	m      metrics

	// ring is the current placement; immutable, swapped atomically on
	// drain so the routing path never takes a lock for membership.
	ring atomic.Pointer[Ring]

	closed atomic.Bool

	// promotions tracks async popularity promotions so Close can wait
	// them out.
	promotions sync.WaitGroup

	mu sync.Mutex
	// replicas maps a replicated pattern to the shard ids holding it
	// beyond the ring owner.
	//gesp:guardedby:mu
	replicas map[uint64][]int
	// registry keeps every submitted system's matrix so the router can
	// re-factor after an eviction and populate replicas on promotion.
	//gesp:guardedby:mu
	registry map[serve.Handle]*sparse.CSC
	// popCount counts solves per pattern for hot promotion.
	//gesp:guardedby:mu
	popCount map[uint64]uint64
	// rebalance, when non-nil, is the barrier requests wait on while a
	// drain is moving cache entries; closed when the new ring is live.
	//gesp:guardedby:mu
	rebalance chan struct{}
}

// New builds and starts a fleet of cfg.Shards serve services.
func New(cfg Config) *Fleet {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.ReplicationFactor > maxReplication {
		cfg.ReplicationFactor = maxReplication
	}
	f := &Fleet{
		cfg:      cfg,
		quotas:   newQuotas(cfg.TenantRate, cfg.TenantBurst),
		hedge:    NewHedgeBudget(cfg.HedgeBudget, cfg.HedgeBurst),
		replicas: make(map[uint64][]int),
		registry: make(map[serve.Handle]*sparse.CSC),
		popCount: make(map[uint64]uint64),
	}
	ids := make([]int, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		ids[i] = i
		sh := &shard{id: i, svc: serve.New(cfg.Service)}
		sh.alive.Store(true)
		f.shards = append(f.shards, sh)
	}
	f.ring.Store(NewRing(ids, cfg.VNodes))
	return f
}

// Submit registers the system with its pattern's home shard and
// returns the handle solves are addressed by. When the pattern is
// already replicated (a new value variant of a hot pattern), the
// replicas are populated too, so hedged solves can land anywhere in
// the placement.
func (f *Fleet) Submit(tenant string, a *sparse.CSC) (serve.Handle, error) {
	if f.closed.Load() {
		return serve.Handle{}, serve.ErrClosed
	}
	if ok, wait := f.quotas.admit(tenant, time.Now()); !ok {
		f.m.quotaDenied.Add(1)
		return serve.Handle{}, &QuotaError{Tenant: tenant, RetryAfter: wait}
	}
	pattern := sparse.PatternHash(a)
	for attempt := 0; attempt < 3; attempt++ {
		var buf [maxReplication]int
		n := f.placementInto(buf[:], pattern)
		if n == 0 {
			if err := f.awaitRebalance(context.Background()); err != nil {
				return serve.Handle{}, err
			}
			continue
		}
		h, err := f.shards[buf[0]].svc.Submit(a)
		if errors.Is(err, serve.ErrClosed) && !f.closed.Load() {
			// Routed into a shard that began draining after placement;
			// wait for the rebalance to land and re-route.
			if werr := f.awaitRebalance(context.Background()); werr != nil {
				return serve.Handle{}, werr
			}
			continue
		}
		if err != nil {
			return serve.Handle{}, err
		}
		f.mu.Lock()
		f.registry[h] = a
		f.mu.Unlock()
		for i := 1; i < n; i++ {
			if _, rerr := f.shards[buf[i]].svc.Submit(a); rerr != nil {
				// Replica population is best-effort; the owner holds the
				// factors, so the solve path stays correct without it.
				break
			}
		}
		return h, nil
	}
	return serve.Handle{}, ErrNoShards
}

// Solve routes one right-hand side with the background context.
func (f *Fleet) Solve(tenant string, h serve.Handle, b []float64) ([]float64, error) {
	return f.SolveCtx(context.Background(), tenant, h, b)
}

// SolveCtx routes one right-hand side to the handle's placement:
// admission control, then the home shard — hedged against the replica
// when the primary looks slow, retried on the replica when the primary
// sheds, healed from the registry when the factors were evicted, and
// re-routed after a drain.
func (f *Fleet) SolveCtx(ctx context.Context, tenant string, h serve.Handle, b []float64) ([]float64, error) {
	if f.closed.Load() {
		return nil, serve.ErrClosed
	}
	if ok, wait := f.quotas.admit(tenant, time.Now()); !ok {
		f.m.quotaDenied.Add(1)
		return nil, &QuotaError{Tenant: tenant, RetryAfter: wait}
	}
	f.m.routed.Add(1)
	f.hedge.Accrue()
	f.notePopularity(h)

	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		var buf [maxReplication]int
		n := f.placementInto(buf[:], h.Key.Pattern)
		if n == 0 {
			if f.closed.Load() {
				return nil, serve.ErrClosed
			}
			if err := f.awaitRebalance(ctx); err != nil {
				f.m.failed.Add(1)
				return nil, err
			}
			lastErr = ErrNoShards
			continue
		}
		primary := f.shards[buf[0]]
		var replica *shard
		if n > 1 {
			replica = f.shards[buf[1]]
		}
		x, err := f.solvePlaced(ctx, primary, replica, h, b)
		switch {
		case err == nil:
			return x, nil
		case errors.Is(err, serve.ErrClosed):
			// The shard drained under us: wait for its cache handoff to
			// land, then re-route on the new ring.
			if werr := f.awaitRebalance(ctx); werr != nil {
				f.m.failed.Add(1)
				return nil, werr
			}
			lastErr = err
		case errors.Is(err, serve.ErrHandleExpired):
			// Factors were evicted. Re-factor from the registered matrix
			// and retry; fails only for handles the fleet never saw.
			switch herr := f.heal(h, buf[0]); {
			case herr == nil:
				f.m.resubmits.Add(1)
				lastErr = err
			case errors.Is(herr, serve.ErrClosed) && !f.closed.Load():
				// The owner began draining between placement and the
				// heal's re-submit. Wait out the rebalance and re-route
				// the heal at the post-drain owner instead of failing a
				// request the drain contract promises to keep alive.
				if werr := f.awaitRebalance(ctx); werr != nil {
					f.m.failed.Add(1)
					return nil, werr
				}
				lastErr = err
			default:
				f.m.failed.Add(1)
				return nil, err
			}
		default:
			f.m.failed.Add(1)
			return nil, err
		}
	}
	f.m.failed.Add(1)
	return nil, lastErr
}

// solvePlaced runs one placed attempt: hedge when the primary looks
// slow, a replica exists, and the hedge budget grants a token;
// otherwise solve on the primary with a single replica retry if the
// primary sheds the request.
func (f *Fleet) solvePlaced(ctx context.Context, primary, replica *shard, h serve.Handle, b []float64) ([]float64, error) {
	if replica != nil && f.shouldHedge(primary) && f.hedge.TryStake() {
		return f.solveHedged(ctx, primary, replica, h, b)
	}
	x, err := f.solveOn(ctx, primary, h, b)
	if replica != nil && errors.Is(err, serve.ErrOverloaded) {
		f.m.retries.Add(1)
		return f.solveOn(ctx, replica, h, b)
	}
	return x, err
}

// shouldHedge is the hedging trigger: primary queue depth at or above
// the threshold, or primary p95 above the threshold.
func (f *Fleet) shouldHedge(primary *shard) bool {
	if f.cfg.HedgeQueueDepth > 0 && primary.svc.QueueDepth() >= f.cfg.HedgeQueueDepth {
		return true
	}
	if f.cfg.HedgeP95 > 0 && primary.lat.Quantile(0.95) > f.cfg.HedgeP95 {
		return true
	}
	return false
}

// solveHedged races the primary and the replica; the first response
// wins and the loser's wait is cancelled (its request, if already
// queued, is still solved with its batch — the batcher's done channels
// are buffered, so nothing leaks).
func (f *Fleet) solveHedged(ctx context.Context, primary, replica *shard, h serve.Handle, b []float64) ([]float64, error) {
	f.m.hedged.Add(1)
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type hedgeResult struct {
		x    []float64
		err  error
		from *shard
	}
	ch := make(chan hedgeResult, 2)
	launch := func(sh *shard) {
		x, err := f.solveOn(hctx, sh, h, b)
		ch <- hedgeResult{x: x, err: err, from: sh}
	}
	go launch(primary)
	go launch(replica)
	first := <-ch
	if first.err == nil {
		if first.from == replica {
			f.m.hedgeWins.Add(1)
		}
		return first.x, nil
	}
	second := <-ch
	if second.err == nil {
		if second.from == replica {
			f.m.hedgeWins.Add(1)
		}
		return second.x, nil
	}
	// Both failed: report the primary-side error, which is the one the
	// caller's retry ladder classifies (drain, eviction, overload).
	if first.from == primary {
		return nil, first.err
	}
	return nil, second.err
}

// solveOn runs one solve on one shard, applying the straggler hook and
// recording the shard's latency observation on success.
func (f *Fleet) solveOn(ctx context.Context, sh *shard, h serve.Handle, b []float64) ([]float64, error) {
	t0 := time.Now()
	if f.cfg.Straggler != nil {
		if d := f.cfg.Straggler(sh.id); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
		}
	}
	x, err := sh.svc.SolveCtx(ctx, h, b)
	if err != nil {
		return nil, err
	}
	sh.lat.Observe(time.Since(t0))
	sh.solves.Add(1)
	return x, nil
}

// heal re-factors an evicted handle on its owner shard from the
// registered matrix. It returns the re-submit's error so the caller
// can tell a draining owner (serve.ErrClosed — wait and re-route) from
// a handle the fleet never saw (terminal).
func (f *Fleet) heal(h serve.Handle, owner int) error {
	f.mu.Lock()
	a := f.registry[h]
	f.mu.Unlock()
	if a == nil {
		return fmt.Errorf("fleet: handle %v has no registered matrix", h.Key)
	}
	_, err := f.shards[owner].svc.Submit(a)
	return err
}

// notePopularity counts the solve against its pattern and kicks off an
// async promotion the moment the pattern crosses HotThreshold.
func (f *Fleet) notePopularity(h serve.Handle) {
	if f.cfg.HotThreshold == 0 || f.cfg.ReplicationFactor < 2 {
		return
	}
	pattern := h.Key.Pattern
	f.mu.Lock()
	f.popCount[pattern]++
	crossed := f.popCount[pattern] == f.cfg.HotThreshold
	if crossed && f.replicas[pattern] != nil {
		crossed = false // already promoted (e.g. explicitly)
	}
	f.mu.Unlock()
	if !crossed {
		return
	}
	f.promotions.Add(1)
	go func() {
		defer f.promotions.Done()
		//gesp:errok — best-effort promotion: failure leaves the pattern unreplicated and the next Replicate call retries
		_ = f.Replicate(h)
	}()
}

// Replicate populates the handle's pattern onto its ring-successor
// replica shards: the owner's symbolic donor is shared (replicas skip
// re-analysis entirely) and the registered matrix is factored on each
// replica. Idempotent; also the deterministic entry point for tests
// and benchmarks that cannot wait on popularity promotion.
func (f *Fleet) Replicate(h serve.Handle) error {
	rf := f.cfg.ReplicationFactor
	if rf < 2 {
		return nil
	}
	pattern := h.Key.Pattern
	ring := f.ring.Load()
	var buf [maxReplication]int
	n := ring.ReplicasInto(buf[:rf], pattern)
	if n < 2 {
		return nil // nowhere to replicate
	}
	// Replicate every registered value-variant of the pattern, not just
	// the handle that crossed the threshold: a hedged solve for any
	// sibling variant must hit the replica's factor cache too.
	f.mu.Lock()
	var mats []*sparse.CSC
	//gesp:unordered — variants factor independently; replica cache order is irrelevant
	for rh, ra := range f.registry {
		if rh.Key.Pattern == pattern {
			mats = append(mats, ra)
		}
	}
	f.mu.Unlock()
	if len(mats) == 0 {
		return fmt.Errorf("fleet: handle %+v has no registered matrix", h.Key)
	}
	owner := f.shards[buf[0]]
	donor := owner.svc.ExportSymbolic(pattern)
	placed := make([]int, 0, n-1)
	for i := 1; i < n; i++ {
		rep := f.shards[buf[i]]
		if !rep.alive.Load() {
			continue
		}
		if donor != nil {
			if err := rep.svc.ImportSymbolic(pattern, donor); err != nil {
				continue
			}
		}
		ok := true
		for _, a := range mats {
			if _, err := rep.svc.Submit(a); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		placed = append(placed, rep.id)
	}
	if len(placed) == 0 {
		return nil
	}
	f.mu.Lock()
	f.replicas[pattern] = placed
	f.mu.Unlock()
	f.m.promoted.Add(1)
	return nil
}

// placementInto writes the live placement for pattern into dst: the
// ring owner first, then any promoted replicas. Returns how many
// entries were written; 0 means every candidate is draining and the
// caller should wait for the rebalance.
func (f *Fleet) placementInto(dst []int, pattern uint64) int {
	ring := f.ring.Load()
	owner := ring.Owner(pattern)
	if owner < 0 {
		return 0
	}
	n := 0
	if f.shards[owner].alive.Load() {
		dst[n] = owner
		n++
	}
	f.mu.Lock()
	reps := f.replicas[pattern]
	for _, id := range reps {
		if n >= len(dst) {
			break
		}
		if id == owner || !f.shards[id].alive.Load() {
			continue
		}
		dup := false
		for j := 0; j < n; j++ {
			if dst[j] == id {
				dup = true
				break
			}
		}
		if !dup {
			dst[n] = id
			n++
		}
	}
	f.mu.Unlock()
	return n
}

// awaitRebalance blocks until any in-flight drain's cache handoff has
// landed and the new ring is live. A nil barrier means no drain is in
// flight — placement already reflects the latest ring.
func (f *Fleet) awaitRebalance(ctx context.Context) error {
	f.mu.Lock()
	barrier := f.rebalance
	f.mu.Unlock()
	if barrier == nil {
		return nil
	}
	select {
	case <-barrier:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Drain gracefully removes shard id from the fleet: it stops taking
// new placements, finishes its queued work, and hands its cached
// symbolic analyses and numeric factors to their new owners under the
// post-drain ring — no request fails and nothing already factored is
// factored again. Requests routed at the drained shard mid-handoff
// wait on the rebalance barrier and re-route.
func (f *Fleet) Drain(id int) error {
	if id < 0 || id >= len(f.shards) {
		return fmt.Errorf("fleet: no shard %d", id)
	}
	leaver := f.shards[id]

	f.mu.Lock()
	if f.rebalance != nil {
		f.mu.Unlock()
		return fmt.Errorf("fleet: a rebalance is already in flight")
	}
	if !leaver.alive.Load() {
		f.mu.Unlock()
		return fmt.Errorf("fleet: shard %d is already drained", id)
	}
	survivors := make([]int, 0, len(f.shards)-1)
	for _, sh := range f.shards {
		if sh.id != id && sh.alive.Load() {
			survivors = append(survivors, sh.id)
		}
	}
	if len(survivors) == 0 {
		f.mu.Unlock()
		return fmt.Errorf("fleet: cannot drain the last live shard")
	}
	barrier := make(chan struct{})
	f.rebalance = barrier
	f.mu.Unlock()

	// 1. Stop routing new work at the leaver. In-flight requests keep
	// draining through its queues; anything that races the shutdown
	// gets ErrClosed and parks on the barrier.
	leaver.alive.Store(false)

	// 2. Graceful stop: queued solves finish, cutters exit, both cache
	// levels are exported.
	exp := leaver.svc.Drain()

	// 3. Hand every entry to its owner under the post-drain ring. The
	// solvers move — never shared — so the single-writer contract on
	// core.Solver survives the handoff.
	next := NewRing(survivors, f.cfg.VNodes)
	for _, es := range exp.Symbolic {
		tgt := next.Owner(es.Pattern)
		if err := f.shards[tgt].svc.ImportSymbolic(es.Pattern, es.Donor); err == nil {
			f.m.handoffSym.Add(1)
		}
	}
	for _, ef := range exp.Factors {
		tgt := next.Owner(ef.Key.Pattern)
		if _, err := f.shards[tgt].svc.ImportFactor(ef); err == nil {
			f.m.handoffFac.Add(1)
		}
	}

	// 4. Swap the ring, scrub the leaver from replica sets, release
	// every request parked on the barrier.
	f.ring.Store(next)
	f.mu.Lock()
	//gesp:unordered — per-pattern scrub; no cross-pattern ordering effects
	for pattern, reps := range f.replicas {
		kept := reps[:0]
		for _, rid := range reps {
			if rid != id {
				kept = append(kept, rid)
			}
		}
		if len(kept) == 0 {
			delete(f.replicas, pattern)
		} else {
			f.replicas[pattern] = kept
		}
	}
	f.rebalance = nil
	close(barrier)
	f.mu.Unlock()
	f.m.drains.Add(1)
	return nil
}

// Close drains nothing and moves nothing: it stops admission on every
// shard, waits for queued work and async promotions to finish, and
// returns. For cache-preserving removal of one shard, use Drain.
func (f *Fleet) Close() {
	if !f.closed.CompareAndSwap(false, true) {
		return
	}
	for _, sh := range f.shards {
		sh.alive.Store(false)
		sh.svc.Close()
	}
	f.promotions.Wait()
}

// Stats snapshots the router counters and every shard.
func (f *Fleet) Stats() Stats {
	s := f.m.snapshot()
	s.HedgeStaked, s.HedgeDenied = f.hedge.Counts()
	for _, sh := range f.shards {
		s.Shards = append(s.Shards, ShardStats{
			ID:       sh.id,
			Alive:    sh.alive.Load(),
			Solves:   sh.solves.Load(),
			P50:      sh.lat.Quantile(0.50),
			P95:      sh.lat.Quantile(0.95),
			P99:      sh.lat.Quantile(0.99),
			QueueLen: sh.svc.QueueDepth(),
			Serve:    sh.svc.Stats(),
		})
	}
	return s
}

// Ring exposes the current ring (for tests and the status endpoint).
func (f *Fleet) Ring() *Ring { return f.ring.Load() }

// NumShards returns the configured shard count (drained included).
func (f *Fleet) NumShards() int { return len(f.shards) }
