package fleet

import (
	"math/rand"
	"testing"

	"gesp/internal/matgen"
	"gesp/internal/sparse"
)

func ringKeys(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	return keys
}

// TestRingOwnerDeterministic: two independently built rings over the
// same membership agree on every placement, and owners are members.
func TestRingOwnerDeterministic(t *testing.T) {
	members := []int{0, 1, 2, 3, 4}
	r1 := NewRing(members, 64)
	r2 := NewRing([]int{4, 3, 2, 1, 0, 3}, 64) // order and dups must not matter
	isMember := map[int]bool{}
	for _, m := range members {
		isMember[m] = true
	}
	for _, k := range ringKeys(5000, 1) {
		o1, o2 := r1.Owner(k), r2.Owner(k)
		if o1 != o2 {
			t.Fatalf("placement differs for key %x: %d vs %d", k, o1, o2)
		}
		if !isMember[o1] {
			t.Fatalf("key %x placed on non-member %d", k, o1)
		}
	}
	if NewRing(nil, 0).Owner(42) != -1 {
		t.Fatal("empty ring must return -1")
	}
}

// TestRingPatternHashPlacement routes real sparse.PatternHash
// fingerprints: placement is a function of the sparsity pattern alone,
// so value-perturbed variants of one matrix land on the same shard.
func TestRingPatternHashPlacement(t *testing.T) {
	r := NewRing([]int{0, 1, 2, 3}, 0)
	for _, name := range []string{"SHERMAN4", "GEMAT11", "WEST2021", "ORSIRR_1"} {
		m, ok := matgen.Lookup(name)
		if !ok {
			t.Fatalf("testbed matrix %s missing", name)
		}
		a := m.Generate(0.25)
		owner := r.Owner(sparse.PatternHash(a))
		if owner < 0 || owner > 3 {
			t.Fatalf("%s placed on %d", name, owner)
		}
		variant := a.Clone()
		rng := rand.New(rand.NewSource(7))
		for k := range variant.Val {
			variant.Val[k] *= 1 + 0.1*rng.NormFloat64()
		}
		if got := r.Owner(sparse.PatternHash(variant)); got != owner {
			t.Fatalf("%s value variant moved from shard %d to %d; placement must be pattern-only", name, owner, got)
		}
	}
}

// TestRingCollisionTieBreak pins the deterministic collision policy:
// when two vnode points hash identically, the lower shard id owns the
// point — both in the sort and in lookup.
func TestRingCollisionTieBreak(t *testing.T) {
	hashes := []uint64{50, 50, 10}
	owners := []int{2, 1, 3}
	sortRing(hashes, owners)
	if hashes[0] != 10 || owners[1] != 1 || owners[2] != 2 {
		t.Fatalf("sortRing tiebreak: hashes %v owners %v", hashes, owners)
	}
	r := &Ring{hashes: hashes, owners: owners, shards: []int{1, 2, 3}}
	if got := r.Owner(20); got != 1 {
		t.Fatalf("colliding point must resolve to the lower shard id, got %d", got)
	}
}

// TestRingChurn is the consistent-hashing invariant: adding one shard
// to N moves ~1/(N+1) of keys, every one of them onto the new shard;
// removing one moves exactly that shard's keys, ~1/N of the space.
func TestRingChurn(t *testing.T) {
	const n = 8
	keys := ringKeys(20000, 2)
	base := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r0 := NewRing(base, 0)

	grown := NewRing(append(append([]int{}, base...), n), 0)
	moved := 0
	for _, k := range keys {
		before, after := r0.Owner(k), grown.Owner(k)
		if before != after {
			moved++
			if after != n {
				t.Fatalf("add-shard churn: key %x moved %d→%d, not onto the new shard", k, before, after)
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	want := 1.0 / float64(n+1)
	if frac > 2*want || moved == 0 {
		t.Fatalf("add-shard churn %.3f, want ~%.3f (at most 2x)", frac, want)
	}

	shrunk := NewRing([]int{0, 1, 2, 4, 5, 6, 7}, 0) // drop shard 3
	moved = 0
	for _, k := range keys {
		before, after := r0.Owner(k), shrunk.Owner(k)
		if before != after {
			moved++
			if before != 3 {
				t.Fatalf("remove-shard churn: key %x moved %d→%d without owning shard 3", k, before, after)
			}
		} else if before == 3 {
			t.Fatalf("key %x still owned by removed shard 3", k)
		}
	}
	frac = float64(moved) / float64(len(keys))
	want = 1.0 / float64(n)
	if frac > 2*want || moved == 0 {
		t.Fatalf("remove-shard churn %.3f, want ~%.3f (at most 2x)", frac, want)
	}
}

// TestReplicasInto: dst[0] is the owner, entries are distinct shards,
// and the count saturates at the membership size.
func TestReplicasInto(t *testing.T) {
	r := NewRing([]int{0, 1, 2}, 0)
	var dst [4]int
	for _, k := range ringKeys(2000, 3) {
		n := r.ReplicasInto(dst[:], k)
		if n != 3 {
			t.Fatalf("want all 3 shards in the placement, got %d", n)
		}
		if dst[0] != r.Owner(k) {
			t.Fatalf("dst[0]=%d is not the owner %d", dst[0], r.Owner(k))
		}
		seen := map[int]bool{}
		for i := 0; i < n; i++ {
			if seen[dst[i]] {
				t.Fatalf("duplicate shard %d in placement", dst[i])
			}
			seen[dst[i]] = true
		}
	}
	if n := r.ReplicasInto(dst[:2], 99); n != 2 {
		t.Fatalf("short dst must cap the placement at 2, got %d", n)
	}
}

// TestRingLookupAllocFree pins the hotpath contract at runtime: Owner
// and ReplicasInto allocate nothing.
func TestRingLookupAllocFree(t *testing.T) {
	r := NewRing([]int{0, 1, 2, 3, 4, 5, 6, 7}, 0)
	keys := ringKeys(64, 4)
	var dst [maxReplication]int
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		k := keys[i&63]
		i++
		if r.Owner(k) < 0 {
			t.Fatal("empty ring")
		}
		r.ReplicasInto(dst[:], k)
	})
	if allocs != 0 {
		t.Fatalf("ring lookup allocates %.1f per op, want 0", allocs)
	}
}
