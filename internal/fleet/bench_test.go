package fleet

import (
	"testing"
	"time"
)

// BenchmarkRingOwner is the router's hot lookup: one binary search over
// the vnode points, no locks, no allocation.
func BenchmarkRingOwner(b *testing.B) {
	r := NewRing([]int{0, 1, 2, 3, 4, 5, 6, 7}, 0)
	keys := ringKeys(1024, 11)
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += r.Owner(keys[i&1023])
	}
	if sink == -1 {
		b.Fatal("impossible")
	}
}

// BenchmarkRingReplicasInto measures the full placement walk (owner
// plus replica successors) into a caller buffer.
func BenchmarkRingReplicasInto(b *testing.B) {
	r := NewRing([]int{0, 1, 2, 3, 4, 5, 6, 7}, 0)
	keys := ringKeys(1024, 12)
	var dst [maxReplication]int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ReplicasInto(dst[:], keys[i&1023])
	}
}

// BenchmarkFleetSolveWarm is the end-to-end router overhead: a warm
// single-pattern solve through placement, admission, and the shard's
// cached factors.
func BenchmarkFleetSolveWarm(b *testing.B) {
	cfg := quietConfig(4)
	cfg.Service.MaxDelay = 0 // cut immediately; measure latency, not batching
	f := New(cfg)
	defer f.Close()
	sys := testbedSystem(b, "SHERMAN4", 0)
	h, err := f.Submit("bench", sys.a)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.Solve("bench", h, sys.b); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Solve("bench", h, sys.b); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetSolveHedged forces the hedge path (p95 trigger with a
// stragglered primary) to price the race: two queued solves, a
// context cancel, first response wins.
func BenchmarkFleetSolveHedged(b *testing.B) {
	cfg := quietConfig(4)
	cfg.Service.MaxDelay = 0
	cfg.ReplicationFactor = 2
	cfg.HedgeP95 = time.Nanosecond // hedge everything after the first solve
	f := New(cfg)
	defer f.Close()
	sys := testbedSystem(b, "SHERMAN4", 0)
	h, err := f.Submit("bench", sys.a)
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Replicate(h); err != nil {
		b.Fatal(err)
	}
	if _, err := f.Solve("bench", h, sys.b); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Solve("bench", h, sys.b); err != nil {
			b.Fatal(err)
		}
	}
}
