package fleet

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"gesp/internal/serve"
)

// LatBuckets is the latency histogram resolution: bucket i counts
// solves that took <= 1µs·2^i, the last bucket is overflow (~134s).
// Power-of-two buckets make the quantile estimate cheap and lock-free —
// the hedging decision reads it on every routed solve.
const LatBuckets = 28

// LatHist is a lock-free cumulative latency histogram. The in-process
// fleet keeps one per shard for its p95 hedge trigger; the
// cross-process coordinator keeps a fleet-wide one whose windowed
// deltas (Snapshot) feed the SLO controller's p999 signal.
type LatHist struct {
	counts [LatBuckets]atomic.Uint64
	total  atomic.Uint64
}

// Observe records one latency sample.
func (h *LatHist) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	b := 0
	for ub := int64(1000); b < LatBuckets-1 && ns > ub; b++ {
		ub <<= 1
	}
	h.counts[b].Add(1)
	h.total.Add(1)
}

// Quantile returns an upper bound for the q-quantile (q in (0,1]): the
// top of the first bucket where the cumulative count reaches q·total.
// Zero when nothing has been observed.
func (h *LatHist) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	need := uint64(q * float64(total))
	if need == 0 {
		need = 1
	}
	var cum uint64
	ub := int64(1000)
	for b := 0; b < LatBuckets; b++ {
		cum += h.counts[b].Load()
		if cum >= need {
			return time.Duration(ub)
		}
		ub <<= 1
	}
	return time.Duration(ub)
}

// Snapshot copies the cumulative bucket counts and total. Two
// snapshots subtract into a window (LatWindow), which is how an SLO
// controller reads "p999 over the last evaluation period" from a
// cumulative histogram.
func (h *LatHist) Snapshot() (counts [LatBuckets]uint64, total uint64) {
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.total.Load()
}

// LatWindow is the difference of two LatHist snapshots: the samples
// observed between them.
type LatWindow struct {
	Counts [LatBuckets]uint64
	Total  uint64
}

// WindowSince subtracts an earlier snapshot from a later one.
func WindowSince(laterCounts [LatBuckets]uint64, laterTotal uint64, earlierCounts [LatBuckets]uint64, earlierTotal uint64) LatWindow {
	var w LatWindow
	for i := range w.Counts {
		w.Counts[i] = laterCounts[i] - earlierCounts[i]
	}
	w.Total = laterTotal - earlierTotal
	return w
}

// Quantile is LatHist.Quantile over the window's samples.
func (w LatWindow) Quantile(q float64) time.Duration {
	if w.Total == 0 {
		return 0
	}
	need := uint64(q * float64(w.Total))
	if need == 0 {
		need = 1
	}
	var cum uint64
	ub := int64(1000)
	for b := 0; b < LatBuckets; b++ {
		cum += w.Counts[b]
		if cum >= need {
			return time.Duration(ub)
		}
		ub <<= 1
	}
	return time.Duration(ub)
}

// metrics is the fleet router's accounting: lock-free counters in the
// style of serve.Metrics, snapshotted into Stats on demand.
type metrics struct {
	routed      atomic.Uint64
	hedged      atomic.Uint64
	hedgeWins   atomic.Uint64 // hedges where the replica answered first
	retries     atomic.Uint64 // overloaded-primary retries on a replica
	resubmits   atomic.Uint64 // expired-handle heals from the registry
	quotaDenied atomic.Uint64
	promoted    atomic.Uint64 // patterns replicated after going hot
	drains      atomic.Uint64
	handoffFac  atomic.Uint64 // factor entries moved during drains
	handoffSym  atomic.Uint64 // symbolic donors moved during drains
	failed      atomic.Uint64 // requests that exhausted every route
}

// ShardStats is one shard's view in a fleet snapshot.
type ShardStats struct {
	ID       int           `json:"id"`
	Alive    bool          `json:"alive"`
	Solves   uint64        `json:"solves"`
	P50      time.Duration `json:"p50_ns"`
	P95      time.Duration `json:"p95_ns"`
	P99      time.Duration `json:"p99_ns"`
	QueueLen int64         `json:"queue_len"`
	Serve    serve.Stats   `json:"serve"`
}

// Stats is a point-in-time fleet snapshot: router counters plus every
// shard's serve.Stats.
type Stats struct {
	Routed    uint64 `json:"routed"`
	Hedged    uint64 `json:"hedged"`
	HedgeWins uint64 `json:"hedge_wins"`
	// HedgeStaked/HedgeDenied are the hedge-budget bucket's grant and
	// denial counts; both stay zero when Config.HedgeBudget is unset
	// (unlimited hedging needs no accounting).
	HedgeStaked   uint64 `json:"hedge_staked,omitempty"`
	HedgeDenied   uint64 `json:"hedge_denied,omitempty"`
	Retries       uint64 `json:"retries"`
	Resubmits     uint64 `json:"resubmits"`
	QuotaDenied   uint64 `json:"quota_denied"`
	Promoted      uint64 `json:"promoted"`
	Drains        uint64 `json:"drains"`
	HandoffFactor uint64 `json:"handoff_factors"`
	HandoffSym    uint64 `json:"handoff_symbolic"`
	Failed        uint64 `json:"failed"`

	Shards []ShardStats `json:"shards"`
}

func (m *metrics) snapshot() Stats {
	return Stats{
		Routed:        m.routed.Load(),
		Hedged:        m.hedged.Load(),
		HedgeWins:     m.hedgeWins.Load(),
		Retries:       m.retries.Load(),
		Resubmits:     m.resubmits.Load(),
		QuotaDenied:   m.quotaDenied.Load(),
		Promoted:      m.promoted.Load(),
		Drains:        m.drains.Load(),
		HandoffFactor: m.handoffFac.Load(),
		HandoffSym:    m.handoffSym.Load(),
		Failed:        m.failed.Load(),
	}
}

// HedgeRate returns hedged/routed, or 0 before any traffic.
func (s Stats) HedgeRate() float64 {
	if s.Routed == 0 {
		return 0
	}
	return float64(s.Hedged) / float64(s.Routed)
}

// HealRate returns resubmits/routed: the fraction of solves that found
// their factors evicted and had to re-factor from the registry — the
// cache-thrash signal for a shard count that can't hold the working
// set.
func (s Stats) HealRate() float64 {
	if s.Routed == 0 {
		return 0
	}
	return float64(s.Resubmits) / float64(s.Routed)
}

// FactorHitRate aggregates the factor-cache hit rate over all shards.
func (s Stats) FactorHitRate() float64 {
	var hits, misses uint64
	for _, sh := range s.Shards {
		hits += sh.Serve.FactorHits
		misses += sh.Serve.FactorMisses
	}
	return serve.HitRate(hits, misses)
}

// FactorPhaseRuns sums, over all shards, how many numeric
// factorizations each serve layer actually executed (its PhaseFactor
// count). Handoffs and cache hits leave it unchanged, which is how the
// drain experiment proves a rebalance re-factored nothing.
func (s Stats) FactorPhaseRuns() int64 {
	var runs int64
	for _, sh := range s.Shards {
		runs += sh.Serve.Phases[serve.PhaseFactor.String()].Count
	}
	return runs
}

// String renders the router-level summary plus one line per shard.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "routed %d  hedged %d (wins %d, budget-denied %d)  retries %d  resubmits %d  quota-denied %d  failed %d\n",
		s.Routed, s.Hedged, s.HedgeWins, s.HedgeDenied, s.Retries, s.Resubmits, s.QuotaDenied, s.Failed)
	fmt.Fprintf(&b, "promoted %d  drains %d  handoff %d factors + %d symbolic  heal %.1f%%\n",
		s.Promoted, s.Drains, s.HandoffFactor, s.HandoffSym, 100*s.HealRate())
	for _, sh := range s.Shards {
		state := "alive"
		if !sh.Alive {
			state = "drained"
		}
		fmt.Fprintf(&b, "shard %d [%s]: solves %-8d p50 %-10v p95 %-10v p99 %-10v queue %d  fac %d/%d hit  imports %d\n",
			sh.ID, state, sh.Solves, sh.P50, sh.P95, sh.P99, sh.QueueLen,
			sh.Serve.FactorHits, sh.Serve.FactorHits+sh.Serve.FactorMisses, sh.Serve.FactorImports)
	}
	return b.String()
}
