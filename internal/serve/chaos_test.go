package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gesp/internal/faultsim"
	"gesp/internal/krylov"
	"gesp/internal/resilience"
)

// TestServiceChaosUnderResilience is the serving layer's fault drill:
// a resilience-laddered service with per-request deadlines and degraded
// overload mode, hammered by concurrent clients mixing healthy and
// NaN-poisoned right-hand sides. Run under -race. The invariants:
//
//   - no request outlives its deadline by more than scheduling slack,
//   - poisoned inputs fail fast with ErrNonFiniteRHS and never poison a
//     batch-mate's answer,
//   - healthy solves come back correct,
//   - the rung histogram shows up in Stats once ladder solves ran.
func TestServiceChaosUnderResilience(t *testing.T) {
	const deadline = 250 * time.Millisecond

	inj := faultsim.New(101)
	a := inj.WellConditioned(120, 0.05)

	cfg := DefaultConfig()
	cfg.Options.Resilience = &resilience.Policy{RungDeadline: 50 * time.Millisecond}
	cfg.SolveTimeout = deadline
	cfg.DegradeOnOverload = true
	cfg.Degraded = krylov.Options{Tol: 1e-10, MaxIter: 400}
	cfg.MaxBatch = 4
	cfg.QueueCap = 8
	cfg.MaxDelay = 100 * time.Microsecond
	svc := New(cfg)
	defer svc.Close()

	h, err := svc.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, a.Rows)
	for i := range want {
		want[i] = 1
	}
	good := make([]float64, a.Rows)
	a.MatVec(good, want)

	const clients = 8
	const perClient = 25
	var solved, poisoned, shed atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				poison := (c+k)%5 == 4 // every fifth request is poisoned
				b := append([]float64(nil), good...)
				if poison {
					b[(c*perClient+k)%len(b)] = math.NaN()
				}
				t0 := time.Now()
				x, err := svc.SolveCtx(context.Background(), h, b)
				if d := time.Since(t0); d > deadline+time.Second {
					t.Errorf("request ran %v past its %v deadline", d-deadline, deadline)
				}
				switch {
				case poison:
					if !errors.Is(err, resilience.ErrNonFiniteRHS) {
						t.Errorf("poisoned request: got %v, want ErrNonFiniteRHS", err)
					}
					poisoned.Add(1)
				case errors.Is(err, ErrOverloaded) || errors.Is(err, context.DeadlineExceeded):
					// Legitimate under deliberate overpressure (tiny queue,
					// tiny deadline); counted, not failed.
					shed.Add(1)
				case err != nil:
					t.Errorf("healthy request failed: %v", err)
				default:
					for i := range x {
						if e := math.Abs(x[i] - want[i]); e > 1e-6 {
							t.Errorf("healthy solve entry %d off by %g", i, e)
							break
						}
					}
					solved.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	if solved.Load() == 0 {
		t.Fatal("no healthy request ever solved")
	}
	if poisoned.Load() == 0 {
		t.Fatal("chaos mix produced no poisoned requests")
	}
	st := svc.Stats()
	if len(st.RungHist) == 0 {
		t.Fatal("rung histogram empty after laddered solves")
	}
	var rungTotal uint64
	for _, c := range st.RungHist {
		rungTotal += c
	}
	if rungTotal == 0 {
		t.Fatal("rung histogram all zero after laddered solves")
	}
	if st.RungNames[resilience.RungStatic] != "static" {
		t.Fatalf("rung names %v", st.RungNames)
	}
	t.Logf("chaos: solved=%d poisoned=%d shed/deadline=%d degraded=%d deadline-miss=%d rungs=%v",
		solved.Load(), poisoned.Load(), shed.Load(), st.Degraded, st.DeadlineMisses, st.RungHist)
}

// TestDegradedSolveServesUnderOverload jams the direct path behind a
// full queue and requires the degraded iterative path to answer —
// correctly — instead of shedding with ErrOverloaded.
func TestDegradedSolveServesUnderOverload(t *testing.T) {
	inj := faultsim.New(102)
	a := inj.WellConditioned(60, 0.08)

	cfg := DefaultConfig()
	cfg.DegradeOnOverload = true
	cfg.Degraded = krylov.Options{Tol: 1e-11, MaxIter: 500}
	cfg.MaxBatch = 1
	cfg.QueueCap = 1
	cfg.MaxDelay = 0
	svc := New(cfg)
	defer svc.Close()

	h, err := svc.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, a.Rows)
	for i := range want {
		want[i] = 1
	}
	b := make([]float64, a.Rows)
	a.MatVec(b, want)

	// Saturate: many more concurrent requests than queue slots. Some go
	// direct, the overflow must be served degraded; nobody gets
	// ErrOverloaded.
	const n = 24
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			x, err := svc.Solve(h, b)
			if err != nil {
				errCh <- err
				return
			}
			for i := range x {
				if e := math.Abs(x[i] - want[i]); e > 1e-6 {
					errCh <- errors.New("degraded-mode answer too inaccurate")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("request failed under degradation: %v", err)
	}
	st := svc.Stats()
	if st.LoadShed > 0 && st.Degraded == 0 {
		t.Fatalf("queue shed %d requests but none were served degraded", st.LoadShed)
	}
	t.Logf("overload: shed=%d degraded=%d solves=%d", st.LoadShed, st.Degraded, st.Solves)
}

// TestSolveTimeoutBoundsTheWait wedges the solve queue behind an
// artificially slow direct path and checks the per-request deadline cuts
// the caller loose with context.DeadlineExceeded, counted in stats.
func TestSolveTimeoutBoundsTheWait(t *testing.T) {
	var m Metrics
	fb := &fakeBackend{gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	bat := newBatcher(fb, 1, 0, 64, &m)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); bat.submit(context.Background(), []float64{0}) }()
	<-fb.entered // cutter wedged inside the first batch

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := bat.submit(ctx, []float64{1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("deadline wait took %v", d)
	}
	fb.release()
	wg.Wait()
}
