package serve

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"gesp/internal/resilience"
)

// Phase indexes the per-phase latency accounting. The phases partition a
// request's life the way mpisim partitions a simulated run into
// factor/solve/communication time: every nanosecond a request spends in
// the service is charged to exactly one phase.
type Phase int

const (
	// PhaseAnalyze is symbolic analysis (steps 1–2 + static structure)
	// for a pattern-cache miss.
	PhaseAnalyze Phase = iota
	// PhaseFactor is numeric factorization for a factor-cache miss.
	PhaseFactor
	// PhaseQueue is time a solve request waits in a batcher queue before
	// its batch is cut.
	PhaseQueue
	// PhaseSolve is the batched triangular sweep plus pack/unpack,
	// charged per batch.
	PhaseSolve
	// PhaseDegraded is an overload-shed iterative solve (Config.
	// DegradeOnOverload), charged per request.
	PhaseDegraded
	numPhases
)

var phaseNames = [numPhases]string{"analyze", "factor", "queue", "solve", "degraded"}

// String returns the phase's snake-case name.
func (p Phase) String() string { return phaseNames[p] }

// batchBuckets are the inclusive upper bounds of the batch-size
// histogram: 1, 2, 4, 8, 16, 32 and an overflow bucket.
var batchBuckets = [numBatchBuckets]int{1, 2, 4, 8, 16, 32}

const numBatchBuckets = 6

// Metrics is the service's accounting: lock-free atomic counters on the
// hot path, gathered into an immutable Stats snapshot on demand (the
// GatherStats idiom of mpisim). All counters are cumulative since the
// service started; QueueDepth is the only instantaneous gauge.
type Metrics struct {
	symHits    atomic.Uint64
	symMisses  atomic.Uint64
	facHits    atomic.Uint64
	facMisses  atomic.Uint64
	symEvicts  atomic.Uint64
	facEvicts  atomic.Uint64
	symImports atomic.Uint64
	facImports atomic.Uint64

	submits atomic.Uint64
	solves  atomic.Uint64
	batches atomic.Uint64
	shed    atomic.Uint64
	expired atomic.Uint64

	// Resilience accounting: which rung each ladder-driven solve ended
	// on, how many climbed, the cumulative above-rung-0 latency, and the
	// degradation/deadline counters of the serving layer itself.
	rungHist     [resilience.NumRungs]atomic.Uint64
	escalations  atomic.Uint64
	unrecovered  atomic.Uint64
	fallbackNs   atomic.Int64
	degraded     atomic.Uint64
	deadlineMiss atomic.Uint64

	queueDepth atomic.Int64

	batchHist [len(batchBuckets) + 1]atomic.Uint64

	phaseNs    [numPhases]atomic.Int64
	phaseCount [numPhases]atomic.Int64
}

// observePhase charges d to phase p.
func (m *Metrics) observePhase(p Phase, d time.Duration) {
	m.phaseNs[p].Add(d.Nanoseconds())
	m.phaseCount[p].Add(1)
}

// observeEscalation folds one ladder trace into the rung histogram and
// fallback-latency accounting; it is the OnTrace hook Service.New chains
// into the resilience policy.
func (m *Metrics) observeEscalation(e *resilience.Escalation) {
	if r := e.FinalRung; r >= 0 && int(r) < len(m.rungHist) {
		m.rungHist[r].Add(1)
	}
	if e.Escalated() {
		m.escalations.Add(1)
		m.fallbackNs.Add(int64(e.FallbackCost()))
	}
	if !e.Converged {
		m.unrecovered.Add(1)
	}
}

// observeBatch records one cut batch of k solves.
func (m *Metrics) observeBatch(k int) {
	m.batches.Add(1)
	m.solves.Add(uint64(k))
	for i, ub := range batchBuckets {
		if k <= ub {
			m.batchHist[i].Add(1)
			return
		}
	}
	m.batchHist[len(batchBuckets)].Add(1)
}

// PhaseStat is one phase's cumulative latency accounting.
type PhaseStat struct {
	Count   int64         `json:"count"`
	TotalNs int64         `json:"total_ns"`
	Mean    time.Duration `json:"mean_ns"`
}

// Stats is a consistent-enough snapshot of the service counters: each
// field is read atomically; the set is not a single linearization point,
// which is fine for monitoring.
type Stats struct {
	// Two-level cache accounting. A symbolic hit means a submitted
	// pattern skipped MC64/ordering/symbolic entirely; a factor hit
	// means the submitted (pattern, values) pair skipped numeric
	// factorization too.
	SymbolicHits      uint64 `json:"symbolic_hits"`
	SymbolicMisses    uint64 `json:"symbolic_misses"`
	FactorHits        uint64 `json:"factor_hits"`
	FactorMisses      uint64 `json:"factor_misses"`
	SymbolicEvictions uint64 `json:"symbolic_evictions"`
	FactorEvictions   uint64 `json:"factor_evictions"`
	// Imports count entries adopted from another shard via the handoff
	// API (ImportSymbolic/ImportFactor): cache population that cost no
	// analysis or factorization here.
	SymbolicImports uint64 `json:"symbolic_imports,omitempty"`
	FactorImports   uint64 `json:"factor_imports,omitempty"`

	Submits uint64 `json:"submits"`
	Solves  uint64 `json:"solves"`
	Batches uint64 `json:"batches"`
	// LoadShed counts solve requests rejected with ErrOverloaded because
	// their factor's queue was full; Expired counts solves rejected with
	// ErrHandleExpired after eviction.
	LoadShed uint64 `json:"load_shed"`
	Expired  uint64 `json:"expired"`

	// Resilience accounting (all zero unless the service runs with a
	// resilience policy). RungHist[r] counts ladder solves that ENDED on
	// rung r (RungNames gives the labels); Escalations counts solves
	// that climbed above rung 0; Unrecovered counts ladder exhaustions;
	// FallbackNs is the cumulative wall-clock spent above rung 0.
	// Degraded counts overload-shed iterative solves and DeadlineMisses
	// counts requests that outran their deadline.
	RungNames      []string `json:"rung_names,omitempty"`
	RungHist       []uint64 `json:"rung_hist,omitempty"`
	Escalations    uint64   `json:"escalations"`
	Unrecovered    uint64   `json:"unrecovered"`
	FallbackNs     int64    `json:"fallback_ns"`
	Degraded       uint64   `json:"degraded"`
	DeadlineMisses uint64   `json:"deadline_misses"`

	// QueueDepth is the instantaneous number of queued, not-yet-batched
	// solve requests across all factors.
	QueueDepth int64 `json:"queue_depth"`

	// Cache occupancy at snapshot time.
	SymbolicEntries int   `json:"symbolic_entries"`
	FactorEntries   int   `json:"factor_entries"`
	FactorBytes     int64 `json:"factor_bytes"`

	// BatchSizes is the histogram of cut batch sizes; bucket i counts
	// batches of size ≤ BatchBuckets[i], the last bucket is overflow.
	BatchBuckets []int    `json:"batch_buckets"`
	BatchSizes   []uint64 `json:"batch_sizes"`

	// Phases maps phase name → cumulative latency accounting.
	Phases map[string]PhaseStat `json:"phases"`
}

// snapshot gathers the counters.
func (m *Metrics) snapshot() Stats {
	s := Stats{
		SymbolicHits:      m.symHits.Load(),
		SymbolicMisses:    m.symMisses.Load(),
		FactorHits:        m.facHits.Load(),
		FactorMisses:      m.facMisses.Load(),
		SymbolicEvictions: m.symEvicts.Load(),
		FactorEvictions:   m.facEvicts.Load(),
		SymbolicImports:   m.symImports.Load(),
		FactorImports:     m.facImports.Load(),
		Submits:           m.submits.Load(),
		Solves:            m.solves.Load(),
		Batches:           m.batches.Load(),
		LoadShed:          m.shed.Load(),
		Expired:           m.expired.Load(),
		Escalations:       m.escalations.Load(),
		Unrecovered:       m.unrecovered.Load(),
		FallbackNs:        m.fallbackNs.Load(),
		Degraded:          m.degraded.Load(),
		DeadlineMisses:    m.deadlineMiss.Load(),
		QueueDepth:        m.queueDepth.Load(),
		BatchBuckets:      append([]int(nil), batchBuckets[:]...),
		BatchSizes:        make([]uint64, len(batchBuckets)+1),
		Phases:            make(map[string]PhaseStat, numPhases),
	}
	for i := range m.batchHist {
		s.BatchSizes[i] = m.batchHist[i].Load()
	}
	var rungTotal uint64
	hist := make([]uint64, resilience.NumRungs)
	names := make([]string, resilience.NumRungs)
	for r := range hist {
		hist[r] = m.rungHist[r].Load()
		names[r] = resilience.Rung(r).String()
		rungTotal += hist[r]
	}
	if rungTotal > 0 {
		s.RungHist, s.RungNames = hist, names
	}
	for p := Phase(0); p < numPhases; p++ {
		ps := PhaseStat{Count: m.phaseCount[p].Load(), TotalNs: m.phaseNs[p].Load()}
		if ps.Count > 0 {
			ps.Mean = time.Duration(ps.TotalNs / ps.Count)
		}
		s.Phases[p.String()] = ps
	}
	return s
}

// HitRate returns hits/(hits+misses), or 0 when there were no lookups.
func HitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// String formats the snapshot as the small report the stats endpoint and
// the load generator print.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "submits %d  solves %d  batches %d  shed %d  expired %d\n",
		s.Submits, s.Solves, s.Batches, s.LoadShed, s.Expired)
	fmt.Fprintf(&b, "symbolic cache: %d/%d hits (%.1f%%), %d entries, %d evicted\n",
		s.SymbolicHits, s.SymbolicHits+s.SymbolicMisses,
		100*HitRate(s.SymbolicHits, s.SymbolicMisses), s.SymbolicEntries, s.SymbolicEvictions)
	fmt.Fprintf(&b, "factor cache:   %d/%d hits (%.1f%%), %d entries, %d bytes, %d evicted\n",
		s.FactorHits, s.FactorHits+s.FactorMisses,
		100*HitRate(s.FactorHits, s.FactorMisses), s.FactorEntries, s.FactorBytes, s.FactorEvictions)
	if len(s.RungHist) > 0 || s.Escalations > 0 || s.Degraded > 0 || s.DeadlineMisses > 0 {
		fmt.Fprintf(&b, "resilience: escalations %d  unrecovered %d  fallback %v  degraded %d  deadline-miss %d\n",
			s.Escalations, s.Unrecovered, time.Duration(s.FallbackNs), s.Degraded, s.DeadlineMisses)
		if len(s.RungHist) > 0 {
			b.WriteString("rung histogram:")
			for r, c := range s.RungHist {
				fmt.Fprintf(&b, "  %s:%d", s.RungNames[r], c)
			}
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, "queue depth %d; batch sizes", s.QueueDepth)
	for i, ub := range s.BatchBuckets {
		fmt.Fprintf(&b, "  ≤%d:%d", ub, s.BatchSizes[i])
	}
	fmt.Fprintf(&b, "  >%d:%d\n", s.BatchBuckets[len(s.BatchBuckets)-1], s.BatchSizes[len(s.BatchSizes)-1])
	for p := Phase(0); p < numPhases; p++ {
		ps := s.Phases[p.String()]
		fmt.Fprintf(&b, "phase %-8s count %-8d total %-12v mean %v\n",
			p.String(), ps.Count, time.Duration(ps.TotalNs), ps.Mean)
	}
	return b.String()
}
