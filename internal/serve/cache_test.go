package serve

import (
	"errors"
	"sync"
	"testing"
)

// TestFactorLRUEviction pins MaxFactors at 2 and walks three distinct
// systems through: the least-recently-used factor must fall out, its
// handle must expire, and resubmission must restore it.
func TestFactorLRUEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxFactors = 2
	svc := New(cfg)
	defer svc.Close()

	s1 := testbedSystem(t, "SHERMAN4", 0)
	s2 := testbedSystem(t, "SHERMAN4", 5)
	s3 := testbedSystem(t, "SHERMAN4", 9)

	h1, err := svc.Submit(s1.a)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := svc.Submit(s2.a)
	if err != nil {
		t.Fatal(err)
	}
	// Touch h1 so h2 becomes the LRU victim.
	if _, err := svc.Solve(h1, s1.b); err != nil {
		t.Fatal(err)
	}
	h3, err := svc.Submit(s3.a)
	if err != nil {
		t.Fatal(err)
	}

	st := svc.Stats()
	if st.FactorEvictions != 1 {
		t.Fatalf("factor evictions = %d, want 1", st.FactorEvictions)
	}
	if st.FactorEntries != 2 {
		t.Fatalf("factor entries = %d, want 2", st.FactorEntries)
	}
	if _, err := svc.Solve(h2, s2.b); !errors.Is(err, ErrHandleExpired) {
		t.Fatalf("evicted handle: got %v, want ErrHandleExpired", err)
	}
	for _, pair := range []struct {
		h   Handle
		sys system
	}{{h1, s1}, {h3, s3}} {
		x, err := svc.Solve(pair.h, pair.sys.b)
		if err != nil {
			t.Fatal(err)
		}
		checkSolution(t, x, pair.sys.want)
	}

	// Resubmission restores the evicted system (a fresh factorization,
	// but still no symbolic work: the pattern is cached).
	if _, err := svc.Submit(s2.a); err != nil {
		t.Fatal(err)
	}
	x, err := svc.Solve(h2, s2.b)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, x, s2.want)
	if st := svc.Stats(); st.SymbolicMisses != 1 {
		t.Fatalf("re-factor after eviction re-ran analysis: %d misses", st.SymbolicMisses)
	}
}

// TestFactorByteBudget sets the byte budget below two resident factors
// and checks the budget-driven eviction path (the count cap stays slack).
func TestFactorByteBudget(t *testing.T) {
	s1 := testbedSystem(t, "SHERMAN4", 0)
	s2 := testbedSystem(t, "SHERMAN4", 5)

	// Size the budget from a probe service: 1.5 resident factors.
	probe := New(DefaultConfig())
	if _, err := probe.Submit(s1.a); err != nil {
		t.Fatal(err)
	}
	oneFactor := probe.Stats().FactorBytes
	probe.Close()

	cfg := DefaultConfig()
	cfg.MaxFactorBytes = oneFactor * 3 / 2
	svc := New(cfg)
	defer svc.Close()
	if _, err := svc.Submit(s1.a); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(s2.a); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.FactorEvictions != 1 || st.FactorEntries != 1 {
		t.Fatalf("byte budget: evictions=%d entries=%d, want 1/1", st.FactorEvictions, st.FactorEntries)
	}
	if st.FactorBytes > cfg.MaxFactorBytes {
		t.Fatalf("resident bytes %d exceed budget %d", st.FactorBytes, cfg.MaxFactorBytes)
	}
}

// TestSymbolicLRUEviction caps the pattern cache at 1 and alternates two
// patterns; the second pattern must displace the first.
func TestSymbolicLRUEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSymbolic = 1
	svc := New(cfg)
	defer svc.Close()

	sherman := testbedSystem(t, "SHERMAN4", 0)
	gemat := testbedSystem(t, "GEMAT11", 0)
	if _, err := svc.Submit(sherman.a); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(gemat.a); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.SymbolicEvictions != 1 || st.SymbolicEntries != 1 {
		t.Fatalf("symbolic cache: evictions=%d entries=%d, want 1/1", st.SymbolicEvictions, st.SymbolicEntries)
	}
	// The displaced pattern re-analyzes on resubmission of a twin.
	twin := testbedSystem(t, "SHERMAN4", 3)
	if _, err := svc.Submit(twin.a); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.SymbolicMisses != 3 {
		t.Fatalf("symbolic misses = %d, want 3 (evicted pattern re-analyzed)", st.SymbolicMisses)
	}
}

// TestSingleflightFactorsOnce fires many concurrent submissions of the
// same system and requires exactly one analysis and one factorization to
// have happened — the singleflight contract.
func TestSingleflightFactorsOnce(t *testing.T) {
	svc := New(DefaultConfig())
	defer svc.Close()
	sys := testbedSystem(t, "GEMAT11", 0)

	const workers = 16
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := svc.Submit(sys.a); err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := svc.Stats()
	if got := st.Phases[PhaseAnalyze.String()].Count; got != 1 {
		t.Fatalf("analyze ran %d times under concurrent submission, want 1", got)
	}
	if got := st.Phases[PhaseFactor.String()].Count; got != 1 {
		t.Fatalf("factor ran %d times under concurrent submission, want 1", got)
	}
	if st.FactorEntries != 1 {
		t.Fatalf("factor entries = %d, want 1", st.FactorEntries)
	}
}
