package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeBackend is a controllable solveBackend: it records batch sizes,
// optionally blocks inside SolveBatch until released, optionally fails,
// and "solves" by echoing the right-hand side.
type fakeBackend struct {
	mu      sync.Mutex
	batches []int
	gate    chan struct{} // when non-nil, entered is signalled and SolveBatch blocks on gate
	entered chan struct{}
	err     error
}

func (f *fakeBackend) SolveBatchCtx(_ context.Context, bs [][]float64) ([][]float64, []error, error) {
	f.mu.Lock()
	f.batches = append(f.batches, len(bs))
	gate, entered := f.gate, f.entered
	err := f.err
	f.mu.Unlock()
	if gate != nil {
		entered <- struct{}{}
		<-gate
	}
	if err != nil {
		return nil, nil, err
	}
	xs := make([][]float64, len(bs))
	for i, b := range bs {
		xs[i] = append([]float64(nil), b...)
	}
	return xs, nil, nil
}

// release opens the gate and stops further batches from signalling, so
// the drain after a test's controlled phase can't block on entered.
func (f *fakeBackend) release() {
	f.mu.Lock()
	gate := f.gate
	f.gate = nil
	f.mu.Unlock()
	close(gate)
}

func (f *fakeBackend) sizes() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.batches...)
}

// TestBatcherCoalesces blocks the first (singleton) batch, queues
// exactly maxBatch requests behind it, and requires them to come out as
// one batch with every result routed to its submitter.
func TestBatcherCoalesces(t *testing.T) {
	var m Metrics
	fb := &fakeBackend{gate: make(chan struct{}), entered: make(chan struct{}, 8)}
	bat := newBatcher(fb, 4, time.Millisecond, 64, &m)

	results := make(chan float64, 8)
	submit := func(tag float64) {
		x, err := bat.submit(context.Background(), []float64{tag})
		if err != nil {
			t.Errorf("submit %v: %v", tag, err)
			return
		}
		results <- x[0]
	}
	go submit(1)
	<-fb.entered // cutter is now blocked inside batch [1]
	var wg sync.WaitGroup
	for i := 2; i <= 5; i++ {
		wg.Add(1)
		go func(tag float64) { defer wg.Done(); submit(tag) }(float64(i))
	}
	// Wait until all four are queued, then release the gate.
	for deadline := time.Now().Add(5 * time.Second); m.queueDepth.Load() < 4; {
		if time.Now().After(deadline) {
			t.Fatal("requests never queued")
		}
		time.Sleep(50 * time.Microsecond)
	}
	fb.release()
	wg.Wait()

	got := map[float64]bool{}
	for i := 0; i < 5; i++ {
		got[<-results] = true
	}
	for i := 1; i <= 5; i++ {
		if !got[float64(i)] {
			t.Fatalf("result for request %d never delivered", i)
		}
	}
	sizes := fb.sizes()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 4 {
		t.Fatalf("batch sizes %v, want [1 4]", sizes)
	}
	if m.batches.Load() != 2 || m.solves.Load() != 5 {
		t.Fatalf("metrics: batches=%d solves=%d, want 2/5", m.batches.Load(), m.solves.Load())
	}
}

// TestBatcherSheds fills the queue behind a blocked solver and requires
// the overflow request to be rejected immediately with ErrOverloaded.
func TestBatcherSheds(t *testing.T) {
	const cap = 3
	var m Metrics
	fb := &fakeBackend{gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	bat := newBatcher(fb, 1, 0, cap, &m)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); bat.submit(context.Background(), []float64{0}) }()
	<-fb.entered // solver blocked on batch [0]

	for i := 0; i < cap; i++ {
		wg.Add(1)
		go func(tag float64) { defer wg.Done(); bat.submit(context.Background(), []float64{tag}) }(float64(i + 1))
	}
	for deadline := time.Now().Add(5 * time.Second); m.queueDepth.Load() < cap; {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(50 * time.Microsecond)
	}

	// Queue is at capacity: the next request must shed, not block.
	start := time.Now()
	_, err := bat.submit(context.Background(), []float64{99})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("shedding took %v; must not block", d)
	}
	if m.shed.Load() != 1 {
		t.Fatalf("shed counter = %d, want 1", m.shed.Load())
	}

	fb.release()
	wg.Wait()
	if m.queueDepth.Load() != 0 {
		t.Fatalf("queue depth %d after drain", m.queueDepth.Load())
	}
}

// TestBatcherPropagatesError delivers a backend failure to every member
// of the batch.
func TestBatcherPropagatesError(t *testing.T) {
	var m Metrics
	boom := errors.New("boom")
	fb := &fakeBackend{err: boom}
	bat := newBatcher(fb, 4, time.Millisecond, 64, &m)

	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := bat.submit(context.Background(), []float64{1})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	n := 0
	for err := range errs {
		n++
		if !errors.Is(err, boom) {
			t.Fatalf("got %v, want backend error", err)
		}
	}
	if n != 3 {
		t.Fatalf("delivered %d errors, want 3", n)
	}
}

// TestBatcherZeroDelay checks that MaxDelay=0 cuts singleton batches
// immediately — the batching-off configuration.
func TestBatcherZeroDelay(t *testing.T) {
	var m Metrics
	fb := &fakeBackend{}
	bat := newBatcher(fb, 8, 0, 64, &m)
	for i := 0; i < 4; i++ {
		if _, err := bat.submit(context.Background(), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range fb.sizes() {
		if s != 1 {
			t.Fatalf("zero-delay batch of size %d, want 1", s)
		}
	}
}
