// Package serve is the solve service that turns static pivoting's
// structural guarantee into throughput. GESP's elimination structure is
// fixed before any numerics (the paper's whole point), so:
//
//   - symbolic analysis — equilibration targets, MC64 row permutation,
//     fill-reducing ordering, supernodal structure — is reusable across
//     every matrix with the same sparsity pattern, and
//   - numeric factors are reusable across every right-hand side.
//
// The service exploits both with a two-level cache (symbolic analyses
// keyed by sparse.PatternHash, numeric factors keyed by pattern + value
// fingerprints, LRU with a memory budget, singleflight so concurrent
// misses factor once) and an RHS batcher per factor that coalesces
// queued solves into one column-blocked multi-RHS triangular sweep
// (lu.Factors.SolveMulti). Bounded queues shed load with explicit
// errors instead of blocking. cmd/gesp-serve wraps this in an HTTP JSON
// API and a closed-loop load generator.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"gesp/internal/core"
	"gesp/internal/krylov"
	"gesp/internal/resilience"
	"gesp/internal/sparse"
)

// Service errors. Handlers map these to retryable status codes;
// anything else is a caller or numerical error.
var (
	// ErrOverloaded means the target factor's solve queue was full; the
	// request was shed without queueing. Retry with backoff. The error
	// actually returned is an *OverloadedError carrying the observed
	// queue depth and a retry-after hint; errors.Is against this
	// sentinel matches it.
	ErrOverloaded = errors.New("serve: overloaded, solve queue full")
	// ErrHandleExpired means the handle's factorization is not resident
	// — either it was evicted under memory pressure or it was never
	// submitted here. Resubmit the matrix to re-factor.
	ErrHandleExpired = errors.New("serve: handle not resident (evicted or unknown); resubmit the matrix")
	// ErrClosed means the service has been shut down.
	ErrClosed = errors.New("serve: service closed")
)

// OverloadedError is the typed overload rejection: the request was shed
// because its factor's solve queue held QueueDepth requests already.
// RetryAfter is a backoff hint — roughly one admission window, the
// earliest the queue can plausibly have drained a batch. A fleet router
// uses the distinction this type carries: an overloaded shard is worth
// retrying on a replica immediately (the load is per-shard), whereas a
// quota rejection is not (the quota follows the tenant).
//
// errors.Is(err, ErrOverloaded) matches an *OverloadedError, so callers
// that only care about the class keep working unchanged.
type OverloadedError struct {
	QueueDepth int
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("serve: overloaded, solve queue full (depth %d, retry after %v)",
		e.QueueDepth, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) true for the typed error.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// Config tunes the service. DefaultConfig is the intended starting
// point; New fills any zero numeric field with the default.
type Config struct {
	// Options is the GESP pipeline configuration used for every
	// analysis and factorization the service performs.
	Options core.Options
	// MaxBatch caps how many right-hand sides one triangular sweep
	// carries; a batch is cut early once this many are queued.
	MaxBatch int
	// MaxDelay is the longest a queued solve waits for its batch to
	// fill before the batch is cut anyway. Zero cuts immediately
	// (batching only under concurrent arrivals).
	MaxDelay time.Duration
	// QueueCap bounds each factor's solve queue; requests beyond it are
	// shed with ErrOverloaded.
	QueueCap int
	// MaxFactors and MaxFactorBytes bound the numeric cache (entry
	// count and estimated resident bytes); least-recently-used factors
	// are evicted first.
	MaxFactors     int
	MaxFactorBytes int64
	// MaxSymbolic bounds the symbolic (pattern) cache entry count.
	MaxSymbolic int
	// SolveTimeout is the per-request deadline applied to every Solve
	// when the caller's context carries none; 0 means no deadline. A
	// request past its deadline returns context.DeadlineExceeded (and is
	// counted in Stats.DeadlineMisses); combine with a resilience
	// policy's RungDeadline to also bound the work itself.
	SolveTimeout time.Duration
	// DegradeOnOverload turns a full solve queue into a degraded
	// iterative-only solve (GMRES preconditioned by the cached factors,
	// the ladder's rung-3 machinery) on the caller's goroutine instead
	// of returning ErrOverloaded: under overload the service sheds
	// direct-solve THROUGHPUT, not requests. Degraded solves are counted
	// in Stats.Degraded.
	DegradeOnOverload bool
	// Degraded tunes the degraded path's GMRES; zero fields take
	// krylov's defaults.
	Degraded krylov.Options
}

// DefaultConfig returns the serving defaults: the paper's recommended
// GESP options with refinement on, batches of up to 16 RHS cut after at
// most 200µs, 256-deep queues, and a 1 GiB factor budget.
func DefaultConfig() Config {
	return Config{
		Options:        core.DefaultOptions(),
		MaxBatch:       16,
		MaxDelay:       200 * time.Microsecond,
		QueueCap:       256,
		MaxFactors:     1024,
		MaxFactorBytes: 1 << 30,
		MaxSymbolic:    256,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.MaxBatch <= 0 {
		c.MaxBatch = d.MaxBatch
	}
	if c.MaxDelay < 0 {
		c.MaxDelay = 0
	}
	if c.QueueCap <= 0 {
		c.QueueCap = d.QueueCap
	}
	if c.MaxFactors <= 0 {
		c.MaxFactors = d.MaxFactors
	}
	if c.MaxFactorBytes <= 0 {
		c.MaxFactorBytes = d.MaxFactorBytes
	}
	if c.MaxSymbolic <= 0 {
		c.MaxSymbolic = d.MaxSymbolic
	}
}

// Handle names a submitted system: the factor-cache key plus the
// dimension. Handles are stable, comparable, and safe to share between
// clients — any client holding a handle may solve against it.
type Handle struct {
	Key FactorKey
	N   int
}

// String encodes the handle as "p<hex>.v<hex>.n<dec>", the wire form
// the HTTP API uses.
func (h Handle) String() string {
	return fmt.Sprintf("p%016x.v%016x.n%d", h.Key.Pattern, h.Key.Values, h.N)
}

// ParseHandle decodes the String form.
func ParseHandle(s string) (Handle, error) {
	var h Handle
	if _, err := fmt.Sscanf(s, "p%016x.v%016x.n%d", &h.Key.Pattern, &h.Key.Values, &h.N); err != nil {
		return Handle{}, fmt.Errorf("serve: malformed handle %q: %w", s, err)
	}
	return h, nil
}

// Service is the concurrent solve service. All methods are safe for
// concurrent use.
type Service struct {
	cfg    Config
	m      Metrics
	c      *cache
	closed atomic.Bool

	symFlight flightGroup[uint64, *core.Solver]
	facFlight flightGroup[FactorKey, *facEntry]
}

// New builds a Service with cfg (zero numeric fields take defaults;
// Options is used as given — start from DefaultConfig for the paper's
// recommended pipeline).
func New(cfg Config) *Service {
	cfg.fillDefaults()
	s := &Service{}
	if cfg.Options.Resilience != nil {
		// Clone the policy and chain its trace hook through the service
		// metrics, so every cached solver built from these options feeds
		// the rung histogram; the caller's own hook still fires.
		pol := *cfg.Options.Resilience
		user := pol.OnTrace
		pol.OnTrace = func(e *resilience.Escalation) {
			s.m.observeEscalation(e)
			if user != nil {
				user(e)
			}
		}
		cfg.Options.Resilience = &pol
	}
	s.cfg = cfg
	s.c = newCache(cfg.MaxSymbolic, cfg.MaxFactors, cfg.MaxFactorBytes, &s.m)
	return s
}

// Submit registers the square matrix a and returns a handle for solves.
// The first submission of a pattern runs the full analysis; a
// pattern-identical resubmission with new values reuses the cached
// analysis and runs only numeric factorization; an identical
// resubmission is a pure cache hit and does no numerical work at all.
// Concurrent submissions of the same system factor once (singleflight).
func (s *Service) Submit(a *sparse.CSC) (Handle, error) {
	if s.closed.Load() {
		return Handle{}, ErrClosed
	}
	if a.Rows != a.Cols {
		return Handle{}, fmt.Errorf("serve: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	s.m.submits.Add(1)
	key := FactorKey{Pattern: sparse.PatternHash(a), Values: sparse.ValueHash(a)}
	h := Handle{Key: key, N: a.Rows}
	if e := s.c.lookupFactor(key); e != nil {
		s.m.facHits.Add(1)
		return h, nil
	}
	s.m.facMisses.Add(1)
	_, err, _ := s.facFlight.Do(key, func() (*facEntry, error) {
		if e := s.c.lookupFactor(key); e != nil {
			return e, nil // a just-finished flight inserted it
		}
		donor, err := s.symbolicFor(key.Pattern, a)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		solver, err := core.NewWithSymbolic(a, donor)
		if err != nil {
			return nil, err
		}
		s.m.observePhase(PhaseFactor, time.Since(t0))
		e := &facEntry{
			key:    key,
			solver: solver,
			bat:    newBatcher(solver, s.cfg.MaxBatch, s.cfg.MaxDelay, s.cfg.QueueCap, &s.m),
			bytes:  factorBytes(solver.Stats()),
		}
		s.c.insertFactor(e)
		return e, nil
	})
	if err != nil {
		return Handle{}, err
	}
	return h, nil
}

// symbolicFor returns the analysis donor for a pattern, building and
// caching it on first sight. The donor is built from whichever matrix
// first presents the pattern; its (value-based) scalings and row
// permutation are deliberately reused for later pattern twins — the
// SamePattern_SameRowPerm trade documented on core.NewWithSymbolic.
func (s *Service) symbolicFor(pattern uint64, a *sparse.CSC) (*core.Solver, error) {
	if donor := s.c.lookupSym(pattern); donor != nil {
		s.m.symHits.Add(1)
		return donor, nil
	}
	s.m.symMisses.Add(1)
	donor, err, _ := s.symFlight.Do(pattern, func() (*core.Solver, error) {
		if d := s.c.lookupSym(pattern); d != nil {
			return d, nil
		}
		t0 := time.Now()
		d, err := core.NewAnalysis(a, s.cfg.Options)
		if err != nil {
			return nil, err
		}
		s.m.observePhase(PhaseAnalyze, time.Since(t0))
		s.c.insertSym(pattern, d)
		return d, nil
	})
	return donor, err
}

// Solve solves A·x = b against the handle's cached factorization,
// coalescing with concurrent solves of the same system into one batched
// triangular sweep. It blocks until the solution is ready; overload and
// eviction surface as ErrOverloaded and ErrHandleExpired (or a degraded
// iterative solve, per Config.DegradeOnOverload).
func (s *Service) Solve(h Handle, b []float64) ([]float64, error) {
	return s.SolveCtx(context.Background(), h, b)
}

// SolveCtx is Solve under a context: the caller's cancellation and
// deadline (tightened by Config.SolveTimeout) bound how long the request
// waits — a request whose context expires returns immediately with
// ctx.Err() while its batch slot completes and is discarded. Poisoned
// right-hand sides (NaN/Inf) fail fast before ever queueing.
func (s *Service) SolveCtx(ctx context.Context, h Handle, b []float64) ([]float64, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if len(b) != h.N {
		return nil, fmt.Errorf("serve: right-hand side length %d, want %d", len(b), h.N)
	}
	for _, v := range b {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			// Reject before queueing: no rung can launder a poisoned
			// input, and failing here keeps the batch clean.
			return nil, fmt.Errorf("serve: %w", resilience.ErrNonFiniteRHS)
		}
	}
	e := s.c.lookupFactor(h.Key)
	if e == nil {
		s.m.expired.Add(1)
		return nil, ErrHandleExpired
	}
	if s.cfg.SolveTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.SolveTimeout)
		defer cancel()
	}
	x, err := e.bat.submit(ctx, b)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.m.deadlineMiss.Add(1)
	case errors.Is(err, ErrOverloaded) && s.cfg.DegradeOnOverload:
		return s.solveDegraded(ctx, e, b)
	}
	return x, err
}

// solveDegraded is the overload relief valve: instead of rejecting, run
// a deadline-bounded GMRES solve preconditioned by the cached factors —
// the resilience ladder's iterative rung — on the caller's goroutine.
// core.Solver.SolveIterative is safe alongside the batcher's direct
// solves, so degraded traffic adds no queueing and touches no shared
// scratch.
func (s *Service) solveDegraded(ctx context.Context, e *facEntry, b []float64) ([]float64, error) {
	t0 := time.Now()
	s.m.degraded.Add(1)
	x, _, err := e.solver.SolveIterative(ctx, b, s.cfg.Degraded)
	s.m.observePhase(PhaseDegraded, time.Since(t0))
	if err != nil && ctx.Err() != nil {
		s.m.deadlineMiss.Add(1)
		return nil, ctx.Err()
	}
	return x, err
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	st := s.m.snapshot()
	st.SymbolicEntries, st.FactorEntries, st.FactorBytes = s.c.occupancy()
	return st
}

// QueueDepth is the instantaneous number of queued, not-yet-batched
// solve requests across all factors — the router-facing load signal a
// fleet uses for hedging decisions. Cheaper than a full Stats snapshot.
func (s *Service) QueueDepth() int64 { return s.m.queueDepth.Load() }

// Close stops admitting work (Submit and Solve return ErrClosed), then
// drains gracefully: it blocks until every batcher has solved the
// requests already queued and its cutter goroutine has exited. Safe to
// call concurrently and more than once; only the first call drains.
func (s *Service) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	// The closed flag stops new enqueues at the Service layer; the
	// per-batcher closed flag (set by close) stops the stragglers that
	// passed the flag check before the flip. Each close blocks until
	// that batcher's queue is empty and its cutter has exited.
	for _, e := range s.c.factorEntries() {
		e.bat.close()
	}
}
