package serve

import (
	"container/list"
	"sync"

	"gesp/internal/core"
)

// FactorKey identifies a numeric factorization: the structural
// fingerprint of the submitted matrix plus the fingerprint of its
// values. Matrices agreeing on both are the same system for serving
// purposes (up to the ~2⁻⁶⁴ hash-collision odds PatternHash documents).
type FactorKey struct {
	Pattern uint64
	Values  uint64
}

// symEntry is one pattern's cached analysis: an analysis-only
// core.Solver (core.NewAnalysis) acting as the donor for
// core.NewWithSymbolic. It holds no numeric factors, so a symbolic
// entry is cheap to retain even after every factorization sharing it
// has been evicted.
type symEntry struct {
	donor *core.Solver
	elem  *list.Element // position in cache.symLRU; Value is the pattern hash
}

// facEntry is one cached numeric factorization plus its RHS batcher.
// Eviction only unlinks the entry from the cache; requests already
// holding it keep solving, the batcher goroutine drains its queue and
// exits, and the garbage collector reclaims the factors afterwards.
type facEntry struct {
	key    FactorKey
	solver *core.Solver
	bat    *batcher
	bytes  int64
	elem   *list.Element // position in cache.facLRU; Value is the FactorKey
}

// cache is the two-level store behind the service: symbolic analyses
// keyed by pattern fingerprint, numeric factors keyed by FactorKey. Both
// levels are LRU; the numeric level additionally enforces a byte budget
// estimated from factor fill. One mutex guards both levels — every
// operation is O(1) map/list work, never a factorization.
type cache struct {
	mu sync.Mutex
	m  *Metrics

	maxSym   int
	maxFac   int
	maxBytes int64

	//gesp:guardedby:mu
	sym map[uint64]*symEntry
	//gesp:guardedby:mu
	symLRU *list.List
	//gesp:guardedby:mu
	fac map[FactorKey]*facEntry
	//gesp:guardedby:mu
	facLRU *list.List
	//gesp:guardedby:mu
	bytes int64
}

func newCache(maxSym, maxFac int, maxBytes int64, m *Metrics) *cache {
	return &cache{
		m:        m,
		maxSym:   maxSym,
		maxFac:   maxFac,
		maxBytes: maxBytes,
		sym:      make(map[uint64]*symEntry),
		symLRU:   list.New(),
		fac:      make(map[FactorKey]*facEntry),
		facLRU:   list.New(),
	}
}

// lookupFactor returns the cached factorization for key, refreshing its
// LRU position, or nil.
func (c *cache) lookupFactor(key FactorKey) *facEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.fac[key]
	if !ok {
		return nil
	}
	c.facLRU.MoveToFront(e.elem)
	return e
}

// insertFactor adds e and evicts least-recently-used factors until the
// count and byte budgets hold again. The new entry itself is never
// evicted, even if it alone exceeds the byte budget — the caller just
// factored it to serve a live request.
func (c *cache) insertFactor(e *facEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.fac[e.key]; ok {
		// A racing build already inserted this key; keep the incumbent.
		c.facLRU.MoveToFront(old.elem)
		return
	}
	e.elem = c.facLRU.PushFront(e.key)
	c.fac[e.key] = e
	c.bytes += e.bytes
	for (c.facLRU.Len() > c.maxFac || c.bytes > c.maxBytes) && c.facLRU.Len() > 1 {
		back := c.facLRU.Back()
		if back == e.elem {
			break
		}
		victim := c.fac[back.Value.(FactorKey)]
		c.facLRU.Remove(back)
		delete(c.fac, victim.key)
		c.bytes -= victim.bytes
		c.m.facEvicts.Add(1)
	}
}

// lookupSym returns the cached analysis donor for a pattern, refreshing
// its LRU position, or nil.
func (c *cache) lookupSym(pattern uint64) *core.Solver {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.sym[pattern]
	if !ok {
		return nil
	}
	c.symLRU.MoveToFront(e.elem)
	return e.donor
}

// insertSym adds a pattern's analysis donor, evicting the
// least-recently-used analyses beyond the count cap.
func (c *cache) insertSym(pattern uint64, donor *core.Solver) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.sym[pattern]; ok {
		c.symLRU.MoveToFront(old.elem)
		return
	}
	e := &symEntry{donor: donor}
	e.elem = c.symLRU.PushFront(pattern)
	c.sym[pattern] = e
	for c.symLRU.Len() > c.maxSym && c.symLRU.Len() > 1 {
		back := c.symLRU.Back()
		c.symLRU.Remove(back)
		delete(c.sym, back.Value.(uint64))
		c.m.symEvicts.Add(1)
	}
}

// factorEntries snapshots every resident factor entry in LRU order
// (most recent first) — the deterministic iteration Close and the
// drain-handoff path both need (the map's range order would leak).
func (c *cache) factorEntries() []*facEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*facEntry, 0, c.facLRU.Len())
	for el := c.facLRU.Front(); el != nil; el = el.Next() {
		out = append(out, c.fac[el.Value.(FactorKey)])
	}
	return out
}

// exportAll strips the cache: every symbolic and factor entry is
// unlinked and returned, in LRU order (most recent first), leaving the
// cache empty. Exported entries are not counted as evictions — they
// are leaving for another shard, not dying.
func (c *cache) exportAll() (syms []ExportedSymbolic, facs []*facEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.symLRU.Front(); el != nil; el = el.Next() {
		p := el.Value.(uint64)
		syms = append(syms, ExportedSymbolic{Pattern: p, Donor: c.sym[p].donor})
	}
	for el := c.facLRU.Front(); el != nil; el = el.Next() {
		facs = append(facs, c.fac[el.Value.(FactorKey)])
	}
	c.sym = make(map[uint64]*symEntry)
	c.symLRU.Init()
	c.fac = make(map[FactorKey]*facEntry)
	c.facLRU.Init()
	c.bytes = 0
	return syms, facs
}

// occupancy reports entry counts and factor bytes for stats snapshots.
func (c *cache) occupancy() (symEntries, facEntries int, facBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.symLRU.Len(), c.facLRU.Len(), c.bytes
}

// factorBytes estimates the resident cost of one cached factorization:
// the L/U values (8 bytes each over the fill), the permuted copy of the
// input (value + row index per nonzero), and the per-row bookkeeping
// slices. Indices of the static structure are shared with the symbolic
// donor and not charged here.
func factorBytes(st core.Stats) int64 {
	return 8*int64(st.NnzLU) + 16*int64(st.NnzA) + 48*int64(st.N)
}
