package serve

import (
	"fmt"

	"gesp/internal/core"
)

// Cache handoff: the API a fleet router uses to move cached work
// between shards instead of cold-restarting it.
//
//   - Drain gracefully shuts a shard down and exports everything its
//     caches hold, so a rebalance can hand entries to their new owners;
//   - ImportFactor / ImportSymbolic adopt an exported entry on the
//     destination, skipping re-analysis and re-factorization entirely;
//   - ExportSymbolic peeks a single analysis donor so a replica shard
//     can build its own numeric factors without redoing MC64/ordering/
//     symbolic analysis (the same donor-sharing contract
//     core.NewWithSymbolic already has inside one service).
//
// A factor entry's solver is moved, never shared: the source must have
// stopped solving on it (Drain guarantees this — every cutter has
// exited before the export is assembled) because core.Solver solves
// are not concurrency-safe on one instance. Symbolic donors, by
// contrast, are read-only at factor time and may be shared freely.

// ExportedSymbolic is one pattern's analysis donor leaving a shard.
type ExportedSymbolic struct {
	Pattern uint64
	Donor   *core.Solver
}

// ExportedFactor is one numeric factorization leaving a shard.
type ExportedFactor struct {
	Key    FactorKey
	N      int
	Solver *core.Solver
}

// Export is a drained shard's entire cache contents, in LRU order
// (most recently used first) so a capacity-limited importer keeps the
// hottest entries when its own budgets force eviction.
type Export struct {
	Symbolic []ExportedSymbolic
	Factors  []ExportedFactor
}

// Drain closes the service gracefully (queued solves finish, cutter
// goroutines exit) and strips its caches, returning every symbolic
// analysis and factorization for adoption elsewhere. After Drain the
// service is closed and empty; the returned solvers are exclusively
// the caller's.
func (s *Service) Drain() Export {
	s.Close()
	syms, facs := s.c.exportAll()
	exp := Export{Symbolic: syms}
	for _, e := range facs {
		exp.Factors = append(exp.Factors, ExportedFactor{
			Key: e.key, N: e.solver.Stats().N, Solver: e.solver,
		})
	}
	return exp
}

// ExportSymbolic returns the cached analysis donor for a pattern, or
// nil. The donor stays cached here too — symbolic donors are read-only
// at factor time and safe to share across services.
func (s *Service) ExportSymbolic(pattern uint64) *core.Solver {
	return s.c.lookupSym(pattern)
}

// ImportSymbolic adopts an analysis donor under the given pattern
// fingerprint; a pattern already resident keeps its incumbent. Imports
// count separately from misses — no analysis ran here.
func (s *Service) ImportSymbolic(pattern uint64, donor *core.Solver) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if donor == nil {
		return fmt.Errorf("serve: ImportSymbolic: nil donor")
	}
	s.m.symImports.Add(1)
	s.c.insertSym(pattern, donor)
	return nil
}

// ImportFactor adopts a factorization exported from another shard: the
// solver is wrapped in a fresh batcher bound to this service's
// admission policy and inserted into the factor cache (normal LRU and
// byte budgets apply). No numeric work runs — the core.Stats phase
// counters of the adopted solver are unchanged, which is how handoff
// tests prove a rebalance re-factored nothing. The caller must not
// keep solving on the exported solver; ownership moves here.
func (s *Service) ImportFactor(f ExportedFactor) (Handle, error) {
	if s.closed.Load() {
		return Handle{}, ErrClosed
	}
	if f.Solver == nil {
		return Handle{}, fmt.Errorf("serve: ImportFactor: nil solver")
	}
	s.m.facImports.Add(1)
	e := &facEntry{
		key:    f.Key,
		solver: f.Solver,
		bat:    newBatcher(f.Solver, s.cfg.MaxBatch, s.cfg.MaxDelay, s.cfg.QueueCap, &s.m),
		bytes:  factorBytes(f.Solver.Stats()),
	}
	s.c.insertFactor(e)
	return Handle{Key: f.Key, N: f.Solver.Stats().N}, nil
}
