package serve

import (
	"context"
	"sync"
	"time"
)

// batcher coalesces solve requests against one factorization into
// multi-RHS batches. Admission policy: a batch is cut as soon as
// maxBatch requests are queued, or when the oldest queued request has
// waited maxDelay, whichever comes first. The queue is bounded at
// queueCap; requests beyond that are shed immediately with
// ErrOverloaded rather than blocking the caller — under overload the
// service degrades by rejecting, never by stalling.
//
// Execution is single-flight per factor: at most one goroutine runs
// batches for a batcher at a time (core.Solver.SolveBatch is not
// concurrency-safe on one solver), started on demand by the first
// enqueue and exiting when the queue drains, so an idle factor costs no
// goroutine.
type batcher struct {
	solver   solveBackend
	maxBatch int
	maxDelay time.Duration
	queueCap int
	m        *Metrics

	// fill carries a nudge from submit to the running cutter when the
	// queue reaches maxBatch, so a filling batch is cut without waiting
	// out the delay timer. Buffered: a stale nudge at worst cuts one
	// batch early, never blocks, never deadlocks.
	fill chan struct{}

	mu sync.Mutex
	//gesp:guardedby:mu
	queue []solveReq
	//gesp:guardedby:mu
	running bool
	//gesp:guardedby:mu
	closed bool
	// drained (a condition on mu) is broadcast when the cutter exits;
	// close waits on it until the queue has fully drained.
	drained sync.Cond

	// Cutter-private scratch, reused across cuts. The cutter is
	// single-flight (run exits before running flips false), so one set of
	// slots per batcher is race-free; steady-state cutting then allocates
	// nothing beyond what the backend itself needs.
	batchBuf []solveReq
	bsBuf    [][]float64
}

// solveBackend is what the batcher needs from core.Solver; an interface
// so batcher tests can fake pathological backends. The per-vector error
// slice (nil when all vectors succeeded) lets one poisoned right-hand
// side fail alone instead of taking its batch-mates down.
type solveBackend interface {
	SolveBatchCtx(ctx context.Context, bs [][]float64) ([][]float64, []error, error)
}

type solveReq struct {
	b    []float64
	enq  time.Time
	done chan solveDone
}

type solveDone struct {
	x   []float64
	err error
}

func newBatcher(solver solveBackend, maxBatch int, maxDelay time.Duration, queueCap int, m *Metrics) *batcher {
	b := &batcher{
		solver:   solver,
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		queueCap: queueCap,
		m:        m,
		fill:     make(chan struct{}, 1),
	}
	b.drained.L = &b.mu
	return b
}

// submit enqueues one right-hand side and blocks until its batch has
// been solved or ctx expires. It returns ErrOverloaded without blocking
// when the queue is full. On ctx expiry the caller stops waiting but the
// request stays queued and is still solved with its batch (the done
// channel is buffered, so the cutter never blocks on an abandoned
// waiter); the ladder's per-rung deadline is what bounds the solve work
// itself.
func (b *batcher) submit(ctx context.Context, rhs []float64) ([]float64, error) {
	req := solveReq{b: rhs, enq: time.Now(), done: make(chan solveDone, 1)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	if len(b.queue) >= b.queueCap {
		depth := len(b.queue)
		b.mu.Unlock()
		b.m.shed.Add(1)
		// RetryAfter is the admission heuristic: one more delay window is
		// roughly when the oldest queued batch will have been cut, freeing
		// queue slots. A router holding a replica should prefer it over
		// waiting this out.
		hint := b.maxDelay
		if hint <= 0 {
			hint = 100 * time.Microsecond
		}
		return nil, &OverloadedError{QueueDepth: depth, RetryAfter: hint}
	}
	b.queue = append(b.queue, req)
	depth := len(b.queue)
	start := !b.running
	if start {
		b.running = true
	}
	b.mu.Unlock()

	b.m.queueDepth.Add(1)
	if start {
		go b.run()
	} else if depth >= b.maxBatch {
		select {
		case b.fill <- struct{}{}:
		default:
		}
	}
	select {
	case d := <-req.done:
		return d.x, d.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// run is the cutter loop: cut a batch, solve it, repeat until the queue
// is empty, then exit.
func (b *batcher) run() {
	for {
		b.mu.Lock()
		if len(b.queue) == 0 {
			b.running = false
			b.drained.Broadcast()
			b.mu.Unlock()
			return
		}
		if len(b.queue) < b.maxBatch && !b.closed {
			// Not full: hold admission until the oldest request has
			// waited out maxDelay or the queue fills, then cut. A closed
			// batcher skips the wait — nothing further can arrive, so
			// drain at full speed.
			wait := b.maxDelay - time.Since(b.queue[0].enq)
			if wait > 0 {
				b.mu.Unlock()
				t := time.NewTimer(wait)
				select {
				case <-b.fill:
					t.Stop()
				case <-t.C:
				}
				b.mu.Lock()
			}
		}
		k := len(b.queue)
		if k > b.maxBatch {
			k = b.maxBatch
		}
		if cap(b.batchBuf) < k {
			b.batchBuf = make([]solveReq, b.maxBatch)
		}
		batch := b.batchBuf[:k]
		copy(batch, b.queue[:k])
		rest := copy(b.queue, b.queue[k:])
		for i := rest; i < len(b.queue); i++ {
			b.queue[i] = solveReq{} // release references held past the cut
		}
		b.queue = b.queue[:rest]
		b.mu.Unlock()

		b.m.queueDepth.Add(-int64(k))
		b.exec(batch)
		for i := range batch {
			batch[i] = solveReq{} // release references until the next cut
		}
	}
}

// close stops admission (later submits get ErrClosed) and blocks until
// the cutter has solved everything already queued and exited. Closing
// an idle or already-closed batcher returns immediately; queued
// requests are never abandoned — graceful drain, not abort.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	// Nudge a cutter parked in its delay window so the drain does not
	// wait out the admission timer.
	select {
	case b.fill <- struct{}{}:
	default:
	}
	for b.running {
		b.drained.Wait()
	}
	b.mu.Unlock()
}

// exec solves one batch and fans the results (or the shared error) back
// out to the waiting submitters.
func (b *batcher) exec(batch []solveReq) {
	if cap(b.bsBuf) < len(batch) {
		b.bsBuf = make([][]float64, b.maxBatch)
	}
	bs := b.bsBuf[:len(batch)]
	for i := range batch {
		bs[i] = batch[i].b
	}
	defer func() {
		for i := range bs {
			bs[i] = nil
		}
	}()
	t0 := time.Now()
	for i := range batch {
		b.m.observePhase(PhaseQueue, t0.Sub(batch[i].enq))
	}
	xs, errs, err := b.solver.SolveBatchCtx(context.Background(), bs)
	b.m.observePhase(PhaseSolve, time.Since(t0))
	b.m.observeBatch(len(batch))
	for i := range batch {
		switch {
		case err != nil:
			batch[i].done <- solveDone{err: err}
		case errs != nil && errs[i] != nil:
			batch[i].done <- solveDone{err: errs[i]}
		default:
			batch[i].done <- solveDone{x: xs[i]}
		}
	}
}
