package serve

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gesp/internal/matgen"
	"gesp/internal/sparse"
)

const testScale = 0.25

// system is one solvable test fixture: a matrix, a right-hand side with
// known solution 1, and that solution.
type system struct {
	a    *sparse.CSC
	b    []float64
	want []float64
}

func testbedSystem(t testing.TB, name string, valueSeed int64) system {
	t.Helper()
	m, ok := matgen.Lookup(name)
	if !ok {
		t.Fatalf("testbed matrix %s missing", name)
	}
	a := m.Generate(testScale)
	if valueSeed != 0 {
		rng := rand.New(rand.NewSource(valueSeed))
		for k := range a.Val {
			a.Val[k] *= 1 + 0.1*rng.NormFloat64()
		}
	}
	want := make([]float64, a.Rows)
	for i := range want {
		want[i] = 1
	}
	b := make([]float64, a.Rows)
	a.MatVec(b, want)
	return system{a: a, b: b, want: want}
}

func checkSolution(t *testing.T, x, want []float64) {
	t.Helper()
	if e := sparse.RelErrInf(x, want); e > 2e-3 {
		t.Fatalf("served solution error %g", e)
	}
}

func TestSubmitSolveRoundTrip(t *testing.T) {
	svc := New(DefaultConfig())
	defer svc.Close()
	sys := testbedSystem(t, "SHERMAN4", 0)
	h, err := svc.Submit(sys.a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := svc.Solve(h, sys.b)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, x, sys.want)

	st := svc.Stats()
	if st.Submits != 1 || st.SymbolicMisses != 1 || st.FactorMisses != 1 {
		t.Fatalf("first submission accounting off: %+v", st)
	}
	if st.Solves != 1 || st.Batches != 1 {
		t.Fatalf("solve accounting off: %+v", st)
	}
}

// TestPatternHitSkipsSymbolicWork is the acceptance-criterion test: a
// pattern-cache-hit submission must perform no MC64, no ordering and no
// symbolic analysis, proven by the core phase-run counters of the
// factorization it builds.
func TestPatternHitSkipsSymbolicWork(t *testing.T) {
	svc := New(DefaultConfig())
	defer svc.Close()
	first := testbedSystem(t, "GEMAT11", 0)
	twin := testbedSystem(t, "GEMAT11", 77) // same pattern, new values

	h1, err := svc.Submit(first.a)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := svc.Submit(twin.a)
	if err != nil {
		t.Fatal(err)
	}
	if h1.Key.Pattern != h2.Key.Pattern {
		t.Fatal("pattern twins got different pattern fingerprints")
	}
	if h1.Key == h2.Key {
		t.Fatal("different values collapsed to one factor key")
	}

	st := svc.Stats()
	if st.SymbolicMisses != 1 || st.SymbolicHits != 1 {
		t.Fatalf("symbolic cache: hits=%d misses=%d, want 1/1", st.SymbolicHits, st.SymbolicMisses)
	}
	if st.FactorMisses != 2 || st.FactorHits != 0 {
		t.Fatalf("factor cache: hits=%d misses=%d, want 0/2", st.FactorHits, st.FactorMisses)
	}

	// The decisive proof: the twin's factorization ran zero analysis
	// phases of its own.
	e := svc.c.lookupFactor(h2.Key)
	if e == nil {
		t.Fatal("twin factorization not cached")
	}
	cs := e.solver.Stats()
	if cs.EquilRuns != 0 || cs.RowPermRuns != 0 || cs.OrderRuns != 0 || cs.SymbolicRuns != 0 {
		t.Fatalf("pattern-hit factorization ran analysis phases: %+v", cs)
	}
	if cs.FactorRuns != 1 {
		t.Fatalf("pattern-hit factorization FactorRuns = %d, want 1", cs.FactorRuns)
	}

	// An identical resubmission is a pure factor hit: no work at all.
	if _, err := svc.Submit(twin.a); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.FactorHits != 1 {
		t.Fatalf("identical resubmission: factor hits = %d, want 1", st.FactorHits)
	}

	// And both systems still solve correctly.
	x1, err := svc.Solve(h1, first.b)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, x1, first.want)
	x2, err := svc.Solve(h2, twin.b)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, x2, twin.want)
}

func TestSolveUnknownHandle(t *testing.T) {
	svc := New(DefaultConfig())
	defer svc.Close()
	h := Handle{Key: FactorKey{Pattern: 1, Values: 2}, N: 4}
	if _, err := svc.Solve(h, make([]float64, 4)); !errors.Is(err, ErrHandleExpired) {
		t.Fatalf("got %v, want ErrHandleExpired", err)
	}
	if st := svc.Stats(); st.Expired != 1 {
		t.Fatalf("expired counter = %d, want 1", st.Expired)
	}
}

func TestClosedService(t *testing.T) {
	svc := New(DefaultConfig())
	sys := testbedSystem(t, "SHERMAN4", 0)
	h, err := svc.Submit(sys.a)
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if _, err := svc.Submit(sys.a); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v", err)
	}
	if _, err := svc.Solve(h, sys.b); !errors.Is(err, ErrClosed) {
		t.Fatalf("Solve after Close: %v", err)
	}
}

func TestServiceRejectsNonSquare(t *testing.T) {
	svc := New(DefaultConfig())
	defer svc.Close()
	tr := sparse.NewTriplet(2, 3)
	tr.Append(0, 0, 1)
	if _, err := svc.Submit(tr.ToCSC()); err == nil {
		t.Fatal("non-square matrix accepted")
	}
	sys := testbedSystem(t, "SHERMAN4", 0)
	h, err := svc.Submit(sys.a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Solve(h, make([]float64, 3)); err == nil {
		t.Fatal("wrong-length RHS accepted")
	}
}

func TestHandleStringRoundTrip(t *testing.T) {
	h := Handle{Key: FactorKey{Pattern: 0xdeadbeef01, Values: 0x42}, N: 1234}
	got, err := ParseHandle(h.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip %v -> %q -> %v", h, h.String(), got)
	}
	if _, err := ParseHandle("bogus"); err == nil {
		t.Fatal("malformed handle accepted")
	}
}

// TestConcurrentMixedLoad is the acceptance-criterion load test: 8+
// clients hammer the service with a mix of cache hits and misses —
// duplicate submissions (singleflight), pattern twins (symbolic reuse)
// and repeated solves (batching) — and every returned solution must be
// right. Run under -race via the Makefile race target.
func TestConcurrentMixedLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBatch = 4
	cfg.MaxDelay = 100 * time.Microsecond
	svc := New(cfg)
	defer svc.Close()

	// 2 patterns × 3 value variants = 6 distinct systems.
	var systems []system
	for _, name := range []string{"SHERMAN4", "GEMAT11"} {
		for _, seed := range []int64{0, 11, 23} {
			systems = append(systems, testbedSystem(t, name, seed))
		}
	}

	const clients = 8
	const solvesPerClient = 12
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			// Every client submits every system (mostly duplicate work:
			// singleflight and the caches absorb it), then solves.
			handles := make([]Handle, len(systems))
			for i := range systems {
				h, err := svc.Submit(systems[i].a)
				if err != nil {
					errc <- err
					return
				}
				handles[i] = h
			}
			for n := 0; n < solvesPerClient; n++ {
				i := rng.Intn(len(systems))
				x, err := svc.Solve(handles[i], systems[i].b)
				if err != nil {
					errc <- err
					return
				}
				if e := sparse.RelErrInf(x, systems[i].want); e > 2e-3 {
					t.Errorf("client %d solve %d: error %g", c, n, e)
					return
				}
				if n%5 == 0 {
					_ = svc.Stats() // exercise snapshotting under load
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := svc.Stats()
	if st.Solves != clients*solvesPerClient {
		t.Fatalf("solves = %d, want %d", st.Solves, clients*solvesPerClient)
	}
	// 6 distinct systems exist; every further submission must have been
	// absorbed as a hit or merged by singleflight, never re-analyzed:
	// 2 patterns were analyzed once each.
	if st.Phases[PhaseAnalyze.String()].Count != 2 {
		t.Fatalf("analyze phase ran %d times, want 2", st.Phases[PhaseAnalyze.String()].Count)
	}
	if got := st.Phases[PhaseFactor.String()].Count; got != 6 {
		t.Fatalf("factor phase ran %d times, want 6", got)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain, want 0", st.QueueDepth)
	}
	if st.LoadShed != 0 {
		t.Fatalf("unexpected load shedding: %d", st.LoadShed)
	}
}
