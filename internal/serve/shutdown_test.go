package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestBatcherCloseDrains blocks the cutter inside a batch, queues more
// work behind it, closes the batcher, and requires (a) close to block
// until every queued request has been solved, (b) queued requests to
// get real results, not aborts, and (c) a post-close submit to be
// rejected with ErrClosed.
func TestBatcherCloseDrains(t *testing.T) {
	var m Metrics
	fb := &fakeBackend{gate: make(chan struct{}), entered: make(chan struct{}, 8)}
	bat := newBatcher(fb, 2, time.Hour, 64, &m) // huge delay: drain must not wait it out

	results := make(chan error, 8)
	submit := func(tag float64) {
		_, err := bat.submit(context.Background(), []float64{tag})
		results <- err
	}
	// Two submits fill maxBatch, so the first cut happens immediately
	// instead of waiting out the (deliberately huge) delay window.
	const inflight = 2
	go submit(1)
	go submit(2)
	<-fb.entered // cutter blocked inside batch [1 2]
	const queued = 5
	for i := 0; i < queued; i++ {
		go submit(float64(3 + i))
	}
	for deadline := time.Now().Add(5 * time.Second); m.queueDepth.Load() < queued; {
		if time.Now().After(deadline) {
			t.Fatal("requests never queued")
		}
		time.Sleep(50 * time.Microsecond)
	}

	closed := make(chan struct{})
	go func() {
		bat.close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("close returned while the cutter was still blocked mid-batch")
	case <-time.After(20 * time.Millisecond):
	}

	fb.release()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("close never returned after the backend was released")
	}
	// Close has returned: every request (the in-flight batch and all
	// queued ones) must have been answered, not abandoned. (The result
	// is in each request's done channel by now; the submitter goroutines
	// just need a beat to forward it.)
	for i := 0; i < queued+inflight; i++ {
		select {
		case err := <-results:
			if err != nil {
				t.Fatalf("queued request aborted during close: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("close returned with %d request(s) still unresolved", queued+inflight-i)
		}
	}
	if m.queueDepth.Load() != 0 {
		t.Fatalf("queue depth %d after close", m.queueDepth.Load())
	}

	if _, err := bat.submit(context.Background(), []float64{9}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	bat.close() // idempotent
}

// TestServiceCloseDrains is the service-level shutdown test: concurrent
// solves race Close; Close must block until the cutter goroutines have
// drained, every request must end as a real solution or a clean
// ErrClosed, and nothing may be abandoned mid-queue.
func TestServiceCloseDrains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBatch = 4
	cfg.MaxDelay = 200 * time.Microsecond
	svc := New(cfg)
	sys := testbedSystem(t, "SHERMAN4", 0)
	h, err := svc.Submit(sys.a)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 16
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			x, err := svc.Solve(h, sys.b)
			if err == nil {
				checkSolution(t, x, sys.want)
			}
			errc <- err
		}()
	}
	close(start)
	svc.Close() // races the solves; must drain, not abort
	wg.Wait()
	close(errc)

	var solved, closed int
	for err := range errc {
		switch {
		case err == nil:
			solved++
		case errors.Is(err, ErrClosed):
			closed++
		default:
			t.Fatalf("solve during shutdown: %v", err)
		}
	}
	if solved+closed != clients {
		t.Fatalf("accounted for %d of %d requests", solved+closed, clients)
	}
	if d := svc.Stats().QueueDepth; d != 0 {
		t.Fatalf("queue depth %d after Close returned, want 0 (Close must drain)", d)
	}
	svc.Close() // idempotent
}

// TestOverloadedErrorTyped pins the typed overload rejection: it must
// match the ErrOverloaded sentinel through errors.Is AND surface the
// queue depth and a positive retry-after hint through errors.As — the
// payload a fleet router keys its shed-vs-retry decision on.
func TestOverloadedErrorTyped(t *testing.T) {
	const cap = 3
	var m Metrics
	fb := &fakeBackend{gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	bat := newBatcher(fb, 1, 0, cap, &m)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); bat.submit(context.Background(), []float64{0}) }()
	<-fb.entered
	for i := 0; i < cap; i++ {
		wg.Add(1)
		go func(tag float64) { defer wg.Done(); bat.submit(context.Background(), []float64{tag}) }(float64(i + 1))
	}
	for deadline := time.Now().Add(5 * time.Second); m.queueDepth.Load() < cap; {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(50 * time.Microsecond)
	}

	_, err := bat.submit(context.Background(), []float64{99})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("typed overload does not match sentinel: %v", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("overload rejection is not an *OverloadedError: %v", err)
	}
	if oe.QueueDepth != cap {
		t.Fatalf("QueueDepth = %d, want %d", oe.QueueDepth, cap)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want positive hint", oe.RetryAfter)
	}
	fb.release()
	wg.Wait()
}
