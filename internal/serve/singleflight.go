package serve

import "sync"

// flightGroup deduplicates concurrent work keyed by K: while one
// goroutine runs fn for a key, every other caller of Do with the same
// key blocks and receives the same result instead of repeating the work.
// The serving cache wraps factorization in one of these so a burst of
// identical submissions factors once — the classic singleflight
// discipline, reimplemented here because the module deliberately has no
// dependencies outside the standard library.
//
// Unlike a cache, a flightGroup retains nothing: once the originating
// call returns and all waiters are released, the key is forgotten.
type flightGroup[K comparable, V any] struct {
	mu sync.Mutex
	//gesp:guardedby:mu
	m map[K]*flightCall[V]
}

type flightCall[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

// Do runs fn once per concurrent set of callers with the same key and
// returns fn's result to all of them. shared reports whether the result
// came from another caller's execution.
func (g *flightGroup[K, V]) Do(key K, fn func() (V, error)) (v V, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[K]*flightCall[V])
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := new(flightCall[V])
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.val, c.err, false
}
