package equil

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gesp/internal/sparse"
)

func TestEquilibrateMakesMaxOne(t *testing.T) {
	a := sparse.FromDense([][]float64{
		{1e8, 2, 0},
		{3, 4e-6, 5},
		{0, 6, 7e3},
	})
	res, err := Equilibrate(a)
	if err != nil {
		t.Fatal(err)
	}
	res.Apply(a)
	// Every row and column maximum must be exactly (within roundoff) 1.
	d := a.Dense()
	for i := range d {
		rm := 0.0
		for j := range d[i] {
			if v := math.Abs(d[i][j]); v > rm {
				rm = v
			}
		}
		if math.Abs(rm-1) > 1e-12 {
			t.Errorf("row %d max = %g, want 1", i, rm)
		}
	}
	for j := 0; j < 3; j++ {
		cm := 0.0
		for i := range d {
			if v := math.Abs(d[i][j]); v > cm {
				cm = v
			}
		}
		if cm > 1+1e-12 {
			t.Errorf("column %d max = %g, want <= 1", j, cm)
		}
	}
	if res.AMax != 1e8 {
		t.Errorf("AMax = %g, want 1e8", res.AMax)
	}
	if !res.NeedsScaling() {
		t.Error("badly scaled matrix reported as not needing scaling")
	}
}

func TestEquilibrateWellScaled(t *testing.T) {
	a := sparse.FromDense([][]float64{
		{1, 0.5},
		{0.5, 1},
	})
	res, err := Equilibrate(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCond != 1 || res.ColCond != 1 {
		t.Errorf("RowCond=%g ColCond=%g, want 1", res.RowCond, res.ColCond)
	}
	if res.NeedsScaling() {
		t.Error("well-scaled matrix reported as needing scaling")
	}
}

func TestEquilibrateErrors(t *testing.T) {
	zeroRow := sparse.FromDense([][]float64{
		{1, 2},
		{0, 0},
	})
	if _, err := Equilibrate(zeroRow); err == nil {
		t.Error("zero row accepted")
	}
	zeroCol := sparse.FromDense([][]float64{
		{1, 0},
		{2, 0},
	})
	if _, err := Equilibrate(zeroCol); err == nil {
		t.Error("zero column accepted")
	}
	rect := sparse.NewTriplet(2, 3)
	rect.Append(0, 0, 1)
	if _, err := Equilibrate(rect.ToCSC()); err == nil {
		t.Error("rectangular matrix accepted")
	}
}

func TestEquilibrateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		tr := sparse.NewTriplet(n, n)
		for j := 0; j < n; j++ {
			// Full diagonal with wildly varying magnitudes.
			tr.Append(j, j, math.Pow(10, float64(rng.Intn(16)-8)))
			for r := 0; r < 2; r++ {
				i := rng.Intn(n)
				tr.Append(i, j, rng.NormFloat64()*math.Pow(10, float64(rng.Intn(10)-5)))
			}
		}
		a := tr.ToCSC()
		res, err := Equilibrate(a)
		if err != nil {
			return true // zero row/col can occur randomly; not a failure
		}
		res.Apply(a)
		// Property: all entries bounded by 1 + eps, every row max == 1.
		rowMax := make([]float64, n)
		for j := 0; j < n; j++ {
			for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
				v := math.Abs(a.Val[k])
				if v > 1+1e-9 {
					return false
				}
				if v > rowMax[a.RowInd[k]] {
					rowMax[a.RowInd[k]] = v
				}
			}
		}
		_ = rowMax
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
