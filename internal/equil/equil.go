// Package equil implements row/column equilibration of sparse matrices in
// the style of the LAPACK routine DGEEQU, step (1) of the GESP algorithm:
// diagonal scalings Dr and Dc are chosen so that every row and column of
// Dr*A*Dc has largest entry equal to 1 in magnitude.
package equil

import (
	"fmt"
	"math"

	"gesp/internal/sparse"
)

// Result holds the scalings computed by Equilibrate and the diagnostics
// DGEEQU reports.
type Result struct {
	// R and C are the row and column scale factors: apply as Dr*A*Dc with
	// Dr = diag(R), Dc = diag(C).
	R, C []float64
	// RowCond is min_i(rowmax_i) / max_i(rowmax_i) before scaling; values
	// near 1 mean row scaling is unnecessary.
	RowCond float64
	// ColCond is the analogous ratio for the columns of Dr*A.
	ColCond float64
	// AMax is the largest entry magnitude of the original matrix.
	AMax float64
}

// Equilibrate computes DGEEQU-style scale factors for a square sparse
// matrix. It fails if the matrix has an exactly zero row or column, since
// such a matrix is singular and no static pivoting can repair it.
func Equilibrate(a *sparse.CSC) (*Result, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("equil: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	rowMax := make([]float64, n)
	for k, i := range a.RowInd {
		if v := math.Abs(a.Val[k]); v > rowMax[i] {
			rowMax[i] = v
		}
	}
	res := &Result{R: make([]float64, n), C: make([]float64, n)}
	lo, hi := math.Inf(1), 0.0
	for i, m := range rowMax {
		if m == 0 {
			return nil, fmt.Errorf("equil: row %d is exactly zero", i)
		}
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
		res.R[i] = 1 / m
		if m > res.AMax {
			res.AMax = m
		}
	}
	if n > 0 {
		res.RowCond = lo / hi
	}
	colMax := make([]float64, n)
	for j := 0; j < n; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if v := math.Abs(a.Val[k]) * res.R[a.RowInd[k]]; v > colMax[j] {
				colMax[j] = v
			}
		}
	}
	lo, hi = math.Inf(1), 0.0
	for j, m := range colMax {
		if m == 0 {
			return nil, fmt.Errorf("equil: column %d is exactly zero", j)
		}
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
		res.C[j] = 1 / m
	}
	if n > 0 {
		res.ColCond = lo / hi
	}
	return res, nil
}

// Apply overwrites a with Dr*A*Dc using the scalings in res.
func (res *Result) Apply(a *sparse.CSC) {
	a.ScaleRowsCols(res.R, res.C)
}

// NeedsScaling reports whether either condition ratio is small enough that
// LAPACK heuristics (threshold 0.1) would recommend applying the scaling.
func (res *Result) NeedsScaling() bool {
	const thresh = 0.1
	return res.RowCond < thresh || res.ColCond < thresh
}
