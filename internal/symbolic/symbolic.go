// Package symbolic performs the static symbolic LU factorization at the
// heart of GESP: because step (3) of the algorithm never pivots, the
// nonzero patterns of L and U, the supernode partition, the elimination
// structures and the entire communication pattern of the distributed
// algorithm can be computed once, before any numeric work.
//
// The fill pattern is computed column by column as the reachable set of
// the column's nonzeros through the directed graph of the already-known L
// columns (Gilbert–Peierls reachability), accelerated with Eisenstat–Liu
// symmetric pruning.
package symbolic

import (
	"fmt"
	"sort"

	"gesp/internal/check"
	"gesp/internal/sparse"
)

// Options tune the symbolic analysis.
type Options struct {
	// MaxSuper caps the number of columns in a supernode. The paper found
	// 20–30 best on the T3E and used 24; 0 means DefaultMaxSuper.
	MaxSuper int
	// Relax allows amalgamating a supernode of up to Relax columns whose
	// patterns are merely nested rather than identical (relaxed supernodes
	// for better block granularity). 0 disables relaxation.
	Relax int
}

// DefaultMaxSuper is the paper's block-size choice.
const DefaultMaxSuper = 24

// Result is the static elimination structure of a matrix.
type Result struct {
	N int
	// LPtr/LInd hold the strictly-lower pattern of each column of L,
	// sorted ascending. L has an implied unit diagonal.
	LPtr, LInd []int
	// UPtr/UInd hold the upper pattern of each column of U including the
	// diagonal, sorted ascending (the diagonal is the last entry).
	UPtr, UInd []int
	// Parent is the column elimination forest: Parent[j] is the first
	// strictly-lower row index of L(:,j), or -1 for a root.
	Parent []int
	// SupPtr gives the supernode partition: supernode s spans columns
	// SupPtr[s] .. SupPtr[s+1]-1. SupOf maps a column to its supernode.
	SupPtr []int
	SupOf  []int
	// Flops counts the multiply-add and divide operations of the numeric
	// factorization that this structure implies.
	Flops int64
	// URowCount caches the strictly-upper entries per U row; computed
	// lazily by consumers that sweep trailing blocks (dense-tail switch).
	URowCount []int
}

// NnzL reports the number of stored strictly-lower entries of L.
func (r *Result) NnzL() int { return r.LPtr[r.N] }

// NnzU reports the number of stored entries of U including the diagonal.
func (r *Result) NnzU() int { return r.UPtr[r.N] }

// FillLU reports nnz(L+U) counting the unit diagonal of L once, the
// quantity plotted in the paper's Figure 2.
func (r *Result) FillLU() int { return r.NnzL() + r.NnzU() }

// NumSupernodes reports the number of supernodes in the partition.
func (r *Result) NumSupernodes() int { return len(r.SupPtr) - 1 }

// AvgSupernode reports the average supernode width in columns (TWOTONE's
// pathology in the paper is an average of 2.4).
func (r *Result) AvgSupernode() float64 {
	if r.NumSupernodes() == 0 {
		return 0
	}
	return float64(r.N) / float64(r.NumSupernodes())
}

// Factorize computes the static fill pattern of the (already permuted and
// scaled) matrix a, assuming the diagonal pivot order. The diagonal is
// treated as structurally nonzero even when absent from a, matching GESP's
// tiny-pivot replacement which guarantees a usable pivot.
func Factorize(a *sparse.CSC, opts Options) (*Result, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("symbolic: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	if check.Enabled {
		check.Must(a.Check())
	}
	maxSuper := opts.MaxSuper
	if maxSuper <= 0 {
		maxSuper = DefaultMaxSuper
	}

	res := &Result{
		N:      n,
		LPtr:   make([]int, n+1),
		UPtr:   make([]int, n+1),
		Parent: make([]int, n),
	}
	// The fill patterns grow monotonically to several times nnz(A);
	// seeding the slabs at 2×nnz skips the worst of the early doubling
	// copies (growslice was visible in the analysis profile).
	if nnz := len(a.RowInd); nnz > 0 {
		res.LInd = make([]int, 0, 2*nnz)
		res.UInd = make([]int, 0, 2*nnz+n)
	}
	// prunedLen[k]: prefix of L(:,k) that reachability must traverse; the
	// suffix is provably reachable through earlier rows (symmetric pruning).
	prunedLen := make([]int, n)
	pruned := make([]bool, n)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	stack := make([]int, 0, 64)
	frame := make([]int, 0, 64) // adjacency cursor per stack level
	lset := make([]int, 0, 64)
	uset := make([]int, 0, 64)

	for j := 0; j < n; j++ {
		lset, uset = lset[:0], uset[:0]
		mark[j] = j // the diagonal is always structural
		// DFS from every nonzero of A(:,j).
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			root := a.RowInd[k]
			if mark[root] == j {
				continue
			}
			mark[root] = j
			if root >= j {
				lset = append(lset, root)
				continue
			}
			uset = append(uset, root)
			// Iterative DFS through columns < j.
			stack = append(stack[:0], root)
			frame = append(frame[:0], res.LPtr[root])
			for len(stack) > 0 {
				top := len(stack) - 1
				col := stack[top]
				cur := frame[top]
				end := res.LPtr[col] + prunedLen[col]
				advanced := false
				for ; cur < end; cur++ {
					i := res.LInd[cur]
					if mark[i] == j {
						continue
					}
					mark[i] = j
					if i >= j {
						lset = append(lset, i)
						continue
					}
					uset = append(uset, i)
					frame[top] = cur + 1
					stack = append(stack, i)
					frame = append(frame, res.LPtr[i])
					advanced = true
					break
				}
				if !advanced {
					stack = stack[:top]
					frame = frame[:top]
				}
			}
		}
		sort.Ints(lset)
		sort.Ints(uset)
		// Store column j: strictly-lower rows of L exclude the diagonal.
		for _, i := range lset {
			if i > j {
				res.LInd = append(res.LInd, i)
			}
		}
		res.LPtr[j+1] = len(res.LInd)
		res.UInd = append(res.UInd, uset...)
		res.UInd = append(res.UInd, j) // diagonal pivot lives in U
		res.UPtr[j+1] = len(res.UInd)
		prunedLen[j] = res.LPtr[j+1] - res.LPtr[j]

		if res.LPtr[j+1] > res.LPtr[j] {
			res.Parent[j] = res.LInd[res.LPtr[j]]
		} else {
			res.Parent[j] = -1
		}

		// Symmetric pruning: for each k with U(k,j) != 0, if L(j,k) != 0
		// then paths through rows of L(:,k) beyond j are covered via j.
		for _, k := range uset {
			if pruned[k] {
				continue
			}
			lo, hi := res.LPtr[k], res.LPtr[k]+prunedLen[k]
			seg := res.LInd[lo:hi]
			idx := sort.SearchInts(seg, j)
			if idx < len(seg) && seg[idx] == j {
				prunedLen[k] = idx + 1
				pruned[k] = true
			}
		}
	}

	res.buildSupernodes(maxSuper, opts.Relax)
	res.countFlops()
	if check.Enabled {
		check.Must(res.Check())
	}
	return res, nil
}

// buildSupernodes detects T2 supernodes (identical strictly-lower
// structure after dropping the leading row) and splits runs longer than
// maxSuper so block granularity stays suitable for parallel distribution.
func (r *Result) buildSupernodes(maxSuper, relax int) {
	n := r.N
	r.SupOf = make([]int, n)
	r.SupPtr = r.SupPtr[:0]
	if n == 0 {
		r.SupPtr = append(r.SupPtr, 0)
		return
	}
	r.SupPtr = append(r.SupPtr, 0)
	start := 0
	for j := 1; j < n; j++ {
		if j-start >= maxSuper || !r.sameSupernode(j-1, j, relax) {
			r.SupPtr = append(r.SupPtr, j)
			start = j
		}
	}
	r.SupPtr = append(r.SupPtr, n)
	for s := 0; s+1 < len(r.SupPtr); s++ {
		for j := r.SupPtr[s]; j < r.SupPtr[s+1]; j++ {
			r.SupOf[j] = s
		}
	}
}

// sameSupernode reports whether column j extends the supernode ending at
// column j-1: L(:,j) must equal L(:,j-1) minus row j (dense diagonal
// block, identical structure below). With relaxation, up to relax rows of
// slack are tolerated provided L(:,j) ⊆ L(:,j-1)\{j}.
func (r *Result) sameSupernode(jm1, j, relax int) bool {
	lo1, hi1 := r.LPtr[jm1], r.LPtr[jm1+1]
	lo2, hi2 := r.LPtr[j], r.LPtr[j+1]
	// Row j must head the previous column (dense diagonal block).
	if hi1 == lo1 || r.LInd[lo1] != j {
		return false
	}
	n1 := hi1 - lo1 - 1 // previous column minus its leading row j
	n2 := hi2 - lo2
	if n2 > n1 || n1-n2 > relax {
		return false
	}
	if n1 == n2 {
		for k := 0; k < n2; k++ {
			if r.LInd[lo2+k] != r.LInd[lo1+1+k] {
				return false
			}
		}
		return true
	}
	// Relaxed: subset check over sorted slices.
	p := lo1 + 1
	for k := lo2; k < hi2; k++ {
		for p < hi1 && r.LInd[p] < r.LInd[k] {
			p++
		}
		if p == hi1 || r.LInd[p] != r.LInd[k] {
			return false
		}
		p++
	}
	return true
}

// countFlops tallies the floating-point operations of the numeric
// factorization: for each pivot column k, one division per strictly-lower
// entry and a multiply-add pair per (L(i,k), U(k,j)) product.
func (r *Result) countFlops() {
	n := r.N
	urow := make([]int64, n) // off-diagonal entries in row k of U
	for j := 0; j < n; j++ {
		for p := r.UPtr[j]; p < r.UPtr[j+1]; p++ {
			if k := r.UInd[p]; k != j {
				urow[k]++
			}
		}
	}
	var flops int64
	for k := 0; k < n; k++ {
		lcnt := int64(r.LPtr[k+1] - r.LPtr[k])
		flops += lcnt               // divisions
		flops += 2 * lcnt * urow[k] // outer-product multiply-adds
	}
	r.Flops = flops
}

// SupEtree returns the supernodal elimination forest: the parent of
// supernode s is the supernode containing the parent column of s's last
// column (its first strictly-lower L row), or -1 for a root. Because a
// supernode's off-diagonal pattern lies strictly below it, parents are
// always numbered after their children, so a single ascending sweep is
// a topological order. The schedulers use this DAG skeleton to
// prioritize deep subtrees (the critical path of the factorization).
func (r *Result) SupEtree() []int {
	ns := r.NumSupernodes()
	parent := make([]int, ns)
	for s := 0; s < ns; s++ {
		last := r.SupPtr[s+1] - 1
		if p := r.Parent[last]; p >= 0 {
			parent[s] = r.SupOf[p]
		} else {
			parent[s] = -1
		}
	}
	return parent
}

// SupHeights returns, for each supernode, its height in the supernodal
// elimination forest (longest path to a leaf below it): the static
// critical-path priority used to seed parallel schedules.
func (r *Result) SupHeights() []int {
	parent := r.SupEtree()
	h := make([]int, len(parent))
	for s := 0; s < len(parent); s++ {
		if p := parent[s]; p >= 0 && h[p] < h[s]+1 {
			h[p] = h[s] + 1
		}
	}
	return h
}

// LColRows returns the strictly-lower row pattern of L(:,j).
func (r *Result) LColRows(j int) []int { return r.LInd[r.LPtr[j]:r.LPtr[j+1]] }

// UColRows returns the row pattern of U(:,j) including the diagonal.
func (r *Result) UColRows(j int) []int { return r.UInd[r.UPtr[j]:r.UPtr[j+1]] }
