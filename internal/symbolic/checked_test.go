//go:build gespcheck

package symbolic_test

import (
	"strings"
	"testing"

	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

func tridiag(n int) *sparse.CSC {
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		d[i][i] = 2
		if i > 0 {
			d[i][i-1] = -1
			d[i-1][i] = -1
		}
	}
	return sparse.FromDense(d)
}

// TestCheckedCatchesCorruptInput proves the gespcheck wiring at the
// symbolic phase boundary: Factorize re-validates its input matrix.
func TestCheckedCatchesCorruptInput(t *testing.T) {
	a := tridiag(8)
	a.RowInd[1], a.RowInd[2] = a.RowInd[2], a.RowInd[1]
	defer func() {
		r := recover()
		msg, ok := r.(string)
		if !ok || !strings.HasPrefix(msg, "gespcheck:") {
			t.Fatalf("panic = %v, want gespcheck message", r)
		}
	}()
	_, _ = symbolic.Factorize(a, symbolic.Options{})
}

// TestResultCheckDetectsCorruption corrupts each invariant family of a
// valid symbolic result and asserts Check rejects it.
func TestResultCheckDetectsCorruption(t *testing.T) {
	fresh := func() *symbolic.Result {
		sym, err := symbolic.Factorize(tridiag(8), symbolic.Options{MaxSuper: 2})
		if err != nil {
			t.Fatal(err)
		}
		return sym
	}
	if err := fresh().Check(); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}

	sym := fresh()
	sym.SupOf[1] = sym.SupOf[1] + 1 // partition/map disagreement
	if err := sym.Check(); err == nil {
		t.Error("corrupt SupOf accepted")
	}

	sym = fresh()
	sym.Parent[0] = 5 // etree no longer matches the L pattern
	if err := sym.Check(); err == nil {
		t.Error("corrupt Parent accepted")
	}

	sym = fresh()
	if sym.NnzL() > 0 {
		sym.LInd[0] = 0 // row not strictly below the diagonal
		if err := sym.Check(); err == nil {
			t.Error("corrupt L pattern accepted")
		}
	}
}
