package symbolic

import (
	"fmt"

	"gesp/internal/check"
)

// Check validates the structural invariants of a symbolic result: the
// L/U pattern arrays, the column elimination forest, and the supernode
// partition with its induced supernodal etree. Everything downstream —
// the numeric kernels, the block structure, the task DAG, the
// distributed communication pattern — is derived from these arrays, so
// a corruption here surfaces later as a wrong answer or a schedule
// hazard; the gespcheck build calls this at the end of Factorize to
// catch it at the source.
func (r *Result) Check() error {
	n := r.N
	if err := check.Partition("symbolic: LPtr", r.LPtr, len(r.LInd)); err != nil {
		return err
	}
	if err := check.Partition("symbolic: UPtr", r.UPtr, len(r.UInd)); err != nil {
		return err
	}
	if len(r.LPtr) != n+1 || len(r.UPtr) != n+1 || len(r.Parent) != n {
		return fmt.Errorf("symbolic: array lengths inconsistent with N=%d", n)
	}
	for j := 0; j < n; j++ {
		lcol := r.LInd[r.LPtr[j]:r.LPtr[j+1]]
		if err := check.StrictlyIncreasingInBounds(
			fmt.Sprintf("symbolic: L(:,%d)", j), lcol, j+1, n); err != nil {
			return err
		}
		ucol := r.UInd[r.UPtr[j]:r.UPtr[j+1]]
		if len(ucol) == 0 || ucol[len(ucol)-1] != j {
			return fmt.Errorf("symbolic: U(:,%d) missing its diagonal as last entry", j)
		}
		if err := check.StrictlyIncreasingInBounds(
			fmt.Sprintf("symbolic: U(:,%d)", j), ucol, 0, j+1); err != nil {
			return err
		}
		// Etree consistency: the parent of j is the first strictly-lower
		// row of L(:,j), which also guarantees Parent[j] > j.
		want := -1
		if len(lcol) > 0 {
			want = lcol[0]
		}
		if r.Parent[j] != want {
			return fmt.Errorf("symbolic: Parent[%d] = %d, want %d (first L row)", j, r.Parent[j], want)
		}
	}
	// Supernode partition: contiguous, covering, and mutually consistent
	// with the column-to-supernode map.
	if err := check.Partition("symbolic: SupPtr", r.SupPtr, n); err != nil {
		return err
	}
	if len(r.SupOf) != n {
		return fmt.Errorf("symbolic: SupOf length %d, want %d", len(r.SupOf), n)
	}
	for s := 0; s < r.NumSupernodes(); s++ {
		if r.SupPtr[s] >= r.SupPtr[s+1] {
			return fmt.Errorf("symbolic: supernode %d is empty", s)
		}
		for j := r.SupPtr[s]; j < r.SupPtr[s+1]; j++ {
			if r.SupOf[j] != s {
				return fmt.Errorf("symbolic: SupOf[%d] = %d, want %d", j, r.SupOf[j], s)
			}
		}
	}
	// The supernodal etree must be a forest with parents numbered after
	// children (the property the schedulers' topological sweeps rely on).
	for s, p := range r.SupEtree() {
		if p != -1 && (p <= s || p >= r.NumSupernodes()) {
			return fmt.Errorf("symbolic: supernode etree parent of %d is %d, not in (%d,%d)", s, p, s, r.NumSupernodes())
		}
	}
	return nil
}
