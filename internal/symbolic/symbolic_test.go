package symbolic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gesp/internal/sparse"
)

// denseSymbolicLU simulates no-pivot elimination on a boolean dense
// pattern, the ground truth for fill.
func denseSymbolicLU(a *sparse.CSC) [][]bool {
	n := a.Rows
	f := make([][]bool, n)
	for i := range f {
		f[i] = make([]bool, n)
		f[i][i] = true // diagonal structural (tiny-pivot replacement)
	}
	for j := 0; j < n; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			f[a.RowInd[k]][j] = true
		}
	}
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			if !f[i][k] {
				continue
			}
			for j := k + 1; j < n; j++ {
				if f[k][j] {
					f[i][j] = true
				}
			}
		}
	}
	return f
}

func randomSquare(rng *rand.Rand, n int, density float64) *sparse.CSC {
	t := sparse.NewTriplet(n, n)
	for j := 0; j < n; j++ {
		t.Append(j, j, 1+rng.Float64())
		for i := 0; i < n; i++ {
			if i != j && rng.Float64() < density {
				t.Append(i, j, rng.NormFloat64())
			}
		}
	}
	return t.ToCSC()
}

func patternsMatch(t *testing.T, a *sparse.CSC, r *Result) {
	t.Helper()
	n := a.Rows
	want := denseSymbolicLU(a)
	got := make([][]bool, n)
	for i := range got {
		got[i] = make([]bool, n)
	}
	for j := 0; j < n; j++ {
		for _, i := range r.LColRows(j) {
			if i <= j {
				t.Fatalf("L(:,%d) contains non-strict row %d", j, i)
			}
			got[i][j] = true
		}
		rows := r.UColRows(j)
		if len(rows) == 0 || rows[len(rows)-1] != j {
			t.Fatalf("U(:,%d) does not end with the diagonal: %v", j, rows)
		}
		for _, i := range rows {
			if i > j {
				t.Fatalf("U(:,%d) contains lower row %d", j, i)
			}
			got[i][j] = true
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if want[i][j] != got[i][j] {
				t.Fatalf("fill mismatch at (%d,%d): dense=%v symbolic=%v", i, j, want[i][j], got[i][j])
			}
		}
	}
}

func TestFactorizeMatchesDenseSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(30)
		a := randomSquare(rng, n, 0.08+rng.Float64()*0.25)
		r, err := Factorize(a, Options{})
		if err != nil {
			t.Fatal(err)
		}
		patternsMatch(t, a, r)
	}
}

func TestFactorizeTridiagonalNoFill(t *testing.T) {
	n := 40
	tr := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr.Append(i, i, 2)
		if i+1 < n {
			tr.Append(i+1, i, -1)
			tr.Append(i, i+1, -1)
		}
	}
	a := tr.ToCSC()
	r, err := Factorize(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.NnzL() != n-1 {
		t.Errorf("nnz(L) = %d, want %d (no fill)", r.NnzL(), n-1)
	}
	if r.NnzU() != 2*n-1 {
		t.Errorf("nnz(U) = %d, want %d (no fill)", r.NnzU(), 2*n-1)
	}
	for j := 0; j+1 < n; j++ {
		if r.Parent[j] != j+1 {
			t.Errorf("Parent[%d] = %d, want %d", j, r.Parent[j], j+1)
		}
	}
	if r.Parent[n-1] != -1 {
		t.Errorf("Parent of last column = %d, want -1", r.Parent[n-1])
	}
}

func TestFactorizeDenseSupernode(t *testing.T) {
	n := 10
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = 1
		}
	}
	a := sparse.FromDense(d)
	r, err := Factorize(a, Options{MaxSuper: 100})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumSupernodes() != 1 {
		t.Errorf("dense matrix has %d supernodes, want 1", r.NumSupernodes())
	}
	r2, err := Factorize(a, Options{MaxSuper: 4})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < r2.NumSupernodes(); s++ {
		if w := r2.SupPtr[s+1] - r2.SupPtr[s]; w > 4 {
			t.Errorf("supernode %d width %d exceeds MaxSuper 4", s, w)
		}
	}
	// Dense LU flops: sum_k [(n-1-k) + 2(n-1-k)^2].
	var want int64
	for k := 0; k < n; k++ {
		m := int64(n - 1 - k)
		want += m + 2*m*m
	}
	if r.Flops != want {
		t.Errorf("dense flops = %d, want %d", r.Flops, want)
	}
}

func TestFactorizeArrowMatrix(t *testing.T) {
	// Arrow pointing up-left (dense first row and column): full fill.
	n := 12
	tr := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr.Append(i, i, 4)
		if i > 0 {
			tr.Append(i, 0, 1)
			tr.Append(0, i, 1)
		}
	}
	bad, err := Factorize(tr.ToCSC(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Arrow pointing down-right (dense last row/column): zero fill.
	tr2 := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr2.Append(i, i, 4)
		if i < n-1 {
			tr2.Append(i, n-1, 1)
			tr2.Append(n-1, i, 1)
		}
	}
	good, err := Factorize(tr2.ToCSC(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if good.FillLU() >= bad.FillLU() {
		t.Errorf("down-right arrow fill %d should be far below up-left arrow fill %d", good.FillLU(), bad.FillLU())
	}
	if wantL := n - 1; good.NnzL() != wantL {
		t.Errorf("down-right arrow nnz(L) = %d, want %d", good.NnzL(), wantL)
	}
}

func TestSupernodeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		a := randomSquare(rng, n, 0.15)
		r, err := Factorize(a, Options{MaxSuper: 1 + rng.Intn(8)})
		if err != nil {
			return false
		}
		// Partition covers [0,n) monotonically.
		if r.SupPtr[0] != 0 || r.SupPtr[len(r.SupPtr)-1] != n {
			return false
		}
		for s := 0; s+1 < len(r.SupPtr); s++ {
			if r.SupPtr[s] >= r.SupPtr[s+1] {
				return false
			}
			for j := r.SupPtr[s]; j < r.SupPtr[s+1]; j++ {
				if r.SupOf[j] != s {
					return false
				}
			}
			// Dense diagonal block: every column in the supernode reaches
			// all later columns of the supernode in its L pattern.
			for j := r.SupPtr[s]; j < r.SupPtr[s+1]-1; j++ {
				rows := r.LColRows(j)
				need := r.SupPtr[s+1] - j - 1
				if len(rows) < need {
					return false
				}
				for k := 0; k < need; k++ {
					if rows[k] != j+1+k {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFactorizeMissingDiagonal(t *testing.T) {
	// Structurally zero diagonal entries must still appear in U (they hold
	// the replaced tiny pivots).
	tr := sparse.NewTriplet(3, 3)
	tr.Append(1, 0, 1)
	tr.Append(0, 1, 1)
	tr.Append(2, 2, 1)
	r, err := Factorize(tr.ToCSC(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		rows := r.UColRows(j)
		if rows[len(rows)-1] != j {
			t.Errorf("column %d: diagonal missing from U", j)
		}
	}
}

func TestFactorizeRejectsRectangular(t *testing.T) {
	tr := sparse.NewTriplet(2, 3)
	tr.Append(0, 0, 1)
	if _, err := Factorize(tr.ToCSC(), Options{}); err == nil {
		t.Error("rectangular matrix accepted")
	}
}

func TestAvgSupernode(t *testing.T) {
	n := 30
	tr := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr.Append(i, i, 1)
	}
	r, err := Factorize(tr.ToCSC(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal matrix: every column is its own trivial supernode except
	// merged empty-pattern runs; width average must be between 1 and MaxSuper.
	if avg := r.AvgSupernode(); avg < 1 || avg > DefaultMaxSuper {
		t.Errorf("AvgSupernode = %g out of [1,%d]", avg, DefaultMaxSuper)
	}
}

func TestRelaxedSupernodesStillFactorCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := randomSquare(rng, 80, 0.06)
	strict, err := Factorize(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := Factorize(a, Options{Relax: 4})
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.NumSupernodes() > strict.NumSupernodes() {
		t.Errorf("relaxation increased supernode count: %d > %d",
			relaxed.NumSupernodes(), strict.NumSupernodes())
	}
	// The fill pattern itself is unchanged by relaxation (it only regroups
	// columns into supernodes).
	if relaxed.NnzL() != strict.NnzL() || relaxed.NnzU() != strict.NnzU() {
		t.Error("relaxation changed the fill pattern")
	}
	// Diagonal-block density must hold for relaxed supernodes too: every
	// column reaches all later columns of its supernode.
	for s := 0; s < relaxed.NumSupernodes(); s++ {
		for j := relaxed.SupPtr[s]; j < relaxed.SupPtr[s+1]-1; j++ {
			rows := relaxed.LColRows(j)
			need := relaxed.SupPtr[s+1] - j - 1
			for k := 0; k < need; k++ {
				if k >= len(rows) || rows[k] != j+1+k {
					t.Fatalf("supernode %d column %d: diagonal block not dense", s, j)
				}
			}
		}
	}
	t.Logf("supernodes: strict=%d relaxed=%d", strict.NumSupernodes(), relaxed.NumSupernodes())
}
