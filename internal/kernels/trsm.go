package kernels

// Panel-solve and dense-elimination kernels of the supernodal engines.
// The diagonal operand d is a factored diagonal block (unit-lower L and
// upper U packed together) of leading dimension ldd; the panel b is
// packed column-major nr×nc. As everywhere in this package, the scalar
// variants are the exact pre-campaign loops and the blocked variants
// preserve each element's operation sequence.

// TrsmUpperRight overwrites b with b·U⁻¹ where the upper triangle of d
// (order nc, leading dimension ldd) holds U: the L-panel solve
// L(I,K) = A(I,K)·U(K,K)⁻¹.
//
//gesp:hotpath
func TrsmUpperRight(b []float64, nr, nc int, d []float64, ldd int) {
	if nr == 0 || nc == 0 {
		return
	}
	if blocked() {
		trsmUpperRightBlocked(b, nr, nc, d, ldd)
		return
	}
	TrsmUpperRightScalar(b, nr, nc, d, ldd)
}

// TrsmUpperRightScalar is the scalar reference (one prior column
// applied at a time, zero U entries skipped).
//
//gesp:hotpath
func TrsmUpperRightScalar(b []float64, nr, nc int, d []float64, ldd int) {
	for k := 0; k < nc; k++ {
		// b(:,k) = (b(:,k) - Σ_{m<k} b(:,m)·U(m,k)) / U(k,k)
		colK := b[k*nr : (k+1)*nr]
		for m := 0; m < k; m++ {
			umk := d[k*ldd+m]
			if umk == 0 {
				continue
			}
			colM := b[m*nr : (m+1)*nr]
			for i := range colK {
				colK[i] -= colM[i] * umk
			}
		}
		ukk := d[k*ldd+k]
		for i := range colK {
			colK[i] /= ukk
		}
	}
}

// trsmUpperRightBlocked applies four prior columns per sweep of the
// target column, keeping the running element in a register across the
// four multiply-subtracts (same ascending-m operation order per
// element, a quarter of the loads and stores).
//
//gesp:hotpath
func trsmUpperRightBlocked(b []float64, nr, nc int, d []float64, ldd int) {
	for k := 0; k < nc; k++ {
		colK := b[k*nr : (k+1)*nr]
		dk := d[k*ldd:]
		m := 0
		for ; m+4 <= k; m += 4 {
			u0, u1, u2, u3 := dk[m], dk[m+1], dk[m+2], dk[m+3]
			if u0 == 0 && u1 == 0 && u2 == 0 && u3 == 0 {
				continue
			}
			c0 := b[(m+0)*nr : (m+1)*nr]
			c1 := b[(m+1)*nr : (m+2)*nr]
			c2 := b[(m+2)*nr : (m+3)*nr]
			c3 := b[(m+3)*nr : (m+4)*nr]
			for i := range colK {
				t := colK[i]
				t -= c0[i] * u0
				t -= c1[i] * u1
				t -= c2[i] * u2
				t -= c3[i] * u3
				colK[i] = t
			}
		}
		for ; m < k; m++ {
			umk := dk[m]
			if umk == 0 {
				continue
			}
			colM := b[m*nr : (m+1)*nr]
			for i := range colK {
				colK[i] -= colM[i] * umk
			}
		}
		ukk := dk[k]
		for i := range colK {
			colK[i] /= ukk
		}
	}
}

// TrsmLowerUnitLeft overwrites b with L⁻¹·b where the unit-lower
// triangle of d (order nr, leading dimension ldd) holds L: the U-panel
// solve U(K,J) = L(K,K)⁻¹·A(K,J).
//
//gesp:hotpath
func TrsmLowerUnitLeft(b []float64, nr, nc int, d []float64, ldd int) {
	if nr == 0 || nc == 0 {
		return
	}
	if blocked() {
		trsmLowerUnitLeftBlocked(b, nr, nc, d, ldd)
		return
	}
	TrsmLowerUnitLeftScalar(b, nr, nc, d, ldd)
}

// TrsmLowerUnitLeftScalar is the scalar reference (column at a time,
// zero multipliers skipped).
//
//gesp:hotpath
func TrsmLowerUnitLeftScalar(b []float64, nr, nc int, d []float64, ldd int) {
	for c := 0; c < nc; c++ {
		col := b[c*nr : (c+1)*nr]
		for k := 0; k < nr; k++ {
			xk := col[k]
			if xk == 0 {
				continue
			}
			// col[i] -= L(i,k)·col[k] for i > k.
			for i := k + 1; i < nr; i++ {
				col[i] -= d[k*ldd+i] * xk
			}
		}
	}
}

// trsmLowerUnitLeftBlocked solves four right-hand-side columns
// together, loading each L column of the diagonal block once for all
// four. Columns are independent, so fusing them preserves every
// element's operation sequence; a panel of four all-zero multipliers is
// skipped exactly as the scalar loop would skip each.
//
//gesp:hotpath
func trsmLowerUnitLeftBlocked(b []float64, nr, nc int, d []float64, ldd int) {
	c := 0
	for ; c+4 <= nc; c += 4 {
		c0 := b[(c+0)*nr : (c+1)*nr]
		c1 := b[(c+1)*nr : (c+2)*nr]
		c2 := b[(c+2)*nr : (c+3)*nr]
		c3 := b[(c+3)*nr : (c+4)*nr]
		for k := 0; k < nr; k++ {
			x0, x1, x2, x3 := c0[k], c1[k], c2[k], c3[k]
			if x0 == 0 && x1 == 0 && x2 == 0 && x3 == 0 {
				continue
			}
			dk := d[k*ldd:]
			for i := k + 1; i < nr; i++ {
				dv := dk[i]
				c0[i] -= dv * x0
				c1[i] -= dv * x1
				c2[i] -= dv * x2
				c3[i] -= dv * x3
			}
		}
	}
	for ; c < nc; c++ {
		col := b[c*nr : (c+1)*nr]
		for k := 0; k < nr; k++ {
			xk := col[k]
			if xk == 0 {
				continue
			}
			dk := d[k*ldd:]
			for i := k + 1; i < nr; i++ {
				col[i] -= dk[i] * xk
			}
		}
	}
}

// Rank1Trailing applies elimination step k's rank-1 update to the
// trailing submatrix of the dense diagonal block v (order n, packed):
// v(i,j) -= L(i,k)·U(k,j) for i,j > k, where column k already holds the
// scaled multipliers. The diagonal-block factorization (FactorDiag)
// calls it once per pivot.
//
//gesp:hotpath
func Rank1Trailing(v []float64, n, k int) {
	if blocked() {
		rank1TrailingBlocked(v, n, k)
		return
	}
	Rank1TrailingScalar(v, n, k)
}

// Rank1TrailingScalar is the scalar reference (one trailing column at a
// time, zero U(k,j) skipped).
//
//gesp:hotpath
func Rank1TrailingScalar(v []float64, n, k int) {
	for j := k + 1; j < n; j++ {
		lkj := v[j*n+k] // U(k,j)
		if lkj == 0 {
			continue
		}
		for i := k + 1; i < n; i++ {
			v[j*n+i] -= v[k*n+i] * lkj
		}
	}
}

// rank1TrailingBlocked updates four trailing columns per sweep, loading
// the multiplier column once for all four. Trailing columns are
// independent, so each element's single multiply-subtract is unchanged.
//
//gesp:hotpath
func rank1TrailingBlocked(v []float64, n, k int) {
	lcol := v[k*n : (k+1)*n]
	j := k + 1
	for ; j+4 <= n; j += 4 {
		u0 := v[(j+0)*n+k]
		u1 := v[(j+1)*n+k]
		u2 := v[(j+2)*n+k]
		u3 := v[(j+3)*n+k]
		if u0 == 0 && u1 == 0 && u2 == 0 && u3 == 0 {
			continue
		}
		t0 := v[(j+0)*n : (j+1)*n]
		t1 := v[(j+1)*n : (j+2)*n]
		t2 := v[(j+2)*n : (j+3)*n]
		t3 := v[(j+3)*n : (j+4)*n]
		for i := k + 1; i < n; i++ {
			lv := lcol[i]
			t0[i] -= lv * u0
			t1[i] -= lv * u1
			t2[i] -= lv * u2
			t3[i] -= lv * u3
		}
	}
	for ; j < n; j++ {
		lkj := v[j*n+k]
		if lkj == 0 {
			continue
		}
		tj := v[j*n : (j+1)*n]
		for i := k + 1; i < n; i++ {
			tj[i] -= lcol[i] * lkj
		}
	}
}
