package kernels

// Arena is a bump allocator for kernel scratch: one float64 slab and
// one int slab, carved front to back, recycled with Reset. A hot path
// that needs several related buffers (the Schur update's product tile,
// packed U panel and index maps) carves them from one arena so they
// land contiguously and the steady state performs no allocation at all
// — growth only happens while the high-water mark is still rising, in
// the un-annotated setup path outside the kernels.
//
// Carves stay valid after later carves grow the slab (the old backing
// array is simply abandoned to the collector); only Reset invalidates
// them.
type Arena struct {
	f64  []float64
	fOff int
	ints []int
	iOff int
}

// Reset recycles every previous carve. The backing slabs are retained
// at their high-water size.
func (a *Arena) Reset() { a.fOff, a.iOff = 0, 0 }

// F64 carves an uninitialized length-n float64 slice. Contents are
// whatever the previous cycle left; callers overwrite before reading.
func (a *Arena) F64(n int) []float64 {
	if a.fOff+n > len(a.f64) {
		a.f64 = make([]float64, 2*len(a.f64)+n)
		a.fOff = 0
	}
	s := a.f64[a.fOff : a.fOff+n : a.fOff+n]
	a.fOff += n
	return s
}

// Ints carves an uninitialized length-n int slice.
func (a *Arena) Ints(n int) []int {
	if a.iOff+n > len(a.ints) {
		a.ints = make([]int, 2*len(a.ints)+n)
		a.iOff = 0
	}
	s := a.ints[a.iOff : a.iOff+n : a.iOff+n]
	a.iOff += n
	return s
}
