// Package kernels holds the register-blocked micro-kernels shared by
// every execution engine: the serial blocked factorization
// (dist.FactorizeBlocked), the DAG-scheduled shared-memory engine
// (sched.Factorize), the simulated distributed engine (dist.Solve), the
// scalar column factorization (lu.Factorize) and the batched
// triangular solves (lu.Factors.SolveMulti). The supernodal panels are
// dense column-major tiles sized by the symbolic analysis (the paper
// uses maxSuper = 24 columns), so the kernels are written for tall
// skinny operands: fused multi-column axpy sweeps that read each panel
// column once and apply it to four output columns with a 4-way unrolled
// contiguous row loop, unrolled fringes for the remainder rows and
// columns, and no allocation anywhere on the hot path.
//
// Bit-exactness contract: for every kernel, the floating-point
// operation sequence applied to each output element is identical to the
// scalar reference — ascending-k accumulation with one operation per
// term — so the factors produced under ModeBlocked are bit-identical
// (lu.Factors.Fingerprint match) to ModeScalar on finite inputs. The
// only divergence is that the blocked paths do not skip
// multiplications by zero operand entries; those contribute exact
// signed zeros, which cannot change a finite non-(-0) accumulator.
// Where a zero-skip is observable (the per-RHS xj == 0 skip of the
// triangular solves, which existing tests pin bitwise), the blocked
// kernels preserve the skip exactly, falling back to the scalar loop
// for the affected vectors.
//
// Flop accounting is the caller's: kernels never report flops, so the
// simulated distributed engine's virtual clock (which is fed the
// model's flop counts) is identical under every mode.
package kernels

import "sync/atomic"

// Mode selects the active kernel implementation set. The mode is
// process-global: the ablation harness (gesp-bench -exp kernels) flips
// it around whole factorizations, never mid-run.
type Mode int32

const (
	// ModeScalar is the pre-campaign scalar reference: the exact loops
	// the engines ran before the kernel campaign, kept callable for
	// golden tests and the ablation baseline.
	ModeScalar Mode = iota
	// ModeBlocked enables the register-blocked micro-kernels.
	ModeBlocked
	// ModeBlockedArena additionally routes kernel scratch through
	// arena (bump) allocation so a whole update's work buffers are one
	// contiguous carve (dist.UpdateScratch, sched task slabs).
	ModeBlockedArena
)

func (m Mode) String() string {
	switch m {
	case ModeScalar:
		return "scalar"
	case ModeBlocked:
		return "blocked"
	case ModeBlockedArena:
		return "blocked+arena"
	}
	return "unknown"
}

// mode is the process-global kernel selection, ModeBlocked by default.
var mode atomic.Int32

func init() { mode.Store(int32(ModeBlocked)) }

// SetMode installs m as the active kernel set and returns the previous
// mode. Callers toggling for an ablation should restore the previous
// value when done.
func SetMode(m Mode) Mode { return Mode(mode.Swap(int32(m))) }

// Active reports the current kernel mode.
func Active() Mode { return Mode(mode.Load()) }

// blocked reports whether the register-blocked implementations are
// active (either blocked mode).
func blocked() bool { return Mode(mode.Load()) != ModeScalar }

// ArenaScratch reports whether kernel scratch should be carved from
// arenas rather than per-buffer allocations.
func ArenaScratch() bool { return Mode(mode.Load()) == ModeBlockedArena }
