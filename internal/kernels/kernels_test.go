package kernels

import (
	"math"
	"sync"
	"testing"
)

// The golden tests pin the blocked kernels against the scalar references
// bitwise (Float64bits equality, so signed zeros and NaN payloads count)
// on a shape grid that straddles every register-block boundary: fringe
// rows, fringe columns, k = 0, single columns, and the paper's maxSuper
// panel width of 24.

var shapes = []int{0, 1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 24, 31}

// rng is a splitmix64 generator: deterministic, seedable, no math/rand
// dependency in test helpers.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// f64 returns a value in (-1, 1); roughly one in four is exactly zero so
// the skip paths are exercised. Zeros are +0 only: the dense kernels'
// bitwise contract is stated for non-(-0) data (a -0 target minus an
// executed ±0 term flips to +0 where the scalar skip would keep it, and
// the engines never produce -0 targets). The multi-RHS solve test
// plants -0 explicitly, because there the skip is preserved exactly.
func (r *rng) f64() float64 {
	u := r.next()
	if u%4 == 0 {
		return 0
	}
	return float64(int64(u%2001)-1000) / 1024
}

func (r *rng) fill(x []float64) {
	for i := range x {
		x[i] = r.f64()
	}
}

func bitsEqual(a, b []float64) (int, bool) {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return 0, true
}

// underMode runs f with the process-global mode set to m, restoring the
// previous mode after.
func underMode(m Mode, f func()) {
	prev := SetMode(m)
	defer SetMode(prev)
	f()
}

func TestModeSwap(t *testing.T) {
	prev := SetMode(ModeScalar)
	defer SetMode(prev)
	if got := SetMode(ModeBlockedArena); got != ModeScalar {
		t.Fatalf("SetMode returned %v, want ModeScalar", got)
	}
	if Active() != ModeBlockedArena {
		t.Fatalf("Active() = %v, want ModeBlockedArena", Active())
	}
	if !ArenaScratch() {
		t.Fatal("ArenaScratch() = false under ModeBlockedArena")
	}
	for _, m := range []Mode{ModeScalar, ModeBlocked, ModeBlockedArena} {
		if m.String() == "unknown" {
			t.Fatalf("mode %d has no name", m)
		}
	}
}

func TestMatMulGolden(t *testing.T) {
	r := &rng{s: 1}
	for _, m := range shapes {
		for _, n := range shapes {
			for _, k := range shapes {
				a := make([]float64, m*k)
				b := make([]float64, k*n)
				r.fill(a)
				r.fill(b)
				want := make([]float64, m*n)
				got := make([]float64, m*n)
				r.fill(want) // dirty output: kernels must overwrite, not accumulate
				copy(got, want)
				underMode(ModeScalar, func() { MatMul(want, a, b, m, n, k) })
				underMode(ModeBlocked, func() { MatMul(got, a, b, m, n, k) })
				if i, ok := bitsEqual(want, got); !ok {
					t.Fatalf("m=%d n=%d k=%d: element %d differs: scalar %x blocked %x",
						m, n, k, i, math.Float64bits(want[i]), math.Float64bits(got[i]))
				}
			}
		}
	}
}

func TestTrsmUpperRightGolden(t *testing.T) {
	r := &rng{s: 2}
	for _, nr := range shapes {
		for _, nc := range shapes {
			for _, pad := range []int{0, 3} {
				ldd := nc + pad
				d := make([]float64, nc*ldd)
				r.fill(d)
				for k := 0; k < nc; k++ {
					d[k*ldd+k] = 1 + float64(k%7) // safe nonzero diagonal
				}
				want := make([]float64, nr*nc)
				r.fill(want)
				got := make([]float64, len(want))
				copy(got, want)
				underMode(ModeScalar, func() { TrsmUpperRight(want, nr, nc, d, ldd) })
				underMode(ModeBlocked, func() { TrsmUpperRight(got, nr, nc, d, ldd) })
				if i, ok := bitsEqual(want, got); !ok {
					t.Fatalf("nr=%d nc=%d ldd=%d: element %d differs", nr, nc, ldd, i)
				}
			}
		}
	}
}

func TestTrsmLowerUnitLeftGolden(t *testing.T) {
	r := &rng{s: 3}
	for _, nr := range shapes {
		for _, nc := range shapes {
			for _, pad := range []int{0, 3} {
				ldd := nr + pad
				d := make([]float64, nr*ldd)
				r.fill(d)
				want := make([]float64, nr*nc)
				r.fill(want)
				got := make([]float64, len(want))
				copy(got, want)
				underMode(ModeScalar, func() { TrsmLowerUnitLeft(want, nr, nc, d, ldd) })
				underMode(ModeBlocked, func() { TrsmLowerUnitLeft(got, nr, nc, d, ldd) })
				if i, ok := bitsEqual(want, got); !ok {
					t.Fatalf("nr=%d nc=%d ldd=%d: element %d differs", nr, nc, ldd, i)
				}
			}
		}
	}
}

func TestRank1TrailingGolden(t *testing.T) {
	r := &rng{s: 4}
	for _, n := range shapes {
		for k := 0; k < n; k++ {
			want := make([]float64, n*n)
			r.fill(want)
			got := make([]float64, len(want))
			copy(got, want)
			underMode(ModeScalar, func() { Rank1Trailing(want, n, k) })
			underMode(ModeBlocked, func() { Rank1Trailing(got, n, k) })
			if i, ok := bitsEqual(want, got); !ok {
				t.Fatalf("n=%d k=%d: element %d differs", n, k, i)
			}
		}
	}
}

func TestSpAxpyGolden(t *testing.T) {
	r := &rng{s: 5}
	const n = 64
	for _, nnz := range shapes {
		if nnz > n {
			continue
		}
		ind := ascendingIndices(r, nnz, n)
		val := make([]float64, nnz)
		r.fill(val)
		for _, alpha := range []float64{0.75, -0.25, 1} {
			want := make([]float64, n)
			r.fill(want)
			got := make([]float64, n)
			copy(got, want)
			underMode(ModeScalar, func() { SpAxpy(want, ind, val, alpha) })
			underMode(ModeBlocked, func() { SpAxpy(got, ind, val, alpha) })
			if i, ok := bitsEqual(want, got); !ok {
				t.Fatalf("nnz=%d alpha=%v: element %d differs", nnz, alpha, i)
			}
		}
	}
}

func TestSpDotSubGolden(t *testing.T) {
	r := &rng{s: 6}
	const n = 64
	x := make([]float64, n)
	r.fill(x)
	for _, nnz := range shapes {
		if nnz > n {
			continue
		}
		ind := ascendingIndices(r, nnz, n)
		val := make([]float64, nnz)
		r.fill(val)
		s0 := r.f64()
		var want, got float64
		underMode(ModeScalar, func() { want = SpDotSub(s0, ind, val, x) })
		underMode(ModeBlocked, func() { got = SpDotSub(s0, ind, val, x) })
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("nnz=%d: scalar %x blocked %x", nnz, math.Float64bits(want), math.Float64bits(got))
		}
	}
}

// ascendingIndices draws nnz distinct ascending indices in [0, n).
func ascendingIndices(r *rng, nnz, n int) []int {
	ind := make([]int, 0, nnz)
	for i := 0; i < n && len(ind) < nnz; i++ {
		if int(r.next()%uint64(n-i)) < nnz-len(ind) {
			ind = append(ind, i)
		}
	}
	return ind
}

// sparseTriangular builds a random sparse triangle in the column form
// the solves consume. lower: strictly-lower entries only (unit diagonal
// implied). upper: strictly-upper entries plus the diagonal stored last,
// diagonal forced nonzero.
func sparseTriangular(r *rng, n int, lower bool) (ptr, ind []int, val []float64) {
	ptr = make([]int, n+1)
	for j := 0; j < n; j++ {
		ptr[j] = len(ind)
		if lower {
			for i := j + 1; i < n; i++ {
				if r.next()%3 == 0 {
					ind = append(ind, i)
					val = append(val, r.f64())
				}
			}
		} else {
			for i := 0; i < j; i++ {
				if r.next()%3 == 0 {
					ind = append(ind, i)
					val = append(val, r.f64())
				}
			}
			ind = append(ind, j)
			val = append(val, 1+float64(j%5))
		}
	}
	ptr[n] = len(ind)
	return ptr, ind, val
}

func TestSolveSparseMultiGolden(t *testing.T) {
	r := &rng{s: 7}
	for _, n := range []int{1, 2, 5, 16, 33} {
		lptr, lind, lval := sparseTriangular(r, n, true)
		uptr, uind, uval := sparseTriangular(r, n, false)
		for _, nrhs := range []int{1, 2, 3, 4, 5, 7, 8, 9, 12} {
			want := make([]float64, n*nrhs)
			r.fill(want)
			// Plant exact zeros and negative zeros in whole quads and in
			// single lanes so both the fused path and the per-vector
			// fallback run.
			for i := 0; i < len(want); i += 5 {
				want[i] = 0
			}
			if len(want) > 3 {
				want[3] = math.Copysign(0, -1)
			}
			got := make([]float64, len(want))
			copy(got, want)
			underMode(ModeScalar, func() {
				SolveSparseLMulti(want, n, nrhs, lptr, lind, lval)
				SolveSparseUMulti(want, n, nrhs, uptr, uind, uval)
			})
			underMode(ModeBlocked, func() {
				SolveSparseLMulti(got, n, nrhs, lptr, lind, lval)
				SolveSparseUMulti(got, n, nrhs, uptr, uind, uval)
			})
			if i, ok := bitsEqual(want, got); !ok {
				t.Fatalf("n=%d nrhs=%d: element %d differs: scalar %x blocked %x",
					n, nrhs, i, math.Float64bits(want[i]), math.Float64bits(got[i]))
			}
		}
	}
}

// TestConcurrentReadOnlyOperands drives the blocked kernels from many
// goroutines sharing the read-only operands (the broadcast L and U
// panels of the distributed engine) with private outputs; run under
// -race this proves the kernels never write to their inputs.
func TestConcurrentReadOnlyOperands(t *testing.T) {
	prev := SetMode(ModeBlocked)
	defer SetMode(prev)
	r := &rng{s: 8}
	const m, n, k = 17, 12, 8
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	d := make([]float64, n*n)
	r.fill(a)
	r.fill(b)
	r.fill(d)
	for i := 0; i < n; i++ {
		d[i*n+i] = 2
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			gr := &rng{s: seed}
			p := make([]float64, m*n)
			bb := make([]float64, m*n)
			gr.fill(bb)
			for iter := 0; iter < 50; iter++ {
				MatMul(p, a, b, m, n, k)
				TrsmUpperRight(bb, m, n, d, n)
			}
		}(uint64(g) + 100)
	}
	wg.Wait()
}

func TestArena(t *testing.T) {
	var a Arena
	f1 := a.F64(8)
	i1 := a.Ints(4)
	for q := range f1 {
		f1[q] = float64(q)
	}
	for q := range i1 {
		i1[q] = q
	}
	// A growing carve abandons the old slab; earlier carves stay valid.
	f2 := a.F64(1 << 12)
	for q := range f1 {
		if f1[q] != float64(q) {
			t.Fatalf("f1[%d] clobbered by growth", q)
		}
	}
	_ = f2
	// Carves are capacity-clamped: appending to one cannot bleed into
	// the next carve's region.
	f3 := a.F64(4)
	f4 := a.F64(4)
	f4[0] = 99
	f3 = append(f3, -1)
	if f4[0] != 99 {
		t.Fatal("append to a carve bled into the following carve")
	}
	_ = f3
	// Reset recycles the slab: the next carve reuses the same backing.
	a.Reset()
	f5 := a.F64(4)
	f5[0] = 7
	if a.fOff != 4 || a.iOff != 0 {
		t.Fatalf("offsets after Reset+carve: fOff=%d iOff=%d", a.fOff, a.iOff)
	}
}

// Zero-allocation proof for the hot kernels in every mode (arena growth
// happens only while the high-water mark rises, so a warmed arena is
// also allocation-free).
func TestKernelsZeroAlloc(t *testing.T) {
	r := &rng{s: 9}
	const m, n, k = 24, 24, 24
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	p := make([]float64, m*n)
	d := make([]float64, n*n)
	w := make([]float64, 64)
	ind := ascendingIndices(r, 16, 64)
	val := make([]float64, 16)
	r.fill(a)
	r.fill(b)
	r.fill(d)
	r.fill(val)
	for i := 0; i < n; i++ {
		d[i*n+i] = 2
	}
	lptr, lind, lval := sparseTriangular(r, 32, true)
	uptr, uind, uval := sparseTriangular(r, 32, false)
	x := make([]float64, 32*8)

	for _, mode := range []Mode{ModeScalar, ModeBlocked, ModeBlockedArena} {
		underMode(mode, func() {
			allocs := testing.AllocsPerRun(10, func() {
				MatMul(p, a, b, m, n, k)
				TrsmUpperRight(p, m, n, d, n)
				TrsmLowerUnitLeft(p, m, n, d, m)
				Rank1Trailing(d, n, 3)
				SpAxpy(w, ind, val, 0.5)
				_ = SpDotSub(1, ind, val, w)
				r.fill(x)
				SolveSparseLMulti(x, 32, 8, lptr, lind, lval)
				SolveSparseUMulti(x, 32, 8, uptr, uind, uval)
			})
			if allocs != 0 {
				t.Errorf("mode %v: %v allocs/op, want 0", mode, allocs)
			}
		})
	}
}
