package kernels

// Sparse-column kernels: the inner loops of the scalar left-looking
// factorization (lu.Factorize), the single-RHS triangular solves and
// the batched multi-RHS solves. A factor column is a sorted index list
// ind with parallel values val; indices within one column are strictly
// ascending, hence distinct, so unrolling over the column is always
// exact.

// SpAxpy applies one sparse column update w[ind[q]] -= val[q]·alpha.
// This is the dominant loop of the left-looking factorization and of
// SolveL/SolveU; the blocked variant unrolls the gather-scatter four
// wide. The caller is responsible for the alpha == 0 skip (both the
// factorization and the solves test it before descending here).
//
//gesp:hotpath
func SpAxpy(w []float64, ind []int, val []float64, alpha float64) {
	if !blocked() {
		for q, i := range ind {
			w[i] -= val[q] * alpha
		}
		return
	}
	q := 0
	for ; q+4 <= len(ind); q += 4 {
		i0, i1, i2, i3 := ind[q], ind[q+1], ind[q+2], ind[q+3]
		w[i0] -= val[q] * alpha
		w[i1] -= val[q+1] * alpha
		w[i2] -= val[q+2] * alpha
		w[i3] -= val[q+3] * alpha
	}
	for ; q < len(ind); q++ {
		w[ind[q]] -= val[q] * alpha
	}
}

// SpDotSub folds one sparse column into a running scalar:
// s -= Σ_q val[q]·x[ind[q]], accumulated strictly in ascending q with a
// single accumulator (the transpose-solve contract — the sum order is
// part of the bitwise result). The blocked variant only unrolls the
// loop body; the dependency chain is unchanged.
//
//gesp:hotpath
func SpDotSub(s float64, ind []int, val []float64, x []float64) float64 {
	if !blocked() {
		for q, i := range ind {
			s -= val[q] * x[i]
		}
		return s
	}
	q := 0
	for ; q+4 <= len(ind); q += 4 {
		s -= val[q] * x[ind[q]]
		s -= val[q+1] * x[ind[q+1]]
		s -= val[q+2] * x[ind[q+2]]
		s -= val[q+3] * x[ind[q+3]]
	}
	for ; q < len(ind); q++ {
		s -= val[q] * x[ind[q]]
	}
	return s
}

// SolveSparseLMulti applies L⁻¹ (unit lower triangle in ptr/ind/val
// column form, strictly-lower entries only) to nrhs right-hand sides
// packed column-major in x with stride n: forward substitution with
// each factor column loaded once per RHS quad. The per-RHS xj == 0 skip
// of the scalar solve is preserved exactly: a quad takes the fused path
// only when all four pivots are nonzero (then the scalar loop would
// skip nothing either), otherwise each vector is advanced by the
// reference loop.
//
//gesp:hotpath
func SolveSparseLMulti(x []float64, n, nrhs int, ptr, ind []int, val []float64) {
	r := 0
	if blocked() {
		for ; r+4 <= nrhs; r += 4 {
			x0 := x[(r+0)*n : (r+1)*n]
			x1 := x[(r+1)*n : (r+2)*n]
			x2 := x[(r+2)*n : (r+3)*n]
			x3 := x[(r+3)*n : (r+4)*n]
			for j := 0; j < n; j++ {
				lo, hi := ptr[j], ptr[j+1]
				if lo == hi {
					continue
				}
				xj0, xj1, xj2, xj3 := x0[j], x1[j], x2[j], x3[j]
				if xj0 != 0 && xj1 != 0 && xj2 != 0 && xj3 != 0 {
					for q := lo; q < hi; q++ {
						li, lv := ind[q], val[q]
						x0[li] -= lv * xj0
						x1[li] -= lv * xj1
						x2[li] -= lv * xj2
						x3[li] -= lv * xj3
					}
					continue
				}
				solveLColumn(x0, xj0, ind[lo:hi], val[lo:hi])
				solveLColumn(x1, xj1, ind[lo:hi], val[lo:hi])
				solveLColumn(x2, xj2, ind[lo:hi], val[lo:hi])
				solveLColumn(x3, xj3, ind[lo:hi], val[lo:hi])
			}
		}
	}
	for ; r < nrhs; r++ {
		xr := x[r*n : (r+1)*n]
		for j := 0; j < n; j++ {
			xj := xr[j]
			if xj == 0 {
				continue
			}
			for q := ptr[j]; q < ptr[j+1]; q++ {
				xr[ind[q]] -= val[q] * xj
			}
		}
	}
}

// solveLColumn is the reference single-vector column application with
// the xj == 0 skip.
//
//gesp:hotpath
func solveLColumn(xr []float64, xj float64, ind []int, val []float64) {
	if xj == 0 {
		return
	}
	for q, i := range ind {
		xr[i] -= val[q] * xj
	}
}

// SolveSparseUMulti applies U⁻¹ (upper triangle in ptr/ind/val column
// form, diagonal stored as the last entry of each column) to nrhs
// right-hand sides packed column-major in x with stride n: backward
// substitution with the same quad fusion and exact-skip contract as
// SolveSparseLMulti.
//
//gesp:hotpath
func SolveSparseUMulti(x []float64, n, nrhs int, ptr, ind []int, val []float64) {
	r := 0
	if blocked() {
		for ; r+4 <= nrhs; r += 4 {
			x0 := x[(r+0)*n : (r+1)*n]
			x1 := x[(r+1)*n : (r+2)*n]
			x2 := x[(r+2)*n : (r+3)*n]
			x3 := x[(r+3)*n : (r+4)*n]
			for j := n - 1; j >= 0; j-- {
				lo, hi := ptr[j], ptr[j+1]-1
				d := val[hi] // diagonal is the last entry of the column
				xj0 := x0[j] / d
				xj1 := x1[j] / d
				xj2 := x2[j] / d
				xj3 := x3[j] / d
				x0[j], x1[j], x2[j], x3[j] = xj0, xj1, xj2, xj3
				if xj0 != 0 && xj1 != 0 && xj2 != 0 && xj3 != 0 {
					for q := lo; q < hi; q++ {
						ui, uv := ind[q], val[q]
						x0[ui] -= uv * xj0
						x1[ui] -= uv * xj1
						x2[ui] -= uv * xj2
						x3[ui] -= uv * xj3
					}
					continue
				}
				solveLColumn(x0, xj0, ind[lo:hi], val[lo:hi])
				solveLColumn(x1, xj1, ind[lo:hi], val[lo:hi])
				solveLColumn(x2, xj2, ind[lo:hi], val[lo:hi])
				solveLColumn(x3, xj3, ind[lo:hi], val[lo:hi])
			}
		}
	}
	for ; r < nrhs; r++ {
		xr := x[r*n : (r+1)*n]
		for j := n - 1; j >= 0; j-- {
			lo, hi := ptr[j], ptr[j+1]-1
			xj := xr[j] / val[hi]
			xr[j] = xj
			if xj == 0 {
				continue
			}
			for q := lo; q < hi; q++ {
				xr[ind[q]] -= val[q] * xj
			}
		}
	}
}
