package kernels

import (
	"fmt"
	"math/rand"
	"testing"
)

// Benchmarks for the micro-kernels at supernodal shapes (maxSuper = 24
// panels). Run via `make bench`; the scalar/blocked pairs are the raw
// material of the campaign's speedup claims.

func benchData(m, n, k int, zeroFrac int) (a, b, p []float64) {
	rng := rand.New(rand.NewSource(11))
	a = make([]float64, m*k)
	b = make([]float64, k*n)
	p = make([]float64, m*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		if zeroFrac > 0 && rng.Intn(zeroFrac) == 0 {
			continue
		}
		b[i] = rng.NormFloat64()
	}
	return a, b, p
}

func BenchmarkMatMul(bb *testing.B) {
	for _, sh := range []struct{ m, n, k int }{{192, 24, 24}, {384, 24, 24}, {48, 8, 8}} {
		a, b, p := benchData(sh.m, sh.n, sh.k, 5)
		flops := int64(2 * sh.m * sh.n * sh.k)
		for _, mode := range []Mode{ModeScalar, ModeBlocked} {
			bb.Run(fmt.Sprintf("%dx%dx%d/%s", sh.m, sh.n, sh.k, mode), func(bb *testing.B) {
				prev := SetMode(mode)
				defer SetMode(prev)
				bb.ReportAllocs()
				for i := 0; i < bb.N; i++ {
					MatMul(p, a, b, sh.m, sh.n, sh.k)
				}
				bb.SetBytes(8 * int64(sh.m*sh.k+sh.k*sh.n+sh.m*sh.n))
				bb.ReportMetric(float64(flops)*float64(bb.N)/bb.Elapsed().Seconds()/1e6, "Mflops")
			})
		}
	}
}

func BenchmarkTrsmUpperRight(bb *testing.B) {
	const nr, nc = 192, 24
	rng := rand.New(rand.NewSource(12))
	d := make([]float64, nc*nc)
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	for i := 0; i < nc; i++ {
		d[i*nc+i] = 2
	}
	b := make([]float64, nr*nc)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	for _, mode := range []Mode{ModeScalar, ModeBlocked} {
		bb.Run(mode.String(), func(bb *testing.B) {
			prev := SetMode(mode)
			defer SetMode(prev)
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				TrsmUpperRight(b, nr, nc, d, nc)
			}
		})
	}
}

func BenchmarkTrsmLowerUnitLeft(bb *testing.B) {
	const nr, nc = 24, 24
	rng := rand.New(rand.NewSource(13))
	d := make([]float64, nr*nr)
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	b := make([]float64, nr*nc)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	for _, mode := range []Mode{ModeScalar, ModeBlocked} {
		bb.Run(mode.String(), func(bb *testing.B) {
			prev := SetMode(mode)
			defer SetMode(prev)
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				TrsmLowerUnitLeft(b, nr, nc, d, nr)
			}
		})
	}
}

func BenchmarkRank1Trailing(bb *testing.B) {
	const n = 24
	rng := rand.New(rand.NewSource(14))
	v := make([]float64, n*n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	for _, mode := range []Mode{ModeScalar, ModeBlocked} {
		bb.Run(mode.String(), func(bb *testing.B) {
			prev := SetMode(mode)
			defer SetMode(prev)
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				for k := 0; k < n; k++ {
					Rank1Trailing(v, n, k)
				}
			}
		})
	}
}

func BenchmarkSpAxpy(bb *testing.B) {
	rng := rand.New(rand.NewSource(15))
	w := make([]float64, 4096)
	ind := make([]int, 256)
	for i := range ind {
		ind[i] = i * 16
	}
	val := make([]float64, len(ind))
	for i := range val {
		val[i] = rng.NormFloat64()
	}
	for _, mode := range []Mode{ModeScalar, ModeBlocked} {
		bb.Run(mode.String(), func(bb *testing.B) {
			prev := SetMode(mode)
			defer SetMode(prev)
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				SpAxpy(w, ind, val, 0.5)
			}
		})
	}
}
