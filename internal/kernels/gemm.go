package kernels

// MatMul computes the dense column-major product p = a·b, where a is
// m×k, b is k×n and p is m×n, all packed (leading dimension equals the
// row count). This is the Schur-update product of RankBUpdateInto: a is
// the L panel, b the (packed) U panel, p the accumulator that is then
// scatter-subtracted into the target block. Each output element is
// accumulated over ascending t with one multiply-add per term, matching
// the scalar reference bit for bit.
//
//gesp:hotpath
func MatMul(p, a, b []float64, m, n, k int) {
	if m == 0 || n == 0 {
		return
	}
	if blocked() {
		matMulBlocked(p, a, b, m, n, k)
		return
	}
	MatMulScalar(p, a, b, m, n, k)
}

// MatMulScalar is the scalar reference: the strip-free form of the loop
// RankBUpdateInto ran before the kernel campaign (per U column, sweep
// the L columns ascending, skipping zero U entries). Exported so golden
// tests can pin the blocked kernel against it on every shape.
//
//gesp:hotpath
func MatMulScalar(p, a, b []float64, m, n, k int) {
	for j := 0; j < n; j++ {
		bj := b[j*k : (j+1)*k]
		pj := p[j*m : (j+1)*m]
		for i := range pj {
			pj[i] = 0
		}
		for t := 0; t < k; t++ {
			bv := bj[t]
			if bv == 0 {
				continue
			}
			at := a[t*m : (t+1)*m]
			for i := range pj {
				pj[i] += at[i] * bv
			}
		}
	}
}

// matMulBlocked is the register-blocked micro-kernel: a 4-column fused
// axpy with the row sweep unrolled by 4. Each L column strip is loaded
// once and applied to four U columns (4× less a traffic than the
// column-at-a-time reference), the four product columns stay resident
// in L1, and the unrolled body gives the scheduler sixteen independent
// multiply-adds per iteration. A plain 4×4 accumulator tile loses here:
// sixteen live accumulators plus operands exceed the sixteen FP
// registers of amd64, so the compiler spills the tile to the stack on
// every k step, and the tile's a loads are stride-m besides.
//
// Per output element the accumulation order is ascending t with one
// multiply-add per term, identical to the scalar reference. A t whose
// four b entries are all zero is skipped exactly like the reference's
// per-column skip; a zero entry alongside nonzero ones contributes an
// exact ±0 term, which cannot change a partial sum (sums never reach
// -0: +0 + ±0 rounds to +0, so zero terms keep the accumulator at +0,
// matching the skip).
//
//gesp:hotpath
func matMulBlocked(p, a, b []float64, m, n, k int) {
	j := 0
	for ; j+4 <= n; j += 4 {
		b0 := b[(j+0)*k : (j+1)*k]
		b1 := b[(j+1)*k : (j+2)*k]
		b2 := b[(j+2)*k : (j+3)*k]
		b3 := b[(j+3)*k : (j+4)*k]
		p0 := p[(j+0)*m : (j+1)*m : (j+1)*m]
		p1 := p[(j+1)*m : (j+2)*m : (j+2)*m]
		p2 := p[(j+2)*m : (j+3)*m : (j+3)*m]
		p3 := p[(j+3)*m : (j+4)*m : (j+4)*m]
		for i := range p0 {
			p0[i] = 0
			p1[i] = 0
			p2[i] = 0
			p3[i] = 0
		}
		for t := 0; t < k; t++ {
			v0, v1, v2, v3 := b0[t], b1[t], b2[t], b3[t]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			at := a[t*m : (t+1)*m : (t+1)*m]
			i := 0
			for ; i+4 <= m; i += 4 {
				a0, a1, a2, a3 := at[i], at[i+1], at[i+2], at[i+3]
				p0[i] += a0 * v0
				p0[i+1] += a1 * v0
				p0[i+2] += a2 * v0
				p0[i+3] += a3 * v0
				p1[i] += a0 * v1
				p1[i+1] += a1 * v1
				p1[i+2] += a2 * v1
				p1[i+3] += a3 * v1
				p2[i] += a0 * v2
				p2[i+1] += a1 * v2
				p2[i+2] += a2 * v2
				p2[i+3] += a3 * v2
				p3[i] += a0 * v3
				p3[i+1] += a1 * v3
				p3[i+2] += a2 * v3
				p3[i+3] += a3 * v3
			}
			for ; i < m; i++ {
				av := at[i]
				p0[i] += av * v0
				p1[i] += av * v1
				p2[i] += av * v2
				p3[i] += av * v3
			}
		}
	}
	for ; j < n; j++ {
		bj := b[j*k : (j+1)*k]
		pj := p[j*m : (j+1)*m]
		for i := range pj {
			pj[i] = 0
		}
		for t := 0; t < k; t++ {
			bv := bj[t]
			if bv == 0 {
				continue
			}
			at := a[t*m : (t+1)*m]
			for i, av := range at {
				pj[i] += av * bv
			}
		}
	}
}
