package core

import (
	"math/rand"
	"testing"

	"gesp/internal/matgen"
	"gesp/internal/sparse"
)

// perturbValues returns a clone of a with every stored value scaled by a
// factor near 1: the same pattern, different numerics — the serving
// workload NewWithSymbolic exists for.
func perturbValues(a *sparse.CSC, seed int64) *sparse.CSC {
	rng := rand.New(rand.NewSource(seed))
	b := a.Clone()
	for k := range b.Val {
		b.Val[k] *= 1 + 0.1*rng.NormFloat64()
	}
	return b
}

// TestNewWithSymbolicSkipsAnalysis is the satellite's proof obligation:
// the reuse path must run zero equilibration/matching/ordering/symbolic
// phases, counted by the Stats phase counters, while still solving the
// new system accurately.
func TestNewWithSymbolicSkipsAnalysis(t *testing.T) {
	m, ok := matgen.Lookup("SHERMAN4")
	if !ok {
		t.Fatal("testbed matrix SHERMAN4 missing")
	}
	a := m.Generate(testScale)
	donor, err := New(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ds := donor.Stats()
	if ds.EquilRuns != 1 || ds.RowPermRuns != 1 || ds.OrderRuns != 1 || ds.SymbolicRuns != 1 || ds.FactorRuns != 1 {
		t.Fatalf("donor phase counters = %+v, want each analysis phase run once", ds)
	}

	a2 := perturbValues(a, 99)
	reused, err := NewWithSymbolic(a2, donor)
	if err != nil {
		t.Fatal(err)
	}
	rs := reused.Stats()
	if rs.EquilRuns != 0 || rs.RowPermRuns != 0 || rs.OrderRuns != 0 || rs.SymbolicRuns != 0 {
		t.Fatalf("reuse path ran analysis work: %+v", rs)
	}
	if rs.FactorRuns != 1 {
		t.Fatalf("reuse path FactorRuns = %d, want 1", rs.FactorRuns)
	}
	if rs.Times.Equil != 0 || rs.Times.RowPerm != 0 || rs.Times.Order != 0 || rs.Times.Symbolic != 0 {
		t.Fatalf("reuse path charged analysis time: %+v", rs.Times)
	}
	if rs.NnzLU != ds.NnzLU {
		t.Fatalf("reused structure reports fill %d, donor %d", rs.NnzLU, ds.NnzLU)
	}

	// The reused-analysis solve must still be accurate on the NEW values.
	b := matgen.OnesRHS(a2)
	x, err := reused.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if e := sparse.RelErrInf(x, onesSolution(a2.Rows)); e > 2e-3 {
		t.Fatalf("reused-symbolic solve error %g", e)
	}
	if berr := reused.Stats().Berr; berr > 1e-10 {
		t.Fatalf("reused-symbolic berr = %g, want near eps", berr)
	}

	// And it must agree with a from-scratch factorization of a2.
	fresh, err := New(a2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	xf, err := fresh.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if e := sparse.RelErrInf(x, xf); e > 1e-8 {
		t.Fatalf("reused vs fresh solutions differ by %g", e)
	}
}

func TestNewWithSymbolicRejectsMismatch(t *testing.T) {
	m, _ := matgen.Lookup("SHERMAN4")
	a := m.Generate(testScale)
	donor, err := New(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Different pattern, same size: drop the last stored entry.
	tr := sparse.NewTriplet(a.Rows, a.Cols)
	for j := 0; j < a.Cols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if k == a.Nnz()-1 {
				continue
			}
			tr.Append(a.RowInd[k], j, a.Val[k])
		}
	}
	if _, err := NewWithSymbolic(tr.ToCSC(), donor); err == nil {
		t.Fatal("pattern mismatch not rejected")
	}
	// Different size.
	if _, err := NewWithSymbolic(sparse.Identity(3), donor); err == nil {
		t.Fatal("dimension mismatch not rejected")
	}
	// Donor without symbolic analysis.
	if _, err := NewWithSymbolic(a, nil); err == nil {
		t.Fatal("nil donor not rejected")
	}
}

// TestSolveBatchMatchesSolve checks the batched serving path end to end
// (scaling, permutation, multi-RHS sweep, refinement, unscaling) against
// the one-at-a-time Solve, with and without refinement.
func TestSolveBatchMatchesSolve(t *testing.T) {
	m, _ := matgen.Lookup("GEMAT11")
	a := m.Generate(testScale)
	for _, refineOn := range []bool{true, false} {
		opts := DefaultOptions()
		opts.Refine = refineOn
		s, err := New(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		const k = 11
		bs := make([][]float64, k)
		for r := range bs {
			bs[r] = make([]float64, a.Rows)
			for i := range bs[r] {
				bs[r][i] = rng.NormFloat64()
			}
		}
		xs, err := s.SolveBatch(bs)
		if err != nil {
			t.Fatal(err)
		}
		if len(xs) != k {
			t.Fatalf("got %d solutions, want %d", len(xs), k)
		}
		for r := range bs {
			want, err := s.Solve(bs[r])
			if err != nil {
				t.Fatal(err)
			}
			if e := sparse.RelErrInf(xs[r], want); e > 1e-9 {
				t.Fatalf("refine=%v rhs %d: batch vs single diverge by %g", refineOn, r, e)
			}
		}
	}
}

func TestSolveBatchErrors(t *testing.T) {
	m, _ := matgen.Lookup("SHERMAN4")
	a := m.Generate(testScale)
	s, err := NewAnalysis(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SolveBatch([][]float64{make([]float64, a.Rows)}); err == nil {
		t.Fatal("SolveBatch on analysis-only solver not rejected")
	}
	full, err := New(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.SolveBatch([][]float64{make([]float64, 2)}); err == nil {
		t.Fatal("wrong-length RHS not rejected")
	}
	if xs, err := full.SolveBatch(nil); err != nil || xs != nil {
		t.Fatalf("empty batch: got (%v, %v), want (nil, nil)", xs, err)
	}
}
