package core

import (
	"math"
	"testing"

	"gesp/internal/dist"
	"gesp/internal/lu"
	"gesp/internal/matgen"
	"gesp/internal/ordering"
	"gesp/internal/sparse"
)

const testScale = 0.35

func onesSolution(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	return x
}

func TestGESPOnFullTestbed(t *testing.T) {
	// The paper's §2.2 experiment: every one of the 53 matrices, b = A·1,
	// GESP must deliver a small error and berr near machine epsilon.
	failures := 0
	for _, m := range matgen.Testbed() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			a := m.Generate(testScale)
			s, err := New(a, DefaultOptions())
			if err != nil {
				t.Fatalf("GESP analysis/factorization failed: %v", err)
			}
			b := matgen.OnesRHS(a)
			x, err := s.Solve(b)
			if err != nil {
				t.Fatal(err)
			}
			relErr := sparse.RelErrInf(x, onesSolution(a.Rows))
			st := s.Stats()
			if st.Berr > 1e-10 {
				t.Errorf("berr = %g, want near eps", st.Berr)
			}
			// The paper's Figure 4 shows errors up to ~1e-4 for the worst
			// conditioned matrices; 2e-3 is the acceptance bar here.
			if relErr > 2e-3 {
				failures++
				t.Errorf("relative error %g", relErr)
			}
		})
	}
}

func TestNoPivotingFailsWhereGESPSucceeds(t *testing.T) {
	// Turn off every stabilization: matrices with zero diagonals must fail
	// outright (the paper: 27 of 53 fail with no pivoting at all).
	bare := Options{Ordering: ordering.Natural, Refine: false, ColScale: false}
	zeroFails := 0
	total := 0
	for _, m := range matgen.Testbed() {
		if !m.ZeroDiag {
			continue
		}
		total++
		a := m.Generate(testScale)
		if _, err := New(a, bare); err != nil {
			zeroFails++
			// And GESP proper must succeed on the same matrix.
			s, err := New(a, DefaultOptions())
			if err != nil {
				t.Errorf("%s: GESP failed too: %v", m.Name, err)
				continue
			}
			b := matgen.OnesRHS(a)
			x, err := s.Solve(b)
			if err != nil {
				t.Errorf("%s: GESP solve failed: %v", m.Name, err)
				continue
			}
			if e := sparse.RelErrInf(x, onesSolution(a.Rows)); e > 2e-3 {
				t.Errorf("%s: GESP error %g", m.Name, e)
			}
		}
	}
	if zeroFails == 0 {
		t.Errorf("no zero-diagonal matrix failed under plain no-pivoting (want most of %d)", total)
	}
	t.Logf("plain no-pivoting failed on %d of %d zero-diagonal matrices", zeroFails, total)
}

func TestGESPMatchesGEPPAccuracy(t *testing.T) {
	// Figure 4's claim: GESP error is at most a little larger than GEPP's
	// and usually comparable. Spot-check a representative subset.
	for _, name := range []string{"AF23560", "MEMPLUS", "LHR14C", "TWOTONE", "PSMIGR_1", "ECL32"} {
		m, ok := matgen.Lookup(name)
		if !ok {
			t.Fatalf("matrix %s missing", name)
		}
		a := m.Generate(testScale)
		want := onesSolution(a.Rows)
		b := matgen.OnesRHS(a)

		s, err := New(a, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: GESP: %v", name, err)
		}
		xs, err := s.Solve(b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		eGESP := sparse.RelErrInf(xs, want)

		fp, err := lu.GEPP(a)
		if err != nil {
			t.Fatalf("%s: GEPP: %v", name, err)
		}
		xp := fp.SolvePerm(b)
		eGEPP := sparse.RelErrInf(xp, want)

		t.Logf("%s: GESP=%.3g GEPP=%.3g", name, eGESP, eGEPP)
		// GESP with refinement should not be much worse than raw GEPP.
		if eGESP > 1e3*eGEPP+1e-10 {
			t.Errorf("%s: GESP error %g vastly worse than GEPP %g", name, eGESP, eGEPP)
		}
	}
}

func TestOptionToggles(t *testing.T) {
	m, _ := matgen.Lookup("AF23560")
	a := m.Generate(0.25)
	b := matgen.OnesRHS(a)
	want := onesSolution(a.Rows)
	configs := []Options{
		DefaultOptions(),
		{Equilibrate: false, RowPermute: true, ColScale: true, Ordering: ordering.MinDegATA, ReplaceTinyPivot: true, Refine: true},
		{Equilibrate: true, RowPermute: false, Ordering: ordering.MinDegAPlusAT, ReplaceTinyPivot: true, Refine: true},
		{Equilibrate: true, RowPermute: true, ColScale: false, Ordering: ordering.MinDegATA, ReplaceTinyPivot: true, Refine: true},
		{Equilibrate: true, RowPermute: true, ColScale: true, Ordering: ordering.RCM, ReplaceTinyPivot: true, Refine: true},
		{Equilibrate: true, RowPermute: true, ColScale: true, Ordering: ordering.MinDegATA, ReplaceTinyPivot: true, Refine: true, ExtraPrecision: true},
		{Equilibrate: true, RowPermute: true, ColScale: true, Ordering: ordering.MinDegATA, ReplaceTinyPivot: true, AggressivePivot: true, Refine: true},
	}
	for i, o := range configs {
		s, err := New(a, o)
		if err != nil {
			t.Errorf("config %d: %v", i, err)
			continue
		}
		x, err := s.Solve(b)
		if err != nil {
			t.Errorf("config %d: %v", i, err)
			continue
		}
		if e := sparse.RelErrInf(x, want); e > 1e-6 {
			t.Errorf("config %d: error %g", i, e)
		}
	}
}

func TestOrderingReducesFill(t *testing.T) {
	m, _ := matgen.Lookup("AF23560")
	a := m.Generate(0.35)
	sMD, err := New(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	oNat := DefaultOptions()
	oNat.Ordering = ordering.Natural
	sNat, err := New(a, oNat)
	if err != nil {
		t.Fatal(err)
	}
	if sMD.Stats().NnzLU >= sNat.Stats().NnzLU {
		t.Errorf("minimum degree fill %d not below natural fill %d", sMD.Stats().NnzLU, sNat.Stats().NnzLU)
	}
	t.Logf("fill: MMD(AᵀA)=%d natural=%d", sMD.Stats().NnzLU, sNat.Stats().NnzLU)
}

func TestMultipleSolves(t *testing.T) {
	m, _ := matgen.Lookup("SHERMAN4")
	a := m.Generate(0.35)
	s, err := New(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		want := make([]float64, a.Rows)
		for i := range want {
			want[i] = float64((i+trial)%7) - 3
		}
		b := make([]float64, a.Rows)
		a.MatVec(b, want)
		x, err := s.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if e := sparse.RelErrInf(x, want); e > 1e-8 {
			t.Errorf("trial %d: error %g", trial, e)
		}
	}
}

func TestCondAndFerr(t *testing.T) {
	m, _ := matgen.Lookup("WANG3")
	a := m.Generate(0.3)
	s, err := New(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := matgen.OnesRHS(a)
	x, err := s.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	cond := s.CondEst()
	if cond < 1 || math.IsNaN(cond) {
		t.Errorf("condition estimate %g", cond)
	}
	ferr := s.ForwardErrorBound(x, b)
	trueErr := sparse.RelErrInf(x, onesSolution(a.Rows))
	if ferr <= 0 || math.IsNaN(ferr) {
		t.Errorf("forward error bound %g", ferr)
	}
	if ferr < trueErr/100 {
		t.Errorf("bound %g far below true error %g", ferr, trueErr)
	}
	if s.Stats().Times.Ferr <= 0 {
		t.Error("forward error time not recorded")
	}
}

func TestStatsPopulated(t *testing.T) {
	m, _ := matgen.Lookup("MEMPLUS")
	a := m.Generate(0.3)
	s, err := New(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := matgen.OnesRHS(a)
	if _, err := s.Solve(b); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.N != a.Rows || st.NnzA != a.Nnz() {
		t.Error("size stats wrong")
	}
	if st.NnzLU < st.NnzA {
		t.Errorf("nnz(L+U)=%d below nnz(A)=%d", st.NnzLU, st.NnzA)
	}
	if st.Flops <= 0 {
		t.Error("flops not counted")
	}
	if st.ZeroDiagsIn == 0 {
		t.Error("MEMPLUS should report zero diagonals on input")
	}
	if st.Times.Factor <= 0 || st.Times.RowPerm <= 0 {
		t.Error("phase times not recorded")
	}
	if len(st.BerrHistory) == 0 {
		t.Error("berr history empty")
	}
	if st.NumSuper <= 0 || st.AvgSuper <= 0 {
		t.Error("supernode stats missing")
	}
}

func TestSolveWrongLength(t *testing.T) {
	a := sparse.Identity(5)
	s, err := New(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(make([]float64, 4)); err == nil {
		t.Error("wrong-length b accepted")
	}
}

func TestRectangularRejected(t *testing.T) {
	tr := sparse.NewTriplet(2, 3)
	tr.Append(0, 0, 1)
	if _, err := New(tr.ToCSC(), DefaultOptions()); err == nil {
		t.Error("rectangular matrix accepted")
	}
}

func TestDistSolveEndToEnd(t *testing.T) {
	m, _ := matgen.Lookup("AF23560")
	a := m.Generate(0.3)
	s, err := NewAnalysis(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(matgen.OnesRHS(a)); err == nil {
		t.Error("analysis-only solver accepted a serial Solve")
	}
	b := matgen.OnesRHS(a)
	for _, p := range []int{2, 8} {
		x, res, err := s.DistSolve(b, dist.Options{Procs: p, Pipeline: true, EDAGPrune: true})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if e := sparse.RelErrInf(x, onesSolution(a.Rows)); e > 1e-6 {
			t.Errorf("P=%d: distributed error %g", p, e)
		}
		if res.Factor.SimTime <= 0 || res.Solve.SimTime <= 0 {
			t.Errorf("P=%d: missing phase stats", p)
		}
	}
}

func TestDistSolveMatchesSerialSolve(t *testing.T) {
	m, _ := matgen.Lookup("SHERMAN4")
	a := m.Generate(0.3)
	b := matgen.OnesRHS(a)
	sSerial, err := New(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	xs, err := sSerial.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	xd, _, err := sSerial.DistSolve(b, dist.Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if d := math.Abs(xs[i] - xd[i]); d > 1e-6*math.Abs(xs[i])+1e-9 {
			t.Fatalf("serial and distributed solutions diverge at %d: %g vs %g", i, xs[i], xd[i])
		}
	}
}

func TestParallelWorkersMatchesSerial(t *testing.T) {
	// Workers > 1 swaps in the DAG-scheduled factorization and the
	// level-scheduled solves; the solution must agree with the serial
	// engine to refinement accuracy, and refinement must still converge.
	for _, name := range []string{"MEMPLUS", "WANG4", "TWOTONE"} {
		m, _ := matgen.Lookup(name)
		a := m.Generate(0.15)
		b := matgen.OnesRHS(a)

		serial, err := New(a, DefaultOptions())
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		xs, err := serial.Solve(b)
		if err != nil {
			t.Fatal(err)
		}

		popts := DefaultOptions()
		popts.Workers = 4
		par, err := New(a, popts)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		xp, err := par.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if e := sparse.RelErrInf(xp, xs); e > 1e-8 {
			t.Errorf("%s: parallel vs serial solution differs by %g", name, e)
		}
		if berr := par.Stats().Berr; berr > 1e-10 {
			t.Errorf("%s: parallel berr = %g, want near eps", name, berr)
		}
		if !par.Stats().Converged {
			t.Errorf("%s: parallel refinement did not converge", name)
		}
	}
}
