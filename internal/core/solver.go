// Package core implements the GESP driver — the paper's Figure 1
// algorithm end to end:
//
//	(1) row/column equilibration and a row permutation moving large
//	    entries onto the diagonal (weighted bipartite matching),
//	(2) a fill-reducing column ordering applied symmetrically so the
//	    large diagonal survives,
//	(3) LU factorization with NO pivoting, replacing tiny pivots by
//	    sqrt(eps)·||A||,
//	(4) iterative refinement driven by the componentwise backward error.
//
// The solver exposes every step as an option (the paper: "we provide a
// flexible interface so the user is able to turn on or off any of these
// options", needed because e.g. FIDAPM11 prefers no column scaling and
// EX11 prefers no tiny-pivot replacement).
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gesp/internal/dist"
	"gesp/internal/equil"
	"gesp/internal/krylov"
	"gesp/internal/lu"
	"gesp/internal/matching"
	"gesp/internal/ordering"
	"gesp/internal/refine"
	"gesp/internal/resilience"
	"gesp/internal/sparse"
	"gesp/internal/superlu"
	"gesp/internal/symbolic"
)

// Options select which GESP steps run and how.
type Options struct {
	// Equilibrate applies DGEEQU-style row/column scaling (step 1).
	Equilibrate bool
	// RowPermute applies the MC64-style large-diagonal permutation and its
	// dual scalings (step 1).
	RowPermute bool
	// ColScale controls whether the matching's column scaling is applied;
	// the paper found FIDAPM11, JPWH_991 and ORSIRR_1 need it off.
	ColScale bool
	// Ordering is the fill-reducing heuristic of step (2).
	Ordering ordering.Method
	// ReplaceTinyPivot enables step (3)'s perturbation; EX11 and RADFR1
	// need it off per the paper.
	ReplaceTinyPivot bool
	// AggressivePivot replaces tiny pivots by the column max and recovers
	// the original system by Sherman–Morrison–Woodbury (future work §5).
	AggressivePivot bool
	// Refine enables step (4); MaxRefine bounds its iterations (0 = 10).
	Refine    bool
	MaxRefine int
	// ExtraPrecision computes refinement residuals in compensated
	// arithmetic (future work §5).
	ExtraPrecision bool
	// MaxSuper caps supernode width (the paper uses 24).
	MaxSuper int
	// Relax amalgamates supernodes whose patterns are nested within the
	// given slack (the paper's §5: "uniprocessor performance can also be
	// improved by amalgamating small supernodes into large ones").
	Relax int
	// Workers sets the shared-memory parallelism: 0 (or 1) runs the
	// serial scalar engine; >1 runs the DAG-scheduled supernodal
	// factorization (superlu.FactorizeParallel) and level-scheduled
	// triangular solves on that many goroutines. AggressivePivot forces
	// the serial engine regardless — the block kernels do not record the
	// rank-one pivot perturbations SMW recovery needs.
	Workers int
	// Resilience, when non-nil, routes every Solve/SolveBatch through the
	// escalation ladder of internal/resilience: plain GESP refinement
	// first, then (as the backward error dictates) extra-precision
	// refinement, SMW recovery, LU-preconditioned GMRES and finally a
	// partial-pivoting refactorization. It supersedes the Refine/
	// MaxRefine/ExtraPrecision toggles for those calls. The pointed-to
	// Policy is read once at factorization time.
	Resilience *resilience.Policy
}

// DefaultOptions returns the paper's recommended configuration.
func DefaultOptions() Options {
	return Options{
		Equilibrate:      true,
		RowPermute:       true,
		ColScale:         true,
		Ordering:         ordering.MinDegATA,
		ReplaceTinyPivot: true,
		Refine:           true,
	}
}

// StepTimes records wall-clock time per GESP phase (the paper's Figure 6
// compares these against the factorization time).
type StepTimes struct {
	Equil    time.Duration
	RowPerm  time.Duration // "permute large diagonal"
	Order    time.Duration
	Symbolic time.Duration
	Factor   time.Duration
	Solve    time.Duration // triangular solves of the last Solve call
	Residual time.Duration // residual computations during refinement
	Refine   time.Duration // whole refinement loop
	Ferr     time.Duration // forward-error estimation, if requested
}

// Stats describes a completed analysis/factorization.
type Stats struct {
	N           int
	NnzA        int
	NnzLU       int // nnz(L+U), Figure 2's fill metric
	Flops       int64
	TinyPivots  int
	ZeroDiagsIn int     // zero diagonals before any permutation
	DiagLogProd float64 // matching objective: sum log10 |diag|
	NumSuper    int
	AvgSuper    float64
	RecipGrowth float64
	Times       StepTimes
	RefineSteps int
	Berr        float64
	BerrHistory []float64
	Converged   bool

	// CondEst is the last condition estimate computed by Solver.CondEst;
	// CondEstConverged records whether Hager's iteration reached its
	// fixed point (false means the estimate is a weaker lower bound).
	CondEst          float64
	CondEstConverged bool

	// Resilience counters (zero unless Options.Resilience is set):
	// Escalations counts solves that climbed above rung 0, LastRung is
	// the rung the most recent solve ended on, FallbackTime accumulates
	// the wall-clock spent above rung 0.
	Escalations  int
	LastRung     resilience.Rung
	FallbackTime time.Duration

	// Phase-run counters: how many times each analysis phase actually
	// executed while building this Solver. A Solver built by
	// NewWithSymbolic reports zeros for all but FactorRuns — the proof
	// that the pattern-reuse path performs no equilibration, matching,
	// ordering or symbolic work of its own.
	EquilRuns    int
	RowPermRuns  int
	OrderRuns    int
	SymbolicRuns int
	FactorRuns   int
}

// Solver is a factored GESP system ready to solve right-hand sides.
type Solver struct {
	opts Options
	n    int

	rowMap []int     // original row -> row of the factored matrix
	colMap []int     // original col -> col of the factored matrix
	dR, dC []float64 // combined row/column scalings (nil = identity)

	ap  *sparse.CSC // the matrix actually factored: Pc·Pr·DR·A·DC·Pcᵀ
	sym *symbolic.Result
	fac *lu.Factors
	sys refine.System

	// ladder is the escalation engine (nil unless Options.Resilience);
	// it owns scratch, so Solve/SolveBatch with a ladder are not safe
	// for concurrent use — same contract as the stats fields.
	ladder *resilience.Ladder

	patternHash uint64 // structural fingerprint of the ORIGINAL input

	stats Stats
}

// New runs GESP steps (1)–(3) on a: preprocessing, symbolic analysis and
// numeric factorization. The returned Solver is ready for Solve calls.
func New(a *sparse.CSC, opts Options) (*Solver, error) {
	return build(a, opts, true)
}

// NewAnalysis runs only the preprocessing and symbolic analysis (steps
// (1), (2) and the static structure), leaving the numeric factorization
// to a distributed run via DistSolve. This mirrors the paper's setup:
// "the symbolic analysis is not yet parallel, so we run steps (1) and (2)
// independently on each processor" before the parallel numeric phases.
func NewAnalysis(a *sparse.CSC, opts Options) (*Solver, error) {
	return build(a, opts, false)
}

func build(a *sparse.CSC, opts Options, numeric bool) (*Solver, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("core: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	s := &Solver{opts: opts, n: n}
	s.patternHash = sparse.PatternHash(a)
	s.stats.N = n
	s.stats.NnzA = a.Nnz()
	s.stats.ZeroDiagsIn = a.ZeroDiagonals()

	work := a.Clone()
	s.dR = make([]float64, n)
	s.dC = make([]float64, n)
	for i := 0; i < n; i++ {
		s.dR[i] = 1
		s.dC[i] = 1
	}

	// Step (1a): equilibration.
	if opts.Equilibrate {
		s.stats.EquilRuns++
		t0 := time.Now()
		eq, err := equil.Equilibrate(work)
		if err != nil {
			return nil, fmt.Errorf("core: equilibration: %w", err)
		}
		if eq.NeedsScaling() {
			eq.Apply(work)
			for i := 0; i < n; i++ {
				s.dR[i] *= eq.R[i]
				s.dC[i] *= eq.C[i]
			}
		}
		s.stats.Times.Equil = time.Since(t0)
	}

	// Step (1b): permute large entries to the diagonal.
	s.rowMap = sparse.IdentityPerm(n)
	if opts.RowPermute {
		s.stats.RowPermRuns++
		t0 := time.Now()
		mc, err := matching.MaxProductMatching(work)
		if err != nil {
			return nil, fmt.Errorf("core: large-diagonal permutation: %w", err)
		}
		dc := mc.Dc
		if !opts.ColScale {
			dc = nil
		}
		work.ScaleRowsCols(mc.Dr, dc)
		for i := 0; i < n; i++ {
			s.dR[i] *= mc.Dr[i]
			if dc != nil {
				s.dC[i] *= mc.Dc[i]
			}
		}
		work = work.PermuteRows(mc.RowPerm)
		s.rowMap = mc.RowPerm
		s.stats.DiagLogProd = mc.LogProd
		s.stats.Times.RowPerm = time.Since(t0)
	}

	// Step (2): fill-reducing ordering, applied to rows AND columns so the
	// large diagonal stays on the diagonal.
	s.stats.OrderRuns++
	t0 := time.Now()
	pc := ordering.Order(work, opts.Ordering)
	work = work.PermuteSym(pc)
	s.colMap = pc
	s.rowMap = sparse.ComposePerm(pc, s.rowMap)
	s.stats.Times.Order = time.Since(t0)

	// Symbolic analysis (static: possible precisely because there is no
	// dynamic pivoting).
	s.stats.SymbolicRuns++
	t0 = time.Now()
	sym, err := symbolic.Factorize(work, symbolic.Options{MaxSuper: opts.MaxSuper, Relax: opts.Relax})
	if err != nil {
		return nil, fmt.Errorf("core: symbolic: %w", err)
	}
	s.stats.Times.Symbolic = time.Since(t0)
	s.stats.NnzLU = sym.FillLU()
	s.stats.Flops = sym.Flops
	s.stats.NumSuper = sym.NumSupernodes()
	s.stats.AvgSuper = sym.AvgSupernode()

	s.ap, s.sym = work, sym
	if !numeric {
		return s, nil
	}
	if err := s.factorNumeric(); err != nil {
		return nil, err
	}
	return s, nil
}

// factorNumeric runs step (3) — the numeric factorization with static
// pivoting — on s.ap using the static structure s.sym, and wires up the
// triangular-solve system (parallel level schedule, SMW recovery) the
// same way for the fresh-analysis and symbolic-reuse paths. Workers > 1
// selects the DAG-scheduled shared-memory supernodal engine; the
// aggressive-pivot/SMW workflow needs the scalar kernels' PivotMods
// bookkeeping, so it stays serial.
func (s *Solver) factorNumeric() error {
	opts := s.opts
	s.stats.FactorRuns++
	t0 := time.Now()
	luOpts := lu.Options{
		ReplaceTinyPivot: opts.ReplaceTinyPivot,
		Aggressive:       opts.AggressivePivot,
	}
	var fac *lu.Factors
	var err2 error
	if opts.Workers > 1 && !opts.AggressivePivot {
		fac, err2 = superlu.FactorizeParallel(s.ap, s.sym, luOpts, opts.Workers)
	} else {
		fac, err2 = lu.Factorize(s.ap, s.sym, luOpts)
	}
	if err2 != nil {
		return fmt.Errorf("core: factorization: %w", err2)
	}
	s.stats.Times.Factor = time.Since(t0)
	s.stats.TinyPivots = fac.TinyPivots
	s.stats.RecipGrowth = fac.ReciprocalPivotGrowth()

	s.fac = fac
	s.sys = fac
	if opts.Workers > 1 {
		// Refinement-driven triangular solves also run parallel: the
		// level schedule exposes the solve DAG's concurrency the same way
		// sched exposes the factorization's.
		s.sys = &parallelSystem{f: fac, ls: fac.NewLevelSchedule(), workers: opts.Workers}
	}
	if opts.AggressivePivot && fac.TinyPivots > 0 {
		smw, err := refine.NewSMWSolver(fac)
		if err != nil {
			return fmt.Errorf("core: SMW recovery: %w", err)
		}
		s.sys = smw
	}
	if opts.Resilience != nil {
		s.ladder = resilience.NewLadder(s.ap, s.fac, s.sys, *opts.Resilience)
	}
	return nil
}

// NewWithSymbolic builds a Solver for a matrix whose sparsity pattern is
// identical to the one donor was built from, reusing the donor's entire
// analysis — scalings, row permutation, fill-reducing ordering and
// symbolic structure — and running only the numeric factorization. This
// is the serving-layer fast path that static pivoting makes possible:
// the elimination structure depends only on the pattern, so a
// pattern-identical matrix needs no MC64, no ordering and no symbolic
// work (the donor's permutation and scalings are value-based and may be
// mildly stale for the new values; tiny-pivot replacement plus iterative
// refinement absorb that, the same trade SuperLU_DIST makes for its
// SamePattern_SameRowPerm option).
//
// The donor may have been built by New or NewAnalysis; only its analysis
// state is read, never written, so one donor may serve concurrent
// NewWithSymbolic calls. Pattern identity is checked via
// sparse.PatternHash.
func NewWithSymbolic(a *sparse.CSC, donor *Solver) (*Solver, error) {
	if donor == nil || donor.sym == nil {
		return nil, fmt.Errorf("core: NewWithSymbolic: donor holds no symbolic analysis")
	}
	if a.Rows != donor.n || a.Cols != donor.n {
		return nil, fmt.Errorf("core: NewWithSymbolic: matrix is %dx%d, donor analyzed n=%d", a.Rows, a.Cols, donor.n)
	}
	if h := sparse.PatternHash(a); h != donor.patternHash {
		return nil, fmt.Errorf("core: NewWithSymbolic: pattern fingerprint %#x does not match donor's %#x", h, donor.patternHash)
	}
	s := &Solver{
		opts:        donor.opts,
		n:           donor.n,
		rowMap:      donor.rowMap,
		colMap:      donor.colMap,
		dR:          donor.dR,
		dC:          donor.dC,
		sym:         donor.sym,
		patternHash: donor.patternHash,
	}
	s.stats.N = s.n
	s.stats.NnzA = a.Nnz()
	s.stats.ZeroDiagsIn = a.ZeroDiagonals()
	s.stats.NnzLU = s.sym.FillLU()
	s.stats.Flops = s.sym.Flops
	s.stats.NumSuper = s.sym.NumSupernodes()
	s.stats.AvgSuper = s.sym.AvgSupernode()

	// Rebuild the factored matrix Pc·Pr·DR·A·DC·Pcᵀ from the new values
	// under the donor's transformations: pure data movement, no analysis.
	work := a.Clone()
	work.ScaleRowsCols(s.dR, s.dC)
	s.ap = work.PermuteRows(s.rowMap).PermuteCols(s.colMap)
	if err := s.factorNumeric(); err != nil {
		return nil, err
	}
	return s, nil
}

// parallelSystem runs the level-scheduled triangular solves on a worker
// pool; transpose solves (condition estimation only) stay serial.
type parallelSystem struct {
	f       *lu.Factors
	ls      *lu.LevelSchedule
	workers int
}

func (p *parallelSystem) Solve(x []float64)  { p.f.ParallelSolve(p.ls, x, p.workers) }
func (p *parallelSystem) SolveT(x []float64) { p.f.SolveT(x) }

// DistSolve factors and solves on a simulated distributed-memory machine
// (the paper's Section 3). The preprocessing and symbolic analysis of
// this Solver are reused; the numeric factorization and both triangular
// solves run distributed. The returned solution is in original
// coordinates; the dist.Result carries the simulated machine statistics
// that Tables 3–5 report.
//
// Step (4) refinement: when this Solver also holds serial factors (built
// with New rather than NewAnalysis) and Refine is enabled, the
// distributed solution is refined serially, correcting any tiny-pivot
// perturbations. Otherwise the componentwise backward error of the raw
// distributed solution is still measured and recorded in Stats.
func (s *Solver) DistSolve(b []float64, dopts dist.Options) ([]float64, *dist.Result, error) {
	if len(b) != s.n {
		return nil, nil, fmt.Errorf("core: right-hand side length %d, want %d", len(b), s.n)
	}
	dopts.ReplaceTinyPivot = dopts.ReplaceTinyPivot || s.opts.ReplaceTinyPivot
	bh := make([]float64, s.n)
	for i := 0; i < s.n; i++ {
		bh[s.rowMap[i]] = s.dR[i] * b[i]
	}
	res, err := dist.Solve(s.ap, s.sym, bh, dopts)
	if err != nil {
		return nil, res, err
	}
	y := append([]float64(nil), res.X...)
	if s.opts.Refine && s.sys != nil {
		st := refine.Refine(s.ap, s.sys, y, bh, refine.Options{
			MaxIter:        s.opts.MaxRefine,
			ExtraPrecision: s.opts.ExtraPrecision,
		})
		s.stats.RefineSteps = st.Steps
		s.stats.Berr = st.FinalBerr
		s.stats.BerrHistory = st.Berrs
		s.stats.Converged = st.Converged
	} else {
		s.stats.RefineSteps = 0
		s.stats.Berr = refine.Berr(s.ap, y, bh)
		s.stats.BerrHistory = []float64{s.stats.Berr}
		s.stats.Converged = s.stats.Berr <= lu.Eps
	}
	x := make([]float64, s.n)
	for j := 0; j < s.n; j++ {
		x[j] = s.dC[j] * y[s.colMap[j]]
	}
	return x, res, nil
}

// Solve computes x with A·x = b (original coordinates), running step (4)
// refinement — or the full resilience ladder — when enabled. It may be
// called repeatedly with different right-hand sides.
func (s *Solver) Solve(b []float64) ([]float64, error) {
	return s.SolveCtx(context.Background(), b)
}

// SolveCtx is Solve with a context: with a resilience ladder the climb
// honors ctx cancellation and deadlines between refinement iterations
// and inside the Krylov rung; without one the context is only checked on
// entry. On ladder exhaustion the best iterate found is returned
// alongside the error (errors.Is(err, resilience.ErrUnrecovered)).
func (s *Solver) SolveCtx(ctx context.Context, b []float64) ([]float64, error) {
	if len(b) != s.n {
		return nil, fmt.Errorf("core: right-hand side length %d, want %d", len(b), s.n)
	}
	if s.sys == nil {
		return nil, fmt.Errorf("core: Solver built with NewAnalysis holds no numeric factors; use DistSolve or New")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// b̂[rowMap[i]] = dR[i]·b[i]; solve Â·ŷ = b̂; x[j] = dC[j]·ŷ[colMap[j]].
	bh := make([]float64, s.n)
	for i := 0; i < s.n; i++ {
		bh[s.rowMap[i]] = s.dR[i] * b[i]
	}

	if s.ladder != nil {
		y := make([]float64, s.n)
		t0 := time.Now()
		tr, err := s.ladder.Solve(ctx, y, bh)
		s.stats.Times.Solve = time.Since(t0)
		s.recordEscalation(tr)
		if err != nil {
			if tr.Converged || errorsIsUnrecovered(err) {
				// Best-effort iterate travels with the error.
				return s.unscale(y), err
			}
			return nil, err
		}
		return s.unscale(y), nil
	}

	t0 := time.Now()
	y := append([]float64(nil), bh...)
	s.sys.Solve(y)
	s.stats.Times.Solve = time.Since(t0)

	if s.opts.Refine {
		t0 = time.Now()
		st := refine.Refine(s.ap, s.sys, y, bh, refine.Options{
			MaxIter:        s.opts.MaxRefine,
			ExtraPrecision: s.opts.ExtraPrecision,
		})
		s.stats.Times.Refine = time.Since(t0)
		s.stats.RefineSteps = st.Steps
		s.stats.Berr = st.FinalBerr
		s.stats.BerrHistory = st.Berrs
		s.stats.Converged = st.Converged
	} else {
		s.stats.Berr = refine.Berr(s.ap, y, bh)
		s.stats.Converged = s.stats.Berr <= lu.Eps
	}

	return s.unscale(y), nil
}

// unscale maps a solution from the solver's internal coordinates back to
// the original ones: x[j] = dC[j]·ŷ[colMap[j]].
func (s *Solver) unscale(y []float64) []float64 {
	x := make([]float64, s.n)
	for j := 0; j < s.n; j++ {
		x[j] = s.dC[j] * y[s.colMap[j]]
	}
	return x
}

// recordEscalation folds a ladder trace into the solve statistics.
func (s *Solver) recordEscalation(tr *resilience.Escalation) {
	iters := 0
	for _, st := range tr.Steps {
		iters += st.Iterations
	}
	s.stats.RefineSteps = iters
	s.stats.Berr = tr.FinalBerr
	s.stats.Converged = tr.Converged
	s.stats.LastRung = tr.FinalRung
	if tr.Escalated() {
		s.stats.Escalations++
		s.stats.FallbackTime += tr.FallbackCost()
	}
	s.stats.Times.Refine = tr.Total
}

func errorsIsUnrecovered(err error) bool {
	return errors.Is(err, resilience.ErrUnrecovered)
}

// Escalation returns the trace of the most recent resilient solve (nil
// without Options.Resilience). The pointee is overwritten by the next
// solve on this Solver.
func (s *Solver) Escalation() *resilience.Escalation {
	if s.ladder == nil {
		return nil
	}
	return s.ladder.LastTrace()
}

// SolveIterative solves A·x = b with GMRES preconditioned by the
// existing LU factors, never touching refinement or the ladder. This is
// the serving layer's load-shedding path: unlike Solve/SolveBatch it is
// safe to call concurrently with batched solves on the same Solver (it
// allocates its own workspace and records no statistics), trading the
// direct path's guarantees for bounded, cancellable work under overload.
func (s *Solver) SolveIterative(ctx context.Context, b []float64, opts krylov.Options) ([]float64, krylov.Stats, error) {
	if len(b) != s.n {
		return nil, krylov.Stats{}, fmt.Errorf("core: right-hand side length %d, want %d", len(b), s.n)
	}
	if s.fac == nil {
		return nil, krylov.Stats{}, fmt.Errorf("core: Solver holds no numeric factors; use New or NewWithSymbolic")
	}
	bh := make([]float64, s.n)
	for i := 0; i < s.n; i++ {
		bh[s.rowMap[i]] = s.dR[i] * b[i]
	}
	prev := opts.Cancel
	opts.Cancel = func() bool {
		return ctx.Err() != nil || (prev != nil && prev())
	}
	y := make([]float64, s.n)
	_, st := krylov.GMRES(s.ap, facPreconditioner{s.fac}, y, bh, opts)
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	if !st.Converged {
		return s.unscale(y), st, fmt.Errorf("core: iterative solve stopped at relative residual %.3e after %d iterations", st.Residual, st.Iterations)
	}
	return s.unscale(y), st, nil
}

// facPreconditioner adapts the LU factors to krylov.Preconditioner.
// Factors.Solve only reads factor data and mutates its argument, so the
// adapter is safe for concurrent use with distinct vectors.
type facPreconditioner struct{ f *lu.Factors }

func (p facPreconditioner) Apply(x []float64) { p.f.Solve(x) }

// SolveBatch solves A·xᵣ = bᵣ for every right-hand side in bs (original
// coordinates) through one column-blocked multi-RHS triangular sweep
// (lu.Factors.SolveMulti): the factors are walked once per block of
// right-hand sides instead of once per vector, which is where serving
// throughput comes from. When refinement is enabled it runs per RHS
// after the batched sweep — refinement's residual/solve iterations are
// inherently per-vector — and the recorded Berr/RefineSteps stats are
// those of the LAST vector in the batch.
//
// SolveBatch is not safe for concurrent use on one Solver (it mutates
// solve statistics); the serving layer serializes batches per factor.
func (s *Solver) SolveBatch(bs [][]float64) ([][]float64, error) {
	xs, errs, err := s.SolveBatchCtx(context.Background(), bs)
	if err == nil {
		for _, e := range errs {
			if e != nil {
				err = e
				break
			}
		}
	}
	return xs, err
}

// SolveBatchCtx is SolveBatch with a context and per-vector error
// reporting. With a resilience ladder, each right-hand side is
// individually escalated after the shared triangular sweep; a vector
// whose ladder fails keeps its best-effort iterate and its error lands
// in errs[r] (errs is nil when every vector succeeded), so one poisoned
// right-hand side cannot fail its batch-mates. The third result is a
// batch-level failure: validation or context cancellation.
func (s *Solver) SolveBatchCtx(ctx context.Context, bs [][]float64) (xs [][]float64, errs []error, err error) {
	if s.fac == nil {
		return nil, nil, fmt.Errorf("core: Solver holds no numeric factors; use New or NewWithSymbolic")
	}
	k := len(bs)
	if k == 0 {
		return nil, nil, nil
	}
	for r, b := range bs {
		if len(b) != s.n {
			return nil, nil, fmt.Errorf("core: right-hand side %d has length %d, want %d", r, len(b), s.n)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	// Pack b̂ᵣ[rowMap[i]] = dR[i]·bᵣ[i] column-major, one sweep, unpack
	// xᵣ[j] = dC[j]·ŷᵣ[colMap[j]].
	t0 := time.Now()
	packed := make([]float64, s.n*k)
	for r, b := range bs {
		seg := packed[r*s.n : (r+1)*s.n]
		for i := 0; i < s.n; i++ {
			seg[s.rowMap[i]] = s.dR[i] * b[i]
		}
	}
	refining := s.opts.Refine || s.ladder != nil
	var bh []float64
	if refining {
		bh = append([]float64(nil), packed...)
	}
	s.fac.SolveMulti(packed, k)
	s.stats.Times.Solve = time.Since(t0)

	if s.ladder != nil {
		t0 = time.Now()
		for r := 0; r < k; r++ {
			tr, rerr := s.ladder.Refine(ctx, packed[r*s.n:(r+1)*s.n], bh[r*s.n:(r+1)*s.n])
			s.recordEscalation(tr)
			if rerr != nil {
				if ctx.Err() != nil {
					return nil, nil, rerr
				}
				if errs == nil {
					errs = make([]error, k)
				}
				errs[r] = rerr
			}
		}
		s.stats.Times.Refine = time.Since(t0)
	} else if s.opts.Refine {
		t0 = time.Now()
		for r := 0; r < k; r++ {
			st := refine.Refine(s.ap, s.sys, packed[r*s.n:(r+1)*s.n], bh[r*s.n:(r+1)*s.n], refine.Options{
				MaxIter:        s.opts.MaxRefine,
				ExtraPrecision: s.opts.ExtraPrecision,
			})
			s.stats.RefineSteps = st.Steps
			s.stats.Berr = st.FinalBerr
			s.stats.BerrHistory = st.Berrs
			s.stats.Converged = st.Converged
		}
		s.stats.Times.Refine = time.Since(t0)
	}

	xs = make([][]float64, k)
	for r := 0; r < k; r++ {
		xs[r] = s.unscale(packed[r*s.n : (r+1)*s.n])
	}
	return xs, errs, nil
}

// Stats returns the accumulated statistics (analysis stats after New,
// solve/refinement stats after Solve).
func (s *Solver) Stats() Stats { return s.stats }

// PatternHash returns the structural fingerprint of the ORIGINAL input
// matrix (sparse.PatternHash), the key under which this Solver's
// analysis may be reused by NewWithSymbolic.
func (s *Solver) PatternHash() uint64 { return s.patternHash }

// PermutedMatrix exposes the matrix that was actually factored, in the
// solver's internal coordinates; distributed drivers and tests use it.
func (s *Solver) PermutedMatrix() *sparse.CSC { return s.ap }

// Symbolic exposes the static elimination structure.
func (s *Solver) Symbolic() *symbolic.Result { return s.sym }

// Factors exposes the numeric factors.
func (s *Solver) Factors() *lu.Factors { return s.fac }

// CondEst estimates the 1-norm condition number of the factored
// (permuted, scaled) matrix, recording the estimate and Hager
// convergence flag in Stats.
func (s *Solver) CondEst() float64 {
	est, ok := refine.Cond1Est(s.ap, s.sys)
	s.stats.CondEst = est
	s.stats.CondEstConverged = ok
	return est
}

// ForwardErrorBound estimates the componentwise forward error of the
// solution x for right-hand side b, both in ORIGINAL coordinates. This is
// the expensive optional diagnostic of the paper's Figure 6.
func (s *Solver) ForwardErrorBound(x, b []float64) float64 {
	t0 := time.Now()
	defer func() { s.stats.Times.Ferr = time.Since(t0) }()
	bh := make([]float64, s.n)
	yh := make([]float64, s.n)
	for i := 0; i < s.n; i++ {
		bh[s.rowMap[i]] = s.dR[i] * b[i]
	}
	for j := 0; j < s.n; j++ {
		yh[s.colMap[j]] = x[j] / s.dC[j]
	}
	return refine.ForwardErrorBound(s.ap, s.sys, yh, bh)
}
