package core_test

import (
	"fmt"

	"gesp/internal/core"
	"gesp/internal/dist"
	"gesp/internal/sparse"
)

// Example shows the complete GESP workflow: build a sparse system with a
// zero diagonal entry (fatal for plain no-pivot elimination), factor it
// once, and solve.
func Example() {
	// | 0  2  1 |       x_true = (1, 2, 3)
	// | 3  0  1 | x = b
	// | 1  1  4 |
	t := sparse.NewTriplet(3, 3)
	t.Append(0, 1, 2)
	t.Append(0, 2, 1)
	t.Append(1, 0, 3)
	t.Append(1, 2, 1)
	t.Append(2, 0, 1)
	t.Append(2, 1, 1)
	t.Append(2, 2, 4)
	a := t.ToCSC()

	solver, err := core.New(a, core.DefaultOptions())
	if err != nil {
		panic(err)
	}
	b := []float64{7, 6, 15}
	x, err := solver.Solve(b)
	if err != nil {
		panic(err)
	}
	fmt.Printf("x = [%.0f %.0f %.0f]\n", x[0], x[1], x[2])
	fmt.Printf("converged = %v\n", solver.Stats().Converged)
	// Output:
	// x = [1 2 3]
	// converged = true
}

// ExampleSolver_DistSolve runs the same solve on a simulated
// distributed-memory machine (the paper's Section 3 algorithms).
func ExampleSolver_DistSolve() {
	t := sparse.NewTriplet(4, 4)
	for i := 0; i < 4; i++ {
		t.Append(i, i, 4)
		if i > 0 {
			t.Append(i, i-1, -1)
			t.Append(i-1, i, -1)
		}
	}
	solver, err := core.NewAnalysis(t.ToCSC(), core.DefaultOptions())
	if err != nil {
		panic(err)
	}
	b := []float64{3, 2, 2, 3} // A·(1,1,1,1)
	x, res, err := solver.DistSolve(b, dist.Options{Procs: 4, ReplaceTinyPivot: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("x = [%.0f %.0f %.0f %.0f] on a %s grid\n", x[0], x[1], x[2], x[3], res.Grid)
	// Output:
	// x = [1 1 1 1] on a 2x2 grid
}
