package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"gesp/internal/faultsim"
	"gesp/internal/resilience"
)

// TestResilienceHappyPathStaysOnRungZero runs a healthy system through
// the full pipeline with a ladder attached: the solve must finish on the
// static rung with no escalations charged to the stats.
func TestResilienceHappyPathStaysOnRungZero(t *testing.T) {
	inj := faultsim.New(11)
	a := inj.WellConditioned(80, 0.08)
	opts := DefaultOptions()
	opts.Resilience = &resilience.Policy{}
	s, err := New(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := onesSolution(a.Rows)
	b := make([]float64, a.Rows)
	a.MatVec(b, want)
	x, err := s.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if e := math.Abs(x[i] - want[i]); e > 1e-8 {
			t.Fatalf("x[%d] off by %g", i, e)
		}
	}
	st := s.Stats()
	if !st.Converged || st.LastRung != resilience.RungStatic || st.Escalations != 0 {
		t.Fatalf("happy path: converged=%v rung=%v escalations=%d", st.Converged, st.LastRung, st.Escalations)
	}
	tr := s.Escalation()
	if tr == nil || tr.FinalRung != resilience.RungStatic || tr.Escalated() {
		t.Fatalf("trace %+v, want un-escalated static solve", tr)
	}
}

// TestResilienceEscalationRecordedInStats corrupts the cached factors
// after factorization; the ladder must detect the non-finite numerics,
// climb to the GEPP rung, recover, and charge the escalation to the
// solver statistics.
func TestResilienceEscalationRecordedInStats(t *testing.T) {
	inj := faultsim.New(12)
	a := inj.WellConditioned(60, 0.1)
	opts := DefaultOptions()
	opts.Resilience = &resilience.Policy{}
	s, err := New(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	inj.CorruptFactors(s.Factors(), 2)

	want := onesSolution(a.Rows)
	b := make([]float64, a.Rows)
	a.MatVec(b, want)
	x, err := s.Solve(b)
	if err != nil {
		t.Fatalf("ladder did not recover from corrupt factors: %v", err)
	}
	for i := range x {
		if e := math.Abs(x[i] - want[i]); e > 1e-6 {
			t.Fatalf("recovered x[%d] off by %g", i, e)
		}
	}
	st := s.Stats()
	if st.LastRung != resilience.RungGEPP {
		t.Fatalf("LastRung = %v, want gepp", st.LastRung)
	}
	if st.Escalations == 0 || st.FallbackTime <= 0 {
		t.Fatalf("escalation not recorded: escalations=%d fallback=%v", st.Escalations, st.FallbackTime)
	}
	if !st.Converged || st.Berr > math.Sqrt(2e-16) {
		t.Fatalf("recovery berr %g converged=%v", st.Berr, st.Converged)
	}
}

// TestResilienceBatchIsolatesPoisonedVector batches two healthy
// right-hand sides around a NaN-poisoned one: the poisoned vector must
// fail alone with ErrNonFiniteRHS while its batch-mates solve cleanly.
func TestResilienceBatchIsolatesPoisonedVector(t *testing.T) {
	inj := faultsim.New(13)
	a := inj.WellConditioned(50, 0.1)
	opts := DefaultOptions()
	opts.Resilience = &resilience.Policy{}
	s, err := New(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := onesSolution(a.Rows)
	good := make([]float64, a.Rows)
	a.MatVec(good, want)
	bad := append([]float64(nil), good...)
	inj.PoisonRHS(bad, 1, true)

	bs := [][]float64{good, bad, append([]float64(nil), good...)}
	xs, errs, err := s.SolveBatchCtx(context.Background(), bs)
	if err != nil {
		t.Fatalf("batch-level failure: %v", err)
	}
	if errs == nil || !errors.Is(errs[1], resilience.ErrNonFiniteRHS) {
		t.Fatalf("poisoned vector error = %v, want ErrNonFiniteRHS", errs)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy batch-mates failed: %v, %v", errs[0], errs[2])
	}
	for _, r := range []int{0, 2} {
		for i := range xs[r] {
			if e := math.Abs(xs[r][i] - want[i]); e > 1e-8 {
				t.Fatalf("batch-mate %d entry %d off by %g", r, i, e)
			}
		}
	}
}

// TestResilienceSolveHonorsContext cancels before the solve; the ladder
// path must surface the context error rather than solving on.
func TestResilienceSolveHonorsContext(t *testing.T) {
	inj := faultsim.New(14)
	a := inj.WellConditioned(40, 0.1)
	opts := DefaultOptions()
	opts.Resilience = &resilience.Policy{}
	s, err := New(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	b[0] = 1
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SolveCtx(ctx, b); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestCondEstRecordsConvergence checks the satellite wiring: CondEst
// must stash both the estimate and the estimator's convergence flag.
func TestCondEstRecordsConvergence(t *testing.T) {
	inj := faultsim.New(15)
	a := inj.WellConditioned(40, 0.1)
	s, err := New(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	est := s.CondEst()
	st := s.Stats()
	if est <= 0 || st.CondEst != est {
		t.Fatalf("CondEst %g not recorded in stats (%g)", est, st.CondEst)
	}
	if !st.CondEstConverged {
		t.Fatal("Hager estimator did not converge on a small well-conditioned system")
	}
}
