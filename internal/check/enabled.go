//go:build gespcheck

package check

// Enabled reports whether the checked build is active. With the
// gespcheck tag every guarded validation in sparse, symbolic and sched
// runs; see the package documentation.
const Enabled = true
