// Package check is the runtime invariant layer of the static-pivot
// pipeline: structural validators for the data structures whose
// correctness the whole GESP premise rests on — CSC columns, supernode
// partitions, elimination trees, and the scheduler's task DAG.
//
// The validators themselves are ordinary functions, always compiled and
// directly testable. What the gespcheck build tag controls is the
// constant Enabled: call sites throughout sparse, symbolic and sched
// guard their validation with
//
//	if check.Enabled {
//		check.Must(x.Check())
//	}
//
// so a normal build constant-folds the guard away to a no-op, while
//
//	go test -tags gespcheck ./...
//
// runs the entire golden-test and fuzz suite with every structural
// invariant re-verified at the pipeline's phase boundaries.
package check

import "fmt"

// Must panics with a gespcheck-prefixed message when err is non-nil.
// The panic is deliberate: a broken structural invariant means the
// static schedule no longer describes the computation, and continuing
// would produce silently wrong numerics or a data race.
func Must(err error) {
	if err != nil {
		panic("gespcheck: " + err.Error())
	}
}

// Partition validates a pointer array of the CSC/supernode kind:
// ptr[0] == 0, nondecreasing, and ptr[len(ptr)-1] == total.
func Partition(name string, ptr []int, total int) error {
	if len(ptr) == 0 {
		return fmt.Errorf("%s: empty pointer array", name)
	}
	if ptr[0] != 0 {
		return fmt.Errorf("%s: first pointer is %d, want 0", name, ptr[0])
	}
	for i := 1; i < len(ptr); i++ {
		if ptr[i] < ptr[i-1] {
			return fmt.Errorf("%s: pointers not monotone at %d (%d < %d)", name, i, ptr[i], ptr[i-1])
		}
	}
	if last := ptr[len(ptr)-1]; last != total {
		return fmt.Errorf("%s: last pointer is %d, want %d", name, last, total)
	}
	return nil
}

// StrictlyIncreasingInBounds validates an index segment that must be
// strictly ascending with every element in [lo, hi).
func StrictlyIncreasingInBounds(name string, x []int, lo, hi int) error {
	prev := lo - 1
	for q, v := range x {
		if v < lo || v >= hi {
			return fmt.Errorf("%s: index %d out of range [%d,%d)", name, v, lo, hi)
		}
		if v <= prev {
			return fmt.Errorf("%s: unsorted or duplicate index %d at position %d", name, v, q)
		}
		prev = v
	}
	return nil
}

// AcyclicDAG verifies by Kahn's algorithm that the directed graph over
// nodes 0..n-1 given by succs has no cycle: every node must be
// processable once all its predecessors are.
func AcyclicDAG(n int, succs func(int) []int) error {
	indeg := make([]int, n)
	for u := 0; u < n; u++ {
		for _, v := range succs(u) {
			if v < 0 || v >= n {
				return fmt.Errorf("dag: successor %d of node %d out of range [0,%d)", v, u, n)
			}
			indeg[v]++
		}
	}
	queue := make([]int, 0, n)
	for u := 0; u < n; u++ {
		if indeg[u] == 0 {
			queue = append(queue, u)
		}
	}
	processed := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		processed++
		for _, v := range succs(u) {
			if indeg[v]--; indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if processed != n {
		return fmt.Errorf("dag: cycle detected (%d of %d nodes unreachable by topological order)", n-processed, n)
	}
	return nil
}
