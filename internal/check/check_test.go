package check

import (
	"strings"
	"testing"
)

func TestPartition(t *testing.T) {
	if err := Partition("p", []int{0, 2, 2, 5}, 5); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
	cases := []struct {
		ptr   []int
		total int
		want  string
	}{
		{[]int{}, 0, "empty"},
		{[]int{1, 2}, 2, "want 0"},
		{[]int{0, 3, 2}, 2, "not monotone"},
		{[]int{0, 2, 4}, 5, "want 5"},
	}
	for _, c := range cases {
		err := Partition("p", c.ptr, c.total)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Partition(%v, %d) = %v, want error containing %q", c.ptr, c.total, err, c.want)
		}
	}
}

func TestStrictlyIncreasingInBounds(t *testing.T) {
	if err := StrictlyIncreasingInBounds("x", []int{1, 3, 7}, 0, 8); err != nil {
		t.Errorf("valid segment rejected: %v", err)
	}
	if err := StrictlyIncreasingInBounds("x", []int{1, 1, 2}, 0, 8); err == nil {
		t.Error("duplicate index accepted")
	}
	if err := StrictlyIncreasingInBounds("x", []int{3, 2}, 0, 8); err == nil {
		t.Error("unsorted segment accepted")
	}
	if err := StrictlyIncreasingInBounds("x", []int{8}, 0, 8); err == nil {
		t.Error("out-of-bounds index accepted")
	}
}

func TestAcyclicDAG(t *testing.T) {
	chain := [][]int{{1}, {2}, {}}
	if err := AcyclicDAG(3, func(u int) []int { return chain[u] }); err != nil {
		t.Errorf("chain rejected: %v", err)
	}
	cycle := [][]int{{1}, {2}, {0}}
	if err := AcyclicDAG(3, func(u int) []int { return cycle[u] }); err == nil {
		t.Error("3-cycle accepted")
	}
	selfLoop := [][]int{{0}}
	if err := AcyclicDAG(1, func(u int) []int { return selfLoop[u] }); err == nil {
		t.Error("self-loop accepted")
	}
	bad := [][]int{{5}}
	if err := AcyclicDAG(1, func(u int) []int { return bad[u] }); err == nil {
		t.Error("out-of-range successor accepted")
	}
}

func TestMust(t *testing.T) {
	Must(nil) // must not panic
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "gespcheck:") {
			t.Errorf("Must(err) panic = %v, want gespcheck prefix", r)
		}
	}()
	Must(Partition("p", []int{1}, 1))
}
