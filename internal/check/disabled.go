//go:build !gespcheck

package check

// Enabled is false in normal builds: every `if check.Enabled` guard is
// constant-folded away, so the invariant layer costs nothing.
const Enabled = false
