package mpisim

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestPingPongClockSemantics(t *testing.T) {
	model := CostModel{Latency: 10e-6, CostPerByte: 1e-9, CostPerFlop: 1e-9, SendOverhead: 1e-6}
	w := NewWorld(2, model)
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Compute(1000) // 1µs
			r.Send(1, 7, "hello", 1000)
		case 1:
			got := r.Recv(0, 7)
			if got.(string) != "hello" {
				t.Errorf("payload = %v", got)
			}
		}
	})
	// Rank 1's clock: sender clock at send = 1µs(compute) + 1µs(overhead)
	// = 2µs; arrival = 2µs + 10µs + 1µs(bytes) = 13µs.
	r1 := w.ranks[1]
	want := 13e-6
	if math.Abs(r1.Clock()-want) > 1e-12 {
		t.Errorf("receiver clock = %g, want %g", r1.Clock(), want)
	}
	if math.Abs(r1.CommTime()-want) > 1e-12 {
		t.Errorf("receiver comm time = %g, want %g (it only waited)", r1.CommTime(), want)
	}
	if w.ranks[0].MsgsSent() != 1 || w.ranks[0].BytesSent() != 1000 {
		t.Error("sender counters wrong")
	}
}

func TestFIFOOrderPerSourceTag(t *testing.T) {
	w := NewWorld(2, T3E900())
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			for i := 0; i < 100; i++ {
				r.Send(1, 3, i, 8)
			}
		} else {
			for i := 0; i < 100; i++ {
				if got := r.Recv(0, 3).(int); got != i {
					t.Errorf("message %d arrived out of order: %d", i, got)
					return
				}
			}
		}
	})
}

func TestRecvBlocksUntilSend(t *testing.T) {
	w := NewWorld(2, T3E900())
	var order int64
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			// Let rank 1 block first in real time; virtual semantics are
			// unaffected either way.
			for i := 0; i < 1000; i++ {
				r.Compute(1)
			}
			atomic.StoreInt64(&order, 1)
			r.Send(1, 1, 42, 8)
		} else {
			v := r.Recv(0, 1).(int)
			if v != 42 {
				t.Errorf("got %d", v)
			}
			if atomic.LoadInt64(&order) != 1 {
				t.Error("receive completed before send")
			}
		}
	})
}

func TestDeterministicSimulatedTime(t *testing.T) {
	// The same communication pattern must give the same virtual time on
	// every run regardless of real scheduling.
	run := func() float64 {
		w := NewWorld(4, T3E900())
		w.Run(func(r *Rank) {
			n := r.Size()
			// Ring: everyone sends right, receives from left, 50 rounds.
			for round := 0; round < 50; round++ {
				r.Compute(int64(1000 * (r.ID() + 1)))
				r.Send((r.ID()+1)%n, round, r.ID(), 800)
				r.Recv((r.ID()+n-1)%n, round)
			}
		})
		return w.GatherStats().Time
	}
	t1 := run()
	for i := 0; i < 5; i++ {
		if t2 := run(); t2 != t1 {
			t.Fatalf("simulated time varies across runs: %g vs %g", t1, t2)
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	w := NewWorld(3, T3E900())
	w.Run(func(r *Rank) {
		r.Compute(int64(1e6 * (r.ID() + 1))) // ranks at different times
		r.Barrier()
		want := 3e6*T3E900().CostPerFlop + T3E900().Latency
		if math.Abs(r.Clock()-want) > 1e-9 {
			t.Errorf("rank %d clock after barrier = %g, want %g", r.ID(), r.Clock(), want)
		}
	})
}

func TestRecvAnyPicksEarliestArrival(t *testing.T) {
	w := NewWorld(3, T3E900())
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Compute(100000) // late sender
			r.Send(2, 5, "late", 100)
		case 1:
			r.Send(2, 6, "early", 100)
		case 2:
			// Ensure both are queued before receiving: real-time sleep via
			// barrier-free spin is racy, so receive twice and check the
			// second call can never return an earlier arrival than the
			// first when both were queued.
			src1, _, _ := r.RecvAny()
			src2, _, _ := r.RecvAny()
			if src1 == src2 {
				t.Error("same source received twice")
			}
		}
	})
}

func TestGatherStats(t *testing.T) {
	w := NewWorld(4, T3E900())
	w.Run(func(r *Rank) {
		r.Compute(1000000)
		if r.ID() == 0 {
			r.Compute(3000000) // imbalance
		}
		r.Barrier()
	})
	s := w.GatherStats()
	if s.TotalFlops != 7000000 {
		t.Errorf("TotalFlops = %d", s.TotalFlops)
	}
	// B = avg/max = (7e6/4)/4e6 = 0.4375.
	if math.Abs(s.LoadBalance-0.4375) > 1e-12 {
		t.Errorf("LoadBalance = %g, want 0.4375", s.LoadBalance)
	}
	if s.Time <= 0 || s.Mflops() <= 0 {
		t.Error("time/Mflops not positive")
	}
	if s.CommFraction <= 0 || s.CommFraction >= 1 {
		t.Errorf("CommFraction = %g, want in (0,1) (barrier waits count)", s.CommFraction)
	}
}

func TestGridMath(t *testing.T) {
	g := NewGrid(8)
	if g.PRow*g.PCol != 8 {
		t.Fatalf("grid %v does not cover 8 ranks", g)
	}
	if g.PRow > g.PCol {
		t.Errorf("grid %v not row-minor", g)
	}
	seen := map[int]bool{}
	for pr := 0; pr < g.PRow; pr++ {
		for pc := 0; pc < g.PCol; pc++ {
			rank := g.RankOf(pr, pc)
			if seen[rank] {
				t.Fatalf("rank %d duplicated", rank)
			}
			seen[rank] = true
			gr, gc := g.Coords(rank)
			if gr != pr || gc != pc {
				t.Fatalf("Coords(RankOf(%d,%d)) = (%d,%d)", pr, pc, gr, gc)
			}
		}
	}
	// Block-cyclic ownership: block (I,J) at (I mod PRow, J mod PCol).
	if own := g.OwnerOfBlock(5, 7); own != g.RankOf(5%g.PRow, 7%g.PCol) {
		t.Errorf("OwnerOfBlock = %d", own)
	}
	// Primes give 1×p grids.
	g7 := NewGrid(7)
	if g7.PRow != 1 || g7.PCol != 7 {
		t.Errorf("NewGrid(7) = %v", g7)
	}
	// 512 gives 16x32 (the paper's T3E runs used power-of-two grids).
	g512 := NewGrid(512)
	if g512.PRow != 16 || g512.PCol != 32 {
		t.Errorf("NewGrid(512) = %v, want 16x32", g512)
	}
}

func TestProbe(t *testing.T) {
	w := NewWorld(2, T3E900())
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 9, 1, 8)
			r.Send(1, 9, 2, 8)
		} else {
			r.Recv(0, 9)
			// After one receive, one message may or may not have arrived
			// in real time yet; drain deterministically.
			r.Recv(0, 9)
			if r.Probe(0, 9) {
				t.Error("Probe found a message after draining")
			}
		}
	})
}

func TestSendToSelfPanics(t *testing.T) {
	w := NewWorld(1, T3E900())
	w.Run(func(r *Rank) {
		defer func() {
			if recover() == nil {
				t.Error("send to self did not panic")
			}
		}()
		r.Send(0, 1, nil, 0)
	})
}

func TestBcast(t *testing.T) {
	w := NewWorld(5, T3E900())
	w.Run(func(r *Rank) {
		got := r.Bcast(2, r.ID()*100, 8)
		if got.(int) != 200 {
			t.Errorf("rank %d: Bcast = %v, want 200", r.ID(), got)
		}
	})
}

func TestAllreduce(t *testing.T) {
	w := NewWorld(6, T3E900())
	w.Run(func(r *Rank) {
		sum := r.AllreduceSum(float64(r.ID()))
		if sum != 15 {
			t.Errorf("rank %d: sum = %g, want 15", r.ID(), sum)
		}
		max := r.AllreduceMax(float64(r.ID() * r.ID()))
		if max != 25 {
			t.Errorf("rank %d: max = %g, want 25", r.ID(), max)
		}
	})
}
