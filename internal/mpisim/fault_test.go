package mpisim

import (
	"errors"
	"testing"
	"time"
)

// Tests for the chaos layer and the watchdog supervisor. Every plan
// arms the wall backstop so a supervisor bug fails the test instead of
// hanging it (go test's own -timeout is the second backstop).

const testBackstop = 10 * time.Second

func planWith(f func(p *FaultPlan)) *FaultPlan {
	p := &FaultPlan{Seed: 1, WallBackstop: testBackstop}
	f(p)
	return p
}

// A dead rank must fail Barrier with ErrRankDead, not hang it.
func TestDeadRankFailsBarrier(t *testing.T) {
	w := NewWorld(4, T3E900())
	w.InstallFaults(planWith(func(p *FaultPlan) {
		p.RankFaults = []RankFault{{Rank: 2, At: 0}}
	}))
	errs := make([]error, 4)
	w.Run(func(r *Rank) {
		r.Compute(100) // rank 2 dies here
		errs[r.ID()] = r.BarrierTimeout()
	})
	f := w.Failure()
	if f == nil {
		t.Fatal("no failure report for a barrier with a dead participant")
	}
	if !errors.Is(f.Err, ErrRankDead) || f.Kind != "kill" || f.Rank != 2 {
		t.Fatalf("report = %+v, want ErrRankDead kill of rank 2", f)
	}
	if f.DetectedAt <= f.FaultTime {
		t.Fatalf("DetectedAt %g not after FaultTime %g", f.DetectedAt, f.FaultTime)
	}
	for id, err := range errs {
		if id == 2 {
			continue // never reached the barrier
		}
		if !errors.Is(err, ErrRankDead) {
			t.Fatalf("rank %d barrier error = %v, want ErrRankDead", id, err)
		}
	}
	if len(f.Waits) == 0 || len(f.LastRecv) != 4 {
		t.Fatalf("wait graph %d entries, last-recv %d entries; want >0 and 4",
			len(f.Waits), len(f.LastRecv))
	}
}

// A dead rank must fail Allreduce (which uses the legacy panic-on-error
// API) by unwinding the survivors, not hanging them.
func TestDeadRankFailsAllreduce(t *testing.T) {
	w := NewWorld(4, T3E900())
	w.InstallFaults(planWith(func(p *FaultPlan) {
		p.RankFaults = []RankFault{{Rank: 1, At: 0}}
	}))
	finished := make([]bool, 4)
	w.Run(func(r *Rank) {
		r.Compute(10)
		r.AllreduceSum(1.0)
		finished[r.ID()] = true
	})
	f := w.Failure()
	if f == nil || !errors.Is(f.Err, ErrRankDead) || f.Rank != 1 {
		t.Fatalf("report = %+v, want ErrRankDead for rank 1", f)
	}
	for id, ok := range finished {
		if ok {
			t.Fatalf("rank %d finished an allreduce missing a participant", id)
		}
	}
}

// Killing the broadcast root wedges every receiver; the watchdog must
// convert that into a FailureReport.
func TestKillRootFailsBcast(t *testing.T) {
	w := NewWorld(4, T3E900())
	w.InstallFaults(planWith(func(p *FaultPlan) {
		p.RankFaults = []RankFault{{Rank: 0, At: 0}}
	}))
	w.Run(func(r *Rank) {
		r.Compute(1) // root dies before sending
		r.Bcast(0, 42, 8)
	})
	f := w.Failure()
	if f == nil || !errors.Is(f.Err, ErrRankDead) || f.Kind != "kill" || f.Rank != 0 {
		t.Fatalf("report = %+v, want kill of rank 0", f)
	}
}

// Stalling the reduction root past the watchdog deadline counts as
// death and fails the reduce.
func TestStallRootFailsReduce(t *testing.T) {
	w := NewWorld(4, T3E900())
	w.InstallFaults(planWith(func(p *FaultPlan) {
		p.RankFaults = []RankFault{{Rank: 0, At: 0, Stall: 10 * DefaultWatchdogDeadline}}
	}))
	w.Run(func(r *Rank) {
		r.Compute(1)
		r.AllreduceMax(float64(r.ID()))
	})
	f := w.Failure()
	if f == nil || !errors.Is(f.Err, ErrRankDead) || f.Kind != "stall" || f.Rank != 0 {
		t.Fatalf("report = %+v, want stall-death of rank 0", f)
	}
}

// A stall shorter than the watchdog deadline is a survivable hiccup:
// the run completes, the victim's clock absorbs the stall.
func TestTransientStallSurvives(t *testing.T) {
	const stall = DefaultWatchdogDeadline / 2
	w := NewWorld(2, T3E900())
	w.InstallFaults(planWith(func(p *FaultPlan) {
		p.RankFaults = []RankFault{{Rank: 1, At: 0, Stall: stall}}
	}))
	var clock1 float64
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, "x", 100)
		} else {
			r.Recv(0, 7)
			clock1 = r.Clock()
		}
	})
	if f := w.Failure(); f != nil {
		t.Fatalf("transient stall escalated to failure: %+v", f)
	}
	if s := w.GatherStats(); s.Stalls != 1 {
		t.Fatalf("Stalls = %d, want 1", s.Stalls)
	}
	if clock1 < stall {
		t.Fatalf("stalled rank clock %g does not include the %g stall", clock1, stall)
	}
}

// A dropped message wedges the world with no dead rank: ErrTimeout.
func TestDroppedMessageWedges(t *testing.T) {
	w := NewWorld(2, T3E900())
	w.InstallFaults(planWith(func(p *FaultPlan) {
		p.DropProb = 1
		p.MaxDrops = 1
	}))
	var recvErr error
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 3, "lost", 64)
		} else {
			_, recvErr = r.RecvTimeout(0, 3)
		}
	})
	f := w.Failure()
	if f == nil || !errors.Is(f.Err, ErrTimeout) || f.Kind != "wedge" || f.Rank != -1 {
		t.Fatalf("report = %+v, want ErrTimeout wedge with no implicated rank", f)
	}
	if !errors.Is(recvErr, ErrTimeout) {
		t.Fatalf("RecvTimeout error = %v, want ErrTimeout", recvErr)
	}
	if s := w.GatherStats(); s.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", s.Dropped)
	}
	// The wait graph names the wedged receive.
	found := false
	for _, wi := range f.Waits {
		if wi.Rank == 1 && wi.Op == "recv" && wi.Src == 0 && wi.Tag == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("wait graph %+v does not name rank 1's recv(0, 3)", f.Waits)
	}
}

// Duplicated sends are discarded by sequence-number dedup: delivery is
// idempotent and FIFO order per (src, tag) is preserved.
func TestDuplicateDelivery(t *testing.T) {
	w := NewWorld(2, T3E900())
	w.InstallFaults(planWith(func(p *FaultPlan) {
		p.DupProb = 1
	}))
	var got []int
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			for i := 0; i < 3; i++ {
				r.Send(1, 5, i, 8)
			}
		} else {
			for i := 0; i < 3; i++ {
				got = append(got, r.Recv(0, 5).(int))
			}
		}
	})
	if f := w.Failure(); f != nil {
		t.Fatalf("duplication caused failure: %+v", f)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("received %v, want [0 1 2]", got)
		}
	}
	s := w.GatherStats()
	if s.Duplicated != 3 || s.Deduped != 3 {
		t.Fatalf("Duplicated=%d Deduped=%d, want 3 and 3", s.Duplicated, s.Deduped)
	}
}

// A rank panic is converted to a FailureReport with the value preserved
// instead of crashing or hanging the world.
func TestPanicBecomesFailureReport(t *testing.T) {
	w := NewWorld(3, T3E900())
	w.InstallFaults(planWith(func(p *FaultPlan) {}))
	w.Run(func(r *Rank) {
		if r.ID() == 2 {
			panic("numerical kernel exploded")
		}
		r.Barrier()
	})
	f := w.Failure()
	if f == nil || f.Kind != "panic" || f.Rank != 2 {
		t.Fatalf("report = %+v, want panic on rank 2", f)
	}
	if f.PanicValue != "numerical kernel exploded" {
		t.Fatalf("PanicValue = %v", f.PanicValue)
	}
}

// Same seed + same plan ⇒ identical simulated times, counters and
// chaos decisions, run after run (exercised under -race by chaostest).
func TestChaosRepeatability(t *testing.T) {
	run := func() (Stats, []float64) {
		w := NewWorld(4, T3E900())
		w.InstallFaults(planWith(func(p *FaultPlan) {
			p.DelayJitter = 5e-5
			p.DupProb = 0.3
			p.RankFaults = []RankFault{{Rank: 3, At: 0, Stall: DefaultWatchdogDeadline / 4}}
		}))
		w.Run(func(r *Rank) {
			for round := 0; round < 5; round++ {
				r.Compute(int64(100 * (r.ID() + 1)))
				next := (r.ID() + 1) % r.Size()
				prev := (r.ID() + r.Size() - 1) % r.Size()
				r.Send(next, 9, r.ID(), 256)
				r.Recv(prev, 9)
				r.Barrier()
			}
			r.AllreduceSum(float64(r.ID()))
		})
		if f := w.Failure(); f != nil {
			t.Fatalf("chaos program failed: %+v", f)
		}
		clocks := make([]float64, 4)
		for i, s := range w.Snapshots() {
			clocks[i] = s.Clock
		}
		return w.GatherStats(), clocks
	}
	s1, c1 := run()
	s2, c2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ across identical chaos runs:\n%+v\n%+v", s1, s2)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("rank %d clock differs: %g vs %g", i, c1[i], c2[i])
		}
	}
	if s1.Duplicated == 0 || s1.Delayed == 0 || s1.Stalls != 1 {
		t.Fatalf("chaos did not engage: %+v", s1)
	}
}

// The wedge failure is itself deterministic: the same kill produces the
// same detection time and counters every run.
func TestFailureDeterminism(t *testing.T) {
	run := func() (FailureReport, Stats) {
		w := NewWorld(4, T3E900())
		w.InstallFaults(planWith(func(p *FaultPlan) {
			p.RankFaults = []RankFault{{Rank: 1, At: 3e-5}}
		}))
		w.Run(func(r *Rank) {
			for round := 0; round < 4; round++ {
				r.Compute(2000)
				r.Barrier()
			}
		})
		f := w.Failure()
		if f == nil {
			t.Fatal("kill produced no failure")
		}
		return *f, w.GatherStats()
	}
	f1, s1 := run()
	f2, s2 := run()
	if f1.Kind != f2.Kind || f1.Rank != f2.Rank ||
		f1.FaultTime != f2.FaultTime || f1.DetectedAt != f2.DetectedAt {
		t.Fatalf("failure reports differ:\n%+v\n%+v", f1, f2)
	}
	if s1.Messages != s2.Messages || s1.TotalFlops != s2.TotalFlops || s1.Time != s2.Time {
		t.Fatalf("failed-run stats differ:\n%+v\n%+v", s1, s2)
	}
}

// RecvTimeout on a healthy world behaves exactly like Recv.
func TestRecvTimeoutHealthy(t *testing.T) {
	w := NewWorld(2, T3E900())
	var got any
	var err error
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Compute(500)
			r.Send(1, 11, "payload", 32)
		} else {
			got, err = r.RecvTimeout(0, 11)
		}
	})
	if err != nil || got != "payload" {
		t.Fatalf("got %v, %v", got, err)
	}
	if w.Failure() != nil {
		t.Fatal("healthy run reported a failure")
	}
}
