package mpisim

// This file adds the collective and wildcard-receive operations the
// distributed solver needs beyond plain Send/Recv.

// Barrier blocks until every rank has entered it; on release all virtual
// clocks advance to the latest participant's clock plus one latency
// (a tree barrier would be cheaper, but the solver only uses barriers
// between phases, where the constant does not matter).
func (r *Rank) Barrier() {
	w := r.world
	w.barrierMu.Lock()
	if r.clock > w.barrierClockPending {
		w.barrierClockPending = r.clock
	}
	w.barrierCount++
	gen := w.barrierGen
	if w.barrierCount == w.P {
		w.barrierClock = w.barrierClockPending + w.Model.Latency
		w.barrierClockPending = 0
		w.barrierCount = 0
		w.barrierGen++
		w.barrierCond.Broadcast()
	} else {
		for gen == w.barrierGen {
			w.barrierCond.Wait()
		}
	}
	release := w.barrierClock
	w.barrierMu.Unlock()
	if release > r.clock {
		r.commTime += release - r.clock
		r.clock = release
	}
}

// Probe reports whether a message from src with tag is already queued.
func (r *Rank) Probe(src, tag int) bool {
	return r.world.mail[r.id].probe(src, tag)
}

// RecvAny blocks until any message is queued for this rank, then returns
// the queued message with the earliest virtual arrival time (ties broken
// by source then tag, keeping the discrete-event order as deterministic
// as the real scheduling allows). It returns the source, tag and payload.
// This is the MPI_ANY_SOURCE receive of the paper's message-driven
// triangular solve.
func (r *Rank) RecvAny() (src, tag int, payload any) {
	m := r.world.mail[r.id].takeAny(r.world.Model)
	arrival := m.sentAt + r.world.Model.Latency + float64(m.bytes)*r.world.Model.CostPerByte
	if arrival > r.clock {
		r.commTime += arrival - r.clock
		r.clock = arrival
	}
	return m.src, m.tag, m.payload
}

// Tags reserved for collectives; user tags must stay below tagCollective.
const tagCollective = 1 << 19

// Bcast distributes root's value to every rank and returns it (a flat
// broadcast: root sends P-1 messages, like the paper's panel broadcasts).
func (r *Rank) Bcast(root int, value any, bytes int) any {
	if r.id == root {
		for dst := 0; dst < r.world.P; dst++ {
			if dst != root {
				r.Send(dst, tagCollective, value, bytes)
			}
		}
		return value
	}
	return r.Recv(root, tagCollective)
}

// AllreduceSum sums a float64 contribution across all ranks and returns
// the total on every rank (gather to rank 0, then broadcast).
func (r *Rank) AllreduceSum(v float64) float64 {
	const bytes = 8
	if r.id == 0 {
		total := v
		for src := 1; src < r.world.P; src++ {
			total += r.Recv(src, tagCollective+1).(float64)
		}
		for dst := 1; dst < r.world.P; dst++ {
			r.Send(dst, tagCollective+2, total, bytes)
		}
		return total
	}
	r.Send(0, tagCollective+1, v, bytes)
	return r.Recv(0, tagCollective+2).(float64)
}

// AllreduceMax returns the maximum of the contributions on every rank.
func (r *Rank) AllreduceMax(v float64) float64 {
	const bytes = 8
	if r.id == 0 {
		best := v
		for src := 1; src < r.world.P; src++ {
			if got := r.Recv(src, tagCollective+3).(float64); got > best {
				best = got
			}
		}
		for dst := 1; dst < r.world.P; dst++ {
			r.Send(dst, tagCollective+4, best, bytes)
		}
		return best
	}
	r.Send(0, tagCollective+3, v, bytes)
	return r.Recv(0, tagCollective+4).(float64)
}
