package mpisim

// This file adds the collective and wildcard-receive operations the
// distributed solver needs beyond plain Send/Recv.

// Barrier blocks until every rank has entered it; on release all virtual
// clocks advance to the latest participant's clock plus one latency
// (a tree barrier would be cheaper, but the solver only uses barriers
// between phases, where the constant does not matter). If the watchdog
// declares the world failed while waiting — a participant died and the
// barrier can never complete — the rank unwinds instead of blocking
// forever (see World.Run); use BarrierTimeout to handle it in place.
func (r *Rank) Barrier() {
	if err := r.BarrierTimeout(); err != nil {
		panic(rankAbort{err})
	}
}

// BarrierTimeout is Barrier with watchdog protection surfaced as an
// error: ErrRankDead or ErrTimeout once the watchdog declares the
// barrier unreachable, with the rank's clock advanced to the detection
// time.
func (r *Rank) BarrierTimeout() error {
	r.applyFaults()
	w := r.world
	if f := w.sup.failure.Load(); f != nil {
		return r.failed(f)
	}
	w.barrierMu.Lock()
	if r.clock > w.barrierClockPending {
		w.barrierClockPending = r.clock
	}
	w.barrierCount++
	gen := w.barrierGen
	if w.barrierCount == w.P {
		w.barrierClock = w.barrierClockPending + w.Model.Latency
		w.barrierClockPending = 0
		w.barrierCount = 0
		w.barrierGen++
		w.barrierCond.Broadcast()
		release := w.barrierClock
		w.barrierMu.Unlock()
		if release > r.clock {
			r.commTime += release - r.clock
			r.clock = release
		}
		return nil
	}
	w.barrierMu.Unlock()
	if err := w.sup.block(r.id, waiter{kind: waitBarrier, gen: gen, clock: r.clock}); err != nil {
		return r.failed(w.sup.failure.Load())
	}
	w.barrierMu.Lock()
	for gen == w.barrierGen && w.sup.failure.Load() == nil {
		w.barrierCond.Wait()
	}
	released := gen != w.barrierGen
	release := w.barrierClock
	w.barrierMu.Unlock()
	w.sup.unblock(r.id)
	if !released {
		return r.failed(w.sup.failure.Load())
	}
	if release > r.clock {
		r.commTime += release - r.clock
		r.clock = release
	}
	return nil
}

// Probe reports whether a message from src with tag is already queued.
func (r *Rank) Probe(src, tag int) bool {
	return r.world.mail[r.id].queued(src, tag)
}

// RecvAny blocks until any message is queued for this rank, then returns
// the queued message with the earliest virtual arrival time (ties broken
// by source then tag, keeping the discrete-event order as deterministic
// as the real scheduling allows). It returns the source, tag and payload.
// This is the MPI_ANY_SOURCE receive of the paper's message-driven
// triangular solve. On world failure the rank unwinds (see World.Run);
// use RecvAnyTimeout to handle the failure in place.
func (r *Rank) RecvAny() (src, tag int, payload any) {
	src, tag, payload, err := r.RecvAnyTimeout()
	if err != nil {
		panic(rankAbort{err})
	}
	return src, tag, payload
}

// RecvAnyTimeout is RecvAny with watchdog protection surfaced as an
// error (ErrRankDead or ErrTimeout, clock advanced to detection time).
func (r *Rank) RecvAnyTimeout() (src, tag int, payload any, err error) {
	r.applyFaults()
	w := r.world
	mb := w.mail[r.id]
	for {
		if f := w.sup.failure.Load(); f != nil {
			return -1, -1, nil, r.failed(f)
		}
		mb.mu.Lock()
		m := mb.tryTakeAny(w.Model)
		gen := mb.gen
		mb.mu.Unlock()
		if m != nil {
			r.deliver(m)
			return m.src, m.tag, m.payload, nil
		}
		if berr := w.sup.block(r.id, waiter{kind: waitRecvAny, clock: r.clock}); berr != nil {
			return -1, -1, nil, r.failed(w.sup.failure.Load())
		}
		mb.mu.Lock()
		for mb.gen == gen && w.sup.failure.Load() == nil {
			mb.cond.Wait()
		}
		mb.mu.Unlock()
		w.sup.unblock(r.id)
	}
}

// Tags reserved for collectives; user tags must stay below tagCollective.
const tagCollective = 1 << 19

// Bcast distributes root's value to every rank and returns it (a flat
// broadcast: root sends P-1 messages, like the paper's panel broadcasts).
func (r *Rank) Bcast(root int, value any, bytes int) any {
	if r.id == root {
		for dst := 0; dst < r.world.P; dst++ {
			if dst != root {
				r.Send(dst, tagCollective, value, bytes)
			}
		}
		return value
	}
	return r.Recv(root, tagCollective)
}

// AllreduceSum sums a float64 contribution across all ranks and returns
// the total on every rank (gather to rank 0, then broadcast).
func (r *Rank) AllreduceSum(v float64) float64 {
	const bytes = 8
	if r.id == 0 {
		total := v
		for src := 1; src < r.world.P; src++ {
			total += r.Recv(src, tagCollective+1).(float64)
		}
		for dst := 1; dst < r.world.P; dst++ {
			r.Send(dst, tagCollective+2, total, bytes)
		}
		return total
	}
	r.Send(0, tagCollective+1, v, bytes)
	return r.Recv(0, tagCollective+2).(float64)
}

// AllreduceMax returns the maximum of the contributions on every rank.
func (r *Rank) AllreduceMax(v float64) float64 {
	const bytes = 8
	if r.id == 0 {
		best := v
		for src := 1; src < r.world.P; src++ {
			if got := r.Recv(src, tagCollective+3).(float64); got > best {
				best = got
			}
		}
		for dst := 1; dst < r.world.P; dst++ {
			r.Send(dst, tagCollective+4, best, bytes)
		}
		return best
	}
	r.Send(0, tagCollective+3, v, bytes)
	return r.Recv(0, tagCollective+4).(float64)
}
