package mpisim

import "sync"

// mailbox is one rank's incoming message store with its own lock, so
// traffic between disjoint rank pairs never contends (the original
// whole-world mutex serialized a 512-rank simulation onto one core).
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	boxes map[int][]*message // key: src<<20 | tag
}

func newMailbox() *mailbox {
	mb := &mailbox{boxes: make(map[int][]*message)}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m *message) {
	mb.mu.Lock()
	key := tagKey(m.src, m.tag)
	mb.boxes[key] = append(mb.boxes[key], m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// take blocks until a (src, tag) message is queued and dequeues it.
func (mb *mailbox) take(src, tag int) *message {
	key := tagKey(src, tag)
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.boxes[key]) == 0 {
		mb.cond.Wait()
	}
	q := mb.boxes[key]
	m := q[0]
	if len(q) == 1 {
		delete(mb.boxes, key)
	} else {
		mb.boxes[key] = q[1:]
	}
	return m
}

// takeAny blocks until anything is queued, then dequeues the message with
// the earliest virtual arrival (ties broken by key for determinism).
func (mb *mailbox) takeAny(model CostModel) *message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		bestKey := -1
		bestArrival := 0.0
		// Strict-min reduction with a total tie-break order, so the
		// winner is independent of map iteration order.
		//gesp:unordered
		for key, q := range mb.boxes {
			if len(q) == 0 {
				continue
			}
			m := q[0]
			arr := m.sentAt + model.Latency + float64(m.bytes)*model.CostPerByte
			// The arrival tie-break must be exact: equal virtual arrivals
			// are common (same-size messages) and fall through to the key
			// order, which is what makes the dequeue deterministic.
			//gesp:floateq
			if bestKey == -1 || arr < bestArrival || (arr == bestArrival && key < bestKey) {
				bestKey, bestArrival = key, arr
			}
		}
		if bestKey >= 0 {
			q := mb.boxes[bestKey]
			m := q[0]
			if len(q) == 1 {
				delete(mb.boxes, bestKey)
			} else {
				mb.boxes[bestKey] = q[1:]
			}
			return m
		}
		mb.cond.Wait()
	}
}

func (mb *mailbox) probe(src, tag int) bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.boxes[tagKey(src, tag)]) > 0
}
