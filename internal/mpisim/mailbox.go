package mpisim

import "sync"

// mailbox is one rank's incoming message store with its own lock, so
// traffic between disjoint rank pairs never contends (the original
// whole-world mutex serialized a 512-rank simulation onto one core).
//
// Blocking lives in the Rank receive methods, which coordinate with the
// watchdog supervisor; the mailbox itself only offers non-blocking
// dequeues plus a generation counter the wait loops key off.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	//gesp:guardedby:mu
	gen uint64 // bumped on every put; wait loops recheck on change
	//gesp:guardedby:mu
	boxes map[int][]*message // key: src<<20 | tag
	// lastSeq is the idempotent-delivery watermark per (src, tag) key.
	// Sender sequence numbers are strictly increasing per destination,
	// so a message at or below the watermark is a duplicate delivery
	// and is discarded on arrival (ack-free dedup).
	//gesp:guardedby:mu
	lastSeq map[int]int64
}

func newMailbox() *mailbox {
	mb := &mailbox{boxes: make(map[int][]*message), lastSeq: make(map[int]int64)}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// put enqueues a message, discarding duplicate (src, tag, seq)
// deliveries. It reports whether the message was discarded.
func (mb *mailbox) put(m *message) (dup bool) {
	key := tagKey(m.src, m.tag)
	mb.mu.Lock()
	if m.seq <= mb.lastSeq[key] {
		mb.mu.Unlock()
		return true
	}
	mb.lastSeq[key] = m.seq
	mb.boxes[key] = append(mb.boxes[key], m)
	mb.gen++
	mb.mu.Unlock()
	mb.cond.Broadcast()
	return false
}

// tryTake dequeues a (src, tag) message if one is queued. Caller holds
// mb.mu.
//
//gesp:holds:mb.mu
func (mb *mailbox) tryTake(src, tag int) *message {
	key := tagKey(src, tag)
	q := mb.boxes[key]
	if len(q) == 0 {
		return nil
	}
	m := q[0]
	if len(q) == 1 {
		delete(mb.boxes, key)
	} else {
		mb.boxes[key] = q[1:]
	}
	return m
}

// tryTakeAny dequeues the queued message with the earliest virtual
// arrival (ties broken by key for determinism), or nil if the mailbox
// is empty. Caller holds mb.mu.
//
//gesp:holds:mb.mu
func (mb *mailbox) tryTakeAny(model CostModel) *message {
	bestKey := -1
	bestArrival := 0.0
	// Strict-min reduction with a total tie-break order, so the
	// winner is independent of map iteration order.
	//gesp:unordered
	for key, q := range mb.boxes {
		if len(q) == 0 {
			continue
		}
		m := q[0]
		arr := m.sentAt + model.Latency + float64(m.bytes)*model.CostPerByte + m.delay
		// The arrival tie-break must be exact: equal virtual arrivals
		// are common (same-size messages) and fall through to the key
		// order, which is what makes the dequeue deterministic.
		//gesp:floateq
		if bestKey == -1 || arr < bestArrival || (arr == bestArrival && key < bestKey) {
			bestKey, bestArrival = key, arr
		}
	}
	if bestKey < 0 {
		return nil
	}
	q := mb.boxes[bestKey]
	m := q[0]
	if len(q) == 1 {
		delete(mb.boxes, bestKey)
	} else {
		mb.boxes[bestKey] = q[1:]
	}
	return m
}

// queued reports whether a (src, tag) message is waiting.
func (mb *mailbox) queued(src, tag int) bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.boxes[tagKey(src, tag)]) > 0
}

// queuedAny reports whether any message is waiting.
func (mb *mailbox) queuedAny() bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	// Existence check only: no order dependence.
	//gesp:unordered
	for _, q := range mb.boxes {
		if len(q) > 0 {
			return true
		}
	}
	return false
}
