// Package mpisim is the message-passing substrate standing in for MPI on
// the Cray T3E (see DESIGN.md: the build environment has no MPI, so the
// distributed algorithms run on an in-process runtime).
//
// Each rank is a goroutine. Point-to-point messages carry a tag and are
// matched by (source, tag) like MPI_Recv. On top of real concurrency the
// runtime keeps a LogGP-style *virtual clock* per rank:
//
//   - computation advances the local clock by flops·CostPerFlop,
//   - a message send costs SendOverhead on the sender,
//   - a receive completes at max(receiver clock, sender timestamp +
//     Latency + bytes·CostPerByte), and the receiver's waiting time is
//     accounted as communication time.
//
// Simulated time is deterministic and machine independent, which is what
// the scaling tables (paper Tables 3–5) are measured in; wall-clock time
// is also real because ranks genuinely run in parallel.
package mpisim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// CostModel is the LogGP-style machine model. The defaults approximate a
// Cray T3E-900: ~20µs MPI latency, ~300 MB/s sustained bandwidth, and an
// effective 450 Mflop/s per-PE supernodal kernel rate (the paper reports
// ~8 Gflops aggregate on 512 PEs with >50% communication time).
type CostModel struct {
	Latency      float64 // seconds per message
	CostPerByte  float64 // seconds per payload byte
	CostPerFlop  float64 // seconds per floating-point operation
	SendOverhead float64 // sender-side CPU cost per message
}

// T3E900 is the default calibration.
func T3E900() CostModel {
	return CostModel{
		Latency:      20e-6,
		CostPerByte:  1.0 / 300e6,
		CostPerFlop:  1.0 / 450e6,
		SendOverhead: 5e-6,
	}
}

// message is an in-flight point-to-point message.
type message struct {
	src, tag int
	payload  any
	bytes    int
	sentAt   float64 // sender's virtual clock at send time
	seq      int64   // per-(src,dst) sequence number, for idempotent delivery
	delay    float64 // extra transit time injected by the fault plan
}

// World is one simulated machine: P ranks with per-rank mailboxes.
type World struct {
	P     int
	Model CostModel

	mail []*mailbox
	plan *FaultPlan
	sup  *supervisor

	// Chaos accounting (only nonzero under a fault plan).
	dropped    atomic.Int64
	duplicated atomic.Int64
	deduped    atomic.Int64
	delayed    atomic.Int64
	stalls     atomic.Int64

	barrierMu   sync.Mutex
	barrierCond *sync.Cond
	//gesp:guardedby:barrierMu
	barrierCount int
	//gesp:guardedby:barrierMu
	barrierGen int
	//gesp:guardedby:barrierMu
	barrierClock float64
	//gesp:guardedby:barrierMu
	barrierClockPending float64

	ranks []*Rank
}

// NewWorld creates a simulator with p ranks.
func NewWorld(p int, model CostModel) *World {
	w := &World{P: p, Model: model}
	w.barrierCond = sync.NewCond(&w.barrierMu)
	w.mail = make([]*mailbox, p)
	w.ranks = make([]*Rank, p)
	for i := 0; i < p; i++ {
		w.mail[i] = newMailbox()
		w.ranks[i] = &Rank{world: w, id: i, seqTo: make([]int64, p)}
		w.ranks[i].lastRecvKey.Store(-1)
	}
	w.sup = newSupervisor(w)
	return w
}

// InstallFaults attaches a chaos schedule to the world; call before
// Run. The same plan may be shared across the successive worlds of a
// checkpoint/restart driver — one-shot events (kills, stalls, the drop
// budget) fire at most once across the whole lineage.
func (w *World) InstallFaults(p *FaultPlan) { w.plan = p }

// Run executes body on every rank concurrently and waits for all to
// finish. It is the moral equivalent of mpirun.
//
// Unlike a bare goroutine fan-out, a rank that dies — killed by the
// fault plan, aborted by a world failure, or panicking on its own —
// does not hang the world: the supervisor marks it dead, the survivors
// run to a quiescent state, and the watchdog converts the inevitable
// wedge into a FailureReport (see Failure). A panic unrelated to the
// runtime is reported with Kind "panic" and its value preserved.
func (w *World) Run(body func(r *Rank)) {
	w.sup = newSupervisor(w) // fresh supervision per Run (worlds may Run repeatedly)
	if w.plan != nil && w.plan.WallBackstop > 0 {
		stop := w.startWallBackstop(w.plan.WallBackstop) //gesp:wallclock sanctioned backstop: host timer only converts a wedged simulation into a report
		defer stop()
	}
	var wg sync.WaitGroup
	wg.Add(w.P)
	for i := 0; i < w.P; i++ {
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				switch e := recover(); e.(type) {
				case nil:
					w.sup.rankDone(r.id)
				case rankDeath, rankAbort:
					// Already accounted by the supervisor (death) or a
					// consequence of an existing failure (abort).
					w.sup.rankDone(r.id)
				default:
					w.sup.rankDead(r.id, "panic", r.clock, e)
				}
			}()
			body(r)
		}(w.ranks[i])
	}
	wg.Wait()
}

// Rank is one simulated processor.
type Rank struct {
	world *World
	id    int

	clock    float64 // virtual time (seconds)
	commTime float64 // part of clock spent sending/waiting
	flops    int64
	sent     int64   // messages sent
	sentVol  int64   // payload bytes sent
	seqTo    []int64 // per-destination send sequence numbers

	// Last delivered message, for failure reports (read by the
	// supervisor while this rank may still be running).
	lastRecvKey atomic.Int64 // src<<20|tag, -1 if none yet
	lastRecvSeq atomic.Int64
}

// ID returns the rank number in [0, P).
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks.
func (r *Rank) Size() int { return r.world.P }

// applyFaults consults the fault plan at a runtime-call boundary: a
// pending kill unwinds the rank (marking it dead with the supervisor),
// a short stall just advances the virtual clock, and a stall past the
// watchdog deadline counts as death (no watchdog could tell the
// difference).
func (r *Rank) applyFaults() {
	p := r.world.plan
	if p == nil {
		return
	}
	for {
		rf := p.nextRankFault(r.id, r.clock)
		if rf == nil {
			return
		}
		if rf.Stall > 0 && rf.Stall < p.watchdog() {
			r.clock += rf.Stall
			r.world.stalls.Add(1)
			continue
		}
		kind := "kill"
		if rf.Stall > 0 {
			kind = "stall"
		}
		r.world.sup.rankDead(r.id, kind, r.clock, nil)
		panic(rankDeath{})
	}
}

// failed charges the watchdog's detection time to the rank's clock and
// returns the failure error. It also clears any stale block record.
func (r *Rank) failed(f *FailureReport) error {
	r.world.sup.unblock(r.id)
	if f.DetectedAt > r.clock {
		r.commTime += f.DetectedAt - r.clock
		r.clock = f.DetectedAt
	}
	return f.Err
}

// deliver advances the rank's clock to a received message's arrival
// time and records the receive stamp for failure reports.
func (r *Rank) deliver(m *message) {
	r.lastRecvKey.Store(int64(tagKey(m.src, m.tag)))
	r.lastRecvSeq.Store(m.seq)
	model := r.world.Model
	arrival := m.sentAt + model.Latency + float64(m.bytes)*model.CostPerByte + m.delay
	if arrival > r.clock {
		r.commTime += arrival - r.clock
		r.clock = arrival
	}
}

// Compute advances the rank's virtual clock by the cost of the given
// floating-point operations.
func (r *Rank) Compute(flops int64) {
	r.applyFaults()
	r.flops += flops
	r.clock += float64(flops) * r.world.Model.CostPerFlop
}

// Elapse advances the virtual clock by a fixed amount of non-flop work
// (indexing, packing); cost accounting only.
func (r *Rank) Elapse(seconds float64) {
	r.applyFaults()
	r.clock += seconds
}

// Send delivers payload to rank dst with the given tag. bytes is the
// modelled payload size (the Go value itself is passed by reference; the
// simulation charges the modelled size). Under a fault plan the message
// may be dropped, duplicated or delayed; delivery is idempotent, so a
// duplicate is discarded at the destination. If the world has already
// failed, Send unwinds the rank (see Run).
func (r *Rank) Send(dst, tag int, payload any, bytes int) {
	if dst == r.id {
		panic("mpisim: send to self")
	}
	r.applyFaults()
	w := r.world
	if f := w.sup.failure.Load(); f != nil {
		panic(rankAbort{r.failed(f)})
	}
	m := &message{src: r.id, tag: tag, payload: payload, bytes: bytes}
	r.clock += w.Model.SendOverhead
	r.commTime += w.Model.SendOverhead
	m.sentAt = r.clock
	r.seqTo[dst]++
	m.seq = r.seqTo[dst]
	r.sent++
	r.sentVol += int64(bytes)
	if p := w.plan; p != nil {
		if p.dropMessage(r.id, dst, tag, m.seq) {
			w.dropped.Add(1)
			return
		}
		m.delay = p.delayFor(r.id, dst, tag, m.seq)
		if m.delay > 0 {
			w.delayed.Add(1)
		}
		if p.dupMessage(r.id, dst, tag, m.seq) {
			w.duplicated.Add(1)
			second := *m
			if w.mail[dst].put(m) {
				w.deduped.Add(1)
			}
			if w.mail[dst].put(&second) {
				w.deduped.Add(1)
			}
			return
		}
	}
	if w.mail[dst].put(m) {
		w.deduped.Add(1)
	}
}

// Recv blocks until a message with the given source and tag arrives, then
// returns its payload. The virtual clock advances to the message's
// arrival time (transit = latency + bytes·cost + injected delay), and
// any gap the rank spent blocked is accounted as communication time.
// If the watchdog declares the world failed while waiting, Recv unwinds
// the rank instead of blocking forever (see Run); use RecvTimeout to
// handle the failure in place.
func (r *Rank) Recv(src, tag int) any {
	payload, err := r.RecvTimeout(src, tag)
	if err != nil {
		panic(rankAbort{err})
	}
	return payload
}

// RecvTimeout is Recv with watchdog protection surfaced as an error:
// when the awaited message can no longer arrive — the sender died, the
// message was dropped and the world wedged, or the wall backstop fired —
// it returns ErrRankDead or ErrTimeout (the rank's clock advanced to
// the detection time) instead of blocking forever.
func (r *Rank) RecvTimeout(src, tag int) (any, error) {
	r.applyFaults()
	w := r.world
	mb := w.mail[r.id]
	for {
		if f := w.sup.failure.Load(); f != nil {
			return nil, r.failed(f)
		}
		mb.mu.Lock()
		m := mb.tryTake(src, tag)
		gen := mb.gen
		mb.mu.Unlock()
		if m != nil {
			r.deliver(m)
			return m.payload, nil
		}
		if err := w.sup.block(r.id, waiter{kind: waitRecv, src: src, tag: tag, clock: r.clock}); err != nil {
			return nil, r.failed(w.sup.failure.Load())
		}
		mb.mu.Lock()
		for mb.gen == gen && w.sup.failure.Load() == nil {
			mb.cond.Wait()
		}
		mb.mu.Unlock()
		w.sup.unblock(r.id)
	}
}

func tagKey(src, tag int) int {
	if tag < 0 || tag >= 1<<20 {
		panic("mpisim: tag out of range (must fit in 20 bits)")
	}
	return src<<20 | tag
}

// Clock returns the rank's virtual time in seconds.
func (r *Rank) Clock() float64 { return r.clock }

// CommTime returns the virtual time spent in communication.
func (r *Rank) CommTime() float64 { return r.commTime }

// Flops returns the floating-point operations performed.
func (r *Rank) Flops() int64 { return r.flops }

// MsgsSent returns the number of messages this rank sent.
func (r *Rank) MsgsSent() int64 { return r.sent }

// BytesSent returns the payload volume this rank sent.
func (r *Rank) BytesSent() int64 { return r.sentVol }

// Stats aggregates the whole world after Run returns.
type Stats struct {
	// Time is the simulated parallel runtime: max over ranks of Clock.
	Time float64
	// CommFraction is Σ commTime / Σ clock, the paper's Table 5 metric.
	CommFraction float64
	// LoadBalance is avg(flops)/max(flops), the paper's factor B.
	LoadBalance float64
	// Messages and Volume are totals over all ranks.
	Messages int64
	Volume   int64
	// TotalFlops over all ranks; Mflops = TotalFlops/Time/1e6.
	TotalFlops int64
	// Chaos accounting, all zero without a fault plan: messages lost in
	// the network, deliberately double-delivered, discarded by the
	// idempotent-delivery dedup, given extra transit delay, and
	// transient rank stalls injected.
	Dropped, Duplicated, Deduped, Delayed, Stalls int64
}

// GatherStats summarizes the world's counters.
func (w *World) GatherStats() Stats {
	var s Stats
	var sumClock, sumComm float64
	var maxFlops int64
	for _, r := range w.ranks {
		if r.clock > s.Time {
			s.Time = r.clock
		}
		sumClock += r.clock
		sumComm += r.commTime
		s.Messages += r.sent
		s.Volume += r.sentVol
		s.TotalFlops += r.flops
		if r.flops > maxFlops {
			maxFlops = r.flops
		}
	}
	if sumClock > 0 {
		s.CommFraction = sumComm / sumClock
	}
	if maxFlops > 0 {
		s.LoadBalance = float64(s.TotalFlops) / float64(w.P) / float64(maxFlops)
	}
	s.Dropped = w.dropped.Load()
	s.Duplicated = w.duplicated.Load()
	s.Deduped = w.deduped.Load()
	s.Delayed = w.delayed.Load()
	s.Stalls = w.stalls.Load()
	return s
}

// Mflops returns the simulated aggregate megaflop rate.
func (s Stats) Mflops() float64 {
	if s.Time == 0 {
		return 0
	}
	return float64(s.TotalFlops) / s.Time / 1e6
}

// Grid is a 2-D process grid of shape prow × pcol, the paper's layout for
// the block-cyclic distribution.
type Grid struct {
	PRow, PCol int
}

// NewGrid picks a near-square grid for p processes (prow ≤ pcol, matching
// the paper's "P = prow × pcol" arrangement).
func NewGrid(p int) Grid {
	pr := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			pr = d
		}
	}
	return Grid{PRow: pr, PCol: p / pr}
}

// Coords returns the (row, col) coordinate of a rank (row-major).
func (g Grid) Coords(rank int) (int, int) { return rank / g.PCol, rank % g.PCol }

// RankOf returns the rank at grid coordinate (pr, pc).
func (g Grid) RankOf(pr, pc int) int { return pr*g.PCol + pc }

// OwnerOfBlock maps block (I, J) to its owning rank under the 2-D
// block-cyclic distribution: process (I mod PRow, J mod PCol).
func (g Grid) OwnerOfBlock(i, j int) int {
	return g.RankOf(i%g.PRow, j%g.PCol)
}

func (g Grid) String() string { return fmt.Sprintf("%dx%d", g.PRow, g.PCol) }

// Snapshot captures a rank's counters so callers can attribute costs to
// phases (factorization vs solve) by differencing.
type Snapshot struct {
	Clock, Comm float64
	Flops       int64
	Msgs, Bytes int64
}

// Snap reads the rank's current counters.
func (r *Rank) Snap() Snapshot {
	return Snapshot{Clock: r.clock, Comm: r.commTime, Flops: r.flops, Msgs: r.sent, Bytes: r.sentVol}
}

// Restore resets the rank's accounting to a checkpoint snapshot and, if
// resumeAt is later, fast-forwards the clock to it (the failure
// detection time, so a restarted attempt's timeline continues where the
// failed one was declared dead). For checkpoint/restart drivers; call
// from the rank's own goroutine before it does any work.
func (r *Rank) Restore(s Snapshot, resumeAt float64) {
	r.clock, r.commTime = s.Clock, s.Comm
	r.flops, r.sent, r.sentVol = s.Flops, s.Msgs, s.Bytes
	if resumeAt > r.clock {
		r.clock = resumeAt
	}
}

// Snapshots reads every rank's counters (indexed by rank). Call after
// Run returns — during a run the ranks own their counters.
func (w *World) Snapshots() []Snapshot {
	out := make([]Snapshot, w.P)
	for i, r := range w.ranks {
		out[i] = r.Snap()
	}
	return out
}

// PhaseStats summarizes one phase across all ranks from per-rank snapshot
// pairs taken at the phase boundaries (ranks must be barrier-aligned).
func PhaseStats(before, after []Snapshot) Stats {
	var s Stats
	var sumClock, sumComm float64
	var maxFlops int64
	for i := range before {
		dClock := after[i].Clock - before[i].Clock
		dComm := after[i].Comm - before[i].Comm
		dFlops := after[i].Flops - before[i].Flops
		if dClock > s.Time {
			s.Time = dClock
		}
		sumClock += dClock
		sumComm += dComm
		s.Messages += after[i].Msgs - before[i].Msgs
		s.Volume += after[i].Bytes - before[i].Bytes
		s.TotalFlops += dFlops
		if dFlops > maxFlops {
			maxFlops = dFlops
		}
	}
	if sumClock > 0 {
		s.CommFraction = sumComm / sumClock
	}
	if maxFlops > 0 {
		s.LoadBalance = float64(s.TotalFlops) / float64(len(before)) / float64(maxFlops)
	}
	return s
}
