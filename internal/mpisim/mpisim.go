// Package mpisim is the message-passing substrate standing in for MPI on
// the Cray T3E (see DESIGN.md: the build environment has no MPI, so the
// distributed algorithms run on an in-process runtime).
//
// Each rank is a goroutine. Point-to-point messages carry a tag and are
// matched by (source, tag) like MPI_Recv. On top of real concurrency the
// runtime keeps a LogGP-style *virtual clock* per rank:
//
//   - computation advances the local clock by flops·CostPerFlop,
//   - a message send costs SendOverhead on the sender,
//   - a receive completes at max(receiver clock, sender timestamp +
//     Latency + bytes·CostPerByte), and the receiver's waiting time is
//     accounted as communication time.
//
// Simulated time is deterministic and machine independent, which is what
// the scaling tables (paper Tables 3–5) are measured in; wall-clock time
// is also real because ranks genuinely run in parallel.
package mpisim

import (
	"fmt"
	"sync"
)

// CostModel is the LogGP-style machine model. The defaults approximate a
// Cray T3E-900: ~20µs MPI latency, ~300 MB/s sustained bandwidth, and an
// effective 450 Mflop/s per-PE supernodal kernel rate (the paper reports
// ~8 Gflops aggregate on 512 PEs with >50% communication time).
type CostModel struct {
	Latency      float64 // seconds per message
	CostPerByte  float64 // seconds per payload byte
	CostPerFlop  float64 // seconds per floating-point operation
	SendOverhead float64 // sender-side CPU cost per message
}

// T3E900 is the default calibration.
func T3E900() CostModel {
	return CostModel{
		Latency:      20e-6,
		CostPerByte:  1.0 / 300e6,
		CostPerFlop:  1.0 / 450e6,
		SendOverhead: 5e-6,
	}
}

// message is an in-flight point-to-point message.
type message struct {
	src, tag int
	payload  any
	bytes    int
	sentAt   float64 // sender's virtual clock at send time
}

// World is one simulated machine: P ranks with per-rank mailboxes.
type World struct {
	P     int
	Model CostModel

	mail []*mailbox

	barrierMu           sync.Mutex
	barrierCond         *sync.Cond
	barrierCount        int
	barrierGen          int
	barrierClock        float64
	barrierClockPending float64

	ranks []*Rank
}

// NewWorld creates a simulator with p ranks.
func NewWorld(p int, model CostModel) *World {
	w := &World{P: p, Model: model}
	w.barrierCond = sync.NewCond(&w.barrierMu)
	w.mail = make([]*mailbox, p)
	w.ranks = make([]*Rank, p)
	for i := 0; i < p; i++ {
		w.mail[i] = newMailbox()
		w.ranks[i] = &Rank{world: w, id: i}
	}
	return w
}

// Run executes body on every rank concurrently and waits for all to
// finish. It is the moral equivalent of mpirun.
func (w *World) Run(body func(r *Rank)) {
	var wg sync.WaitGroup
	wg.Add(w.P)
	for i := 0; i < w.P; i++ {
		go func(r *Rank) {
			defer wg.Done()
			body(r)
		}(w.ranks[i])
	}
	wg.Wait()
}

// Rank is one simulated processor.
type Rank struct {
	world *World
	id    int

	clock    float64 // virtual time (seconds)
	commTime float64 // part of clock spent sending/waiting
	flops    int64
	sent     int64 // messages sent
	sentVol  int64 // payload bytes sent
}

// ID returns the rank number in [0, P).
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks.
func (r *Rank) Size() int { return r.world.P }

// Compute advances the rank's virtual clock by the cost of the given
// floating-point operations.
func (r *Rank) Compute(flops int64) {
	r.flops += flops
	r.clock += float64(flops) * r.world.Model.CostPerFlop
}

// Elapse advances the virtual clock by a fixed amount of non-flop work
// (indexing, packing); cost accounting only.
func (r *Rank) Elapse(seconds float64) { r.clock += seconds }

// Send delivers payload to rank dst with the given tag. bytes is the
// modelled payload size (the Go value itself is passed by reference; the
// simulation charges the modelled size).
func (r *Rank) Send(dst, tag int, payload any, bytes int) {
	if dst == r.id {
		panic("mpisim: send to self")
	}
	m := &message{src: r.id, tag: tag, payload: payload, bytes: bytes}
	r.clock += r.world.Model.SendOverhead
	r.commTime += r.world.Model.SendOverhead
	m.sentAt = r.clock
	r.sent++
	r.sentVol += int64(bytes)
	r.world.mail[dst].put(m)
}

// Recv blocks until a message with the given source and tag arrives, then
// returns its payload. The virtual clock advances to the message's
// arrival time (transit = latency + bytes·cost), and any gap the rank
// spent blocked is accounted as communication time.
func (r *Rank) Recv(src, tag int) any {
	m := r.world.mail[r.id].take(src, tag)
	arrival := m.sentAt + r.world.Model.Latency + float64(m.bytes)*r.world.Model.CostPerByte
	if arrival > r.clock {
		r.commTime += arrival - r.clock
		r.clock = arrival
	}
	return m.payload
}

func tagKey(src, tag int) int {
	if tag < 0 || tag >= 1<<20 {
		panic("mpisim: tag out of range (must fit in 20 bits)")
	}
	return src<<20 | tag
}

// Clock returns the rank's virtual time in seconds.
func (r *Rank) Clock() float64 { return r.clock }

// CommTime returns the virtual time spent in communication.
func (r *Rank) CommTime() float64 { return r.commTime }

// Flops returns the floating-point operations performed.
func (r *Rank) Flops() int64 { return r.flops }

// MsgsSent returns the number of messages this rank sent.
func (r *Rank) MsgsSent() int64 { return r.sent }

// BytesSent returns the payload volume this rank sent.
func (r *Rank) BytesSent() int64 { return r.sentVol }

// Stats aggregates the whole world after Run returns.
type Stats struct {
	// Time is the simulated parallel runtime: max over ranks of Clock.
	Time float64
	// CommFraction is Σ commTime / Σ clock, the paper's Table 5 metric.
	CommFraction float64
	// LoadBalance is avg(flops)/max(flops), the paper's factor B.
	LoadBalance float64
	// Messages and Volume are totals over all ranks.
	Messages int64
	Volume   int64
	// TotalFlops over all ranks; Mflops = TotalFlops/Time/1e6.
	TotalFlops int64
}

// GatherStats summarizes the world's counters.
func (w *World) GatherStats() Stats {
	var s Stats
	var sumClock, sumComm float64
	var maxFlops int64
	for _, r := range w.ranks {
		if r.clock > s.Time {
			s.Time = r.clock
		}
		sumClock += r.clock
		sumComm += r.commTime
		s.Messages += r.sent
		s.Volume += r.sentVol
		s.TotalFlops += r.flops
		if r.flops > maxFlops {
			maxFlops = r.flops
		}
	}
	if sumClock > 0 {
		s.CommFraction = sumComm / sumClock
	}
	if maxFlops > 0 {
		s.LoadBalance = float64(s.TotalFlops) / float64(w.P) / float64(maxFlops)
	}
	return s
}

// Mflops returns the simulated aggregate megaflop rate.
func (s Stats) Mflops() float64 {
	if s.Time == 0 {
		return 0
	}
	return float64(s.TotalFlops) / s.Time / 1e6
}

// Grid is a 2-D process grid of shape prow × pcol, the paper's layout for
// the block-cyclic distribution.
type Grid struct {
	PRow, PCol int
}

// NewGrid picks a near-square grid for p processes (prow ≤ pcol, matching
// the paper's "P = prow × pcol" arrangement).
func NewGrid(p int) Grid {
	pr := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			pr = d
		}
	}
	return Grid{PRow: pr, PCol: p / pr}
}

// Coords returns the (row, col) coordinate of a rank (row-major).
func (g Grid) Coords(rank int) (int, int) { return rank / g.PCol, rank % g.PCol }

// RankOf returns the rank at grid coordinate (pr, pc).
func (g Grid) RankOf(pr, pc int) int { return pr*g.PCol + pc }

// OwnerOfBlock maps block (I, J) to its owning rank under the 2-D
// block-cyclic distribution: process (I mod PRow, J mod PCol).
func (g Grid) OwnerOfBlock(i, j int) int {
	return g.RankOf(i%g.PRow, j%g.PCol)
}

func (g Grid) String() string { return fmt.Sprintf("%dx%d", g.PRow, g.PCol) }

// Snapshot captures a rank's counters so callers can attribute costs to
// phases (factorization vs solve) by differencing.
type Snapshot struct {
	Clock, Comm float64
	Flops       int64
	Msgs, Bytes int64
}

// Snap reads the rank's current counters.
func (r *Rank) Snap() Snapshot {
	return Snapshot{Clock: r.clock, Comm: r.commTime, Flops: r.flops, Msgs: r.sent, Bytes: r.sentVol}
}

// PhaseStats summarizes one phase across all ranks from per-rank snapshot
// pairs taken at the phase boundaries (ranks must be barrier-aligned).
func PhaseStats(before, after []Snapshot) Stats {
	var s Stats
	var sumClock, sumComm float64
	var maxFlops int64
	for i := range before {
		dClock := after[i].Clock - before[i].Clock
		dComm := after[i].Comm - before[i].Comm
		dFlops := after[i].Flops - before[i].Flops
		if dClock > s.Time {
			s.Time = dClock
		}
		sumClock += dClock
		sumComm += dComm
		s.Messages += after[i].Msgs - before[i].Msgs
		s.Volume += after[i].Bytes - before[i].Bytes
		s.TotalFlops += dFlops
		if dFlops > maxFlops {
			maxFlops = dFlops
		}
	}
	if sumClock > 0 {
		s.CommFraction = sumComm / sumClock
	}
	if maxFlops > 0 {
		s.LoadBalance = float64(s.TotalFlops) / float64(len(before)) / float64(maxFlops)
	}
	return s
}
