package mpisim

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// The watchdog supervisor converts the two distributed failure modes —
// a dead rank and a wedged communicator — into typed errors instead of
// eternal blocks, without sacrificing the simulator's determinism.
//
// Wall-clock timeouts cannot work here: a rank blocked on a message
// that will never come does not advance its virtual clock, so "has the
// deadline passed" is unanswerable in virtual time, and answering it in
// real time would make failure detection depend on host scheduling.
// Instead the supervisor detects the *stable property* a lost rank or
// lost message eventually produces: every live rank blocked on an
// operation that nothing in flight can satisfy. That state is reached
// deterministically (the surviving ranks run to the same quiescent
// point every time), so the counters and clocks in the failure report
// are reproducible run to run. The check is event-driven — it runs only
// when a rank blocks, dies or finishes — so the fault-free fast path
// pays a single atomic load per operation.

// Typed failures surfaced by the watchdog.
var (
	// ErrRankDead reports that a rank was killed, stalled past the
	// watchdog deadline, or panicked, making the blocked operation
	// impossible to complete.
	ErrRankDead = errors.New("mpisim: rank dead")
	// ErrTimeout reports that the watchdog found the world wedged —
	// every live rank blocked with nothing deliverable (e.g. after a
	// dropped message) — without any rank having died.
	ErrTimeout = errors.New("mpisim: watchdog timeout")
)

// WaitInfo is one node of the wait graph at detection time: what a rank
// was blocked on when the watchdog declared failure.
type WaitInfo struct {
	Rank  int
	Op    string // "recv", "recvany" or "barrier"
	Src   int    // awaited source (recv only, else -1)
	Tag   int    // awaited tag (recv only, else -1)
	Clock float64
}

// RecvStamp identifies the last message a rank received before the
// failure, for post-mortem reconstruction of how far each rank got.
type RecvStamp struct {
	Src, Tag int
	Seq      int64
}

// FailureReport is the watchdog's structured account of a failed world.
// Err, Kind, Rank and the virtual times are deterministic for a fixed
// program and fault plan; Waits and LastRecv are diagnostics whose exact
// contents can vary with host scheduling (they describe the moment of
// detection, which goroutine interleaving reaches in different orders).
type FailureReport struct {
	// Err is ErrRankDead or ErrTimeout.
	Err error
	// Kind classifies the root cause: "kill", "stall", "panic" (a dead
	// rank), "wedge" (no dead rank — typically a dropped message), or
	// "wall-backstop" (the real-time safety net fired).
	Kind string
	// Rank is the dead rank, or -1 when no single rank is implicated.
	Rank int
	// Phase is filled in by higher layers (e.g. dist: "factorize" or
	// "solve"); mpisim leaves it empty.
	Phase string
	// FaultTime is the virtual time of the originating fault — the dead
	// rank's clock at death, or the latest blocked clock for a pure
	// wedge. DetectedAt is the virtual time the failure is charged at:
	// the last survivor's blocked clock plus the watchdog deadline.
	FaultTime  float64
	DetectedAt float64
	// PanicValue carries the recovered value when Kind is "panic".
	PanicValue any
	// LastRecv[i] is rank i's last delivered message (Src -1 if none).
	LastRecv []RecvStamp
	// Waits is the wait graph: what each still-blocked rank waited on.
	Waits []WaitInfo
}

type rankState int8

const (
	stRunning rankState = iota
	stDone
	stDead
)

type waitKind int8

const (
	waitRecv waitKind = iota
	waitRecvAny
	waitBarrier
)

func (k waitKind) String() string {
	switch k {
	case waitRecv:
		return "recv"
	case waitRecvAny:
		return "recvany"
	default:
		return "barrier"
	}
}

// waiter describes what a blocked rank is waiting for, precisely enough
// for the wedge check to decide whether anything queued can satisfy it.
type waiter struct {
	kind     waitKind
	src, tag int
	gen      int // barrier generation awaited
	clock    float64
}

// supervisor tracks per-rank liveness and blocking for one Run.
type supervisor struct {
	w  *World
	mu sync.Mutex

	//gesp:guardedby:mu
	state []rankState
	//gesp:guardedby:mu
	blocked []*waiter
	//gesp:guardedby:mu
	active int // ranks still running (not done, not dead)
	//gesp:guardedby:mu
	nBlocked int

	// First death wins: it becomes the failure's root cause.
	deadRank  int
	deadKind  string
	deadClock float64
	deadPanic any

	failure atomic.Pointer[FailureReport]
}

func newSupervisor(w *World) *supervisor {
	s := &supervisor{w: w, deadRank: -1}
	s.state = make([]rankState, w.P)
	s.blocked = make([]*waiter, w.P)
	s.active = w.P
	return s
}

// block registers rank id as blocked on wt and runs the wedge check.
// It returns the world's failure error if one is (or just became)
// declared; the caller must then bail out instead of waiting.
func (s *supervisor) block(id int, wt waiter) error {
	if f := s.failure.Load(); f != nil {
		return f.Err
	}
	s.mu.Lock()
	if s.blocked[id] == nil {
		s.nBlocked++
	}
	s.blocked[id] = &wt
	s.checkWedge()
	s.mu.Unlock()
	if f := s.failure.Load(); f != nil {
		return f.Err
	}
	return nil
}

func (s *supervisor) unblock(id int) {
	s.mu.Lock()
	if s.blocked[id] != nil {
		s.blocked[id] = nil
		s.nBlocked--
	}
	s.mu.Unlock()
}

// rankDead marks a rank dead (kill, over-deadline stall, or panic). The
// world is not failed immediately: the survivors keep running to their
// deterministic quiescent state, where the wedge check converts the
// stall into a failure with reproducible clocks and counters.
func (s *supervisor) rankDead(id int, kind string, clock float64, panicValue any) {
	s.mu.Lock()
	if s.state[id] == stRunning {
		s.state[id] = stDead
		s.active--
		if s.blocked[id] != nil {
			s.blocked[id] = nil
			s.nBlocked--
		}
		if s.deadRank < 0 {
			s.deadRank, s.deadKind, s.deadClock, s.deadPanic = id, kind, clock, panicValue
		}
		s.checkWedge()
	}
	s.mu.Unlock()
}

// rankDone marks a rank's body as completed normally.
func (s *supervisor) rankDone(id int) {
	s.mu.Lock()
	if s.state[id] == stRunning {
		s.state[id] = stDone
		s.active--
		s.checkWedge()
	}
	s.mu.Unlock()
}

// checkWedge declares failure iff every live rank is blocked on an
// operation nothing queued or pending can satisfy. Caller holds s.mu.
//
//gesp:holds:s.mu
func (s *supervisor) checkWedge() {
	if s.failure.Load() != nil || s.active == 0 || s.nBlocked != s.active {
		return
	}
	w := s.w
	maxClock := 0.0
	for id, wt := range s.blocked {
		if wt == nil {
			continue
		}
		switch wt.kind {
		case waitRecv:
			if w.mail[id].queued(wt.src, wt.tag) {
				return // deliverable: the rank just hasn't woken yet
			}
		case waitRecvAny:
			if w.mail[id].queuedAny() {
				return
			}
		case waitBarrier:
			w.barrierMu.Lock()
			released := w.barrierGen != wt.gen
			w.barrierMu.Unlock()
			if released {
				return
			}
		}
		if wt.clock > maxClock {
			maxClock = wt.clock
		}
	}
	f := &FailureReport{Err: ErrTimeout, Kind: "wedge", Rank: -1, FaultTime: maxClock}
	if s.deadRank >= 0 {
		f.Err = ErrRankDead
		f.Kind, f.Rank = s.deadKind, s.deadRank
		f.FaultTime = s.deadClock
		f.PanicValue = s.deadPanic
	}
	f.DetectedAt = maxClock + w.plan.watchdog()
	f.LastRecv = make([]RecvStamp, w.P)
	for i, r := range w.ranks {
		key := r.lastRecvKey.Load()
		if key < 0 {
			f.LastRecv[i] = RecvStamp{Src: -1, Tag: -1}
			continue
		}
		f.LastRecv[i] = RecvStamp{Src: int(key >> 20), Tag: int(key & (1<<20 - 1)), Seq: r.lastRecvSeq.Load()}
	}
	for id, wt := range s.blocked {
		if wt == nil {
			continue
		}
		wi := WaitInfo{Rank: id, Op: wt.kind.String(), Src: -1, Tag: -1, Clock: wt.clock}
		if wt.kind == waitRecv {
			wi.Src, wi.Tag = wt.src, wt.tag
		}
		f.Waits = append(f.Waits, wi)
	}
	s.failWith(f)
}

// failWith publishes the failure (first writer wins) and wakes every
// blocked rank so it can observe it. Caller holds s.mu.
func (s *supervisor) failWith(f *FailureReport) {
	if !s.failure.CompareAndSwap(nil, f) {
		return
	}
	s.w.wakeAll()
}

// Failure returns the watchdog's report for the last Run, or nil if the
// world completed cleanly. Call after Run returns.
func (w *World) Failure() *FailureReport {
	return w.sup.failure.Load()
}

// startWallBackstop arms the real-time safety net: if the world is
// still running after d of wall time, it is force-failed so a test
// suite cannot hang even if the deterministic watchdog itself is broken.
// This is the one deliberate wall-clock dependency in the simulator —
// it only fires on bugs, and its report is marked nondeterministic.
//
//gesp:wallclock
func (w *World) startWallBackstop(d time.Duration) func() {
	t := time.AfterFunc(d, func() {
		w.sup.mu.Lock()
		w.sup.failWith(&FailureReport{Err: ErrTimeout, Kind: "wall-backstop", Rank: -1})
		w.sup.mu.Unlock()
	})
	return func() { t.Stop() }
}

// wakeAll broadcasts every condition variable a rank can block on.
// Each broadcast is made under the corresponding mutex so a rank that
// checked the failure flag and is about to wait cannot miss the wakeup.
func (w *World) wakeAll() {
	for _, mb := range w.mail {
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
	w.barrierMu.Lock()
	w.barrierCond.Broadcast()
	w.barrierMu.Unlock()
}
