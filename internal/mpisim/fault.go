package mpisim

import (
	"sync"
	"time"
)

// This file is the chaos-injection layer: a deterministic fault plan the
// runtime consults on every send and at every runtime-call boundary. The
// paper's target machine (a Cray T3E) lost nodes routinely; the plan
// lets the test suite reproduce that world exactly — same seed, same
// plan, same program ⇒ the same messages are dropped, duplicated and
// delayed, the same ranks die at the same virtual instants, and the
// simulated times and counters come out bit-identical.

// DefaultWatchdogDeadline is the virtual detection latency the watchdog
// charges when it converts a dead rank or a wedged world into an error
// (1 ms of simulated time, ~50 T3E message latencies).
const DefaultWatchdogDeadline = 1e-3

// RankFault schedules a one-shot kill or stall of a single rank.
type RankFault struct {
	// Rank is the victim.
	Rank int
	// At is the virtual time threshold: the fault fires at the victim's
	// first runtime call whose clock is at or past At.
	At float64
	// Stall is zero for a kill. A stall shorter than the watchdog
	// deadline is a transient hiccup (the victim's clock jumps by Stall
	// and it keeps running); a longer one is indistinguishable from
	// death to any watchdog and is treated as a dead rank with failure
	// kind "stall".
	Stall float64
}

// FaultPlan is a deterministic chaos schedule for one world — or one
// checkpoint/restart lineage of worlds. Message-level decisions (drop,
// duplicate, jitter) are pure functions of (Seed, src, dst, tag, seq),
// so two runs of the same program under identical plans behave
// identically. One-shot state (fired rank faults, the drop budget) is
// mutable: share a single plan across restart attempts so a fault is
// not re-injected into the recovered run, and build a fresh plan (see
// faultsim.Chaos) for each independent run.
type FaultPlan struct {
	// Seed drives every probabilistic decision.
	Seed int64
	// DelayJitter is the maximum extra virtual latency added per
	// message, drawn uniformly (and deterministically) in [0, DelayJitter).
	DelayJitter float64
	// DupProb is the probability a point-to-point send is delivered
	// twice. Duplication is harmless by construction: delivery is
	// idempotent (sequence-numbered dedup by (src, tag, seq)).
	DupProb float64
	// DropProb is the probability a point-to-point send is lost in the
	// network, bounded by MaxDrops.
	DropProb float64
	// MaxDrops is the total drop budget across the plan's lifetime
	// (including restarts); with DropProb > 0 a non-positive budget
	// means 1. A bounded budget guarantees a checkpoint/restart driver
	// eventually outruns the chaos.
	MaxDrops int
	// RankFaults lists one-shot kills and stalls.
	RankFaults []RankFault
	// WatchdogDeadline overrides DefaultWatchdogDeadline when positive.
	WatchdogDeadline float64
	// WallBackstop, when positive, arms a real-time safety net that
	// force-fails the world if Run has not finished within the duration —
	// a belt-and-suspenders guard for test suites, never a substitute
	// for the virtual-clock watchdog (its firing is inherently
	// nondeterministic and excluded from every determinism guarantee).
	WallBackstop time.Duration

	mu sync.Mutex
	//gesp:guardedby:mu
	fired []bool
	//gesp:guardedby:mu
	drops int
}

// watchdog returns the effective detection deadline in virtual seconds.
func (p *FaultPlan) watchdog() float64 {
	if p != nil && p.WatchdogDeadline > 0 {
		return p.WatchdogDeadline
	}
	return DefaultWatchdogDeadline
}

// nextRankFault fires (at most) the first unfired fault scheduled for
// rank at or before clock, marking it consumed.
func (p *FaultPlan) nextRankFault(rank int, clock float64) *RankFault {
	if len(p.RankFaults) == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fired == nil {
		p.fired = make([]bool, len(p.RankFaults))
	}
	for i := range p.RankFaults {
		rf := &p.RankFaults[i]
		if !p.fired[i] && rf.Rank == rank && clock >= rf.At {
			p.fired[i] = true
			out := *rf
			return &out
		}
	}
	return nil
}

// dropMessage decides whether a send is lost, consuming drop budget.
func (p *FaultPlan) dropMessage(src, dst, tag int, seq int64) bool {
	if p.DropProb <= 0 || chance(p.Seed, saltDrop, src, dst, tag, seq) >= p.DropProb {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	budget := p.MaxDrops
	if budget <= 0 {
		budget = 1
	}
	if p.drops >= budget {
		return false
	}
	p.drops++
	return true
}

// dupMessage decides whether a send is delivered twice.
func (p *FaultPlan) dupMessage(src, dst, tag int, seq int64) bool {
	return p.DupProb > 0 && chance(p.Seed, saltDup, src, dst, tag, seq) < p.DupProb
}

// delayFor returns the deterministic jitter added to a message's
// transit time.
func (p *FaultPlan) delayFor(src, dst, tag int, seq int64) float64 {
	if p.DelayJitter <= 0 {
		return 0
	}
	return chance(p.Seed, saltDelay, src, dst, tag, seq) * p.DelayJitter
}

const (
	saltDrop  = 0xD509_0001
	saltDup   = 0xD509_0002
	saltDelay = 0xD509_0003

	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// chance hashes the decision coordinates into [0, 1) with FNV-1a. The
// sequence number makes every message's fate independent; the salt
// decorrelates the drop, duplicate and delay decisions for one message.
func chance(seed int64, salt uint64, src, dst, tag int, seq int64) float64 {
	h := uint64(fnvOffset64)
	h = fnvMix64(h, uint64(seed))
	h = fnvMix64(h, salt)
	h = fnvMix64(h, uint64(src))
	h = fnvMix64(h, uint64(dst))
	h = fnvMix64(h, uint64(tag))
	h = fnvMix64(h, uint64(seq))
	return float64(h>>11) / (1 << 53)
}

func fnvMix64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// rankDeath unwinds the goroutine of a rank the fault plan just killed;
// rankAbort unwinds a rank that hit a world failure through the
// panic-on-error legacy API (Send/Recv/Barrier without the Timeout
// suffix). World.Run recovers both.
type rankDeath struct{}

type rankAbort struct{ err error }
