package ordering

import (
	"sort"

	"gesp/internal/sparse"
)

// NestedDissection computes a nested-dissection ordering of a symmetric
// pattern (the paper's step (2) alternative: "We can also use nested
// dissection on AᵀA or A+Aᵀ [17]"). Separators are found with a
// breadth-first level bisection: BFS from a pseudo-peripheral vertex, cut
// at the median level, and take the boundary as the separator. Each
// separator is numbered last, recursively. Small subgraphs fall back to
// minimum degree, as production ND codes do.
func NestedDissection(p *sparse.Pattern) []int {
	n := p.N
	perm := make([]int, n)
	vertices := make([]int, n)
	for i := range vertices {
		vertices[i] = i
	}
	next := n // next position to assign, counting down
	var dissect func(verts []int)

	// active marks the vertices of the current subproblem.
	active := make([]int, n)
	for i := range active {
		active[i] = -1
	}
	gen := 0

	const cutoff = 32

	dissect = func(verts []int) {
		if len(verts) == 0 {
			return
		}
		if len(verts) <= cutoff {
			sub := subPattern(p, verts)
			mdPerm := MinimumDegree(sub)
			// mdPerm is a local permutation; place the block at the tail
			// of the available range.
			base := next - len(verts)
			for li, v := range verts {
				perm[v] = base + mdPerm[li]
			}
			next = base
			return
		}
		gen++
		myGen := gen
		for li, v := range verts {
			active[v] = myGen
			_ = li
		}
		// BFS from a pseudo-peripheral vertex within the subgraph.
		depthOf := make(map[int]int, len(verts))
		bfs := func(start int) (last, depth int) {
			clear(depthOf)
			queue := []int{start}
			depthOf[start] = 0
			last = start
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				last = v
				depth = depthOf[v]
				for k := p.Ptr[v]; k < p.Ptr[v+1]; k++ {
					u := p.Ind[k]
					if active[u] == myGen {
						if _, ok := depthOf[u]; !ok {
							depthOf[u] = depthOf[v] + 1
							queue = append(queue, u)
						}
					}
				}
			}
			return last, depth
		}
		// One far-hop gives a good-enough pseudo-peripheral root; the
		// second BFS both measures the eccentricity and leaves depthOf
		// rooted there.
		far, _ := bfs(verts[0])
		_, d := bfs(far)
		// Disconnected subgraph: vertices unreached by the BFS form their
		// own component; recurse on them separately.
		var unreached []int
		var reached []int
		for _, v := range verts {
			if _, ok := depthOf[v]; ok {
				reached = append(reached, v)
			} else {
				unreached = append(unreached, v)
			}
		}
		if len(unreached) > 0 {
			dissect(unreached)
			dissect(reached)
			return
		}
		// Cut at the median level; the separator is the cut level itself.
		cut := d / 2
		var left, right, sep []int
		for _, v := range verts {
			switch dv := depthOf[v]; {
			case dv < cut:
				left = append(left, v)
			case dv > cut:
				right = append(right, v)
			default:
				sep = append(sep, v)
			}
		}
		if len(left) == 0 || len(right) == 0 {
			// Degenerate split (e.g. a clique): fall back to minimum degree.
			sub := subPattern(p, verts)
			mdPerm := MinimumDegree(sub)
			base := next - len(verts)
			for li, v := range verts {
				perm[v] = base + mdPerm[li]
			}
			next = base
			return
		}
		// Separator is eliminated last.
		sort.Ints(sep)
		for i := len(sep) - 1; i >= 0; i-- {
			next--
			perm[sep[i]] = next
		}
		dissect(right)
		dissect(left)
	}
	dissect(vertices)
	return perm
}

// subPattern extracts the induced subgraph on verts with local indices.
func subPattern(p *sparse.Pattern, verts []int) *sparse.Pattern {
	local := make(map[int]int, len(verts))
	for li, v := range verts {
		local[v] = li
	}
	sub := &sparse.Pattern{N: len(verts), Ptr: make([]int, len(verts)+1)}
	for li, v := range verts {
		for k := p.Ptr[v]; k < p.Ptr[v+1]; k++ {
			if lu, ok := local[p.Ind[k]]; ok {
				sub.Ind = append(sub.Ind, lu)
			}
		}
		seg := sub.Ind[sub.Ptr[li]:]
		sort.Ints(seg)
		sub.Ptr[li+1] = len(sub.Ind)
	}
	return sub
}
