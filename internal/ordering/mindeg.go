// Package ordering provides fill-reducing symmetric orderings for step (2)
// of the GESP algorithm: a quotient-graph minimum-degree algorithm (in the
// spirit of Liu's MMD as cited by the paper), reverse Cuthill–McKee, and
// the natural ordering. GESP applies the resulting permutation to both the
// rows and columns of the matched matrix so the large diagonal from step
// (1) is preserved.
package ordering

import (
	"gesp/internal/sparse"
)

// Method selects the fill-reducing heuristic.
type Method int

const (
	// MinDegATA runs minimum degree on the pattern of AᵀA (robust for any
	// row permutation; the paper's default via MMD on AᵀA).
	MinDegATA Method = iota
	// MinDegAPlusAT runs minimum degree on A+Aᵀ (cheaper; good for nearly
	// structurally symmetric matrices).
	MinDegAPlusAT
	// RCM is reverse Cuthill–McKee on A+Aᵀ, a bandwidth reducer included
	// for ablation benchmarks.
	RCM
	// Natural keeps the identity ordering.
	Natural
	// NDATA is nested dissection on AᵀA (the paper's step (2) mentions
	// nested dissection as an alternative to minimum degree).
	NDATA
	// NDAPlusAT is nested dissection on A+Aᵀ.
	NDAPlusAT
)

func (m Method) String() string {
	switch m {
	case MinDegATA:
		return "mmd-ata"
	case MinDegAPlusAT:
		return "mmd-at+a"
	case RCM:
		return "rcm"
	case Natural:
		return "natural"
	case NDATA:
		return "nd-ata"
	case NDAPlusAT:
		return "nd-at+a"
	}
	return "unknown"
}

// Order computes a fill-reducing permutation (old index -> new index) for
// the square matrix a using the chosen method.
func Order(a *sparse.CSC, m Method) []int {
	switch m {
	case MinDegATA:
		return MinimumDegree(sparse.PatternATA(a))
	case MinDegAPlusAT:
		return MinimumDegree(sparse.PatternAPlusAT(a))
	case RCM:
		return ReverseCuthillMcKee(sparse.PatternAPlusAT(a))
	case NDATA:
		return NestedDissection(sparse.PatternATA(a))
	case NDAPlusAT:
		return NestedDissection(sparse.PatternAPlusAT(a))
	default:
		return sparse.IdentityPerm(a.Cols)
	}
}

// MinimumDegree computes a minimum external degree ordering of the
// symmetric pattern using a quotient graph with element absorption. It
// returns the permutation perm with perm[old] = new (elimination position).
//
// Degrees are recomputed exactly after each elimination over the affected
// vertices; this is O(n·m) worst case but fast in practice on the
// stencil-like graphs of the testbed, and keeps the implementation honest
// enough to test against fill counts.
func MinimumDegree(p *sparse.Pattern) []int {
	n := p.N
	// Quotient graph state. Vertex ids double as element ids once
	// eliminated. Variable-neighbour lists only ever compact in place, so
	// they are carved from one contiguous slab (a copy of the pattern)
	// instead of n separate heap slices: adjacent vertices' lists stay
	// adjacent in memory, which is where the degree-update sweeps spend
	// their time.
	adjn := make([][]int, n) // variable neighbours
	adje := make([][]int, n) // element neighbours
	boundary := make([][]int, n)
	eliminated := make([]bool, n)
	absorbedInto := make([]int, n) // -1, or the element this one merged into
	adjSlab := make([]int, len(p.Ind))
	copy(adjSlab, p.Ind)
	for v := 0; v < n; v++ {
		adjn[v] = adjSlab[p.Ptr[v]:p.Ptr[v+1]:p.Ptr[v+1]]
		absorbedInto[v] = -1
	}

	// Degree buckets: doubly linked lists indexed by current degree.
	deg := make([]int, n)
	head := make([]int, n+1)
	next := make([]int, n)
	prev := make([]int, n)
	for d := range head {
		head[d] = -1
	}
	insert := func(v, d int) {
		deg[v] = d
		next[v] = head[d]
		prev[v] = -1
		if head[d] != -1 {
			prev[head[d]] = v
		}
		head[d] = v
	}
	remove := func(v int) {
		if prev[v] != -1 {
			next[prev[v]] = next[v]
		} else {
			head[deg[v]] = next[v]
		}
		if next[v] != -1 {
			prev[next[v]] = prev[v]
		}
	}
	for v := 0; v < n; v++ {
		insert(v, len(adjn[v]))
	}

	find := func(e int) int {
		for absorbedInto[e] != -1 {
			e = absorbedInto[e]
		}
		return e
	}

	// Generation-stamped scratch marks: markGen/deg2Gen strictly increase, so
	// stale stamps from earlier rounds can never alias the current one.
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	mark2 := make([]int, n)
	for i := range mark2 {
		mark2[i] = -1
	}
	markGen, deg2Gen := 0, 0
	perm := make([]int, n)
	lv := make([]int, 0, 64)
	minDeg := 0

	for pos := 0; pos < n; pos++ {
		// Find the minimum-degree vertex.
		for minDeg <= n && head[minDeg] == -1 {
			minDeg++
		}
		v := head[minDeg]
		remove(v)
		eliminated[v] = true
		perm[v] = pos

		// Build Lv = boundary of the new element v.
		markGen++
		lv = lv[:0]
		for _, u := range adjn[v] {
			if !eliminated[u] && mark[u] != markGen {
				mark[u] = markGen
				lv = append(lv, u)
			}
		}
		for _, e0 := range adje[v] {
			e := find(e0)
			if e == v || absorbedInto[e] != -1 {
				continue
			}
			for _, u := range boundary[e] {
				if !eliminated[u] && u != v && mark[u] != markGen {
					mark[u] = markGen
					lv = append(lv, u)
				}
			}
			absorbedInto[e] = v
			boundary[e] = nil
		}
		boundary[v] = append([]int(nil), lv...)
		adjn[v], adje[v] = nil, nil

		// Update each boundary vertex.
		for _, u := range lv {
			// Compact variable neighbours: drop eliminated vertices and
			// vertices covered by the new element.
			w := adjn[u][:0]
			for _, x := range adjn[u] {
				if !eliminated[x] && mark[x] != markGen {
					w = append(w, x)
				}
			}
			adjn[u] = w
			// Compact element neighbours: resolve absorption, dedupe, and
			// append the new element.
			we := adje[u][:0]
			for _, e0 := range adje[u] {
				e := find(e0)
				if e == v { // the new element is appended below
					continue
				}
				dup := false
				for _, y := range we {
					if y == e {
						dup = true
						break
					}
				}
				if !dup {
					we = append(we, e)
				}
			}
			adje[u] = append(we, v)

			// Exact external degree: |adjn[u]| plus union of live element
			// boundaries, excluding u itself.
			deg2Gen++
			d := 0
			mark2[u] = deg2Gen
			for _, x := range adjn[u] {
				if mark2[x] != deg2Gen {
					mark2[x] = deg2Gen
					d++
				}
			}
			for _, e := range adje[u] {
				for _, x := range boundary[e] {
					if !eliminated[x] && mark2[x] != deg2Gen {
						mark2[x] = deg2Gen
						d++
					}
				}
			}
			remove(u)
			insert(u, d)
			if d < minDeg {
				minDeg = d
			}
		}
	}
	return perm
}
