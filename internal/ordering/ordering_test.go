package ordering

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gesp/internal/sparse"
)

// patternFromEdges builds a symmetric Pattern from an undirected edge list.
func patternFromEdges(n int, edges [][2]int) *sparse.Pattern {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	p := &sparse.Pattern{N: n, Ptr: make([]int, n+1)}
	for v := 0; v < n; v++ {
		seen := map[int]bool{}
		var u []int
		for _, w := range adj[v] {
			if w != v && !seen[w] {
				seen[w] = true
				u = append(u, w)
			}
		}
		for i := 1; i < len(u); i++ {
			for j := i; j > 0 && u[j] < u[j-1]; j-- {
				u[j], u[j-1] = u[j-1], u[j]
			}
		}
		p.Ind = append(p.Ind, u...)
		p.Ptr[v+1] = len(p.Ind)
	}
	return p
}

// symbolicFill counts fill-in edges created by symmetric Gaussian
// elimination of the pattern in the given order (perm: old -> new).
// Brute-force set simulation; for test-sized graphs only.
func symbolicFill(p *sparse.Pattern, perm []int) int {
	n := p.N
	inv := sparse.InversePerm(perm)
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = map[int]bool{}
	}
	for v := 0; v < n; v++ {
		for k := p.Ptr[v]; k < p.Ptr[v+1]; k++ {
			adj[v][p.Ind[k]] = true
		}
	}
	fill := 0
	eliminated := make([]bool, n)
	for pos := 0; pos < n; pos++ {
		v := inv[pos]
		var nbrs []int
		for u := range adj[v] {
			if !eliminated[u] {
				nbrs = append(nbrs, u)
			}
		}
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				a, b := nbrs[i], nbrs[j]
				if !adj[a][b] {
					adj[a][b] = true
					adj[b][a] = true
					fill++
				}
			}
		}
		eliminated[v] = true
	}
	return fill
}

func gridPattern(rows, cols int) *sparse.Pattern {
	var edges [][2]int
	id := func(i, j int) int { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				edges = append(edges, [2]int{id(i, j), id(i, j+1)})
			}
			if i+1 < rows {
				edges = append(edges, [2]int{id(i, j), id(i+1, j)})
			}
		}
	}
	return patternFromEdges(rows*cols, edges)
}

func TestMinimumDegreePathGraphNoFill(t *testing.T) {
	// A path is chordal: minimum degree must find a no-fill ordering.
	n := 50
	var edges [][2]int
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	p := patternFromEdges(n, edges)
	perm := MinimumDegree(p)
	if err := sparse.CheckPerm(perm, n); err != nil {
		t.Fatal(err)
	}
	if fill := symbolicFill(p, perm); fill != 0 {
		t.Errorf("path graph fill = %d, want 0", fill)
	}
}

func TestMinimumDegreeStarGraph(t *testing.T) {
	// Star: leaves must be eliminated before the hub; zero fill results.
	n := 20
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{0, i})
	}
	p := patternFromEdges(n, edges)
	perm := MinimumDegree(p)
	// Once one leaf remains, hub and leaf tie at degree 1, so the hub may be
	// eliminated at position n-2 or n-1; any earlier means degrees are wrong.
	if perm[0] < n-2 {
		t.Errorf("hub eliminated at position %d, want >= %d", perm[0], n-2)
	}
	if fill := symbolicFill(p, perm); fill != 0 {
		t.Errorf("star graph fill = %d, want 0", fill)
	}
}

func TestMinimumDegreeTreeNoFill(t *testing.T) {
	// Any tree is chordal: MD must achieve zero fill.
	rng := rand.New(rand.NewSource(5))
	n := 60
	var edges [][2]int
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{rng.Intn(v), v})
	}
	p := patternFromEdges(n, edges)
	perm := MinimumDegree(p)
	if fill := symbolicFill(p, perm); fill != 0 {
		t.Errorf("tree fill = %d, want 0", fill)
	}
}

func TestMinimumDegreeBeatsNaturalOnGrid(t *testing.T) {
	p := gridPattern(9, 9)
	n := p.N
	md := MinimumDegree(p)
	if err := sparse.CheckPerm(md, n); err != nil {
		t.Fatal(err)
	}
	fillMD := symbolicFill(p, md)
	fillNat := symbolicFill(p, sparse.IdentityPerm(n))
	if fillMD >= fillNat {
		t.Errorf("grid fill: MD %d, natural %d; MD should win", fillMD, fillNat)
	}
	t.Logf("9x9 grid fill: MD=%d natural=%d", fillMD, fillNat)
}

func TestMinimumDegreeIsPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		var edges [][2]int
		for k := 0; k < n*2; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				edges = append(edges, [2]int{a, b})
			}
		}
		p := patternFromEdges(n, edges)
		perm := MinimumDegree(p)
		return sparse.CheckPerm(perm, n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func bandwidth(p *sparse.Pattern, perm []int) int {
	bw := 0
	for v := 0; v < p.N; v++ {
		for k := p.Ptr[v]; k < p.Ptr[v+1]; k++ {
			if d := perm[v] - perm[p.Ind[k]]; d > bw {
				bw = d
			} else if -d > bw {
				bw = -d
			}
		}
	}
	return bw
}

func TestRCMReducesBandwidth(t *testing.T) {
	// A path presented in shuffled labels has large natural bandwidth; RCM
	// must restore bandwidth 1.
	rng := rand.New(rand.NewSource(9))
	n := 40
	labels := rng.Perm(n)
	var edges [][2]int
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{labels[i], labels[i+1]})
	}
	p := patternFromEdges(n, edges)
	perm := ReverseCuthillMcKee(p)
	if err := sparse.CheckPerm(perm, n); err != nil {
		t.Fatal(err)
	}
	if bw := bandwidth(p, perm); bw != 1 {
		t.Errorf("RCM bandwidth on shuffled path = %d, want 1", bw)
	}
}

func TestRCMHandlesDisconnected(t *testing.T) {
	p := patternFromEdges(6, [][2]int{{0, 1}, {2, 3}}) // plus isolated 4, 5
	perm := ReverseCuthillMcKee(p)
	if err := sparse.CheckPerm(perm, 6); err != nil {
		t.Fatal(err)
	}
}

func TestMinimumDegreeHandlesDisconnected(t *testing.T) {
	p := patternFromEdges(7, [][2]int{{0, 1}, {1, 2}, {4, 5}})
	perm := MinimumDegree(p)
	if err := sparse.CheckPerm(perm, 7); err != nil {
		t.Fatal(err)
	}
	if fill := symbolicFill(p, perm); fill != 0 {
		t.Errorf("disconnected forest fill = %d, want 0", fill)
	}
}

func TestOrderDispatch(t *testing.T) {
	a := sparse.FromDense([][]float64{
		{4, 1, 0, 0},
		{1, 4, 1, 0},
		{0, 1, 4, 1},
		{0, 0, 1, 4},
	})
	for _, m := range []Method{MinDegATA, MinDegAPlusAT, RCM, Natural} {
		perm := Order(a, m)
		if err := sparse.CheckPerm(perm, 4); err != nil {
			t.Errorf("%v: %v", m, err)
		}
		if m.String() == "unknown" {
			t.Errorf("method %d has no name", m)
		}
	}
	nat := Order(a, Natural)
	for i, v := range nat {
		if v != i {
			t.Error("Natural ordering is not identity")
			break
		}
	}
}

func TestNestedDissectionGrid(t *testing.T) {
	p := gridPattern(12, 12)
	n := p.N
	nd := NestedDissection(p)
	if err := sparse.CheckPerm(nd, n); err != nil {
		t.Fatal(err)
	}
	fillND := symbolicFill(p, nd)
	fillNat := symbolicFill(p, sparse.IdentityPerm(n))
	if fillND >= fillNat {
		t.Errorf("grid fill: ND %d, natural %d; ND should win", fillND, fillNat)
	}
	t.Logf("12x12 grid fill: ND=%d natural=%d MD=%d", fillND, fillNat, symbolicFill(p, MinimumDegree(p)))
}

func TestNestedDissectionPathNoFillExplosion(t *testing.T) {
	n := 100
	var edges [][2]int
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	p := patternFromEdges(n, edges)
	perm := NestedDissection(p)
	if err := sparse.CheckPerm(perm, n); err != nil {
		t.Fatal(err)
	}
	// ND on a path yields O(n log n)-ish fill at worst; far below dense.
	if fill := symbolicFill(p, perm); fill > n*10 {
		t.Errorf("path fill %d too large", fill)
	}
}

func TestNestedDissectionDisconnected(t *testing.T) {
	p := patternFromEdges(50, [][2]int{{0, 1}, {2, 3}, {10, 11}, {11, 12}})
	perm := NestedDissection(p)
	if err := sparse.CheckPerm(perm, 50); err != nil {
		t.Fatal(err)
	}
}

func TestNestedDissectionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(120)
		var edges [][2]int
		for k := 0; k < n*3; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				edges = append(edges, [2]int{a, b})
			}
		}
		p := patternFromEdges(n, edges)
		return sparse.CheckPerm(NestedDissection(p), n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOrderDispatchND(t *testing.T) {
	a := sparse.FromDense([][]float64{
		{4, 1, 0, 0},
		{1, 4, 1, 0},
		{0, 1, 4, 1},
		{0, 0, 1, 4},
	})
	for _, m := range []Method{NDATA, NDAPlusAT} {
		if err := sparse.CheckPerm(Order(a, m), 4); err != nil {
			t.Errorf("%v: %v", m, err)
		}
		if m.String() == "unknown" {
			t.Errorf("method %d has no name", m)
		}
	}
}
