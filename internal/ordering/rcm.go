package ordering

import (
	"sort"

	"gesp/internal/sparse"
)

// ReverseCuthillMcKee computes the RCM ordering of a symmetric pattern,
// returning perm with perm[old] = new. Each connected component is started
// from a pseudo-peripheral vertex found by repeated BFS.
func ReverseCuthillMcKee(p *sparse.Pattern) []int {
	n := p.N
	degree := func(v int) int { return p.Ptr[v+1] - p.Ptr[v] }
	visited := make([]bool, n)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)

	bfsDepth := func(start int, scratch []bool) (last, depth int) {
		for i := range scratch {
			scratch[i] = false
		}
		q := []int{start}
		scratch[start] = true
		last = start
		for len(q) > 0 {
			depth++
			var nq []int
			for _, v := range q {
				last = v
				for k := p.Ptr[v]; k < p.Ptr[v+1]; k++ {
					u := p.Ind[k]
					if !scratch[u] && !visited[u] {
						scratch[u] = true
						nq = append(nq, u)
					}
				}
			}
			q = nq
		}
		return last, depth
	}

	scratch := make([]bool, n)
	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		// Pseudo-peripheral start: hop to the BFS-farthest vertex until the
		// eccentricity stops growing, then start from the last far vertex.
		cur := root
		far, ecc := bfsDepth(cur, scratch)
		for {
			far2, ecc2 := bfsDepth(far, scratch)
			if ecc2 <= ecc {
				cur = far
				break
			}
			cur, far, ecc = far, far2, ecc2
		}
		start := cur
		// Cuthill–McKee BFS with neighbours sorted by ascending degree.
		queue = queue[:0]
		queue = append(queue, start)
		visited[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			nbrs := make([]int, 0, degree(v))
			for k := p.Ptr[v]; k < p.Ptr[v+1]; k++ {
				if u := p.Ind[k]; !visited[u] {
					visited[u] = true
					nbrs = append(nbrs, u)
				}
			}
			sort.Slice(nbrs, func(a, b int) bool {
				da, db := degree(nbrs[a]), degree(nbrs[b])
				if da != db {
					return da < db
				}
				return nbrs[a] < nbrs[b]
			})
			queue = append(queue, nbrs...)
		}
	}
	// Reverse.
	perm := make([]int, n)
	for k, v := range order {
		perm[v] = n - 1 - k
	}
	return perm
}
