// Package superlu provides the supernodal blocked right-looking
// factorization engines — the uniprocessor organization of SuperLU that
// the paper's performance discussion presumes (dense block kernels over
// the supernode partition, instead of scalar column arithmetic), plus
// its shared-memory parallel counterpart scheduled over the static task
// DAG (internal/sched). The serial engine is also the single-process
// reference for the distributed algorithm: both run the identical block
// schedule, so their factors agree exactly.
package superlu

import (
	"fmt"

	"gesp/internal/dist"
	"gesp/internal/lu"
	"gesp/internal/sched"
	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

// Factorize runs the blocked right-looking GESP factorization serially
// and returns standard column-format factors (interchangeable with
// lu.Factorize output, up to round-off ordering).
func Factorize(a *sparse.CSC, sym *symbolic.Result, opts lu.Options) (*lu.Factors, error) {
	if err := checkDims(a, sym); err != nil {
		return nil, err
	}
	blocks, tiny, err := dist.FactorizeBlocked(a, sym, opts)
	if err != nil {
		return nil, err
	}
	return gather(a, sym, blocks, tiny), nil
}

// FactorizeParallel runs the same block schedule on the sched DAG
// worker pool: panel factors, panel solves and Schur updates execute
// concurrently wherever the static dependency structure allows. workers
// <= 0 uses GOMAXPROCS. The factors agree with the serial engines up to
// the rounding reordering of commuted update sums (componentwise, not
// bitwise).
func FactorizeParallel(a *sparse.CSC, sym *symbolic.Result, opts lu.Options, workers int) (*lu.Factors, error) {
	if err := checkDims(a, sym); err != nil {
		return nil, err
	}
	blocks, tiny, err := sched.Factorize(a, sym, opts, workers)
	if err != nil {
		return nil, err
	}
	return gather(a, sym, blocks, tiny), nil
}

func checkDims(a *sparse.CSC, sym *symbolic.Result) error {
	if a.Rows != sym.N || a.Cols != sym.N {
		return fmt.Errorf("superlu: matrix is %dx%d, symbolic structure is for n=%d", a.Rows, a.Cols, sym.N)
	}
	return nil
}

// gather scatters the factored blocks back into column-major factor
// arrays parallel to the symbolic pattern.
func gather(a *sparse.CSC, sym *symbolic.Result, blocks *dist.BlockSet, tiny int) *lu.Factors {
	n := sym.N
	f := &lu.Factors{
		Sym:        sym,
		LVal:       make([]float64, sym.NnzL()),
		UVal:       make([]float64, sym.NnzU()),
		TinyPivots: tiny,
		ColAMax:    make([]float64, n),
	}
	for j := 0; j < n; j++ {
		cmax := 0.0
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if v := a.Val[k]; v > cmax {
				cmax = v
			} else if -v > cmax {
				cmax = -v
			}
		}
		f.ColAMax[j] = cmax
		bj := sym.SupOf[j]
		for p := sym.UPtr[j]; p < sym.UPtr[j+1]; p++ {
			i := sym.UInd[p]
			f.UVal[p] = blocks.At(sym.SupOf[i], bj, i, j)
		}
		for q := sym.LPtr[j]; q < sym.LPtr[j+1]; q++ {
			i := sym.LInd[q]
			f.LVal[q] = blocks.At(sym.SupOf[i], bj, i, j)
		}
	}
	return f
}
