// Package superlu provides the serial supernodal blocked right-looking
// factorization engine — the uniprocessor organization of SuperLU that
// the paper's performance discussion presumes (dense block kernels over
// the supernode partition, instead of scalar column arithmetic). It is
// also the single-process reference for the distributed algorithm: both
// run the identical block schedule, so their factors agree exactly.
package superlu

import (
	"fmt"

	"gesp/internal/dist"
	"gesp/internal/lu"
	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

// Factorize runs the blocked right-looking GESP factorization serially
// and returns standard column-format factors (interchangeable with
// lu.Factorize output, up to round-off ordering).
func Factorize(a *sparse.CSC, sym *symbolic.Result, opts lu.Options) (*lu.Factors, error) {
	n := sym.N
	if a.Rows != n || a.Cols != n {
		return nil, fmt.Errorf("superlu: matrix is %dx%d, symbolic structure is for n=%d", a.Rows, a.Cols, n)
	}
	blocks, tiny, err := dist.FactorizeBlocked(a, sym, opts)
	if err != nil {
		return nil, err
	}
	// Scatter the blocks back into column-major factor arrays.
	f := &lu.Factors{
		Sym:        sym,
		LVal:       make([]float64, sym.NnzL()),
		UVal:       make([]float64, sym.NnzU()),
		TinyPivots: tiny,
		ColAMax:    make([]float64, n),
	}
	for j := 0; j < n; j++ {
		cmax := 0.0
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if v := a.Val[k]; v > cmax {
				cmax = v
			} else if -v > cmax {
				cmax = -v
			}
		}
		f.ColAMax[j] = cmax
		bj := sym.SupOf[j]
		for p := sym.UPtr[j]; p < sym.UPtr[j+1]; p++ {
			i := sym.UInd[p]
			f.UVal[p] = blocks.At(sym.SupOf[i], bj, i, j)
		}
		for q := sym.LPtr[j]; q < sym.LPtr[j+1]; q++ {
			i := sym.LInd[q]
			f.LVal[q] = blocks.At(sym.SupOf[i], bj, i, j)
		}
	}
	return f, nil
}
