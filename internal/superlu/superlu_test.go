package superlu

import (
	"math"
	"math/rand"
	"testing"

	"gesp/internal/lu"
	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

func randomSystem(rng *rand.Rand, n int, density float64) (*sparse.CSC, *symbolic.Result) {
	tr := sparse.NewTriplet(n, n)
	for j := 0; j < n; j++ {
		tr.Append(j, j, 4+rng.Float64())
		for i := 0; i < n; i++ {
			if i != j && rng.Float64() < density {
				tr.Append(i, j, rng.NormFloat64()*0.5)
			}
		}
	}
	a := tr.ToCSC()
	sym, err := symbolic.Factorize(a, symbolic.Options{MaxSuper: 8})
	if err != nil {
		panic(err)
	}
	return a, sym
}

func TestSupernodalMatchesColumnFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		n := 60 + rng.Intn(100)
		a, sym := randomSystem(rng, n, 0.06)
		col, err := lu.Factorize(a, sym, lu.Options{ReplaceTinyPivot: true})
		if err != nil {
			t.Fatal(err)
		}
		blk, err := Factorize(a, sym, lu.Options{ReplaceTinyPivot: true})
		if err != nil {
			t.Fatal(err)
		}
		scale := a.MaxAbs()
		for q := range col.LVal {
			if d := math.Abs(col.LVal[q] - blk.LVal[q]); d > 1e-10*scale {
				t.Fatalf("trial %d: L diverges by %g at %d", trial, d, q)
			}
		}
		for p := range col.UVal {
			if d := math.Abs(col.UVal[p] - blk.UVal[p]); d > 1e-10*scale {
				t.Fatalf("trial %d: U diverges by %g at %d", trial, d, p)
			}
		}
	}
}

func TestSupernodalSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a, sym := randomSystem(rng, 150, 0.05)
	f, err := Factorize(a, sym, lu.Options{ReplaceTinyPivot: true})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, a.Rows)
	for i := range want {
		want[i] = float64(i%9) - 4
	}
	b := make([]float64, a.Rows)
	a.MatVec(b, want)
	f.Solve(b)
	if e := sparse.RelErrInf(b, want); e > 1e-9 {
		t.Fatalf("blocked factors solve error %g", e)
	}
}

func TestSupernodalZeroPivot(t *testing.T) {
	tr := sparse.NewTriplet(2, 2)
	tr.Append(0, 1, 1)
	tr.Append(1, 0, 1)
	tr.Append(0, 0, 0)
	tr.Append(1, 1, 0)
	a := tr.ToCSC()
	sym, _ := symbolic.Factorize(a, symbolic.Options{})
	if _, err := Factorize(a, sym, lu.Options{}); err == nil {
		t.Error("zero pivot accepted without replacement")
	}
	f, err := Factorize(a, sym, lu.Options{ReplaceTinyPivot: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.TinyPivots == 0 {
		t.Error("tiny pivots not counted")
	}
}
