package superlu

import (
	"math"
	"math/rand"
	"testing"

	"gesp/internal/kernels"
	"gesp/internal/lu"
)

// TestKernelModesBitIdentical is the engine-level statement of the
// kernel campaign's bit-exactness contract: the scalar column
// factorization and the serial blocked engine each produce
// fingerprint-identical factors under every kernel mode, and the
// batched multi-RHS solve stays bitwise equal to repeated single-RHS
// solves in every mode.
func TestKernelModesBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	a, sym := randomSystem(rng, 120, 0.06)
	modes := []kernels.Mode{kernels.ModeScalar, kernels.ModeBlocked, kernels.ModeBlockedArena}

	factorUnder := func(m kernels.Mode, engine func() (*lu.Factors, error)) *lu.Factors {
		prev := kernels.SetMode(m)
		defer kernels.SetMode(prev)
		f, err := engine()
		if err != nil {
			t.Fatalf("mode %v: %v", m, err)
		}
		return f
	}

	var colFP, blkFP uint64
	for i, m := range modes {
		col := factorUnder(m, func() (*lu.Factors, error) {
			return lu.Factorize(a, sym, lu.Options{ReplaceTinyPivot: true})
		})
		blk := factorUnder(m, func() (*lu.Factors, error) {
			return Factorize(a, sym, lu.Options{ReplaceTinyPivot: true})
		})
		if i == 0 {
			colFP, blkFP = col.Fingerprint(), blk.Fingerprint()
			continue
		}
		if fp := col.Fingerprint(); fp != colFP {
			t.Errorf("lu.Factorize under %v: fingerprint %x, scalar mode gave %x", m, fp, colFP)
		}
		if fp := blk.Fingerprint(); fp != blkFP {
			t.Errorf("superlu.Factorize under %v: fingerprint %x, scalar mode gave %x", m, fp, blkFP)
		}
	}

	// Multi-RHS solve: bitwise equal to single-RHS solves, per mode.
	f, err := Factorize(a, sym, lu.Options{ReplaceTinyPivot: true})
	if err != nil {
		t.Fatal(err)
	}
	n := sym.N
	const nrhs = 11
	rhs := make([]float64, n*nrhs)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
		if i%7 == 0 {
			rhs[i] = 0
		}
	}
	for _, m := range modes {
		prev := kernels.SetMode(m)
		multi := make([]float64, len(rhs))
		copy(multi, rhs)
		f.SolveMulti(multi, nrhs)
		for r := 0; r < nrhs; r++ {
			one := make([]float64, n)
			copy(one, rhs[r*n:(r+1)*n])
			f.Solve(one)
			for i := range one {
				if math.Float64bits(one[i]) != math.Float64bits(multi[r*n+i]) {
					t.Fatalf("mode %v: SolveMulti rhs %d element %d differs from Solve", m, r, i)
				}
			}
		}
		kernels.SetMode(prev)
	}
}
