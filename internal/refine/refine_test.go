package refine

import (
	"math"
	"math/rand"
	"testing"

	"gesp/internal/lu"
	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

func randomSystem(rng *rand.Rand, n int, density float64) (*sparse.CSC, *lu.Factors) {
	t := sparse.NewTriplet(n, n)
	for j := 0; j < n; j++ {
		t.Append(j, j, 2+rng.Float64())
		for i := 0; i < n; i++ {
			if i != j && rng.Float64() < density {
				t.Append(i, j, rng.NormFloat64()*0.4)
			}
		}
	}
	a := t.ToCSC()
	sym, err := symbolic.Factorize(a, symbolic.Options{})
	if err != nil {
		panic(err)
	}
	f, err := lu.Factorize(a, sym, lu.Options{ReplaceTinyPivot: true})
	if err != nil {
		panic(err)
	}
	return a, f
}

func TestBerrZeroForExactSolution(t *testing.T) {
	a := sparse.FromDense([][]float64{{2, 1}, {0, 3}})
	x := []float64{1, 2}
	b := make([]float64, 2)
	a.MatVec(b, x)
	if be := Berr(a, x, b); be != 0 {
		t.Errorf("berr of exact solution = %g, want 0", be)
	}
}

func TestBerrInfForInconsistentZeroRowDenominator(t *testing.T) {
	a := sparse.FromDense([][]float64{{1, 0}, {0, 1}})
	// x = 0 and b nonzero in a row where |A||x|+|b| = 0 cannot happen with
	// b nonzero; instead use b = 0 row with nonzero residual impossible —
	// so check the Inf path via a zero matrix row... A zero row is the only
	// trigger; construct directly.
	tr := sparse.NewTriplet(2, 2)
	tr.Append(0, 0, 1)
	tr.Append(0, 1, 1)
	az := tr.ToCSC() // second row entirely zero
	x := []float64{0, 0}
	b := []float64{0, 1}
	if be := Berr(az, x, b); be != 1 {
		// denominator |b|=1 > 0 in row 1, residual 1 -> berr = 1
		t.Errorf("berr = %g, want 1", be)
	}
	_ = a
}

func TestRefineConvergesToMachineEps(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(60)
		a, f := randomSystem(rng, n, 0.1)
		want := make([]float64, n)
		for i := range want {
			want[i] = 1
		}
		b := make([]float64, n)
		a.MatVec(b, want)
		x := append([]float64(nil), b...)
		f.Solve(x)
		st := Refine(a, f, x, b, Options{})
		if !st.Converged {
			t.Fatalf("trial %d: refinement did not converge, berr=%g after %d steps", trial, st.FinalBerr, st.Steps)
		}
		if st.FinalBerr > lu.Eps {
			t.Fatalf("trial %d: final berr %g > eps", trial, st.FinalBerr)
		}
		if e := sparse.RelErrInf(x, want); e > 1e-10 {
			t.Fatalf("trial %d: refined error %g", trial, e)
		}
	}
}

func TestRefineRepairsPerturbedPivots(t *testing.T) {
	// A matrix with a zero diagonal entry: GESP perturbs the pivot, the
	// initial solve is wrong, refinement must repair it. This is exactly
	// how step (4) "corrects for the perturbations in step (3)".
	a := sparse.FromDense([][]float64{
		{0, 2, 1},
		{3, 0, 1},
		{1, 1, 4},
	})
	sym, err := symbolic.Factorize(a, symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := lu.Factorize(a, sym, lu.Options{ReplaceTinyPivot: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.TinyPivots == 0 {
		t.Fatal("expected pivot replacements on zero diagonal")
	}
	want := []float64{1, 1, 1}
	b := make([]float64, 3)
	a.MatVec(b, want)
	x := append([]float64(nil), b...)
	f.Solve(x)
	before := sparse.RelErrInf(x, want)
	st := Refine(a, f, x, b, Options{})
	after := sparse.RelErrInf(x, want)
	if !st.Converged {
		t.Fatalf("did not converge: berr=%g", st.FinalBerr)
	}
	if after > 1e-12 {
		t.Errorf("error after refinement %g (before %g)", after, before)
	}
	if st.Steps == 0 && before > 1e-12 {
		t.Error("refinement claimed zero steps despite an inaccurate start")
	}
}

func TestRefineStagnationStops(t *testing.T) {
	// Identity "solver" never improves anything: the stagnation rule must
	// stop the loop early.
	rng := rand.New(rand.NewSource(67))
	a, _ := randomSystem(rng, 20, 0.2)
	b := make([]float64, 20)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, 20) // x = 0, terrible
	st := Refine(a, noopSystem{}, x, b, Options{MaxIter: 10})
	if st.Converged {
		t.Error("no-op solver cannot converge")
	}
	if st.Steps > 2 {
		t.Errorf("stagnation not detected: %d steps", st.Steps)
	}
}

type noopSystem struct{}

func (noopSystem) Solve(x []float64) {
	for i := range x {
		x[i] = 0
	}
}
func (noopSystem) SolveT(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

func TestExtraPrecisionResidualAtLeastAsGood(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	n := 50
	a, f := randomSystem(rng, n, 0.15)
	want := make([]float64, n)
	for i := range want {
		want[i] = 1
	}
	b := make([]float64, n)
	a.MatVec(b, want)
	x1 := append([]float64(nil), b...)
	f.Solve(x1)
	st1 := Refine(a, f, x1, b, Options{ExtraPrecision: true})
	if !st1.Converged {
		t.Errorf("extra precision refinement failed: berr=%g", st1.FinalBerr)
	}
	if e := sparse.RelErrInf(x1, want); e > 1e-10 {
		t.Errorf("extra precision error %g", e)
	}
}

func TestCond1EstOnDiagonal(t *testing.T) {
	// diag(1, 10, 100): kappa_1 = 100 exactly.
	a := sparse.FromDense([][]float64{
		{1, 0, 0},
		{0, 10, 0},
		{0, 0, 100},
	})
	sym, _ := symbolic.Factorize(a, symbolic.Options{})
	f, _ := lu.Factorize(a, sym, lu.Options{})
	got, _ := Cond1Est(a, f)
	if math.Abs(got-100) > 1 {
		t.Errorf("Cond1Est = %g, want about 100", got)
	}
}

func TestCond1EstDetectsIllConditioning(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	aGood, fGood := randomSystem(rng, 30, 0.1)
	condGood, _ := Cond1Est(aGood, fGood)
	// Nearly singular matrix: condition estimate must be much larger.
	eps := 1e-12
	aBad := sparse.FromDense([][]float64{
		{1, 1},
		{1, 1 + eps},
	})
	symBad, _ := symbolic.Factorize(aBad, symbolic.Options{})
	fBad, _ := lu.Factorize(aBad, symBad, lu.Options{})
	condBad, _ := Cond1Est(aBad, fBad)
	if condBad < 1e10 {
		t.Errorf("near-singular cond estimate %g, want >= 1e10", condBad)
	}
	if condBad < condGood {
		t.Errorf("cond(bad)=%g < cond(good)=%g", condBad, condGood)
	}
}

func TestForwardErrorBoundCoversTrueError(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(40)
		a, f := randomSystem(rng, n, 0.15)
		want := make([]float64, n)
		for i := range want {
			want[i] = 1
		}
		b := make([]float64, n)
		a.MatVec(b, want)
		x := append([]float64(nil), b...)
		f.Solve(x)
		Refine(a, f, x, b, Options{})
		ferr := ForwardErrorBound(a, f, x, b)
		trueErr := sparse.RelErrInf(x, want)
		if ferr < trueErr/10 {
			t.Errorf("trial %d: bound %g far below true error %g", trial, ferr, trueErr)
		}
		if ferr > 1e-6 {
			t.Errorf("trial %d: bound %g suspiciously large for a well-conditioned system", trial, ferr)
		}
	}
}

func TestSMWRecoversOriginalSolution(t *testing.T) {
	// Factor a matrix whose pivots were aggressively replaced; SMW solves
	// must give the ORIGINAL matrix's solution directly.
	a := sparse.FromDense([][]float64{
		{1e-14, 2, 0, 1},
		{3, 1e-14, 1, 0},
		{0, 1, 4, 1},
		{1, 0, 1, 5},
	})
	sym, err := symbolic.Factorize(a, symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := lu.Factorize(a, sym, lu.Options{ReplaceTinyPivot: true, Aggressive: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.TinyPivots < 1 {
		t.Fatalf("expected at least 1 pivot replacement, got %d", f.TinyPivots)
	}
	smw, err := NewSMWSolver(f)
	if err != nil {
		t.Fatal(err)
	}
	if smw.Rank() != f.TinyPivots {
		t.Errorf("Rank = %d, want %d", smw.Rank(), f.TinyPivots)
	}
	want := []float64{1, -2, 3, -4}
	b := make([]float64, 4)
	a.MatVec(b, want)

	// Plain perturbed solve is inaccurate; SMW solve is accurate.
	xPlain := append([]float64(nil), b...)
	f.Solve(xPlain)
	xSMW := append([]float64(nil), b...)
	smw.Solve(xSMW)
	ePlain := sparse.RelErrInf(xPlain, want)
	eSMW := sparse.RelErrInf(xSMW, want)
	if eSMW > 1e-9 {
		t.Errorf("SMW solve error %g (plain %g)", eSMW, ePlain)
	}
	if eSMW > ePlain {
		t.Errorf("SMW (%g) did not improve over plain (%g)", eSMW, ePlain)
	}

	// Transpose solve too.
	bt := make([]float64, 4)
	a.MatTVec(bt, want)
	xt := append([]float64(nil), bt...)
	smw.SolveT(xt)
	if e := sparse.RelErrInf(xt, want); e > 1e-9 {
		t.Errorf("SMW transpose solve error %g", e)
	}
}

func TestSMWNoModsDelegates(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	a, f := randomSystem(rng, 15, 0.2)
	smw, err := NewSMWSolver(f)
	if err != nil {
		t.Fatal(err)
	}
	if smw.Rank() != 0 {
		t.Fatalf("unexpected rank %d", smw.Rank())
	}
	b := make([]float64, 15)
	for i := range b {
		b[i] = float64(i)
	}
	x1 := append([]float64(nil), b...)
	x2 := append([]float64(nil), b...)
	f.Solve(x1)
	smw.Solve(x2)
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatal("rank-0 SMW diverged from base factors")
		}
	}
	_ = a
}

func TestSMWWithRefinement(t *testing.T) {
	// SMW as the System inside refinement drives berr of the ORIGINAL
	// matrix to machine epsilon.
	a := sparse.FromDense([][]float64{
		{1e-13, 2, 1},
		{3, 1, 0},
		{0, 1, 2},
	})
	sym, _ := symbolic.Factorize(a, symbolic.Options{})
	f, err := lu.Factorize(a, sym, lu.Options{ReplaceTinyPivot: true, Aggressive: true})
	if err != nil {
		t.Fatal(err)
	}
	smw, err := NewSMWSolver(f)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, -1, 1}
	b := make([]float64, 3)
	a.MatVec(b, want)
	x := append([]float64(nil), b...)
	smw.Solve(x)
	st := Refine(a, smw, x, b, Options{})
	if !st.Converged {
		t.Errorf("refinement with SMW failed: berr %g", st.FinalBerr)
	}
	if e := sparse.RelErrInf(x, want); e > 1e-12 {
		t.Errorf("final error %g", e)
	}
}

func TestInvNormEstAgainstExact(t *testing.T) {
	// Hager's estimate is a lower bound usually within a small factor of
	// the exact ||A^{-1}||_1; verify on small random systems where the
	// exact value is computable column by column.
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(25)
		a, f := randomSystem(rng, n, 0.25)
		_ = a
		exact := 0.0
		for j := 0; j < n; j++ {
			e := make([]float64, n)
			e[j] = 1
			f.Solve(e)
			s := 0.0
			for _, v := range e {
				s += math.Abs(v)
			}
			if s > exact {
				exact = s
			}
		}
		est, _ := InvNormEst1(f, n)
		if est > exact*(1+1e-10) {
			t.Fatalf("trial %d: estimate %g exceeds exact %g", trial, est, exact)
		}
		if est < exact/3 {
			t.Fatalf("trial %d: estimate %g far below exact %g", trial, est, exact)
		}
	}
}
