// Package refine implements step (4) of the GESP algorithm: iterative
// refinement driven by the componentwise backward error (berr), plus the
// error-analysis machinery the paper's software exposes — a Hager 1-norm
// condition estimator, a componentwise forward error bound in the style of
// LAPACK's xGERFS, an optional extra-precision residual (one of the
// paper's future-work proposals, realized with compensated FMA
// arithmetic), and Sherman–Morrison–Woodbury recovery of the original
// system after aggressive pivot perturbations.
package refine

import (
	"math"

	"gesp/internal/lu"
	"gesp/internal/sparse"
)

// System is anything that can apply M⁻¹ and M⁻ᵀ in place; *lu.Factors and
// *SMWSolver both satisfy it.
type System interface {
	Solve(x []float64)
	SolveT(x []float64)
}

// Options tune the refinement loop.
type Options struct {
	// MaxIter bounds the number of correction steps; 0 means 10.
	MaxIter int
	// BerrTol is the convergence target; 0 means machine epsilon, the
	// paper's criterion.
	BerrTol float64
	// ExtraPrecision computes residuals in compensated (roughly doubled)
	// precision using FMA-based error-free transformations.
	ExtraPrecision bool
}

// Stats reports what the refinement loop did.
type Stats struct {
	// Steps is the number of refinement iterations performed (each one
	// residual + solve + update), the quantity of the paper's Figure 3.
	Steps int
	// Berrs[k] is the componentwise backward error after k corrections;
	// Berrs[0] is the initial solve's berr.
	Berrs []float64
	// FinalBerr is the last measured berr (the paper's Figure 5 metric).
	FinalBerr float64
	// Converged reports whether FinalBerr reached BerrTol.
	Converged bool
}

// Berr computes the componentwise (Oettli–Prager) backward error
// max_i |b - A·x|_i / (|A|·|x| + |b|)_i. Rows with a zero denominator and
// zero residual contribute nothing; a nonzero residual over a zero
// denominator yields +Inf.
func Berr(a *sparse.CSC, x, b []float64) float64 {
	n := len(b)
	r := make([]float64, n)
	a.Residual(r, b, x)
	absx := make([]float64, n)
	for i, v := range x {
		absx[i] = math.Abs(v)
	}
	den := make([]float64, n)
	a.AbsMatVec(den, absx)
	berr := 0.0
	for i := 0; i < n; i++ {
		d := den[i] + math.Abs(b[i])
		ri := math.Abs(r[i])
		switch {
		case d > 0:
			if q := ri / d; q > berr {
				berr = q
			}
		case ri > 0:
			return math.Inf(1)
		}
	}
	return berr
}

// residual computes r = b - A·x, optionally in compensated precision.
func residual(a *sparse.CSC, r, b, x []float64, extra bool) {
	if !extra {
		a.Residual(r, b, x)
		return
	}
	n := len(b)
	sum := make([]float64, n)
	comp := make([]float64, n)
	for j := 0; j < a.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			i := a.RowInd[k]
			p := a.Val[k] * xj
			e := math.FMA(a.Val[k], xj, -p) // exact product error
			// TwoSum accumulate p into sum[i].
			s := sum[i] + p
			bv := s - sum[i]
			err := (sum[i] - (s - bv)) + (p - bv)
			sum[i] = s
			comp[i] += err + e
		}
	}
	for i := 0; i < n; i++ {
		// r = b - (sum + comp), subtracting the small part last.
		r[i] = (b[i] - sum[i]) - comp[i]
	}
}

// Refine improves x (an initial solution of A·x = b obtained from sys) in
// place, following the paper's termination rule: stop when berr is below
// tolerance, when it fails to halve between iterations (stagnation), or at
// MaxIter.
func Refine(a *sparse.CSC, sys System, x, b []float64, opts Options) Stats {
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10
	}
	tol := opts.BerrTol
	if tol <= 0 {
		tol = lu.Eps
	}
	n := len(b)
	r := make([]float64, n)
	absx := make([]float64, n)
	den := make([]float64, n)

	berrOf := func() float64 {
		residual(a, r, b, x, opts.ExtraPrecision)
		for i, v := range x {
			absx[i] = math.Abs(v)
		}
		a.AbsMatVec(den, absx)
		be := 0.0
		for i := 0; i < n; i++ {
			d := den[i] + math.Abs(b[i])
			ri := math.Abs(r[i])
			switch {
			case d > 0:
				if q := ri / d; q > be {
					be = q
				}
			case ri > 0:
				return math.Inf(1)
			}
		}
		return be
	}

	st := Stats{}
	prev := berrOf()
	st.Berrs = append(st.Berrs, prev)
	st.FinalBerr = prev
	if prev <= tol {
		st.Converged = true
		return st
	}
	for st.Steps < maxIter {
		// r already holds the residual for the current x.
		sys.Solve(r)
		for i := 0; i < n; i++ {
			x[i] += r[i]
		}
		st.Steps++
		be := berrOf()
		st.Berrs = append(st.Berrs, be)
		st.FinalBerr = be
		if be <= tol {
			st.Converged = true
			return st
		}
		if be > prev/2 {
			// Stagnation: berr failed to halve (paper's second test).
			return st
		}
		prev = be
	}
	return st
}
