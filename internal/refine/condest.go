package refine

import (
	"math"

	"gesp/internal/lu"
	"gesp/internal/sparse"
)

// InvNormEst1 estimates ||M⁻¹||₁ with Hager's algorithm (the core of
// LAPACK's xLACON), using only solves with M and Mᵀ. The estimate is a
// lower bound that is almost always within a small factor of the truth.
// The second result reports whether the power iteration reached its
// fixed point (z_max ≤ zᵀx) within the iteration budget; a false means
// the estimate is still a valid lower bound but may be further from the
// truth than usual, which core.CondEst surfaces in its Stats.
func InvNormEst1(sys System, n int) (est float64, converged bool) {
	if n == 0 {
		return 0, true
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	for iter := 0; iter < 5; iter++ {
		y := append([]float64(nil), x...)
		sys.Solve(y)
		est = sparse.VecNorm1(y)
		// ξ = sign(y)
		for i := range y {
			if y[i] >= 0 {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		sys.SolveT(y)
		// z = M⁻ᵀ ξ; if ||z||_∞ <= zᵀx the estimate has converged.
		jmax, zmax := 0, 0.0
		for i, v := range y {
			if a := math.Abs(v); a > zmax {
				zmax, jmax = a, i
			}
		}
		ztx := 0.0
		for i := range y {
			ztx += y[i] * x[i]
		}
		if zmax <= ztx {
			converged = true
			break
		}
		for i := range x {
			x[i] = 0
		}
		x[jmax] = 1
	}
	// Alternating lower bound as in xLACON's final safeguard.
	for i := range x {
		x[i] = math.Pow(-1, float64(i)) * (1 + float64(i)/float64(max(n-1, 1)))
	}
	sys.Solve(x)
	if alt := 2 * sparse.VecNorm1(x) / (3 * float64(n)); alt > est {
		est = alt
	}
	return est, converged
}

// Cond1Est estimates the 1-norm condition number κ₁(A) = ||A||₁·||A⁻¹||₁
// using the factorization in sys. The second result is InvNormEst1's
// convergence flag.
func Cond1Est(a *sparse.CSC, sys System) (float64, bool) {
	inv, ok := InvNormEst1(sys, a.Rows)
	return a.Norm1() * inv, ok
}

// ForwardErrorBound computes the componentwise forward error bound of
// LAPACK's xGERFS: an estimate of
//
//	|| |A⁻¹|·( |r| + (n+1)·eps·(|A|·|x| + |b|) ) ||_∞ / ||x||_∞ ,
//
// which bounds ||x - x_true||_∞ / ||x||_∞ for the computed solution. This
// is the "most expensive step after factorization" noted at the paper's
// Figure 6 (it runs several extra triangular solves).
func ForwardErrorBound(a *sparse.CSC, sys System, x, b []float64) float64 {
	n := len(b)
	if n == 0 {
		return 0
	}
	r := make([]float64, n)
	a.Residual(r, b, x)
	absx := make([]float64, n)
	for i, v := range x {
		absx[i] = math.Abs(v)
	}
	w := make([]float64, n)
	a.AbsMatVec(w, absx)
	nzEps := float64(n+1) * lu.Eps
	for i := 0; i < n; i++ {
		w[i] = math.Abs(r[i]) + nzEps*(w[i]+math.Abs(b[i]))
	}
	// Estimate ||A⁻¹·diag(w)||_∞ = ||diag(w)·A⁻ᵀ||₁ with Hager's method
	// applied to the operator N = diag(w)·A⁻ᵀ, as xGERFS does.
	weighted := &weightedSystem{sys: sys, w: w}
	est, _ := InvNormEst1(weighted, n) // a non-converged estimate is still a valid bound here
	nx := sparse.VecNormInf(x)
	if nx == 0 {
		return est
	}
	return est / nx
}

// weightedSystem is the operator N = diag(w)·A⁻ᵀ whose 1-norm equals
// ||A⁻¹·diag(w)||_∞: Solve applies N, SolveT applies Nᵀ = A⁻¹·diag(w).
type weightedSystem struct {
	sys System
	w   []float64
}

func (ws *weightedSystem) Solve(x []float64) {
	ws.sys.SolveT(x)
	for i := range x {
		x[i] *= ws.w[i]
	}
}

func (ws *weightedSystem) SolveT(x []float64) {
	for i := range x {
		x[i] *= ws.w[i]
	}
	ws.sys.Solve(x)
}
