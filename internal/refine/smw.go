package refine

import (
	"errors"
	"fmt"
	"math"

	"gesp/internal/lu"
)

// SMWSolver recovers solves with the original matrix A after GESP's
// pivot replacements perturbed it: the factors represent
// Ā = A + Σ δ_k·e_k·e_kᵀ, and the Sherman–Morrison–Woodbury formula gives
//
//	A⁻¹ = Ā⁻¹ + Ā⁻¹·U·(I − Vᵀ·Ā⁻¹·U)⁻¹·Vᵀ·Ā⁻¹
//
// with U = [δ_k·e_k] and V = [e_k]. This realizes the paper's future-work
// proposal of aggressive pivot replacement with a low-rank correction at
// the end: the factorization stays static, and each solve costs one extra
// pass over a small dense capacitance system.
type SMWSolver struct {
	base *lu.Factors
	cols []int       // perturbed pivot positions
	z    [][]float64 // Z(:,k) = Ā⁻¹·(δ_k e_k)
	zt   [][]float64 // Zt(:,k) = Ā⁻ᵀ·e_k, for transpose solves
	cLU  *denseLU    // capacitance matrix C = I − Vᵀ·Z, factored
	ctLU *denseLU    // Cᵀ factored with the transposed correction terms
}

// ErrSMWSingular indicates the capacitance matrix is singular, i.e. the
// original matrix A itself is (numerically) singular even though the
// perturbed Ā factored fine.
var ErrSMWSingular = errors.New("refine: Sherman-Morrison-Woodbury capacitance matrix is singular")

// NewSMWSolver builds the correction from the factors' recorded pivot
// modifications. With no modifications the returned solver simply
// delegates to the factors.
func NewSMWSolver(f *lu.Factors) (*SMWSolver, error) {
	m := len(f.PivotMods)
	s := &SMWSolver{base: f}
	if m == 0 {
		return s, nil
	}
	n := f.Sym.N
	s.cols = make([]int, m)
	deltas := make([]float64, m)
	for k, mod := range f.PivotMods {
		s.cols[k] = mod.Col
		deltas[k] = mod.New - mod.Old
	}
	// Z = Ā⁻¹·U (one solve per modified pivot).
	s.z = make([][]float64, m)
	s.zt = make([][]float64, m)
	for k := 0; k < m; k++ {
		zk := make([]float64, n)
		zk[s.cols[k]] = deltas[k]
		f.Solve(zk)
		s.z[k] = zk
		tk := make([]float64, n)
		tk[s.cols[k]] = deltas[k]
		f.SolveT(tk)
		s.zt[k] = tk
	}
	// C = I − Vᵀ·Z, C[r][c] = δ(r,c) − Z[c][cols[r]].
	c := make([][]float64, m)
	ct := make([][]float64, m)
	for r := 0; r < m; r++ {
		c[r] = make([]float64, m)
		ct[r] = make([]float64, m)
		for cc := 0; cc < m; cc++ {
			c[r][cc] = -s.z[cc][s.cols[r]]
			ct[r][cc] = -s.zt[cc][s.cols[r]]
			if r == cc {
				c[r][cc]++
				ct[r][cc]++
			}
		}
	}
	var err error
	if s.cLU, err = newDenseLU(c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSMWSingular, err)
	}
	if s.ctLU, err = newDenseLU(ct); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSMWSingular, err)
	}
	return s, nil
}

// Rank reports the rank of the recorded perturbation.
func (s *SMWSolver) Rank() int { return len(s.cols) }

// Solve overwrites x with A⁻¹x (the original, unperturbed matrix).
func (s *SMWSolver) Solve(x []float64) {
	s.base.Solve(x)
	if len(s.cols) == 0 {
		return
	}
	m := len(s.cols)
	t := make([]float64, m)
	for k := 0; k < m; k++ {
		t[k] = x[s.cols[k]] // Vᵀ·Ā⁻¹·x
	}
	s.cLU.solve(t)
	for k := 0; k < m; k++ {
		if t[k] == 0 {
			continue
		}
		zk := s.z[k]
		for i := range x {
			x[i] += zk[i] * t[k]
		}
	}
}

// SolveT overwrites x with A⁻ᵀx.
func (s *SMWSolver) SolveT(x []float64) {
	s.base.SolveT(x)
	if len(s.cols) == 0 {
		return
	}
	m := len(s.cols)
	t := make([]float64, m)
	for k := 0; k < m; k++ {
		t[k] = x[s.cols[k]]
	}
	s.ctLU.solve(t)
	for k := 0; k < m; k++ {
		if t[k] == 0 {
			continue
		}
		zk := s.zt[k]
		for i := range x {
			x[i] += zk[i] * t[k]
		}
	}
}

// denseLU is a small dense partial-pivoting LU for the capacitance system.
type denseLU struct {
	a    [][]float64
	perm []int
}

func newDenseLU(a [][]float64) (*denseLU, error) {
	n := len(a)
	d := &denseLU{a: a, perm: make([]int, n)}
	for i := range d.perm {
		d.perm[i] = i
	}
	for k := 0; k < n; k++ {
		p, pv := k, math.Abs(a[k][k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a[i][k]); v > pv {
				p, pv = i, v
			}
		}
		if pv == 0 {
			return nil, fmt.Errorf("dense LU: zero pivot at %d", k)
		}
		a[k], a[p] = a[p], a[k]
		d.perm[k], d.perm[p] = d.perm[p], d.perm[k]
		for i := k + 1; i < n; i++ {
			l := a[i][k] / a[k][k]
			a[i][k] = l
			for j := k + 1; j < n; j++ {
				a[i][j] -= l * a[k][j]
			}
		}
	}
	return d, nil
}

func (d *denseLU) solve(b []float64) {
	n := len(b)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[d.perm[i]]
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			x[i] -= d.a[i][j] * x[j]
		}
	}
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= d.a[i][j] * x[j]
		}
		x[i] /= d.a[i][i]
	}
	copy(b, x)
}
