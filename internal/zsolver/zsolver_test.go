package zsolver

import (
	"errors"
	"math/cmplx"
	"math/rand"
	"testing"

	"gesp/internal/lu"
	"gesp/internal/ordering"
	"gesp/internal/zsparse"
)

func randomComplex(rng *rand.Rand, n int, density float64, strongDiag bool) *zsparse.CSC {
	t := zsparse.NewTriplet(n, n)
	for j := 0; j < n; j++ {
		if strongDiag {
			t.Append(j, j, complex(3+rng.Float64(), 1+rng.Float64()))
		}
		for i := 0; i < n; i++ {
			if i != j && rng.Float64() < density {
				t.Append(i, j, complex(rng.NormFloat64()*0.4, rng.NormFloat64()*0.4))
			}
		}
	}
	return t.ToCSC()
}

func TestComplexSolveRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		n := 20 + rng.Intn(80)
		a := randomComplex(rng, n, 0.08, true)
		want := make([]complex128, n)
		for i := range want {
			want[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		b := make([]complex128, n)
		a.MatVec(b, want)
		s, err := New(a, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x, err := s.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if e := zsparse.RelErrInf(x, want); e > 1e-10 {
			t.Fatalf("trial %d: error %g", trial, e)
		}
		if st := s.Stats(); st.Berr > 1e-12 {
			t.Fatalf("trial %d: berr %g", trial, st.Berr)
		}
	}
}

func TestComplexQuantumChemWorkload(t *testing.T) {
	// The paper's §4 application: a complex unsymmetric Green's-function
	// system. A nonzero imaginary energy shift keeps it solvable.
	rng := rand.New(rand.NewSource(5))
	a := zsparse.QuantumChem(8, 8, 6, complex(0.5, 1.2), rng)
	n := a.Rows
	want := make([]complex128, n)
	for i := range want {
		want[i] = complex(1, -1)
	}
	b := make([]complex128, n)
	a.MatVec(b, want)
	s, err := New(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x, err := s.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if e := zsparse.RelErrInf(x, want); e > 1e-9 {
		t.Errorf("quantum chemistry system error %g", e)
	}
	st := s.Stats()
	if !st.Converged {
		t.Errorf("berr %g did not converge", st.Berr)
	}
	t.Logf("n=%d nnz=%d fill=%d refine=%d berr=%.2e", st.N, st.NnzA, st.NnzLU, st.RefineSteps, st.Berr)
}

func TestComplexZeroDiagonalNeedsMatching(t *testing.T) {
	// A complex matrix with zero diagonal: no-pivot fails, GESP succeeds.
	tr := zsparse.NewTriplet(3, 3)
	tr.Append(1, 0, complex(2, 1))
	tr.Append(0, 1, complex(1, -2))
	tr.Append(2, 1, complex(0.5, 0))
	tr.Append(0, 2, complex(0.1, 0))
	tr.Append(2, 2, complex(3, 0))
	a := tr.ToCSC()

	bare := Options{Ordering: ordering.Natural}
	if _, err := New(a, bare); err == nil {
		t.Error("plain no-pivoting accepted a zero-diagonal complex matrix")
	}
	s, err := New(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{complex(1, 1), complex(-2, 0), complex(0, 3)}
	b := make([]complex128, 3)
	a.MatVec(b, want)
	x, err := s.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if e := zsparse.RelErrInf(x, want); e > 1e-10 {
		t.Errorf("error %g", e)
	}
}

func TestComplexTinyPivotReplacement(t *testing.T) {
	tr := zsparse.NewTriplet(2, 2)
	tr.Append(0, 0, complex(1e-30, 0))
	tr.Append(1, 1, complex(2, 0))
	tr.Append(0, 1, complex(1, 1))
	tr.Append(1, 0, complex(1, -1))
	a := tr.ToCSC()
	opts := DefaultOptions()
	opts.RowPermute = false // keep the tiny diagonal in place
	opts.Equilibrate = false
	opts.Ordering = ordering.Natural // the elimination must meet the tiny pivot first
	s, err := New(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().TinyPivots == 0 {
		t.Error("tiny pivot not replaced")
	}
	// Refinement repairs the perturbation.
	want := []complex128{complex(1, 0), complex(0, 1)}
	b := make([]complex128, 2)
	a.MatVec(b, want)
	x, err := s.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if e := zsparse.RelErrInf(x, want); e > 1e-9 {
		t.Errorf("error after refinement %g", e)
	}
}

func TestComplexBerrProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomComplex(rng, 30, 0.1, true)
	want := make([]complex128, 30)
	for i := range want {
		want[i] = complex(float64(i), -float64(i))
	}
	b := make([]complex128, 30)
	a.MatVec(b, want)
	if be := zsparse.Berr(a, want, b); be > lu.Eps*100 {
		t.Errorf("berr of exact solution = %g", be)
	}
	// Perturbed solution must have larger berr.
	xBad := append([]complex128(nil), want...)
	xBad[0] += complex(0.1, 0.1)
	if be := zsparse.Berr(a, xBad, b); be < 1e-6 {
		t.Errorf("berr of perturbed solution = %g, suspiciously small", be)
	}
}

func TestComplexMagnitudeShadow(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomComplex(rng, 25, 0.15, true)
	m := a.Magnitude()
	if m.Nnz() != a.Nnz() {
		t.Fatal("magnitude changed the pattern")
	}
	for k := range a.Val {
		if m.Val[k] != cmplx.Abs(a.Val[k]) {
			t.Fatal("magnitude value mismatch")
		}
		if m.RowInd[k] != a.RowInd[k] {
			t.Fatal("magnitude row mismatch")
		}
	}
}

func TestComplexWrongSizeRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randomComplex(rng, 10, 0.2, true)
	s, err := New(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(make([]complex128, 5)); err == nil {
		t.Error("wrong-length rhs accepted")
	}
}

func TestComplexZeroPivotTypedError(t *testing.T) {
	// Port of the real solver's typed zero-pivot regression: the complex
	// factorization must also report WHICH column broke and under what
	// threshold, and keep matching the sentinel.
	tr := zsparse.NewTriplet(3, 3)
	tr.Append(1, 0, complex(2, 1))
	tr.Append(0, 1, complex(1, -2))
	tr.Append(2, 1, complex(0.5, 0))
	tr.Append(0, 2, complex(0.1, 0))
	tr.Append(2, 2, complex(3, 0))
	a := tr.ToCSC()

	_, err := New(a, Options{Ordering: ordering.Natural})
	if err == nil {
		t.Fatal("plain no-pivoting accepted a zero-diagonal complex matrix")
	}
	var zp *ZeroPivotError
	if !errors.As(err, &zp) {
		t.Fatalf("error %T is not a *ZeroPivotError: %v", err, err)
	}
	if zp.Col != 0 {
		t.Errorf("Col = %d, want 0", zp.Col)
	}
	if zp.Threshold <= 0 {
		t.Errorf("Threshold = %g, want > 0", zp.Threshold)
	}
	if !errors.Is(err, ErrZeroPivot) {
		t.Error("typed error no longer matches the ErrZeroPivot sentinel")
	}
}

func TestComplexZeroDiagonalReplacementCounts(t *testing.T) {
	// The same structurally-zero diagonal, with replacement on: the
	// factorization must succeed, count its perturbations, and refinement
	// must repair them — the complex mirror of the real TinyPivots test.
	tr := zsparse.NewTriplet(3, 3)
	tr.Append(1, 0, complex(2, 1))
	tr.Append(0, 1, complex(1, -2))
	tr.Append(2, 1, complex(0.5, 0))
	tr.Append(0, 2, complex(0.1, 0))
	tr.Append(2, 2, complex(3, 0))
	a := tr.ToCSC()

	s, err := New(a, Options{Ordering: ordering.Natural, ReplaceTinyPivot: true, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().TinyPivots == 0 {
		t.Error("zero diagonal factored without recorded replacements")
	}
	want := []complex128{complex(1, 1), complex(-2, 0), complex(0, 3)}
	b := make([]complex128, 3)
	a.MatVec(b, want)
	x, err := s.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if e := zsparse.RelErrInf(x, want); e > 1e-9 {
		t.Errorf("error after refinement %g", e)
	}
}
