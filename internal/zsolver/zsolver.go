// Package zsolver is the complex-valued GESP driver: the same static
// pipeline as internal/core — equilibrate, permute large moduli to the
// diagonal, order symmetrically, factor without pivoting (tiny pivots
// replaced), refine — over complex128 arithmetic. All structural stages
// run on the real magnitude shadow of the matrix, so the matching,
// ordering and symbolic code is shared with the real solver verbatim.
//
// This is the capability behind the paper's §4 application report: "a
// complex unsymmetric system of order 200,000 has been solved within 2
// minutes" (quantum chemistry at LBNL).
package zsolver

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"gesp/internal/equil"
	"gesp/internal/lu"
	"gesp/internal/matching"
	"gesp/internal/ordering"
	"gesp/internal/sparse"
	"gesp/internal/symbolic"
	"gesp/internal/zsparse"
)

// Options mirror the real solver's toggles.
type Options struct {
	Equilibrate      bool
	RowPermute       bool
	ColScale         bool
	Ordering         ordering.Method
	ReplaceTinyPivot bool
	Refine           bool
	MaxRefine        int
	MaxSuper         int
}

// DefaultOptions returns the paper-recommended configuration.
func DefaultOptions() Options {
	return Options{
		Equilibrate:      true,
		RowPermute:       true,
		ColScale:         true,
		Ordering:         ordering.MinDegATA,
		ReplaceTinyPivot: true,
		Refine:           true,
	}
}

// ErrZeroPivot mirrors lu.ErrZeroPivot for the complex factorization.
// Concrete failures are *ZeroPivotError values carrying the breaking
// column; errors.Is(err, ErrZeroPivot) matches them.
var ErrZeroPivot = errors.New("zsolver: zero pivot encountered (tiny-pivot replacement disabled)")

// ZeroPivotError mirrors lu.ZeroPivotError: the column whose pivot was
// exactly zero and the replacement threshold in force.
type ZeroPivotError struct {
	Col       int
	Threshold float64
}

func (e *ZeroPivotError) Error() string {
	return fmt.Sprintf("zsolver: column %d: zero pivot encountered (tiny-pivot replacement disabled, threshold %.6e)", e.Col, e.Threshold)
}

// Is preserves the sentinel contract: errors.Is(err, ErrZeroPivot).
func (e *ZeroPivotError) Is(target error) bool { return target == ErrZeroPivot }

// Stats summarizes the complex solve.
type Stats struct {
	N           int
	NnzA        int
	NnzLU       int
	Flops       int64
	TinyPivots  int
	RefineSteps int
	Berr        float64
	Converged   bool
}

// Solver is a factored complex system.
type Solver struct {
	opts Options
	n    int

	rowMap []int
	colMap []int
	dR, dC []float64

	ap   *zsparse.CSC
	sym  *symbolic.Result
	lVal []complex128
	uVal []complex128

	stats Stats
}

// New runs the complex GESP analysis and factorization.
func New(a *zsparse.CSC, opts Options) (*Solver, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("zsolver: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	s := &Solver{opts: opts, n: n}
	s.stats.N = n
	s.stats.NnzA = a.Nnz()

	work := a.Clone()
	s.dR = make([]float64, n)
	s.dC = make([]float64, n)
	for i := 0; i < n; i++ {
		s.dR[i] = 1
		s.dC[i] = 1
	}

	// All structural decisions run on the magnitude shadow.
	if opts.Equilibrate {
		eq, err := equil.Equilibrate(work.Magnitude())
		if err != nil {
			return nil, fmt.Errorf("zsolver: equilibration: %w", err)
		}
		if eq.NeedsScaling() {
			work.ScaleRowsCols(eq.R, eq.C)
			for i := 0; i < n; i++ {
				s.dR[i] *= eq.R[i]
				s.dC[i] *= eq.C[i]
			}
		}
	}
	s.rowMap = sparse.IdentityPerm(n)
	if opts.RowPermute {
		mc, err := matching.MaxProductMatching(work.Magnitude())
		if err != nil {
			return nil, fmt.Errorf("zsolver: large-diagonal permutation: %w", err)
		}
		dc := mc.Dc
		if !opts.ColScale {
			dc = nil
		}
		work.ScaleRowsCols(mc.Dr, dc)
		for i := 0; i < n; i++ {
			s.dR[i] *= mc.Dr[i]
			if dc != nil {
				s.dC[i] *= mc.Dc[i]
			}
		}
		work = work.PermuteRows(mc.RowPerm)
		s.rowMap = mc.RowPerm
	}
	pc := ordering.Order(work.Magnitude(), opts.Ordering)
	work = work.PermuteSym(pc)
	s.colMap = pc
	s.rowMap = sparse.ComposePerm(pc, s.rowMap)

	sym, err := symbolic.Factorize(work.Magnitude(), symbolic.Options{MaxSuper: opts.MaxSuper})
	if err != nil {
		return nil, fmt.Errorf("zsolver: symbolic: %w", err)
	}
	s.sym = sym
	s.ap = work
	s.stats.NnzLU = sym.FillLU()
	s.stats.Flops = 4 * sym.Flops // a complex mul-add is ~4 real flops

	if err := s.factorize(); err != nil {
		return nil, err
	}
	return s, nil
}

// factorize is the complex left-looking static-pivot kernel, mirroring
// lu.Factorize.
func (s *Solver) factorize() error {
	sym, a := s.sym, s.ap
	n := sym.N
	thresh := math.Sqrt(lu.Eps) * a.Norm1()
	s.lVal = make([]complex128, sym.NnzL())
	s.uVal = make([]complex128, sym.NnzU())
	w := make([]complex128, n)
	for j := 0; j < n; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			w[a.RowInd[k]] = a.Val[k]
		}
		for p := sym.UPtr[j]; p < sym.UPtr[j+1]-1; p++ {
			k := sym.UInd[p]
			ukj := w[k]
			s.uVal[p] = ukj
			if ukj == 0 {
				continue
			}
			for q := sym.LPtr[k]; q < sym.LPtr[k+1]; q++ {
				w[sym.LInd[q]] -= s.lVal[q] * ukj
			}
		}
		piv := w[j]
		if cmplx.Abs(piv) < thresh {
			if !s.opts.ReplaceTinyPivot {
				if piv == 0 {
					return &ZeroPivotError{Col: j, Threshold: thresh}
				}
			} else {
				// Preserve the phase of the tiny pivot; a zero pivot gets
				// a real replacement.
				if piv == 0 {
					piv = complex(thresh, 0)
				} else {
					piv *= complex(thresh/cmplx.Abs(piv), 0)
				}
				s.stats.TinyPivots++
			}
		}
		s.uVal[sym.UPtr[j+1]-1] = piv
		for q := sym.LPtr[j]; q < sym.LPtr[j+1]; q++ {
			s.lVal[q] = w[sym.LInd[q]] / piv
		}
		for _, i := range sym.UColRows(j) {
			w[i] = 0
		}
		for q := sym.LPtr[j]; q < sym.LPtr[j+1]; q++ {
			w[sym.LInd[q]] = 0
		}
	}
	return nil
}

// solveFactored overwrites x with (LU)⁻¹·x in permuted coordinates.
func (s *Solver) solveFactored(x []complex128) {
	sym := s.sym
	for j := 0; j < sym.N; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for q := sym.LPtr[j]; q < sym.LPtr[j+1]; q++ {
			x[sym.LInd[q]] -= s.lVal[q] * xj
		}
	}
	for j := sym.N - 1; j >= 0; j-- {
		hi := sym.UPtr[j+1] - 1
		xj := x[j] / s.uVal[hi]
		x[j] = xj
		if xj == 0 {
			continue
		}
		for q := sym.UPtr[j]; q < hi; q++ {
			x[sym.UInd[q]] -= s.uVal[q] * xj
		}
	}
}

// Solve computes x with A·x = b in original coordinates, with iterative
// refinement when enabled.
func (s *Solver) Solve(b []complex128) ([]complex128, error) {
	if len(b) != s.n {
		return nil, fmt.Errorf("zsolver: right-hand side length %d, want %d", len(b), s.n)
	}
	bh := make([]complex128, s.n)
	for i := 0; i < s.n; i++ {
		bh[s.rowMap[i]] = complex(s.dR[i], 0) * b[i]
	}
	y := append([]complex128(nil), bh...)
	s.solveFactored(y)

	if s.opts.Refine {
		maxIter := s.opts.MaxRefine
		if maxIter <= 0 {
			maxIter = 10
		}
		prev := zsparse.Berr(s.ap, y, bh)
		s.stats.Berr = prev
		s.stats.RefineSteps = 0
		s.stats.Converged = prev <= lu.Eps
		r := make([]complex128, s.n)
		for !s.stats.Converged && s.stats.RefineSteps < maxIter {
			s.ap.Residual(r, bh, y)
			s.solveFactored(r)
			for i := range y {
				y[i] += r[i]
			}
			s.stats.RefineSteps++
			be := zsparse.Berr(s.ap, y, bh)
			s.stats.Berr = be
			if be <= lu.Eps {
				s.stats.Converged = true
				break
			}
			if be > prev/2 {
				break // stagnation, the paper's second test
			}
			prev = be
		}
	} else {
		s.stats.Berr = zsparse.Berr(s.ap, y, bh)
		s.stats.Converged = s.stats.Berr <= lu.Eps
	}

	x := make([]complex128, s.n)
	for j := 0; j < s.n; j++ {
		x[j] = complex(s.dC[j], 0) * y[s.colMap[j]]
	}
	return x, nil
}

// Stats returns solve statistics.
func (s *Solver) Stats() Stats { return s.stats }
