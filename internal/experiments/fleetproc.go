package experiments

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"gesp/internal/fleetrpc"
	"gesp/internal/matgen"
	"gesp/internal/serve"
)

// The cross-process fleet experiment: real shard processes (re-exec'd
// from the current binary), a fleetrpc coordinator routing a Zipf load
// over them, and a process fault injected mid-run — SIGKILL for an
// ungraceful death, SIGSTOP for a partition-shaped hang. It measures
// the robustness story end to end: how fast the prober detects the
// death, how many requests were retried / failed over / hedged /
// degraded instead of failed, and what the hedge budget spent.

// FleetProcConfig parameterizes one cross-process chaos run.
type FleetProcConfig struct {
	// Shards is how many shard processes to spawn.
	Shards int
	// Coordinator configures the fleetrpc layer; Addrs is filled in by
	// the runner from the spawned processes.
	Coordinator fleetrpc.Config
	// ShardConf is passed to each spawned shard.
	ShardConf fleetrpc.ShardConf

	Workers  int
	Patterns int
	Variants int
	Duration time.Duration
	Scale    float64
	ZipfS    float64
	// ThinkTime decouples offered load from service latency so the
	// chaos arms see similar arrival rates.
	ThinkTime time.Duration
	Seed      int64

	// Chaos is the mid-run fault: "" (none), "sigkill" (the hottest
	// pattern's owner process dies without goodbye), or "sigstop" (it
	// freezes: sockets open, requests hang — the single-machine stand-in
	// for a network partition).
	Chaos string
}

// FleetProcResult is one run's measurement.
type FleetProcResult struct {
	Label      string
	Shards     int
	Workers    int
	Systems    int
	Solves     uint64
	Failed     uint64 // client-visible failures — the number that must be zero
	Elapsed    time.Duration
	Throughput float64
	P50, P99   time.Duration

	// KilledShard is the member the chaos hit (-1 when none), and
	// DetectLatency how long the membership layer took to declare it
	// dead after the signal was sent.
	KilledShard   int
	DetectLatency time.Duration
	ChaosErr      string

	Stats fleetrpc.Stats
}

// RunFleetProc spawns the shard processes, warms the coordinator
// (every system submitted — owner and replica — and solved once), runs
// the closed-loop Zipf load, and injects the configured fault at the
// midpoint.
func RunFleetProc(cfg FleetProcConfig) (*FleetProcResult, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Patterns <= 0 {
		cfg.Patterns = 4
	}
	if cfg.Patterns > len(fleetLoadPatterns) {
		cfg.Patterns = len(fleetLoadPatterns)
	}
	if cfg.Variants <= 0 {
		cfg.Variants = 2
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 0.25
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}

	procs, err := fleetrpc.SpawnShards(cfg.Shards, cfg.ShardConf)
	if err != nil {
		return nil, fmt.Errorf("experiments: spawn shards: %w", err)
	}
	defer procs.Close()

	rcfg := cfg.Coordinator
	rcfg.Addrs = procs.Addrs()
	f, err := fleetrpc.New(rcfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: coordinator: %w", err)
	}
	defer f.Close()

	type poolEntry struct {
		b []float64
		h serve.Handle
	}
	var pool []poolEntry
	for p := 0; p < cfg.Patterns; p++ {
		m, ok := matgen.Lookup(fleetLoadPatterns[p])
		if !ok {
			return nil, fmt.Errorf("experiments: testbed matrix %s missing", fleetLoadPatterns[p])
		}
		base := m.Generate(cfg.Scale)
		for v := 0; v < cfg.Variants; v++ {
			a := base
			if v > 0 {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(1000*p+v)))
				a = base.Clone()
				for k := range a.Val {
					a.Val[k] *= 1 + 0.1*rng.NormFloat64()
				}
			}
			h, serr := f.Submit(a)
			if serr != nil {
				return nil, fmt.Errorf("experiments: warm submit %s/%d: %w", fleetLoadPatterns[p], v, serr)
			}
			b := matgen.OnesRHS(a)
			if _, serr := f.Solve(h, b); serr != nil {
				return nil, fmt.Errorf("experiments: warm solve %s/%d: %w", fleetLoadPatterns[p], v, serr)
			}
			pool = append(pool, poolEntry{b: b, h: h})
		}
	}

	res := &FleetProcResult{
		Shards:      cfg.Shards,
		Workers:     cfg.Workers,
		Systems:     len(pool),
		KilledShard: -1,
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		solves    uint64
		failed    uint64
	)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for wkr := 0; wkr < cfg.Workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(7000+wkr)))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(pool)-1))
			var local []time.Duration
			var mySolves, myFailed uint64
			for time.Now().Before(deadline) {
				e := &pool[zipf.Uint64()]
				t0 := time.Now()
				_, serr := f.Solve(e.h, e.b)
				if serr == nil {
					local = append(local, time.Since(t0))
					mySolves++
				} else {
					myFailed++
				}
				if cfg.ThinkTime > 0 {
					time.Sleep(cfg.ThinkTime)
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			solves += mySolves
			failed += myFailed
			mu.Unlock()
		}(wkr)
	}

	if cfg.Chaos != "" {
		time.Sleep(cfg.Duration / 2)
		// Hit the hottest pattern's owner: the member whose loss the
		// most traffic notices.
		target := f.Ring().Owner(pool[0].h.Key.Pattern)
		res.KilledShard = target
		killAt := time.Now()
		var cerr error
		switch cfg.Chaos {
		case "sigkill":
			cerr = procs.Procs[target].Kill()
		case "sigstop":
			cerr = procs.Procs[target].Stop()
		default:
			cerr = fmt.Errorf("unknown chaos %q", cfg.Chaos)
		}
		if cerr != nil {
			res.ChaosErr = cerr.Error()
		} else if det, derr := awaitDeath(f, target, killAt, 15*time.Second); derr != nil {
			res.ChaosErr = derr.Error()
		} else {
			res.DetectLatency = det
		}
	}
	wg.Wait()

	res.Solves = solves
	res.Failed = failed
	res.Elapsed = cfg.Duration
	res.Throughput = float64(solves) / cfg.Duration.Seconds()
	res.Stats = f.Stats()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		return latencies[int(p*float64(len(latencies)-1))]
	}
	res.P50, res.P99 = pct(0.50), pct(0.99)
	return res, nil
}

// awaitDeath polls the membership table until member id is dead and
// returns how long after killAt the dead transition was stamped.
func awaitDeath(f *fleetrpc.Fleet, id int, killAt time.Time, timeout time.Duration) (time.Duration, error) {
	waitUntil := time.Now().Add(timeout)
	for time.Now().Before(waitUntil) {
		for _, m := range f.Members() {
			if m.ID == id && m.State == "dead" {
				d := m.ChangedAt.Sub(killAt)
				if d < 0 {
					d = 0
				}
				return d, nil
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return 0, errors.New("membership never declared the shard dead")
}

// FleetProcAblationResult holds the chaos arms.
type FleetProcAblationResult struct {
	Arms []FleetProcResult // healthy, sigkill, sigstop
}

// FleetProcAblation runs the cross-process fleet three times — no
// fault, SIGKILL, SIGSTOP — with a coordinator tuned so faults are
// detected within a few probe intervals and requests ride the retry /
// hedge / failover ladder instead of failing.
func FleetProcAblation(workers int, duration time.Duration, scale float64) (*FleetProcAblationResult, error) {
	base := FleetProcConfig{
		Shards:    3,
		Workers:   workers,
		Patterns:  4,
		Variants:  2,
		Duration:  duration,
		Scale:     scale,
		ThinkTime: time.Millisecond,
		Coordinator: fleetrpc.Config{
			Replication:      2,
			ProbeInterval:    25 * time.Millisecond,
			ProbeTimeout:     150 * time.Millisecond,
			SuspectAfter:     1,
			DeadAfter:        3,
			Retry:            fleetrpc.Backoff{Attempts: 5, Base: 20 * time.Millisecond, Max: 300 * time.Millisecond},
			RequestTimeout:   750 * time.Millisecond,
			HedgeAfter:       75 * time.Millisecond,
			HedgeBudget:      0.2,
			HedgeBurst:       8,
			DegradedFallback: true,
		},
	}
	res := &FleetProcAblationResult{}
	for _, arm := range []struct{ label, chaos string }{
		{"healthy", ""},
		{"sigkill", "sigkill"},
		{"sigstop", "sigstop"},
	} {
		cfg := base
		cfg.Chaos = arm.chaos
		r, err := RunFleetProc(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: fleetproc %s arm: %w", arm.label, err)
		}
		r.Label = arm.label
		res.Arms = append(res.Arms, *r)
	}
	return res, nil
}

// PrintFleetProc formats the chaos ablation: the throughput/tail table
// with the retry-ladder counters, then a verdict per fault arm — a
// shard's death must cost retries, not requests.
//
//gesp:errok
func PrintFleetProc(w io.Writer, res *FleetProcAblationResult) {
	fmt.Fprintln(w, "Cross-process fleet under process chaos (mid-run fault on the hottest pattern's owner):")
	fmt.Fprintf(w, "%-10s %7s %10s %10s %10s %7s %8s %9s %7s %9s %9s %10s\n",
		"arm", "shards", "solves/s", "p50", "p99", "fail", "retries", "failovers", "hedged", "budget-ok", "degraded", "detect")
	for _, r := range res.Arms {
		detect := "-"
		if r.DetectLatency > 0 {
			detect = fmtDur(r.DetectLatency)
		}
		budget := fmt.Sprintf("%d/%d", r.Stats.HedgeStaked, r.Stats.HedgeStaked+r.Stats.HedgeDenied)
		fmt.Fprintf(w, "%-10s %7d %10.0f %10s %10s %7d %8d %9d %7d %9s %9d %10s\n",
			r.Label, r.Shards, r.Throughput, fmtDur(r.P50), fmtDur(r.P99),
			r.Failed, r.Stats.Retries, r.Stats.Failovers, r.Stats.Hedged, budget,
			r.Stats.Degraded, detect)
	}
	fmt.Fprintln(w)
	for _, r := range res.Arms {
		if r.Label == "healthy" {
			continue
		}
		switch {
		case r.ChaosErr != "":
			fmt.Fprintf(w, "[%s] CHAOS ERROR: %s\n", r.Label, r.ChaosErr)
		case r.Failed > 0:
			fmt.Fprintf(w, "[%s] %d CLIENT-VISIBLE FAILURES: the retry ladder must absorb a shard's death\n", r.Label, r.Failed)
		default:
			fmt.Fprintf(w, "[%s] shard %d died, detected in %v, zero client-visible failures (%d retries, %d failovers, %d re-replicated)\n",
				r.Label, r.KilledShard, r.DetectLatency, r.Stats.Retries, r.Stats.Failovers, r.Stats.Rereplicated)
		}
	}
	for _, r := range res.Arms {
		fmt.Fprintf(w, "\n[%s] coordinator counters:\n%s", r.Label, indent(r.Stats.String(), "  "))
	}
}
