package experiments

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"gesp/internal/fleet"
	"gesp/internal/matgen"
	"gesp/internal/serve"
	"gesp/internal/sparse"
)

// The fleet experiment: a closed-loop, Zipf-skewed, diurnally bursty
// load generator over the sharded solve fleet. It measures what the
// fleet layer is for — how throughput scales with shards when the
// per-shard factor cache is the bottleneck, what hedging does to the
// tail when one shard straggles, and whether a mid-run drain loses
// requests or refactors anything.

// FleetLoadConfig parameterizes one closed-loop fleet run.
type FleetLoadConfig struct {
	Fleet    fleet.Config
	Workers  int // peak closed-loop workers
	Patterns int
	// PatternNames pins the exact testbed patterns (overrides Patterns
	// when non-empty) — the scaling arms use it to pick a pool whose
	// ring owners are balanced, so shard count maps cleanly onto
	// aggregate cache capacity.
	PatternNames []string
	Variants     int
	Duration     time.Duration
	Scale        float64
	// ZipfS is the Zipf skew (>1); popular systems dominate, which is
	// what makes per-shard caches and replication matter.
	ZipfS float64
	// Diurnal modulates the active worker count through burst phases
	// (half load, peak, trough, peak) across the run.
	Diurnal bool
	// DrainMid, when true, drains the hottest pattern's home shard at
	// the midpoint of the run.
	DrainMid bool
	// ThinkTime is the per-worker pause between requests. Non-zero
	// decouples offered load from service latency, so a closed loop
	// doesn't reward a faster arm with proportionally more traffic —
	// the hedging arms use it to compare tails at similar arrival
	// rates.
	ThinkTime time.Duration
	Seed      int64
}

// FleetLoadResult is one run's measurement.
type FleetLoadResult struct {
	Label           string
	ShardCount      int
	Workers         int
	Systems         int
	Solves          uint64
	Shed            uint64
	Failed          uint64
	Elapsed         time.Duration
	Throughput      float64 // solves per second
	P50, P99, P999  time.Duration
	FactorHitRate   float64
	HedgeRate       float64
	FactorRunsWarm  int64 // numeric factorizations after warmup
	FactorRunsFinal int64 // ... and at the end of the run
	DrainErr        string
	Stats           fleet.Stats
}

// fleetLoadPatterns is the testbed slice the fleet pool draws from,
// smallest first. It is wide on purpose: balancedFleetPatterns needs
// candidates whose PatternHash lands on every ring owner, and which
// fingerprint falls where is hash luck.
var fleetLoadPatterns = []string{
	"SHERMAN4", "GEMAT11", "WEST2021", "ORSIRR_1", "JPWH_991",
	"PORES_2", "SHERMAN3", "ADD32", "MEMPLUS", "SAYLR4",
	"GOODWIN", "GRAHAM1", "TOLS4000", "INACCURA", "MHD4800A",
	"WANG4", "LHR01", "RADFR1", "RAEFSKY4", "FIDAPM11",
	"MCFE", "SHERMAN5", "BBMAT", "TWOTONE", "VENKAT01",
	"LHR34C", "AF23560", "RDIST2", "ONETONE1", "SHYY161",
	"ECL32", "RDIST1",
}

// diurnalPhases is the active-worker fraction per quarter of the run:
// ramp, peak, trough, peak — the bursty shape a real tenant mix has.
var diurnalPhases = [4]float64{0.5, 1.0, 0.25, 1.0}

// RunFleetLoad builds the system pool, warms the fleet (every system
// submitted and solved once), then runs the closed-loop Zipf load for
// Duration and snapshots everything.
func RunFleetLoad(cfg FleetLoadConfig) (*FleetLoadResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Patterns <= 0 {
		cfg.Patterns = 6
	}
	if cfg.Patterns > len(fleetLoadPatterns) {
		cfg.Patterns = len(fleetLoadPatterns)
	}
	if cfg.Variants <= 0 {
		cfg.Variants = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 0.3
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}

	names := cfg.PatternNames
	if len(names) == 0 {
		names = fleetLoadPatterns[:cfg.Patterns]
	}

	type poolEntry struct {
		a *sparse.CSC
		b []float64
		h serve.Handle
	}
	var pool []poolEntry
	for p := range names {
		m, ok := matgen.Lookup(names[p])
		if !ok {
			return nil, fmt.Errorf("experiments: testbed matrix %s missing", names[p])
		}
		base := m.Generate(cfg.Scale)
		for v := 0; v < cfg.Variants; v++ {
			a := base
			if v > 0 {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(1000*p+v)))
				a = base.Clone()
				for k := range a.Val {
					a.Val[k] *= 1 + 0.1*rng.NormFloat64()
				}
			}
			pool = append(pool, poolEntry{a: a, b: matgen.OnesRHS(a)})
		}
	}

	f := fleet.New(cfg.Fleet)
	defer f.Close()
	for i := range pool {
		h, err := f.Submit("load", pool[i].a)
		if err != nil {
			return nil, fmt.Errorf("experiments: fleet warm submit %d: %w", i, err)
		}
		pool[i].h = h
		if _, err := f.Solve("load", h, pool[i].b); err != nil {
			return nil, fmt.Errorf("experiments: fleet warm solve %d: %w", i, err)
		}
		// Warm the replicas too when the arm replicates, so promotion
		// (and its replica-side factorizations) doesn't land inside the
		// measurement window and pollute the tail it is meant to cut.
		if cfg.Fleet.ReplicationFactor >= 2 && cfg.Fleet.HotThreshold > 0 {
			if err := f.Replicate(h); err != nil {
				return nil, fmt.Errorf("experiments: fleet warm replicate %d: %w", i, err)
			}
		}
	}
	runsWarm := f.Stats().FactorPhaseRuns()

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		solves    uint64
		shed      uint64
		failed    uint64
	)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	activeFrac := func() float64 {
		if !cfg.Diurnal {
			return 1
		}
		q := int(4 * time.Since(start) / cfg.Duration)
		if q > 3 {
			q = 3
		}
		return diurnalPhases[q]
	}
	for wkr := 0; wkr < cfg.Workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(7000+wkr)))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(pool)-1))
			var local []time.Duration
			var mySolves, myShed, myFailed uint64
			for time.Now().Before(deadline) {
				if float64(wkr) >= activeFrac()*float64(cfg.Workers) {
					time.Sleep(200 * time.Microsecond) // off-shift worker
					continue
				}
				e := &pool[zipf.Uint64()]
				t0 := time.Now()
				_, err := f.Solve("load", e.h, e.b)
				switch {
				case err == nil:
					local = append(local, time.Since(t0))
					mySolves++
				case errors.Is(err, serve.ErrOverloaded):
					myShed++
				default:
					myFailed++
				}
				if cfg.ThinkTime > 0 {
					time.Sleep(cfg.ThinkTime)
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			solves += mySolves
			shed += myShed
			failed += myFailed
			mu.Unlock()
		}(wkr)
	}

	res := &FleetLoadResult{
		ShardCount: cfg.Fleet.Shards,
		Workers:    cfg.Workers,
		Systems:    len(pool),
	}
	if cfg.DrainMid {
		time.Sleep(cfg.Duration / 2)
		target := f.Ring().Owner(pool[0].h.Key.Pattern)
		if err := f.Drain(target); err != nil {
			res.DrainErr = err.Error()
		}
	}
	wg.Wait()

	st := f.Stats()
	res.Solves = solves
	res.Shed = shed
	res.Failed = failed
	res.Elapsed = cfg.Duration
	res.Throughput = float64(solves) / cfg.Duration.Seconds()
	res.FactorHitRate = st.FactorHitRate()
	res.HedgeRate = st.HedgeRate()
	res.FactorRunsWarm = runsWarm
	res.FactorRunsFinal = st.FactorPhaseRuns()
	res.Stats = st
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	res.P50, res.P99, res.P999 = pct(0.50), pct(0.99), pct(0.999)
	return res, nil
}

// FleetAblationResult holds the three fleet studies: shard scaling
// under cache pressure, hedging against a straggler, and a mid-run
// drain.
type FleetAblationResult struct {
	Scaling []FleetLoadResult // 1, 2, 4 shards, same aggregate load
	Hedging []FleetLoadResult // straggler without, then with hedging
	Drain   FleetLoadResult
}

// FleetAblation runs the three studies with a shared worker count,
// duration and scale.
//
// Scaling arms fix the per-shard factor-cache capacity so that four
// shards hold the whole Zipf pool warm while one shard thrashes — the
// single-node cache ceiling the fleet exists to break. Hedging arms
// straggler one shard and compare tails with hedging off and on. The
// drain arm removes the hottest pattern's home shard mid-run and
// checks nothing failed and nothing refactored.
func FleetAblation(workers int, duration time.Duration, scale float64) (*FleetAblationResult, error) {
	base := FleetLoadConfig{
		Workers:  workers,
		Patterns: 6,
		Variants: 4,
		Duration: duration,
		Scale:    scale,
		Diurnal:  true,
	}
	res := &FleetAblationResult{}
	// The scaling pool: patterns picked so the 4-shard ring owns them
	// 2-per-shard, a flatter Zipf so the tail matters, and a per-shard
	// factor cache of pool/4 entries. Four shards hold the whole pool
	// warm; one shard evicts and refactors — the single-node cache
	// ceiling the fleet exists to break.
	scalingNames := balancedFleetPatterns(scale, 4, 2)
	scalingPool := len(scalingNames) * 3
	for _, shards := range []int{1, 2, 4} {
		cfg := base
		cfg.PatternNames = scalingNames
		cfg.Variants = 3
		cfg.ZipfS = 1.07
		cfg.Fleet = fleet.DefaultConfig()
		cfg.Fleet.Shards = shards
		cfg.Fleet.ReplicationFactor = 1 // isolate the cache-capacity effect
		cfg.Fleet.HotThreshold = 0
		cfg.Fleet.HedgeQueueDepth = 0
		cfg.Fleet.Service.Options.Refine = false
		cfg.Fleet.Service.MaxFactors = scalingPool / 4
		r, err := RunFleetLoad(cfg)
		if err != nil {
			return nil, err
		}
		r.Label = fmt.Sprintf("%d-shard", shards)
		res.Scaling = append(res.Scaling, *r)
	}

	for _, hedge := range []bool{false, true} {
		cfg := base
		cfg.Diurnal = false                  // steady peak load; the tail is the subject
		cfg.ThinkTime = 3 * time.Millisecond // same offered load in both arms
		cfg.Fleet = fleet.DefaultConfig()
		cfg.Fleet.Shards = 4
		cfg.Fleet.ReplicationFactor = 2
		cfg.Fleet.HotThreshold = 16 // promote the Zipf head quickly
		cfg.Fleet.HedgeQueueDepth = 0
		cfg.Fleet.HedgeP95 = 0
		if hedge {
			// Above the histogram bucket healthy solves land in
			// (quantile() reports bucket upper bounds), below the
			// straggler's 5ms: only the slow shard triggers hedging.
			cfg.Fleet.HedgeP95 = 3 * time.Millisecond
		}
		cfg.Fleet.Service.Options.Refine = false
		straggler := stragglerShard(cfg, scale)
		cfg.Fleet.Straggler = func(id int) time.Duration {
			if id == straggler {
				return 5 * time.Millisecond
			}
			return 0
		}
		r, err := RunFleetLoad(cfg)
		if err != nil {
			return nil, err
		}
		r.Label = "straggler"
		if hedge {
			r.Label = "straggler+hedge"
		}
		res.Hedging = append(res.Hedging, *r)
	}

	{
		cfg := base
		cfg.Fleet = fleet.DefaultConfig()
		cfg.Fleet.Shards = 4
		cfg.Fleet.ReplicationFactor = 1
		cfg.Fleet.HotThreshold = 0
		cfg.Fleet.HedgeQueueDepth = 0
		cfg.Fleet.Service.Options.Refine = false
		cfg.DrainMid = true
		r, err := RunFleetLoad(cfg)
		if err != nil {
			return nil, err
		}
		r.Label = "drain-mid-run"
		res.Drain = *r
	}
	return res, nil
}

// stragglerShard picks the shard the hedging arms slow down: the home
// shard of the most popular pattern, so the straggler actually sits in
// the hot path.
func stragglerShard(cfg FleetLoadConfig, scale float64) int {
	m, ok := matgen.Lookup(fleetLoadPatterns[0])
	if !ok {
		return 0
	}
	a := m.Generate(scale)
	ring := fleet.NewRing(shardIDs(cfg.Fleet.Shards), cfg.Fleet.VNodes)
	return ring.Owner(sparse.PatternHash(a))
}

// balancedFleetPatterns picks perShard testbed patterns per ring owner
// under a shards-wide ring, so the scaling arms' pool spreads evenly
// and shard count maps onto aggregate cache capacity rather than onto
// hash luck. Candidates are taken largest-first: the bigger the
// matrix, the bigger the refactorization penalty a cache miss pays,
// which is exactly the cost the shard-scaling study measures. Falls
// back to unpicked candidates when the testbed can't fill a shard's
// bucket.
func balancedFleetPatterns(scale float64, shards, perShard int) []string {
	ring := fleet.NewRing(shardIDs(shards), 0)
	type candidate struct {
		name  string
		rows  int
		owner int
	}
	var cands []candidate
	for _, name := range fleetLoadPatterns {
		m, ok := matgen.Lookup(name)
		if !ok {
			continue
		}
		a := m.Generate(scale)
		cands = append(cands, candidate{name, a.Rows, ring.Owner(sparse.PatternHash(a))})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].rows > cands[j].rows })

	buckets := make(map[int]int, shards)
	picked := make([]string, 0, shards*perShard)
	taken := make(map[string]bool, len(cands))
	for _, c := range cands {
		if len(picked) == shards*perShard {
			break
		}
		if buckets[c.owner] < perShard {
			buckets[c.owner]++
			picked = append(picked, c.name)
			taken[c.name] = true
		}
	}
	for _, c := range cands {
		if len(picked) == shards*perShard {
			break
		}
		if !taken[c.name] {
			picked = append(picked, c.name)
		}
	}
	return picked
}

func shardIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// PrintFleet formats the fleet ablation like the repo's other
// experiment tables.
//
//gesp:errok
func PrintFleet(w io.Writer, res *FleetAblationResult) {
	fmt.Fprintln(w, "Fleet shard scaling (Zipf load, per-shard cache = pool/4; cache capacity is the bottleneck):")
	fmt.Fprintf(w, "%-16s %7s %8s %10s %10s %10s %10s %8s %6s %6s %8s\n",
		"arm", "shards", "workers", "solves/s", "p50", "p99", "p999", "heal", "shed", "fail", "vs-1shd")
	printFleetRows(w, res.Scaling, true)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Hedged solves vs one straggler shard (5ms injected delay on the hot pattern's home):")
	fmt.Fprintf(w, "%-16s %7s %8s %10s %10s %10s %10s %8s %9s %8s\n",
		"arm", "shards", "workers", "solves/s", "p50", "p99", "p999", "heal", "hedge", "wins")
	for _, r := range res.Hedging {
		fmt.Fprintf(w, "%-16s %7d %8d %10.0f %10s %10s %10s %7.1f%% %8.1f%% %8d\n",
			r.Label, r.ShardCount, r.Workers, r.Throughput,
			fmtDur(r.P50), fmtDur(r.P99), fmtDur(r.P999),
			100*r.Stats.HealRate(), 100*r.HedgeRate, r.Stats.HedgeWins)
	}
	fmt.Fprintln(w)
	d := res.Drain
	fmt.Fprintln(w, "Graceful drain mid-run (hottest pattern's home shard leaves under load):")
	fmt.Fprintf(w, "  solves %d  failed %d  shed %d  factor-runs warm/final %d/%d  handoff %d factors + %d symbolic\n",
		d.Solves, d.Failed, d.Shed, d.FactorRunsWarm, d.FactorRunsFinal,
		d.Stats.HandoffFactor, d.Stats.HandoffSym)
	switch {
	case d.DrainErr != "":
		fmt.Fprintf(w, "  DRAIN ERROR: %s\n", d.DrainErr)
	case d.Failed > 0:
		fmt.Fprintln(w, "  FAILED REQUESTS: drain must be lossless")
	case d.FactorRunsFinal != d.FactorRunsWarm:
		fmt.Fprintln(w, "  REFACTORED: the handoff must move factors, not rebuild them")
	default:
		fmt.Fprintln(w, "  zero failed requests, zero refactorizations: the caches moved")
	}
	for _, r := range append(append([]FleetLoadResult{}, res.Scaling...), d) {
		fmt.Fprintf(w, "\n[%s] fleet counters:\n%s", r.Label, indent(r.Stats.String(), "  "))
	}
}

// printFleetRows shares PrintFleet's terminal-write error policy.
//
//gesp:errok
func printFleetRows(w io.Writer, rows []FleetLoadResult, ratioCol bool) {
	for _, r := range rows {
		ratio := "-"
		if ratioCol && rows[0].Throughput > 0 && r.ShardCount != rows[0].ShardCount {
			ratio = fmt.Sprintf("%.2fx", r.Throughput/rows[0].Throughput)
		}
		fmt.Fprintf(w, "%-16s %7d %8d %10.0f %10s %10s %10s %7.1f%% %6d %6d %8s\n",
			r.Label, r.ShardCount, r.Workers, r.Throughput,
			fmtDur(r.P50), fmtDur(r.P99), fmtDur(r.P999),
			100*r.Stats.HealRate(), r.Shed, r.Failed, ratio)
	}
}
