package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"gesp/internal/fleetha"
	"gesp/internal/fleetrpc"
	"gesp/internal/matgen"
	"gesp/internal/serve"
)

// The coordinator-HA experiment: real coordinator processes running
// lease-based leader election over real shard processes, with an HA
// client following redirects. Two faults are injected mid-run —
// SIGKILL of the leader coordinator (the control plane dies without
// goodbye) and a latency SLO breach (every shard straggles until the
// controller reacts). The run measures the HA story's three numbers:
// failover detection latency, registry entries lost across the
// failover (must be zero), and time-to-SLO-recovery.

// HAConfig parameterizes one coordinator-HA chaos run.
type HAConfig struct {
	Shards       int
	Coordinators int
	Workers      int
	Patterns     int
	Variants     int
	Duration     time.Duration
	Scale        float64
	ZipfS        float64
	ThinkTime    time.Duration
	Seed         int64

	// Template is the topology posted to every coordinator; Shards and
	// per-child identity are filled in by the runner.
	Template fleetha.ConfigureRequest

	// Chaos is the mid-run fault: "" (none), "leaderkill" (SIGKILL the
	// leader coordinator), or "slobreach" (every shard straggles by
	// BreachDelayMS until the controller promotes, then the straggle
	// clears and the run waits for the demote).
	Chaos         string
	BreachDelayMS int64
}

// HAResult is one run's measurement.
type HAResult struct {
	Label        string
	Shards       int
	Coordinators int
	Systems      int
	Solves       uint64
	Failed       uint64 // client-visible failures — must be zero
	Elapsed      time.Duration
	Throughput   float64
	P50, P99     time.Duration

	// Leader-kill arm: which coordinator led, how long until a survivor
	// claimed the lease, and the registry count across the failover.
	KilledCoord     int
	FailoverLatency time.Duration
	RegistryBefore  int
	RegistryAfter   int
	RegistryLost    int

	// SLO-breach arm: how long the controller took to promote after the
	// breach and to demote after the clear (time-to-SLO-recovery), plus
	// the decision trace it logged.
	PromoteLatency time.Duration
	RecoverLatency time.Duration
	Decisions      []fleetha.Decision

	ChaosErr string
}

// RunHA spawns the coordinator and shard processes, wires the
// topology, warms the pool through the HA client, runs the closed-loop
// Zipf load, and injects the configured fault at the midpoint.
func RunHA(cfg HAConfig) (*HAResult, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.Coordinators <= 0 {
		cfg.Coordinators = 3
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Patterns <= 0 {
		cfg.Patterns = 3
	}
	if cfg.Patterns > len(fleetLoadPatterns) {
		cfg.Patterns = len(fleetLoadPatterns)
	}
	if cfg.Variants <= 0 {
		cfg.Variants = 2
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 0.25
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.BreachDelayMS <= 0 {
		cfg.BreachDelayMS = 100
	}

	shards, err := fleetrpc.SpawnShards(cfg.Shards, fleetrpc.ShardConf{})
	if err != nil {
		return nil, fmt.Errorf("experiments: spawn shards: %w", err)
	}
	defer shards.Close()
	coords, err := fleetha.SpawnCoordinators(cfg.Coordinators)
	if err != nil {
		return nil, fmt.Errorf("experiments: spawn coordinators: %w", err)
	}
	defer coords.Close()

	template := cfg.Template
	template.Shards = shards.Addrs()
	if err := fleetha.ConfigureCoordinators(coords.Addrs(), template); err != nil {
		return nil, fmt.Errorf("experiments: configure coordinators: %w", err)
	}
	cli, err := fleetha.NewClient(fleetha.ClientConfig{
		Coordinators:   coords.Addrs(),
		Retry:          fleetrpc.Backoff{Attempts: 12, Base: 10 * time.Millisecond, Max: 250 * time.Millisecond},
		AttemptTimeout: 5 * time.Second,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: ha client: %w", err)
	}

	ctx := context.Background()
	leader, err := haAwaitLeader(cli, coords.Addrs(), -1, 15*time.Second)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}

	type poolEntry struct {
		b []float64
		h serve.Handle
	}
	var pool []poolEntry
	for p := 0; p < cfg.Patterns; p++ {
		m, ok := matgen.Lookup(fleetLoadPatterns[p])
		if !ok {
			return nil, fmt.Errorf("experiments: testbed matrix %s missing", fleetLoadPatterns[p])
		}
		base := m.Generate(cfg.Scale)
		for v := 0; v < cfg.Variants; v++ {
			a := base
			if v > 0 {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(1000*p+v)))
				a = base.Clone()
				for k := range a.Val {
					a.Val[k] *= 1 + 0.1*rng.NormFloat64()
				}
			}
			h, serr := cli.Submit(ctx, a)
			if serr != nil {
				return nil, fmt.Errorf("experiments: warm submit %s/%d: %w", fleetLoadPatterns[p], v, serr)
			}
			b := matgen.OnesRHS(a)
			if _, serr := cli.Solve(ctx, h, b); serr != nil {
				return nil, fmt.Errorf("experiments: warm solve %s/%d: %w", fleetLoadPatterns[p], v, serr)
			}
			pool = append(pool, poolEntry{b: b, h: h})
		}
	}

	res := &HAResult{
		Shards:       cfg.Shards,
		Coordinators: cfg.Coordinators,
		Systems:      len(pool),
		KilledCoord:  -1,
	}
	if st, serr := cli.Status(ctx, coords.Addrs()[leader]); serr == nil {
		res.RegistryBefore = st.RegistryLen
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		solves    uint64
		failed    uint64
	)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for wkr := 0; wkr < cfg.Workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(7000+wkr)))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(pool)-1))
			var local []time.Duration
			var mySolves, myFailed uint64
			for time.Now().Before(deadline) {
				e := &pool[zipf.Uint64()]
				t0 := time.Now()
				sctx, cancel := context.WithTimeout(ctx, 15*time.Second)
				_, serr := cli.Solve(sctx, e.h, e.b)
				cancel()
				if serr == nil {
					local = append(local, time.Since(t0))
					mySolves++
				} else {
					myFailed++
				}
				if cfg.ThinkTime > 0 {
					time.Sleep(cfg.ThinkTime)
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			solves += mySolves
			failed += myFailed
			mu.Unlock()
		}(wkr)
	}

	switch cfg.Chaos {
	case "":
	case "leaderkill":
		time.Sleep(cfg.Duration / 2)
		res.KilledCoord = leader
		killAt := time.Now()
		if cerr := coords.Procs[leader].Kill(); cerr != nil {
			res.ChaosErr = cerr.Error()
			break
		}
		next, ferr := haAwaitLeader(cli, coords.Addrs(), leader, 20*time.Second)
		if ferr != nil {
			res.ChaosErr = ferr.Error()
			break
		}
		res.FailoverLatency = time.Since(killAt)
		if st, serr := cli.Status(ctx, coords.Addrs()[next]); serr == nil {
			res.RegistryAfter = st.RegistryLen
			res.RegistryLost = res.RegistryBefore - res.RegistryAfter
		} else {
			res.ChaosErr = serr.Error()
		}
	case "slobreach":
		time.Sleep(cfg.Duration / 4)
		for _, addr := range shards.Addrs() {
			if cerr := fleetrpc.NewClient(addr).SetChaosDelay(ctx, cfg.BreachDelayMS); cerr != nil {
				res.ChaosErr = cerr.Error()
			}
		}
		if d, werr := haAwaitDecision(ctx, cli, fleetha.ActPromote, 30*time.Second); werr != nil {
			res.ChaosErr = werr.Error()
		} else {
			res.PromoteLatency = d
		}
		for _, addr := range shards.Addrs() {
			if cerr := fleetrpc.NewClient(addr).SetChaosDelay(ctx, 0); cerr != nil {
				res.ChaosErr = cerr.Error()
			}
		}
		if d, werr := haAwaitDecision(ctx, cli, fleetha.ActDemote, 30*time.Second); werr != nil {
			res.ChaosErr = werr.Error()
		} else {
			res.RecoverLatency = d
		}
		if tr, terr := cli.Trace(ctx); terr == nil {
			res.Decisions = tr.Decisions
		}
	default:
		res.ChaosErr = fmt.Sprintf("unknown chaos %q", cfg.Chaos)
	}
	wg.Wait()

	res.Solves = solves
	res.Failed = failed
	res.Elapsed = time.Since(start)
	res.Throughput = float64(solves) / res.Elapsed.Seconds()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		return latencies[int(p*float64(len(latencies)-1))]
	}
	res.P50, res.P99 = pct(0.50), pct(0.99)
	return res, nil
}

// haAwaitLeader polls coordinator statuses until one (excluding skip)
// claims leadership.
func haAwaitLeader(cli *fleetha.Client, addrs []string, skip int, timeout time.Duration) (int, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for i, addr := range addrs {
			if i == skip {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
			st, err := cli.Status(ctx, addr)
			cancel()
			if err == nil && st.Role == fleetha.RoleLeader {
				return i, nil
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return -1, fmt.Errorf("no coordinator claimed leadership within %v", timeout)
}

// haAwaitDecision polls the leader's decision trace until an action of
// the wanted kind appears, returning how long the wait took.
func haAwaitDecision(ctx context.Context, cli *fleetha.Client, want fleetha.Action, timeout time.Duration) (time.Duration, error) {
	start := time.Now()
	deadline := start.Add(timeout)
	for time.Now().Before(deadline) {
		tctx, cancel := context.WithTimeout(ctx, time.Second)
		tr, err := cli.Trace(tctx)
		cancel()
		if err == nil {
			for _, d := range tr.Decisions {
				if d.Action == want {
					return time.Since(start), nil
				}
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return 0, fmt.Errorf("controller logged no %s decision within %v", want, timeout)
}

// HAAblationResult holds the coordinator-HA arms.
type HAAblationResult struct {
	Arms []HAResult // healthy, leaderkill, slobreach
}

// HAAblation runs the coordinator cluster three times — no fault,
// leader SIGKILL, latency SLO breach — with election timing tuned so a
// failover lands within a few heartbeats and a controller tuned so the
// breach arm converges within the run.
func HAAblation(workers int, duration time.Duration, scale float64) (*HAAblationResult, error) {
	base := HAConfig{
		Shards:       3,
		Coordinators: 3,
		Workers:      workers,
		Patterns:     3,
		Variants:     2,
		Duration:     duration,
		Scale:        scale,
		ThinkTime:    time.Millisecond,
		Template: fleetha.ConfigureRequest{
			LeaseMS:     250,
			HeartbeatMS: 60,
			Replication: 2,
		},
	}
	res := &HAAblationResult{}
	for _, arm := range []struct{ label, chaos string }{
		{"healthy", ""},
		{"leaderkill", "leaderkill"},
		{"slobreach", "slobreach"},
	} {
		cfg := base
		cfg.Chaos = arm.chaos
		if arm.chaos == "slobreach" {
			// a single coordinator with replication 1: promotion is what
			// restores hedging headroom, so the controller's effect is the
			// signal being measured, not a bystander
			cfg.Coordinators = 1
			cfg.Template.Replication = 1
			cfg.Template.HedgeAfterMS = 20
			// SLO and clear margins sit clear of the latency histogram's
			// power-of-two buckets on slow machines: breach delay 100ms →
			// p999 ≥ 131ms > 70ms; post-clear p999 ≤ 32.8ms < 35ms.
			cfg.Template.Controller = &fleetha.ControllerConfig{
				SLO:              70 * time.Millisecond,
				Window:           150 * time.Millisecond,
				ClearFraction:    0.5,
				BreachAfter:      2,
				ClearAfter:       2,
				CooldownWindows:  2,
				MaxBoost:         1,
				HotK:             1,
				MinWindowSamples: 5,
			}
			if cfg.Duration < 4*time.Second {
				cfg.Duration = 4 * time.Second
			}
		}
		r, err := RunHA(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: ha %s arm: %w", arm.label, err)
		}
		r.Label = arm.label
		res.Arms = append(res.Arms, *r)
	}
	return res, nil
}

// PrintHA formats the coordinator-HA ablation: the throughput/tail
// table with the HA-specific columns, then a verdict per fault arm —
// the leader's death must cost a redirect, not a request, and an SLO
// breach must cost a promotion, not a breach forever.
//
//gesp:errok
func PrintHA(w io.Writer, res *HAAblationResult) {
	fmt.Fprintln(w, "Coordinator HA under chaos (replicated control plane + SLO controller):")
	fmt.Fprintf(w, "%-11s %7s %7s %10s %10s %10s %7s %10s %6s %10s %10s\n",
		"arm", "coords", "shards", "solves/s", "p50", "p99", "fail", "failover", "lost", "promote", "recover")
	for _, r := range res.Arms {
		col := func(d time.Duration) string {
			if d <= 0 {
				return "-"
			}
			return fmtDur(d)
		}
		lost := "-"
		if r.Label == "leaderkill" {
			lost = fmt.Sprintf("%d", r.RegistryLost)
		}
		fmt.Fprintf(w, "%-11s %7d %7d %10.0f %10s %10s %7d %10s %6s %10s %10s\n",
			r.Label, r.Coordinators, r.Shards, r.Throughput, fmtDur(r.P50), fmtDur(r.P99),
			r.Failed, col(r.FailoverLatency), lost, col(r.PromoteLatency), col(r.RecoverLatency))
	}
	fmt.Fprintln(w)
	for _, r := range res.Arms {
		switch {
		case r.ChaosErr != "":
			fmt.Fprintf(w, "[%s] CHAOS ERROR: %s\n", r.Label, r.ChaosErr)
		case r.Label == "leaderkill" && r.Failed > 0:
			fmt.Fprintf(w, "[%s] %d CLIENT-VISIBLE FAILURES: the redirect/retry ladder must absorb the leader's death\n", r.Label, r.Failed)
		case r.Label == "leaderkill" && r.RegistryLost != 0:
			fmt.Fprintf(w, "[%s] %d REGISTRY ENTRIES LOST: replication must hand the successor every handle\n", r.Label, r.RegistryLost)
		case r.Label == "leaderkill":
			fmt.Fprintf(w, "[%s] coordinator %d killed, failover in %v, 0 of %d registry entries lost, zero client-visible failures\n",
				r.Label, r.KilledCoord, r.FailoverLatency, r.RegistryBefore)
		case r.Label == "slobreach" && r.Failed > 0:
			fmt.Fprintf(w, "[%s] %d CLIENT-VISIBLE FAILURES during the breach\n", r.Label, r.Failed)
		case r.Label == "slobreach":
			fmt.Fprintf(w, "[%s] breach promoted in %v, recovered (demote) %v after clear; %d controller decisions\n",
				r.Label, r.PromoteLatency, r.RecoverLatency, len(r.Decisions))
			for _, d := range r.Decisions {
				fmt.Fprintf(w, "    w%-4d %-8s %s\n", d.Window, d.Action, d.Reason)
			}
		}
	}
}
