package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"gesp/internal/core"
	"gesp/internal/dist"
	"gesp/internal/kernels"
	"gesp/internal/lu"
	"gesp/internal/matgen"
	"gesp/internal/superlu"
)

// KernelRow is one measurement of the kernel-mode ablation: engine ×
// kernel mode, with the speedup over the same engine under scalar
// kernels and a bit-identity check where the engine is deterministic.
type KernelRow struct {
	Engine string `json:"engine"` // "rankb-micro" | "serial" | "parallel" | "dist"
	Mode   string `json:"mode"`   // kernels.Mode name
	WallNs int64  `json:"wall_ns"`
	// Mflops is flops/wall for the real engines; for the micro row it is
	// the rate of the update loop itself.
	Mflops  float64 `json:"mflops"`
	Speedup float64 `json:"speedup"` // scalar wall / this wall, same engine
	// BitOK reports the mode's deterministic output matched the scalar
	// run bit for bit: factor fingerprints for the serial engine and the
	// micro row, the virtual-clock time for the simulated distributed
	// engine (flop accounting must be mode-invariant). Always true for
	// the nondeterministic dag-parallel engine (not compared).
	BitOK bool `json:"bit_ok"`
}

// KernelAblation measures every execution engine under every kernel
// mode (scalar, register-blocked, blocked+arena) on the named testbed
// matrix: the ISSUE's raw-speed campaign scoreboard. procs sets the
// simulated process count of the distributed engine and the worker
// count of the DAG engine.
func KernelAblation(name string, scale float64, procs int) ([]KernelRow, error) {
	m, ok := matgen.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown testbed matrix %q", name)
	}
	a := m.Generate(scale)
	s, err := core.NewAnalysis(a, core.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", name, err)
	}
	ap, sym := s.PermutedMatrix(), s.Symbolic()
	opts := lu.Options{ReplaceTinyPivot: true}
	modes := []kernels.Mode{kernels.ModeScalar, kernels.ModeBlocked, kernels.ModeBlockedArena}
	const reps = 3

	restore := kernels.Active()
	defer kernels.SetMode(restore)

	var rows []KernelRow
	addEngine := func(engine string, deterministic bool, run func() (uint64, error)) error {
		var scalarNs int64
		var scalarSig uint64
		for _, mode := range modes {
			kernels.SetMode(mode)
			var sig uint64
			wall, err := minWall(reps, func() error {
				var err error
				sig, err = run()
				return err
			})
			if err != nil {
				return fmt.Errorf("experiments: %s %s/%s: %w", name, engine, mode, err)
			}
			row := KernelRow{Engine: engine, Mode: mode.String(), WallNs: wall, BitOK: true}
			if wall > 0 {
				row.Mflops = float64(sym.Flops) / (float64(wall) / 1e9) / 1e6
			}
			if mode == kernels.ModeScalar {
				scalarNs, scalarSig = wall, sig
				row.Speedup = 1
			} else {
				if scalarNs > 0 && wall > 0 {
					row.Speedup = float64(scalarNs) / float64(wall)
				}
				if deterministic {
					row.BitOK = sig == scalarSig
				}
			}
			rows = append(rows, row)
		}
		return nil
	}

	// Schur-update micro-benchmark: a factorization-shaped loop that is
	// all RankBUpdateInto — the paper's update kernel, where the
	// register blocking pays. Signature: FNV over the target block.
	micro, microFlops := microUpdate()
	var scalarNs int64
	var scalarSig uint64
	for _, mode := range modes {
		kernels.SetMode(mode)
		var sig uint64
		wall, err := minWall(reps, func() error {
			sig = micro()
			return nil
		})
		if err != nil {
			return nil, err
		}
		row := KernelRow{Engine: "rankb-micro", Mode: mode.String(), WallNs: wall, BitOK: true}
		if wall > 0 {
			row.Mflops = microFlops / (float64(wall) / 1e9) / 1e6
		}
		if mode == kernels.ModeScalar {
			scalarNs, scalarSig = wall, sig
			row.Speedup = 1
		} else {
			row.Speedup = float64(scalarNs) / float64(wall)
			row.BitOK = sig == scalarSig
		}
		rows = append(rows, row)
	}

	// Serial blocked engine: deterministic, fingerprint-compared.
	if err := addEngine("serial", true, func() (uint64, error) {
		f, err := superlu.Factorize(ap, sym, opts)
		if err != nil {
			return 0, err
		}
		return f.Fingerprint(), nil
	}); err != nil {
		return nil, err
	}

	// DAG-scheduled shared-memory engine: update order races commute
	// sums, so only wall time is compared.
	if err := addEngine("parallel", false, func() (uint64, error) {
		_, err := superlu.FactorizeParallel(ap, sym, opts, procs)
		return 0, err
	}); err != nil {
		return nil, err
	}

	// Simulated distributed engine: deterministic; the virtual clock is
	// fed the kernels' flop counts, so SimTime must be bit-equal across
	// modes (the flop-accounting invariant).
	rhs := matgen.OnesRHS(ap)
	if err := addEngine("dist", true, func() (uint64, error) {
		res, err := dist.Solve(ap, sym, rhs, dist.Options{
			Procs: procs, Pipeline: true, EDAGPrune: true, ReplaceTinyPivot: true,
		})
		if err != nil {
			return 0, err
		}
		return math.Float64bits(res.Factor.SimTime), nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// microUpdate builds a supernode-shaped Schur-update loop (tall L
// panel, 24-wide supernode) and returns a runner that applies it and
// fingerprints the target, plus the flops of one run.
func microUpdate() (func() uint64, float64) {
	rng := rand.New(rand.NewSource(9))
	const nrL, bk, ncU, iters = 384, 24, 24, 32
	rowIDs := make([]int, nrL)
	for i := range rowIDs {
		rowIDs[i] = i
	}
	kIDs := make([]int, bk)
	for i := range kIDs {
		kIDs[i] = 10000 + i
	}
	cIDs := make([]int, ncU)
	for i := range cIDs {
		cIDs[i] = 20000 + i
	}
	l := dist.NewBlock(rowIDs, kIDs)
	u := dist.NewBlock(kIDs, cIDs)
	tgt := dist.NewBlock(rowIDs, cIDs)
	for i := range l.Val {
		l.Val[i] = rng.NormFloat64()
	}
	// U operand blocks of the testbed factorizations are nearly dense
	// (measured 0-4% zeros across AF23560/BBMAT/TWOTONE/EX11), so plant
	// only a light sprinkling of zeros to keep the nonzero-counting and
	// skip paths honest without skewing the flop balance.
	nz := 0
	for i := range u.Val {
		if i%37 == 0 {
			u.Val[i] = 0
		} else {
			u.Val[i] = rng.NormFloat64()
			nz++
		}
	}
	init := make([]float64, len(tgt.Val))
	for i := range init {
		init[i] = rng.NormFloat64()
	}
	var ws dist.UpdateScratch
	run := func() uint64 {
		copy(tgt.Val, init)
		for r := 0; r < iters; r++ {
			tgt.RankBUpdateInto(l, u, &ws)
		}
		const offset64, prime64 = 14695981039346656037, 1099511628211
		h := uint64(offset64)
		for _, v := range tgt.Val {
			b := math.Float64bits(v)
			for s := 0; s < 64; s += 8 {
				h ^= (b >> s) & 0xff
				h *= prime64
			}
		}
		return h
	}
	return run, float64(iters) * 2 * nrL * float64(nz)
}

// PrintKernels renders the ablation as the campaign scoreboard.
//
//gesp:errok
func PrintKernels(w io.Writer, rows []KernelRow) {
	fmt.Fprintln(w, "Kernel campaign ablation (scalar vs register-blocked vs blocked+arena):")
	fmt.Fprintf(w, "%-12s %-14s %12s %10s %9s %7s\n", "Engine", "Mode", "wall(ms)", "Mflops", "speedup", "bit-ok")
	for _, r := range rows {
		ok := "yes"
		if !r.BitOK {
			ok = "NO"
		}
		fmt.Fprintf(w, "%-12s %-14s %12.3f %10.1f %8.2fx %7s\n",
			r.Engine, r.Mode, float64(r.WallNs)/1e6, r.Mflops, r.Speedup, ok)
	}
}
