package experiments

import (
	"fmt"
	"io"
	"time"

	"gesp/internal/core"
	"gesp/internal/dist"
	"gesp/internal/lu"
	"gesp/internal/matgen"
	"gesp/internal/superlu"
)

// ParFactorRow is one machine-readable measurement of a factorization
// engine run: the schema of cmd/gesp-bench's -json output, intended for
// a BENCH_*.json performance trajectory tracked across revisions.
// SimulatedNs is nonzero only for the mpisim variant (virtual-clock
// time); WallNs is real elapsed time for every variant.
type ParFactorRow struct {
	Matrix      string  `json:"matrix"`
	Variant     string  `json:"variant"` // "scalar-serial" | "blocked-serial" | "dag-parallel" | "mpisim"
	Workers     int     `json:"workers"`
	WallNs      int64   `json:"wall_ns"`
	SimulatedNs int64   `json:"simulated_ns"`
	Mflops      float64 `json:"mflops"`
}

// minWall returns the best of reps timed runs of f in nanoseconds.
func minWall(reps int, f func() error) (int64, error) {
	best := int64(0)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		ns := time.Since(t0).Nanoseconds()
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// ParallelFactorSweep benchmarks the factorization engines on the named
// testbed matrices: the scalar serial reference, the serial blocked
// engine, the DAG-scheduled shared-memory engine at each worker count,
// and the simulated distributed engine at the largest worker count.
func ParallelFactorSweep(names []string, scale float64, workerCounts []int) ([]ParFactorRow, error) {
	const reps = 3
	var rows []ParFactorRow
	for _, name := range names {
		m, ok := matgen.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown testbed matrix %q", name)
		}
		a := m.Generate(scale)
		s, err := core.NewAnalysis(a, core.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		ap, sym := s.PermutedMatrix(), s.Symbolic()
		opts := lu.Options{ReplaceTinyPivot: true}
		mflops := func(wallNs int64) float64 {
			if wallNs == 0 {
				return 0
			}
			return float64(sym.Flops) / (float64(wallNs) / 1e9) / 1e6
		}

		ns, err := minWall(reps, func() error { _, err := lu.Factorize(ap, sym, opts); return err })
		if err != nil {
			return nil, fmt.Errorf("experiments: %s scalar: %w", name, err)
		}
		rows = append(rows, ParFactorRow{Matrix: name, Variant: "scalar-serial", Workers: 1, WallNs: ns, Mflops: mflops(ns)})

		ns, err = minWall(reps, func() error { _, _, err := dist.FactorizeBlocked(ap, sym, opts); return err })
		if err != nil {
			return nil, fmt.Errorf("experiments: %s blocked: %w", name, err)
		}
		rows = append(rows, ParFactorRow{Matrix: name, Variant: "blocked-serial", Workers: 1, WallNs: ns, Mflops: mflops(ns)})

		maxW := 1
		for _, w := range workerCounts {
			if w > maxW {
				maxW = w
			}
			ns, err = minWall(reps, func() error { _, err := superlu.FactorizeParallel(ap, sym, opts, w); return err })
			if err != nil {
				return nil, fmt.Errorf("experiments: %s workers=%d: %w", name, w, err)
			}
			rows = append(rows, ParFactorRow{Matrix: name, Variant: "dag-parallel", Workers: w, WallNs: ns, Mflops: mflops(ns)})
		}

		// The simulated distributed engine at the same concurrency, for
		// the virtual-clock trajectory (Tables 3-5 machinery).
		rhs := matgen.OnesRHS(ap)
		t0 := time.Now()
		res, err := dist.Solve(ap, sym, rhs, dist.Options{
			Procs: maxW, Pipeline: true, EDAGPrune: true, ReplaceTinyPivot: true,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s mpisim: %w", name, err)
		}
		rows = append(rows, ParFactorRow{
			Matrix: name, Variant: "mpisim", Workers: maxW,
			WallNs:      time.Since(t0).Nanoseconds(),
			SimulatedNs: int64(res.Factor.SimTime * 1e9),
			Mflops:      res.Factor.Mflops,
		})
	}
	return rows, nil
}

// PrintParFactor renders the sweep as a human-readable table (the
// non-JSON output of gesp-bench -exp parfactor).
//
//gesp:errok
func PrintParFactor(w io.Writer, rows []ParFactorRow) {
	fmt.Fprintln(w, "Factorization engines (wall-clock; mpisim reports the virtual clock too):")
	fmt.Fprintf(w, "%-10s %-14s %8s %12s %12s %10s\n", "Matrix", "Variant", "workers", "wall(ms)", "sim(ms)", "Mflops")
	for _, r := range rows {
		sim := "-"
		if r.SimulatedNs > 0 {
			sim = fmt.Sprintf("%.3f", float64(r.SimulatedNs)/1e6)
		}
		fmt.Fprintf(w, "%-10s %-14s %8d %12.3f %12s %10.1f\n",
			r.Matrix, r.Variant, r.Workers, float64(r.WallNs)/1e6, sim, r.Mflops)
	}
}
