package experiments

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"gesp/internal/core"
	"gesp/internal/matgen"
	"gesp/internal/serve"
	"gesp/internal/sparse"
)

// The serving experiment: closed-loop clients hammer the solve service
// with a pool of systems spanning several sparsity patterns, several
// value variants per pattern. It measures what the serving layer is
// for — solve throughput and latency once analysis and factors are
// cached — and the ablation compares batched multi-RHS sweeps against
// the same service with batching disabled.

// serveLoadPatterns are the testbed patterns the load generator cycles
// through, smallest-first so default runs stay quick.
var serveLoadPatterns = []string{
	"SHERMAN4", "GEMAT11", "WEST2021", "ORSIRR_1", "JPWH_991",
	"PORES_2", "SHERMAN3", "ADD32", "MEMPLUS", "SAYLR4",
}

// ServeLoadConfig parameterizes one closed-loop run.
type ServeLoadConfig struct {
	Service  serve.Config
	Clients  int
	Patterns int // distinct sparsity patterns in the pool
	Variants int // value variants per pattern (pattern-cache workload)
	Duration time.Duration
	Scale    float64
	// Resubmit is the per-request probability (in [0,1]) that a client
	// resubmits its system before solving, exercising the factor-cache
	// hit path under load.
	Resubmit float64
}

// ServeLoadResult is one run's measurement.
type ServeLoadResult struct {
	Label         string
	Clients       int
	Systems       int
	Solves        uint64
	Shed          uint64
	Elapsed       time.Duration
	Throughput    float64 // solves per second
	P50, P95, P99 time.Duration
	MeanBatch     float64 // solves per batched sweep
	Stats         serve.Stats
}

// RunServeLoad builds the system pool, submits every system once to warm
// the caches, then runs Clients closed-loop clients for Duration and
// reports throughput, latency percentiles and the service counters.
func RunServeLoad(cfg ServeLoadConfig) (*ServeLoadResult, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Patterns <= 0 {
		cfg.Patterns = 3
	}
	if cfg.Patterns > len(serveLoadPatterns) {
		cfg.Patterns = len(serveLoadPatterns)
	}
	if cfg.Variants <= 0 {
		cfg.Variants = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 0.3
	}

	type system struct {
		a *sparse.CSC
		b []float64
		h serve.Handle
	}
	var systems []system
	for p := 0; p < cfg.Patterns; p++ {
		m, ok := matgen.Lookup(serveLoadPatterns[p])
		if !ok {
			return nil, fmt.Errorf("experiments: testbed matrix %s missing", serveLoadPatterns[p])
		}
		base := m.Generate(cfg.Scale)
		for v := 0; v < cfg.Variants; v++ {
			a := base
			if v > 0 {
				rng := rand.New(rand.NewSource(int64(1000*p + v)))
				a = base.Clone()
				for k := range a.Val {
					a.Val[k] *= 1 + 0.1*rng.NormFloat64()
				}
			}
			systems = append(systems, system{a: a, b: matgen.OnesRHS(a)})
		}
	}

	svc := serve.New(cfg.Service)
	defer svc.Close()
	for i := range systems {
		h, err := svc.Submit(systems[i].a)
		if err != nil {
			return nil, fmt.Errorf("experiments: warm submit %d: %w", i, err)
		}
		systems[i].h = h
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		solves    uint64
		shed      uint64
		firstErr  error
	)
	deadline := time.Now().Add(cfg.Duration)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7777 + c)))
			var local []time.Duration
			var mySolves, myShed uint64
			for time.Now().Before(deadline) {
				sys := &systems[rng.Intn(len(systems))]
				if cfg.Resubmit > 0 && rng.Float64() < cfg.Resubmit {
					if _, err := svc.Submit(sys.a); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
				t0 := time.Now()
				_, err := svc.Solve(sys.h, sys.b)
				switch {
				case err == nil:
					local = append(local, time.Since(t0))
					mySolves++
				case errors.Is(err, serve.ErrOverloaded):
					myShed++
				default:
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			solves += mySolves
			shed += myShed
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	res := &ServeLoadResult{
		Clients:    cfg.Clients,
		Systems:    len(systems),
		Solves:     solves,
		Shed:       shed,
		Elapsed:    cfg.Duration,
		Stats:      svc.Stats(),
		Throughput: float64(solves) / cfg.Duration.Seconds(),
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	res.P50, res.P95, res.P99 = pct(0.50), pct(0.95), pct(0.99)
	if res.Stats.Batches > 0 {
		res.MeanBatch = float64(res.Stats.Solves) / float64(res.Stats.Batches)
	}
	return res, nil
}

// ServeAblationResult holds the batching ablation: the closed-loop
// arms plus a direct measurement of the multi-RHS kernel amortization
// the batcher exploits.
type ServeAblationResult struct {
	Rows []ServeLoadResult
	// KernelK and KernelSpeedup measure the batching ceiling on one
	// cached factor: time of KernelK single-RHS solves divided by the
	// time of one KernelK-wide SolveBatch. Independent of admission
	// policy and host parallelism.
	KernelK       int
	KernelSpeedup float64
}

// ServeAblation runs the closed-loop load under three admission
// policies — batching off, batching by natural backlog only, and
// batching with the default delay window — holding the client count,
// system pool and duration fixed, and separately measures the
// multi-RHS kernel amortization.
func ServeAblation(clients int, duration time.Duration, scale float64) (*ServeAblationResult, error) {
	// A tight pool (4 systems) so closed-loop clients concentrate on
	// few factors: batching needs concurrent demand per factor
	// (clients/systems > 1) to coalesce anything. The load generator
	// (RunServeLoad directly) covers wide mixed-pattern pools.
	base := ServeLoadConfig{
		Clients:  clients,
		Patterns: 2,
		Variants: 2,
		Duration: duration,
		Scale:    scale,
		Resubmit: 0.05,
	}

	res := &ServeAblationResult{}
	for _, mode := range []struct {
		label    string
		maxBatch int
		maxDelay time.Duration
	}{
		// "backlog" cuts as soon as a sweep finishes, so only requests
		// that arrived during the previous sweep coalesce — free
		// batching on a multi-core host, degenerates to singletons on
		// one core (a CPU-bound sweep leaves clients no cycles to
		// enqueue). "delay" additionally holds each sweep up to the
		// service's default MaxDelay: batches form on any host, at the
		// cost of the timer wait showing up in latency (and, on one
		// core, in throughput).
		{"unbatched", 1, 0},
		{"backlog", 16, 0},
		{"delay", 16, serve.DefaultConfig().MaxDelay},
	} {
		cfg := base
		cfg.Service = serve.DefaultConfig()
		cfg.Service.MaxBatch = mode.maxBatch
		cfg.Service.MaxDelay = mode.maxDelay
		// Refinement off isolates the triangular-sweep batching effect;
		// the correctness tests cover the refined path.
		cfg.Service.Options.Refine = false
		r, err := RunServeLoad(cfg)
		if err != nil {
			return nil, err
		}
		r.Label = mode.label
		res.Rows = append(res.Rows, *r)
	}

	var err error
	res.KernelK = 16
	res.KernelSpeedup, err = serveKernelAmortization(scale, res.KernelK)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// serveKernelAmortization measures, on one factorized system, the best
// of several repetitions of k single-RHS solves against one k-wide
// batched solve — the per-request saving the RHS batcher is built on.
func serveKernelAmortization(scale float64, k int) (float64, error) {
	m, ok := matgen.Lookup(serveLoadPatterns[0])
	if !ok {
		return 0, fmt.Errorf("experiments: testbed matrix %s missing", serveLoadPatterns[0])
	}
	a := m.Generate(scale)
	opts := core.DefaultOptions()
	opts.Refine = false
	s, err := core.New(a, opts)
	if err != nil {
		return 0, err
	}
	b := matgen.OnesRHS(a)
	bs := make([][]float64, k)
	for i := range bs {
		bs[i] = b
	}
	single, multi := time.Duration(0), time.Duration(0)
	for rep := 0; rep < 5; rep++ {
		t0 := time.Now()
		for i := 0; i < k; i++ {
			if _, err := s.Solve(b); err != nil {
				return 0, err
			}
		}
		if d := time.Since(t0); rep == 0 || d < single {
			single = d
		}
		t0 = time.Now()
		if _, err := s.SolveBatch(bs); err != nil {
			return 0, err
		}
		if d := time.Since(t0); rep == 0 || d < multi {
			multi = d
		}
	}
	if multi <= 0 {
		return 0, nil
	}
	return float64(single) / float64(multi), nil
}

// PrintServe formats the serving ablation like the repo's other
// experiment tables.
//
//gesp:errok
func PrintServe(w io.Writer, res *ServeAblationResult) {
	rows := res.Rows
	fmt.Fprintln(w, "Serving-layer throughput/latency (closed loop; factor-cached solves):")
	fmt.Fprintf(w, "%-10s %8s %8s %10s %10s %10s %10s %9s %6s %8s\n",
		"mode", "clients", "systems", "solves/s", "p50", "p95", "p99", "avgBatch", "shed", "vs-unbat")
	for i, r := range rows {
		ratio := "-"
		if i > 0 && rows[0].Throughput > 0 {
			ratio = fmt.Sprintf("%.2fx", r.Throughput/rows[0].Throughput)
		}
		fmt.Fprintf(w, "%-10s %8d %8d %10.0f %10s %10s %10s %9.2f %6d %8s\n",
			r.Label, r.Clients, r.Systems, r.Throughput,
			fmtDur(r.P50), fmtDur(r.P95), fmtDur(r.P99), r.MeanBatch, r.Shed, ratio)
	}
	fmt.Fprintf(w, "multi-RHS kernel amortization (k=%d, one factor): %.2fx\n",
		res.KernelK, res.KernelSpeedup)
	for _, r := range rows {
		fmt.Fprintf(w, "\n[%s] service counters:\n%s", r.Label, indent(r.Stats.String(), "  "))
	}
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
