package experiments

import (
	"bytes"
	"strings"
	"testing"
)

const expScale = 0.25

func TestTable1Complete(t *testing.T) {
	rows := Table1(expScale)
	if len(rows) != 53 {
		t.Fatalf("Table 1 has %d rows, want 53", len(rows))
	}
	zero := 0
	for _, r := range rows {
		if r.N <= 0 || r.Nnz <= 0 {
			t.Errorf("%s: empty matrix", r.Name)
		}
		if r.ZeroDiag > 0 {
			zero++
		}
	}
	if zero < 10 {
		t.Errorf("only %d matrices with zero diagonals (paper: 22)", zero)
	}
	var buf bytes.Buffer
	PrintTable1(&buf, expScale)
	if !strings.Contains(buf.String(), "TWOTONE") {
		t.Error("rendered Table 1 missing TWOTONE")
	}
}

func TestRunSerialShapes(t *testing.T) {
	rows := RunSerial(expScale, true, false)
	if len(rows) != 53 {
		t.Fatalf("%d rows, want 53", len(rows))
	}
	// Sorted by factorization time.
	for i := 1; i < len(rows); i++ {
		if rows[i].FactorTime < rows[i-1].FactorTime {
			t.Fatal("rows not sorted by factor time")
		}
	}
	failed := 0
	gespWins := 0
	for _, r := range rows {
		if r.Failed {
			failed++
			continue
		}
		// Figure 5's claim: berr always small.
		if r.Berr > 1e-10 {
			t.Errorf("%s: berr %g", r.Name, r.Berr)
		}
		if r.NnzLU < r.NnzA {
			t.Errorf("%s: fill below nnz(A)", r.Name)
		}
		if r.ErrGEPP >= 0 && r.ErrGESP <= r.ErrGEPP {
			gespWins++
		}
	}
	if failed > 0 {
		t.Errorf("%d matrices failed under full GESP", failed)
	}
	// Figure 4's shape: GESP is competitive with GEPP on a majority.
	if gespWins < len(rows)/3 {
		t.Errorf("GESP at least as accurate on only %d of %d", gespWins, len(rows))
	}
	// Figure 3's shape: refinement takes a small number of steps.
	h := Figure3Histogram(rows)
	if h[0]+h[1]+h[2]+h[3] < 40 {
		t.Errorf("refinement histogram too heavy-tailed: %v", h)
	}

	var buf bytes.Buffer
	PrintFigure2(&buf, rows)
	PrintFigure3(&buf, rows)
	PrintFigure4(&buf, rows)
	PrintFigure5(&buf, rows)
	PrintFigure6(&buf, rows)
	out := buf.String()
	for _, want := range []string{"Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestRunNoPivotShape(t *testing.T) {
	rows := RunNoPivot(expScale)
	failed := 0
	for _, r := range rows {
		if r.Failed {
			failed++
		}
	}
	// The paper reports 27 of 53 failing outright; the synthetic testbed
	// must reproduce a substantial failure population.
	if failed < 8 {
		t.Errorf("only %d no-pivot breakdowns (paper: 27)", failed)
	}
	var buf bytes.Buffer
	PrintNoPivot(&buf, expScale)
	if !strings.Contains(buf.String(), "breakdowns") {
		t.Error("no-pivot rendering incomplete")
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2(expScale)
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.StrSym < 0 || r.StrSym > 1 || r.NumSym < 0 || r.NumSym > 1 {
			t.Errorf("%s: symmetry out of range", r.Name)
		}
		if r.NnzLU == 0 || r.Flops == 0 {
			t.Errorf("%s: analysis failed", r.Name)
		}
	}
	// TWOTONE's supernodes must be the smallest or near it (the paper's
	// pathology: 2.4 columns average).
	var two, maxAvg float64
	for _, r := range rows {
		if r.Name == "TWOTONE" {
			two = r.AvgSuper
		}
		if r.AvgSuper > maxAvg {
			maxAvg = r.AvgSuper
		}
	}
	if two >= maxAvg {
		t.Errorf("TWOTONE avg supernode %.1f not below max %.1f", two, maxAvg)
	}
}

func TestRunScalingSmall(t *testing.T) {
	procs := []int{2, 4, 8}
	rows, err := RunScaling(expScale, procs, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if len(r.Cells) != len(procs) {
			t.Fatalf("%s: %d cells", r.Name, len(r.Cells))
		}
		for _, c := range r.Cells {
			if c.Err > 1e-6 {
				t.Errorf("%s P=%d: distributed error %g", r.Name, c.Procs, c.Err)
			}
			if c.FactorTime <= 0 || c.SolveTime <= 0 {
				t.Errorf("%s P=%d: nonpositive times", r.Name, c.Procs)
			}
			if c.LoadBalance <= 0 || c.LoadBalance > 1 {
				t.Errorf("%s P=%d: load balance %g", r.Name, c.Procs, c.LoadBalance)
			}
		}
		// Scaling shape: more processors should not be drastically slower
		// at these sizes; require max-P factor time <= 1.5x min observed.
		minT := r.Cells[0].FactorTime
		for _, c := range r.Cells {
			if c.FactorTime < minT {
				minT = c.FactorTime
			}
		}
		if last := r.Cells[len(r.Cells)-1].FactorTime; last > 3*minT {
			t.Errorf("%s: factor time at P=%d is %gx the best", r.Name, procs[len(procs)-1], last/minT)
		}
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows, procs)
	PrintTable4(&buf, rows, procs)
	PrintTable5(&buf, rows, procs, 4)
	out := buf.String()
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "Table 5") {
		t.Error("scaling tables incomplete")
	}
}

func TestAblations(t *testing.T) {
	edag, err := EDAGAblation("AF23560", expScale, 8)
	if err != nil {
		t.Fatal(err)
	}
	if edag.OnMessages > edag.BaseMessages {
		t.Errorf("EDAG pruning increased messages: %d -> %d", edag.BaseMessages, edag.OnMessages)
	}
	pipe, err := PipelineAblation("AF23560", expScale, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pipe.OnTime > pipe.BaseTime*1.05 {
		t.Errorf("pipelining slowed factorization: %g -> %g", pipe.BaseTime, pipe.OnTime)
	}
	var buf bytes.Buffer
	PrintAblation(&buf, "EDAG pruning", edag)
	PrintAblation(&buf, "Pipelining", pipe)
	if !strings.Contains(buf.String(), "fewer") {
		t.Error("ablation rendering incomplete")
	}
}

func TestBlockSizeAblation(t *testing.T) {
	res, err := BlockSizeAblation("AF23560", expScale, 4, []int{4, 24, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	for _, r := range res {
		if r.FactorTime <= 0 {
			t.Errorf("MaxSuper=%d: no time", r.MaxSuper)
		}
	}
	if res[0].AvgSuper > res[2].AvgSuper {
		t.Error("larger MaxSuper should not shrink average supernode")
	}
}

func TestOrderingAblation(t *testing.T) {
	rows, err := OrderingAblation([]string{"AF23560", "SHERMAN4"}, expScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Fill["mmd-ata"] >= r.Fill["natural"] {
			t.Errorf("%s: MMD fill %d not below natural %d", r.Name, r.Fill["mmd-ata"], r.Fill["natural"])
		}
	}
}

func TestIterativeAblation(t *testing.T) {
	rows, err := IterativeAblation([]string{"AF23560", "GEMAT11"}, expScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.MC64ILUOK {
			t.Errorf("%s: ILU broke down even after MC64 preprocessing", r.Name)
		}
		if !r.MC64Conv {
			t.Errorf("%s: GMRES did not converge after MC64 preprocessing", r.Name)
		}
	}
	// GEMAT11 has zero diagonals: plain ILU(0) must break down, and the
	// MC64 permutation must repair it — the Duff–Koster observation.
	for _, r := range rows {
		if r.Name == "GEMAT11" && r.PlainILUOK {
			t.Error("GEMAT11: plain ILU(0) unexpectedly succeeded on a zero-diagonal matrix")
		}
	}
	var buf bytes.Buffer
	PrintIterative(&buf, rows)
	if !strings.Contains(buf.String(), "ILU") {
		t.Error("iterative rendering incomplete")
	}
}

func TestRelaxAblation(t *testing.T) {
	res, err := RelaxAblation("TWOTONE", expScale, 4, []int{0, 2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	if res[2].AvgSuper < res[0].AvgSuper {
		t.Errorf("relaxation shrank supernodes: %.2f -> %.2f", res[0].AvgSuper, res[2].AvgSuper)
	}
	t.Logf("TWOTONE avg supernode: relax0=%.2f relax2=%.2f relax6=%.2f",
		res[0].AvgSuper, res[1].AvgSuper, res[2].AvgSuper)
}
