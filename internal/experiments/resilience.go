package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"gesp/internal/faultsim"
	"gesp/internal/lu"
	"gesp/internal/resilience"
	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

// The resilience ablation: one injected fault per ladder rung, each
// solved through the full escalation ladder. The table shows which rung
// caught the fault, how many refinement/Krylov iterations it spent,
// the recovered backward error, and the fallback cost — the empirical
// version of the paper's safety argument that static pivoting plus an
// escalation path is as safe as partial pivoting.

// ResilienceRow is one fault scenario's outcome.
type ResilienceRow struct {
	Scenario  string
	FinalRung string
	Trigger   string
	Steps     int
	Iters     int
	Berr      float64
	Converged bool
	Fallback  time.Duration
}

// ResilienceAblation runs the fault catalogue against the ladder. Each
// scenario factors a (possibly sabotaged) system, then solves the true
// system through resilience.Ladder and records the trace.
func ResilienceAblation(seed int64) ([]ResilienceRow, error) {
	inj := faultsim.New(seed)

	type scenario struct {
		name string
		// build returns the matrix the solve must satisfy and the
		// factors the ladder starts from (possibly stale or corrupt).
		build func() (*sparse.CSC, *lu.Factors, error)
	}
	scenarios := []scenario{
		{"healthy", func() (*sparse.CSC, *lu.Factors, error) {
			a := inj.WellConditioned(200, 0.03)
			f, err := factorGESP(a)
			return a, f, err
		}},
		{"stale-factors-10%", func() (*sparse.CSC, *lu.Factors, error) {
			// Factors of a 10%-perturbed copy: refinement contracts, but
			// slowly — the patient extra-precision rung finishes the job.
			a := inj.WellConditioned(200, 0.03)
			f, err := factorGESP(inj.PerturbValues(a, 0.10))
			return a, f, err
		}},
		{"tiny-pivot-replaced", func() (*sparse.CSC, *lu.Factors, error) {
			// A near-singular system whose tiny pivot static pivoting
			// replaces with sqrt(eps)·‖A‖ — refinement stalls on the
			// perturbed factorization; SMW recovers the true system.
			a := inj.NearSingular(120, 1e-10)
			f, err := factorGESP(a)
			return a, f, err
		}},
		{"stale-factors-25%", func() (*sparse.CSC, *lu.Factors, error) {
			// Stale enough that refinement diverges outright, but still a
			// serviceable GMRES preconditioner: the iterative rung wins.
			a := inj.WellConditioned(200, 0.03)
			f, err := factorGESP(inj.PerturbValues(a, 0.25))
			return a, f, err
		}},
		{"stale-factors-150%", func() (*sparse.CSC, *lu.Factors, error) {
			// Factors so stale refinement diverges: only good as a GMRES
			// preconditioner (the SMW rung has nothing to correct).
			a := inj.WellConditioned(200, 0.03)
			f, err := factorGESP(inj.PerturbValues(a, 1.5))
			return a, f, err
		}},
		{"corrupt-factors", func() (*sparse.CSC, *lu.Factors, error) {
			// NaN-poisoned factor arrays (simulated cache corruption):
			// nothing short of a GEPP refactorization recovers.
			a := inj.WellConditioned(200, 0.03)
			f, err := factorGESP(a)
			if err == nil {
				inj.CorruptFactors(f, 3)
			}
			return a, f, err
		}},
	}

	rows := make([]ResilienceRow, 0, len(scenarios))
	for _, sc := range scenarios {
		a, f, err := sc.build()
		if err != nil {
			return nil, fmt.Errorf("experiments: resilience scenario %s: %w", sc.name, err)
		}
		l := resilience.NewLadder(a, f, nil, resilience.Policy{})
		want := make([]float64, a.Rows)
		for i := range want {
			want[i] = 1
		}
		b := make([]float64, a.Rows)
		a.MatVec(b, want)
		x := make([]float64, a.Rows)
		tr, err := l.Solve(context.Background(), x, b)
		if err != nil {
			return nil, fmt.Errorf("experiments: resilience scenario %s did not recover: %w", sc.name, err)
		}
		iters, trigger := 0, resilience.TriggerNone
		for _, st := range tr.Steps {
			iters += st.Iterations
			if st.Trigger != resilience.TriggerNone {
				trigger = st.Trigger
			}
		}
		rows = append(rows, ResilienceRow{
			Scenario:  sc.name,
			FinalRung: tr.FinalRung.String(),
			Trigger:   trigger.String(),
			Steps:     len(tr.Steps),
			Iters:     iters,
			Berr:      tr.FinalBerr,
			Converged: tr.Converged,
			Fallback:  tr.FallbackCost(),
		})
	}
	return rows, nil
}

// factorGESP runs the static-pivot factorization the ladder sits
// behind.
func factorGESP(a *sparse.CSC) (*lu.Factors, error) {
	sym, err := symbolic.Factorize(a, symbolic.Options{})
	if err != nil {
		return nil, err
	}
	return lu.Factorize(a, sym, lu.Options{ReplaceTinyPivot: true})
}

// PrintResilience renders the fault-catalogue table.
//
//gesp:errok
func PrintResilience(w io.Writer, rows []ResilienceRow) {
	fmt.Fprintln(w, "Resilience ladder under injected faults (rung 0 = static pivoting, 4 = GEPP refactor):")
	fmt.Fprintf(w, "%-20s %-10s %-10s %6s %6s %12s %10s %6s\n",
		"Scenario", "FinalRung", "Trigger", "Rungs", "Iters", "Berr", "Fallback", "OK")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %-10s %-10s %6d %6d %12.2e %10s %6v\n",
			r.Scenario, r.FinalRung, r.Trigger, r.Steps, r.Iters, r.Berr,
			r.Fallback.Round(10*time.Microsecond), r.Converged)
	}
}
