package experiments

import (
	"fmt"
	"io"
	"time"

	"gesp/internal/dist"
	"gesp/internal/faultsim"
	"gesp/internal/mpisim"
	"gesp/internal/symbolic"
)

// The distributed fault-tolerance ablation: inject one fault class per
// row into the checkpointed distributed factorization and record what
// recovery cost — detection latency, replayed flops, extra messages,
// added virtual time — in the style of the paper's Table 5 overhead
// accounting. The FP-OK column is the headline safety claim: after any
// recovered fault the factors are bit-identical to the fault-free run.

// FaultRow is one (scenario, grid) outcome.
type FaultRow struct {
	Scenario    string
	Grid        string
	Restarts    int
	Checkpoints int
	CkptBytes   int
	DetectMs    float64 // worst virtual fault→detection latency, ms
	ReplayMflop float64 // flops redone because a fault destroyed them
	ExtraMsgs   int64
	AddedMs     float64 // virtual time recovery added, ms
	SimMs       float64 // end-to-end simulated completion time, ms
	BaseMs      float64 // fault-free simulated completion time, ms
	OverPct     float64 // (SimMs-BaseMs)/BaseMs·100
	FPOK        bool    // recovered fingerprint == fault-free fingerprint
}

// backstop caps each simulated run in wall time; it only fires if the
// deterministic watchdog is broken.
const faultsBackstop = 60 * time.Second

// FaultAblation runs the chaos catalogue against the fault-tolerant
// distributed driver on 2×2 and 2×4 grids.
func FaultAblation(seed int64, scale float64) ([]FaultRow, error) {
	n := int(240 * scale)
	if n < 100 {
		n = 100
	}
	a := faultsim.New(seed).WellConditioned(n, 0.05)
	sym, err := symbolic.Factorize(a, symbolic.Options{MaxSuper: 8})
	if err != nil {
		return nil, fmt.Errorf("experiments: faults symbolic: %w", err)
	}
	b := make([]float64, n)
	x1 := make([]float64, n)
	for i := range x1 {
		x1[i] = 1
	}
	a.MatVec(b, x1)

	var rows []FaultRow
	for _, grid := range []mpisim.Grid{{PRow: 2, PCol: 2}, {PRow: 2, PCol: 4}} {
		opts := func() dist.FTOptions {
			g := grid
			return dist.FTOptions{Options: dist.Options{
				Procs: grid.PRow * grid.PCol, Grid: &g,
				EDAGPrune: true, ReplaceTinyPivot: true,
			}}
		}
		base, baseRec, err := dist.SolveFT(a, sym, b, opts())
		if err != nil {
			return nil, fmt.Errorf("experiments: faults baseline %s: %w", grid, err)
		}
		baseSim := baseRec.FinishSimTime
		procs := grid.PRow * grid.PCol

		type scenario struct {
			name  string
			chaos *faultsim.Chaos
		}
		deadline := mpisim.DefaultWatchdogDeadline
		scenarios := []scenario{
			{"baseline", nil},
			{"kill-rank", faultsim.NewChaos(seed).
				Kill(1, 0.3*base.Factor.SimTime)},
			{"stall-rank", faultsim.NewChaos(seed).
				Stall(procs-1, 0.5*base.Factor.SimTime, 20*deadline)},
			{"drop-msg", faultsim.NewChaos(seed).Drop(1, 1)},
			{"jitter+dup", faultsim.NewChaos(seed).Jitter(5e-5).Duplicate(0.1)},
		}
		for _, sc := range scenarios {
			o := opts()
			if sc.chaos != nil {
				o.Fault = sc.chaos.WallBackstop(faultsBackstop).Build()
			}
			_, rec, err := dist.SolveFT(a, sym, b, o)
			if err != nil {
				return nil, fmt.Errorf("experiments: faults scenario %s on %s did not recover: %w", sc.name, grid, err)
			}
			rows = append(rows, FaultRow{
				Scenario:    sc.name,
				Grid:        grid.String(),
				Restarts:    rec.Restarts,
				Checkpoints: rec.Checkpoints,
				CkptBytes:   rec.CheckpointBytes,
				DetectMs:    rec.DetectLatency * 1e3,
				ReplayMflop: float64(rec.ReplayedFlops) / 1e6,
				ExtraMsgs:   rec.ExtraMessages,
				AddedMs:     rec.AddedSimTime * 1e3,
				SimMs:       rec.FinishSimTime * 1e3,
				BaseMs:      baseSim * 1e3,
				OverPct:     100 * (rec.FinishSimTime - baseSim) / baseSim,
				FPOK:        rec.Fingerprint == baseRec.Fingerprint,
			})
		}
	}
	return rows, nil
}

// PrintFaults renders the recovery-overhead table.
//
//gesp:errok
func PrintFaults(w io.Writer, rows []FaultRow) {
	fmt.Fprintln(w, "Distributed fault tolerance: recovery overhead per injected fault")
	fmt.Fprintln(w, "(checkpointed factorization; FP-OK = recovered factors bit-identical to fault-free):")
	fmt.Fprintf(w, "%-12s %6s %9s %6s %10s %12s %10s %9s %9s %9s %8s %6s\n",
		"Scenario", "Grid", "Restarts", "Ckpts", "Detect(ms)", "Replay(Mfl)", "ExtraMsg", "Added(ms)", "Sim(ms)", "Base(ms)", "Over(%)", "FP-OK")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %6s %9d %6d %10.3f %12.3f %10d %9.3f %9.3f %9.3f %8.1f %6v\n",
			r.Scenario, r.Grid, r.Restarts, r.Checkpoints, r.DetectMs, r.ReplayMflop,
			r.ExtraMsgs, r.AddedMs, r.SimMs, r.BaseMs, r.OverPct, r.FPOK)
	}
}
