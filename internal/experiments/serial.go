// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment returns structured rows (consumed by the
// root-level benchmarks and by tests) and can render itself as a text
// table (consumed by cmd/gesp-bench). DESIGN.md carries the experiment
// index mapping each function to the paper artifact it reproduces.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"gesp/internal/core"
	"gesp/internal/lu"
	"gesp/internal/matgen"
	"gesp/internal/ordering"
	"gesp/internal/sparse"
)

// Table1Row is one entry of the paper's Table 1 (test matrices and their
// disciplines).
type Table1Row struct {
	Name       string
	Discipline string
	N          int
	Nnz        int
	ZeroDiag   int
}

// Table1 lists the 53-matrix testbed.
func Table1(scale float64) []Table1Row {
	var rows []Table1Row
	for _, m := range matgen.Testbed() {
		a := m.Generate(scale)
		rows = append(rows, Table1Row{
			Name: m.Name, Discipline: m.Discipline,
			N: a.Rows, Nnz: a.Nnz(), ZeroDiag: a.ZeroDiagonals(),
		})
	}
	return rows
}

// PrintTable1 renders Table 1.
//
//gesp:errok
func PrintTable1(w io.Writer, scale float64) {
	fmt.Fprintf(w, "Table 1: test matrices and their disciplines (synthetic stand-ins, scale=%.2f)\n", scale)
	fmt.Fprintf(w, "%-10s %-40s %8s %10s %8s\n", "Matrix", "Discipline", "n", "nnz(A)", "zerodiag")
	for _, r := range Table1(scale) {
		fmt.Fprintf(w, "%-10s %-40s %8d %10d %8d\n", r.Name, r.Discipline, r.N, r.Nnz, r.ZeroDiag)
	}
}

// SerialRow carries the per-matrix results of the serial GESP experiment
// that Figures 2–6 are drawn from.
type SerialRow struct {
	Name        string
	N           int
	NnzA        int
	NnzLU       int // Figure 2
	FactorTime  time.Duration
	RefineSteps int     // Figure 3
	ErrGESP     float64 // Figure 4 (y axis)
	ErrGEPP     float64 // Figure 4 (x axis); NaN if GEPP failed
	Berr        float64 // Figure 5
	// Figure 6 fractions, relative to factorization time.
	FracRowPerm  float64 // "permute large diagonal"
	FracSolve    float64
	FracResidual float64
	FracFerr     float64 // "estimate error bound"
	TinyPivots   int
	Failed       bool
	FailReason   string
}

// RunSerial runs the paper's §2.2 experiment on the whole testbed:
// b = A·1, GESP with the default options, GEPP as the baseline, error
// metrics and per-step timings. Rows are sorted by factorization time
// (the paper sorts its figures this way).
func RunSerial(scale float64, withGEPP, withFerr bool) []SerialRow {
	var rows []SerialRow
	for _, m := range matgen.Testbed() {
		rows = append(rows, runOne(m, scale, withGEPP, withFerr))
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].FactorTime < rows[j].FactorTime })
	return rows
}

func runOne(m matgen.Matrix, scale float64, withGEPP, withFerr bool) SerialRow {
	a := m.Generate(scale)
	row := SerialRow{Name: m.Name, N: a.Rows, NnzA: a.Nnz()}
	ones := make([]float64, a.Rows)
	for i := range ones {
		ones[i] = 1
	}
	b := matgen.OnesRHS(a)

	s, err := core.New(a, core.DefaultOptions())
	if err != nil {
		row.Failed = true
		row.FailReason = err.Error()
		return row
	}
	x, err := s.Solve(b)
	if err != nil {
		row.Failed = true
		row.FailReason = err.Error()
		return row
	}
	st := s.Stats()
	row.NnzLU = st.NnzLU
	row.FactorTime = st.Times.Factor
	row.RefineSteps = st.RefineSteps
	row.Berr = st.Berr
	row.ErrGESP = sparse.RelErrInf(x, ones)
	row.TinyPivots = st.TinyPivots

	ft := st.Times.Factor.Seconds()
	if ft > 0 {
		row.FracRowPerm = st.Times.RowPerm.Seconds() / ft
		row.FracSolve = st.Times.Solve.Seconds() / ft
		// One residual = one sparse matvec; measure directly.
		t0 := time.Now()
		r := make([]float64, a.Rows)
		a.Residual(r, b, x)
		row.FracResidual = time.Since(t0).Seconds() / ft
	}
	if withFerr {
		s.ForwardErrorBound(x, b)
		if ft > 0 {
			row.FracFerr = s.Stats().Times.Ferr.Seconds() / ft
		}
	}
	if withGEPP {
		if fp, err := lu.GEPP(a); err == nil {
			xp := fp.SolvePerm(b)
			row.ErrGEPP = sparse.RelErrInf(xp, ones)
		} else {
			row.ErrGEPP = -1 // GEPP itself failed (numerically singular)
		}
	}
	return row
}

// PrintFigure2 renders the matrix characteristics plot data (dimension,
// nnz(A), nnz(L+U), sorted by factorization time).
//
//gesp:errok
func PrintFigure2(w io.Writer, rows []SerialRow) {
	fmt.Fprintln(w, "Figure 2: characteristics of the matrices (sorted by factorization time)")
	fmt.Fprintf(w, "%-10s %8s %10s %12s %12s\n", "Matrix", "n", "nnz(A)", "nnz(L+U)", "factor(ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %10d %12d %12.2f\n", r.Name, r.N, r.NnzA, r.NnzLU, float64(r.FactorTime.Microseconds())/1000)
	}
}

// Figure3Histogram buckets refinement step counts like the paper's
// Figure 3 caption (5 matrices took 1 step, 31 took 2, 9 took 3, 8 more).
func Figure3Histogram(rows []SerialRow) map[int]int {
	h := map[int]int{}
	for _, r := range rows {
		if r.Failed {
			continue
		}
		steps := r.RefineSteps
		if steps > 3 {
			steps = 4 // ">3" bucket
		}
		h[steps]++
	}
	return h
}

// PrintFigure3 renders the refinement-step histogram.
//
//gesp:errok
func PrintFigure3(w io.Writer, rows []SerialRow) {
	fmt.Fprintln(w, "Figure 3: iterative refinement steps (paper: 5x1, 31x2, 9x3, 8x>3)")
	h := Figure3Histogram(rows)
	for _, k := range []int{0, 1, 2, 3, 4} {
		label := fmt.Sprintf("%d", k)
		if k == 4 {
			label = ">3"
		}
		fmt.Fprintf(w, "  steps %-3s : %d matrices\n", label, h[k])
	}
	fmt.Fprintf(w, "%-10s %6s\n", "Matrix", "steps")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %6d\n", r.Name, r.RefineSteps)
	}
}

// PrintFigure4 renders the GESP vs GEPP error comparison.
//
//gesp:errok
func PrintFigure4(w io.Writer, rows []SerialRow) {
	fmt.Fprintln(w, "Figure 4: error ||x-x_true||/||x_true||, GESP vs GEPP (paper: GESP smaller 37/53)")
	fmt.Fprintf(w, "%-10s %12s %12s %s\n", "Matrix", "GESP", "GEPP", "winner")
	gespWins, geppWins := 0, 0
	for _, r := range rows {
		winner := "tie"
		switch {
		case r.ErrGEPP < 0:
			winner = "GEPP failed"
		case r.ErrGESP < r.ErrGEPP:
			winner = "GESP"
			gespWins++
		case r.ErrGEPP < r.ErrGESP:
			winner = "GEPP"
			geppWins++
		}
		fmt.Fprintf(w, "%-10s %12.3e %12.3e %s\n", r.Name, r.ErrGESP, r.ErrGEPP, winner)
	}
	fmt.Fprintf(w, "GESP more accurate on %d, GEPP on %d of %d matrices\n", gespWins, geppWins, len(rows))
}

// PrintFigure5 renders the componentwise backward errors.
//
//gesp:errok
func PrintFigure5(w io.Writer, rows []SerialRow) {
	fmt.Fprintln(w, "Figure 5: componentwise backward error (paper: near eps, never > ~4e-14)")
	fmt.Fprintf(w, "%-10s %12s %6s\n", "Matrix", "berr", "iters")
	worst := 0.0
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12.3e %6d\n", r.Name, r.Berr, r.RefineSteps)
		if r.Berr > worst {
			worst = r.Berr
		}
	}
	fmt.Fprintf(w, "worst berr: %.3e (eps = %.3e)\n", worst, lu.Eps)
}

// PrintFigure6 renders the per-step cost fractions.
//
//gesp:errok
func PrintFigure6(w io.Writer, rows []SerialRow) {
	fmt.Fprintln(w, "Figure 6: step times relative to factorization (paper: MC64 drops to 1-10%,")
	fmt.Fprintln(w, "solve < 5% for large matrices, error bound most expensive after factor)")
	fmt.Fprintf(w, "%-10s %12s %10s %10s %10s %10s\n", "Matrix", "factor(ms)", "rowperm", "solve", "residual", "errbound")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12.2f %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n",
			r.Name, float64(r.FactorTime.Microseconds())/1000,
			100*r.FracRowPerm, 100*r.FracSolve, 100*r.FracResidual, 100*r.FracFerr)
	}
}

// NoPivotRow describes what happens with every stabilization disabled.
type NoPivotRow struct {
	Name     string
	ZeroDiag bool
	Failed   bool    // zero pivot encountered
	Err      float64 // relative error when it did not fail outright
}

// RunNoPivot reproduces the §2.2 claim that plain no-pivoting elimination
// fails on the matrices with zero diagonals and loses accuracy elsewhere.
func RunNoPivot(scale float64) []NoPivotRow {
	bare := core.Options{Ordering: ordering.Natural}
	var rows []NoPivotRow
	for _, m := range matgen.Testbed() {
		a := m.Generate(scale)
		row := NoPivotRow{Name: m.Name, ZeroDiag: a.ZeroDiagonals() > 0}
		s, err := core.New(a, bare)
		if err != nil {
			row.Failed = true
		} else {
			b := matgen.OnesRHS(a)
			x, err := s.Solve(b)
			if err != nil {
				row.Failed = true
			} else {
				ones := make([]float64, a.Rows)
				for i := range ones {
					ones[i] = 1
				}
				row.Err = sparse.RelErrInf(x, ones)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintNoPivot renders the no-pivoting failure study.
//
//gesp:errok
func PrintNoPivot(w io.Writer, scale float64) {
	rows := RunNoPivot(scale)
	failed, inaccurate := 0, 0
	fmt.Fprintln(w, "No-pivoting study (paper: 27 of 53 fail outright, most others lose accuracy)")
	fmt.Fprintf(w, "%-10s %9s %8s %12s\n", "Matrix", "zerodiag", "failed", "rel.err")
	for _, r := range rows {
		status := fmt.Sprintf("%12.3e", r.Err)
		if r.Failed {
			status = "   (breakdown)"
			failed++
		} else if r.Err > 1e-8 || math.IsNaN(r.Err) || math.IsInf(r.Err, 0) {
			inaccurate++
		}
		fmt.Fprintf(w, "%-10s %9v %8v %s\n", r.Name, r.ZeroDiag, r.Failed, status)
	}
	fmt.Fprintf(w, "breakdowns: %d, inaccurate (err>1e-8): %d, of %d\n", failed, inaccurate, len(rows))
}
