package experiments

import (
	"fmt"
	"io"

	"gesp/internal/core"
	"gesp/internal/dist"
	"gesp/internal/matgen"
	"gesp/internal/mpisim"
	"gesp/internal/ordering"
	"gesp/internal/sparse"
)

// DefaultProcs is the processor sweep of the paper's Tables 3 and 4.
var DefaultProcs = []int{4, 8, 16, 32, 64, 128, 256, 512}

// Table2Row describes one of the eight large parallel test matrices.
type Table2Row struct {
	Name     string
	N        int
	NnzA     int
	NnzLU    int
	Flops    int64
	StrSym   float64
	NumSym   float64
	AvgSuper float64
}

// Table2 reproduces the paper's Table 2: characteristics of the parallel
// testbed, including the structural/numeric symmetry fractions.
func Table2(scale float64) []Table2Row {
	var rows []Table2Row
	for _, m := range matgen.ParallelTestbed() {
		a := m.Generate(scale)
		sym := sparse.SymmetryOf(a)
		s, err := core.NewAnalysis(a, core.DefaultOptions())
		row := Table2Row{
			Name: m.Name, N: a.Rows, NnzA: a.Nnz(),
			StrSym: sym.Str, NumSym: sym.Num,
		}
		if err == nil {
			st := s.Stats()
			row.NnzLU = st.NnzLU
			row.Flops = st.Flops
			row.AvgSuper = st.AvgSuper
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintTable2 renders Table 2.
//
//gesp:errok
func PrintTable2(w io.Writer, scale float64) {
	fmt.Fprintf(w, "Table 2: characteristics of the parallel test matrices (scale=%.2f)\n", scale)
	fmt.Fprintf(w, "%-10s %8s %10s %12s %12s %7s %7s %8s\n",
		"Matrix", "n", "nnz(A)", "nnz(L+U)", "flops", "StrSym", "NumSym", "avgSup")
	for _, r := range Table2(scale) {
		fmt.Fprintf(w, "%-10s %8d %10d %12d %12d %7.2f %7.2f %8.1f\n",
			r.Name, r.N, r.NnzA, r.NnzLU, r.Flops, r.StrSym, r.NumSym, r.AvgSuper)
	}
}

// ScalingCell is one (matrix, P) measurement of the distributed runs.
type ScalingCell struct {
	Procs        int
	FactorTime   float64 // simulated seconds (Table 3)
	FactorMflops float64
	SolveTime    float64 // simulated seconds (Table 4)
	SolveMflops  float64
	LoadBalance  float64 // Table 5 (factor phase)
	SolveBalance float64
	FactorComm   float64 // Table 5: fraction of time in communication
	SolveComm    float64
	Messages     int64
	Err          float64
}

// ScalingRow is the processor sweep for one matrix.
type ScalingRow struct {
	Name     string
	N        int
	AvgSuper float64
	Cells    []ScalingCell
}

// Progress, when non-nil, receives one line per completed configuration
// (cmd/gesp-bench points it at stderr so long sweeps are observable).
var Progress func(format string, args ...any)

func progress(format string, args ...any) {
	if Progress != nil {
		Progress(format, args...)
	}
}

// RunScaling runs the distributed factorization and solves for the
// parallel testbed over the processor sweep; it backs Tables 3, 4 and 5.
func RunScaling(scale float64, procs []int, pipeline, prune bool) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, m := range matgen.ParallelTestbed() {
		a := m.Generate(scale)
		s, err := core.NewAnalysis(a, core.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, err)
		}
		progress("%s: n=%d nnz(L+U)=%d flops=%.3g", m.Name, a.Rows, s.Stats().NnzLU, float64(s.Stats().Flops))
		b := matgen.OnesRHS(a)
		ones := make([]float64, a.Rows)
		for i := range ones {
			ones[i] = 1
		}
		row := ScalingRow{Name: m.Name, N: a.Rows, AvgSuper: s.Stats().AvgSuper}
		for _, p := range procs {
			x, res, err := s.DistSolve(b, dist.Options{
				Procs: p, Pipeline: pipeline, EDAGPrune: prune, ReplaceTinyPivot: true,
			})
			if err != nil {
				return nil, fmt.Errorf("%s P=%d: %w", m.Name, p, err)
			}
			progress("  %s P=%d: factor %.3fs solve %.4fs (simulated)", m.Name, p, res.Factor.SimTime, res.Solve.SimTime)
			row.Cells = append(row.Cells, ScalingCell{
				Procs:        p,
				FactorTime:   res.Factor.SimTime,
				FactorMflops: res.Factor.Mflops,
				SolveTime:    res.Solve.SimTime,
				SolveMflops:  res.Solve.Mflops,
				LoadBalance:  res.Factor.LoadBalance,
				SolveBalance: res.Solve.LoadBalance,
				FactorComm:   res.Factor.CommFraction,
				SolveComm:    res.Solve.CommFraction,
				Messages:     res.Factor.Messages,
				Err:          sparse.RelErrInf(x, ones),
			})
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable3 renders factorization time and peak Mflop rate per matrix.
//
//gesp:errok
func PrintTable3(w io.Writer, rows []ScalingRow, procs []int) {
	fmt.Fprintln(w, "Table 3: LU factorization, simulated seconds on the modelled T3E-900")
	fmt.Fprintf(w, "%-10s", "Matrix")
	for _, p := range procs {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("P=%d", p))
	}
	fmt.Fprintf(w, " %10s\n", "Mflops@max")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s", r.Name)
		for _, c := range r.Cells {
			fmt.Fprintf(w, " %9.3f", c.FactorTime)
		}
		fmt.Fprintf(w, " %10.0f\n", r.Cells[len(r.Cells)-1].FactorMflops)
	}
}

// PrintTable4 renders the triangular solve sweep.
//
//gesp:errok
func PrintTable4(w io.Writer, rows []ScalingRow, procs []int) {
	fmt.Fprintln(w, "Table 4: triangular solves, simulated seconds (paper: flattens beyond 64 PEs)")
	fmt.Fprintf(w, "%-10s", "Matrix")
	for _, p := range procs {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("P=%d", p))
	}
	fmt.Fprintf(w, " %10s\n", "Mflops@max")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s", r.Name)
		for _, c := range r.Cells {
			fmt.Fprintf(w, " %9.4f", c.SolveTime)
		}
		fmt.Fprintf(w, " %10.1f\n", r.Cells[len(r.Cells)-1].SolveMflops)
	}
}

// Table5At extracts the load-balance/communication table at one processor
// count (the paper uses 64). If p is not in the sweep, the largest swept
// count not exceeding p is used (falling back to the first entry), so the
// table is never silently empty.
func Table5At(rows []ScalingRow, procs []int, p int) []ScalingRow {
	if len(procs) == 0 || len(rows) == 0 {
		return nil
	}
	idx := 0
	for i, pp := range procs {
		if pp <= p {
			idx = i
		}
		if pp == p {
			break
		}
	}
	out := make([]ScalingRow, len(rows))
	for i, r := range rows {
		out[i] = ScalingRow{Name: r.Name, N: r.N, AvgSuper: r.AvgSuper, Cells: []ScalingCell{r.Cells[idx]}}
	}
	return out
}

// PrintTable5 renders load balance and communication fractions.
//
//gesp:errok
func PrintTable5(w io.Writer, rows []ScalingRow, procs []int, p int) {
	shown := Table5At(rows, procs, p)
	if len(shown) > 0 && shown[0].Cells[0].Procs != p {
		fmt.Fprintf(w, "(requested P=%d not in the sweep; showing P=%d)\n", p, shown[0].Cells[0].Procs)
		p = shown[0].Cells[0].Procs
	}
	fmt.Fprintf(w, "Table 5: load balance factor B and %%time in communication on %d PEs\n", p)
	fmt.Fprintln(w, "(paper: B good except TWOTONE; comm >50% in factor, >95% in solve)")
	fmt.Fprintf(w, "%-10s %8s %8s %10s %10s %8s\n", "Matrix", "B(fact)", "B(solve)", "comm(fact)", "comm(solve)", "avgSup")
	for _, r := range shown {
		c := r.Cells[0]
		fmt.Fprintf(w, "%-10s %8.2f %8.2f %9.1f%% %9.1f%% %8.1f\n",
			r.Name, c.LoadBalance, c.SolveBalance, 100*c.FactorComm, 100*c.SolveComm, r.AvgSuper)
	}
}

// AblationResult compares a toggled feature on one matrix / processor
// count.
type AblationResult struct {
	Name          string
	Procs         int
	BaseMessages  int64
	OnMessages    int64
	BaseTime      float64
	OnTime        float64
	BaseSolveTime float64
	OnSolveTime   float64
}

func runPair(name string, scale float64, procs int, base, on dist.Options) (AblationResult, error) {
	m, ok := matgen.Lookup(name)
	if !ok {
		return AblationResult{}, fmt.Errorf("unknown matrix %s", name)
	}
	a := m.Generate(scale)
	s, err := core.NewAnalysis(a, core.DefaultOptions())
	if err != nil {
		return AblationResult{}, err
	}
	b := matgen.OnesRHS(a)
	base.Procs, on.Procs = procs, procs
	base.ReplaceTinyPivot, on.ReplaceTinyPivot = true, true
	_, r1, err := s.DistSolve(b, base)
	if err != nil {
		return AblationResult{}, err
	}
	_, r2, err := s.DistSolve(b, on)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name: name, Procs: procs,
		BaseMessages: r1.Factor.Messages, OnMessages: r2.Factor.Messages,
		BaseTime: r1.Factor.SimTime, OnTime: r2.Factor.SimTime,
		BaseSolveTime: r1.Solve.SimTime, OnSolveTime: r2.Solve.SimTime,
	}, nil
}

// EDAGAblation measures the message reduction from EDAG-pruned
// communication (paper: 16% fewer messages for AF23560 on 32 PEs).
func EDAGAblation(name string, scale float64, procs int) (AblationResult, error) {
	return runPair(name, scale, procs,
		dist.Options{Pipeline: true},
		dist.Options{Pipeline: true, EDAGPrune: true})
}

// PipelineAblation measures the pipelining speedup (paper: 10–40% on 64
// PEs).
func PipelineAblation(name string, scale float64, procs int) (AblationResult, error) {
	return runPair(name, scale, procs,
		dist.Options{EDAGPrune: true},
		dist.Options{EDAGPrune: true, Pipeline: true})
}

// PrintAblation renders one ablation pair.
//
//gesp:errok
func PrintAblation(w io.Writer, label string, r AblationResult) {
	fmt.Fprintf(w, "%s on %s, P=%d:\n", label, r.Name, r.Procs)
	fmt.Fprintf(w, "  factor messages : %d -> %d (%.1f%% fewer)\n",
		r.BaseMessages, r.OnMessages, 100*float64(r.BaseMessages-r.OnMessages)/float64(maxI64(r.BaseMessages, 1)))
	fmt.Fprintf(w, "  factor sim time : %.4fs -> %.4fs (%.1f%% faster)\n",
		r.BaseTime, r.OnTime, 100*(r.BaseTime-r.OnTime)/r.BaseTime)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// BlockSizeSweep measures factorization time against the maximum block
// size (the paper found 20–30 best on the T3E and used 24).
type BlockSizeResult struct {
	MaxSuper   int
	FactorTime float64
	AvgSuper   float64
}

// BlockSizeAblation sweeps the supernode splitting threshold.
func BlockSizeAblation(name string, scale float64, procs int, sizes []int) ([]BlockSizeResult, error) {
	m, ok := matgen.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown matrix %s", name)
	}
	a := m.Generate(scale)
	b := matgen.OnesRHS(a)
	var out []BlockSizeResult
	for _, bs := range sizes {
		opts := core.DefaultOptions()
		opts.MaxSuper = bs
		s, err := core.NewAnalysis(a, opts)
		if err != nil {
			return nil, err
		}
		_, res, err := s.DistSolve(b, dist.Options{
			Procs: procs, Pipeline: true, EDAGPrune: true, ReplaceTinyPivot: true,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, BlockSizeResult{MaxSuper: bs, FactorTime: res.Factor.SimTime, AvgSuper: s.Stats().AvgSuper})
	}
	return out, nil
}

// OrderingAblationRow compares fill across ordering heuristics.
type OrderingAblationRow struct {
	Name  string
	Fill  map[string]int
	Flops map[string]int64
}

// OrderingAblation compares the fill-reducing orderings on a matrix
// subset (the design decision behind step (2)).
func OrderingAblation(names []string, scale float64) ([]OrderingAblationRow, error) {
	methods := []ordering.Method{ordering.MinDegATA, ordering.MinDegAPlusAT, ordering.RCM, ordering.NDATA, ordering.Natural}
	var rows []OrderingAblationRow
	for _, name := range names {
		m, ok := matgen.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown matrix %s", name)
		}
		a := m.Generate(scale)
		row := OrderingAblationRow{Name: name, Fill: map[string]int{}, Flops: map[string]int64{}}
		for _, mm := range methods {
			opts := core.DefaultOptions()
			opts.Ordering = mm
			s, err := core.NewAnalysis(a, opts)
			if err != nil {
				return nil, err
			}
			row.Fill[mm.String()] = s.Stats().NnzLU
			row.Flops[mm.String()] = s.Stats().Flops
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RelaxResult measures supernode amalgamation (paper §5: "uniprocessor
// performance can be improved by amalgamating small supernodes").
type RelaxResult struct {
	Relax      int
	AvgSuper   float64
	NumSuper   int
	FactorTime float64 // simulated, distributed
}

// RelaxAblation sweeps the amalgamation slack on one matrix.
func RelaxAblation(name string, scale float64, procs int, relaxes []int) ([]RelaxResult, error) {
	m, ok := matgen.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown matrix %s", name)
	}
	a := m.Generate(scale)
	b := matgen.OnesRHS(a)
	var out []RelaxResult
	for _, rx := range relaxes {
		opts := core.DefaultOptions()
		opts.Relax = rx
		s, err := core.NewAnalysis(a, opts)
		if err != nil {
			return nil, err
		}
		_, res, err := s.DistSolve(b, dist.Options{
			Procs: procs, Pipeline: true, EDAGPrune: true, ReplaceTinyPivot: true,
		})
		if err != nil {
			return nil, err
		}
		st := s.Stats()
		out = append(out, RelaxResult{
			Relax: rx, AvgSuper: st.AvgSuper, NumSuper: st.NumSuper,
			FactorTime: res.Factor.SimTime,
		})
	}
	return out, nil
}

// RedistResult compares the 1-D -> 2-D redistribution cost against the
// factorization (the paper's future-work input interface).
type RedistResult struct {
	Name        string
	RedistTime  float64
	FactorTime  float64
	RedistMsgs  int64
	RedistBytes int64
}

// RedistAblation measures the redistribution phase on the parallel
// testbed at one processor count.
func RedistAblation(scale float64, procs int) ([]RedistResult, error) {
	var out []RedistResult
	for _, m := range matgen.ParallelTestbed() {
		a := m.Generate(scale)
		s, err := core.NewAnalysis(a, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		ap, sym := s.PermutedMatrix(), s.Symbolic()
		b := make([]float64, ap.Rows)
		for i := range b {
			b[i] = 1
		}
		res, redist, err := dist.SolveFrom1D(ap, sym, b, dist.Uniform1D(ap.Rows, procs), dist.Options{
			Procs: procs, Pipeline: true, EDAGPrune: true, ReplaceTinyPivot: true,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, RedistResult{
			Name: m.Name, RedistTime: redist.SimTime, FactorTime: res.Factor.SimTime,
			RedistMsgs: redist.Messages, RedistBytes: redist.Volume,
		})
	}
	return out, nil
}

// GridShapeResult compares process-grid shapes at a fixed processor
// count: the paper argues the 2-D block-cyclic layout beats the more
// natural 1-D decomposition on locality, load balance and volume.
type GridShapeResult struct {
	Shape      string
	FactorTime float64
	SolveTime  float64
	Volume     int64
	Balance    float64
}

// GridShapeAblation runs 1×P (1-D columns), near-square, and P×1 (1-D
// rows) grids on one matrix.
func GridShapeAblation(name string, scale float64, procs int) ([]GridShapeResult, error) {
	m, ok := matgen.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown matrix %s", name)
	}
	a := m.Generate(scale)
	s, err := core.NewAnalysis(a, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	b := matgen.OnesRHS(a)
	square := mpisim.NewGrid(procs)
	shapes := []mpisim.Grid{
		{PRow: 1, PCol: procs},
		square,
		{PRow: procs, PCol: 1},
	}
	var out []GridShapeResult
	for i := range shapes {
		g := shapes[i]
		_, res, err := s.DistSolve(b, dist.Options{
			Procs: procs, Grid: &g, Pipeline: true, EDAGPrune: true, ReplaceTinyPivot: true,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, GridShapeResult{
			Shape: g.String(), FactorTime: res.Factor.SimTime, SolveTime: res.Solve.SimTime,
			Volume: res.Factor.Volume, Balance: res.Factor.LoadBalance,
		})
	}
	return out, nil
}
