package experiments

import (
	"fmt"
	"io"

	"gesp/internal/equil"
	"gesp/internal/krylov"
	"gesp/internal/matching"
	"gesp/internal/matgen"
)

// IterativeRow compares ILU(0)-preconditioned GMRES with and without the
// GESP step-(1) preprocessing (equilibration + MC64 large-diagonal
// permutation). The paper's related work recounts Duff & Koster's
// finding that the permutation "substantially improves" convergence of
// ILU-preconditioned iterative methods; this experiment reproduces it.
type IterativeRow struct {
	Name string
	// Plain ILU(0)+GMRES on the raw matrix.
	PlainILUOK bool
	PlainIters int
	PlainConv  bool
	// After equilibration + MC64.
	MC64ILUOK bool
	MC64Iters int
	MC64Conv  bool
}

// IterativeAblation runs the comparison on the named testbed matrices.
func IterativeAblation(names []string, scale float64) ([]IterativeRow, error) {
	var rows []IterativeRow
	for _, name := range names {
		m, ok := matgen.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown matrix %s", name)
		}
		a := m.Generate(scale)
		b := matgen.OnesRHS(a)
		row := IterativeRow{Name: name}
		opts := krylov.Options{Tol: 1e-8, MaxIter: 1500, Restart: 60}

		if p, err := krylov.NewILU0(a); err == nil {
			row.PlainILUOK = true
			x := make([]float64, a.Rows)
			_, st := krylov.GMRES(a, p, x, b, opts)
			row.PlainIters = st.Iterations
			row.PlainConv = st.Converged
		}

		// GESP step (1): equilibrate, permute large entries to diagonal.
		work := a.Clone()
		if eq, err := equil.Equilibrate(work); err == nil && eq.NeedsScaling() {
			eq.Apply(work)
			// b must be scaled consistently; since we only count
			// iterations, regenerate the RHS for the scaled system.
		}
		mc, err := matching.MaxProductMatching(work)
		if err != nil {
			rows = append(rows, row)
			continue
		}
		work.ScaleRowsCols(mc.Dr, mc.Dc)
		work = work.PermuteRows(mc.RowPerm)
		bw := matgen.OnesRHS(work)
		if p, err := krylov.NewILU0(work); err == nil {
			row.MC64ILUOK = true
			x := make([]float64, work.Rows)
			_, st := krylov.GMRES(work, p, x, bw, opts)
			row.MC64Iters = st.Iterations
			row.MC64Conv = st.Converged
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintIterative renders the ILU/GMRES preprocessing study.
//
//gesp:errok
func PrintIterative(w io.Writer, rows []IterativeRow) {
	fmt.Fprintln(w, "ILU(0)+GMRES with and without GESP step-(1) preprocessing")
	fmt.Fprintln(w, "(Duff & Koster, recounted in the paper's related work: the large-diagonal")
	fmt.Fprintln(w, "permutation substantially improves ILU-preconditioned convergence)")
	fmt.Fprintf(w, "%-10s %14s %14s\n", "Matrix", "plain", "equil+MC64")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %14s %14s\n", r.Name, iterLabel(r.PlainILUOK, r.PlainConv, r.PlainIters), iterLabel(r.MC64ILUOK, r.MC64Conv, r.MC64Iters))
	}
}

func iterLabel(iluOK, conv bool, iters int) string {
	switch {
	case !iluOK:
		return "ILU breakdown"
	case !conv:
		return "no convergence"
	default:
		return fmt.Sprintf("%d iters", iters)
	}
}
