// Package matgen synthesizes the paper's test matrices. The originals —
// 53 matrices from the Harwell–Boeing and Davis collections plus two
// private matrices (Table 1), and the eight large matrices of Table 2 —
// are not redistributable and the build is offline, so each testbed entry
// is generated from the *same application discipline* with matched
// structural traits: dimension and density (scaled), structural and
// numeric symmetry, zero-diagonal population, value-magnitude spread, and
// supernode granularity. See DESIGN.md for the substitution rationale.
package matgen

import (
	"math"
	"math/rand"

	"gesp/internal/sparse"
)

// ConvectionDiffusion2D builds the 5-point upwind discretization of
// -Δu + (cx,cy)·∇u on an nx-by-ny grid. Nonzero convection makes the
// matrix numerically (but not structurally) unsymmetric — the shape of
// the CFD matrices (AF23560, BBMAT, EX11, SHYY161).
func ConvectionDiffusion2D(nx, ny int, cx, cy float64, rng *rand.Rand) *sparse.CSC {
	n := nx * ny
	t := sparse.NewTriplet(n, n)
	id := func(i, j int) int { return i*ny + j }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			c := id(i, j)
			jitter := 1 + 0.1*rng.Float64()
			t.Append(c, c, 4*jitter+math.Abs(cx)+math.Abs(cy))
			if i > 0 {
				t.Append(c, id(i-1, j), -1-max64(cx, 0))
			}
			if i+1 < nx {
				t.Append(c, id(i+1, j), -1+min64(cx, 0))
			}
			if j > 0 {
				t.Append(c, id(i, j-1), -1-max64(cy, 0))
			}
			if j+1 < ny {
				t.Append(c, id(i, j+1), -1+min64(cy, 0))
			}
		}
	}
	return t.ToCSC()
}

// ConvectionDiffusion3D is the 7-point analogue on an nx·ny·nz grid, the
// shape of reservoir and device matrices (ORSREG, WANG3/4).
// Anisotropy (ax, ay, az) scales the couplings per direction, mimicking
// layered reservoirs (SAYLR4, ORSIRR_1).
func ConvectionDiffusion3D(nx, ny, nz int, cx, ax, ay, az float64, rng *rand.Rand) *sparse.CSC {
	n := nx * ny * nz
	t := sparse.NewTriplet(n, n)
	id := func(i, j, k int) int { return (i*ny+j)*nz + k }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				c := id(i, j, k)
				diag := 2*(ax+ay+az) + math.Abs(cx) + 0.2*rng.Float64()
				t.Append(c, c, diag)
				if i > 0 {
					t.Append(c, id(i-1, j, k), -ax-max64(cx, 0))
				}
				if i+1 < nx {
					t.Append(c, id(i+1, j, k), -ax+min64(cx, 0))
				}
				if j > 0 {
					t.Append(c, id(i, j-1, k), -ay)
				}
				if j+1 < ny {
					t.Append(c, id(i, j+1, k), -ay)
				}
				if k > 0 {
					t.Append(c, id(i, j, k-1), -az)
				}
				if k+1 < nz {
					t.Append(c, id(i, j, k+1), -az)
				}
			}
		}
	}
	return t.ToCSC()
}

// FEMVector2D couples b unknowns per mesh node of an nx-by-ny grid with
// dense b-by-b blocks between neighbouring nodes — the structure of
// finite-element fluid matrices (FIDAP series, RAEFSKY, GOODWIN, INACCURA).
// saddle > 0 zeroes the diagonal of the last `saddle` unknowns of each
// node block, modelling pressure unknowns of mixed formulations (the main
// source of the testbed's 22 structurally-zero-diagonal matrices).
func FEMVector2D(nx, ny, b int, saddle int, rng *rand.Rand) *sparse.CSC {
	nodes := nx * ny
	n := nodes * b
	t := sparse.NewTriplet(n, n)
	id := func(i, j int) int { return i*ny + j }
	block := func(r, c int, diag bool) {
		for bi := 0; bi < b; bi++ {
			for bj := 0; bj < b; bj++ {
				v := rng.NormFloat64()
				if diag && bi == bj {
					if bi >= b-saddle {
						continue // structurally zero saddle diagonal
					}
					v = 4 + rng.Float64()
				}
				t.Append(r*b+bi, c*b+bj, v)
			}
		}
	}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			c := id(i, j)
			block(c, c, true)
			if i+1 < nx {
				block(c, id(i+1, j), false)
				block(id(i+1, j), c, false)
			}
			if j+1 < ny {
				block(c, id(i, j+1), false)
				block(id(i, j+1), c, false)
			}
		}
	}
	return t.ToCSC()
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// WeakDiagonal2D builds a 5-point stencil whose diagonal is deliberately
// weak relative to the off-diagonals (weight < 1 scales it down). Without
// pivoting the multipliers exceed 1 and element growth compounds along
// the elimination — the "unacceptably large errors due to pivot growth"
// the paper reports for the matrices that survive no-pivoting. GESP's
// matching + scaling + refinement handles them.
func WeakDiagonal2D(nx, ny int, weight float64, rng *rand.Rand) *sparse.CSC {
	n := nx * ny
	t := sparse.NewTriplet(n, n)
	id := func(i, j int) int { return i*ny + j }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			c := id(i, j)
			t.Append(c, c, weight*(0.8+0.4*rng.Float64()))
			if i > 0 {
				t.Append(c, id(i-1, j), -1-0.2*rng.Float64())
			}
			if i+1 < nx {
				t.Append(c, id(i+1, j), 0.5*rng.NormFloat64())
			}
			if j > 0 {
				t.Append(c, id(i, j-1), -1-0.2*rng.Float64())
			}
			if j+1 < ny {
				t.Append(c, id(i, j+1), 0.5*rng.NormFloat64())
			}
		}
	}
	return t.ToCSC()
}
