package matgen

import (
	"hash/fnv"
	"math"
	"math/rand"

	"gesp/internal/matching"
	"gesp/internal/sparse"
)

// Matrix is one testbed entry: a named, discipline-tagged generator.
type Matrix struct {
	// Name matches the Harwell–Boeing / Davis matrix the entry stands in
	// for (see the package comment for the substitution rationale).
	Name string
	// Discipline is the application domain from the paper's Table 1.
	Discipline string
	// ZeroDiag marks entries generated with structurally zero diagonal
	// entries (22 of the paper's 53 matrices have them).
	ZeroDiag bool
	gen      func(scale float64, rng *rand.Rand) *sparse.CSC
}

// Generate builds the matrix at the given scale (1 = default test size;
// the paper's originals are 10–100× larger). Generation is deterministic:
// the RNG is seeded from the matrix name.
func (m Matrix) Generate(scale float64) *sparse.CSC {
	h := fnv.New64a()
	// hash.Hash.Write never returns an error by documented contract.
	h.Write([]byte(m.Name)) //gesp:errok
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	a := m.gen(scale, rng)
	return EnsureFullRank(a, rng)
}

// EnsureFullRank patches a structurally rank-deficient matrix by adding
// entries pairing unmatched rows with unmatched columns, so MC64 and the
// static factorization are well defined on every generated matrix.
func EnsureFullRank(a *sparse.CSC, rng *rand.Rand) *sparse.CSC {
	rowOf, size := matching.MaxTransversal(a)
	n := a.Cols
	if size == n {
		return a
	}
	usedRow := make([]bool, a.Rows)
	var freeCols []int
	for j, i := range rowOf {
		if i >= 0 {
			usedRow[i] = true
		} else {
			freeCols = append(freeCols, j)
		}
	}
	t := sparse.NewTriplet(a.Rows, a.Cols)
	for j := 0; j < a.Cols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			t.Append(a.RowInd[k], j, a.Val[k])
		}
	}
	fc := 0
	for i := 0; i < a.Rows && fc < len(freeCols); i++ {
		if !usedRow[i] {
			t.Append(i, freeCols[fc], 0.5+rng.Float64())
			fc++
		}
	}
	return t.ToCSC()
}

// dim scales a base dimension by sqrt(scale) so nnz grows roughly
// linearly with scale for 2-D stencils.
func dim(base int, scale float64) int {
	d := int(float64(base) * math.Sqrt(scale))
	if d < 4 {
		d = 4
	}
	return d
}

func lin(base int, scale float64) int {
	d := int(float64(base) * scale)
	if d < 8 {
		d = 8
	}
	return d
}

// Testbed returns the 53-matrix suite standing in for the paper's
// Table 1. Matrices are grouped by the discipline of the original.
func Testbed() []Matrix {
	cfd2d := func(bx, by int, cx, cy float64) func(float64, *rand.Rand) *sparse.CSC {
		return func(s float64, rng *rand.Rand) *sparse.CSC {
			return ConvectionDiffusion2D(dim(bx, s), dim(by, s), cx, cy, rng)
		}
	}
	res3d := func(b int, cx, ax, ay, az float64) func(float64, *rand.Rand) *sparse.CSC {
		return func(s float64, rng *rand.Rand) *sparse.CSC {
			// Cube-root growth keeps n (and hence 3-D fill) roughly linear
			// in the scale, like the 2-D generators.
			d := int(float64(b) * math.Cbrt(s))
			if d < 4 {
				d = 4
			}
			return ConvectionDiffusion3D(d, d, maxInt(d/2, 3), cx, ax, ay, az, rng)
		}
	}
	fem := func(bx, by, blk, saddle int) func(float64, *rand.Rand) *sparse.CSC {
		return func(s float64, rng *rand.Rand) *sparse.CSC {
			return FEMVector2D(dim(bx, s), dim(by, s), blk, saddle, rng)
		}
	}
	circuit := func(n, deg, nsrc int) func(float64, *rand.Rand) *sparse.CSC {
		return func(s float64, rng *rand.Rand) *sparse.CSC {
			return Circuit(lin(n, s), deg, lin(nsrc, s), rng)
		}
	}
	harm := func(base, h, deg int) func(float64, *rand.Rand) *sparse.CSC {
		return func(s float64, rng *rand.Rand) *sparse.CSC {
			return HarmonicBalance(lin(base, s), h, deg, rng)
		}
	}
	chem := func(stages, comp int, zf float64) func(float64, *rand.Rand) *sparse.CSC {
		return func(s float64, rng *rand.Rand) *sparse.CSC {
			return ChemicalEng(lin(stages, s), comp, zf, rng)
		}
	}
	econ := func(n, dr int, dens float64) func(float64, *rand.Rand) *sparse.CSC {
		return func(s float64, rng *rand.Rand) *sparse.CSC {
			return EconomicsDense(lin(n, s), dr, dens, rng)
		}
	}
	power := func(n, deg int, zf float64) func(float64, *rand.Rand) *sparse.CSC {
		return func(s float64, rng *rand.Rand) *sparse.CSC {
			return PowerNetwork(lin(n, s), deg, zf, rng)
		}
	}
	device := func(bx, by int) func(float64, *rand.Rand) *sparse.CSC {
		return func(s float64, rng *rand.Rand) *sparse.CSC {
			return DeviceSimulation(dim(bx, s), dim(by, s), rng)
		}
	}
	weak2d := func(bx, by int, weight float64) func(float64, *rand.Rand) *sparse.CSC {
		return func(s float64, rng *rand.Rand) *sparse.CSC {
			return WeakDiagonal2D(dim(bx, s), dim(by, s), weight, rng)
		}
	}

	return []Matrix{
		{Name: "AF23560", Discipline: "fluid flow (airfoil)", gen: cfd2d(38, 38, 1.5, 0.5)},
		{Name: "ADD32", Discipline: "circuit simulation", ZeroDiag: true, gen: circuit(420, 4, 40)},
		{Name: "AV41092", Discipline: "finite element analysis", ZeroDiag: true, gen: fem(11, 11, 5, 2)},
		{Name: "BBMAT", Discipline: "fluid flow (2-D airfoil, beam)", gen: cfd2d(42, 42, 2.5, 1.0)},
		{Name: "CRY10000", Discipline: "crystal growth simulation", gen: cfd2d(32, 32, 4.0, 0.0)},
		{Name: "ECL32", Discipline: "device simulation", gen: device(16, 16)},
		{Name: "EX11", Discipline: "fluid flow (3-D cylinder)", gen: res3d(13, 1.0, 1, 1, 1)},
		{Name: "FIDAP011", Discipline: "finite element fluid flow", ZeroDiag: true, gen: fem(9, 9, 4, 1)},
		{Name: "FIDAPM11", Discipline: "finite element fluid flow", ZeroDiag: true, gen: fem(10, 10, 4, 1)},
		{Name: "GEMAT11", Discipline: "power flow optimization", ZeroDiag: true, gen: power(480, 4, 0.1)},
		{Name: "GOODWIN", Discipline: "fluid mechanics (FEM)", gen: fem(10, 10, 3, 0)},
		{Name: "GRAHAM1", Discipline: "Navier-Stokes (FEM)", ZeroDiag: true, gen: fem(9, 9, 3, 1)},
		{Name: "GRE_1107", Discipline: "discrete system simulation", ZeroDiag: true, gen: power(370, 3, 0.15)},
		{Name: "HYDR1", Discipline: "chemical engineering", ZeroDiag: true, gen: chem(90, 6, 0.15)},
		{Name: "INACCURA", Discipline: "structure engineering", gen: fem(10, 10, 4, 0)},
		{Name: "JPWH_991", Discipline: "circuit physics", gen: circuit(330, 5, 0)},
		{Name: "LHR01", Discipline: "light hydrocarbon recovery", ZeroDiag: true, gen: chem(50, 6, 0.2)},
		{Name: "LHR14C", Discipline: "light hydrocarbon recovery", ZeroDiag: true, gen: chem(110, 6, 0.2)},
		{Name: "LHR34C", Discipline: "light hydrocarbon recovery", ZeroDiag: true, gen: chem(170, 6, 0.2)},
		{Name: "LHR71C", Discipline: "light hydrocarbon recovery", ZeroDiag: true, gen: chem(240, 6, 0.2)},
		{Name: "LNS_3937", Discipline: "compressible fluid flow", gen: weak2d(20, 20, 0.5)},
		{Name: "LNSP3937", Discipline: "compressible fluid flow", gen: weak2d(20, 20, 0.45)},
		{Name: "MCFE", Discipline: "astrophysics", gen: econ(250, 10, 0.08)},
		{Name: "MEMPLUS", Discipline: "memory circuit design", ZeroDiag: true, gen: circuit(1300, 5, 120)},
		{Name: "MHD4800A", Discipline: "plasma physics (MHD)", gen: fem(11, 11, 4, 0)},
		{Name: "OLAFU", Discipline: "structure engineering", gen: fem(12, 12, 3, 0)},
		{Name: "ONETONE1", Discipline: "harmonic balance circuit", ZeroDiag: true, gen: harm(110, 5, 4)},
		{Name: "ONETONE2", Discipline: "harmonic balance circuit", ZeroDiag: true, gen: harm(110, 5, 3)},
		{Name: "ORANI678", Discipline: "economic modelling", gen: econ(650, 20, 0.01)},
		{Name: "ORSIRR_1", Discipline: "oil reservoir simulation", gen: res3d(10, 0.0, 1, 1, 25)},
		{Name: "ORSREG_1", Discipline: "oil reservoir simulation", gen: res3d(12, 0.0, 1, 1, 10)},
		{Name: "PORES_2", Discipline: "oil reservoir simulation", gen: res3d(9, 0.5, 1, 5, 5)},
		{Name: "PSMIGR_1", Discipline: "population migration", gen: econ(700, 35, 0.015)},
		{Name: "RADFR1", Discipline: "chemical engineering (distillation)", ZeroDiag: true, gen: chem(70, 6, 0.12)},
		{Name: "RAEFSKY3", Discipline: "fluid/structure interaction", gen: fem(12, 12, 4, 0)},
		{Name: "RAEFSKY4", Discipline: "container buckling", ZeroDiag: true, gen: fem(11, 11, 4, 1)},
		{Name: "RDIST1", Discipline: "reactive distillation", ZeroDiag: true, gen: chem(140, 6, 0.18)},
		{Name: "RDIST2", Discipline: "reactive distillation", ZeroDiag: true, gen: chem(110, 6, 0.18)},
		{Name: "RDIST3A", Discipline: "reactive distillation", ZeroDiag: true, gen: chem(80, 6, 0.18)},
		{Name: "RMA10", Discipline: "3-D ocean modelling", gen: fem(13, 13, 3, 0)},
		{Name: "SAYLR4", Discipline: "oil reservoir simulation", gen: res3d(13, 0.0, 1, 1, 8)},
		{Name: "SHERMAN3", Discipline: "oil reservoir simulation", gen: res3d(13, 0.0, 1, 2, 2)},
		{Name: "SHERMAN4", Discipline: "oil reservoir simulation", gen: res3d(9, 0.0, 1, 1, 4)},
		{Name: "SHERMAN5", Discipline: "oil reservoir simulation", gen: res3d(11, 1.0, 1, 3, 3)},
		{Name: "SHYY161", Discipline: "viscous fluid flow", gen: cfd2d(28, 28, 5.0, 0.5)},
		{Name: "TOLS4000", Discipline: "aeroelasticity", gen: weak2d(15, 15, 0.4)},
		{Name: "TWOTONE", Discipline: "harmonic balance (two-tone) circuit", ZeroDiag: true, gen: harm(240, 8, 4)},
		{Name: "UTM5940", Discipline: "tokamak plasma modelling", gen: device(13, 13)},
		{Name: "VENKAT01", Discipline: "unstructured 2-D Euler flow", gen: cfd2d(34, 34, 1.0, 1.0)},
		{Name: "WANG3", Discipline: "semiconductor device simulation", gen: device(14, 14)},
		{Name: "WANG4", Discipline: "semiconductor device simulation", gen: device(15, 15)},
		{Name: "WEST2021", Discipline: "chemical engineering plant model", ZeroDiag: true, gen: chem(130, 5, 0.25)},
		{Name: "WU", Discipline: "earth sciences (LBNL)", gen: res3d(12, 0.3, 1, 1, 12)},
	}
}

// ParallelTestbed returns the eight larger matrices of the paper's
// Table 2, used for the distributed scaling experiments (Tables 3–5).
func ParallelTestbed() []Matrix {
	byName := make(map[string]Matrix)
	for _, m := range Testbed() {
		byName[m.Name] = m
	}
	names := []string{"AF23560", "BBMAT", "ECL32", "EX11", "FIDAPM11", "MEMPLUS", "TWOTONE", "WANG4"}
	out := make([]Matrix, 0, len(names))
	for _, name := range names {
		m := byName[name]
		base := m.gen
		// The parallel experiments run the same disciplines at larger size.
		m.gen = func(s float64, rng *rand.Rand) *sparse.CSC {
			return base(4*s, rng)
		}
		out = append(out, m)
	}
	return out
}

// Lookup finds a testbed matrix by name (either testbed), or false.
func Lookup(name string) (Matrix, bool) {
	for _, m := range Testbed() {
		if m.Name == name {
			return m, true
		}
	}
	return Matrix{}, false
}

// OnesRHS builds the right-hand side b = A·1, the paper's experimental
// setup where the true solution is a vector of all ones.
func OnesRHS(a *sparse.CSC) []float64 {
	ones := make([]float64, a.Cols)
	for i := range ones {
		ones[i] = 1
	}
	b := make([]float64, a.Rows)
	a.MatVec(b, ones)
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
