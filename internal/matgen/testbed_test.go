package matgen

import (
	"math/rand"
	"testing"

	"gesp/internal/matching"
	"gesp/internal/sparse"
)

func TestTestbedHas53Matrices(t *testing.T) {
	tb := Testbed()
	if len(tb) != 53 {
		t.Fatalf("testbed has %d matrices, want 53 (paper's Table 1)", len(tb))
	}
	seen := map[string]bool{}
	for _, m := range tb {
		if m.Name == "" || m.Discipline == "" {
			t.Errorf("entry %+v missing name or discipline", m)
		}
		if seen[m.Name] {
			t.Errorf("duplicate matrix name %s", m.Name)
		}
		seen[m.Name] = true
	}
}

func TestAllTestbedMatricesAreValid(t *testing.T) {
	for _, m := range Testbed() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			a := m.Generate(0.5)
			if err := a.Check(); err != nil {
				t.Fatalf("invalid CSC: %v", err)
			}
			if a.Rows != a.Cols {
				t.Fatalf("non-square %dx%d", a.Rows, a.Cols)
			}
			if a.Rows < 50 {
				t.Fatalf("suspiciously small n=%d", a.Rows)
			}
			// Structural full rank is required for GESP's matching step.
			_, size := matching.MaxTransversal(a)
			if size != a.Cols {
				t.Fatalf("structural rank %d < n=%d", size, a.Cols)
			}
		})
	}
}

func TestZeroDiagPopulation(t *testing.T) {
	// The paper: 22 of 53 matrices contain zero diagonals to begin with.
	count := 0
	for _, m := range Testbed() {
		a := m.Generate(0.5)
		hasZero := a.ZeroDiagonals() > 0
		if m.ZeroDiag && !hasZero {
			t.Errorf("%s flagged ZeroDiag but generated full diagonal", m.Name)
		}
		if hasZero {
			count++
		}
	}
	if count < 15 || count > 30 {
		t.Errorf("zero-diagonal population %d, want near the paper's 22", count)
	}
	t.Logf("matrices with zero diagonals: %d (paper: 22)", count)
}

func TestGenerateDeterministic(t *testing.T) {
	m, ok := Lookup("TWOTONE")
	if !ok {
		t.Fatal("TWOTONE missing")
	}
	a := m.Generate(0.5)
	b := m.Generate(0.5)
	if a.Nnz() != b.Nnz() || a.Rows != b.Rows {
		t.Fatal("generation is not deterministic in structure")
	}
	for k := range a.Val {
		if a.Val[k] != b.Val[k] || a.RowInd[k] != b.RowInd[k] {
			t.Fatal("generation is not deterministic in values")
		}
	}
}

func TestScaleGrowsProblem(t *testing.T) {
	m, _ := Lookup("AF23560")
	small := m.Generate(0.25)
	big := m.Generate(1.0)
	if big.Rows <= small.Rows {
		t.Errorf("scale 1.0 gives n=%d, not larger than scale 0.25's n=%d", big.Rows, small.Rows)
	}
}

func TestParallelTestbed(t *testing.T) {
	pt := ParallelTestbed()
	if len(pt) != 8 {
		t.Fatalf("parallel testbed has %d matrices, want 8 (paper's Table 2)", len(pt))
	}
	base := map[string]int{}
	for _, m := range Testbed() {
		base[m.Name] = m.Generate(0.5).Rows
	}
	for _, m := range pt {
		a := m.Generate(0.5)
		if a.Rows <= base[m.Name] {
			t.Errorf("%s: parallel variant n=%d not larger than testbed n=%d", m.Name, a.Rows, base[m.Name])
		}
		_, size := matching.MaxTransversal(a)
		if size != a.Cols {
			t.Errorf("%s: parallel variant structurally singular", m.Name)
		}
	}
}

func TestSymmetryTraits(t *testing.T) {
	// Stencil matrices are structurally symmetric but numerically
	// unsymmetric; economics matrices are heavily unsymmetric.
	m, _ := Lookup("AF23560")
	s := sparse.SymmetryOf(m.Generate(0.5))
	if s.Str < 0.95 {
		t.Errorf("AF23560 StrSym = %g, want near 1 (stencil)", s.Str)
	}
	if s.Num > 0.9 {
		t.Errorf("AF23560 NumSym = %g, want < 0.9 (convection breaks value symmetry)", s.Num)
	}
	m, _ = Lookup("PSMIGR_1")
	s = sparse.SymmetryOf(m.Generate(0.5))
	if s.Str > 0.5 {
		t.Errorf("PSMIGR_1 StrSym = %g, want < 0.5 (unsymmetric economics)", s.Str)
	}
}

func TestChemicalIsIllScaled(t *testing.T) {
	m, _ := Lookup("LHR14C")
	a := m.Generate(0.5)
	lo, hi := 1e300, 0.0
	for _, v := range a.Val {
		av := v
		if av < 0 {
			av = -av
		}
		if av == 0 {
			continue
		}
		if av < lo {
			lo = av
		}
		if av > hi {
			hi = av
		}
	}
	if hi/lo < 1e6 {
		t.Errorf("LHR14C magnitude spread %g, want >= 1e6 (ill-scaled chemical eng)", hi/lo)
	}
}

func TestTwotoneSmallSupernodes(t *testing.T) {
	// TWOTONE's distinguishing trait in the paper: tiny supernodes.
	m, _ := Lookup("TWOTONE")
	a := m.Generate(0.5)
	if sym := sparse.SymmetryOf(a); sym.Str < 0.5 {
		t.Logf("TWOTONE StrSym=%.2f", sym.Str)
	}
	if a.Rows < 500 {
		t.Errorf("TWOTONE too small: %d", a.Rows)
	}
}

func TestOnesRHS(t *testing.T) {
	a := sparse.FromDense([][]float64{{1, 2}, {3, 4}})
	b := OnesRHS(a)
	if b[0] != 3 || b[1] != 7 {
		t.Errorf("OnesRHS = %v, want [3 7]", b)
	}
}

func TestLookupMissing(t *testing.T) {
	if _, ok := Lookup("NOSUCH"); ok {
		t.Error("Lookup found a nonexistent matrix")
	}
}

func TestEnsureFullRankPatches(t *testing.T) {
	// Rows 0,1 both only in column 0.
	tr := sparse.NewTriplet(3, 3)
	tr.Append(0, 0, 1)
	tr.Append(1, 0, 1)
	tr.Append(2, 2, 1)
	a := tr.ToCSC()
	fixed := EnsureFullRank(a, rand.New(rand.NewSource(1)))
	_, size := matching.MaxTransversal(fixed)
	if size != 3 {
		t.Errorf("EnsureFullRank left structural rank %d", size)
	}
}
