package matgen

import (
	"math"
	"math/rand"
	"testing"

	"gesp/internal/sparse"
)

func TestConvectionDiffusion2DStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := ConvectionDiffusion2D(10, 12, 1.5, 0.5, rng)
	if a.Rows != 120 {
		t.Fatalf("n = %d, want 120", a.Rows)
	}
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	if z := a.ZeroDiagonals(); z != 0 {
		t.Errorf("%d zero diagonals, want none", z)
	}
	// 5-point stencil: at most 5 entries per column.
	for j := 0; j < a.Cols; j++ {
		if d := a.ColPtr[j+1] - a.ColPtr[j]; d > 5 {
			t.Fatalf("column %d has %d entries", j, d)
		}
	}
	// Structurally symmetric, numerically unsymmetric (convection).
	s := sparse.SymmetryOf(a)
	if s.Str != 1 {
		t.Errorf("StrSym = %g, want 1", s.Str)
	}
	if s.Num > 0.5 {
		t.Errorf("NumSym = %g, want well below 1", s.Num)
	}
}

func TestConvectionDiffusion3DStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := ConvectionDiffusion3D(6, 5, 4, 0.5, 1, 1, 10, rng)
	if a.Rows != 120 {
		t.Fatalf("n = %d", a.Rows)
	}
	for j := 0; j < a.Cols; j++ {
		if d := a.ColPtr[j+1] - a.ColPtr[j]; d > 7 {
			t.Fatalf("column %d has %d entries (7-point stencil)", j, d)
		}
	}
}

func TestFEMVector2DSaddleZeros(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := FEMVector2D(5, 5, 4, 1, rng)
	if a.Rows != 100 {
		t.Fatalf("n = %d", a.Rows)
	}
	// One saddle unknown per node: 25 zero diagonals.
	if z := a.ZeroDiagonals(); z != 25 {
		t.Errorf("%d zero diagonals, want 25", z)
	}
	// No saddle: full diagonal.
	b := FEMVector2D(5, 5, 4, 0, rng)
	if z := b.ZeroDiagonals(); z != 0 {
		t.Errorf("%d zero diagonals, want 0", z)
	}
}

func TestCircuitSourcesZeroDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Circuit(200, 4, 20, rng)
	if a.Rows != 220 {
		t.Fatalf("n = %d, want 220", a.Rows)
	}
	if z := a.ZeroDiagonals(); z != 20 {
		t.Errorf("%d zero diagonals, want 20 (one per source)", z)
	}
}

func TestHarmonicBalanceBlockStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := HarmonicBalance(50, 4, 4, rng)
	if a.Rows != 200 {
		t.Fatalf("n = %d", a.Rows)
	}
	// Couplings only within a harmonic or to the adjacent harmonic:
	// |block(i) - block(j)| <= 1.
	for j := 0; j < a.Cols; j++ {
		bj := j / 50
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			bi := a.RowInd[k] / 50
			if d := bi - bj; d < -1 || d > 1 {
				t.Fatalf("coupling across %d harmonics at (%d,%d)", d, a.RowInd[k], j)
			}
		}
	}
}

func TestChemicalEngScalingSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := ChemicalEng(40, 6, 0.15, rng)
	lo, hi := math.Inf(1), 0.0
	for _, v := range a.Val {
		av := math.Abs(v)
		if av == 0 {
			continue
		}
		if av < lo {
			lo = av
		}
		if av > hi {
			hi = av
		}
	}
	if hi/lo < 1e6 {
		t.Errorf("magnitude spread %g, want >= 1e6", hi/lo)
	}
	if a.ZeroDiagonals() == 0 {
		t.Error("expected some zero diagonals from constraint rows")
	}
}

func TestDeviceSimulationGrading(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := DeviceSimulation(10, 10, rng)
	if a.Rows != 300 {
		t.Fatalf("n = %d", a.Rows)
	}
	// Exponential grading: the largest diagonal should dwarf the smallest.
	d := a.Diagonal()
	lo, hi := math.Inf(1), 0.0
	for _, v := range d {
		av := math.Abs(v)
		if av < lo {
			lo = av
		}
		if av > hi {
			hi = av
		}
	}
	if hi/lo < 50 {
		t.Errorf("diagonal grading ratio %g, want large", hi/lo)
	}
}

func TestPowerNetworkCycleKeepsFullRank(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := PowerNetwork(300, 3, 0.2, rng)
	if a.ZeroDiagonals() == 0 {
		t.Error("expected zero diagonals")
	}
}

func TestWeakDiagonal2DGrowthProne(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := WeakDiagonal2D(12, 12, 0.4, rng)
	// Diagonal magnitudes below off-diagonal magnitudes on average.
	d := a.Diagonal()
	var diagSum, offSum float64
	var offCount int
	for j := 0; j < a.Cols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if a.RowInd[k] != j {
				offSum += math.Abs(a.Val[k])
				offCount++
			}
		}
	}
	for _, v := range d {
		diagSum += math.Abs(v)
	}
	if diagSum/float64(len(d)) >= offSum/float64(offCount) {
		t.Error("weak-diagonal generator produced a dominant diagonal")
	}
}

func TestEconomicsDenseRows(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := EconomicsDense(200, 10, 0.02, rng)
	// Count row populations: the first 10 rows must be much denser.
	rowCount := make([]int, a.Rows)
	for _, i := range a.RowInd {
		rowCount[i]++
	}
	denseAvg, sparseAvg := 0.0, 0.0
	for i := 0; i < 10; i++ {
		denseAvg += float64(rowCount[i])
	}
	for i := 10; i < 150; i++ {
		sparseAvg += float64(rowCount[i])
	}
	denseAvg /= 10
	sparseAvg /= 140
	if denseAvg < 5*sparseAvg {
		t.Errorf("dense rows avg %.1f not well above sparse avg %.1f", denseAvg, sparseAvg)
	}
}

func TestQuantumWorkloadViaLocalNeighbor(t *testing.T) {
	// localNeighbor stays in range and is usually close.
	rng := rand.New(rand.NewSource(11))
	far := 0
	const trials = 2000
	for k := 0; k < trials; k++ {
		i := rng.Intn(1000)
		j := localNeighbor(i, 1000, rng)
		if j < 0 || j >= 1000 {
			t.Fatalf("neighbor %d out of range", j)
		}
		d := i - j
		if d < 0 {
			d = -d
		}
		if d > 500 {
			d = 1000 - d // wrap distance
		}
		if d > 60 {
			far++
		}
	}
	if float64(far)/trials > 0.1 {
		t.Errorf("%d of %d neighbors are far; want mostly local", far, trials)
	}
}
