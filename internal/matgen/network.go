package matgen

import (
	"math"
	"math/rand"

	"gesp/internal/sparse"
)

// Circuit builds a modified-nodal-analysis style matrix: a structurally
// symmetric conductance network over n nodes with average degree deg,
// plus nsrc voltage-source rows that put zeros on the diagonal (the
// MEMPLUS / JPWH_991 / ONETONE shape). Values are numerically
// unsymmetric.
func Circuit(n, deg, nsrc int, rng *rand.Rand) *sparse.CSC {
	total := n + nsrc
	t := sparse.NewTriplet(total, total)
	diag := make([]float64, total)
	for i := 0; i < n; i++ {
		diag[i] = 1e-3
	}
	edges := n * deg / 2
	for e := 0; e < edges; e++ {
		i := rng.Intn(n)
		j := localNeighbor(i, n, rng)
		if i == j {
			continue
		}
		g := math.Pow(10, 3*rng.Float64()-1.5) // conductances over 3 decades
		t.Append(i, j, -g*(1+0.1*rng.NormFloat64()))
		t.Append(j, i, -g*(1+0.1*rng.NormFloat64()))
		diag[i] += g
		diag[j] += g
	}
	for i := 0; i < n; i++ {
		t.Append(i, i, diag[i])
	}
	// Voltage sources: row/column pair coupling a node to a current
	// unknown, with a structurally zero diagonal at the source unknown.
	// Distinct nodes keep the matrix structurally nonsingular.
	nodes := rng.Perm(n)
	for s := 0; s < nsrc && s < n; s++ {
		node := nodes[s]
		src := n + s
		t.Append(node, src, 1)
		t.Append(src, node, 1+0.01*rng.NormFloat64())
	}
	return t.ToCSC()
}

// HarmonicBalance mimics the TWOTONE/ONETONE circuit matrices: a base
// circuit replicated across h harmonics with weak cross-harmonic
// couplings. The resulting supernodes are tiny (TWOTONE's average is 2.4
// columns), which is exactly the pathology the paper discusses in its
// load-balance analysis.
func HarmonicBalance(baseN, h, deg int, rng *rand.Rand) *sparse.CSC {
	n := baseN * h
	t := sparse.NewTriplet(n, n)
	// Random base topology shared by every harmonic; a fraction of nodes
	// are current-like unknowns with structurally zero diagonals.
	type edge struct{ i, j int }
	var edges []edge
	for e := 0; e < baseN*deg/2; e++ {
		i := rng.Intn(baseN)
		j := localNeighbor(i, baseN, rng)
		if i != j {
			edges = append(edges, edge{i, j})
		}
	}
	zero := make([]bool, baseN)
	for i := range zero {
		zero[i] = rng.Float64() < 0.12
	}
	for k := 0; k < h; k++ {
		off := k * baseN
		diag := make([]float64, baseN)
		for i := range diag {
			diag[i] = 1e-2
		}
		for _, e := range edges {
			g := math.Pow(10, 2*rng.Float64()-1)
			t.Append(off+e.i, off+e.j, -g)
			t.Append(off+e.j, off+e.i, -g*(1+0.2*rng.NormFloat64()))
			diag[e.i] += g
			diag[e.j] += g
		}
		for i := 0; i < baseN; i++ {
			if zero[i] {
				// Zero diagonal; a cyclic in-harmonic pair keeps the block
				// structurally nonsingular.
				j := (i + 1) % baseN
				t.Append(off+i, off+j, 1+rng.Float64())
				t.Append(off+j, off+i, 1+rng.Float64())
			} else {
				t.Append(off+i, off+i, diag[i]+0.5*rng.Float64())
			}
			// Cross-harmonic coupling: sparse, breaks supernodes.
			if k+1 < h && rng.Float64() < 0.3 {
				t.Append(off+i, off+baseN+i, 0.1*rng.NormFloat64())
				t.Append(off+baseN+i, off+i, 0.1*rng.NormFloat64())
			}
		}
	}
	return t.ToCSC()
}

// ChemicalEng models staged separation processes (the LHR, RADFR1, HYDR1,
// RDIST matrices): block tridiagonal with dense stage blocks, values
// spanning many orders of magnitude (poor scaling is the defining
// numerical trait — equilibration in GESP step (1) matters here), and a
// fraction of zero diagonal entries from algebraic constraint rows.
func ChemicalEng(stages, comp int, zeroFrac float64, rng *rand.Rand) *sparse.CSC {
	n := stages * comp
	t := sparse.NewTriplet(n, n)
	zero := make([]bool, n)
	for i := range zero {
		zero[i] = rng.Float64() < zeroFrac
	}
	scale := func() float64 {
		return math.Pow(10, 8*rng.Float64()-4) * signOf(rng)
	}
	for s := 0; s < stages; s++ {
		off := s * comp
		for bi := 0; bi < comp; bi++ {
			for bj := 0; bj < comp; bj++ {
				if bi == bj {
					if !zero[off+bi] {
						t.Append(off+bi, off+bj, scale()*10)
					}
					continue
				}
				if rng.Float64() < 0.6 {
					t.Append(off+bi, off+bj, scale())
				}
			}
		}
		if s+1 < stages {
			for bi := 0; bi < comp; bi++ {
				if rng.Float64() < 0.7 {
					t.Append(off+bi, off+comp+bi, scale())
				}
				if rng.Float64() < 0.7 {
					t.Append(off+comp+bi, off+bi, scale())
				}
			}
		}
	}
	// Guarantee structural nonsingularity: rows with a zero diagonal get a
	// cyclic off-diagonal entry within their stage.
	for i := 0; i < n; i++ {
		if zero[i] {
			s := i / comp
			j := s*comp + (i%comp+1)%comp
			if j == i {
				j = (i + 1) % n
			}
			t.Append(i, j, scale())
			t.Append(j, i, scale())
		}
	}
	return t.ToCSC()
}

// EconomicsDense mimics input-output and migration matrices (PSMIGR,
// ORANI678): mostly sparse but with a band of dense rows and columns, no
// zero diagonals, heavily unsymmetric values.
func EconomicsDense(n, denseRows int, density float64, rng *rand.Rand) *sparse.CSC {
	t := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		t.Append(i, i, 10+5*rng.Float64())
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if i == j {
				continue
			}
			p := density
			// Dense rows at the start, dense columns at the end — on
			// different indices, so the pattern stays heavily unsymmetric.
			if i < denseRows || j >= n-denseRows/2 {
				p = 0.7
			}
			if rng.Float64() < p {
				t.Append(i, j, rng.NormFloat64()*math.Pow(10, 2*rng.Float64()-1))
			}
		}
	}
	return t.ToCSC()
}

// PowerNetwork mimics power-flow Jacobians (GEMAT11, WEST): a sparse
// unsymmetric network with a fraction of zero diagonals and irregular
// degree distribution.
func PowerNetwork(n, deg int, zeroFrac float64, rng *rand.Rand) *sparse.CSC {
	t := sparse.NewTriplet(n, n)
	zero := make([]bool, n)
	for i := range zero {
		zero[i] = rng.Float64() < zeroFrac
	}
	for i := 0; i < n; i++ {
		if !zero[i] {
			t.Append(i, i, 5+rng.Float64()*20)
		}
		// A guaranteed cycle keeps the matrix structurally nonsingular.
		t.Append(i, (i+1)%n, rng.NormFloat64()*2)
		d := 1 + rng.Intn(deg)
		for k := 0; k < d; k++ {
			j := localNeighbor(i, n, rng)
			if j != i {
				t.Append(i, j, rng.NormFloat64())
			}
		}
	}
	return t.ToCSC()
}

// DeviceSimulation mimics semiconductor device matrices (ECL32, WANG3/4,
// UTM): a 2-D grid with three strongly coupled unknowns per node
// (potential, electron and hole concentrations) and exponentially graded
// coefficients, producing ill-scaled, unsymmetric systems with mild
// diagonal weakness.
func DeviceSimulation(nx, ny int, rng *rand.Rand) *sparse.CSC {
	const b = 3
	nodes := nx * ny
	n := nodes * b
	t := sparse.NewTriplet(n, n)
	id := func(i, j int) int { return i*ny + j }
	grade := func(i int) float64 { return math.Exp(6 * float64(i) / float64(nx)) }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			c := id(i, j) * b
			g := grade(i)
			for bi := 0; bi < b; bi++ {
				t.Append(c+bi, c+bi, (4+rng.Float64())*g)
				for bj := 0; bj < b; bj++ {
					if bi != bj && rng.Float64() < 0.8 {
						t.Append(c+bi, c+bj, rng.NormFloat64()*g*0.5)
					}
				}
			}
			couple := func(o int) {
				for bi := 0; bi < b; bi++ {
					t.Append(c+bi, o+bi, -g*(1+0.3*rng.Float64()))
					t.Append(o+bi, c+bi, -g*(1+0.3*rng.Float64()))
					if rng.Float64() < 0.3 {
						t.Append(c+bi, o+(bi+1)%b, rng.NormFloat64()*g*0.1)
					}
				}
			}
			if i+1 < nx {
				couple(id(i+1, j) * b)
			}
			if j+1 < ny {
				couple(id(i, j+1) * b)
			}
		}
	}
	return t.ToCSC()
}

func signOf(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return -1
	}
	return 1
}

// localNeighbor draws a mostly-local partner for node i: real circuits
// and discrete networks have strong spatial locality (which is what keeps
// their fill-in manageable under minimum degree), with a small fraction
// of long-range connections.
func localNeighbor(i, n int, rng *rand.Rand) int {
	if rng.Float64() < 0.03 {
		return rng.Intn(n) // occasional long-range wire
	}
	off := 1 + int(math.Abs(rng.NormFloat64())*8)
	if rng.Intn(2) == 0 {
		off = -off
	}
	j := i + off
	switch {
	case j < 0:
		j += n
	case j >= n:
		j -= n
	}
	return j
}
