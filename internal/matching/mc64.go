// Package matching implements the permutation of large entries to the
// diagonal of a sparse matrix, step (1) of the GESP algorithm.
//
// MaxProductMatching reimplements the Duff–Koster algorithm (Harwell
// subroutine MC64, job 5): it finds a row permutation maximizing the
// product of the diagonal magnitudes, together with diagonal scalings Dr
// and Dc derived from the dual variables of the underlying assignment
// problem, so that every diagonal entry of Dr*Pr*A*Dc is ±1 and every
// off-diagonal entry is at most 1 in magnitude.
//
// MaxTransversal reimplements Duff's MC21 depth-first maximum transversal,
// which ignores values and only seeks a zero-free diagonal.
package matching

import (
	"errors"
	"fmt"
	"math"

	"gesp/internal/sparse"
)

// Result describes a large-diagonal permutation.
type Result struct {
	// RowOf[j] is the row matched to column j; entry (RowOf[j], j) lands on
	// the diagonal.
	RowOf []int
	// RowPerm maps old row index to new row index: applying
	// a.PermuteRows(RowPerm) moves the matched entries onto the diagonal.
	RowPerm []int
	// Dr, Dc are diagonal scalings from the dual variables: each diagonal
	// entry of Dr*Pr*A*Dc has magnitude 1 and off-diagonals are <= 1.
	Dr, Dc []float64
	// LogProd is the sum of log10 magnitudes of the matched entries (the
	// quantity the matching maximizes).
	LogProd float64
}

// ErrStructurallySingular is returned when no perfect matching exists, i.e.
// every permutation leaves a zero on the diagonal.
var ErrStructurallySingular = errors.New("matching: matrix is structurally singular")

// pairHeap is a hand-rolled binary min-heap of (dist, row) pairs; container/heap
// interface dispatch is measurable on matching-heavy inputs.
type pairHeap struct {
	dist []float64
	row  []int
}

func (h *pairHeap) push(d float64, r int) {
	h.dist = append(h.dist, d)
	h.row = append(h.row, r)
	i := len(h.dist) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.dist[p] <= h.dist[i] {
			break
		}
		h.dist[p], h.dist[i] = h.dist[i], h.dist[p]
		h.row[p], h.row[i] = h.row[i], h.row[p]
		i = p
	}
}

func (h *pairHeap) pop() (float64, int) {
	d, r := h.dist[0], h.row[0]
	last := len(h.dist) - 1
	h.dist[0], h.row[0] = h.dist[last], h.row[last]
	h.dist, h.row = h.dist[:last], h.row[:last]
	i := 0
	for {
		l, rgt := 2*i+1, 2*i+2
		if l >= len(h.dist) {
			break
		}
		m := l
		if rgt < len(h.dist) && h.dist[rgt] < h.dist[l] {
			m = rgt
		}
		if h.dist[i] <= h.dist[m] {
			break
		}
		h.dist[i], h.dist[m] = h.dist[m], h.dist[i]
		h.row[i], h.row[m] = h.row[m], h.row[i]
		i = m
	}
	return d, r
}

func (h *pairHeap) empty() bool { return len(h.dist) == 0 }
func (h *pairHeap) reset()      { h.dist = h.dist[:0]; h.row = h.row[:0] }

// MaxProductMatching computes the MC64-style maximum-product matching and
// scalings for a square sparse matrix. Explicitly stored zeros are ignored.
func MaxProductMatching(a *sparse.CSC) (*Result, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("matching: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	// Cost of entry (i,j): c = log(cmax_j) - log|a_ij| >= 0, so that
	// minimizing the assignment cost maximizes prod |a_ij| / cmax_j.
	cost := make([]float64, a.Nnz())
	cmaxLog := make([]float64, n)
	for j := 0; j < n; j++ {
		cm := 0.0
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if v := math.Abs(a.Val[k]); v > cm {
				cm = v
			}
		}
		if cm == 0 {
			return nil, fmt.Errorf("matching: column %d has no nonzeros: %w", j, ErrStructurallySingular)
		}
		cmaxLog[j] = math.Log(cm)
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if v := math.Abs(a.Val[k]); v > 0 {
				cost[k] = cmaxLog[j] - math.Log(v)
			} else {
				cost[k] = math.Inf(1) // explicit zero: unusable
			}
		}
	}

	matchRow := make([]int, n) // row -> column, -1 if free
	matchCol := make([]int, n) // column -> row, -1 if free
	for i := range matchRow {
		matchRow[i] = -1
		matchCol[i] = -1
	}
	piRow := make([]float64, n) // row potentials
	piCol := make([]float64, n) // column potentials

	// Greedy initialization: match zero-cost (column-max) entries whose row
	// is still free. This typically matches most columns outright.
	for j := 0; j < n; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if cost[k] == 0 && matchRow[a.RowInd[k]] == -1 {
				matchRow[a.RowInd[k]] = j
				matchCol[j] = a.RowInd[k]
				break
			}
		}
	}

	dist := make([]float64, n)
	prevCol := make([]int, n) // prevCol[i]: column preceding row i on path
	stamp := make([]int, n)   // generation stamps replacing O(n) clears
	final := make([]bool, n)
	finalRows := make([]int, 0, 64)
	gen := 0
	var heap pairHeap

	for j0 := 0; j0 < n; j0++ {
		if matchCol[j0] != -1 {
			continue
		}
		gen++
		heap.reset()
		finalRows = finalRows[:0]
		lsap := math.Inf(1)
		iend := -1
		j := j0
		dj := 0.0
		for {
			for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
				i := a.RowInd[k]
				if stamp[i] == gen && final[i] {
					continue
				}
				nd := dj + cost[k] + piCol[j] - piRow[i]
				if nd >= lsap || math.IsInf(nd, 1) {
					continue
				}
				if stamp[i] != gen || nd < dist[i] {
					stamp[i] = gen
					final[i] = false
					dist[i] = nd
					prevCol[i] = j
					heap.push(nd, i)
				}
			}
			// Pick the nearest unfinalized row.
			var d float64
			i := -1
			for !heap.empty() {
				dd, ii := heap.pop()
				// Lazy-deletion heap: a popped entry is live only if its
				// priority still equals the row's current distance, a value
				// copied verbatim at push time — bit-exact by construction.
				//gesp:floateq
				if stamp[ii] == gen && !final[ii] && dd == dist[ii] {
					d, i = dd, ii
					break
				}
			}
			if i == -1 || d >= lsap {
				break
			}
			if matchRow[i] == -1 {
				lsap, iend = d, i
				// Rows already in the heap cannot beat d (min-heap), so the
				// augmenting path is settled.
				break
			}
			final[i] = true
			finalRows = append(finalRows, i)
			j = matchRow[i]
			dj = d // matched edge has zero reduced cost
		}
		if iend == -1 {
			return nil, fmt.Errorf("matching: column %d unmatched: %w", j0, ErrStructurallySingular)
		}
		// Dual updates keep reduced costs nonnegative and zero on matches.
		piCol[j0] -= lsap
		for _, i := range finalRows {
			piRow[i] += dist[i] - lsap
			piCol[matchRow[i]] += dist[i] - lsap
		}
		// Augment along prevCol chain.
		i := iend
		for {
			jc := prevCol[i]
			ip := matchCol[jc]
			matchCol[jc] = i
			matchRow[i] = jc
			if jc == j0 {
				break
			}
			i = ip
		}
	}

	res := &Result{
		RowOf:   matchCol,
		RowPerm: make([]int, n),
		Dr:      make([]float64, n),
		Dc:      make([]float64, n),
	}
	for j := 0; j < n; j++ {
		res.RowPerm[matchCol[j]] = j
	}
	for i := 0; i < n; i++ {
		res.Dr[i] = math.Exp(piRow[i])
	}
	for j := 0; j < n; j++ {
		res.Dc[j] = math.Exp(-piCol[j] - cmaxLog[j])
	}
	for j := 0; j < n; j++ {
		res.LogProd += math.Log10(math.Abs(a.At(matchCol[j], j)))
	}
	return res, nil
}

// MaxTransversal computes a maximum matching ignoring values (Duff's MC21):
// rowOf[j] is the row matched to column j, or -1. size is the matching
// cardinality; size == n means a zero-free diagonal exists.
func MaxTransversal(a *sparse.CSC) (rowOf []int, size int) {
	n := a.Cols
	rowOf = make([]int, n)
	colOf := make([]int, a.Rows)
	for i := range rowOf {
		rowOf[i] = -1
	}
	for i := range colOf {
		colOf[i] = -1
	}
	visited := make([]int, n)
	for j := range visited {
		visited[j] = -1
	}
	var try func(j, root int) bool
	try = func(j, root int) bool {
		// Cheap assignment first: an unmatched row ends the path at once.
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if a.Val[k] == 0 {
				continue
			}
			i := a.RowInd[k]
			if colOf[i] == -1 {
				colOf[i] = j
				rowOf[j] = i
				return true
			}
		}
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if a.Val[k] == 0 {
				continue
			}
			i := a.RowInd[k]
			next := colOf[i]
			if visited[next] == root {
				continue
			}
			visited[next] = root
			if try(next, root) {
				colOf[i] = j
				rowOf[j] = i
				return true
			}
		}
		return false
	}
	for j := 0; j < n; j++ {
		visited[j] = j
		if try(j, j) {
			size++
		}
	}
	return rowOf, size
}
