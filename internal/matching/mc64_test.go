package matching

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gesp/internal/sparse"
)

// bruteMaxProduct finds the assignment maximizing the product of matched
// magnitudes by exhaustive search, for cross-checking on tiny matrices.
func bruteMaxProduct(a *sparse.CSC) (best float64, ok bool) {
	n := a.Rows
	d := a.Dense()
	perm := make([]int, n)
	used := make([]bool, n)
	best = math.Inf(-1)
	var rec func(j int, logp float64)
	rec = func(j int, logp float64) {
		if j == n {
			if logp > best {
				best = logp
				ok = true
			}
			return
		}
		for i := 0; i < n; i++ {
			if !used[i] && d[i][j] != 0 {
				used[i] = true
				perm[j] = i
				rec(j+1, logp+math.Log(math.Abs(d[i][j])))
				used[i] = false
			}
		}
	}
	rec(0, 0)
	return best, ok
}

func randomMatrix(rng *rand.Rand, n int, density float64, fullDiag bool) *sparse.CSC {
	t := sparse.NewTriplet(n, n)
	for j := 0; j < n; j++ {
		if fullDiag {
			t.Append(j, j, 1+rng.Float64())
		}
		for i := 0; i < n; i++ {
			if rng.Float64() < density {
				t.Append(i, j, rng.NormFloat64()*math.Pow(10, float64(rng.Intn(8)-4)))
			}
		}
	}
	return t.ToCSC()
}

func TestMaxProductMatchingAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		a := randomMatrix(rng, n, 0.5, trial%2 == 0)
		want, feasible := bruteMaxProduct(a)
		res, err := MaxProductMatching(a)
		if !feasible {
			if err == nil {
				t.Fatalf("trial %d: structurally singular matrix accepted", trial)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: unexpected error %v", trial, err)
		}
		got := 0.0
		for j := 0; j < n; j++ {
			got += math.Log(math.Abs(a.At(res.RowOf[j], j)))
		}
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("trial %d: log product %g, brute force %g", trial, got, want)
		}
	}
}

func TestMaxProductMatchingScalings(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(25)
		a := randomMatrix(rng, n, 0.3, true)
		res, err := MaxProductMatching(a)
		if err != nil {
			t.Fatal(err)
		}
		b := a.Clone()
		b.ScaleRowsCols(res.Dr, res.Dc)
		p := b.PermuteRows(res.RowPerm)
		// Property from the paper: each diagonal entry of Dr*Pr*A*Dc is ±1,
		// every off-diagonal entry bounded by 1.
		for j := 0; j < n; j++ {
			for k := p.ColPtr[j]; k < p.ColPtr[j+1]; k++ {
				v := math.Abs(p.Val[k])
				if p.RowInd[k] == j {
					if math.Abs(v-1) > 1e-8 {
						t.Fatalf("trial %d: diagonal (%d,%d) = %g, want 1", trial, j, j, v)
					}
				} else if v > 1+1e-8 {
					t.Fatalf("trial %d: off-diagonal (%d,%d) = %g > 1", trial, p.RowInd[k], j, v)
				}
			}
		}
	}
}

func TestMaxProductMatchingRowPermIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		a := randomMatrix(rng, n, 0.2, true)
		res, err := MaxProductMatching(a)
		if err != nil {
			return false
		}
		if sparse.CheckPerm(res.RowPerm, n) != nil {
			return false
		}
		// RowPerm must place matched entries on the diagonal.
		for j := 0; j < n; j++ {
			if res.RowPerm[res.RowOf[j]] != j {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMaxProductMatchingPicksLargeEntries(t *testing.T) {
	// Column 0: huge entry off-diagonal; matching must prefer it.
	a := sparse.FromDense([][]float64{
		{1, 0, 2},
		{1e6, 1, 0},
		{0, 3, 1e-3},
	})
	res, err := MaxProductMatching(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowOf[0] != 1 {
		t.Errorf("column 0 matched to row %d, want 1 (the 1e6 entry)", res.RowOf[0])
	}
}

func TestMaxProductMatchingSingular(t *testing.T) {
	// Rows 0 and 1 only touch column 0: no perfect matching.
	tr := sparse.NewTriplet(3, 3)
	tr.Append(0, 0, 1)
	tr.Append(1, 0, 2)
	tr.Append(2, 1, 3)
	tr.Append(2, 2, 4)
	_, err := MaxProductMatching(tr.ToCSC())
	if !errors.Is(err, ErrStructurallySingular) {
		t.Errorf("got %v, want ErrStructurallySingular", err)
	}
	// Zero column.
	tr2 := sparse.NewTriplet(2, 2)
	tr2.Append(0, 0, 1)
	tr2.Append(1, 0, 1)
	_, err = MaxProductMatching(tr2.ToCSC())
	if !errors.Is(err, ErrStructurallySingular) {
		t.Errorf("zero column: got %v, want ErrStructurallySingular", err)
	}
}

func TestMaxProductMatchingIgnoresExplicitZeros(t *testing.T) {
	tr := sparse.NewTriplet(2, 2)
	tr.Append(0, 0, 0) // explicit zero must not be matched
	tr.Append(1, 0, 1)
	tr.Append(0, 1, 1)
	tr.Append(1, 1, 5)
	res, err := MaxProductMatching(tr.ToCSC())
	if err != nil {
		t.Fatal(err)
	}
	if res.RowOf[0] != 1 || res.RowOf[1] != 0 {
		t.Errorf("matching used an explicit zero: RowOf = %v", res.RowOf)
	}
}

func TestMaxTransversalFull(t *testing.T) {
	// Zero diagonal but structurally nonsingular.
	a := sparse.FromDense([][]float64{
		{0, 1, 0},
		{1, 0, 0},
		{0, 1, 1},
	})
	rowOf, size := MaxTransversal(a)
	if size != 3 {
		t.Fatalf("size = %d, want 3", size)
	}
	seen := make(map[int]bool)
	for j, i := range rowOf {
		if a.At(i, j) == 0 {
			t.Errorf("column %d matched to zero entry at row %d", j, i)
		}
		if seen[i] {
			t.Errorf("row %d matched twice", i)
		}
		seen[i] = true
	}
}

func TestMaxTransversalDeficient(t *testing.T) {
	tr := sparse.NewTriplet(3, 3)
	tr.Append(0, 0, 1)
	tr.Append(0, 1, 1)
	tr.Append(0, 2, 1)
	tr.Append(1, 0, 1)
	a := tr.ToCSC()
	_, size := MaxTransversal(a)
	if size != 2 {
		t.Fatalf("size = %d, want 2", size)
	}
}

func TestMaxTransversalMatchesBruteFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		a := randomMatrix(rng, n, 0.4, false)
		_, size := MaxTransversal(a)
		_, feasible := bruteMaxProduct(a)
		if feasible != (size == n) {
			t.Fatalf("trial %d: transversal size %d/%d but brute feasibility %v", trial, size, n, feasible)
		}
	}
}
