package dist

import (
	"math"
	"math/rand"
	"testing"

	"gesp/internal/lu"
	"gesp/internal/matgen"
	"gesp/internal/mpisim"
	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

// prepared builds a diagonally dominant random system with its symbolic
// structure, in factorable (pre-permuted) form.
func prepared(t *testing.T, seed int64, n int, density float64, maxSuper int) (*sparse.CSC, *symbolic.Result) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr := sparse.NewTriplet(n, n)
	for j := 0; j < n; j++ {
		tr.Append(j, j, 4+rng.Float64())
		for i := 0; i < n; i++ {
			if i != j && rng.Float64() < density {
				tr.Append(i, j, rng.NormFloat64()*0.5)
			}
		}
	}
	a := tr.ToCSC()
	sym, err := symbolic.Factorize(a, symbolic.Options{MaxSuper: maxSuper})
	if err != nil {
		t.Fatal(err)
	}
	return a, sym
}

func solveDist(t *testing.T, a *sparse.CSC, sym *symbolic.Result, opts Options) *Result {
	t.Helper()
	n := a.Rows
	want := make([]float64, n)
	for i := range want {
		want[i] = 1 + float64(i%5)
	}
	b := make([]float64, n)
	a.MatVec(b, want)
	res, err := Solve(a, sym, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if e := sparse.RelErrInf(res.X, want); e > 1e-9 {
		t.Fatalf("distributed solve error %g (P=%d, pipeline=%v, prune=%v)",
			e, opts.Procs, opts.Pipeline, opts.EDAGPrune)
	}
	return res
}

func TestDistributedSolveMatchesTruth(t *testing.T) {
	a, sym := prepared(t, 1, 150, 0.05, 8)
	for _, p := range []int{1, 2, 3, 4, 6, 8, 16} {
		for _, pipeline := range []bool{false, true} {
			for _, prune := range []bool{false, true} {
				solveDist(t, a, sym, Options{
					Procs: p, Pipeline: pipeline, EDAGPrune: prune, ReplaceTinyPivot: true,
				})
			}
		}
	}
}

func TestDistributedMatchesSerialFactors(t *testing.T) {
	// The distributed factorization must produce the same L and U values
	// as the serial left-looking GESP (same static structure, no pivoting
	// ⇒ identical results up to roundoff). Run the worker machinery on
	// one rank owning everything and compare entry by entry.
	a, sym := prepared(t, 7, 80, 0.08, 6)
	serial, err := lu.Factorize(a, sym, lu.Options{ReplaceTinyPivot: true})
	if err != nil {
		t.Fatal(err)
	}
	st := BuildStructure(sym)
	grid := mpisim.NewGrid(1)
	world := mpisim.NewWorld(1, mpisim.T3E900())
	var blocks map[int]*Block
	world.Run(func(r *mpisim.Rank) {
		w := &worker{
			r: r, g: grid, st: st, opts: Options{Procs: 1, ReplaceTinyPivot: true},
			thresh: defaultThreshold(a, 0), panelDone: make([]bool, st.N),
		}
		w.blocks = st.ScatterA(a, func(i, j int) bool { return true })
		w.factorize()
		blocks = w.blocks
	})
	ns := st.N
	scale := a.MaxAbs()
	for j := 0; j < sym.N; j++ {
		bj := sym.SupOf[j]
		for p := sym.UPtr[j]; p < sym.UPtr[j+1]; p++ {
			i := sym.UInd[p]
			got := blocks[sym.SupOf[i]*ns+bj].At(i, j)
			if d := math.Abs(got - serial.UVal[p]); d > 1e-10*scale {
				t.Fatalf("U(%d,%d): dist %g vs serial %g", i, j, got, serial.UVal[p])
			}
		}
		for q := sym.LPtr[j]; q < sym.LPtr[j+1]; q++ {
			i := sym.LInd[q]
			got := blocks[sym.SupOf[i]*ns+bj].At(i, j)
			if d := math.Abs(got - serial.LVal[q]); d > 1e-10*scale {
				t.Fatalf("L(%d,%d): dist %g vs serial %g", i, j, got, serial.LVal[q])
			}
		}
	}
}

func TestDistributedManyProcsMoreThanBlocks(t *testing.T) {
	// More processors than supernodes: idle ranks must not deadlock.
	a, sym := prepared(t, 11, 30, 0.1, 30)
	solveDist(t, a, sym, Options{Procs: 25, ReplaceTinyPivot: true, Pipeline: true, EDAGPrune: true})
}

func TestEDAGPruningReducesMessages(t *testing.T) {
	// The paper: pruned communication sent 16% fewer messages for AF23560
	// on 32 processes. Shape check: pruning must strictly reduce messages
	// on a sparse problem and give identical numerics.
	m, _ := matgen.Lookup("AF23560")
	a0 := m.Generate(0.25)
	// Use the raw generated matrix pattern (already nearly symmetric) —
	// factor it directly with dominance to keep the test self-contained.
	a := makeDominant(a0)
	sym, err := symbolic.Factorize(a, symbolic.Options{MaxSuper: 12})
	if err != nil {
		t.Fatal(err)
	}
	rUnpruned := solveDist(t, a, sym, Options{Procs: 8, ReplaceTinyPivot: true})
	rPruned := solveDist(t, a, sym, Options{Procs: 8, ReplaceTinyPivot: true, EDAGPrune: true})
	mu := rUnpruned.Factor.Messages
	mp := rPruned.Factor.Messages
	if mp >= mu {
		t.Errorf("pruned messages %d not below unpruned %d", mp, mu)
	}
	t.Logf("factor messages: unpruned=%d pruned=%d (%.1f%% fewer)", mu, mp, 100*float64(mu-mp)/float64(mu))
}

func TestPipelineReducesSimulatedTime(t *testing.T) {
	m, _ := matgen.Lookup("AF23560")
	a := makeDominant(m.Generate(0.25))
	sym, err := symbolic.Factorize(a, symbolic.Options{MaxSuper: 12})
	if err != nil {
		t.Fatal(err)
	}
	rPlain := solveDist(t, a, sym, Options{Procs: 8, ReplaceTinyPivot: true, EDAGPrune: true})
	rPipe := solveDist(t, a, sym, Options{Procs: 8, ReplaceTinyPivot: true, EDAGPrune: true, Pipeline: true})
	if rPipe.Factor.SimTime >= rPlain.Factor.SimTime {
		t.Errorf("pipelined time %g not below plain %g", rPipe.Factor.SimTime, rPlain.Factor.SimTime)
	}
	t.Logf("factor sim time: plain=%.4fs pipelined=%.4fs (%.1f%% faster)",
		rPlain.Factor.SimTime, rPipe.Factor.SimTime,
		100*(rPlain.Factor.SimTime-rPipe.Factor.SimTime)/rPlain.Factor.SimTime)
}

// makeDominant rewrites values so the diagonal dominates (the dist tests
// exercise the parallel machinery, not the pivoting heuristics).
func makeDominant(a *sparse.CSC) *sparse.CSC {
	b := a.Clone()
	n := b.Rows
	rowSum := make([]float64, n)
	for j := 0; j < n; j++ {
		for k := b.ColPtr[j]; k < b.ColPtr[j+1]; k++ {
			if b.RowInd[k] != j {
				rowSum[b.RowInd[k]] += math.Abs(b.Val[k])
			}
		}
	}
	tr := sparse.NewTriplet(n, n)
	hasDiag := make([]bool, n)
	for j := 0; j < n; j++ {
		for k := b.ColPtr[j]; k < b.ColPtr[j+1]; k++ {
			i := b.RowInd[k]
			if i == j {
				tr.Append(i, j, rowSum[i]+1)
				hasDiag[i] = true
			} else {
				tr.Append(i, j, b.Val[k])
			}
		}
	}
	for i := 0; i < n; i++ {
		if !hasDiag[i] {
			tr.Append(i, i, rowSum[i]+1)
		}
	}
	return tr.ToCSC()
}

func TestLoadBalanceFactorInRange(t *testing.T) {
	a, sym := prepared(t, 13, 120, 0.06, 8)
	res := solveDist(t, a, sym, Options{Procs: 6, ReplaceTinyPivot: true, EDAGPrune: true})
	if res.Factor.LoadBalance <= 0 || res.Factor.LoadBalance > 1 {
		t.Errorf("load balance B = %g, want in (0,1]", res.Factor.LoadBalance)
	}
	if res.Factor.CommFraction < 0 || res.Factor.CommFraction >= 1 {
		t.Errorf("comm fraction = %g", res.Factor.CommFraction)
	}
	if res.Factor.SimTime <= 0 || res.Solve.SimTime <= 0 {
		t.Error("phase times missing")
	}
	if res.Factor.Messages == 0 {
		t.Error("no factor messages counted on 6 procs")
	}
}

func TestDeterministicFactorSimTime(t *testing.T) {
	a, sym := prepared(t, 17, 100, 0.06, 8)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	r1, err := Solve(a, sym, b, Options{Procs: 4, ReplaceTinyPivot: true, EDAGPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		r2, err := Solve(a, sym, b, Options{Procs: 4, ReplaceTinyPivot: true, EDAGPrune: true})
		if err != nil {
			t.Fatal(err)
		}
		if r2.Factor.SimTime != r1.Factor.SimTime {
			t.Fatalf("factorization sim time varies: %g vs %g", r1.Factor.SimTime, r2.Factor.SimTime)
		}
		if r2.Factor.Messages != r1.Factor.Messages {
			t.Fatalf("message count varies: %d vs %d", r1.Factor.Messages, r2.Factor.Messages)
		}
		for i := range r1.X {
			if r1.X[i] != r2.X[i] {
				t.Fatal("solution varies across runs")
			}
		}
	}
}

func TestStructureInvariants(t *testing.T) {
	a, sym := prepared(t, 19, 90, 0.08, 5)
	st := BuildStructure(sym)
	_ = a
	for k := 0; k < st.N; k++ {
		prev := k
		for _, lb := range st.LBlocks[k] {
			if lb.I <= prev && prev != k {
				t.Fatalf("panel %d: L blocks not ascending", k)
			}
			if lb.I <= k {
				t.Fatalf("panel %d: L block I=%d not below diagonal", k, lb.I)
			}
			for q := 1; q < len(lb.Rows); q++ {
				if lb.Rows[q] <= lb.Rows[q-1] {
					t.Fatalf("panel %d block %d: rows unsorted", k, lb.I)
				}
			}
			for _, r := range lb.Rows {
				if sym.SupOf[r] != lb.I {
					t.Fatalf("panel %d: row %d outside supernode %d", k, r, lb.I)
				}
			}
			prev = lb.I
		}
		for _, ub := range st.UBlocks[k] {
			if ub.J <= k {
				t.Fatalf("row %d: U block J=%d not right of diagonal", k, ub.J)
			}
			for _, c := range ub.Cols {
				if sym.SupOf[c] != ub.J {
					t.Fatalf("row %d: col %d outside supernode %d", k, c, ub.J)
				}
			}
		}
	}
	// RowL/ColU must mirror LBlocks/UBlocks.
	nL, nRowL := 0, 0
	for k := 0; k < st.N; k++ {
		nL += len(st.LBlocks[k])
		nRowL += len(st.RowL[k])
	}
	if nL != nRowL {
		t.Errorf("RowL has %d entries, LBlocks %d", nRowL, nL)
	}
}

func TestBlockOps(t *testing.T) {
	// FactorDiag + solves against a tiny known system.
	d := NewBlock([]int{0, 1}, []int{0, 1})
	d.Set(0, 0, 4)
	d.Set(1, 0, 2)
	d.Set(0, 1, 2)
	d.Set(1, 1, 3)
	tiny, flops, ok := d.FactorDiag(1e-12, true)
	if !ok || tiny != 0 || flops <= 0 {
		t.Fatalf("FactorDiag: tiny=%d flops=%d ok=%v", tiny, flops, ok)
	}
	// L = [1 0; 0.5 1], U = [4 2; 0 2].
	if got := d.At(1, 0); got != 0.5 {
		t.Errorf("L(1,0) = %g, want 0.5", got)
	}
	if got := d.At(1, 1); got != 2 {
		t.Errorf("U(1,1) = %g, want 2", got)
	}
	// Forward then backward solve of [4 2; 2 3]·x = [8 7] → x = [1, 2]... check:
	// 4·1+2·2 = 8 ✓, 2·1+3·2 = 8 ≠ 7. Use b = A·[1,2] = [8, 8].
	x := []float64{8, 8}
	d.ForwardSolveDiag(x)
	d.BackSolveDiag(x)
	if math.Abs(x[0]-1) > 1e-14 || math.Abs(x[1]-2) > 1e-14 {
		t.Errorf("diag solve = %v, want [1 2]", x)
	}
}

func TestZeroPivotReported(t *testing.T) {
	// Singular 2x2 leading block with replacement disabled: the driver
	// must report the zero pivot rather than deadlock.
	tr := sparse.NewTriplet(3, 3)
	tr.Append(0, 1, 1)
	tr.Append(1, 0, 1)
	tr.Append(2, 2, 1)
	tr.Append(0, 0, 0) // explicit structural diagonal, numerically zero
	tr.Append(1, 1, 0)
	a := tr.ToCSC()
	sym, err := symbolic.Factorize(a, symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 1, 1}
	_, err = Solve(a, sym, b, Options{Procs: 2, ReplaceTinyPivot: false})
	if err == nil {
		t.Fatal("zero pivot not reported")
	}
}

func TestDistributedWithRelaxedSupernodes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr := sparse.NewTriplet(100, 100)
	for j := 0; j < 100; j++ {
		tr.Append(j, j, 5+rng.Float64())
		for i := 0; i < 100; i++ {
			if i != j && rng.Float64() < 0.05 {
				tr.Append(i, j, rng.NormFloat64()*0.4)
			}
		}
	}
	a := tr.ToCSC()
	sym, err := symbolic.Factorize(a, symbolic.Options{MaxSuper: 10, Relax: 4})
	if err != nil {
		t.Fatal(err)
	}
	solveDist(t, a, sym, Options{Procs: 4, Pipeline: true, EDAGPrune: true, ReplaceTinyPivot: true})
}

func TestSolveMultiRHS(t *testing.T) {
	a, sym := prepared(t, 29, 100, 0.06, 8)
	n := a.Rows
	var bs [][]float64
	var wants [][]float64
	for q := 0; q < 3; q++ {
		want := make([]float64, n)
		for i := range want {
			want[i] = float64((i+q)%4) + 1
		}
		b := make([]float64, n)
		a.MatVec(b, want)
		bs = append(bs, b)
		wants = append(wants, want)
	}
	res, xs, err := SolveMulti(a, sym, bs, Options{Procs: 4, Pipeline: true, EDAGPrune: true, ReplaceTinyPivot: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 3 {
		t.Fatalf("%d solutions", len(xs))
	}
	for q := range xs {
		if e := sparse.RelErrInf(xs[q], wants[q]); e > 1e-9 {
			t.Errorf("rhs %d: error %g", q, e)
		}
	}
	if res.Solve.SimTime <= 0 {
		t.Error("solve stats missing")
	}
}

func TestSolveFrom1DRedistribution(t *testing.T) {
	a, sym := prepared(t, 31, 120, 0.06, 8)
	n := a.Rows
	want := make([]float64, n)
	for i := range want {
		want[i] = 2 - float64(i%3)
	}
	b := make([]float64, n)
	a.MatVec(b, want)
	for _, p := range []int{1, 3, 6} {
		res, redist, err := SolveFrom1D(a, sym, b, Uniform1D(n, p), Options{
			Procs: p, Pipeline: true, EDAGPrune: true, ReplaceTinyPivot: true,
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if e := sparse.RelErrInf(res.X, want); e > 1e-9 {
			t.Fatalf("P=%d: error %g after redistribution", p, e)
		}
		if p > 1 && redist.Messages == 0 {
			t.Errorf("P=%d: no redistribution messages counted", p)
		}
		t.Logf("P=%d: redistribution %.4fs simulated, %d msgs, %d bytes",
			p, redist.SimTime, redist.Messages, redist.Volume)
	}
}

func TestUniform1DCoversAllRows(t *testing.T) {
	sl := Uniform1D(103, 7)
	if sl[0].Lo != 0 || sl[6].Hi != 103 {
		t.Fatalf("slices %v do not span", sl)
	}
	for i := 1; i < len(sl); i++ {
		if sl[i].Lo != sl[i-1].Hi {
			t.Fatalf("gap between slices %d and %d", i-1, i)
		}
	}
}
