package dist

import (
	"math"
	"sort"

	"gesp/internal/kernels"
)

// Block is a dense-within-pattern submatrix: the storage unit of the 2-D
// block-cyclic distribution (the paper's nzval[] array; Rows/Cols play
// the role of index[]).
type Block struct {
	Rows []int     // global row indices, ascending
	Cols []int     // global column indices, ascending
	Val  []float64 // column-major, len(Rows)*len(Cols)
}

// NewBlock allocates a zero block with the given global index sets.
func NewBlock(rows, cols []int) *Block {
	return &Block{Rows: rows, Cols: cols, Val: make([]float64, len(rows)*len(cols))}
}

// NR and NC report the block's dimensions.
func (b *Block) NR() int { return len(b.Rows) }
func (b *Block) NC() int { return len(b.Cols) }

// Bytes reports the modelled message size of the block: values plus the
// two index arrays (the paper sends index[] and nzval[] per block column).
func (b *Block) Bytes() int { return 8*len(b.Val) + 4*(len(b.Rows)+len(b.Cols)) }

// LocalRow maps a global row index to the block-local index; the row must
// be present.
func (b *Block) LocalRow(r int) int {
	i := sort.SearchInts(b.Rows, r)
	if i >= len(b.Rows) || b.Rows[i] != r {
		panic("dist: row not in block")
	}
	return i
}

// LocalCol maps a global column index to the block-local index.
func (b *Block) LocalCol(c int) int {
	i := sort.SearchInts(b.Cols, c)
	if i >= len(b.Cols) || b.Cols[i] != c {
		panic("dist: column not in block")
	}
	return i
}

// At returns the entry at global coordinates.
func (b *Block) At(r, c int) float64 { return b.Val[b.LocalCol(c)*b.NR()+b.LocalRow(r)] }

// Set stores v at global coordinates.
func (b *Block) Set(r, c int, v float64) { b.Val[b.LocalCol(c)*b.NR()+b.LocalRow(r)] = v }

// FactorDiag factors the diagonal block in place (no pivoting), storing
// the unit-lower triangle of L below the diagonal and U on and above —
// the paper's diagonal blocks hold both triangles. Pivots smaller in
// magnitude than thresh are replaced by ±thresh when replace is true;
// returns the number of replacements and the flop count. A zero pivot
// with replace false reports ok = false.
//
//gesp:hotpath
func (b *Block) FactorDiag(thresh float64, replace bool) (tiny int, flops int64, ok bool) {
	n := b.NR()
	v := b.Val
	for k := 0; k < n; k++ {
		piv := v[k*n+k]
		if math.Abs(piv) < thresh {
			if !replace {
				if piv == 0 {
					return tiny, flops, false
				}
			} else {
				np := math.Copysign(thresh, piv)
				if piv == 0 {
					np = thresh
				}
				v[k*n+k] = np
				piv = np
				tiny++
			}
		}
		for i := k + 1; i < n; i++ {
			v[k*n+i] /= piv
		}
		flops += int64(n - k - 1)
		kernels.Rank1Trailing(v, n, k)
		flops += 2 * int64(n-k-1) * int64(n-k-1)
	}
	return tiny, flops, true
}

// SolveUFromRight overwrites b with b·U⁻¹ where diag holds a factored
// diagonal block (upper triangle = U): this computes an L panel
// L(I,K) = A(I,K)·U(K,K)⁻¹. Returns the flop count.
//
//gesp:hotpath
func (b *Block) SolveUFromRight(diag *Block) int64 {
	nr, nc := b.NR(), b.NC()
	kernels.TrsmUpperRight(b.Val, nr, nc, diag.Val, diag.NR())
	return int64(nr) * int64(nc) * int64(nc)
}

// SolveLFromLeft overwrites b with L⁻¹·b where diag holds a factored
// diagonal block (unit-lower triangle = L): this computes a U panel
// U(K,J) = L(K,K)⁻¹·A(K,J). Returns the flop count.
//
//gesp:hotpath
func (b *Block) SolveLFromLeft(diag *Block) int64 {
	nr, nc := b.NR(), b.NC()
	kernels.TrsmLowerUnitLeft(b.Val, nr, nc, diag.Val, diag.NR())
	return int64(nr) * int64(nr) * int64(nc)
}

// lookup returns the local index of a global id in a sorted slice, or -1.
func lookup(ids []int, v int) int {
	i := sort.SearchInts(ids, v)
	if i < len(ids) && ids[i] == v {
		return i
	}
	return -1
}

// UpdateScratch holds the reusable work buffers of RankBUpdateInto: the
// dense product accumulator, the packed U panel of the register-blocked
// kernel, and the row/column index maps. One scratch per worker (or one
// for the whole serial engine) removes every per-call allocation from
// the Schur-update hot path. Under kernels.ModeBlockedArena the buffers
// are carved contiguously from one bump arena per call, so a whole
// update's working set is a single cache-friendly extent.
type UpdateScratch struct {
	prod   []float64
	upack  []float64
	rowMap []int
	colMap []int
	arena  *kernels.Arena
}

// ensure sizes the buffers for an nr×nc product whose packed U operand
// has ku rows (ku = 0 on the scalar path, which reads U in place).
func (ws *UpdateScratch) ensure(nr, nc, ku int) {
	if kernels.ArenaScratch() {
		if ws.arena == nil {
			ws.arena = new(kernels.Arena)
		}
		ws.arena.Reset()
		ws.prod = ws.arena.F64(nr * nc)
		ws.upack = ws.arena.F64(ku * nc)
		ws.rowMap = ws.arena.Ints(nr)
		ws.colMap = ws.arena.Ints(nc)
		return
	}
	if cap(ws.prod) < nr*nc {
		ws.prod = make([]float64, nr*nc)
	}
	if cap(ws.upack) < ku*nc {
		ws.upack = make([]float64, ku*nc)
	}
	if cap(ws.rowMap) < nr {
		ws.rowMap = make([]int, nr)
	}
	if cap(ws.colMap) < nc {
		ws.colMap = make([]int, nc)
	}
	ws.prod = ws.prod[:nr*nc]
	ws.upack = ws.upack[:ku*nc]
	ws.rowMap = ws.rowMap[:nr]
	ws.colMap = ws.colMap[:nc]
}

// updateRowTile is the row strip height of the blocked product: a
// 192-row strip of a maximally wide (24-column) L panel is ~36 KB, so
// the strip stays cache-resident while every U column sweeps over it.
const updateRowTile = 192

// RankBUpdate applies the Schur-complement update
// target -= L(I,K)·U(K,J) for this target block (I,J), allocating its
// own scratch. Hot paths should hold an UpdateScratch and call
// RankBUpdateInto instead.
func (t *Block) RankBUpdate(l, u *Block) int64 {
	var ws UpdateScratch
	return t.RankBUpdateInto(l, u, &ws)
}

// RankBUpdateInto applies target -= L(I,K)·U(K,J) using ws as scratch.
// Rows of l and columns of u are located in the target through its
// global index sets. With strict T2 supernodes every position exists;
// with relaxed (amalgamated) supernodes a row or column of the operand
// blocks may be absent from the target — those contributions are
// provably zero (the corresponding L or U entries are structural-zero
// padding), so they are skipped. Under the blocked kernel modes the
// mapped U columns are packed contiguously and the product is one
// register-blocked kernels.MatMul call; the scalar mode keeps the
// strip-mined reference loop. Both accumulate each product element over
// ascending k, so the factors agree bit for bit, and both report the
// same flop count (2·nrL per nonzero entry of a mapped U column — the
// count the distributed simulator's virtual clock is fed). Returns the
// flop count.
//
//gesp:hotpath
func (t *Block) RankBUpdateInto(l, u *Block, ws *UpdateScratch) int64 {
	if kernels.Active() == kernels.ModeScalar {
		return t.rankBUpdateScalar(l, u, ws)
	}
	nrL, nrT := l.NR(), t.NR()
	ncU, nrU := u.NC(), u.NR()
	bk := l.NC() // supernode K width; equals u.NR()
	ws.ensure(nrL, ncU, nrU) //gesp:allocok one-time scratch warm-up; steady state is allocation-free (see blockupdate_test AllocsPerRun)
	rowMap, colMap, prod, upack := ws.rowMap, ws.colMap, ws.prod, ws.upack
	for i, r := range l.Rows {
		rowMap[i] = lookup(t.Rows, r)
	}
	// Pack the mapped U columns contiguously, recording each packed
	// column's target index and counting nonzeros for the flop model.
	nM := 0
	var nz int64
	for c, cGlobal := range u.Cols {
		tc := lookup(t.Cols, cGlobal)
		if tc < 0 {
			continue
		}
		src := u.Val[c*nrU : (c+1)*nrU]
		dst := upack[nM*nrU : (nM+1)*nrU]
		for i, v := range src {
			dst[i] = v
			if v != 0 {
				nz++
			}
		}
		colMap[nM] = tc
		nM++
	}
	if nM == 0 {
		return 0
	}
	kernels.MatMul(prod[:nrL*nM], l.Val, upack[:nrU*nM], nrL, nM, bk)
	// Scatter-subtract the dense product through the index maps.
	for c := 0; c < nM; c++ {
		tcol := t.Val[colMap[c]*nrT : (colMap[c]+1)*nrT]
		pcol := prod[c*nrL : (c+1)*nrL]
		for i := 0; i < nrL; i++ {
			if ti := rowMap[i]; ti >= 0 {
				tcol[ti] -= pcol[i]
			}
		}
	}
	return 2 * int64(nrL) * nz
}

// rankBUpdateScalar is the pre-campaign reference: the product is
// accumulated densely in row strips (cache blocking) and scattered into
// the target once, keeping the innermost loops branch-free and
// contiguous.
//
//gesp:hotpath
func (t *Block) rankBUpdateScalar(l, u *Block, ws *UpdateScratch) int64 {
	nrL, nrT := l.NR(), t.NR()
	ncU, nrU := u.NC(), u.NR()
	bk := l.NC() // supernode K width; equals u.NR()
	ws.ensure(nrL, ncU, 0) //gesp:allocok one-time scratch warm-up; steady state is allocation-free (see blockupdate_test AllocsPerRun)
	rowMap, colMap, prod := ws.rowMap, ws.colMap, ws.prod
	for i, r := range l.Rows {
		rowMap[i] = lookup(t.Rows, r)
	}
	nMapped := 0
	for c, cGlobal := range u.Cols {
		colMap[c] = lookup(t.Cols, cGlobal)
		if colMap[c] >= 0 {
			nMapped++
		}
	}
	if nMapped == 0 {
		return 0
	}

	var flops int64
	for r0 := 0; r0 < nrL; r0 += updateRowTile {
		r1 := r0 + updateRowTile
		if r1 > nrL {
			r1 = nrL
		}
		for c := 0; c < ncU; c++ {
			if colMap[c] < 0 {
				continue
			}
			ucol := u.Val[c*nrU : (c+1)*nrU]
			pcol := prod[c*nrL : (c+1)*nrL]
			for i := r0; i < r1; i++ {
				pcol[i] = 0
			}
			for k := 0; k < bk; k++ {
				ukc := ucol[k]
				if ukc == 0 {
					continue
				}
				lcol := l.Val[k*nrL : (k+1)*nrL]
				for i := r0; i < r1; i++ {
					pcol[i] += lcol[i] * ukc
				}
				if r0 == 0 {
					flops += 2 * int64(nrL)
				}
			}
		}
	}
	// Scatter-subtract the dense product through the index maps.
	for c := 0; c < ncU; c++ {
		tc := colMap[c]
		if tc < 0 {
			continue
		}
		tcol := t.Val[tc*nrT : (tc+1)*nrT]
		pcol := prod[c*nrL : (c+1)*nrL]
		for i := 0; i < nrL; i++ {
			if ti := rowMap[i]; ti >= 0 {
				tcol[ti] -= pcol[i]
			}
		}
	}
	return flops
}

// MatVecInto accumulates y_local += B·x for the solve phase. x is the
// supernode-local solution subvector starting at global column colBase;
// the block's columns may be a proper subset of the supernode (U blocks
// have skyline structure), so each is mapped through its global index.
// The product is scattered by global row via out.
func (b *Block) MatVecInto(out func(globalRow int, v float64), x []float64, colBase int) int64 {
	nr := b.NR()
	acc := make([]float64, nr)
	for ci, c := range b.Cols {
		xc := x[c-colBase]
		if xc == 0 {
			continue
		}
		col := b.Val[ci*nr : (ci+1)*nr]
		for i := 0; i < nr; i++ {
			acc[i] += col[i] * xc
		}
	}
	for i, r := range b.Rows {
		if acc[i] != 0 {
			out(r, acc[i])
		}
	}
	return 2 * int64(nr) * int64(b.NC())
}

// ForwardSolveDiag solves L(K,K)·x = rhs in place (unit lower triangle of
// the factored diagonal block).
//
//gesp:hotpath
func (b *Block) ForwardSolveDiag(x []float64) int64 {
	n := b.NR()
	v := b.Val
	for k := 0; k < n; k++ {
		xk := x[k]
		if xk == 0 {
			continue
		}
		for i := k + 1; i < n; i++ {
			x[i] -= v[k*n+i] * xk
		}
	}
	return int64(n) * int64(n)
}

// BackSolveDiag solves U(K,K)·x = rhs in place (upper triangle including
// the diagonal).
//
//gesp:hotpath
func (b *Block) BackSolveDiag(x []float64) int64 {
	n := b.NR()
	v := b.Val
	for k := n - 1; k >= 0; k-- {
		xk := x[k] / v[k*n+k]
		x[k] = xk
		if xk == 0 {
			continue
		}
		for i := 0; i < k; i++ {
			x[i] -= v[k*n+i] * xk
		}
	}
	return int64(n) * int64(n)
}
