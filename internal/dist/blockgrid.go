package dist

import (
	"sort"

	"gesp/internal/sparse"
)

// BlockGrid is the in-process block store used by the shared-memory
// engines (the serial blocked factorization and the sched worker pool).
// Unlike ScatterA's ownership map — whose key space is the full ns×ns
// block grid — it holds exactly the blocks of the static fill structure
// in dense slices parallel to Structure.LBlocks/UBlocks, so the hot
// right-looking loops index blocks directly instead of hashing, and no
// storage at all is spent on structurally-absent blocks.
type BlockGrid struct {
	St   *Structure
	Diag []*Block   // Diag[k] is the dense diagonal block of supernode k
	L    [][]*Block // L[k] parallel to St.LBlocks[k]
	U    [][]*Block // U[k] parallel to St.UBlocks[k]

	// Block ids number every allocated block densely (diagonals first,
	// then L panels, then U rows); the scheduler keys its per-target
	// locks by id.
	lID [][]int
	uID [][]int
	n   int // total allocated blocks
}

// NewGrid allocates the zero-filled structural blocks of the fill
// pattern — and only those.
func NewGrid(st *Structure) *BlockGrid {
	ns := st.N
	g := &BlockGrid{
		St:   st,
		Diag: make([]*Block, ns),
		L:    make([][]*Block, ns),
		U:    make([][]*Block, ns),
		lID:  make([][]int, ns),
		uID:  make([][]int, ns),
	}
	id := 0
	for k := 0; k < ns; k++ {
		lo, hi := st.SupCols(k)
		rows := rangeInts(lo, hi)
		g.Diag[k] = NewBlock(rows, rows)
		id++
	}
	for k := 0; k < ns; k++ {
		lo, hi := st.SupCols(k)
		cols := rangeInts(lo, hi)
		g.L[k] = make([]*Block, len(st.LBlocks[k]))
		g.lID[k] = make([]int, len(st.LBlocks[k]))
		for i, lb := range st.LBlocks[k] {
			g.L[k][i] = NewBlock(lb.Rows, cols)
			g.lID[k][i] = id
			id++
		}
		g.U[k] = make([]*Block, len(st.UBlocks[k]))
		g.uID[k] = make([]int, len(st.UBlocks[k]))
		for j, ub := range st.UBlocks[k] {
			g.U[k][j] = NewBlock(cols, ub.Cols)
			g.uID[k][j] = id
			id++
		}
	}
	g.n = id
	return g
}

// NumBlocks reports the number of allocated structural blocks.
func (g *BlockGrid) NumBlocks() int { return g.n }

// lIndex locates the L block with block row i in panel j, or -1.
func (g *BlockGrid) lIndex(j, i int) int {
	lbs := g.St.LBlocks[j]
	p := sort.Search(len(lbs), func(q int) bool { return lbs[q].I >= i })
	if p < len(lbs) && lbs[p].I == i {
		return p
	}
	return -1
}

// uIndex locates the U block with block column j in block row i, or -1.
func (g *BlockGrid) uIndex(i, j int) int {
	ubs := g.St.UBlocks[i]
	p := sort.Search(len(ubs), func(q int) bool { return ubs[q].J >= j })
	if p < len(ubs) && ubs[p].J == j {
		return p
	}
	return -1
}

// Target returns block (i, j) and its dense id, or (nil, -1) when the
// block is structurally absent.
func (g *BlockGrid) Target(i, j int) (*Block, int) {
	switch {
	case i == j:
		return g.Diag[i], i
	case i > j:
		if p := g.lIndex(j, i); p >= 0 {
			return g.L[j][p], g.lID[j][p]
		}
	default:
		if p := g.uIndex(i, j); p >= 0 {
			return g.U[i][p], g.uID[i][p]
		}
	}
	return nil, -1
}

// At returns the factored value at global (i, j) inside block (bi, bj).
func (g *BlockGrid) At(bi, bj, i, j int) float64 {
	b, _ := g.Target(bi, bj)
	return b.At(i, j)
}

// Scatter fills the grid with the numeric entries of the permuted
// matrix; the blocks must have been freshly allocated (zero).
func (g *BlockGrid) Scatter(a *sparse.CSC) {
	sup := g.St.Sym.SupOf
	for j := 0; j < a.Cols; j++ {
		bj := sup[j]
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowInd[p]
			b, _ := g.Target(sup[i], bj)
			if b == nil {
				// A's pattern is contained in L+U's, so the block exists.
				panic("dist: A entry outside the static block skeleton")
			}
			b.Set(i, j, a.Val[p])
		}
	}
}
