package dist

import (
	"sort"

	"gesp/internal/mpisim"
	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

// Redistribution: the paper's future-work section asks for "a good
// interface so the user knows how to input the matrix in the distributed
// manner" — the matrix arrives distributed (most naturally by contiguous
// row slices, as assembled by an application), and the solver must
// redistribute it into the 2-D block-cyclic layout its algorithms use.
// This file implements that interface and measures the redistribution
// traffic, so its cost can be compared against the factorization.

// RowSlice describes the contiguous row range [Lo, Hi) a rank contributes
// in the 1-D input distribution.
type RowSlice struct{ Lo, Hi int }

// Uniform1D splits n rows evenly over p ranks.
func Uniform1D(n, p int) []RowSlice {
	out := make([]RowSlice, p)
	for r := 0; r < p; r++ {
		out[r] = RowSlice{Lo: r * n / p, Hi: (r + 1) * n / p}
	}
	return out
}

// entryMsg carries matrix entries bound for one destination rank.
type entryMsg struct {
	rows, cols []int
	vals       []float64
}

// redistribute1Dto2D runs on every rank inside a world: each rank holds
// the rows in its slice of a (the full matrix is passed for convenience;
// a rank touches only its own rows) and exchanges entries so that
// afterwards every rank owns exactly the blocks the 2-D block-cyclic
// layout assigns to it. Returns the local block map.
func redistribute1Dto2D(r *mpisim.Rank, g mpisim.Grid, st *Structure, a *sparse.CSC, slice RowSlice) map[int]*Block {
	ns := st.N
	sym := st.Sym
	// Bucket the local rows' entries by destination rank.
	buckets := make(map[int]*entryMsg)
	for j := 0; j < a.Cols; j++ {
		bj := sym.SupOf[j]
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			i := a.RowInd[k]
			if i < slice.Lo || i >= slice.Hi {
				continue
			}
			dst := g.OwnerOfBlock(sym.SupOf[i], bj)
			b := buckets[dst]
			if b == nil {
				b = &entryMsg{}
				buckets[dst] = b
			}
			b.rows = append(b.rows, i)
			b.cols = append(b.cols, j)
			b.vals = append(b.vals, a.Val[k])
		}
	}
	// Allocate the local (empty) skeleton.
	blocks := st.ScatterA(emptyLike(a), func(i, j int) bool { return g.OwnerOfBlock(i, j) == r.ID() })
	// Exchange: send each bucket, then receive one message from every
	// rank (possibly empty) — a deterministic all-to-all.
	dsts := make([]int, 0, len(buckets))
	//gesp:unordered
	for d := range buckets { // keys are sorted below
		dsts = append(dsts, d)
	}
	sort.Ints(dsts)
	scatterLocal := func(m *entryMsg) {
		for q := range m.rows {
			i, j := m.rows[q], m.cols[q]
			blk := blocks[sym.SupOf[i]*ns+sym.SupOf[j]]
			blk.Set(i, j, blk.At(i, j)+m.vals[q])
		}
	}
	for _, d := range dsts {
		if d == r.ID() {
			continue
		}
		m := buckets[d]
		r.Send(d, tagOf(tagGather, ns), m, 16*len(m.rows)+8*len(m.vals))
	}
	if m := buckets[r.ID()]; m != nil {
		scatterLocal(m)
	}
	// Receive exactly the messages addressed to us. The destination sets
	// are data dependent, so the ranks first announce who-sends-to-whom
	// through rank 0 (a counting round), then receive accordingly.
	counts := make([]int, r.Size())
	for _, d := range dsts {
		if d != r.ID() {
			counts[d] = 1
		}
	}
	// Allreduce-style announcement: share send matrices via rank 0.
	mine := append([]int(nil), counts...)
	var senders []int
	if r.ID() == 0 {
		matrix := make([][]int, r.Size())
		matrix[0] = mine
		for src := 1; src < r.Size(); src++ {
			matrix[src] = r.Recv(src, tagOf(tagGather, ns+1)).([]int)
		}
		for dst := 1; dst < r.Size(); dst++ {
			var s []int
			for src := 0; src < r.Size(); src++ {
				if matrix[src][dst] > 0 {
					s = append(s, src)
				}
			}
			r.Send(dst, tagOf(tagGather, ns+2), s, 4*len(s))
		}
		for src := 0; src < r.Size(); src++ {
			if matrix[src][0] > 0 {
				senders = append(senders, src)
			}
		}
	} else {
		r.Send(0, tagOf(tagGather, ns+1), mine, 4*len(mine))
		senders, _ = r.Recv(0, tagOf(tagGather, ns+2)).([]int)
	}
	for _, src := range senders {
		m := r.Recv(src, tagOf(tagGather, ns)).(*entryMsg)
		scatterLocal(m)
	}
	return blocks
}

func emptyLike(a *sparse.CSC) *sparse.CSC {
	return &sparse.CSC{Rows: a.Rows, Cols: a.Cols, ColPtr: make([]int, a.Cols+1)}
}

// SolveFrom1D is Solve with the paper's distributed-input interface: the
// matrix enters 1-D row-distributed (slices[rank] gives each rank's
// rows), is redistributed to the 2-D block-cyclic layout with measured
// communication, then factored and solved as usual. The redistribution
// phase statistics are returned alongside.
func SolveFrom1D(a *sparse.CSC, sym *symbolic.Result, b []float64, slices []RowSlice, opts Options) (*Result, PhaseStats, error) {
	if opts.Procs <= 0 {
		opts.Procs = len(slices)
	}
	model := mpisim.T3E900()
	if opts.Model != nil {
		model = *opts.Model
	}
	st := BuildStructure(sym)
	grid := mpisim.NewGrid(opts.Procs)
	world := mpisim.NewWorld(opts.Procs, model)
	thresh := defaultThreshold(a, opts.Threshold)

	res := &Result{Grid: grid, SupernodeAv: sym.AvgSupernode()}
	res.X = make([]float64, sym.N)
	snaps := make([][4]mpisim.Snapshot, opts.Procs)
	tinies := make([]int, opts.Procs)
	fails := make([]bool, opts.Procs)

	world.Run(func(r *mpisim.Rank) {
		myR, myC := grid.Coords(r.ID())
		w := &worker{
			r: r, g: grid, st: st, opts: opts,
			myR: myR, myC: myC, thresh: thresh,
			panelDone: make([]bool, st.N),
		}
		r.Barrier()
		snaps[r.ID()][0] = r.Snap()
		w.blocks = redistribute1Dto2D(r, grid, st, a, slices[r.ID()])
		r.Barrier()
		snaps[r.ID()][1] = r.Snap()

		w.factorize()
		r.Barrier()
		snaps[r.ID()][2] = r.Snap()
		xs := w.lowerSolve(b)
		r.Barrier()
		xs = w.upperSolve(xs)
		r.Barrier()
		snaps[r.ID()][3] = r.Snap()
		w.gatherX(xs, res.X)
		tinies[r.ID()] = w.tiny
		fails[r.ID()] = w.zeroPivot
	})
	for i := 0; i < opts.Procs; i++ {
		res.TinyPivots += tinies[i]
	}

	col := func(k int) []mpisim.Snapshot {
		out := make([]mpisim.Snapshot, opts.Procs)
		for i := 0; i < opts.Procs; i++ {
			out[i] = snaps[i][k]
		}
		return out
	}
	rs := mpisim.PhaseStats(col(0), col(1))
	fs := mpisim.PhaseStats(col(1), col(2))
	ss := mpisim.PhaseStats(col(2), col(3))
	redist := PhaseStats{
		SimTime: rs.Time, CommFraction: rs.CommFraction,
		Messages: rs.Messages, Volume: rs.Volume,
	}
	res.Factor = PhaseStats{
		SimTime: fs.Time, Mflops: fs.Mflops(), CommFraction: fs.CommFraction,
		LoadBalance: fs.LoadBalance, Messages: fs.Messages, Volume: fs.Volume,
	}
	res.Solve = PhaseStats{
		SimTime: ss.Time, Mflops: ss.Mflops(), CommFraction: ss.CommFraction,
		LoadBalance: ss.LoadBalance, Messages: ss.Messages, Volume: ss.Volume,
	}
	for i := range fails {
		if fails[i] {
			return res, redist, ErrZeroPivotDist
		}
	}
	return res, redist, nil
}
