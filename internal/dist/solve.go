package dist

// Distributed triangular solves, following the paper's Figure 9: the
// "inner product" formulation driven by messages, with fmod/frecv
// counters for the lower solve and bmod/brecv for the upper solve.
// Execution is fully asynchronous: a rank loops on RecvAny and reacts to
// whichever partial sum or solution subvector arrives.

// lowerSolve computes x = L⁻¹·b. b is replicated on entry (the paper
// distributes it with the matrix; replication only skips the initial
// scatter). On return the diagonal owners hold x(K) in xs[K].
func (w *worker) lowerSolve(b []float64) map[int][]float64 {
	ns := w.st.N

	// ownedLAt[j] lists this rank's L blocks (I, J=j) keyed by panel.
	ownedLAt := make(map[int][]*lContrib)
	fmod := make(map[int]int) // pending local contributions to row I
	for j := 0; j < ns; j++ {
		for bi := range w.st.LBlocks[j] {
			lb := &w.st.LBlocks[j][bi]
			if w.owner(lb.I, j) == w.me() {
				ownedLAt[j] = append(ownedLAt[j], &lContrib{i: lb.I, blk: w.blocks[lb.I*ns+j]})
				fmod[lb.I]++
			}
		}
	}

	// Per owned diagonal block: how many contributions remain before x(K)
	// can be solved — one per remote contributing process plus one if this
	// rank contributes locally.
	remaining := make(map[int]int)
	expect := 0 // messages this rank will receive (lsum + xsol)
	for k := 0; k < ns; k++ {
		if w.owner(k, k) != w.me() {
			continue
		}
		remote := w.lsumContributors(k)
		remaining[k] = remote
		expect += remote
		if fmod[k] > 0 {
			remaining[k]++
		}
	}
	// x(K) messages: one for every panel K in which this rank owns an L
	// block but not the diagonal.
	for j := 0; j < ns; j++ {
		if len(ownedLAt[j]) > 0 && w.owner(j, j) != w.me() {
			expect++
		}
	}

	lsum := make(map[int][]float64)
	xs := make(map[int][]float64)

	addSum := func(i int, local []float64) {
		s := lsum[i]
		if s == nil {
			s = make([]float64, w.st.SupWidth(i))
			lsum[i] = s
		}
		for q := range local {
			s[q] += local[q]
		}
	}

	var solveK func(k int)
	var applyX func(j int, x []float64)

	flushRow := func(i int) {
		// All local contributions to row i are in: route the partial sum.
		dst := w.owner(i, i)
		if dst == w.me() {
			remaining[i]--
			if remaining[i] == 0 {
				solveK(i)
			}
			return
		}
		s := lsum[i]
		if s == nil {
			s = make([]float64, w.st.SupWidth(i))
		}
		w.r.Send(dst, tagOf(tagLSum, i), s, 8*len(s))
	}

	solveK = func(k int) {
		lo, hi := w.st.SupCols(k)
		x := make([]float64, hi-lo)
		for q := range x {
			x[q] = b[lo+q]
		}
		if s := lsum[k]; s != nil {
			for q := range x {
				x[q] -= s[q]
			}
		}
		w.r.Compute(w.blocks[k*ns+k].ForwardSolveDiag(x))
		xs[k] = x
		// Broadcast x(K) down the process column to L(I,K) owners.
		sent := make(map[int]bool)
		for _, lb := range w.st.LBlocks[k] {
			dst := w.owner(lb.I, k)
			if dst != w.me() && !sent[dst] {
				sent[dst] = true
				w.r.Send(dst, tagOf(tagXSol, k), x, 8*len(x))
			}
		}
		applyX(k, x)
	}

	applyX = func(j int, x []float64) {
		jLo, _ := w.st.SupCols(j)
		for _, lc := range ownedLAt[j] {
			local := make([]float64, w.st.SupWidth(lc.i))
			lo, _ := w.st.SupCols(lc.i)
			w.r.Compute(lc.blk.MatVecInto(func(r int, v float64) {
				local[r-lo] += v
			}, x, jLo))
			addSum(lc.i, local)
			fmod[lc.i]--
			if fmod[lc.i] == 0 {
				flushRow(lc.i)
			}
		}
	}

	// Kick off: solvable diagonals with no pending contributions. The
	// xs-guard matters: a solveK cascade (via flushRow) may already have
	// solved a later supernode.
	for k := 0; k < ns; k++ {
		if w.owner(k, k) == w.me() && remaining[k] == 0 && xs[k] == nil {
			solveK(k)
		}
	}
	// Message-driven main loop (the paper's "while I have more work" with
	// receives of type LSUM and XSOL).
	for got := 0; got < expect; got++ {
		_, tag, payload := w.r.RecvAny()
		k := tag / numTags
		switch tag % numTags {
		case tagLSum:
			addSum(k, payload.([]float64))
			remaining[k]--
			if remaining[k] == 0 {
				solveK(k)
			}
		case tagXSol:
			applyX(k, payload.([]float64))
		default:
			panic("dist: unexpected message in lower solve")
		}
	}
	return xs
}

type lContrib struct {
	i   int
	blk *Block
}

// lsumContributors counts the remote processes that send partial sums for
// x(K) to its diagonal owner.
func (w *worker) lsumContributors(k int) int {
	diagOwner := w.owner(k, k)
	procs := make(map[int]bool)
	for _, j := range w.st.RowL[k] {
		if o := w.owner(k, j); o != diagOwner {
			procs[o] = true
		}
	}
	return len(procs)
}

// upperSolve computes x = U⁻¹·y where y(K) sits with the diagonal owners
// (as produced by lowerSolve). The result is returned the same way.
func (w *worker) upperSolve(ys map[int][]float64) map[int][]float64 {
	ns := w.st.N

	// ownedUAt[j] lists this rank's U blocks (K, J=j): after x(J) is
	// known, each contributes U(K,J)·x(J) to row K's pending sum.
	ownedUAt := make(map[int][]*lContrib)
	bmod := make(map[int]int)
	for k := 0; k < ns; k++ {
		for bi := range w.st.UBlocks[k] {
			ub := &w.st.UBlocks[k][bi]
			if w.owner(k, ub.J) == w.me() {
				ownedUAt[ub.J] = append(ownedUAt[ub.J], &lContrib{i: k, blk: w.blocks[k*ns+ub.J]})
				bmod[k]++
			}
		}
	}

	remaining := make(map[int]int)
	expect := 0
	for k := 0; k < ns; k++ {
		if w.owner(k, k) != w.me() {
			continue
		}
		remote := w.bsumContributors(k)
		remaining[k] = remote
		expect += remote
		if bmod[k] > 0 {
			remaining[k]++
		}
	}
	for j := 0; j < ns; j++ {
		if len(ownedUAt[j]) > 0 && w.owner(j, j) != w.me() {
			expect++
		}
	}

	bsum := make(map[int][]float64)
	xs := make(map[int][]float64)

	addSum := func(i int, local []float64) {
		s := bsum[i]
		if s == nil {
			s = make([]float64, w.st.SupWidth(i))
			bsum[i] = s
		}
		for q := range local {
			s[q] += local[q]
		}
	}

	var solveK func(k int)
	var applyX func(j int, x []float64)

	flushRow := func(i int) {
		dst := w.owner(i, i)
		if dst == w.me() {
			remaining[i]--
			if remaining[i] == 0 {
				solveK(i)
			}
			return
		}
		s := bsum[i]
		if s == nil {
			s = make([]float64, w.st.SupWidth(i))
		}
		w.r.Send(dst, tagOf(tagLSum, i), s, 8*len(s))
	}

	solveK = func(k int) {
		x := append([]float64(nil), ys[k]...)
		if s := bsum[k]; s != nil {
			for q := range x {
				x[q] -= s[q]
			}
		}
		w.r.Compute(w.blocks[k*ns+k].BackSolveDiag(x))
		xs[k] = x
		// Broadcast x(K) up the process column to U(I,K) owners.
		sent := make(map[int]bool)
		for _, up := range w.uOwnersOfCol(k) {
			if up != w.me() && !sent[up] {
				sent[up] = true
				w.r.Send(up, tagOf(tagXSol, k), x, 8*len(x))
			}
		}
		applyX(k, x)
	}

	applyX = func(j int, x []float64) {
		jLo, _ := w.st.SupCols(j)
		for _, uc := range ownedUAt[j] {
			local := make([]float64, w.st.SupWidth(uc.i))
			lo, _ := w.st.SupCols(uc.i)
			w.r.Compute(uc.blk.MatVecInto(func(r int, v float64) {
				local[r-lo] += v
			}, x, jLo))
			addSum(uc.i, local)
			bmod[uc.i]--
			if bmod[uc.i] == 0 {
				flushRow(uc.i)
			}
		}
	}

	for k := ns - 1; k >= 0; k-- {
		if w.owner(k, k) == w.me() && remaining[k] == 0 && xs[k] == nil {
			solveK(k)
		}
	}
	for got := 0; got < expect; got++ {
		_, tag, payload := w.r.RecvAny()
		k := tag / numTags
		switch tag % numTags {
		case tagLSum:
			addSum(k, payload.([]float64))
			remaining[k]--
			if remaining[k] == 0 {
				solveK(k)
			}
		case tagXSol:
			applyX(k, payload.([]float64))
		default:
			panic("dist: unexpected message in upper solve")
		}
	}
	return xs
}

// bsumContributors counts remote processes sending partial sums for the
// upper solve of x(K).
func (w *worker) bsumContributors(k int) int {
	diagOwner := w.owner(k, k)
	procs := make(map[int]bool)
	for _, ub := range w.st.UBlocks[k] {
		if o := w.owner(k, ub.J); o != diagOwner {
			procs[o] = true
		}
	}
	return len(procs)
}

// uOwnersOfCol lists the owners of U blocks in block column K (the
// destinations of x(K) in the upper solve), deterministically ordered.
func (w *worker) uOwnersOfCol(k int) []int {
	var owners []int
	for _, kk := range w.st.ColU[k] {
		owners = append(owners, w.owner(kk, k))
	}
	return owners
}

// gatherX assembles the distributed solution at rank 0.
func (w *worker) gatherX(xs map[int][]float64, out []float64) {
	ns := w.st.N
	if w.me() == 0 {
		for k := 0; k < ns; k++ {
			lo, hi := w.st.SupCols(k)
			var x []float64
			if w.owner(k, k) == 0 {
				x = xs[k]
			} else {
				x = w.r.Recv(w.owner(k, k), tagOf(tagGather, k)).([]float64)
			}
			copy(out[lo:hi], x)
		}
		return
	}
	for k := 0; k < ns; k++ {
		if w.owner(k, k) == w.me() {
			w.r.Send(0, tagOf(tagGather, k), xs[k], 8*len(xs[k]))
		}
	}
}
