package dist

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"gesp/internal/mpisim"
	"gesp/internal/sparse"
)

// Coordinated checkpointing for the distributed factorization. A
// checkpoint is cut at the barrier at the top of an iteration of the
// non-pipelined right-looking loop, where two facts make it consistent
// with no message logging at all:
//
//   - every panel broadcast and diagonal-block message of iterations
//     < k has been consumed (its receivers needed it to reach the
//     barrier), and
//   - no message of iterations ≥ k has been sent yet,
//
// so the mailboxes are provably empty and the global state is exactly
// "panels < k finished, trailing matrix partially updated through
// them". Each rank serializes its owned blocks bit-exactly plus its
// simulator counters; restart re-scatters A for the block skeleton,
// overlays the saved values, and re-runs the loop from the frontier.
// Because the block kernels are sequential and deterministic per rank
// and message contents are values, the replayed tail reproduces the
// fault-free factors bit-identically (verified by fingerprint).

// Checkpoint is one committed, globally consistent factorization
// snapshot.
type Checkpoint struct {
	// Frontier is the next panel to execute on resume (N = factorization
	// complete, only the solve remains).
	Frontier int
	// Snaps[i] is rank i's simulator counters at the cut.
	Snaps []mpisim.Snapshot
	// Blocks[i] is rank i's owned blocks, serialized by encodeBlocks.
	Blocks [][]byte
	// Tinies[i] is rank i's tiny-pivot replacement count at the cut.
	Tinies []int
	// Bytes is the total serialized size, for overhead reporting.
	Bytes int
}

// MaxClock returns the latest rank clock at the cut.
func (c *Checkpoint) MaxClock() float64 {
	m := 0.0
	for _, s := range c.Snaps {
		if s.Clock > m {
			m = s.Clock
		}
	}
	return m
}

// encodeBlocks serializes a rank's owned blocks:
//
//	[8]nblocks | nblocks × ( [8]key [8]nvals  nvals × [8]float64-bits )
//
// Keys ascend; values are raw IEEE-754 bits, so a restore is
// bit-identical to the checkpointed state.
func encodeBlocks(blocks map[int]*Block) []byte {
	keys := make([]int, 0, len(blocks))
	// Keys are sorted immediately below.
	//gesp:unordered
	for k := range blocks {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	size := 8
	for _, k := range keys {
		size += 16 + 8*len(blocks[k].Val)
	}
	buf := make([]byte, 0, size)
	var tmp [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put(uint64(len(keys)))
	for _, k := range keys {
		b := blocks[k]
		put(uint64(k))
		put(uint64(len(b.Val)))
		for _, v := range b.Val {
			put(math.Float64bits(v))
		}
	}
	return buf
}

// restoreBlocks rebuilds a rank's owned blocks from a checkpoint blob:
// the static skeleton is re-derived by scattering A (shape information
// is never serialized — it is a pure function of the symbolic
// analysis), then the saved values overwrite the block contents.
func restoreBlocks(st *Structure, a *sparse.CSC, own func(i, j int) bool, blob []byte) (map[int]*Block, error) {
	blocks := st.ScatterA(a, own)
	pos := 0
	get := func() (uint64, error) {
		if pos+8 > len(blob) {
			return 0, fmt.Errorf("dist: truncated checkpoint blob at offset %d", pos)
		}
		v := binary.LittleEndian.Uint64(blob[pos : pos+8])
		pos += 8
		return v, nil
	}
	n, err := get()
	if err != nil {
		return nil, err
	}
	if int(n) != len(blocks) {
		return nil, fmt.Errorf("dist: checkpoint has %d blocks, skeleton has %d", n, len(blocks))
	}
	for i := uint64(0); i < n; i++ {
		key, err := get()
		if err != nil {
			return nil, err
		}
		nvals, err := get()
		if err != nil {
			return nil, err
		}
		b := blocks[int(key)]
		if b == nil {
			return nil, fmt.Errorf("dist: checkpoint block %d not in skeleton", key)
		}
		if int(nvals) != len(b.Val) {
			return nil, fmt.Errorf("dist: checkpoint block %d has %d values, skeleton wants %d", key, nvals, len(b.Val))
		}
		for j := range b.Val {
			bits, err := get()
			if err != nil {
				return nil, err
			}
			b.Val[j] = math.Float64frombits(bits)
		}
	}
	return blocks, nil
}

// ckptCollector assembles per-rank contributions into committed
// checkpoints. Contributions for one frontier all arrive between the
// barrier that opens the cut and the next runtime operation, so cuts
// never interleave; a checkpoint commits only once every rank has
// contributed, and a failure mid-cut leaves the previous commit intact.
type ckptCollector struct {
	mu sync.Mutex
	p  int
	//gesp:guardedby:mu
	frontier int
	//gesp:guardedby:mu
	got int
	//gesp:guardedby:mu
	snaps []mpisim.Snapshot
	//gesp:guardedby:mu
	blobs [][]byte
	//gesp:guardedby:mu
	tinies []int
	//gesp:guardedby:mu
	committed *Checkpoint
	//gesp:guardedby:mu
	commits int
	//gesp:guardedby:mu
	bytes int
}

func newCkptCollector(p int) *ckptCollector {
	return &ckptCollector{p: p, frontier: -1}
}

func (c *ckptCollector) save(rank, frontier int, snap mpisim.Snapshot, blob []byte, tiny int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if frontier != c.frontier {
		c.frontier = frontier
		c.got = 0
		c.snaps = make([]mpisim.Snapshot, c.p)
		c.blobs = make([][]byte, c.p)
		c.tinies = make([]int, c.p)
	}
	c.snaps[rank], c.blobs[rank], c.tinies[rank] = snap, blob, tiny
	c.got++
	if c.got == c.p {
		total := 0
		for _, bl := range c.blobs {
			total += len(bl)
		}
		c.committed = &Checkpoint{
			Frontier: frontier, Snaps: c.snaps, Blocks: c.blobs,
			Tinies: c.tinies, Bytes: total,
		}
		c.commits++
		c.bytes += total
		c.snaps, c.blobs, c.tinies = nil, nil, nil
		c.frontier = -1
	}
}
