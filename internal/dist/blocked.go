package dist

import (
	"fmt"

	"gesp/internal/lu"
	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

// Serial blocked factorization: the same right-looking block schedule as
// the distributed algorithm, executed in-process with no messaging. This
// is the SuperLU-style uniprocessor engine (dense kernels over the
// supernode partition) and the reference both the distributed code and
// the sched worker pool are tested against.

// BlockSet is a read view over the factored blocks.
type BlockSet struct {
	g *BlockGrid
}

// NewBlockSet wraps a factored grid for read access (the sched engine
// returns its result this way).
func NewBlockSet(g *BlockGrid) *BlockSet { return &BlockSet{g: g} }

// At returns the factored value at global (i, j) inside block (bi, bj).
func (s *BlockSet) At(bi, bj, i, j int) float64 { return s.g.At(bi, bj, i, j) }

// FactorizeBlocked runs the blocked right-looking GESP factorization
// serially over the static structure, returning the factored blocks and
// the number of replaced tiny pivots. Only blocks present in the static
// fill structure are allocated (the grid holds no storage for absent
// blocks), and one scratch buffer is reused across every Schur update.
// The Aggressive option is not supported by the block kernels (use
// lu.Factorize for SMW workflows).
func FactorizeBlocked(a *sparse.CSC, sym *symbolic.Result, opts lu.Options) (*BlockSet, int, error) {
	st := BuildStructure(sym)
	g := NewGrid(st)
	g.Scatter(a)
	thresh := opts.Threshold
	if thresh == 0 {
		thresh = defaultThreshold(a, 0)
	}
	tiny := 0
	var ws UpdateScratch
	for k := 0; k < st.N; k++ {
		diag := g.Diag[k]
		t, _, ok := diag.FactorDiag(thresh, opts.ReplaceTinyPivot)
		if !ok {
			return nil, tiny, fmt.Errorf("dist: supernode %d: %w", k, lu.ErrZeroPivot)
		}
		tiny += t
		for _, lb := range g.L[k] {
			lb.SolveUFromRight(diag)
		}
		for _, ub := range g.U[k] {
			ub.SolveLFromLeft(diag)
		}
		for li, lb := range st.LBlocks[k] {
			l := g.L[k][li]
			for ui, ub := range st.UBlocks[k] {
				if tgt, _ := g.Target(lb.I, ub.J); tgt != nil {
					tgt.RankBUpdateInto(l, g.U[k][ui], &ws)
				}
			}
		}
	}
	return &BlockSet{g: g}, tiny, nil
}
