package dist

import (
	"fmt"

	"gesp/internal/lu"
	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

// Serial blocked factorization: the same right-looking block schedule as
// the distributed algorithm, executed in-process with no messaging. This
// is the SuperLU-style uniprocessor engine (dense kernels over the
// supernode partition) and the reference the distributed code is tested
// against.

// BlockSet is a read view over the factored blocks.
type BlockSet struct {
	ns     int
	blocks map[int]*Block
}

// At returns the factored value at global (i, j) inside block (bi, bj).
func (s *BlockSet) At(bi, bj, i, j int) float64 {
	return s.blocks[bi*s.ns+bj].At(i, j)
}

// FactorizeBlocked runs the blocked right-looking GESP factorization
// serially over the static structure, returning the factored blocks and
// the number of replaced tiny pivots. The Aggressive option is not
// supported by the block kernels (use lu.Factorize for SMW workflows).
func FactorizeBlocked(a *sparse.CSC, sym *symbolic.Result, opts lu.Options) (*BlockSet, int, error) {
	st := BuildStructure(sym)
	ns := st.N
	blocks := st.ScatterA(a, func(i, j int) bool { return true })
	thresh := opts.Threshold
	if thresh == 0 {
		thresh = defaultThreshold(a, 0)
	}
	tiny := 0
	for k := 0; k < ns; k++ {
		diag := blocks[k*ns+k]
		t, _, ok := diag.FactorDiag(thresh, opts.ReplaceTinyPivot)
		if !ok {
			return nil, tiny, fmt.Errorf("dist: supernode %d: %w", k, lu.ErrZeroPivot)
		}
		tiny += t
		for _, lb := range st.LBlocks[k] {
			blocks[lb.I*ns+k].SolveUFromRight(diag)
		}
		for _, ub := range st.UBlocks[k] {
			blocks[k*ns+ub.J].SolveLFromLeft(diag)
		}
		for _, lb := range st.LBlocks[k] {
			l := blocks[lb.I*ns+k]
			for _, ub := range st.UBlocks[k] {
				if tgt := blocks[lb.I*ns+ub.J]; tgt != nil {
					tgt.RankBUpdate(l, blocks[k*ns+ub.J])
				}
			}
		}
	}
	return &BlockSet{ns: ns, blocks: blocks}, tiny, nil
}
