package dist

import (
	"errors"
	"math"
	"testing"
	"time"

	"gesp/internal/faultsim"
	"gesp/internal/lu"
	"gesp/internal/mpisim"
	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

const ftBackstop = 30 * time.Second

// ftSystem builds the chaos-suite test system: matrix, symbolic
// structure, and a right-hand side with known solution.
func ftSystem(t *testing.T, seed int64, n int) (*sparse.CSC, *symbolic.Result, []float64, []float64) {
	t.Helper()
	a := faultsim.New(seed).WellConditioned(n, 0.05)
	sym, err := symbolic.Factorize(a, symbolic.Options{MaxSuper: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = 1 + float64(i%5)
	}
	b := make([]float64, n)
	a.MatVec(b, want)
	return a, sym, b, want
}

func ftBaseline(t *testing.T, a *sparse.CSC, sym *symbolic.Result, b []float64, opts FTOptions) (*Result, *Recovery) {
	t.Helper()
	opts.Fault = nil
	res, rec, err := SolveFT(a, sym, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Attempts != 1 || rec.Restarts != 0 {
		t.Fatalf("fault-free run took %d attempts", rec.Attempts)
	}
	return res, rec
}

func checkRecovered(t *testing.T, name string, res *Result, rec *Recovery, base *Result, baseRec *Recovery, want []float64) {
	t.Helper()
	if rec.Restarts < 1 {
		t.Fatalf("%s: no restart happened (attempts=%d)", name, rec.Attempts)
	}
	if rec.Fingerprint != baseRec.Fingerprint {
		t.Fatalf("%s: recovered fingerprint %x != fault-free %x — recovery is not bit-identical",
			name, rec.Fingerprint, baseRec.Fingerprint)
	}
	if e := sparse.RelErrInf(res.X, want); e > 1e-9 {
		t.Fatalf("%s: recovered solution error %g", name, e)
	}
	// The factors are bit-identical (fingerprint above); the solution
	// agrees to roundoff only, because the message-driven triangular
	// solve reduces partial sums in RecvAny arrival-resolution order,
	// which depends on host scheduling.
	if e := sparse.RelErrInf(res.X, base.X); e > 1e-9 {
		t.Fatalf("%s: recovered solution differs from fault-free by %g", name, e)
	}
	if len(rec.Failures) != rec.Restarts {
		t.Fatalf("%s: %d failure reports for %d restarts", name, len(rec.Failures), rec.Restarts)
	}
	if rec.DetectLatency <= 0 || rec.AddedSimTime <= 0 {
		t.Fatalf("%s: recovery accounting empty: %+v", name, rec)
	}
}

// A fault-free SolveFT must agree with the plain driver bit for bit
// (the checkpoint barriers change scheduling, never numerics) and with
// the serial factorization via the assembled fingerprint.
func TestSolveFTMatchesSolve(t *testing.T) {
	a, sym, b, want := ftSystem(t, 3, 120)
	opts := FTOptions{Options: Options{Procs: 4, EDAGPrune: true, ReplaceTinyPivot: true}}
	res, rec := ftBaseline(t, a, sym, b, opts)
	if e := sparse.RelErrInf(res.X, want); e > 1e-9 {
		t.Fatalf("SolveFT error %g", e)
	}
	plain, err := Solve(a, sym, b, Options{Procs: 4, EDAGPrune: true, ReplaceTinyPivot: true})
	if err != nil {
		t.Fatal(err)
	}
	if e := sparse.RelErrInf(res.X, plain.X); e > 1e-9 {
		t.Fatalf("SolveFT solution differs from Solve by %g", e)
	}
	// The assembled factors agree with the serial left-looking GESP to
	// roundoff (the right-looking distributed update order accumulates
	// differently, so bit equality holds only dist-vs-dist).
	serial, err := lu.Factorize(a, sym, lu.Options{ReplaceTinyPivot: true})
	if err != nil {
		t.Fatal(err)
	}
	world := mpisim.NewWorld(1, mpisim.T3E900())
	var blocks map[int]*Block
	st := BuildStructure(sym)
	world.Run(func(r *mpisim.Rank) {
		w := &worker{
			r: r, g: mpisim.NewGrid(1), st: st, opts: Options{Procs: 1, ReplaceTinyPivot: true},
			thresh: defaultThreshold(a, 0), panelDone: make([]bool, st.N),
		}
		w.blocks = st.ScatterA(a, func(i, j int) bool { return true })
		w.factorize()
		blocks = w.blocks
	})
	asm := AssembleFactors(st, []map[int]*Block{blocks})
	scale := a.MaxAbs()
	for p := range asm.UVal {
		if d := math.Abs(asm.UVal[p] - serial.UVal[p]); d > 1e-10*scale {
			t.Fatalf("assembled UVal[%d]=%g vs serial %g", p, asm.UVal[p], serial.UVal[p])
		}
	}
	for q := range asm.LVal {
		if d := math.Abs(asm.LVal[q] - serial.LVal[q]); d > 1e-10*scale {
			t.Fatalf("assembled LVal[%d]=%g vs serial %g", q, asm.LVal[q], serial.LVal[q])
		}
	}
	if rec.Checkpoints == 0 || rec.CheckpointBytes == 0 {
		t.Fatalf("no checkpoints committed: %+v", rec)
	}
}

// killDuringFactor runs the kill-one-rank scenario on the given grid
// and verifies bit-identical recovery.
func killDuringFactor(t *testing.T, grid mpisim.Grid) {
	t.Helper()
	a, sym, b, want := ftSystem(t, 5, 120)
	procs := grid.PRow * grid.PCol
	opts := FTOptions{Options: Options{Procs: procs, Grid: &grid, EDAGPrune: true, ReplaceTinyPivot: true}}
	base, baseRec := ftBaseline(t, a, sym, b, opts)

	killAt := 0.3 * base.Factor.SimTime
	opts.Fault = faultsim.NewChaos(11).Kill(1, killAt).WallBackstop(ftBackstop).Build()
	res, rec, err := SolveFT(a, sym, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkRecovered(t, grid.String(), res, rec, base, baseRec, want)
	f := rec.Failures[0]
	if !errors.Is(f.Err, mpisim.ErrRankDead) || f.Kind != "kill" || f.Rank != 1 {
		t.Fatalf("failure report %+v, want kill of rank 1", f)
	}
	if f.Phase != "factorize" {
		t.Fatalf("failure phase %q, want factorize", f.Phase)
	}
	if rec.ReplayedFlops <= 0 || rec.ExtraMessages <= 0 {
		t.Fatalf("replay accounting empty: %+v", rec)
	}
}

func TestKillOneRankRecovers2x2(t *testing.T) { killDuringFactor(t, mpisim.Grid{PRow: 2, PCol: 2}) }
func TestKillOneRankRecovers2x4(t *testing.T) { killDuringFactor(t, mpisim.Grid{PRow: 2, PCol: 4}) }

// A kill during the triangular solve restarts from the final (frontier
// = N) checkpoint: no factorization is replayed, and recovery is still
// bit-identical.
func TestKillDuringSolveRecovers(t *testing.T) {
	a, sym, b, want := ftSystem(t, 5, 120)
	opts := FTOptions{Options: Options{Procs: 4, EDAGPrune: true, ReplaceTinyPivot: true}}
	base, baseRec := ftBaseline(t, a, sym, b, opts)

	killAt := base.Factor.SimTime + 0.25*base.Solve.SimTime
	opts.Fault = faultsim.NewChaos(13).Kill(2, killAt).WallBackstop(ftBackstop).Build()
	res, rec, err := SolveFT(a, sym, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkRecovered(t, "solve-phase", res, rec, base, baseRec, want)
	if f := rec.Failures[0]; f.Phase != "solve" {
		t.Fatalf("failure phase %q, want solve (report %+v)", f.Phase, f)
	}
}

// A stall past the watchdog deadline is treated as death and recovered
// the same way.
func TestStallRecovers(t *testing.T) {
	a, sym, b, want := ftSystem(t, 5, 120)
	opts := FTOptions{Options: Options{Procs: 4, EDAGPrune: true, ReplaceTinyPivot: true}}
	base, baseRec := ftBaseline(t, a, sym, b, opts)

	stallAt := 0.5 * base.Factor.SimTime
	opts.Fault = faultsim.NewChaos(17).
		Stall(3, stallAt, 20*mpisim.DefaultWatchdogDeadline).
		WallBackstop(ftBackstop).Build()
	res, rec, err := SolveFT(a, sym, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkRecovered(t, "stall", res, rec, base, baseRec, want)
	if f := rec.Failures[0]; f.Kind != "stall" || f.Rank != 3 {
		t.Fatalf("failure report %+v, want stall-death of rank 3", f)
	}
}

// A dropped message wedges the world (ErrTimeout, no dead rank); the
// bounded drop budget lets the restart outrun the chaos.
func TestDroppedMessageRecovers(t *testing.T) {
	a, sym, b, want := ftSystem(t, 5, 120)
	opts := FTOptions{Options: Options{Procs: 4, EDAGPrune: true, ReplaceTinyPivot: true}}
	base, baseRec := ftBaseline(t, a, sym, b, opts)

	opts.Fault = faultsim.NewChaos(19).Drop(0.02, 1).WallBackstop(ftBackstop).Build()
	res, rec, err := SolveFT(a, sym, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Restarts == 0 {
		t.Skip("seed 19 dropped no load-bearing message; nothing to recover")
	}
	checkRecovered(t, "drop", res, rec, base, baseRec, want)
	if f := rec.Failures[0]; !errors.Is(f.Err, mpisim.ErrTimeout) || f.Kind != "wedge" {
		t.Fatalf("failure report %+v, want ErrTimeout wedge", f)
	}
}

// Jitter and duplication alone (no loss, no death) must not need any
// restart, and the result stays bit-identical: delivery is idempotent
// and the blocked receives serialize the same dataflow.
func TestJitterAndDuplicationHarmless(t *testing.T) {
	a, sym, b, _ := ftSystem(t, 5, 120)
	opts := FTOptions{Options: Options{Procs: 4, EDAGPrune: true, ReplaceTinyPivot: true}}
	_, baseRec := ftBaseline(t, a, sym, b, opts)

	opts.Fault = faultsim.NewChaos(23).Jitter(5e-5).Duplicate(0.2).WallBackstop(ftBackstop).Build()
	_, rec, err := SolveFT(a, sym, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Restarts != 0 {
		t.Fatalf("jitter+duplication forced %d restarts", rec.Restarts)
	}
	if rec.Fingerprint != baseRec.Fingerprint {
		t.Fatalf("fingerprint changed under jitter+duplication: %x vs %x",
			rec.Fingerprint, baseRec.Fingerprint)
	}
}

// The whole recovery pipeline is deterministic: identical chaos plans
// give identical simulated times, message counts, replay accounting and
// fingerprints (run under -race by make chaostest).
func TestSolveFTDeterminism(t *testing.T) {
	a, sym, b, _ := ftSystem(t, 5, 120)
	chaos := faultsim.NewChaos(29).Jitter(2e-5).Duplicate(0.1).WallBackstop(ftBackstop)

	run := func(killAt float64) (*Result, *Recovery) {
		opts := FTOptions{Options: Options{Procs: 4, EDAGPrune: true, ReplaceTinyPivot: true}}
		opts.Fault = chaos.Build()
		opts.Fault.RankFaults = []mpisim.RankFault{{Rank: 1, At: killAt}}
		res, rec, err := SolveFT(a, sym, b, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res, rec
	}
	base, _ := ftBaseline(t, a, sym, b, FTOptions{Options: Options{Procs: 4, EDAGPrune: true, ReplaceTinyPivot: true}})
	killAt := 0.4 * base.Factor.SimTime

	r1, rec1 := run(killAt)
	r2, rec2 := run(killAt)
	if rec1.Restarts != rec2.Restarts || rec1.Fingerprint != rec2.Fingerprint ||
		rec1.ReplayedFlops != rec2.ReplayedFlops || rec1.ExtraMessages != rec2.ExtraMessages ||
		rec1.AddedSimTime != rec2.AddedSimTime || rec1.DetectLatency != rec2.DetectLatency {
		t.Fatalf("recovery accounting differs across identical chaos runs:\n%+v\n%+v", rec1, rec2)
	}
	// Factor-phase times are exactly reproducible (tag-directed receives
	// serialize the dataflow); the solve phase is compared by message
	// count only, since its RecvAny reduction order tracks host timing.
	if r1.Factor.SimTime != r2.Factor.SimTime || r1.Factor.Messages != r2.Factor.Messages ||
		r1.Solve.Messages != r2.Solve.Messages {
		t.Fatalf("phase stats differ across identical chaos runs:\n%+v\n%+v", r1.Factor, r2.Factor)
	}
	if rec1.Restarts < 1 {
		t.Fatal("determinism scenario never failed; pick a different killAt")
	}
}

// Checkpoint encode/restore round-trips block values bit-exactly.
func TestCheckpointRoundTrip(t *testing.T) {
	a, sym, _, _ := ftSystem(t, 31, 80)
	st := BuildStructure(sym)
	grid := mpisim.NewGrid(4)
	for rank := 0; rank < 4; rank++ {
		own := func(i, j int) bool { return grid.OwnerOfBlock(i, j) == rank }
		blocks := st.ScatterA(a, own)
		// Deface the values so the round trip is not testing zeros.
		i := 0
		for _, b := range blocks {
			for j := range b.Val {
				b.Val[j] = math.Sqrt(2)*float64(i) + 1e-9
				i++
			}
		}
		blob := encodeBlocks(blocks)
		got, err := restoreBlocks(st, a, own, blob)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(blocks) {
			t.Fatalf("rank %d: restored %d blocks, want %d", rank, len(got), len(blocks))
		}
		for k, b := range blocks {
			rb := got[k]
			for j := range b.Val {
				if math.Float64bits(rb.Val[j]) != math.Float64bits(b.Val[j]) {
					t.Fatalf("rank %d block %d value %d not bit-identical", rank, k, j)
				}
			}
		}
	}
}

// Corrupt checkpoint blobs are rejected with an error, not a panic.
func TestCheckpointRejectsCorruptBlob(t *testing.T) {
	a, sym, _, _ := ftSystem(t, 31, 80)
	st := BuildStructure(sym)
	own := func(i, j int) bool { return true }
	blob := encodeBlocks(st.ScatterA(a, own))
	if _, err := restoreBlocks(st, a, own, blob[:len(blob)-4]); err == nil {
		t.Fatal("truncated blob restored without error")
	}
	if _, err := restoreBlocks(st, a, own, blob[8:]); err == nil {
		t.Fatal("misaligned blob restored without error")
	}
}
