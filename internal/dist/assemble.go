package dist

import (
	"sort"

	"gesp/internal/lu"
)

// AssembleFactors gathers the factored distributed blocks into serial
// lu.Factors storage (LVal/UVal in the symbolic pattern order). The
// fault-tolerant driver uses it to fingerprint a recovered
// factorization against a fault-free run; it also lets any serial tool
// (condition estimation, fingerprint verification, the resilience
// ladder) consume a distributed factorization.
func AssembleFactors(st *Structure, blockSets []map[int]*Block) *lu.Factors {
	sym := st.Sym
	ns := st.N
	all := make(map[int]*Block, 0)
	for _, bs := range blockSets {
		// Key-indexed overlay into one map: insertion order is irrelevant
		// (ownership is disjoint), so map iteration order cannot leak.
		//gesp:unordered
		for k, b := range bs {
			all[k] = b
		}
	}
	f := &lu.Factors{
		Sym:  sym,
		LVal: make([]float64, sym.NnzL()),
		UVal: make([]float64, sym.NnzU()),
	}
	for j := 0; j < sym.N; j++ {
		bj := sym.SupOf[j]
		for p := sym.UPtr[j]; p < sym.UPtr[j+1]; p++ {
			i := sym.UInd[p]
			f.UVal[p] = blockAt(all[sym.SupOf[i]*ns+bj], i, j)
		}
		for q := sym.LPtr[j]; q < sym.LPtr[j+1]; q++ {
			i := sym.LInd[q]
			f.LVal[q] = blockAt(all[sym.SupOf[i]*ns+bj], i, j)
		}
	}
	return f
}

// blockAt reads a block entry by global coordinates, treating a missing
// block or row as structural zero (possible only with relaxed
// supernodes, where the symbolic pattern can pad beyond the blocks'
// lead-column skeleton).
func blockAt(b *Block, i, j int) float64 {
	if b == nil {
		return 0
	}
	ri := sort.SearchInts(b.Rows, i)
	if ri >= len(b.Rows) || b.Rows[ri] != i {
		return 0
	}
	ci := sort.SearchInts(b.Cols, j)
	if ci >= len(b.Cols) || b.Cols[ci] != j {
		return 0
	}
	return b.Val[ci*b.NR()+ri]
}
