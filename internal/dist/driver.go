package dist

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gesp/internal/mpisim"
	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

// PhaseStats reports one phase (factorization or solve) of a distributed
// run in the simulator's virtual machine model.
type PhaseStats struct {
	// SimTime is the simulated parallel runtime in seconds on the
	// modelled machine (Tables 3 and 4 report this).
	SimTime float64
	// Mflops is the simulated aggregate megaflop rate.
	Mflops float64
	// CommFraction is the fraction of simulated time spent communicating
	// (Table 5).
	CommFraction float64
	// LoadBalance is the paper's factor B = avg workload / max workload.
	LoadBalance float64
	// Messages and Volume count point-to-point traffic.
	Messages int64
	Volume   int64
	// Wall is the real elapsed time of the phase on the host.
	Wall time.Duration
}

// Result of a distributed factorization + solve.
type Result struct {
	X           []float64
	Grid        mpisim.Grid
	Factor      PhaseStats
	Solve       PhaseStats
	TinyPivots  int
	SupernodeAv float64
}

// ErrZeroPivotDist mirrors the serial zero-pivot failure.
var ErrZeroPivotDist = errors.New("dist: zero pivot with replacement disabled")

// Solve factors the (already permuted and scaled) matrix a with the
// distributed GESP algorithm and solves a·x = b. The symbolic structure
// must come from symbolic.Factorize on the same matrix.
func Solve(a *sparse.CSC, sym *symbolic.Result, b []float64, opts Options) (*Result, error) {
	res, xs, err := solveMulti(a, sym, [][]float64{b}, opts) //gesp:wallclock solveMulti's Wall stats are reporting-only; they never feed the virtual clock
	if err != nil {
		return res, err
	}
	res.X = xs[0]
	return res, nil
}

// SolveMulti factors once and solves several right-hand sides, the
// amortization scenario the paper's §5 discusses ("will probably depend
// on the number of right-hand sides"). The Solve phase statistics cover
// all right-hand sides together.
func SolveMulti(a *sparse.CSC, sym *symbolic.Result, bs [][]float64, opts Options) (*Result, [][]float64, error) {
	return solveMulti(a, sym, bs, opts) //gesp:wallclock solveMulti's Wall stats are reporting-only; they never feed the virtual clock
}

// solveMulti runs the distributed factorization and the solves for all
// right-hand sides. The Wall fields of the returned PhaseStats are
// genuine host wall-clock measurements reported alongside the simulated
// times; they never feed the virtual clock or any simulated result.
//
//gesp:wallclock
func solveMulti(a *sparse.CSC, sym *symbolic.Result, bs [][]float64, opts Options) (*Result, [][]float64, error) {
	if opts.Procs <= 0 {
		opts.Procs = 4
	}
	model := mpisim.T3E900()
	if opts.Model != nil {
		model = *opts.Model
	}
	st := BuildStructure(sym)
	grid := mpisim.NewGrid(opts.Procs)
	if opts.Grid != nil {
		grid = *opts.Grid
	}
	world := mpisim.NewWorld(opts.Procs, model)
	thresh := defaultThreshold(a, opts.Threshold)

	res := &Result{Grid: grid, SupernodeAv: sym.AvgSupernode()}
	outs := make([][]float64, len(bs))
	for i := range outs {
		outs[i] = make([]float64, sym.N)
	}

	snaps := make([][4]mpisim.Snapshot, opts.Procs)
	tinies := make([]int, opts.Procs)
	fails := make([]bool, opts.Procs)
	var wallFactor, wallSolve time.Duration
	var wallMu sync.Mutex

	world.Run(func(r *mpisim.Rank) {
		myR, myC := grid.Coords(r.ID())
		w := &worker{
			r: r, g: grid, st: st, opts: opts,
			myR: myR, myC: myC,
			thresh:    thresh,
			panelDone: make([]bool, st.N),
		}
		w.blocks = st.ScatterA(a, func(i, j int) bool { return grid.OwnerOfBlock(i, j) == r.ID() })

		r.Barrier()
		snaps[r.ID()][0] = r.Snap()
		t0 := time.Now()
		w.factorize()
		r.Barrier()
		if r.ID() == 0 {
			wallMu.Lock()
			wallFactor = time.Since(t0)
			wallMu.Unlock()
		}
		snaps[r.ID()][1] = r.Snap()

		t1 := time.Now()
		solutions := make([]map[int][]float64, len(bs))
		for q, b := range bs {
			xs := w.lowerSolve(b)
			r.Barrier()
			solutions[q] = w.upperSolve(xs)
			r.Barrier()
		}
		if r.ID() == 0 {
			wallMu.Lock()
			wallSolve = time.Since(t1)
			wallMu.Unlock()
		}
		snaps[r.ID()][2] = r.Snap()

		for q := range bs {
			w.gatherX(solutions[q], outs[q])
			r.Barrier() // gather reuses per-supernode tags across RHS
		}
		snaps[r.ID()][3] = r.Snap()
		tinies[r.ID()] = w.tiny
		fails[r.ID()] = w.zeroPivot
	})

	before := make([]mpisim.Snapshot, opts.Procs)
	mid := make([]mpisim.Snapshot, opts.Procs)
	after := make([]mpisim.Snapshot, opts.Procs)
	for i := 0; i < opts.Procs; i++ {
		before[i] = snaps[i][0]
		mid[i] = snaps[i][1]
		after[i] = snaps[i][2]
		res.TinyPivots += tinies[i]
	}
	fs := mpisim.PhaseStats(before, mid)
	ss := mpisim.PhaseStats(mid, after)
	res.Factor = PhaseStats{
		SimTime: fs.Time, Mflops: fs.Mflops(), CommFraction: fs.CommFraction,
		LoadBalance: fs.LoadBalance, Messages: fs.Messages, Volume: fs.Volume, Wall: wallFactor,
	}
	res.Solve = PhaseStats{
		SimTime: ss.Time, Mflops: ss.Mflops(), CommFraction: ss.CommFraction,
		LoadBalance: ss.LoadBalance, Messages: ss.Messages, Volume: ss.Volume, Wall: wallSolve,
	}
	for i := range fails {
		if fails[i] {
			return res, nil, fmt.Errorf("%w (rank %d)", ErrZeroPivotDist, i)
		}
	}
	return res, outs, nil
}
