package dist

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"gesp/internal/kernels"
)

// pickN returns n of the ids, drawn without replacement, sorted.
func pickN(rng *rand.Rand, ids []int, n int) []int {
	idx := rng.Perm(len(ids))[:n]
	sort.Ints(idx)
	out := make([]int, n)
	for i, q := range idx {
		out[i] = ids[q]
	}
	return out
}

func fillBlock(rng *rand.Rand, b *Block) {
	for i := range b.Val {
		switch rng.Intn(4) {
		case 0:
			b.Val[i] = 0
		default:
			b.Val[i] = rng.NormFloat64()
		}
	}
}

// TestRankBUpdateModesBitIdentical pins the blocked and arena update
// paths against the scalar reference bitwise, on operand shapes that
// straddle the register block, with relaxed-supernode padding (operand
// rows and columns absent from the target) and with one dirty scratch
// reused across every shape — the way the engines actually call it.
func TestRankBUpdateModesBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	var wsBlocked, wsArena UpdateScratch // reused, never cleared

	shapes := []struct{ nrL, bk, ncU int }{
		{1, 1, 1}, {3, 2, 2}, {4, 4, 4}, {5, 3, 7}, {8, 8, 8},
		{17, 5, 9}, {24, 24, 24}, {31, 7, 12}, {65, 24, 17},
	}
	for trial, sh := range shapes {
		// Global index sets: the target covers a wide range; the operands
		// cover subsets, plus rows/cols outside the target to exercise
		// the relaxed-supernode (-1 map) path.
		tRows := make([]int, sh.nrL+8)
		for i := range tRows {
			tRows[i] = i * 2
		}
		tCols := make([]int, sh.ncU+8)
		for i := range tCols {
			tCols[i] = 1000 + i*2
		}
		lRows := pickN(rng, tRows, sh.nrL)
		lRows[len(lRows)-1]++ // odd: guaranteed absent from the target
		uCols := pickN(rng, tCols, sh.ncU)
		uCols[len(uCols)-1]++
		kCols := make([]int, sh.bk)
		for i := range kCols {
			kCols[i] = 500 + i
		}

		l := NewBlock(lRows, kCols)
		u := NewBlock(kCols, uCols)
		fillBlock(rng, l)
		fillBlock(rng, u)
		ref := NewBlock(tRows, tCols)
		fillBlock(rng, ref)

		run := func(m kernels.Mode, ws *UpdateScratch) (*Block, int64) {
			tgt := NewBlock(tRows, tCols)
			copy(tgt.Val, ref.Val)
			prev := kernels.SetMode(m)
			defer kernels.SetMode(prev)
			return tgt, tgt.RankBUpdateInto(l, u, ws)
		}
		var wsScalar UpdateScratch
		want, wantFlops := run(kernels.ModeScalar, &wsScalar)
		gotB, flopsB := run(kernels.ModeBlocked, &wsBlocked)
		gotA, flopsA := run(kernels.ModeBlockedArena, &wsArena)

		if flopsB != wantFlops || flopsA != wantFlops {
			t.Fatalf("trial %d: flop counts diverge: scalar %d blocked %d arena %d",
				trial, wantFlops, flopsB, flopsA)
		}
		for i := range want.Val {
			if math.Float64bits(want.Val[i]) != math.Float64bits(gotB.Val[i]) {
				t.Fatalf("trial %d: blocked element %d differs", trial, i)
			}
			if math.Float64bits(want.Val[i]) != math.Float64bits(gotA.Val[i]) {
				t.Fatalf("trial %d: arena element %d differs", trial, i)
			}
		}
	}
}

// TestRankBUpdateZeroAlloc proves the Schur-update hot path allocates
// nothing once its scratch is warm, in every kernel mode.
func TestRankBUpdateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	rows := make([]int, 48)
	for i := range rows {
		rows[i] = i
	}
	kc := rows[:24]
	l := NewBlock(rows, kc)
	u := NewBlock(kc, rows[:16])
	tgt := NewBlock(rows, rows[:32])
	fillBlock(rng, l)
	fillBlock(rng, u)

	for _, m := range []kernels.Mode{kernels.ModeScalar, kernels.ModeBlocked, kernels.ModeBlockedArena} {
		prev := kernels.SetMode(m)
		var ws UpdateScratch
		tgt.RankBUpdateInto(l, u, &ws) // warm the scratch
		allocs := testing.AllocsPerRun(10, func() {
			tgt.RankBUpdateInto(l, u, &ws)
		})
		kernels.SetMode(prev)
		if allocs != 0 {
			t.Errorf("mode %v: %v allocs/op, want 0", m, allocs)
		}
	}
}
